#include "rexspeed/sim/monte_carlo.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "rexspeed/core/exact_expectations.hpp"
#include "test_util.hpp"

namespace rexspeed::sim {
namespace {

core::ModelParams noisy_params() {
  core::ModelParams p = test::toy_params();
  p.lambda_silent = 2e-4;
  return p;
}

TEST(MonteCarlo, AggregatesRequestedReplications) {
  const Simulator sim(noisy_params());
  const ExecutionPolicy policy = ExecutionPolicy::two_speed(500.0, 0.5, 1.0);
  MonteCarloOptions options;
  options.replications = 50;
  options.total_work = 10000.0;
  const MonteCarloResult result = run_monte_carlo(sim, policy, options);
  EXPECT_EQ(result.replications, 50u);
  EXPECT_EQ(result.time_overhead.count(), 50u);
  EXPECT_GT(result.time_overhead.mean(), 0.0);
  EXPECT_GT(result.energy_overhead.mean(), 0.0);
  EXPECT_LE(result.time_ci.lower, result.time_ci.upper);
}

TEST(MonteCarlo, IndependentOfThreadCount) {
  const Simulator sim(noisy_params());
  const ExecutionPolicy policy = ExecutionPolicy::two_speed(500.0, 0.5, 1.0);
  MonteCarloOptions serial;
  serial.replications = 40;
  serial.total_work = 5000.0;
  serial.threads = 1;
  MonteCarloOptions parallel = serial;
  parallel.threads = 4;
  const MonteCarloResult a = run_monte_carlo(sim, policy, serial);
  const MonteCarloResult b = run_monte_carlo(sim, policy, parallel);
  // Replication i always uses seed(base, i): only the merge order differs,
  // so the means agree to floating-point reassociation noise.
  EXPECT_NEAR(a.time_overhead.mean(), b.time_overhead.mean(),
              1e-12 * a.time_overhead.mean());
  EXPECT_NEAR(a.energy_overhead.mean(), b.energy_overhead.mean(),
              1e-12 * a.energy_overhead.mean());
  EXPECT_EQ(a.silent_errors.mean(), b.silent_errors.mean());
}

TEST(MonteCarlo, DifferentSeedsGiveDifferentSamples) {
  const Simulator sim(noisy_params());
  const ExecutionPolicy policy = ExecutionPolicy::two_speed(500.0, 0.5, 1.0);
  MonteCarloOptions a;
  a.replications = 20;
  a.total_work = 5000.0;
  MonteCarloOptions b = a;
  b.base_seed = a.base_seed + 1;
  const MonteCarloResult ra = run_monte_carlo(sim, policy, a);
  const MonteCarloResult rb = run_monte_carlo(sim, policy, b);
  EXPECT_NE(ra.time_overhead.mean(), rb.time_overhead.mean());
}

TEST(MonteCarlo, ConfidenceIntervalShrinksWithMoreReplications) {
  const Simulator sim(noisy_params());
  const ExecutionPolicy policy = ExecutionPolicy::two_speed(500.0, 0.5, 1.0);
  MonteCarloOptions small;
  small.replications = 20;
  small.total_work = 5000.0;
  MonteCarloOptions large = small;
  large.replications = 320;  // 16× ⇒ roughly 4× narrower
  const MonteCarloResult rs = run_monte_carlo(sim, policy, small);
  const MonteCarloResult rl = run_monte_carlo(sim, policy, large);
  EXPECT_LT(rl.time_ci.half_width(), rs.time_ci.half_width());
}

TEST(MonteCarlo, MeanTimeOverheadMatchesClosedForm) {
  const core::ModelParams p = noisy_params();
  const Simulator sim(p);
  const double w = 500.0;
  const ExecutionPolicy policy = ExecutionPolicy::two_speed(w, 0.5, 1.0);
  MonteCarloOptions options;
  options.replications = 400;
  options.total_work = 100 * w;  // 100 whole patterns per replication
  const MonteCarloResult mc = run_monte_carlo(sim, policy, options);
  const double expected = core::time_overhead(p, w, 0.5, 1.0);
  // 3σ-style check: the CI is a 95% interval, so widen it slightly.
  const double slack = 2.0 * mc.time_ci.half_width() + 1e-9;
  EXPECT_NEAR(mc.time_overhead.mean(), expected, slack);
}

TEST(MonteCarlo, ErrorCountersTrackRates) {
  core::ModelParams p = test::toy_params();
  p.lambda_silent = 1e-4;
  p.lambda_failstop = 1e-4;
  const Simulator sim(p);
  const ExecutionPolicy policy = ExecutionPolicy::two_speed(500.0, 0.5, 0.5);
  MonteCarloOptions options;
  options.replications = 100;
  options.total_work = 50000.0;
  const MonteCarloResult mc = run_monte_carlo(sim, policy, options);
  EXPECT_GT(mc.silent_errors.mean(), 0.0);
  EXPECT_GT(mc.failstop_errors.mean(), 0.0);
  EXPECT_GE(mc.attempts_per_pattern.mean(), 1.0);
}

TEST(MonteCarlo, RejectsZeroReplications) {
  const Simulator sim(noisy_params());
  const ExecutionPolicy policy = ExecutionPolicy::single_speed(100.0, 1.0);
  MonteCarloOptions options;
  options.replications = 0;
  EXPECT_THROW(run_monte_carlo(sim, policy, options), std::invalid_argument);
}

}  // namespace
}  // namespace rexspeed::sim
