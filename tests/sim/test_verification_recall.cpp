#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "rexspeed/core/recall_solver.hpp"
#include "rexspeed/sim/monte_carlo.hpp"
#include "rexspeed/sim/simulator.hpp"
#include "support/crossval.hpp"
#include "test_util.hpp"

namespace rexspeed::sim {
namespace {

core::ModelParams noisy() {
  core::ModelParams p = test::toy_params();
  p.lambda_silent = 5e-4;
  return p;
}

Simulator make_simulator(const core::ModelParams& p, double recall) {
  SimulatorOptions options;
  options.verification_recall = recall;
  return Simulator(p, FaultInjector(p), options);
}

TEST(VerificationRecall, PerfectRecallNeverCorrupts) {
  const core::ModelParams p = noisy();
  const Simulator sim = make_simulator(p, 1.0);
  const ExecutionPolicy policy = ExecutionPolicy::two_speed(500.0, 0.5, 1.0);
  Xoshiro256 rng(1);
  const SimResult run = sim.run(policy, 50000.0, rng);
  EXPECT_GT(run.silent_errors, 0u);
  EXPECT_EQ(run.corrupted_checkpoints, 0u);
  EXPECT_FALSE(run.result_corrupted());
}

TEST(VerificationRecall, ZeroRecallCommitsEveryStruckPattern) {
  const core::ModelParams p = noisy();
  const Simulator sim = make_simulator(p, 0.0);
  const ExecutionPolicy policy = ExecutionPolicy::two_speed(500.0, 0.5, 1.0);
  Xoshiro256 rng(2);
  const SimResult run = sim.run(policy, 50000.0, rng);
  // Nothing is ever detected: no recoveries, every error is committed.
  EXPECT_EQ(run.silent_errors, 0u);
  EXPECT_EQ(run.recoveries, 0u);
  EXPECT_GT(run.corrupted_checkpoints, 0u);
  EXPECT_EQ(run.attempts, run.patterns);
  EXPECT_TRUE(run.result_corrupted());
}

TEST(VerificationRecall, MissRatioMatchesRecall) {
  const core::ModelParams p = noisy();
  const Simulator sim = make_simulator(p, 0.8);
  const ExecutionPolicy policy = ExecutionPolicy::two_speed(500.0, 0.5, 1.0);
  Xoshiro256 rng(3);
  std::size_t detected = 0;
  std::size_t missed = 0;
  for (int rep = 0; rep < 200; ++rep) {
    const SimResult run = sim.run(policy, 20000.0, rng);
    detected += run.silent_errors;
    missed += run.corrupted_checkpoints;
  }
  const double total = static_cast<double>(detected + missed);
  ASSERT_GT(total, 500.0);
  // Detected fraction ≈ recall.
  EXPECT_NEAR(static_cast<double>(detected) / total, 0.8, 0.04);
}

TEST(VerificationRecall, MissedErrorsDoNotPayRecovery) {
  // A run with recall 0 is exactly an error-free run in time and energy:
  // nothing is detected, nothing re-executed.
  core::ModelParams p = noisy();
  const Simulator with_misses = make_simulator(p, 0.0);
  core::ModelParams clean = p;
  clean.lambda_silent = 0.0;
  const Simulator error_free(clean);
  const ExecutionPolicy policy = ExecutionPolicy::two_speed(500.0, 0.5, 1.0);
  Xoshiro256 a(4);
  Xoshiro256 b(5);
  const SimResult miss_run = with_misses.run(policy, 10000.0, a);
  const SimResult clean_run = error_free.run(policy, 10000.0, b);
  EXPECT_NEAR(miss_run.makespan_s, clean_run.makespan_s, 1e-9);
  EXPECT_NEAR(miss_run.energy_mws, clean_run.energy_mws, 1e-6);
}

TEST(VerificationRecall, MonteCarloTracksCorruptionProbability) {
  const core::ModelParams p = noisy();
  const Simulator sim = make_simulator(p, 0.5);
  const ExecutionPolicy policy = ExecutionPolicy::two_speed(500.0, 0.5, 1.0);
  MonteCarloOptions options;
  options.replications = 200;
  options.total_work = 20000.0;
  const MonteCarloResult mc = run_monte_carlo(sim, policy, options);
  EXPECT_GT(mc.corrupted_runs.mean(), 0.5);  // misses are frequent here
  EXPECT_LE(mc.corrupted_runs.mean(), 1.0);
  // Corrupted checkpoints per pattern track the closed-form per-pattern
  // corruption probability (core/recall_solver.hpp).
  const double patterns = options.total_work / policy.pattern_work();
  const double expected =
      core::recall_corruption_probability(p, 0.5, 500.0, 0.5, 1.0);
  EXPECT_NEAR(mc.corrupted_checkpoints.mean() / patterns, expected,
              4.5 * mc.corrupted_checkpoints.standard_error() / patterns);
}

TEST(VerificationRecall, SimulatorMatchesRecallClosedForms) {
  // The pinned regression of the partial-recall exact expectations (the
  // acceptance grid r ∈ {0.5, 0.8, 0.95}): time, energy AND the committed-
  // corruption probability must agree with the simulator within the shared
  // Welford-stderr tolerance (support/crossval.hpp). The property suite
  // (tests/properties/) runs the same fixture over random models.
  const core::ModelParams p = noisy();
  int case_index = 0;
  for (const double recall : {0.5, 0.8, 0.95}) {
    test::CrossValOptions options;
    options.base_seed = 0x9ECA11 + 1000ull * static_cast<std::uint64_t>(
                                                 ++case_index);
    test::expect_simulator_matches_recall_model(p, recall, 500.0, 0.5, 1.0,
                                                options);
  }
}

TEST(VerificationRecall, FullRecallMatchesExactExpectations) {
  // At r = 1 the recall expectations reduce algebraically to the exact
  // pattern expectations — pin the reduction tightly (the same forms, so
  // agreement is to rounding, not statistics).
  const core::ModelParams p = noisy();
  const double work = 750.0;
  EXPECT_NEAR(core::expected_time_recall(p, 1.0, work, 0.5, 1.0),
              core::expected_time(p, work, 0.5, 1.0), 1e-9);
  EXPECT_NEAR(core::expected_energy_recall(p, 1.0, work, 0.5, 1.0),
              core::expected_energy(p, work, 0.5, 1.0), 1e-6);
  EXPECT_EQ(core::recall_corruption_probability(p, 1.0, work, 0.5, 1.0),
            0.0);
}

TEST(VerificationRecall, TraceMarksMissedErrors) {
  const core::ModelParams p = noisy();
  const Simulator sim = make_simulator(p, 0.0);
  const ExecutionPolicy policy = ExecutionPolicy::two_speed(500.0, 0.5, 1.0);
  Xoshiro256 rng(6);
  Trace trace(1 << 16);
  const SimResult run = sim.run(policy, 50000.0, rng, &trace);
  ASSERT_GT(run.corrupted_checkpoints, 0u);
  std::size_t marks = 0;
  for (const auto& event : trace.events()) {
    if (event.type == EventType::kSilentMissed) ++marks;
  }
  EXPECT_EQ(marks, run.corrupted_checkpoints);
  EXPECT_STREQ(to_string(EventType::kSilentMissed), "silent-missed");
}

TEST(VerificationRecall, RejectsOutOfRangeRecall) {
  const core::ModelParams p = noisy();
  SimulatorOptions options;
  options.verification_recall = 1.5;
  EXPECT_THROW(Simulator(p, FaultInjector(p), options),
               std::invalid_argument);
  options.verification_recall = -0.1;
  EXPECT_THROW(Simulator(p, FaultInjector(p), options),
               std::invalid_argument);
}

}  // namespace
}  // namespace rexspeed::sim
