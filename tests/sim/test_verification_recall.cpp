#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "rexspeed/sim/monte_carlo.hpp"
#include "rexspeed/sim/simulator.hpp"
#include "test_util.hpp"

namespace rexspeed::sim {
namespace {

core::ModelParams noisy() {
  core::ModelParams p = test::toy_params();
  p.lambda_silent = 5e-4;
  return p;
}

Simulator make_simulator(const core::ModelParams& p, double recall) {
  SimulatorOptions options;
  options.verification_recall = recall;
  return Simulator(p, FaultInjector(p), options);
}

TEST(VerificationRecall, PerfectRecallNeverCorrupts) {
  const core::ModelParams p = noisy();
  const Simulator sim = make_simulator(p, 1.0);
  const ExecutionPolicy policy = ExecutionPolicy::two_speed(500.0, 0.5, 1.0);
  Xoshiro256 rng(1);
  const SimResult run = sim.run(policy, 50000.0, rng);
  EXPECT_GT(run.silent_errors, 0u);
  EXPECT_EQ(run.corrupted_checkpoints, 0u);
  EXPECT_FALSE(run.result_corrupted());
}

TEST(VerificationRecall, ZeroRecallCommitsEveryStruckPattern) {
  const core::ModelParams p = noisy();
  const Simulator sim = make_simulator(p, 0.0);
  const ExecutionPolicy policy = ExecutionPolicy::two_speed(500.0, 0.5, 1.0);
  Xoshiro256 rng(2);
  const SimResult run = sim.run(policy, 50000.0, rng);
  // Nothing is ever detected: no recoveries, every error is committed.
  EXPECT_EQ(run.silent_errors, 0u);
  EXPECT_EQ(run.recoveries, 0u);
  EXPECT_GT(run.corrupted_checkpoints, 0u);
  EXPECT_EQ(run.attempts, run.patterns);
  EXPECT_TRUE(run.result_corrupted());
}

TEST(VerificationRecall, MissRatioMatchesRecall) {
  const core::ModelParams p = noisy();
  const Simulator sim = make_simulator(p, 0.8);
  const ExecutionPolicy policy = ExecutionPolicy::two_speed(500.0, 0.5, 1.0);
  Xoshiro256 rng(3);
  std::size_t detected = 0;
  std::size_t missed = 0;
  for (int rep = 0; rep < 200; ++rep) {
    const SimResult run = sim.run(policy, 20000.0, rng);
    detected += run.silent_errors;
    missed += run.corrupted_checkpoints;
  }
  const double total = static_cast<double>(detected + missed);
  ASSERT_GT(total, 500.0);
  // Detected fraction ≈ recall.
  EXPECT_NEAR(static_cast<double>(detected) / total, 0.8, 0.04);
}

TEST(VerificationRecall, MissedErrorsDoNotPayRecovery) {
  // A run with recall 0 is exactly an error-free run in time and energy:
  // nothing is detected, nothing re-executed.
  core::ModelParams p = noisy();
  const Simulator with_misses = make_simulator(p, 0.0);
  core::ModelParams clean = p;
  clean.lambda_silent = 0.0;
  const Simulator error_free(clean);
  const ExecutionPolicy policy = ExecutionPolicy::two_speed(500.0, 0.5, 1.0);
  Xoshiro256 a(4);
  Xoshiro256 b(5);
  const SimResult miss_run = with_misses.run(policy, 10000.0, a);
  const SimResult clean_run = error_free.run(policy, 10000.0, b);
  EXPECT_NEAR(miss_run.makespan_s, clean_run.makespan_s, 1e-9);
  EXPECT_NEAR(miss_run.energy_mws, clean_run.energy_mws, 1e-6);
}

TEST(VerificationRecall, MonteCarloTracksCorruptionProbability) {
  const core::ModelParams p = noisy();
  const Simulator sim = make_simulator(p, 0.5);
  const ExecutionPolicy policy = ExecutionPolicy::two_speed(500.0, 0.5, 1.0);
  MonteCarloOptions options;
  options.replications = 200;
  options.total_work = 20000.0;
  const MonteCarloResult mc = run_monte_carlo(sim, policy, options);
  EXPECT_GT(mc.corrupted_runs.mean(), 0.5);  // misses are frequent here
  EXPECT_LE(mc.corrupted_runs.mean(), 1.0);
  EXPECT_GT(mc.corrupted_checkpoints.mean(), 0.0);
}

TEST(VerificationRecall, TraceMarksMissedErrors) {
  const core::ModelParams p = noisy();
  const Simulator sim = make_simulator(p, 0.0);
  const ExecutionPolicy policy = ExecutionPolicy::two_speed(500.0, 0.5, 1.0);
  Xoshiro256 rng(6);
  Trace trace(1 << 16);
  const SimResult run = sim.run(policy, 50000.0, rng, &trace);
  ASSERT_GT(run.corrupted_checkpoints, 0u);
  std::size_t marks = 0;
  for (const auto& event : trace.events()) {
    if (event.type == EventType::kSilentMissed) ++marks;
  }
  EXPECT_EQ(marks, run.corrupted_checkpoints);
  EXPECT_STREQ(to_string(EventType::kSilentMissed), "silent-missed");
}

TEST(VerificationRecall, RejectsOutOfRangeRecall) {
  const core::ModelParams p = noisy();
  SimulatorOptions options;
  options.verification_recall = 1.5;
  EXPECT_THROW(Simulator(p, FaultInjector(p), options),
               std::invalid_argument);
  options.verification_recall = -0.1;
  EXPECT_THROW(Simulator(p, FaultInjector(p), options),
               std::invalid_argument);
}

}  // namespace
}  // namespace rexspeed::sim
