// Simulator-vs-model cross-validation for interleaved verification: the
// Monte-Carlo simulator executing ExecutionPolicy::segmented and the
// closed forms of core/interleaved.hpp must estimate the same overheads,
// for every segment count 1..8 — with segments = 1 doubling as a
// regression test of the paper's own (single-verification) model. All
// runs are seeded; tolerances come from the Welford standard error of the
// replication means (see support/crossval.hpp).

#include <gtest/gtest.h>

#include "support/crossval.hpp"
#include "rexspeed/core/exact_expectations.hpp"
#include "rexspeed/engine/scenario.hpp"
#include "rexspeed/sim/monte_carlo.hpp"
#include "test_util.hpp"

namespace rexspeed {
namespace {

using test::CrossValOptions;
using test::expect_simulator_matches_interleaved_model;

TEST(InterleavedCrossVal, ToyParamsSegments1Through8) {
  // The headline sweep: every segment count in [1, 8] on the toy model
  // with errors frequent enough for tight statistics.
  core::ModelParams p = test::toy_params();
  p.lambda_silent = 8e-4;
  p.verification_s = 1.0;
  CrossValOptions options;
  options.base_seed = 0xC805501;
  for (unsigned m = 1; m <= 8; ++m) {
    expect_simulator_matches_interleaved_model(p, 1200.0, m, 0.5, 1.0,
                                               options);
  }
}

TEST(InterleavedCrossVal, PaperConfigurationSegments1248) {
  // A real configuration at a boosted error rate (the paper's rates would
  // need billions of work units for tight statistics), asymmetric speeds.
  core::ModelParams p = test::params_for("Hera/XScale");
  p.lambda_silent *= 50.0;
  CrossValOptions options;
  options.base_seed = 0xC805502;
  for (const unsigned m : {1u, 2u, 4u, 8u}) {
    expect_simulator_matches_interleaved_model(p, 2500.0, m, 0.4, 0.8,
                                               options);
  }
}

TEST(InterleavedCrossVal, EqualSpeedsSegments1248) {
  // σ1 = σ2 exercises the retry tail at the same speed profile.
  core::ModelParams p = test::params_for("Atlas/Crusoe");
  p.lambda_silent *= 80.0;
  CrossValOptions options;
  options.base_seed = 0xC805503;
  for (const unsigned m : {1u, 2u, 4u, 8u}) {
    expect_simulator_matches_interleaved_model(p, 1500.0, m, 0.6, 0.6,
                                               options);
  }
}

TEST(InterleavedCrossVal, SegmentsOneIsThePaperModel) {
  // Regression anchor: at m = 1 the interleaved closed forms ARE the
  // paper's Prop. 2/3 expectations, so the m = 1 leg of the suite above
  // cross-validates the original model too. Assert the reduction exactly
  // (no Monte-Carlo needed here).
  const core::ModelParams p = test::params_for("Coastal/XScale");
  for (const double w : {800.0, 2764.0}) {
    EXPECT_NEAR(core::expected_time_interleaved(p, w, 1, 0.4, 1.0),
                core::expected_time(p, w, 0.4, 1.0),
                1e-9 * core::expected_time(p, w, 0.4, 1.0));
    EXPECT_NEAR(core::expected_energy_interleaved(p, w, 1, 0.4, 1.0),
                core::expected_energy(p, w, 0.4, 1.0),
                1e-9 * core::expected_energy(p, w, 0.4, 1.0));
  }
}

TEST(InterleavedCrossVal, SolverModePolicyCrossValidates) {
  // End to end: the policy the interleaved solver mode hands to the
  // simulator (make_policy → ExecutionPolicy::segmented) must behave as
  // the solver's own predictions say it will.
  engine::ScenarioSpec spec;
  spec.name = "crossval";
  spec.configuration = "Hera/XScale";
  spec.rho = 5.0;
  spec.max_segments = 6;
  spec.overrides.push_back({"lambda", 1e-3});
  spec.overrides.push_back({"V", 1.0});

  const core::InterleavedSolution sol =
      engine::solve_scenario(spec).interleaved;
  ASSERT_TRUE(sol.feasible);
  EXPECT_GT(sol.segments, 1u);  // the hot regime picks real segmentation

  const sim::ExecutionPolicy policy = engine::make_policy(spec);
  EXPECT_EQ(policy.verification_segments(), sol.segments);
  EXPECT_DOUBLE_EQ(policy.pattern_work(), sol.w_opt);
  EXPECT_DOUBLE_EQ(policy.speed_for_attempt(0), sol.sigma1);
  EXPECT_DOUBLE_EQ(policy.speed_for_attempt(1), sol.sigma2);

  CrossValOptions options;
  options.base_seed = 0xC805504;
  expect_simulator_matches_interleaved_model(
      spec.resolve_params(), sol.w_opt, sol.segments, sol.sigma1,
      sol.sigma2, options);
}

TEST(InterleavedCrossVal, SeededRunsAreReproducible) {
  // The suite is CI-stable because every replication's seed is a pure
  // function of (base_seed, index): identical options → identical stats.
  core::ModelParams p = test::toy_params();
  p.lambda_silent = 8e-4;
  const sim::Simulator simulator(p);
  const sim::ExecutionPolicy policy =
      sim::ExecutionPolicy::segmented(1200.0, 4, 0.5, 1.0);
  sim::MonteCarloOptions options;
  options.replications = 50;
  options.total_work = 20.0 * 1200.0;
  options.base_seed = 0xC805505;
  const auto a = sim::run_monte_carlo(simulator, policy, options);
  const auto b = sim::run_monte_carlo(simulator, policy, options);
  EXPECT_EQ(a.time_overhead.mean(), b.time_overhead.mean());
  EXPECT_EQ(a.energy_overhead.mean(), b.energy_overhead.mean());
  EXPECT_EQ(a.time_overhead.standard_error(),
            b.time_overhead.standard_error());
}

}  // namespace
}  // namespace rexspeed
