#include "rexspeed/sim/rng.hpp"

#include <gtest/gtest.h>

#include <set>

namespace rexspeed::sim {
namespace {

TEST(SplitMix64, KnownAnswerVector) {
  // Reference values from the SplitMix64 specification (seed 0).
  std::uint64_t state = 0;
  EXPECT_EQ(splitmix64(state), 0xE220A8397B1DCDAFULL);
  EXPECT_EQ(splitmix64(state), 0x6E789E6AA1B965F4ULL);
  EXPECT_EQ(splitmix64(state), 0x06C45D188009454FULL);
}

TEST(Xoshiro, DeterministicForEqualSeeds) {
  Xoshiro256 a(42);
  Xoshiro256 b(42);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a(), b());
  }
}

TEST(Xoshiro, DifferentSeedsDiverge) {
  Xoshiro256 a(1);
  Xoshiro256 b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LE(equal, 1);
}

TEST(Xoshiro, ZeroSeedIsWellMixed) {
  // SplitMix64 seeding guarantees a non-degenerate state even for seed 0.
  Xoshiro256 rng(0);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 100; ++i) seen.insert(rng());
  EXPECT_EQ(seen.size(), 100u);
}

TEST(Xoshiro, ReseedRestartsTheStream) {
  Xoshiro256 rng(7);
  const std::uint64_t first = rng();
  rng();
  rng.reseed(7);
  EXPECT_EQ(rng(), first);
}

TEST(Xoshiro, UniformInHalfOpenUnitInterval) {
  Xoshiro256 rng(123);
  for (int i = 0; i < 100000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Xoshiro, UniformPositiveNeverZero) {
  Xoshiro256 rng(456);
  for (int i = 0; i < 100000; ++i) {
    ASSERT_GT(rng.uniform_positive(), 0.0);
    ASSERT_LE(rng.uniform_positive(), 1.0);
  }
}

TEST(Xoshiro, UniformMomentsAreSane) {
  Xoshiro256 rng(2024);
  double sum = 0.0;
  double sum_sq = 0.0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) {
    const double u = rng.uniform();
    sum += u;
    sum_sq += u * u;
  }
  EXPECT_NEAR(sum / kN, 0.5, 0.005);
  EXPECT_NEAR(sum_sq / kN - 0.25, 1.0 / 12.0, 0.005);
}

TEST(Xoshiro, JumpDecorrelatesStreams) {
  Xoshiro256 a(99);
  Xoshiro256 b(99);
  b.jump();
  EXPECT_NE(a, b);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LE(equal, 1);
}

TEST(Xoshiro, SatisfiesUniformRandomBitGenerator) {
  static_assert(std::uniform_random_bit_generator<Xoshiro256>);
  EXPECT_EQ(Xoshiro256::min(), 0u);
  EXPECT_EQ(Xoshiro256::max(), ~std::uint64_t{0});
}

}  // namespace
}  // namespace rexspeed::sim
