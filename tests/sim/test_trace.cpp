#include "rexspeed/sim/trace.hpp"

#include <gtest/gtest.h>

namespace rexspeed::sim {
namespace {

TEST(Trace, RecordsEventsInOrder) {
  Trace trace;
  trace.record({EventType::kCompute, 0.0, 100.0, 0.5, 0, 0});
  trace.record({EventType::kVerification, 100.0, 4.0, 0.5, 0, 0});
  trace.record({EventType::kCheckpoint, 104.0, 10.0, 0.0, 0, 0});
  ASSERT_EQ(trace.events().size(), 3u);
  EXPECT_EQ(trace.events()[0].type, EventType::kCompute);
  EXPECT_EQ(trace.events()[2].type, EventType::kCheckpoint);
  EXPECT_FALSE(trace.truncated());
}

TEST(Trace, StopsAtCapacityAndFlagsTruncation) {
  Trace trace(2);
  for (int i = 0; i < 5; ++i) {
    trace.record({EventType::kCompute, static_cast<double>(i), 1.0, 1.0,
                  0, 0});
  }
  EXPECT_EQ(trace.events().size(), 2u);
  EXPECT_TRUE(trace.truncated());
}

TEST(Trace, EventTypeNames) {
  EXPECT_STREQ(to_string(EventType::kCompute), "compute");
  EXPECT_STREQ(to_string(EventType::kVerification), "verify");
  EXPECT_STREQ(to_string(EventType::kCheckpoint), "checkpoint");
  EXPECT_STREQ(to_string(EventType::kRecovery), "recovery");
  EXPECT_STREQ(to_string(EventType::kSilentDetect), "silent-detected");
  EXPECT_STREQ(to_string(EventType::kFailStop), "fail-stop");
}

TEST(Trace, FormatContainsKeyFields) {
  const TraceEvent event{EventType::kCompute, 1234.5, 500.0, 0.4, 3, 1};
  const std::string text = Trace::format(event);
  EXPECT_NE(text.find("compute"), std::string::npos);
  EXPECT_NE(text.find("1234.5"), std::string::npos);
  EXPECT_NE(text.find("0.40"), std::string::npos);
  EXPECT_NE(text.find("pattern 3"), std::string::npos);
  EXPECT_NE(text.find("attempt 1"), std::string::npos);
}

TEST(Trace, FormatOmitsSpeedForIoSegments) {
  const TraceEvent event{EventType::kCheckpoint, 0.0, 300.0, 0.0, 0, 0};
  const std::string text = Trace::format(event);
  EXPECT_NE(text.find("checkpoint"), std::string::npos);
  EXPECT_EQ(text.find('@'), std::string::npos);
}

}  // namespace
}  // namespace rexspeed::sim
