#include "rexspeed/sim/policy.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace rexspeed::sim {
namespace {

TEST(ExecutionPolicy, TwoSpeedSchedule) {
  const ExecutionPolicy policy = ExecutionPolicy::two_speed(1000.0, 0.4, 0.8);
  EXPECT_DOUBLE_EQ(policy.pattern_work(), 1000.0);
  EXPECT_DOUBLE_EQ(policy.speed_for_attempt(0), 0.4);
  EXPECT_DOUBLE_EQ(policy.speed_for_attempt(1), 0.8);
  EXPECT_DOUBLE_EQ(policy.speed_for_attempt(2), 0.8);   // repeats last
  EXPECT_DOUBLE_EQ(policy.speed_for_attempt(99), 0.8);  // forever
}

TEST(ExecutionPolicy, SingleSpeedSchedule) {
  const ExecutionPolicy policy = ExecutionPolicy::single_speed(500.0, 0.6);
  EXPECT_DOUBLE_EQ(policy.speed_for_attempt(0), 0.6);
  EXPECT_DOUBLE_EQ(policy.speed_for_attempt(5), 0.6);
}

TEST(ExecutionPolicy, LadderSchedule) {
  const ExecutionPolicy policy(1000.0, {0.4, 0.6, 0.8, 1.0});
  EXPECT_DOUBLE_EQ(policy.speed_for_attempt(0), 0.4);
  EXPECT_DOUBLE_EQ(policy.speed_for_attempt(2), 0.8);
  EXPECT_DOUBLE_EQ(policy.speed_for_attempt(3), 1.0);
  EXPECT_DOUBLE_EQ(policy.speed_for_attempt(10), 1.0);
}

TEST(ExecutionPolicy, FromSolution) {
  core::PairSolution sol;
  sol.feasible = true;
  sol.sigma1 = 0.4;
  sol.sigma2 = 0.8;
  sol.w_opt = 2764.0;
  const ExecutionPolicy policy = ExecutionPolicy::from_solution(sol);
  EXPECT_DOUBLE_EQ(policy.pattern_work(), 2764.0);
  EXPECT_DOUBLE_EQ(policy.speed_for_attempt(0), 0.4);
  EXPECT_DOUBLE_EQ(policy.speed_for_attempt(1), 0.8);
}

TEST(ExecutionPolicy, FromInfeasibleSolutionThrows) {
  core::PairSolution sol;  // feasible = false
  EXPECT_THROW(ExecutionPolicy::from_solution(sol), std::invalid_argument);
}

TEST(ExecutionPolicy, RejectsBadArguments) {
  EXPECT_THROW(ExecutionPolicy(0.0, {0.5}), std::invalid_argument);
  EXPECT_THROW(ExecutionPolicy(100.0, {}), std::invalid_argument);
  EXPECT_THROW(ExecutionPolicy(100.0, {0.5, 0.0}), std::invalid_argument);
  EXPECT_THROW(ExecutionPolicy(100.0, {-0.5}), std::invalid_argument);
}

}  // namespace
}  // namespace rexspeed::sim
