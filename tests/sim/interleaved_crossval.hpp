#pragma once

// Reusable simulator-vs-model cross-validation fixture for interleaved
// (segmented) verification patterns: Monte-Carlo-estimates the time and
// energy overheads of an ExecutionPolicy::segmented run and asserts
// agreement with the interleaved closed forms within a seeded confidence
// interval. The tolerance is derived from the replications' Welford
// standard error (stats/welford.hpp): `sigmas` standard errors of the
// mean, plus an epsilon for the error-free case where the variance
// collapses to zero.

#include <gtest/gtest.h>

#include <cstdint>

#include "rexspeed/core/interleaved.hpp"
#include "rexspeed/sim/monte_carlo.hpp"
#include "rexspeed/sim/simulator.hpp"

namespace rexspeed::test {

struct CrossValOptions {
  std::size_t replications = 300;
  /// Whole patterns simulated per replication (more patterns → tighter
  /// per-replication estimate of the overheads).
  double patterns_per_replication = 60.0;
  /// Seeds are fixed so CI runs are reproducible; vary the seed per case,
  /// never per run.
  std::uint64_t base_seed = 0x1A7E;
  /// Widened interval: with many (segment count × metric) combinations
  /// under test, a plain 95% interval would flake. 4.5 standard errors
  /// keeps the family-wise false-alarm rate negligible while still
  /// detecting real model/simulator mismatches (a 1% bias in either is
  /// many standard errors at these replication counts).
  double sigmas = 4.5;
};

/// Runs the segmented policy (work, segments, σ1, σ2) under the
/// fault-injection simulator and asserts the observed mean time/energy
/// overheads match expected_time_interleaved / expected_energy_interleaved
/// within `sigmas` Welford standard errors.
inline void expect_simulator_matches_interleaved_model(
    const core::ModelParams& params, double work, unsigned segments,
    double sigma1, double sigma2, const CrossValOptions& options = {}) {
  SCOPED_TRACE("segments=" + std::to_string(segments));
  const sim::Simulator simulator(params);
  const sim::ExecutionPolicy policy =
      sim::ExecutionPolicy::segmented(work, segments, sigma1, sigma2);
  sim::MonteCarloOptions mc_options;
  mc_options.replications = options.replications;
  mc_options.total_work = options.patterns_per_replication * work;
  mc_options.base_seed = options.base_seed + segments;
  const sim::MonteCarloResult mc =
      sim::run_monte_carlo(simulator, policy, mc_options);

  const double expected_t =
      core::expected_time_interleaved(params, work, segments, sigma1,
                                      sigma2) /
      work;
  const double expected_e =
      core::expected_energy_interleaved(params, work, segments, sigma1,
                                        sigma2) /
      work;
  EXPECT_NEAR(mc.time_overhead.mean(), expected_t,
              options.sigmas * mc.time_overhead.standard_error() + 1e-12);
  EXPECT_NEAR(mc.energy_overhead.mean(), expected_e,
              options.sigmas * mc.energy_overhead.standard_error() + 1e-9);
}

}  // namespace rexspeed::test
