// Simulator support for interleaved-verification policies: the segmented
// timeline, early detection, and agreement with the core::interleaved
// closed forms.

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "rexspeed/core/interleaved.hpp"
#include "rexspeed/sim/monte_carlo.hpp"
#include "rexspeed/sim/simulator.hpp"
#include "test_util.hpp"

namespace rexspeed::sim {
namespace {

TEST(SegmentedPolicy, FactoryAndValidation) {
  const ExecutionPolicy policy =
      ExecutionPolicy::segmented(1000.0, 4, 0.5, 1.0);
  EXPECT_EQ(policy.verification_segments(), 4u);
  EXPECT_DOUBLE_EQ(policy.speed_for_attempt(0), 0.5);
  EXPECT_DOUBLE_EQ(policy.speed_for_attempt(1), 1.0);
  EXPECT_THROW(ExecutionPolicy(100.0, {0.5}, 0), std::invalid_argument);
  // Default policies keep the paper's single verification.
  EXPECT_EQ(ExecutionPolicy::two_speed(100.0, 0.5, 1.0)
                .verification_segments(),
            1u);
}

TEST(SegmentedPolicy, ErrorFreeTimelineHasOneVerificationPerSegment) {
  core::ModelParams p = test::toy_params();
  p.lambda_silent = 0.0;
  const Simulator sim(p);
  const ExecutionPolicy policy =
      ExecutionPolicy::segmented(100.0, 4, 0.5, 0.5);
  Xoshiro256 rng(1);
  Trace trace;
  const SimResult run = sim.run(policy, 100.0, rng, &trace);
  std::size_t computes = 0;
  std::size_t verifies = 0;
  for (const auto& event : trace.events()) {
    if (event.type == EventType::kCompute) {
      ++computes;
      EXPECT_NEAR(event.duration_s, 100.0 / 4 / 0.5, 1e-12);
    }
    if (event.type == EventType::kVerification) {
      ++verifies;
      EXPECT_NEAR(event.duration_s, p.verification_s / 0.5, 1e-12);
    }
  }
  EXPECT_EQ(computes, 4u);
  EXPECT_EQ(verifies, 4u);
  // Total time: compute + 4 verifications + checkpoint.
  EXPECT_NEAR(run.makespan_s,
              100.0 / 0.5 + 4.0 * p.verification_s / 0.5 + p.checkpoint_s,
              1e-9);
}

TEST(SegmentedPolicy, EarlyDetectionWastesLessThanFullPattern) {
  // With a segmented policy, a detected error costs at most the prefix up
  // to its segment's verification — never the whole attempt.
  core::ModelParams p = test::toy_params();
  p.lambda_silent = 2e-3;
  const Simulator sim(p);
  const ExecutionPolicy policy =
      ExecutionPolicy::segmented(1000.0, 5, 0.5, 0.5);
  Xoshiro256 rng(2);
  Trace trace(1 << 18);
  const SimResult run = sim.run(policy, 20000.0, rng, &trace);
  ASSERT_GT(run.silent_errors, 0u);
  // Between two recovery markers, the number of compute segments of a
  // failed attempt is between 1 and 5.
  unsigned consecutive_computes = 0;
  for (const auto& event : trace.events()) {
    if (event.type == EventType::kCompute) {
      ++consecutive_computes;
      EXPECT_LE(consecutive_computes, 5u);
    } else if (event.type == EventType::kRecovery ||
               event.type == EventType::kCheckpoint) {
      consecutive_computes = 0;
    }
  }
}

TEST(SegmentedPolicy, MonteCarloMatchesInterleavedClosedForm) {
  core::ModelParams p = test::toy_params();
  p.lambda_silent = 8e-4;
  p.verification_s = 1.0;
  const double w = 1200.0;
  const Simulator sim(p);
  for (const unsigned m : {1u, 3u, 6u}) {
    const ExecutionPolicy policy =
        ExecutionPolicy::segmented(w, m, 0.5, 1.0);
    MonteCarloOptions options;
    options.replications = 300;
    options.total_work = 60.0 * w;
    options.base_seed = 0x5E6 + m;
    const MonteCarloResult mc = run_monte_carlo(sim, policy, options);
    const double expected_t =
        core::expected_time_interleaved(p, w, m, 0.5, 1.0) / w;
    const double expected_e =
        core::expected_energy_interleaved(p, w, m, 0.5, 1.0) / w;
    EXPECT_NEAR(mc.time_overhead.mean(), expected_t,
                3.5 * mc.time_ci.half_width() + 1e-12)
        << "m=" << m;
    EXPECT_NEAR(mc.energy_overhead.mean(), expected_e,
                3.5 * mc.energy_ci.half_width() + 1e-9)
        << "m=" << m;
  }
}

TEST(SegmentedPolicy, TraceDurationsStillSumToMakespan) {
  core::ModelParams p = test::toy_params();
  p.lambda_silent = 1e-3;
  p.lambda_failstop = 2e-4;
  const Simulator sim(p);
  const ExecutionPolicy policy =
      ExecutionPolicy::segmented(600.0, 3, 0.5, 1.0);
  Xoshiro256 rng(7);
  Trace trace(1 << 20);
  const SimResult run = sim.run(policy, 12000.0, rng, &trace);
  ASSERT_FALSE(trace.truncated());
  double sum = 0.0;
  for (const auto& event : trace.events()) sum += event.duration_s;
  EXPECT_NEAR(sum, run.makespan_s, 1e-6 * run.makespan_s);
}

TEST(SegmentedPolicy, PartialRecallCanDetectAtALaterVerification) {
  // With recall < 1 and several segments, a miss at the struck segment
  // can be caught by a later verification of the same attempt — silent
  // errors are then a mix of early and late detections, and fewer
  // checkpoints are corrupted than with a single verification.
  core::ModelParams p = test::toy_params();
  p.lambda_silent = 1e-3;
  SimulatorOptions options;
  options.verification_recall = 0.6;
  const Simulator segmented(p, FaultInjector(p), options);
  Xoshiro256 a(11);
  Xoshiro256 b(11);
  const SimResult many = segmented.run(
      ExecutionPolicy::segmented(800.0, 6, 0.5, 1.0), 200000.0, a);
  const SimResult one = segmented.run(
      ExecutionPolicy::segmented(800.0, 1, 0.5, 1.0), 200000.0, b);
  ASSERT_GT(one.corrupted_checkpoints, 10u);
  // A miss slips through only if every verification from the struck
  // segment onward fails; averaging 0.4^j over the strike position gives
  // ≈ (1/6)Σ_{j=1..6} 0.4^j ≈ 0.11 vs the single-verification 0.4 —
  // roughly a 3.6× reduction. Assert a conservative 2×.
  EXPECT_LT(static_cast<double>(many.corrupted_checkpoints),
            0.5 * static_cast<double>(one.corrupted_checkpoints));
}

}  // namespace
}  // namespace rexspeed::sim
