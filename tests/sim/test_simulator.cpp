#include "rexspeed/sim/simulator.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "test_util.hpp"

namespace rexspeed::sim {
namespace {

core::ModelParams error_free() {
  core::ModelParams p = test::toy_params();
  p.lambda_silent = 0.0;
  return p;
}

TEST(Simulator, ErrorFreeRunIsDeterministic) {
  const core::ModelParams p = error_free();
  const Simulator sim(p);
  const ExecutionPolicy policy = ExecutionPolicy::two_speed(100.0, 0.5, 1.0);
  Xoshiro256 rng(1);
  const SimResult result = sim.run(policy, 1000.0, rng);
  // 10 patterns, each (100+2)/0.5 s compute+verify plus 10 s checkpoint.
  EXPECT_EQ(result.patterns, 10u);
  EXPECT_EQ(result.attempts, 10u);
  EXPECT_EQ(result.checkpoints, 10u);
  EXPECT_EQ(result.silent_errors, 0u);
  EXPECT_EQ(result.recoveries, 0u);
  EXPECT_NEAR(result.makespan_s, 10.0 * (102.0 / 0.5 + 10.0), 1e-9);
  const double expected_energy =
      10.0 * (102.0 / 0.5 * p.compute_power(0.5) +
              10.0 * p.io_total_power());
  EXPECT_NEAR(result.energy_mws, expected_energy, 1e-6);
}

TEST(Simulator, PartialFinalPattern) {
  const Simulator sim(error_free());
  const ExecutionPolicy policy = ExecutionPolicy::single_speed(300.0, 1.0);
  Xoshiro256 rng(2);
  const SimResult result = sim.run(policy, 750.0, rng);
  // Two full patterns of 300 plus one of 150.
  EXPECT_EQ(result.patterns, 3u);
  EXPECT_NEAR(result.makespan_s,
              (300.0 + 2.0) * 2 + (150.0 + 2.0) + 3 * 10.0, 1e-9);
  EXPECT_DOUBLE_EQ(result.total_work, 750.0);
}

TEST(Simulator, SilentErrorsTriggerRecoveryAndReexecutionSpeed) {
  core::ModelParams p = test::toy_params();
  // First attempt runs 200 s (50/0.25) ⇒ error probability 1−e⁻⁴ ≈ 0.98;
  // retries run 50 s at full speed ⇒ they succeed ~37% of the time, so
  // the pattern terminates quickly but almost always shows a retry.
  p.lambda_silent = 0.02;
  const Simulator sim(p);
  const ExecutionPolicy policy = ExecutionPolicy::two_speed(50.0, 0.25, 1.0);
  Xoshiro256 rng(3);
  Trace trace;
  const SimResult result = sim.run(policy, 50.0, rng, &trace);
  ASSERT_GE(result.silent_errors, 1u);
  EXPECT_EQ(result.recoveries, result.silent_errors);
  EXPECT_EQ(result.attempts, result.silent_errors + 1);
  // First attempt at σ1, every retry at σ2.
  bool saw_first = false;
  bool saw_retry = false;
  for (const auto& event : trace.events()) {
    if (event.type != EventType::kCompute) continue;
    if (event.attempt == 0) {
      EXPECT_DOUBLE_EQ(event.speed, 0.25);
      saw_first = true;
    } else {
      EXPECT_DOUBLE_EQ(event.speed, 1.0);
      saw_retry = true;
    }
  }
  EXPECT_TRUE(saw_first);
  EXPECT_TRUE(saw_retry);
}

TEST(Simulator, FailStopInterruptsImmediately) {
  core::ModelParams p = test::toy_params();
  p.lambda_silent = 0.0;
  p.lambda_failstop = 0.05;
  const Simulator sim(p);
  const ExecutionPolicy policy = ExecutionPolicy::single_speed(100.0, 1.0);
  Xoshiro256 rng(4);
  Trace trace;
  const SimResult result = sim.run(policy, 500.0, rng, &trace);
  EXPECT_GE(result.failstop_errors, 1u);
  // A fail-stop attempt's compute segment is shorter than the full span.
  bool saw_interrupted = false;
  for (std::size_t i = 0; i + 1 < trace.events().size(); ++i) {
    if (trace.events()[i + 1].type == EventType::kFailStop &&
        trace.events()[i].type == EventType::kCompute) {
      saw_interrupted |= trace.events()[i].duration_s < 100.0;
    }
  }
  EXPECT_TRUE(saw_interrupted);
}

TEST(Simulator, SameSeedSameResult) {
  core::ModelParams p = test::toy_params();
  p.lambda_silent = 1e-3;
  p.lambda_failstop = 1e-4;
  const Simulator sim(p);
  const ExecutionPolicy policy = ExecutionPolicy::two_speed(200.0, 0.5, 1.0);
  Xoshiro256 a(42);
  Xoshiro256 b(42);
  const SimResult ra = sim.run(policy, 5000.0, a);
  const SimResult rb = sim.run(policy, 5000.0, b);
  EXPECT_EQ(ra.makespan_s, rb.makespan_s);
  EXPECT_EQ(ra.energy_mws, rb.energy_mws);
  EXPECT_EQ(ra.silent_errors, rb.silent_errors);
  EXPECT_EQ(ra.failstop_errors, rb.failstop_errors);
}

TEST(Simulator, TraceDurationsSumToMakespan) {
  core::ModelParams p = test::toy_params();
  p.lambda_silent = 1e-3;
  p.lambda_failstop = 2e-4;
  const Simulator sim(p);
  const ExecutionPolicy policy = ExecutionPolicy::two_speed(150.0, 0.5, 1.0);
  Xoshiro256 rng(7);
  Trace trace(1 << 20);
  const SimResult result = sim.run(policy, 3000.0, rng, &trace);
  ASSERT_FALSE(trace.truncated());
  double sum = 0.0;
  for (const auto& event : trace.events()) sum += event.duration_s;
  EXPECT_NEAR(sum, result.makespan_s, 1e-6 * result.makespan_s);
}

TEST(Simulator, TraceEnergyReconstruction) {
  core::ModelParams p = test::toy_params();
  p.lambda_silent = 5e-4;
  const Simulator sim(p);
  const ExecutionPolicy policy = ExecutionPolicy::two_speed(150.0, 0.5, 1.0);
  Xoshiro256 rng(8);
  Trace trace(1 << 20);
  const SimResult result = sim.run(policy, 3000.0, rng, &trace);
  ASSERT_FALSE(trace.truncated());
  double energy = 0.0;
  for (const auto& event : trace.events()) {
    switch (event.type) {
      case EventType::kCompute:
      case EventType::kVerification:
        energy += event.duration_s * p.compute_power(event.speed);
        break;
      case EventType::kCheckpoint:
      case EventType::kRecovery:
        energy += event.duration_s * p.io_total_power();
        break;
      default:
        break;
    }
  }
  EXPECT_NEAR(energy, result.energy_mws, 1e-6 * result.energy_mws);
}

TEST(Simulator, CheckpointCountEqualsPatternCount) {
  core::ModelParams p = test::toy_params();
  p.lambda_silent = 1e-3;
  const Simulator sim(p);
  const ExecutionPolicy policy = ExecutionPolicy::single_speed(100.0, 0.5);
  Xoshiro256 rng(9);
  const SimResult result = sim.run(policy, 2000.0, rng);
  EXPECT_EQ(result.checkpoints, result.patterns);
  EXPECT_EQ(result.patterns, 20u);
}

TEST(Simulator, WeibullInjectorRuns) {
  core::ModelParams p = test::toy_params();
  p.lambda_silent = 1e-3;
  const Simulator sim(
      p, FaultInjector(ArrivalSampler::weibull(0.7, p.lambda_silent),
                       ArrivalSampler::exponential(0.0)));
  const ExecutionPolicy policy = ExecutionPolicy::two_speed(200.0, 0.5, 1.0);
  Xoshiro256 rng(10);
  const SimResult result = sim.run(policy, 10000.0, rng);
  EXPECT_GT(result.silent_errors, 0u);
  EXPECT_EQ(result.failstop_errors, 0u);
}

TEST(Simulator, RejectsNonPositiveWork) {
  const Simulator sim(error_free());
  const ExecutionPolicy policy = ExecutionPolicy::single_speed(100.0, 1.0);
  Xoshiro256 rng(11);
  EXPECT_THROW((void)sim.run(policy, 0.0, rng), std::invalid_argument);
}

}  // namespace
}  // namespace rexspeed::sim
