#include "rexspeed/sim/fault_injector.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "test_util.hpp"

namespace rexspeed::sim {
namespace {

TEST(FaultInjector, ErrorFreeModelNeverInjects) {
  core::ModelParams p = test::toy_params();
  p.lambda_silent = 0.0;
  const FaultInjector injector(p);
  Xoshiro256 rng(1);
  for (int i = 0; i < 1000; ++i) {
    const AttemptFaults faults = injector.sample_attempt(1e6, 1e3, rng);
    EXPECT_TRUE(std::isinf(faults.failstop_at_s));
    EXPECT_TRUE(std::isinf(faults.silent_at_s));
  }
}

TEST(FaultInjector, SilentArrivalsConfinedToComputeWindow) {
  core::ModelParams p = test::toy_params();
  p.lambda_silent = 1e-2;
  const FaultInjector injector(p);
  Xoshiro256 rng(2);
  const double compute = 200.0;
  for (int i = 0; i < 10000; ++i) {
    const AttemptFaults faults = injector.sample_attempt(compute, 50.0, rng);
    if (std::isfinite(faults.silent_at_s)) {
      EXPECT_LT(faults.silent_at_s, compute);
      EXPECT_GE(faults.silent_at_s, 0.0);
    }
  }
}

TEST(FaultInjector, FailstopArrivalsConfinedToFullSpan) {
  core::ModelParams p = test::toy_params();
  p.lambda_silent = 0.0;
  p.lambda_failstop = 1e-2;
  const FaultInjector injector(p);
  Xoshiro256 rng(3);
  const double compute = 200.0;
  const double verify = 50.0;
  bool saw_verify_phase_failure = false;
  for (int i = 0; i < 20000; ++i) {
    const AttemptFaults faults =
        injector.sample_attempt(compute, verify, rng);
    if (std::isfinite(faults.failstop_at_s)) {
      EXPECT_LT(faults.failstop_at_s, compute + verify);
      if (faults.failstop_at_s > compute) saw_verify_phase_failure = true;
    }
  }
  EXPECT_TRUE(saw_verify_phase_failure);  // fail-stop can hit verification
}

TEST(FaultInjector, SilentStrikeProbabilityMatchesModel) {
  core::ModelParams p = test::toy_params();
  p.lambda_silent = 2e-4;
  const FaultInjector injector(p);
  Xoshiro256 rng(4);
  const double compute = 3000.0;  // p = 1 − e^{−0.6} ≈ 0.451
  int struck = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    if (std::isfinite(injector.sample_attempt(compute, 10.0, rng).silent_at_s))
      ++struck;
  }
  EXPECT_NEAR(static_cast<double>(struck) / kN,
              -std::expm1(-p.lambda_silent * compute), 0.006);
}

TEST(FaultInjector, CustomSamplersAreUsed) {
  const FaultInjector injector(ArrivalSampler::weibull(0.7, 1e-3),
                               ArrivalSampler::exponential(0.0));
  EXPECT_EQ(injector.silent().kind(), ArrivalKind::kWeibull);
  EXPECT_DOUBLE_EQ(injector.failstop().rate(), 0.0);
  Xoshiro256 rng(5);
  const AttemptFaults faults = injector.sample_attempt(1e5, 0.0, rng);
  EXPECT_TRUE(std::isinf(faults.failstop_at_s));
}

TEST(FaultInjector, RejectsNegativeDurations) {
  const FaultInjector injector(test::toy_params());
  Xoshiro256 rng(6);
  EXPECT_THROW(injector.sample_attempt(-1.0, 10.0, rng),
               std::invalid_argument);
  EXPECT_THROW(injector.sample_attempt(10.0, -1.0, rng),
               std::invalid_argument);
}

}  // namespace
}  // namespace rexspeed::sim
