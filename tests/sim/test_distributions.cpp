#include "rexspeed/sim/distributions.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>

#include "rexspeed/stats/welford.hpp"

namespace rexspeed::sim {
namespace {

stats::Welford sample_many(const auto& dist, std::uint64_t seed, int n) {
  Xoshiro256 rng(seed);
  stats::Welford acc;
  for (int i = 0; i < n; ++i) acc.add(dist.sample(rng));
  return acc;
}

TEST(Exponential, MeanAndVarianceMatchTheory) {
  const Exponential dist(0.01);  // mean 100, var 100²
  const stats::Welford acc = sample_many(dist, 1, 200000);
  EXPECT_NEAR(acc.mean(), 100.0, 1.5);
  EXPECT_NEAR(acc.variance(), 10000.0, 300.0);
  EXPECT_GT(acc.min(), 0.0);
}

TEST(Exponential, ZeroRateNeverFires) {
  const Exponential dist(0.0);
  Xoshiro256 rng(2);
  EXPECT_TRUE(std::isinf(dist.sample(rng)));
  EXPECT_TRUE(std::isinf(dist.mean()));
}

TEST(Exponential, RejectsNegativeRate) {
  EXPECT_THROW(Exponential(-1.0), std::invalid_argument);
}

TEST(Exponential, SurvivalProbabilityMatchesClosedForm) {
  const double rate = 0.002;
  const double horizon = 400.0;
  const Exponential dist(rate);
  Xoshiro256 rng(3);
  int survived = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    if (dist.sample(rng) > horizon) ++survived;
  }
  EXPECT_NEAR(static_cast<double>(survived) / kN, std::exp(-rate * horizon),
              0.005);
}

TEST(WeibullMeanToScale, GammaFactorKnownValues) {
  // k = 1: Γ(2) = 1 ⇒ scale = mean.
  EXPECT_NEAR(weibull_mean_to_scale(1.0, 50.0), 50.0, 1e-9);
  // k = 2: Γ(1.5) = √π/2 ≈ 0.8862269.
  EXPECT_NEAR(weibull_mean_to_scale(2.0, 100.0), 100.0 / 0.88622692545276,
              1e-6);
}

TEST(Weibull, MeanMatchesRequestedMean) {
  for (const double shape : {0.5, 0.7, 1.0, 2.0}) {
    const Weibull dist(shape, 100.0);
    const stats::Welford acc = sample_many(dist, 11, 400000);
    // Heavy-tailed at small shapes; allow a few percent.
    EXPECT_NEAR(acc.mean(), 100.0, shape < 1.0 ? 4.0 : 1.0)
        << "shape=" << shape;
  }
}

TEST(Weibull, ShapeOneIsExponential) {
  const Weibull weibull(1.0, 100.0);
  const Exponential expo(0.01);
  const stats::Welford w = sample_many(weibull, 17, 200000);
  const stats::Welford e = sample_many(expo, 17, 200000);
  EXPECT_NEAR(w.mean(), e.mean(), 2.0);
  EXPECT_NEAR(w.variance(), e.variance(), 500.0);
}

TEST(Weibull, RejectsBadParameters) {
  EXPECT_THROW(Weibull(0.0, 100.0), std::invalid_argument);
  EXPECT_THROW(Weibull(1.0, 0.0), std::invalid_argument);
}

TEST(ArrivalSampler, ExponentialKindMatchesExponential) {
  const ArrivalSampler sampler = ArrivalSampler::exponential(0.01);
  EXPECT_EQ(sampler.kind(), ArrivalKind::kExponential);
  EXPECT_DOUBLE_EQ(sampler.rate(), 0.01);
  Xoshiro256 a(5);
  Xoshiro256 b(5);
  const Exponential reference(0.01);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(sampler.sample(a), reference.sample(b));
  }
}

TEST(ArrivalSampler, WeibullKindMatchesWeibull) {
  const ArrivalSampler sampler = ArrivalSampler::weibull(0.7, 0.01);
  EXPECT_EQ(sampler.kind(), ArrivalKind::kWeibull);
  Xoshiro256 a(6);
  Xoshiro256 b(6);
  const Weibull reference(0.7, 100.0);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(sampler.sample(a), reference.sample(b));
  }
}

TEST(ArrivalSampler, DisabledSourceNeverFires) {
  const ArrivalSampler sampler = ArrivalSampler::exponential(0.0);
  Xoshiro256 rng(7);
  EXPECT_TRUE(std::isinf(sampler.sample(rng)));
  const ArrivalSampler weib = ArrivalSampler::weibull(0.7, 0.0);
  EXPECT_TRUE(std::isinf(weib.sample(rng)));
}

TEST(ArrivalSampler, RejectsBadParameters) {
  EXPECT_THROW(ArrivalSampler::exponential(-1.0), std::invalid_argument);
  EXPECT_THROW(ArrivalSampler::weibull(0.0, 0.01), std::invalid_argument);
  EXPECT_THROW(ArrivalSampler::weibull(1.0, -0.01), std::invalid_argument);
}

}  // namespace
}  // namespace rexspeed::sim
