#include "rexspeed/sweep/figure_sweeps.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "rexspeed/sweep/grid.hpp"
#include "test_util.hpp"

namespace rexspeed::sweep {
namespace {

const platform::Configuration& atlas_crusoe() {
  return platform::configuration_by_name("Atlas/Crusoe");
}

TEST(DefaultGrid, RangesMatchPaperAxes) {
  const auto c = default_grid(SweepParameter::kCheckpointTime, 11);
  EXPECT_DOUBLE_EQ(c.front(), 0.0);
  EXPECT_DOUBLE_EQ(c.back(), 5000.0);
  const auto rho = default_grid(SweepParameter::kPerformanceBound, 11);
  EXPECT_DOUBLE_EQ(rho.front(), 1.0);
  EXPECT_DOUBLE_EQ(rho.back(), 3.5);
  const auto lam = default_grid(SweepParameter::kErrorRate, 11);
  EXPECT_NEAR(lam.front(), 1e-6, 1e-18);
  EXPECT_DOUBLE_EQ(lam.back(), 1e-2);
}

TEST(ApplyParameter, SetsTheRightField) {
  const auto base = test::params_for("Atlas/Crusoe");
  EXPECT_DOUBLE_EQ(
      apply_parameter(base, SweepParameter::kVerificationTime, 123.0)
          .verification_s,
      123.0);
  EXPECT_DOUBLE_EQ(
      apply_parameter(base, SweepParameter::kErrorRate, 1e-4).lambda_silent,
      1e-4);
  EXPECT_DOUBLE_EQ(
      apply_parameter(base, SweepParameter::kIdlePower, 77.0).idle_power_mw,
      77.0);
  EXPECT_DOUBLE_EQ(
      apply_parameter(base, SweepParameter::kIoPower, 88.0).io_power_mw,
      88.0);
  // ρ leaves the params untouched.
  const auto same =
      apply_parameter(base, SweepParameter::kPerformanceBound, 2.0);
  EXPECT_DOUBLE_EQ(same.checkpoint_s, base.checkpoint_s);
}

TEST(ApplyParameter, CheckpointSweepKeepsRecoveryEqual) {
  const auto base = test::params_for("Atlas/Crusoe");
  const auto p =
      apply_parameter(base, SweepParameter::kCheckpointTime, 2222.0);
  EXPECT_DOUBLE_EQ(p.checkpoint_s, 2222.0);
  EXPECT_DOUBLE_EQ(p.recovery_s, 2222.0);
}

TEST(FigureSweep, ProducesOnePointPerGridValue) {
  SweepOptions options;
  options.points = 9;
  const FigureSeries series =
      run_figure_sweep(atlas_crusoe(), SweepParameter::kCheckpointTime,
                       options);
  EXPECT_EQ(series.points.size(), 9u);
  EXPECT_EQ(series.configuration, "Atlas/Crusoe");
  EXPECT_EQ(series.parameter, SweepParameter::kCheckpointTime);
  for (const auto& point : series.points) {
    ASSERT_TRUE(point.two_speed.feasible);
    ASSERT_TRUE(point.single_speed.feasible);
    EXPECT_DOUBLE_EQ(point.single_speed.sigma1, point.single_speed.sigma2);
    EXPECT_LE(point.two_speed.energy_overhead,
              point.single_speed.energy_overhead * (1.0 + 1e-12));
  }
}

TEST(FigureSweep, RhoSweepUsesXAsBound) {
  const std::vector<double> grid = {1.5, 2.5, 3.5};
  const FigureSeries series = run_figure_sweep(
      atlas_crusoe(), SweepParameter::kPerformanceBound, grid, {});
  ASSERT_EQ(series.points.size(), 3u);
  for (const auto& point : series.points) {
    if (point.two_speed.feasible && !point.two_speed_fallback) {
      EXPECT_LE(point.two_speed.time_overhead, point.x * (1.0 + 1e-9));
    }
  }
}

TEST(FigureSweep, FallbackKicksInBeyondFeasibilityHorizon) {
  // At ρ = 1 nothing is feasible on Atlas/Crusoe; with the fallback the
  // point still carries the min-ρ policy (pinned near the fastest speeds).
  const std::vector<double> grid = {1.0};
  const FigureSeries with = run_figure_sweep(
      atlas_crusoe(), SweepParameter::kPerformanceBound, grid, {});
  ASSERT_TRUE(with.points[0].two_speed.feasible);
  EXPECT_TRUE(with.points[0].two_speed_fallback);
  EXPECT_GT(with.points[0].two_speed.time_overhead, 1.0);

  SweepOptions no_fallback;
  no_fallback.min_rho_fallback = false;
  const FigureSeries without = run_figure_sweep(
      atlas_crusoe(), SweepParameter::kPerformanceBound, grid, no_fallback);
  EXPECT_FALSE(without.points[0].two_speed.feasible);
  EXPECT_FALSE(without.points[0].two_speed_fallback);
}

TEST(FigureSweep, ParallelMatchesSerial) {
  ThreadPool pool(4);
  SweepOptions serial;
  serial.points = 11;
  SweepOptions pooled = serial;
  pooled.pool = &pool;
  const FigureSeries a =
      run_figure_sweep(atlas_crusoe(), SweepParameter::kErrorRate, serial);
  const FigureSeries b =
      run_figure_sweep(atlas_crusoe(), SweepParameter::kErrorRate, pooled);
  ASSERT_EQ(a.points.size(), b.points.size());
  for (std::size_t i = 0; i < a.points.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.points[i].two_speed.energy_overhead,
                     b.points[i].two_speed.energy_overhead);
    EXPECT_DOUBLE_EQ(a.points[i].two_speed.sigma1,
                     b.points[i].two_speed.sigma1);
  }
}

TEST(FigureSweep, EnergySavingIsZeroWhenInfeasible) {
  FigurePoint point;
  EXPECT_DOUBLE_EQ(point.energy_saving(), 0.0);
}

TEST(FigureSweep, RunAllSweepsCoversSixPanels) {
  SweepOptions options;
  options.points = 5;
  const auto all = run_all_sweeps(atlas_crusoe(), options);
  ASSERT_EQ(all.size(), 6u);
  EXPECT_EQ(all[0].parameter, SweepParameter::kCheckpointTime);
  EXPECT_EQ(all[5].parameter, SweepParameter::kIoPower);
}

TEST(FigureSweep, RejectsEmptyGrid) {
  EXPECT_THROW(run_figure_sweep(atlas_crusoe(),
                                SweepParameter::kCheckpointTime, {}, {}),
               std::invalid_argument);
}

TEST(SweepParameterNames, AllDistinct) {
  EXPECT_STREQ(to_string(SweepParameter::kCheckpointTime), "C");
  EXPECT_STREQ(to_string(SweepParameter::kVerificationTime), "V");
  EXPECT_STREQ(to_string(SweepParameter::kErrorRate), "lambda");
  EXPECT_STREQ(to_string(SweepParameter::kPerformanceBound), "rho");
  EXPECT_STREQ(to_string(SweepParameter::kIdlePower), "Pidle");
  EXPECT_STREQ(to_string(SweepParameter::kIoPower), "Pio");
}

TEST(SweepParameterNames, ParseIsTheInverseOfToString) {
  const SweepParameter parameters[] = {
      SweepParameter::kCheckpointTime, SweepParameter::kVerificationTime,
      SweepParameter::kErrorRate,      SweepParameter::kPerformanceBound,
      SweepParameter::kIdlePower,      SweepParameter::kIoPower};
  for (const SweepParameter parameter : parameters) {
    const auto parsed = parse_sweep_parameter(to_string(parameter));
    ASSERT_TRUE(parsed.has_value()) << to_string(parameter);
    EXPECT_EQ(*parsed, parameter);
  }
}

TEST(SweepParameterNames, ParseRejectsUnknownNames) {
  EXPECT_FALSE(parse_sweep_parameter("").has_value());
  EXPECT_FALSE(parse_sweep_parameter("c").has_value());
  EXPECT_FALSE(parse_sweep_parameter("Lambda").has_value());
  EXPECT_FALSE(parse_sweep_parameter("rho ").has_value());
  EXPECT_FALSE(parse_sweep_parameter("unknown").has_value());
}

}  // namespace
}  // namespace rexspeed::sweep
