#include "rexspeed/sweep/series.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace rexspeed::sweep {
namespace {

TEST(Series, StoresRowsColumnwise) {
  Series s("C", {"sigma1", "sigma2", "energy"});
  s.add_row(100.0, {0.45, 0.45, 1200.0});
  s.add_row(200.0, {0.45, 0.6, 1210.0});
  EXPECT_EQ(s.size(), 2u);
  EXPECT_EQ(s.x_name(), "C");
  EXPECT_DOUBLE_EQ(s.x()[1], 200.0);
  EXPECT_DOUBLE_EQ(s.column("sigma2")[1], 0.6);
  EXPECT_DOUBLE_EQ(s.column(2)[0], 1200.0);
}

TEST(Series, ColumnLookupByNameAndIndex) {
  Series s("x", {"a", "b"});
  s.add_row(1.0, {10.0, 20.0});
  EXPECT_DOUBLE_EQ(s.column("a")[0], 10.0);
  EXPECT_DOUBLE_EQ(s.column(1)[0], 20.0);
}

TEST(Series, RejectsMismatchedRowWidth) {
  Series s("x", {"a", "b"});
  EXPECT_THROW(s.add_row(1.0, {1.0}), std::invalid_argument);
  EXPECT_THROW(s.add_row(1.0, {1.0, 2.0, 3.0}), std::invalid_argument);
}

TEST(Series, RejectsUnknownColumn) {
  Series s("x", {"a"});
  EXPECT_THROW(s.column("zzz"), std::out_of_range);
  EXPECT_THROW(s.column(5), std::out_of_range);
}

TEST(Series, RejectsEmptyColumnSet) {
  EXPECT_THROW(Series("x", {}), std::invalid_argument);
}

}  // namespace
}  // namespace rexspeed::sweep
