#include "rexspeed/sweep/grid.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace rexspeed::sweep {
namespace {

TEST(Linspace, EndpointsAndSpacing) {
  const auto grid = linspace(0.0, 10.0, 6);
  ASSERT_EQ(grid.size(), 6u);
  EXPECT_DOUBLE_EQ(grid.front(), 0.0);
  EXPECT_DOUBLE_EQ(grid.back(), 10.0);
  for (std::size_t i = 0; i < grid.size(); ++i) {
    EXPECT_NEAR(grid[i], 2.0 * static_cast<double>(i), 1e-12);
  }
}

TEST(Linspace, TwoPointsAreTheBounds) {
  const auto grid = linspace(-5.0, 5.0, 2);
  ASSERT_EQ(grid.size(), 2u);
  EXPECT_DOUBLE_EQ(grid[0], -5.0);
  EXPECT_DOUBLE_EQ(grid[1], 5.0);
}

TEST(Linspace, DegenerateRange) {
  const auto grid = linspace(3.0, 3.0, 4);
  for (const double v : grid) EXPECT_DOUBLE_EQ(v, 3.0);
}

TEST(Linspace, Rejections) {
  EXPECT_THROW(linspace(0.0, 1.0, 1), std::invalid_argument);
  EXPECT_THROW(linspace(1.0, 0.0, 5), std::invalid_argument);
}

TEST(Logspace, GeometricSpacing) {
  const auto grid = logspace(1.0, 1000.0, 4);
  ASSERT_EQ(grid.size(), 4u);
  EXPECT_NEAR(grid[0], 1.0, 1e-12);
  EXPECT_NEAR(grid[1], 10.0, 1e-9);
  EXPECT_NEAR(grid[2], 100.0, 1e-8);
  EXPECT_DOUBLE_EQ(grid[3], 1000.0);
}

TEST(Logspace, CoversPaperLambdaRange) {
  const auto grid = logspace(1e-6, 1e-2, 41);
  EXPECT_NEAR(grid.front(), 1e-6, 1e-18);
  EXPECT_DOUBLE_EQ(grid.back(), 1e-2);
  for (std::size_t i = 1; i < grid.size(); ++i) {
    EXPECT_GT(grid[i], grid[i - 1]);
  }
}

TEST(Logspace, Rejections) {
  EXPECT_THROW(logspace(0.0, 1.0, 5), std::invalid_argument);
  EXPECT_THROW(logspace(-1.0, 1.0, 5), std::invalid_argument);
  EXPECT_THROW(logspace(1.0, 0.5, 5), std::invalid_argument);
  EXPECT_THROW(logspace(1.0, 2.0, 1), std::invalid_argument);
}

}  // namespace
}  // namespace rexspeed::sweep
