// Whole-panel scheduling: batched ρ grids (one solve_rho_batch call
// against the SoA caches) must be BIT-identical to the pointwise
// per-point loop on every backend that advertises batched_rho, and
// warm-start chains along exact model-axis grids must agree with cold
// per-point rebinds within numeric tolerance (the seeds steer only the
// bracketing, never the optimum). Both drivers — run_panel_sweep and the
// campaign stream — route whole panels through the same PanelSweep, so
// these checks cover the campaign path too.

#include "rexspeed/sweep/panel_sweep.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <stdexcept>

#include "rexspeed/engine/campaign_runner.hpp"
#include "rexspeed/engine/sweep_engine.hpp"
#include "test_util.hpp"

namespace rexspeed::sweep {
namespace {

using test::expect_identical_panel;

core::ModelParams interleavable_params() {
  core::ModelParams params = test::params_for("Hera/XScale");
  params.lambda_silent = 1e-3;
  params.verification_s = 1.0;
  return params;
}

PanelSeries run_rho_panel(std::unique_ptr<core::SolverBackend> backend,
                          BatchMode batch, std::size_t points = 21) {
  SweepOptions options;
  options.batch = batch;
  return run_panel_sweep(
      std::move(backend), "test", SweepParameter::kPerformanceBound,
      default_grid(SweepParameter::kPerformanceBound, points), options);
}

TEST(BatchedRhoPanel, FirstOrderBatchedEqualsPointwiseBitForBit) {
  const core::ModelParams params = test::params_for("Hera/XScale");
  const PanelSeries batched = run_rho_panel(
      std::make_unique<core::ClosedFormBackend>(
          params, core::EvalMode::kFirstOrder),
      BatchMode::kOn);
  const PanelSeries pointwise = run_rho_panel(
      std::make_unique<core::ClosedFormBackend>(
          params, core::EvalMode::kFirstOrder),
      BatchMode::kOff);
  expect_identical_panel(batched, pointwise);
}

TEST(BatchedRhoPanel, ExactOptBatchedEqualsPointwiseBitForBit) {
  const core::ModelParams params = test::params_for("Hera/XScale");
  const PanelSeries batched = run_rho_panel(
      std::make_unique<core::ExactOptBackend>(params), BatchMode::kOn, 11);
  const PanelSeries pointwise = run_rho_panel(
      std::make_unique<core::ExactOptBackend>(params), BatchMode::kOff, 11);
  expect_identical_panel(batched, pointwise);
}

TEST(BatchedRhoPanel, InterleavedBatchedEqualsPointwiseBitForBit) {
  const core::ModelParams params = interleavable_params();
  const PanelSeries batched = run_rho_panel(
      std::make_unique<core::InterleavedBackend>(params, 6), BatchMode::kOn,
      11);
  const PanelSeries pointwise = run_rho_panel(
      std::make_unique<core::InterleavedBackend>(params, 6), BatchMode::kOff,
      11);
  expect_identical_panel(batched, pointwise);
}

TEST(BatchedRhoPanel, AutoBatchesWhereAdvertisedAndRejectsForcedOn) {
  const core::ModelParams params = test::params_for("Hera/XScale");
  SweepOptions options;
  const std::vector<double> grid =
      default_grid(SweepParameter::kPerformanceBound, 5);
  // kAuto on a batching backend: scheduled as one whole-panel unit.
  PanelSweep batched(std::make_unique<core::ClosedFormBackend>(
                         params, core::EvalMode::kFirstOrder),
                     "test", SweepParameter::kPerformanceBound, grid,
                     options);
  EXPECT_EQ(batched.granularity(), PanelSweep::Granularity::kWholePanel);
  // exact-eval solves every bound numerically — no batched kernel; kAuto
  // quietly stays pointwise, kOn is a hard error at construction.
  PanelSweep pointwise(std::make_unique<core::ClosedFormBackend>(
                           params, core::EvalMode::kExactEvaluation),
                       "test", SweepParameter::kPerformanceBound, grid,
                       options);
  EXPECT_EQ(pointwise.granularity(), PanelSweep::Granularity::kPerPoint);
  options.batch = BatchMode::kOn;
  EXPECT_THROW(PanelSweep(std::make_unique<core::ClosedFormBackend>(
                              params, core::EvalMode::kExactEvaluation),
                          "test", SweepParameter::kPerformanceBound, grid,
                          options),
               std::invalid_argument);
}

TEST(BatchedRhoPanel, MeasureCostLeavesResultsUntouched) {
  // A per-point panel's probe solves its point 0 for real; the remaining
  // stream plus the probe must reproduce the unprobed panel bit for bit.
  const core::ModelParams params = test::params_for("Hera/XScale");
  SweepOptions options;
  options.batch = BatchMode::kOff;
  const std::vector<double> grid =
      default_grid(SweepParameter::kPerformanceBound, 7);
  PanelSweep probed(std::make_unique<core::ClosedFormBackend>(
                        params, core::EvalMode::kFirstOrder),
                    "test", SweepParameter::kPerformanceBound, grid,
                    options);
  EXPECT_EQ(probed.first_pending(), 0u);
  EXPECT_GE(probed.measure_cost(), 0.0);
  EXPECT_EQ(probed.first_pending(), 1u);
  for (std::size_t i = probed.first_pending(); i < probed.point_count();
       ++i) {
    probed.solve_point(i);
  }
  const PanelSeries reference = run_rho_panel(
      std::make_unique<core::ClosedFormBackend>(
          params, core::EvalMode::kFirstOrder),
      BatchMode::kOff, 7);
  expect_identical_panel(probed.take(), reference);

  // A whole-panel probe is transient: first_pending stays 0 and the later
  // solve_all() recomputes everything.
  PanelSweep whole(std::make_unique<core::ClosedFormBackend>(
                       params, core::EvalMode::kFirstOrder),
                   "test", SweepParameter::kPerformanceBound, grid, {});
  EXPECT_GE(whole.measure_cost(), 0.0);
  EXPECT_EQ(whole.first_pending(), 0u);
  whole.solve_all();
  const PanelSeries batched = run_rho_panel(
      std::make_unique<core::ClosedFormBackend>(
          params, core::EvalMode::kFirstOrder),
      BatchMode::kOn, 7);
  expect_identical_panel(whole.take(), batched);
}

/// Tolerance agreement for warm-vs-cold chains: identical discrete
/// choices (feasibility, fallback, speed indices) and numerically equal
/// continuous outputs — the seeds may change the bracketing walk, so the
/// last few ulps of the 1e-10-tolerance optimizer are not guaranteed.
void expect_chain_agrees(const PanelSeries& warm, const PanelSeries& cold) {
  ASSERT_EQ(warm.points.size(), cold.points.size());
  for (std::size_t i = 0; i < warm.points.size(); ++i) {
    const core::PanelPoint& a = warm.points[i];
    const core::PanelPoint& b = cold.points[i];
    EXPECT_EQ(a.x, b.x);
    const core::Solution* sides[2][2] = {{&a.primary, &b.primary},
                                         {&a.baseline, &b.baseline}};
    for (const auto& side : sides) {
      const core::Solution& w = *side[0];
      const core::Solution& c = *side[1];
      ASSERT_EQ(w.feasible(), c.feasible()) << "x=" << a.x;
      EXPECT_EQ(w.used_fallback, c.used_fallback) << "x=" << a.x;
      if (!w.feasible()) continue;
      EXPECT_EQ(w.sigma1(), c.sigma1()) << "x=" << a.x;
      EXPECT_EQ(w.sigma2(), c.sigma2()) << "x=" << a.x;
      EXPECT_NEAR(w.w_opt(), c.w_opt(),
                  1e-6 * std::max(1.0, std::abs(c.w_opt())))
          << "x=" << a.x;
      EXPECT_NEAR(w.energy_overhead(), c.energy_overhead(),
                  1e-8 * std::max(1.0, std::abs(c.energy_overhead())))
          << "x=" << a.x;
    }
  }
}

TEST(WarmStartChain, ExactModelAxesAgreeWithColdRebinds) {
  const core::ModelParams params = test::params_for("Hera/XScale");
  for (const SweepParameter axis :
       {SweepParameter::kCheckpointTime, SweepParameter::kVerificationTime,
        SweepParameter::kErrorRate}) {
    const std::vector<double> grid = default_grid(axis, 7);
    SweepOptions warm_options;  // warm_start_chain defaults on
    const PanelSeries warm = run_panel_sweep(
        std::make_unique<core::ExactOptBackend>(params), "test", axis, grid,
        warm_options);
    SweepOptions cold_options;
    cold_options.warm_start_chain = false;
    const PanelSeries cold = run_panel_sweep(
        std::make_unique<core::ExactOptBackend>(params), "test", axis, grid,
        cold_options);
    expect_chain_agrees(warm, cold);
  }
}

TEST(WarmStartChain, ChainGranularityFollowsTheOption) {
  const core::ModelParams params = test::params_for("Hera/XScale");
  const std::vector<double> grid =
      default_grid(SweepParameter::kCheckpointTime, 5);
  SweepOptions options;
  PanelSweep chained(std::make_unique<core::ExactOptBackend>(params), "test",
                     SweepParameter::kCheckpointTime, grid, options);
  EXPECT_EQ(chained.granularity(), PanelSweep::Granularity::kWholePanel);
  options.warm_start_chain = false;
  PanelSweep cold(std::make_unique<core::ExactOptBackend>(params), "test",
                  SweepParameter::kCheckpointTime, grid, options);
  EXPECT_EQ(cold.granularity(), PanelSweep::Granularity::kPerPoint);
  // First-order model axes have no chain to warm: per-point either way.
  PanelSweep closed(std::make_unique<core::ClosedFormBackend>(
                        params, core::EvalMode::kFirstOrder),
                    "test", SweepParameter::kCheckpointTime, grid, {});
  EXPECT_EQ(closed.granularity(), PanelSweep::Granularity::kPerPoint);
}

TEST(WholePanelScheduling, CampaignMatchesStandaloneThroughBatchedPanels) {
  // The campaign stream schedules a batched ρ panel as ONE task; the
  // result must still be bit-identical to the standalone engine run of
  // the same scenario, pointwise or batched, serial or pooled.
  engine::ScenarioSpec spec;
  spec.name = "batched_rho";
  spec.configuration = "Hera/XScale";
  spec.sweep_parameter = SweepParameter::kPerformanceBound;
  spec.points = 9;
  const engine::SweepEngine engine({.threads = 1});
  const FigureSeries standalone = engine.run(spec);
  for (const unsigned threads : {1u, 4u}) {
    const engine::CampaignRunner runner({.threads = threads});
    const engine::ScenarioResult result = runner.run_one(spec);
    ASSERT_EQ(result.panels.size(), 1u);
    test::expect_identical_series(to_figure_series(result.panels.front()),
                                  standalone);
  }
  // And the forced-pointwise run of the very same scenario agrees bit for
  // bit — the batched kernels are an implementation detail of the panel.
  engine::ScenarioSpec pointwise = spec;
  pointwise.batch = BatchMode::kOff;
  test::expect_identical_series(engine.run(pointwise), standalone);
}

}  // namespace
}  // namespace rexspeed::sweep
