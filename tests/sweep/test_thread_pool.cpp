#include "rexspeed/sweep/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace rexspeed::sweep {
namespace {

TEST(ThreadPool, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, ReusableAcrossBatches) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int batch = 0; batch < 5; ++batch) {
    for (int i = 0; i < 20; ++i) {
      pool.submit([&counter] { counter.fetch_add(1); });
    }
    pool.wait_idle();
    EXPECT_EQ(counter.load(), (batch + 1) * 20);
  }
}

TEST(ThreadPool, DefaultsToHardwareConcurrency) {
  ThreadPool pool;
  EXPECT_GE(pool.thread_count(), 1u);
}

TEST(ParallelFor, InlineWithoutPool) {
  std::vector<int> touched(10, 0);
  parallel_for(nullptr, touched.size(),
               [&](std::size_t i) { touched[i] = static_cast<int>(i); });
  for (std::size_t i = 0; i < touched.size(); ++i) {
    EXPECT_EQ(touched[i], static_cast<int>(i));
  }
}

TEST(ParallelFor, PooledMatchesInline) {
  ThreadPool pool(4);
  std::vector<double> serial(257);
  std::vector<double> pooled(257);
  const auto work = [](std::size_t i) {
    return static_cast<double>(i) * 1.5 + 1.0;
  };
  parallel_for(nullptr, serial.size(),
               [&](std::size_t i) { serial[i] = work(i); });
  parallel_for(&pool, pooled.size(),
               [&](std::size_t i) { pooled[i] = work(i); });
  EXPECT_EQ(serial, pooled);
}

TEST(ParallelFor, ZeroAndOneIterations) {
  ThreadPool pool(2);
  int calls = 0;
  parallel_for(&pool, 0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  parallel_for(&pool, 1, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 1);
}

}  // namespace
}  // namespace rexspeed::sweep
