#include "rexspeed/sweep/section42_tables.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace rexspeed::sweep {
namespace {

TEST(Section42, BoundsListMatchesPaper) {
  const auto& bounds = section42_bounds();
  ASSERT_EQ(bounds.size(), 4u);
  EXPECT_DOUBLE_EQ(bounds[0], 8.0);
  EXPECT_DOUBLE_EQ(bounds[1], 3.0);
  EXPECT_DOUBLE_EQ(bounds[2], 1.775);
  EXPECT_DOUBLE_EQ(bounds[3], 1.4);
}

TEST(Section42, OneRowPerSpeed) {
  const auto params = test::params_for("Hera/XScale");
  const auto rows = speed_pair_table(params, 3.0);
  ASSERT_EQ(rows.size(), params.speeds.size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    EXPECT_DOUBLE_EQ(rows[i].sigma1, params.speeds[i]);
  }
}

TEST(Section42, ExactlyOneGlobalBestWhenFeasible) {
  const auto params = test::params_for("Hera/XScale");
  for (const double rho : section42_bounds()) {
    const auto rows = speed_pair_table(params, rho);
    int best_count = 0;
    for (const auto& row : rows) {
      if (row.is_global_best) {
        ++best_count;
        EXPECT_TRUE(row.feasible);
      }
    }
    EXPECT_EQ(best_count, 1) << "rho=" << rho;
  }
}

TEST(Section42, NoGlobalBestWhenNothingFeasible) {
  const auto params = test::params_for("Hera/XScale");
  const auto rows = speed_pair_table(params, 0.9);
  for (const auto& row : rows) {
    EXPECT_FALSE(row.feasible);
    EXPECT_FALSE(row.is_global_best);
  }
}

TEST(Section42, GlobalBestHasSmallestEnergyAmongFeasibleRows) {
  const auto params = test::params_for("Hera/XScale");
  for (const double rho : section42_bounds()) {
    const auto rows = speed_pair_table(params, rho);
    double best = 0.0;
    for (const auto& row : rows) {
      if (row.is_global_best) best = row.energy_overhead;
    }
    for (const auto& row : rows) {
      if (row.feasible) EXPECT_GE(row.energy_overhead, best - 1e-12);
    }
  }
}

TEST(Section42, FeasibilityPatternMatchesPaper) {
  // Rows become infeasible from the slowest speed up as ρ tightens:
  // ρ=8: all feasible; ρ=3: 0.15 out; ρ=1.775: 0.15, 0.4 out;
  // ρ=1.4: 0.15, 0.4, 0.6 out.
  const auto params = test::params_for("Hera/XScale");
  const int expected_infeasible[] = {0, 1, 2, 3};
  const auto& bounds = section42_bounds();
  for (std::size_t i = 0; i < bounds.size(); ++i) {
    const auto rows = speed_pair_table(params, bounds[i]);
    int infeasible = 0;
    for (const auto& row : rows) {
      if (!row.feasible) ++infeasible;
    }
    EXPECT_EQ(infeasible, expected_infeasible[i]) << "rho=" << bounds[i];
  }
}

}  // namespace
}  // namespace rexspeed::sweep
