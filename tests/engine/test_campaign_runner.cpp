#include "rexspeed/engine/campaign_runner.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "rexspeed/engine/sweep_engine.hpp"
#include "test_util.hpp"

namespace rexspeed::engine {
namespace {

using test::expect_identical_panel;
using test::expect_identical_solution;

TEST(CampaignRunner, FlattenedParallelCampaignIsBitIdenticalToSerialRuns) {
  // The tentpole requirement: a campaign over several registry scenarios —
  // single panels, a ρ sweep (shared-backend fast path) and six-panel
  // composites — through one multi-worker pool must reproduce, bit for
  // bit, what each scenario yields when run alone with threads = 1.
  std::vector<ScenarioSpec> specs = {
      scenario_by_name("fig02"), scenario_by_name("fig05"),
      scenario_by_name("fig08"), scenario_by_name("fig13")};
  for (auto& spec : specs) spec.points = 7;

  const CampaignRunner parallel(CampaignRunnerOptions{.threads = 4});
  ASSERT_NE(parallel.pool(), nullptr);
  const auto results = parallel.run(specs);
  ASSERT_EQ(results.size(), specs.size());

  const SweepEngine serial(SweepEngineOptions{.threads = 1});
  for (std::size_t s = 0; s < specs.size(); ++s) {
    SCOPED_TRACE(specs[s].name);
    EXPECT_EQ(results[s].spec.name, specs[s].name);
    const auto reference = serial.run_scenario(specs[s]);
    ASSERT_EQ(results[s].panels.size(), reference.size());
    for (std::size_t p = 0; p < reference.size(); ++p) {
      SCOPED_TRACE(sweep::to_string(reference[p].parameter));
      expect_identical_panel(results[s].panels[p], reference[p]);
    }
  }
}

TEST(CampaignRunner, WholeRegistryCampaignMatchesPerScenarioSerialRuns) {
  // The acceptance bar: ALL registry scenarios through one pool — the
  // paper figures, the exact backend and the interleaved extensions
  // alike — every panel bit-identical to running each scenario alone
  // serially. One comparison for every mode, now that every backend
  // produces the same PanelSeries.
  std::vector<ScenarioSpec> specs = scenario_registry();
  for (auto& spec : specs) spec.points = 5;
  const auto results =
      CampaignRunner(CampaignRunnerOptions{.threads = 4}).run(specs);
  ASSERT_EQ(results.size(), specs.size());

  const SweepEngine serial(SweepEngineOptions{.threads = 1});
  for (std::size_t s = 0; s < specs.size(); ++s) {
    SCOPED_TRACE(specs[s].name);
    const auto reference = serial.run_scenario(specs[s]);
    ASSERT_EQ(results[s].panels.size(), reference.size());
    for (std::size_t p = 0; p < reference.size(); ++p) {
      expect_identical_panel(results[s].panels[p], reference[p]);
    }
  }
}

TEST(CampaignRunner, SerialCampaignMatchesParallelCampaign) {
  std::vector<ScenarioSpec> specs = {scenario_by_name("fig04"),
                                     scenario_by_name("fig09")};
  for (auto& spec : specs) spec.points = 5;
  const CampaignRunner serial(CampaignRunnerOptions{.threads = 1});
  EXPECT_EQ(serial.pool(), nullptr);
  const auto a = serial.run(specs);
  const auto b = CampaignRunner(CampaignRunnerOptions{.threads = 3}).run(specs);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t s = 0; s < a.size(); ++s) {
    ASSERT_EQ(a[s].panels.size(), b[s].panels.size());
    for (std::size_t p = 0; p < a[s].panels.size(); ++p) {
      expect_identical_panel(a[s].panels[p], b[s].panels[p]);
    }
  }
}

TEST(CampaignRunner, CostWeightOrderingDoesNotChangeResults) {
  // The campaign-level scheduler orders whole panels longest-first by
  // points × the backend's cost weight, so a mixed-mode campaign (cheap
  // first-order panels up front in scenario order, heavy interleaved and
  // exact panels last) exercises a genuinely reordered stream. Results
  // must not move a bit relative to per-scenario serial runs — ordering
  // is a latency lever, never a semantic one.
  ScenarioSpec cheap = scenario_by_name("fig02");
  cheap.points = 9;
  ScenarioSpec exact = scenario_by_name("exact_rho");
  exact.points = 5;
  ScenarioSpec heavy = scenario_by_name("interleaved_rho");
  heavy.points = 7;
  const ScenarioSpec solve = parse_scenario("name=pt config=Hera/XScale");
  const std::vector<ScenarioSpec> specs = {cheap, solve, exact, heavy};

  const SweepEngine serial(SweepEngineOptions{.threads = 1});
  for (const unsigned threads : {1u, 4u}) {
    SCOPED_TRACE(threads);
    const auto results =
        CampaignRunner(CampaignRunnerOptions{.threads = threads}).run(specs);
    ASSERT_EQ(results.size(), specs.size());
    for (std::size_t s = 0; s < specs.size(); ++s) {
      SCOPED_TRACE(specs[s].name);
      if (specs[s].kind() == ScenarioKind::kSolve) {
        expect_identical_solution(results[s].solution,
                                  solve_scenario(specs[s]));
        continue;
      }
      const auto reference = serial.run_scenario(specs[s]);
      ASSERT_EQ(results[s].panels.size(), reference.size());
      for (std::size_t p = 0; p < reference.size(); ++p) {
        expect_identical_panel(results[s].panels[p], reference[p]);
      }
    }
  }
}

TEST(CampaignRunner, SolveScenariosGetPanelFreeResults) {
  // kSolve rides the same task stream but yields a solution, not panels —
  // including the min-ρ fallback flag solve_scenario reports.
  const ScenarioSpec plain = parse_scenario("config=Hera/XScale rho=3");
  const ScenarioSpec degraded =
      parse_scenario("config=Atlas/Crusoe rho=1.0");
  const CampaignRunner runner(CampaignRunnerOptions{.threads = 2});
  const auto results = runner.run({plain, degraded});
  ASSERT_EQ(results.size(), 2u);
  EXPECT_TRUE(results[0].panels.empty());
  EXPECT_TRUE(results[1].panels.empty());

  expect_identical_solution(results[0].solution, solve_scenario(plain));
  EXPECT_FALSE(results[0].solution.used_fallback);

  expect_identical_solution(results[1].solution, solve_scenario(degraded));
  EXPECT_TRUE(results[1].solution.used_fallback);
}

TEST(CampaignRunner, MixedKindCampaignKeepsScenarioOrder) {
  ScenarioSpec sweep_spec = scenario_by_name("fig06");
  sweep_spec.points = 5;
  ScenarioSpec composite = scenario_by_name("fig10");
  composite.points = 3;
  const ScenarioSpec solve = parse_scenario("name=pt config=Hera/XScale");
  const auto results =
      CampaignRunner().run({sweep_spec, solve, composite});
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(results[0].spec.name, "fig06");
  EXPECT_EQ(results[0].panels.size(), 1u);
  EXPECT_EQ(results[1].spec.name, "pt");
  EXPECT_TRUE(results[1].panels.empty());
  EXPECT_TRUE(results[1].solution.feasible());
  EXPECT_EQ(results[2].spec.name, "fig10");
  EXPECT_EQ(results[2].panels.size(), 6u);
}

TEST(CampaignRunner, RunOneHandlesEveryKind) {
  const CampaignRunner runner(CampaignRunnerOptions{.threads = 2});
  ScenarioSpec spec = scenario_by_name("fig07");
  spec.points = 5;
  const auto panel = runner.run_one(spec);
  ASSERT_EQ(panel.panels.size(), 1u);
  expect_identical_panel(
      panel.panels.front(),
      SweepEngine(SweepEngineOptions{.threads = 1}).run_scenario(spec)[0]);

  const auto solve =
      runner.run_one(parse_scenario("config=Coastal/XScale rho=2"));
  EXPECT_TRUE(solve.panels.empty());
  EXPECT_TRUE(solve.solution.feasible());
}

TEST(CampaignRunner, EmptyCampaignYieldsNoResults) {
  EXPECT_TRUE(CampaignRunner().run({}).empty());
}

TEST(CampaignRunner, ResolutionErrorsThrowBeforeAnyTaskRuns) {
  ScenarioSpec bad;
  bad.configuration = "Nonexistent/Platform";
  EXPECT_THROW(CampaignRunner().run({scenario_by_name("fig02"), bad}),
               std::out_of_range);

  const ScenarioSpec invalid = parse_scenario("config=Hera/XScale C=-5");
  EXPECT_THROW(CampaignRunner().run({invalid}), std::invalid_argument);

  // A non-positive bound set programmatically (parse_scenario already
  // rejects it) must be caught in phase 1, never inside a pool worker.
  ScenarioSpec bad_solve = parse_scenario("config=Hera/XScale");
  bad_solve.rho = 0.0;
  EXPECT_THROW(CampaignRunner().run({bad_solve}), std::invalid_argument);
  ScenarioSpec bad_panel = scenario_by_name("fig02");
  bad_panel.rho = -2.0;
  EXPECT_THROW(CampaignRunner(CampaignRunnerOptions{.threads = 4})
                   .run({bad_panel}),
               std::invalid_argument);

  // Simulate-only dimensions are a plan-time rejection too.
  ScenarioSpec recall = scenario_by_name("fig02");
  recall.verification_recall = 0.9;
  EXPECT_THROW(CampaignRunner().run({recall}), std::invalid_argument);
}

}  // namespace
}  // namespace rexspeed::engine
