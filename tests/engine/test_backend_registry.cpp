// The backend registry: mode-name resolution, unknown-mode error text,
// every registered scenario resolving to a backend, and the regression
// pin that registry-built backends are bit-identical to driving the
// underlying solvers directly (the pre-redesign paths).

#include "rexspeed/engine/backend_registry.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "rexspeed/core/exact_solver.hpp"
#include "rexspeed/core/interleaved.hpp"
#include "rexspeed/core/recall_solver.hpp"
#include "test_util.hpp"

namespace rexspeed::engine {
namespace {

using test::expect_identical_interleaved;
using test::expect_identical_pair;

TEST(BackendRegistry, RegistersTheFiveModes) {
  const auto& registry = backend_registry();
  ASSERT_EQ(registry.size(), 5u);
  const char* expected[] = {"first-order", "exact-eval", "exact-opt",
                            "interleaved", "recall"};
  for (std::size_t i = 0; i < registry.size(); ++i) {
    EXPECT_EQ(registry[i].name, expected[i]);
    EXPECT_FALSE(registry[i].description.empty()) << registry[i].name;
    EXPECT_FALSE(registry[i].panel_axes.empty()) << registry[i].name;
    EXPECT_TRUE(static_cast<bool>(registry[i].factory))
        << registry[i].name;
  }
  // Pair backends sweep the six figure axes; the interleaved one sweeps
  // ρ and segments.
  EXPECT_EQ(backend_by_name("first-order").panel_axes.size(), 6u);
  EXPECT_EQ(backend_by_name("interleaved").panel_axes.size(), 2u);
  EXPECT_EQ(backend_by_name("recall").panel_axes.size(), 6u);
}

TEST(BackendRegistry, UnknownModeErrorNamesTheKnownModes) {
  EXPECT_EQ(find_backend("warp-drive"), nullptr);
  try {
    (void)backend_by_name("warp-drive");
    FAIL() << "unknown modes must throw";
  } catch (const std::invalid_argument& error) {
    const std::string message = error.what();
    EXPECT_NE(message.find("unknown mode 'warp-drive'"), std::string::npos)
        << message;
    EXPECT_NE(
        message.find(
            "first-order, exact-eval, exact-opt, interleaved or recall"),
        std::string::npos)
        << message;
  }
}

TEST(BackendRegistry, ModeNameFollowsTheSpec) {
  EXPECT_EQ(backend_mode_name(parse_scenario("config=Hera/XScale")),
            "first-order");
  EXPECT_EQ(
      backend_mode_name(parse_scenario("config=Hera/XScale mode=exact-eval")),
      "exact-eval");
  EXPECT_EQ(
      backend_mode_name(parse_scenario("config=Hera/XScale mode=exact-opt")),
      "exact-opt");
  // Segment keys select the interleaved backend whatever the EvalMode.
  EXPECT_EQ(
      backend_mode_name(parse_scenario("config=Hera/XScale segments=2")),
      "interleaved");
  EXPECT_EQ(backend_mode_name(
                parse_scenario("config=Hera/XScale mode=interleaved")),
            "interleaved");
  EXPECT_EQ(
      backend_mode_name(parse_scenario("config=Hera/XScale mode=recall")),
      "recall");
}

TEST(BackendRegistry, EveryRegisteredScenarioResolvesToABackend) {
  for (const ScenarioSpec& spec : scenario_registry()) {
    SCOPED_TRACE(spec.name);
    const auto backend = make_backend(spec);
    ASSERT_NE(backend, nullptr);
    EXPECT_EQ(backend->name(), backend_mode_name(spec));
    // Every axis the scenario could sweep is one its backend supports.
    if (spec.kind() != ScenarioKind::kSolve) {
      for (const auto axis : scenario_panel_axes(spec)) {
        EXPECT_TRUE(backend->capabilities().supports(axis))
            << sweep::to_string(axis);
      }
    }
  }
}

TEST(BackendRegistry, RegistryBackendsMatchThePreRedesignPathsBitForBit) {
  // The regression pin: for every registered scenario, the registry-built
  // backend reproduces the direct solver drive — BiCritSolver for the
  // closed-form modes, ExactSolver for exact-opt, InterleavedSolver for
  // the segmented mode — bit for bit at the scenario's own bound.
  for (const ScenarioSpec& spec : scenario_registry()) {
    SCOPED_TRACE(spec.name);
    const core::ModelParams params = spec.resolve_params();
    auto backend = make_backend(spec, params);
    backend->prepare();
    const core::Solution via_registry =
        backend->solve(spec.rho, spec.policy, spec.min_rho_fallback);

    if (spec.interleaved()) {
      const core::InterleavedSolver direct(params, spec.segment_limit());
      expect_identical_interleaved(
          via_registry.interleaved,
          spec.segments > 0 ? direct.solve_segments(spec.rho, spec.segments)
                            : direct.solve(spec.rho));
      continue;
    }
    if (spec.recall_mode) {
      // The recall backend is first-order over the recall-scaled rate.
      const core::BiCritSolver direct(core::recall_effective_params(
          params, spec.verification_recall));
      core::PairSolution expected =
          direct.solve(spec.rho, spec.policy, core::EvalMode::kFirstOrder)
              .best;
      if (!expected.feasible && spec.min_rho_fallback &&
          direct.min_rho_solution(spec.policy).feasible) {
        expected = direct.min_rho_solution(spec.policy);
      }
      expect_identical_pair(via_registry.pair, expected);
      continue;
    }
    if (spec.mode == core::EvalMode::kExactOptimize) {
      const core::ExactSolver direct(params);
      core::PairSolution expected = direct.solve(spec.rho, spec.policy).best;
      if (!expected.feasible && spec.min_rho_fallback &&
          direct.min_rho_solution(spec.policy).feasible) {
        expected = direct.min_rho_solution(spec.policy);
      }
      expect_identical_pair(via_registry.pair, expected);
      continue;
    }
    const core::BiCritSolver direct(params);
    core::PairSolution expected =
        direct.solve(spec.rho, spec.policy, spec.mode).best;
    if (!expected.feasible && spec.min_rho_fallback &&
        direct.min_rho_solution(spec.policy).feasible) {
      expected = direct.min_rho_solution(spec.policy);
    }
    expect_identical_pair(via_registry.pair, expected);
  }
}

TEST(BackendRegistry, SimulateOnlyDimensionsAreRejectedAtTheChokepoint) {
  ScenarioSpec spec = parse_scenario(
      "name=recall config=Hera/XScale verification_recall=0.5");
  try {
    (void)make_backend(spec);
    FAIL() << "partial recall must not reach a full-recall backend";
  } catch (const std::invalid_argument& error) {
    const std::string message = error.what();
    EXPECT_NE(message.find("verification_recall=0.5"), std::string::npos)
        << message;
    EXPECT_NE(message.find("'first-order'"), std::string::npos) << message;
    EXPECT_NE(message.find("mode=recall"), std::string::npos) << message;
    EXPECT_NE(message.find("rexspeed simulate"), std::string::npos)
        << message;
  }
  // The same spec in recall mode resolves cleanly.
  spec = parse_scenario(
      "name=recall config=Hera/XScale mode=recall verification_recall=0.5");
  EXPECT_NE(make_backend(spec), nullptr);
}

TEST(BackendRegistry, InterleavedFactoryHonorsSegmentConfiguration) {
  const ScenarioSpec pinned =
      parse_scenario("config=Hera/XScale rho=5 segments=3 lambda=1e-3 V=1");
  auto backend = make_backend(pinned);
  backend->prepare();
  EXPECT_EQ(backend->capabilities().max_segments, 3u);
  const core::Solution solution =
      backend->solve(pinned.rho, pinned.policy, false);
  ASSERT_TRUE(solution.feasible());
  EXPECT_EQ(solution.segments(), 3u);
}

}  // namespace
}  // namespace rexspeed::engine
