// The cached exact backend through the engine layer: registry routing,
// exact-mode ρ sweeps parallel ≡ serial, campaign ≡ standalone, the
// regression of ExactSolver against the uncached optimize_exact_pair
// path across every registered scenario, and the paper-regime agreement
// of exact-opt with first-order at small λ.

#include <gtest/gtest.h>

#include <stdexcept>

#include "rexspeed/core/exact_solver.hpp"
#include "rexspeed/engine/backend_registry.hpp"
#include "rexspeed/engine/campaign_runner.hpp"
#include "rexspeed/engine/scenario.hpp"
#include "rexspeed/engine/solver_context.hpp"
#include "rexspeed/engine/sweep_engine.hpp"
#include "test_util.hpp"

namespace rexspeed::engine {
namespace {

using test::expect_identical_pair;
using test::expect_identical_panel;

ScenarioSpec exact_rho_spec() {
  return parse_scenario(
      "name=exact config=Hera/XScale mode=exact-opt param=rho points=9");
}

TEST(ExactBackend, ContextRoutesTheCachedBackend) {
  const ScenarioSpec spec = exact_rho_spec();
  const SolverContext context = make_context(spec);
  EXPECT_STREQ(context.backend().name(), "exact-opt");
  EXPECT_FALSE(context.backend().needs_prepare());
  // Routing: the context's solve IS the cached backend's solve
  // (deterministic construction → bit-identical).
  const core::ExactSolver standalone(spec.resolve_params());
  expect_identical_pair(
      context.solve(2.0, core::SpeedPolicy::kTwoSpeed).pair,
      standalone.solve(2.0).best);
  expect_identical_pair(context.solve_pair(2.0, 0, 1),
                        standalone.solve_pair_by_index(2.0, 0, 1));
  // The first-order registry entry keeps the closed-form path.
  ScenarioSpec first = spec;
  first.mode = core::EvalMode::kFirstOrder;
  const SolverContext closed = make_context(first);
  EXPECT_STREQ(closed.backend().name(), "first-order");
  expect_identical_pair(
      closed.solve(2.0, core::SpeedPolicy::kTwoSpeed).pair,
      core::BiCritSolver(spec.resolve_params())
          .solve(2.0, core::SpeedPolicy::kTwoSpeed,
                 core::EvalMode::kFirstOrder)
          .best);
}

TEST(ExactBackend, UnpreparedBackendRefusesToSolve) {
  // The exact backend defers its per-pair curve optimization to
  // prepare(); solving before that is a programming error, reported
  // instead of silently recomputing per bound.
  core::ExactOptBackend backend(exact_rho_spec().resolve_params());
  ASSERT_TRUE(backend.needs_prepare());
  EXPECT_THROW((void)backend.solve(2.0, core::SpeedPolicy::kTwoSpeed,
                                   false),
               std::logic_error);
  backend.prepare();
  EXPECT_FALSE(backend.needs_prepare());
  EXPECT_TRUE(
      backend.solve(2.0, core::SpeedPolicy::kTwoSpeed, false).feasible());
}

TEST(ExactBackend, PooledPreparationIsBitIdentical) {
  const core::ModelParams params = exact_rho_spec().resolve_params();
  sweep::ThreadPool pool(4);
  core::ExactOptBackend serial(params);
  serial.prepare();
  core::ExactOptBackend pooled(params);
  pooled.prepare(sweep::make_parallel_build(&pool));
  ASSERT_EQ(serial.exact().expansions().size(),
            pooled.exact().expansions().size());
  for (std::size_t i = 0; i < serial.exact().expansions().size(); ++i) {
    EXPECT_EQ(serial.exact().expansions()[i].w_time,
              pooled.exact().expansions()[i].w_time);
    EXPECT_EQ(serial.exact().expansions()[i].w_energy,
              pooled.exact().expansions()[i].w_energy);
    EXPECT_EQ(serial.exact().expansions()[i].rho_min,
              pooled.exact().expansions()[i].rho_min);
  }
  expect_identical_pair(serial.exact().solve(1.8).best,
                        pooled.exact().solve(1.8).best);
}

TEST(ExactBackend, RhoSweepParallelEqualsSerial) {
  // The acceptance guarantee: exact-mode ρ sweeps are bit-identical
  // parallel vs serial, any thread count.
  const ScenarioSpec spec = exact_rho_spec();
  const SweepEngine serial({.threads = 1});
  const SweepEngine parallel({.threads = 4});
  expect_identical_panel(serial.run_scenario(spec)[0],
                         parallel.run_scenario(spec)[0]);
}

TEST(ExactBackend, CampaignMatchesStandaloneSweep) {
  // The flattened stream (prepare in phase 1.5, points in phase 2) must
  // reproduce the standalone engine run bit for bit — serial and
  // parallel runners alike.
  const ScenarioSpec spec = exact_rho_spec();
  const SweepEngine engine({.threads = 1});
  const sweep::PanelSeries standalone = engine.run_scenario(spec)[0];
  for (const unsigned threads : {1u, 4u}) {
    SCOPED_TRACE(threads);
    const CampaignRunner runner({.threads = threads});
    const ScenarioResult result = runner.run_one(spec);
    ASSERT_EQ(result.panels.size(), 1u);
    expect_identical_panel(result.panels[0], standalone);
  }
}

TEST(ExactBackend, ExactSolveScenarioMatchesCampaign) {
  // kSolve scenarios in exact-opt mode route through the same registry
  // backend in solve_scenario and in the campaign's task stream.
  const ScenarioSpec spec = parse_scenario(
      "name=exact_solve config=Atlas/Crusoe mode=exact-opt param=none "
      "rho=2.5");
  const core::Solution direct = solve_scenario(spec);
  const CampaignRunner runner({.threads = 1});
  const ScenarioResult result = runner.run_one(spec);
  test::expect_identical_solution(direct, result.solution);
}

TEST(ExactBackend, RegressionAcrossRegisteredScenarios) {
  // ExactSolver ≡ the uncached optimize_exact_pair path (through
  // BiCritSolver::solve in kExactOptimize) for every registered
  // scenario's resolved parameters at its registered bound.
  for (const ScenarioSpec& spec : scenario_registry()) {
    if (spec.interleaved()) continue;  // different solution type
    SCOPED_TRACE(spec.name);
    const core::ModelParams params = spec.resolve_params();
    const core::ExactSolver cached(params);
    const core::BiCritSolver uncached(params);
    const core::BiCritSolution a = cached.solve(spec.rho, spec.policy);
    const core::BiCritSolution b =
        uncached.solve(spec.rho, spec.policy,
                       core::EvalMode::kExactOptimize);
    ASSERT_EQ(a.feasible, b.feasible);
    if (!a.feasible) continue;
    EXPECT_EQ(a.best.sigma1_index, b.best.sigma1_index);
    EXPECT_EQ(a.best.sigma2_index, b.best.sigma2_index);
    EXPECT_NEAR(a.best.energy_overhead, b.best.energy_overhead,
                1e-6 * b.best.energy_overhead);
    EXPECT_NEAR(a.best.time_overhead, b.best.time_overhead,
                1e-5 * b.best.time_overhead);
  }
}

TEST(ExactBackend, ExactOptMatchesFirstOrderInPaperRegime) {
  // §5.2 agreement through the engine path: at the paper's error rates
  // the exact-opt backend and the first-order closed forms pick the same
  // speed pair with energy overheads within 1%.
  ScenarioSpec exact = parse_scenario(
      "name=a config=Hera/XScale mode=exact-opt param=none rho=2");
  ScenarioSpec first = parse_scenario(
      "name=b config=Hera/XScale mode=first-order param=none rho=2");
  exact.overrides.push_back({"lambda", 1e-7});
  first.overrides.push_back({"lambda", 1e-7});
  const core::Solution a = solve_scenario(exact);
  const core::Solution b = solve_scenario(first);
  ASSERT_TRUE(a.feasible());
  ASSERT_TRUE(b.feasible());
  EXPECT_EQ(a.pair.sigma1_index, b.pair.sigma1_index);
  EXPECT_EQ(a.pair.sigma2_index, b.pair.sigma2_index);
  EXPECT_NEAR(a.energy_overhead(), b.energy_overhead(),
              1e-2 * b.energy_overhead());
}

TEST(ExactBackend, SpeedPairTablesRouteThroughTheCache) {
  // §4.2 tables in exact mode: the cached route agrees with the
  // uncached per-bound table.
  const ScenarioSpec spec = parse_scenario(
      "name=tables config=Hera/XScale mode=exact-opt param=none rho=3");
  const SweepEngine engine({.threads = 1});
  const auto tables = engine.speed_pair_tables(spec, {3.0, 1.775});
  ASSERT_EQ(tables.size(), 2u);
  const core::ClosedFormBackend uncached(spec.resolve_params(),
                                         core::EvalMode::kExactOptimize);
  const auto reference = sweep::speed_pair_table(uncached, 3.0);
  ASSERT_EQ(tables[0].size(), reference.size());
  for (std::size_t i = 0; i < reference.size(); ++i) {
    SCOPED_TRACE(i);
    ASSERT_EQ(tables[0][i].feasible, reference[i].feasible);
    EXPECT_EQ(tables[0][i].is_global_best, reference[i].is_global_best);
    if (!reference[i].feasible) continue;
    EXPECT_EQ(tables[0][i].best_sigma2, reference[i].best_sigma2);
    EXPECT_NEAR(tables[0][i].energy_overhead, reference[i].energy_overhead,
                1e-6 * reference[i].energy_overhead);
  }
}

}  // namespace
}  // namespace rexspeed::engine
