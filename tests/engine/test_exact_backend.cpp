// The cached exact backend through the engine layer: SolverContext
// routing, exact-mode ρ sweeps parallel ≡ serial, campaign ≡ standalone,
// the regression of ExactSolver against the uncached optimize_exact_pair
// path across every registered scenario, and the paper-regime agreement
// of exact-opt with first-order at small λ.

#include <gtest/gtest.h>

#include <stdexcept>

#include "rexspeed/core/exact_solver.hpp"
#include "rexspeed/engine/campaign_runner.hpp"
#include "rexspeed/engine/scenario.hpp"
#include "rexspeed/engine/sweep_engine.hpp"
#include "test_util.hpp"

namespace rexspeed::engine {
namespace {

using test::expect_identical_pair;
using test::expect_identical_series;

ScenarioSpec exact_rho_spec() {
  return parse_scenario(
      "name=exact config=Hera/XScale mode=exact-opt param=rho points=9");
}

TEST(ExactBackend, ContextBuildsAndRoutesTheCache) {
  const ScenarioSpec spec = exact_rho_spec();
  const SolverContext context = spec.make_context();
  ASSERT_TRUE(context.has_exact());
  // Routing: the context's exact-opt solve IS the cached backend's solve
  // (deterministic construction → bit-identical).
  const core::ExactSolver standalone(spec.resolve_params());
  expect_identical_pair(
      context.solve(2.0, core::SpeedPolicy::kTwoSpeed,
                    core::EvalMode::kExactOptimize).best,
      standalone.solve(2.0).best);
  expect_identical_pair(
      context.solve_pair(2.0, 0, 1, core::EvalMode::kExactOptimize),
      standalone.solve_pair_by_index(2.0, 0, 1));
  // Non-exact modes keep the first-order path.
  expect_identical_pair(
      context.solve(2.0, core::SpeedPolicy::kTwoSpeed,
                    core::EvalMode::kFirstOrder).best,
      context.solver().solve(2.0, core::SpeedPolicy::kTwoSpeed,
                             core::EvalMode::kFirstOrder).best);
}

TEST(ExactBackend, ContextWithoutCacheThrowsAndFallsBack) {
  ScenarioSpec spec = exact_rho_spec();
  spec.mode = core::EvalMode::kFirstOrder;
  const SolverContext context = spec.make_context();
  EXPECT_FALSE(context.has_exact());
  EXPECT_THROW(context.exact(), std::logic_error);
  // Exact-opt solves still work without the cache — the per-bound
  // numeric optimization path.
  const auto sol = context.solve(2.0, core::SpeedPolicy::kTwoSpeed,
                                 core::EvalMode::kExactOptimize);
  EXPECT_TRUE(sol.feasible);
}

TEST(ExactBackend, PooledConstructionIsBitIdentical) {
  const ScenarioSpec spec = exact_rho_spec();
  sweep::ThreadPool pool(4);
  SolverContextOptions options;
  options.exact_cache = true;
  const SolverContext serial(spec.resolve_params(), options);
  options.pool = &pool;
  const SolverContext pooled(spec.resolve_params(), options);
  ASSERT_EQ(serial.exact().expansions().size(),
            pooled.exact().expansions().size());
  for (std::size_t i = 0; i < serial.exact().expansions().size(); ++i) {
    EXPECT_EQ(serial.exact().expansions()[i].w_time,
              pooled.exact().expansions()[i].w_time);
    EXPECT_EQ(serial.exact().expansions()[i].w_energy,
              pooled.exact().expansions()[i].w_energy);
    EXPECT_EQ(serial.exact().expansions()[i].rho_min,
              pooled.exact().expansions()[i].rho_min);
  }
  expect_identical_pair(serial.exact().solve(1.8).best,
                        pooled.exact().solve(1.8).best);
}

TEST(ExactBackend, RhoSweepParallelEqualsSerial) {
  // The acceptance guarantee: exact-mode ρ sweeps are bit-identical
  // parallel vs serial, any thread count.
  const ScenarioSpec spec = exact_rho_spec();
  const SweepEngine serial({.threads = 1});
  const SweepEngine parallel({.threads = 4});
  expect_identical_series(serial.run(spec), parallel.run(spec));
}

TEST(ExactBackend, CampaignMatchesStandaloneSweep) {
  // The flattened stream (prepare in phase 1.5, points in phase 2) must
  // reproduce the standalone engine run bit for bit — serial and
  // parallel runners alike.
  const ScenarioSpec spec = exact_rho_spec();
  const SweepEngine engine({.threads = 1});
  const sweep::FigureSeries standalone = engine.run(spec);
  for (const unsigned threads : {1u, 4u}) {
    SCOPED_TRACE(threads);
    const CampaignRunner runner({.threads = threads});
    const ScenarioResult result = runner.run_one(spec);
    ASSERT_EQ(result.panels.size(), 1u);
    expect_identical_series(result.panels[0], standalone);
  }
}

TEST(ExactBackend, ExactSolveScenarioMatchesCampaign) {
  // kSolve scenarios in exact-opt mode route through the same cached
  // context in solve_scenario and in the campaign's task stream.
  const ScenarioSpec spec = parse_scenario(
      "name=exact_solve config=Atlas/Crusoe mode=exact-opt param=none "
      "rho=2.5");
  bool used_fallback = false;
  const core::PairSolution direct = solve_scenario(spec, &used_fallback);
  const CampaignRunner runner({.threads = 1});
  const ScenarioResult result = runner.run_one(spec);
  expect_identical_pair(direct, result.solution);
  EXPECT_EQ(used_fallback, result.used_fallback);
}

TEST(ExactBackend, RegressionAcrossRegisteredScenarios) {
  // ExactSolver ≡ the uncached optimize_exact_pair path (through
  // BiCritSolver::solve in kExactOptimize) for every registered
  // scenario's resolved parameters at its registered bound.
  for (const ScenarioSpec& spec : scenario_registry()) {
    if (spec.interleaved()) continue;  // different solution type
    SCOPED_TRACE(spec.name);
    const core::ModelParams params = spec.resolve_params();
    const core::ExactSolver cached(params);
    const core::BiCritSolver uncached(params);
    const core::BiCritSolution a = cached.solve(spec.rho, spec.policy);
    const core::BiCritSolution b =
        uncached.solve(spec.rho, spec.policy,
                       core::EvalMode::kExactOptimize);
    ASSERT_EQ(a.feasible, b.feasible);
    if (!a.feasible) continue;
    EXPECT_EQ(a.best.sigma1_index, b.best.sigma1_index);
    EXPECT_EQ(a.best.sigma2_index, b.best.sigma2_index);
    EXPECT_NEAR(a.best.energy_overhead, b.best.energy_overhead,
                1e-6 * b.best.energy_overhead);
    EXPECT_NEAR(a.best.time_overhead, b.best.time_overhead,
                1e-5 * b.best.time_overhead);
  }
}

TEST(ExactBackend, ExactOptMatchesFirstOrderInPaperRegime) {
  // §5.2 agreement through the engine path: at the paper's error rates
  // the exact-opt backend and the first-order closed forms pick the same
  // speed pair with energy overheads within 1%.
  ScenarioSpec exact = parse_scenario(
      "name=a config=Hera/XScale mode=exact-opt param=none rho=2");
  ScenarioSpec first = parse_scenario(
      "name=b config=Hera/XScale mode=first-order param=none rho=2");
  exact.overrides.push_back({"lambda", 1e-7});
  first.overrides.push_back({"lambda", 1e-7});
  const core::PairSolution a = solve_scenario(exact);
  const core::PairSolution b = solve_scenario(first);
  ASSERT_TRUE(a.feasible);
  ASSERT_TRUE(b.feasible);
  EXPECT_EQ(a.sigma1_index, b.sigma1_index);
  EXPECT_EQ(a.sigma2_index, b.sigma2_index);
  EXPECT_NEAR(a.energy_overhead, b.energy_overhead,
              1e-2 * b.energy_overhead);
}

TEST(ExactBackend, SpeedPairTablesRouteThroughTheCache) {
  // §4.2 tables in exact mode: the cached route agrees with the
  // uncached per-bound table.
  const ScenarioSpec spec = parse_scenario(
      "name=tables config=Hera/XScale mode=exact-opt param=none rho=3");
  const SweepEngine engine({.threads = 1});
  const auto tables = engine.speed_pair_tables(spec, {3.0, 1.775});
  ASSERT_EQ(tables.size(), 2u);
  const core::BiCritSolver uncached(spec.resolve_params());
  const auto reference = sweep::speed_pair_table(
      uncached, 3.0, core::EvalMode::kExactOptimize);
  ASSERT_EQ(tables[0].size(), reference.size());
  for (std::size_t i = 0; i < reference.size(); ++i) {
    SCOPED_TRACE(i);
    ASSERT_EQ(tables[0][i].feasible, reference[i].feasible);
    EXPECT_EQ(tables[0][i].is_global_best, reference[i].is_global_best);
    if (!reference[i].feasible) continue;
    EXPECT_EQ(tables[0][i].best_sigma2, reference[i].best_sigma2);
    EXPECT_NEAR(tables[0][i].energy_overhead, reference[i].energy_overhead,
                1e-6 * reference[i].energy_overhead);
  }
}

}  // namespace
}  // namespace rexspeed::engine
