// Interleaved verification through the engine layer: scenario keys, the
// registry-built InterleavedBackend, SweepEngine's interleaved panels
// (parallel ≡ serial), the campaign runner's flattened stream
// (campaign ≡ standalone), and the simulator bridge.

#include <gtest/gtest.h>

#include <stdexcept>

#include "rexspeed/engine/backend_registry.hpp"
#include "rexspeed/engine/campaign_runner.hpp"
#include "rexspeed/engine/scenario.hpp"
#include "rexspeed/engine/solver_context.hpp"
#include "rexspeed/engine/sweep_engine.hpp"
#include "test_util.hpp"

namespace rexspeed::engine {
namespace {

using test::expect_identical_interleaved;
using test::expect_identical_panel;

/// The hot-regime spec used throughout: frequent errors + cheap checks,
/// so the solver genuinely segments.
ScenarioSpec hot_spec() {
  ScenarioSpec spec = parse_scenario(
      "name=hot config=Hera/XScale rho=5 max_segments=6 param=rho "
      "points=7 lambda=1e-3 V=1");
  return spec;
}

TEST(InterleavedScenario, ParsesSegmentKeys) {
  const ScenarioSpec fixed =
      parse_scenario("config=Hera/XScale segments=4 param=none");
  EXPECT_TRUE(fixed.interleaved());
  EXPECT_EQ(fixed.segments, 4u);
  EXPECT_EQ(fixed.max_segments, 0u);
  EXPECT_EQ(fixed.segment_limit(), 4u);
  EXPECT_EQ(fixed.kind(), ScenarioKind::kSolve);

  const ScenarioSpec searched =
      parse_scenario("config=Hera/XScale max_segments=8 param=segments");
  EXPECT_TRUE(searched.interleaved());
  EXPECT_EQ(searched.segment_limit(), 8u);
  EXPECT_EQ(searched.sweep_parameter, sweep::SweepParameter::kSegments);

  const ScenarioSpec plain = parse_scenario("config=Hera/XScale");
  EXPECT_FALSE(plain.interleaved());
  EXPECT_EQ(plain.segment_limit(), 0u);

  // mode=interleaved alone is the paper's pattern through the
  // interleaved path (m = 1); explicit segment keys take precedence.
  const ScenarioSpec by_mode =
      parse_scenario("config=Hera/XScale mode=interleaved");
  EXPECT_TRUE(by_mode.interleaved());
  EXPECT_EQ(by_mode.segment_limit(), 1u);
  const ScenarioSpec combined =
      parse_scenario("config=Hera/XScale max_segments=8 mode=interleaved");
  EXPECT_EQ(combined.segment_limit(), 8u);

  // Explicit segment keys replace the mode's m = 1 default in EITHER
  // order — the mutual-exclusion check only trips on two user-set keys.
  const ScenarioSpec mode_then_cap =
      parse_scenario("config=Hera/XScale mode=interleaved max_segments=8");
  EXPECT_EQ(mode_then_cap.max_segments, 8u);
  const ScenarioSpec mode_then_fixed =
      parse_scenario("config=Hera/XScale mode=interleaved segments=4");
  EXPECT_EQ(mode_then_fixed.segments, 4u);
  EXPECT_EQ(mode_then_fixed.max_segments, 0u);
  const ScenarioSpec fixed_then_mode =
      parse_scenario("config=Hera/XScale segments=4 mode=interleaved");
  EXPECT_EQ(fixed_then_mode.segments, 4u);
  EXPECT_EQ(fixed_then_mode.max_segments, 0u);
}

TEST(InterleavedScenario, RejectsMalformedSegmentKeys) {
  EXPECT_THROW(parse_scenario("config=Hera/XScale segments=0"),
               std::invalid_argument);
  EXPECT_THROW(parse_scenario("config=Hera/XScale max_segments=0"),
               std::invalid_argument);
  EXPECT_THROW(parse_scenario("config=Hera/XScale segments=2.5"),
               std::invalid_argument);
  EXPECT_THROW(parse_scenario("config=Hera/XScale segments=-3"),
               std::invalid_argument);
  EXPECT_THROW(parse_scenario("config=Hera/XScale segments=999999"),
               std::invalid_argument);
  // Mutually exclusive, both orders.
  EXPECT_THROW(
      parse_scenario("config=Hera/XScale segments=2 max_segments=4"),
      std::invalid_argument);
  EXPECT_THROW(
      parse_scenario("config=Hera/XScale max_segments=4 segments=2"),
      std::invalid_argument);
  // The segments axis without interleaved mode is caught by validation.
  EXPECT_THROW(parse_scenario("config=Hera/XScale param=segments"),
               std::invalid_argument);
  // Interleaved scenarios only sweep rho or segments.
  EXPECT_THROW(
      parse_scenario("config=Hera/XScale max_segments=4 param=C"),
      std::invalid_argument);
}

TEST(InterleavedScenario, PanelAxesFollowTheSpec) {
  ScenarioSpec spec = hot_spec();
  ASSERT_EQ(scenario_panel_axes(spec).size(), 1u);
  EXPECT_EQ(scenario_panel_axes(spec)[0],
            sweep::SweepParameter::kPerformanceBound);

  spec.sweep_parameter = sweep::SweepParameter::kSegments;
  EXPECT_EQ(scenario_panel_axes(spec)[0],
            sweep::SweepParameter::kSegments);

  // param=all asks the backend: the interleaved backend advertises
  // exactly the ρ and segments axes.
  spec.sweep_parameter.reset();
  spec.all_panels = true;
  const auto axes = scenario_panel_axes(spec);
  ASSERT_EQ(axes.size(), 2u);
  EXPECT_EQ(axes[0], sweep::SweepParameter::kPerformanceBound);
  EXPECT_EQ(axes[1], sweep::SweepParameter::kSegments);

  spec.all_panels = false;  // kSolve: no panels
  EXPECT_THROW((void)scenario_panel_axes(spec), std::invalid_argument);
}

TEST(InterleavedBackendEngine, RegistryBackendMatchesDirectSolver) {
  // The registry-built backend IS the cached InterleavedSolver path:
  // bit-identical to driving the solver directly, for the searched and
  // the pinned form alike.
  const ScenarioSpec spec = hot_spec();
  const SolverContext context = make_context(spec);
  EXPECT_EQ(context.capabilities().kind, core::SolutionKind::kInterleaved);
  EXPECT_EQ(context.capabilities().max_segments, 6u);

  const core::InterleavedSolver direct(spec.resolve_params(), 6);
  expect_identical_interleaved(context.solve(5.0).interleaved,
                               direct.solve(5.0));

  ScenarioSpec pinned = spec;
  pinned.max_segments = 0;
  pinned.segments = 3;
  const SolverContext pinned_context = make_context(pinned);
  expect_identical_interleaved(pinned_context.solve(5.0).interleaved,
                               direct.solve_segments(5.0, 3));

  // The pair backends are untouched by the segment configuration.
  const ScenarioSpec plain = parse_scenario("config=Hera/XScale");
  const SolverContext pair_context = make_context(plain);
  EXPECT_EQ(pair_context.capabilities().kind, core::SolutionKind::kPair);
  EXPECT_TRUE(pair_context.solve(3.0).feasible());
}

TEST(InterleavedScenario, SolveUsesFixedOrSearchedCount) {
  ScenarioSpec spec = hot_spec();
  spec.sweep_parameter.reset();
  const core::Solution searched = solve_scenario(spec);
  ASSERT_EQ(searched.kind, core::SolutionKind::kInterleaved);
  ASSERT_TRUE(searched.feasible());
  EXPECT_GT(searched.segments(), 1u);

  ScenarioSpec pinned = spec;
  pinned.max_segments = 0;
  pinned.segments = 2;
  const core::Solution fixed = solve_scenario(pinned);
  ASSERT_TRUE(fixed.feasible());
  EXPECT_EQ(fixed.segments(), 2u);

  // A non-interleaved spec yields a pair solution through the very same
  // entry point — the mode dispatch lives in the registry now.
  const core::Solution pair =
      solve_scenario(parse_scenario("config=Hera/XScale"));
  EXPECT_EQ(pair.kind, core::SolutionKind::kPair);
  EXPECT_EQ(pair.segments(), 1u);
}

TEST(SweepEngineInterleaved, ParallelPanelsAreBitIdenticalToSerial) {
  // Both axes, a multi-worker engine vs a forced-serial one.
  ScenarioSpec spec = hot_spec();
  spec.all_panels = true;
  spec.sweep_parameter.reset();
  const SweepEngine parallel(SweepEngineOptions{.threads = 4});
  const SweepEngine serial(SweepEngineOptions{.threads = 1});
  ASSERT_NE(parallel.pool(), nullptr);
  EXPECT_EQ(serial.pool(), nullptr);
  const auto a = parallel.run_scenario(spec);
  const auto b = serial.run_scenario(spec);
  ASSERT_EQ(a.size(), 2u);
  ASSERT_EQ(b.size(), 2u);
  for (std::size_t p = 0; p < a.size(); ++p) {
    SCOPED_TRACE(sweep::to_string(a[p].parameter));
    expect_identical_panel(a[p], b[p]);
  }
  // The segments panel carries the baseline at every x and x = m.
  const sweep::InterleavedSeries vs_m = sweep::to_interleaved_series(a[1]);
  ASSERT_EQ(vs_m.points.size(), 6u);
  for (std::size_t i = 0; i < vs_m.points.size(); ++i) {
    EXPECT_EQ(vs_m.points[i].x, static_cast<double>(i + 1));
    if (vs_m.points[i].best.feasible) {
      EXPECT_LE(vs_m.points[i].best.energy_overhead,
                vs_m.points[i].single.energy_overhead * (1.0 + 1e-9));
    }
  }
}

TEST(SweepEngineInterleaved, FixedSegmentCountStaysPinnedAcrossRhoPanel) {
  // A `segments=M` scenario pins the count in panels exactly as it does
  // in solves — it must never degrade into a best-m-under-M search.
  ScenarioSpec pinned = hot_spec();
  pinned.max_segments = 0;
  pinned.segments = 3;
  const SweepEngine engine(SweepEngineOptions{.threads = 1});
  const sweep::InterleavedSeries panel = engine.run_interleaved(
      pinned, sweep::SweepParameter::kPerformanceBound);
  bool any_feasible = false;
  for (const auto& point : panel.points) {
    if (!point.best.feasible) continue;
    any_feasible = true;
    EXPECT_EQ(point.best.segments, 3u) << "x=" << point.x;
    // Each panel point agrees with the solve path at the same bound.
    ScenarioSpec at_x = pinned;
    at_x.sweep_parameter.reset();
    at_x.rho = point.x;
    expect_identical_interleaved(point.best,
                                 solve_scenario(at_x).interleaved);
  }
  EXPECT_TRUE(any_feasible);
}

TEST(SweepEngineInterleaved, OneEntryPointServesEveryBackend) {
  // run_scenario handles interleaved and pair scenarios alike now — the
  // historical twin entry points (and the twin panel-sweep classes behind
  // them) are gone. The panels only differ in their kind tag.
  const SweepEngine engine(SweepEngineOptions{.threads = 1});
  const auto segmented = engine.run_scenario(hot_spec());
  ASSERT_EQ(segmented.size(), 1u);
  EXPECT_EQ(segmented[0].kind, core::SolutionKind::kInterleaved);

  ScenarioSpec regular = scenario_by_name("fig02");
  regular.points = 5;
  const auto pair = engine.run_scenario(regular);
  ASSERT_EQ(pair.size(), 1u);
  EXPECT_EQ(pair[0].kind, core::SolutionKind::kPair);

  // The typed views reject the wrong kind instead of mangling it.
  EXPECT_THROW((void)sweep::to_figure_series(segmented[0]),
               std::invalid_argument);
  EXPECT_THROW((void)sweep::to_interleaved_series(pair[0]),
               std::invalid_argument);
}

TEST(CampaignRunnerInterleaved, CampaignMatchesStandaloneRuns) {
  // Acceptance criterion: interleaved panels through the flattened
  // campaign stream are bit-identical to standalone SweepEngine runs —
  // mixed with regular scenarios, parallel vs serial.
  ScenarioSpec panels = hot_spec();
  panels.all_panels = true;
  panels.sweep_parameter.reset();
  ScenarioSpec solve = hot_spec();
  solve.name = "hot_solve";
  solve.sweep_parameter.reset();
  ScenarioSpec regular = scenario_by_name("fig02");
  regular.points = 5;

  const CampaignRunner runner(CampaignRunnerOptions{.threads = 4});
  const auto results = runner.run({panels, regular, solve});
  ASSERT_EQ(results.size(), 3u);

  const SweepEngine serial(SweepEngineOptions{.threads = 1});
  const auto reference = serial.run_scenario(panels);
  ASSERT_EQ(results[0].panels.size(), reference.size());
  for (std::size_t p = 0; p < reference.size(); ++p) {
    expect_identical_panel(results[0].panels[p], reference[p]);
  }

  ASSERT_EQ(results[1].panels.size(), 1u);
  expect_identical_panel(results[1].panels[0],
                         serial.run_scenario(regular)[0]);

  EXPECT_TRUE(results[2].panels.empty());
  test::expect_identical_solution(results[2].solution,
                                  solve_scenario(solve));

  // And a serial campaign reproduces the parallel one bit for bit.
  const auto serial_results =
      CampaignRunner(CampaignRunnerOptions{.threads = 1})
          .run({panels, regular, solve});
  for (std::size_t p = 0; p < reference.size(); ++p) {
    expect_identical_panel(serial_results[0].panels[p],
                           results[0].panels[p]);
  }
  test::expect_identical_solution(serial_results[2].solution,
                                  results[2].solution);
}

TEST(CampaignRunnerInterleaved, ValidationHappensBeforeAnyTaskRuns) {
  // λf ≠ 0 cannot reach the segmented closed forms inside a pool worker.
  ScenarioSpec failstop = hot_spec();
  failstop.sweep_parameter.reset();  // a solve: construction is deferred
  failstop.overrides.push_back({"lambda_failstop", 1e-5});
  EXPECT_THROW(CampaignRunner().run({failstop}), std::invalid_argument);

  ScenarioSpec failstop_panel = hot_spec();
  failstop_panel.overrides.push_back({"lambda_failstop", 1e-5});
  EXPECT_THROW(CampaignRunner().run({failstop_panel}),
               std::invalid_argument);

  // Cross-field validation runs for campaign members too.
  ScenarioSpec bad_axis = scenario_by_name("fig02");
  bad_axis.sweep_parameter = sweep::SweepParameter::kSegments;
  EXPECT_THROW(CampaignRunner().run({bad_axis}), std::invalid_argument);
}

TEST(InterleavedScenario, RegistryScenariosRunEndToEnd) {
  // The registered extension scenarios are runnable as shipped (small
  // grids keep this fast).
  ScenarioSpec vs_rho = scenario_by_name("interleaved_rho");
  vs_rho.points = 5;
  const SweepEngine engine(SweepEngineOptions{.threads = 1});
  const auto rho_panels = engine.run_scenario(vs_rho);
  ASSERT_EQ(rho_panels.size(), 1u);
  EXPECT_EQ(rho_panels[0].points.size(), 5u);

  ScenarioSpec vs_m = scenario_by_name("interleaved_segments");
  const auto m_panels = engine.run_scenario(vs_m);
  ASSERT_EQ(m_panels.size(), 1u);
  EXPECT_EQ(m_panels[0].points.size(), 8u);
  // In its hot regime, segmentation strictly beats the paper pattern.
  EXPECT_GT(m_panels[0].max_energy_saving(), 0.05);
}

}  // namespace
}  // namespace rexspeed::engine
