// Interleaved verification through the engine layer: scenario keys,
// SolverContext's cached path, SweepEngine's interleaved panels
// (parallel ≡ serial), the campaign runner's flattened stream
// (campaign ≡ standalone), and the simulator bridge.

#include <gtest/gtest.h>

#include <stdexcept>

#include "rexspeed/engine/campaign_runner.hpp"
#include "rexspeed/engine/scenario.hpp"
#include "rexspeed/engine/sweep_engine.hpp"
#include "test_util.hpp"

namespace rexspeed::engine {
namespace {

using test::expect_identical_interleaved;
using test::expect_identical_interleaved_series;

/// The hot-regime spec used throughout: frequent errors + cheap checks,
/// so the solver genuinely segments.
ScenarioSpec hot_spec() {
  ScenarioSpec spec = parse_scenario(
      "name=hot config=Hera/XScale rho=5 max_segments=6 param=rho "
      "points=7 lambda=1e-3 V=1");
  return spec;
}

TEST(InterleavedScenario, ParsesSegmentKeys) {
  const ScenarioSpec fixed =
      parse_scenario("config=Hera/XScale segments=4 param=none");
  EXPECT_TRUE(fixed.interleaved());
  EXPECT_EQ(fixed.segments, 4u);
  EXPECT_EQ(fixed.max_segments, 0u);
  EXPECT_EQ(fixed.segment_limit(), 4u);
  EXPECT_EQ(fixed.kind(), ScenarioKind::kSolve);

  const ScenarioSpec searched =
      parse_scenario("config=Hera/XScale max_segments=8 param=segments");
  EXPECT_TRUE(searched.interleaved());
  EXPECT_EQ(searched.segment_limit(), 8u);
  EXPECT_EQ(searched.sweep_parameter, sweep::SweepParameter::kSegments);

  const ScenarioSpec plain = parse_scenario("config=Hera/XScale");
  EXPECT_FALSE(plain.interleaved());
  EXPECT_EQ(plain.segment_limit(), 0u);
}

TEST(InterleavedScenario, RejectsMalformedSegmentKeys) {
  EXPECT_THROW(parse_scenario("config=Hera/XScale segments=0"),
               std::invalid_argument);
  EXPECT_THROW(parse_scenario("config=Hera/XScale max_segments=0"),
               std::invalid_argument);
  EXPECT_THROW(parse_scenario("config=Hera/XScale segments=2.5"),
               std::invalid_argument);
  EXPECT_THROW(parse_scenario("config=Hera/XScale segments=-3"),
               std::invalid_argument);
  EXPECT_THROW(parse_scenario("config=Hera/XScale segments=999999"),
               std::invalid_argument);
  // Mutually exclusive, both orders.
  EXPECT_THROW(
      parse_scenario("config=Hera/XScale segments=2 max_segments=4"),
      std::invalid_argument);
  EXPECT_THROW(
      parse_scenario("config=Hera/XScale max_segments=4 segments=2"),
      std::invalid_argument);
  // The segments axis without interleaved mode is caught by validation.
  EXPECT_THROW(parse_scenario("config=Hera/XScale param=segments"),
               std::invalid_argument);
  // Interleaved scenarios only sweep rho or segments.
  EXPECT_THROW(
      parse_scenario("config=Hera/XScale max_segments=4 param=C"),
      std::invalid_argument);
}

TEST(InterleavedScenario, PanelAxesFollowTheSpec) {
  ScenarioSpec spec = hot_spec();
  ASSERT_EQ(interleaved_panel_axes(spec).size(), 1u);
  EXPECT_EQ(interleaved_panel_axes(spec)[0],
            sweep::SweepParameter::kPerformanceBound);

  spec.sweep_parameter = sweep::SweepParameter::kSegments;
  EXPECT_EQ(interleaved_panel_axes(spec)[0],
            sweep::SweepParameter::kSegments);

  spec.sweep_parameter.reset();
  spec.all_panels = true;
  const auto axes = interleaved_panel_axes(spec);
  ASSERT_EQ(axes.size(), 2u);
  EXPECT_EQ(axes[0], sweep::SweepParameter::kPerformanceBound);
  EXPECT_EQ(axes[1], sweep::SweepParameter::kSegments);

  spec.all_panels = false;  // kSolve: no panels
  EXPECT_THROW((void)interleaved_panel_axes(spec), std::invalid_argument);
  EXPECT_THROW(
      (void)interleaved_panel_axes(parse_scenario("config=Hera/XScale")),
      std::invalid_argument);
}

TEST(SolverContextInterleaved, OptInCacheMatchesDirectSolver) {
  const ScenarioSpec spec = hot_spec();
  const SolverContext context = spec.make_context();
  ASSERT_TRUE(context.has_interleaved());
  EXPECT_EQ(context.interleaved().max_segments(), 6u);

  const core::InterleavedSolver direct(spec.resolve_params(), 6);
  expect_identical_interleaved(context.solve_interleaved(5.0),
                               direct.solve(5.0));
  expect_identical_interleaved(context.solve_interleaved(5.0, 3),
                               direct.solve_segments(5.0, 3));

  // The regular solve path is untouched by the extra cache.
  const SolverContext plain(spec.resolve_params());
  EXPECT_FALSE(plain.has_interleaved());
  EXPECT_THROW((void)plain.interleaved(), std::logic_error);
  EXPECT_THROW((void)plain.solve_interleaved(5.0), std::logic_error);
  test::expect_identical_pair(context.solve(3.0).best,
                              plain.solve(3.0).best);
}

TEST(InterleavedScenario, SolveUsesFixedOrSearchedCount) {
  ScenarioSpec spec = hot_spec();
  spec.sweep_parameter.reset();
  const core::InterleavedSolution searched =
      solve_scenario_interleaved(spec);
  ASSERT_TRUE(searched.feasible);
  EXPECT_GT(searched.segments, 1u);

  ScenarioSpec pinned = spec;
  pinned.max_segments = 0;
  pinned.segments = 2;
  const core::InterleavedSolution fixed = solve_scenario_interleaved(pinned);
  ASSERT_TRUE(fixed.feasible);
  EXPECT_EQ(fixed.segments, 2u);

  EXPECT_THROW(
      (void)solve_scenario_interleaved(parse_scenario("config=Hera/XScale")),
      std::invalid_argument);
}

TEST(SweepEngineInterleaved, ParallelPanelsAreBitIdenticalToSerial) {
  // Both axes, a multi-worker engine vs a forced-serial one.
  ScenarioSpec spec = hot_spec();
  spec.all_panels = true;
  spec.sweep_parameter.reset();
  const SweepEngine parallel(SweepEngineOptions{.threads = 4});
  const SweepEngine serial(SweepEngineOptions{.threads = 1});
  ASSERT_NE(parallel.pool(), nullptr);
  EXPECT_EQ(serial.pool(), nullptr);
  const auto a = parallel.run_interleaved_scenario(spec);
  const auto b = serial.run_interleaved_scenario(spec);
  ASSERT_EQ(a.size(), 2u);
  ASSERT_EQ(b.size(), 2u);
  for (std::size_t p = 0; p < a.size(); ++p) {
    SCOPED_TRACE(sweep::to_string(a[p].parameter));
    expect_identical_interleaved_series(a[p], b[p]);
  }
  // The segments panel carries the baseline at every x and x = m.
  const sweep::InterleavedSeries& vs_m = a[1];
  ASSERT_EQ(vs_m.points.size(), 6u);
  for (std::size_t i = 0; i < vs_m.points.size(); ++i) {
    EXPECT_EQ(vs_m.points[i].x, static_cast<double>(i + 1));
    if (vs_m.points[i].best.feasible) {
      EXPECT_LE(vs_m.points[i].best.energy_overhead,
                vs_m.points[i].single.energy_overhead * (1.0 + 1e-9));
    }
  }
}

TEST(SweepEngineInterleaved, FixedSegmentCountStaysPinnedAcrossRhoPanel) {
  // A `segments=M` scenario pins the count in panels exactly as it does
  // in solves — it must never degrade into a best-m-under-M search.
  ScenarioSpec pinned = hot_spec();
  pinned.max_segments = 0;
  pinned.segments = 3;
  const SweepEngine engine(SweepEngineOptions{.threads = 1});
  const sweep::InterleavedSeries panel = engine.run_interleaved(
      pinned, sweep::SweepParameter::kPerformanceBound);
  bool any_feasible = false;
  for (const auto& point : panel.points) {
    if (!point.best.feasible) continue;
    any_feasible = true;
    EXPECT_EQ(point.best.segments, 3u) << "x=" << point.x;
    // Each panel point agrees with the solve path at the same bound.
    ScenarioSpec at_x = pinned;
    at_x.sweep_parameter.reset();
    at_x.rho = point.x;
    expect_identical_interleaved(point.best,
                                 solve_scenario_interleaved(at_x));
  }
  EXPECT_TRUE(any_feasible);
}

TEST(SweepEngineInterleaved, RegularAndInterleavedEntryPointsAreDisjoint) {
  const SweepEngine engine(SweepEngineOptions{.threads = 1});
  // run_scenario refuses interleaved specs instead of dropping segments.
  EXPECT_THROW((void)engine.run_scenario(hot_spec()), std::invalid_argument);
  // run_interleaved_scenario refuses non-interleaved specs.
  EXPECT_THROW(
      (void)engine.run_interleaved_scenario(scenario_by_name("fig02")),
      std::invalid_argument);
}

TEST(CampaignRunnerInterleaved, CampaignMatchesStandaloneRuns) {
  // Acceptance criterion: interleaved panels through the flattened
  // campaign stream are bit-identical to standalone SweepEngine runs —
  // mixed with regular scenarios, parallel vs serial.
  ScenarioSpec panels = hot_spec();
  panels.all_panels = true;
  panels.sweep_parameter.reset();
  ScenarioSpec solve = hot_spec();
  solve.name = "hot_solve";
  solve.sweep_parameter.reset();
  ScenarioSpec regular = scenario_by_name("fig02");
  regular.points = 5;

  const CampaignRunner runner(CampaignRunnerOptions{.threads = 4});
  const auto results = runner.run({panels, regular, solve});
  ASSERT_EQ(results.size(), 3u);

  const SweepEngine serial(SweepEngineOptions{.threads = 1});
  const auto reference = serial.run_interleaved_scenario(panels);
  ASSERT_EQ(results[0].interleaved_panels.size(), reference.size());
  EXPECT_TRUE(results[0].panels.empty());
  for (std::size_t p = 0; p < reference.size(); ++p) {
    expect_identical_interleaved_series(results[0].interleaved_panels[p],
                                        reference[p]);
  }

  ASSERT_EQ(results[1].panels.size(), 1u);
  test::expect_identical_series(
      results[1].panels[0], serial.run_scenario(regular)[0]);

  EXPECT_TRUE(results[2].interleaved_panels.empty());
  EXPECT_TRUE(results[2].panels.empty());
  expect_identical_interleaved(results[2].interleaved_solution,
                               solve_scenario_interleaved(solve));

  // And a serial campaign reproduces the parallel one bit for bit.
  const auto serial_results =
      CampaignRunner(CampaignRunnerOptions{.threads = 1})
          .run({panels, regular, solve});
  for (std::size_t p = 0; p < reference.size(); ++p) {
    expect_identical_interleaved_series(
        serial_results[0].interleaved_panels[p],
        results[0].interleaved_panels[p]);
  }
  expect_identical_interleaved(serial_results[2].interleaved_solution,
                               results[2].interleaved_solution);
}

TEST(CampaignRunnerInterleaved, ValidationHappensBeforeAnyTaskRuns) {
  // λf ≠ 0 cannot reach the segmented closed forms inside a pool worker.
  ScenarioSpec failstop = hot_spec();
  failstop.sweep_parameter.reset();  // a solve: construction is deferred
  failstop.overrides.push_back({"lambda_failstop", 1e-5});
  EXPECT_THROW(CampaignRunner().run({failstop}), std::invalid_argument);

  ScenarioSpec failstop_panel = hot_spec();
  failstop_panel.overrides.push_back({"lambda_failstop", 1e-5});
  EXPECT_THROW(CampaignRunner().run({failstop_panel}),
               std::invalid_argument);

  // Cross-field validation runs for campaign members too.
  ScenarioSpec bad_axis = scenario_by_name("fig02");
  bad_axis.sweep_parameter = sweep::SweepParameter::kSegments;
  EXPECT_THROW(CampaignRunner().run({bad_axis}), std::invalid_argument);
}

TEST(InterleavedScenario, RegistryScenariosRunEndToEnd) {
  // The registered extension scenarios are runnable as shipped (small
  // grids keep this fast).
  ScenarioSpec vs_rho = scenario_by_name("interleaved_rho");
  vs_rho.points = 5;
  const SweepEngine engine(SweepEngineOptions{.threads = 1});
  const auto rho_panels = engine.run_interleaved_scenario(vs_rho);
  ASSERT_EQ(rho_panels.size(), 1u);
  EXPECT_EQ(rho_panels[0].points.size(), 5u);

  ScenarioSpec vs_m = scenario_by_name("interleaved_segments");
  const auto m_panels = engine.run_interleaved_scenario(vs_m);
  ASSERT_EQ(m_panels.size(), 1u);
  EXPECT_EQ(m_panels[0].points.size(), 8u);
  // In its hot regime, segmentation strictly beats the paper pattern.
  EXPECT_GT(m_panels[0].max_energy_saving(), 0.05);
}

}  // namespace
}  // namespace rexspeed::engine
