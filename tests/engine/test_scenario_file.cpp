#include "rexspeed/engine/scenario_file.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>

#include "test_util.hpp"

namespace rexspeed::engine {
namespace {

namespace fs = std::filesystem;

/// Each test gets a fresh scratch directory under the system temp dir.
class ScenarioFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("rexspeed_scenario_file_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string write_file(const std::string& filename,
                         const std::string& content) const {
    const fs::path path = dir_ / filename;
    std::ofstream(path) << content;
    return path.string();
  }

  fs::path dir_;
};

void expect_equivalent(const ScenarioSpec& a, const ScenarioSpec& b) {
  EXPECT_EQ(a.name, b.name);
  EXPECT_EQ(a.configuration, b.configuration);
  EXPECT_EQ(a.kind(), b.kind());
  EXPECT_EQ(a.sweep_parameter, b.sweep_parameter);
  EXPECT_EQ(a.all_panels, b.all_panels);
  EXPECT_EQ(a.segments, b.segments);
  EXPECT_EQ(a.max_segments, b.max_segments);
  EXPECT_EQ(a.verification_recall, b.verification_recall);
  EXPECT_EQ(a.rho, b.rho);          // same grid: ρ bound...
  EXPECT_EQ(a.points, b.points);    // ...and point count
  EXPECT_EQ(a.policy, b.policy);
  EXPECT_EQ(a.mode, b.mode);
  EXPECT_EQ(a.min_rho_fallback, b.min_rho_fallback);
  const core::ModelParams pa = a.resolve_params();
  const core::ModelParams pb = b.resolve_params();
  EXPECT_EQ(pa.lambda_silent, pb.lambda_silent);
  EXPECT_EQ(pa.lambda_failstop, pb.lambda_failstop);
  EXPECT_EQ(pa.checkpoint_s, pb.checkpoint_s);
  EXPECT_EQ(pa.recovery_s, pb.recovery_s);
  EXPECT_EQ(pa.verification_s, pb.verification_s);
  EXPECT_EQ(pa.kappa_mw, pb.kappa_mw);
  EXPECT_EQ(pa.idle_power_mw, pb.idle_power_mw);
  EXPECT_EQ(pa.io_power_mw, pb.io_power_mw);
  EXPECT_EQ(pa.speeds, pb.speeds);
}

TEST(ScenarioWrite, RoundTripsEveryRegistryEntryThroughParseScenario) {
  // The inverse property: write_scenario's output is a valid parse_scenario
  // input that reproduces the spec — kind, grid and resolved params.
  for (const ScenarioSpec& spec : scenario_registry()) {
    SCOPED_TRACE(spec.name);
    const ScenarioSpec parsed = parse_scenario(write_scenario(spec));
    expect_equivalent(parsed, spec);
  }
}

TEST(ScenarioWrite, RoundTripsOverridesAndNonDefaultSettings) {
  const ScenarioSpec spec = parse_scenario(
      "name=tuned config=CoastalSSD/Crusoe rho=2.7182818284590451 points=33 "
      "param=lambda policy=single-speed mode=exact-eval fallback=0 "
      "V=123.456 lambda=3.1e-05 Pio=77");
  expect_equivalent(parse_scenario(write_scenario(spec)), spec);
}

TEST(ScenarioWrite, RoundTripsInterleavedKeys) {
  // The new scenario dimension survives the full cycle in both flavors:
  // a fixed count and a search cap (they are mutually exclusive, so two
  // specs). The default (no interleaved mode) must emit no segments line
  // at all, keeping pre-existing files byte-stable.
  const ScenarioSpec fixed = parse_scenario(
      "name=pinned config=Hera/XScale rho=4 segments=3 param=none");
  expect_equivalent(parse_scenario(write_scenario(fixed)), fixed);
  EXPECT_NE(write_scenario(fixed).find("segments=3\n"), std::string::npos);

  const ScenarioSpec searched = parse_scenario(
      "name=searched config=Hera/XScale rho=5 max_segments=8 "
      "param=segments lambda=0.001 V=1");
  expect_equivalent(parse_scenario(write_scenario(searched)), searched);
  EXPECT_NE(write_scenario(searched).find("max_segments=8\n"),
            std::string::npos);

  EXPECT_EQ(write_scenario(scenario_by_name("fig02")).find("segments"),
            std::string::npos);
}

TEST(ScenarioWrite, RoundTripsVerificationRecall) {
  // The simulate-only dimension survives the full cycle; the default
  // (guaranteed verifications) emits no line at all, keeping pre-existing
  // files byte-stable.
  const ScenarioSpec spec = parse_scenario(
      "name=sdc config=Hera/XScale verification_recall=0.85 param=none");
  expect_equivalent(parse_scenario(write_scenario(spec)), spec);
  // The value is written in round-tripping %.17g form; assert the key
  // line exists (expect_equivalent above pins the value itself).
  EXPECT_NE(write_scenario(spec).find("verification_recall="),
            std::string::npos);
  EXPECT_EQ(write_scenario(scenario_by_name("fig02"))
                .find("verification_recall"),
            std::string::npos);
}

TEST_F(ScenarioFileTest, VerificationRecallRoundTripsThroughFiles) {
  const std::string path = write_file("sdc.scenario",
                                      "config=Hera/XScale\n"
                                      "param=none\n"
                                      "verification_recall=0.7\n");
  const ScenarioSpec spec = load_scenario_file(path);
  EXPECT_DOUBLE_EQ(spec.verification_recall, 0.7);

  const std::string saved = (dir_ / "resaved_sdc.scenario").string();
  save_scenario_file(spec, saved);
  expect_equivalent(load_scenario_file(saved), spec);

  // Out-of-range values are rejected with the exact file:line.
  const std::string bad = write_file(
      "bad_recall.scenario",
      "config=Hera/XScale\nverification_recall=1.5\n");
  try {
    (void)load_scenario_file(bad);
    FAIL() << "verification_recall=1.5 must throw";
  } catch (const std::invalid_argument& error) {
    const std::string message = error.what();
    EXPECT_NE(message.find(bad + ":2"), std::string::npos) << message;
    EXPECT_NE(message.find("verification_recall"), std::string::npos)
        << message;
  }
}

TEST_F(ScenarioFileTest, LoadsKeysCommentsAndMultiWordDescriptions) {
  const std::string path = write_file("tuned.scenario",
                                      "# a file-based workload\n"
                                      "\n"
                                      "name=tuned\n"
                                      "description=six panels, slow V\n"
                                      "config=Coastal/Crusoe\n"
                                      "param=all   # trailing comment\n"
                                      "points=21\n"
                                      "V=500\n");
  const ScenarioSpec spec = load_scenario_file(path);
  EXPECT_EQ(spec.name, "tuned");
  EXPECT_EQ(spec.description, "six panels, slow V");
  EXPECT_EQ(spec.configuration, "Coastal/Crusoe");
  EXPECT_EQ(spec.kind(), ScenarioKind::kAllSweeps);
  EXPECT_EQ(spec.points, 21u);
  EXPECT_EQ(spec.resolve_params().verification_s, 500.0);
}

TEST_F(ScenarioFileTest, FileStemNamesTheScenarioUnlessOverridden) {
  const std::string anonymous =
      write_file("night_shift.scenario", "config=Hera/XScale\nparam=C\n");
  EXPECT_EQ(load_scenario_file(anonymous).name, "night_shift");

  const std::string named = write_file(
      "other.scenario", "name=explicit\nconfig=Hera/XScale\nparam=C\n");
  EXPECT_EQ(load_scenario_file(named).name, "explicit");
}

TEST_F(ScenarioFileTest, SaveScenarioFileRoundTripsThroughTheLoader) {
  ScenarioSpec spec = scenario_by_name("fig12");
  spec.points = 17;
  spec.overrides.push_back({"Pidle", 42.5});
  const std::string path = (dir_ / "fig12.scenario").string();
  save_scenario_file(spec, path);
  const ScenarioSpec loaded = load_scenario_file(path);
  expect_equivalent(loaded, spec);
  // The line-based format keeps the multi-word description too.
  EXPECT_EQ(loaded.description, spec.description);
}

TEST_F(ScenarioFileTest, HashValuesNeverCorruptTheRoundTrip) {
  // The format has no escaping and '#' starts a comment on load, so
  // identifiers containing it are rejected outright and descriptions
  // containing it are omitted — never silently truncated.
  ScenarioSpec hashed_name = scenario_by_name("fig02");
  hashed_name.name = "exp#1";
  EXPECT_THROW((void)write_scenario(hashed_name), std::invalid_argument);

  ScenarioSpec split_name = scenario_by_name("fig02");
  split_name.name = "two\nlines";  // a reload would parse two entries
  EXPECT_THROW((void)write_scenario(split_name), std::invalid_argument);

  ScenarioSpec newline_description = scenario_by_name("fig02");
  newline_description.description = "line1\nline2";
  const std::string nl_path = (dir_ / "newline.scenario").string();
  save_scenario_file(newline_description, nl_path);
  // Dropped, not written as an unparseable second line.
  EXPECT_TRUE(load_scenario_file(nl_path).description.empty());

  ScenarioSpec hashed_description = scenario_by_name("fig02");
  hashed_description.description = "run #2 nightly";
  const std::string path = (dir_ / "hashed.scenario").string();
  save_scenario_file(hashed_description, path);
  const ScenarioSpec loaded = load_scenario_file(path);
  EXPECT_EQ(loaded.name, "fig02");
  EXPECT_TRUE(loaded.description.empty());  // dropped, not "run"
}

TEST_F(ScenarioFileTest, MalformedFilesCiteFileAndLine) {
  const auto message_of = [](const std::string& path) {
    try {
      (void)load_scenario_file(path);
    } catch (const std::invalid_argument& error) {
      return std::string(error.what());
    }
    return std::string();
  };

  const std::string unknown =
      write_file("unknown.scenario", "config=Hera/XScale\nwarp_factor=9\n");
  std::string message = message_of(unknown);
  EXPECT_NE(message.find(unknown + ":2"), std::string::npos) << message;
  EXPECT_NE(message.find("warp_factor"), std::string::npos) << message;

  const std::string bad_value =
      write_file("bad_value.scenario",
                 "# header\nconfig=Hera/XScale\n\nrho=fast\n");
  message = message_of(bad_value);
  EXPECT_NE(message.find(bad_value + ":4"), std::string::npos) << message;

  const std::string no_equals =
      write_file("no_equals.scenario", "config=Hera/XScale\njust words\n");
  message = message_of(no_equals);
  EXPECT_NE(message.find(no_equals + ":2"), std::string::npos) << message;

  const std::string empty = write_file("empty.scenario", "# only comments\n");
  message = message_of(empty);
  EXPECT_NE(message.find(empty), std::string::npos) << message;
  EXPECT_NE(message.find("empty"), std::string::npos) << message;

  EXPECT_THROW((void)load_scenario_file((dir_ / "missing.scenario").string()),
               std::invalid_argument);
}

TEST_F(ScenarioFileTest, NonFiniteNumbersAreRejectedWithFileAndLine) {
  const auto message_of = [](const std::string& path) {
    try {
      (void)load_scenario_file(path);
    } catch (const std::invalid_argument& error) {
      return std::string(error.what());
    }
    return std::string();
  };

  // std::stod overflows 1e999 to +inf and throws std::out_of_range —
  // which used to escape as a bare "stod" message with no file context.
  const std::string overflow = write_file(
      "overflow.scenario", "config=Hera/XScale\nlambda=1e999\n");
  std::string message = message_of(overflow);
  EXPECT_NE(message.find(overflow + ":2"), std::string::npos) << message;
  EXPECT_NE(message.find("1e999"), std::string::npos) << message;

  // "inf" and "nan" PARSE successfully under std::stod; a non-finite
  // model parameter (or grid size) must be rejected, not propagated into
  // the solver.
  const std::string inf_value =
      write_file("inf.scenario", "config=Hera/XScale\nrho=inf\n");
  message = message_of(inf_value);
  EXPECT_NE(message.find(inf_value + ":2"), std::string::npos) << message;
  EXPECT_NE(message.find("inf"), std::string::npos) << message;

  const std::string nan_value =
      write_file("nan.scenario", "config=Hera/XScale\nV=nan\n");
  message = message_of(nan_value);
  EXPECT_NE(message.find(nan_value + ":2"), std::string::npos) << message;

  const std::string neg_inf =
      write_file("neg_inf.scenario", "config=Hera/XScale\nlambda=-inf\n");
  message = message_of(neg_inf);
  EXPECT_NE(message.find(neg_inf + ":2"), std::string::npos) << message;

  // points=inf previously survived stod and hit an undefined
  // double→size_t cast downstream.
  const std::string inf_points =
      write_file("inf_points.scenario", "config=Hera/XScale\npoints=inf\n");
  message = message_of(inf_points);
  EXPECT_NE(message.find(inf_points + ":2"), std::string::npos) << message;

  // Trailing junk after a valid prefix is malformed, not truncated.
  const std::string trailing =
      write_file("trailing.scenario", "config=Hera/XScale\nrho=3.0x\n");
  message = message_of(trailing);
  EXPECT_NE(message.find(trailing + ":2"), std::string::npos) << message;
}

TEST_F(ScenarioFileTest, CacheOptOutRoundTripsThroughFiles) {
  const std::string path = write_file(
      "uncached.scenario", "config=Hera/XScale\nparam=rho\ncache=0\n");
  const ScenarioSpec spec = load_scenario_file(path);
  EXPECT_FALSE(spec.cache);

  // write→load is the identity; the default (cache=1) emits no line so
  // pre-existing files stay byte-identical.
  const std::string saved = (dir_ / "resaved.scenario").string();
  save_scenario_file(spec, saved);
  EXPECT_FALSE(load_scenario_file(saved).cache);
  EXPECT_NE(write_scenario(spec).find("cache=0"), std::string::npos);

  ScenarioSpec cached = spec;
  cached.cache = true;
  EXPECT_EQ(write_scenario(cached).find("cache="), std::string::npos);

  const std::string bad = write_file(
      "bad_cache.scenario", "config=Hera/XScale\ncache=sometimes\n");
  EXPECT_THROW((void)load_scenario_file(bad), std::invalid_argument);
}

TEST_F(ScenarioFileTest, InterleavedKeysRoundTripThroughFilesAndAreValidated) {
  // Happy path: both interleaved panel axes load from a file and survive
  // save_scenario_file → load_scenario_file.
  const std::string path = write_file("night_crossval.scenario",
                                      "config=Hera/XScale\n"
                                      "rho=5\n"
                                      "max_segments=8   # search cap\n"
                                      "param=segments\n"
                                      "lambda=1e-3\n"
                                      "V=1\n");
  const ScenarioSpec spec = load_scenario_file(path);
  EXPECT_EQ(spec.name, "night_crossval");
  EXPECT_TRUE(spec.interleaved());
  EXPECT_EQ(spec.max_segments, 8u);
  EXPECT_EQ(spec.sweep_parameter, sweep::SweepParameter::kSegments);

  const std::string saved = (dir_ / "resaved.scenario").string();
  save_scenario_file(spec, saved);
  expect_equivalent(load_scenario_file(saved), spec);

  // Out-of-range: segments=0 is rejected with the exact file:line.
  const std::string zero = write_file(
      "zero.scenario", "config=Hera/XScale\nsegments=0\n");
  try {
    (void)load_scenario_file(zero);
    FAIL() << "segments=0 must throw";
  } catch (const std::invalid_argument& error) {
    const std::string message = error.what();
    EXPECT_NE(message.find(zero + ":2"), std::string::npos) << message;
    EXPECT_NE(message.find("segments"), std::string::npos) << message;
  }

  // Cross-field validation failures cite the file too.
  const std::string axis_only = write_file(
      "axis_only.scenario", "config=Hera/XScale\nparam=segments\n");
  try {
    (void)load_scenario_file(axis_only);
    FAIL() << "param=segments without interleaved mode must throw";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find(axis_only),
              std::string::npos);
  }
}

TEST_F(ScenarioFileTest, DuplicateKeysAreRejectedWithBothLines) {
  // A repeated key would silently keep only the later value (and apply a
  // model override twice); the loader rejects it citing both lines.
  const std::string dup = write_file("dup.scenario",
                                     "config=Hera/XScale\n"
                                     "max_segments=4\n"
                                     "# comment line\n"
                                     "max_segments=8\n");
  try {
    (void)load_scenario_file(dup);
    FAIL() << "duplicate keys must throw";
  } catch (const std::invalid_argument& error) {
    const std::string message = error.what();
    EXPECT_NE(message.find(dup + ":4"), std::string::npos) << message;
    EXPECT_NE(message.find("duplicate key 'max_segments'"),
              std::string::npos)
        << message;
    EXPECT_NE(message.find("line 2"), std::string::npos) << message;
  }

  // Override keys too — V=500 twice is a lost value, not a merge.
  const std::string dup_override = write_file(
      "dup_override.scenario", "config=Hera/XScale\nV=500\nV=600\n");
  EXPECT_THROW((void)load_scenario_file(dup_override),
               std::invalid_argument);

  // parse_scenario keeps its lenient last-wins semantics for repeated
  // override keys, but the spec then carries ONE override per key — so
  // the program's own save output is always loadable again.
  const ScenarioSpec spec =
      parse_scenario("name=dup config=Hera/XScale V=500 V=600");
  ASSERT_EQ(spec.overrides.size(), 1u);
  EXPECT_EQ(spec.overrides[0].value, 600.0);
  const std::string saved = (dir_ / "dedup.scenario").string();
  save_scenario_file(spec, saved);
  expect_equivalent(load_scenario_file(saved), spec);
}

TEST_F(ScenarioFileTest, DirectoryLoadsInSortedOrderIgnoringOtherFiles) {
  write_file("zeta.scenario", "config=Hera/XScale\nparam=C\n");
  write_file("alpha.scenario", "config=Atlas/Crusoe\nparam=V\n");
  write_file("mid.scenario", "config=Coastal/XScale\nparam=rho\n");
  write_file("notes.txt", "not a scenario\n");
  write_file("README", "also not a scenario\n");

  const auto specs = load_scenario_dir(dir_.string());
  ASSERT_EQ(specs.size(), 3u);
  EXPECT_EQ(specs[0].name, "alpha");
  EXPECT_EQ(specs[1].name, "mid");
  EXPECT_EQ(specs[2].name, "zeta");
}

TEST_F(ScenarioFileTest, DirectoryErrorsAreExplicit) {
  EXPECT_THROW((void)load_scenario_dir((dir_ / "nope").string()),
               std::invalid_argument);

  write_file("a.scenario", "name=twin\nconfig=Hera/XScale\n");
  write_file("b.scenario", "name=twin\nconfig=Atlas/Crusoe\n");
  try {
    (void)load_scenario_dir(dir_.string());
    FAIL() << "duplicate names must throw";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("twin"), std::string::npos);
  }

  // One malformed file poisons the whole directory load, with its line.
  write_file("c.scenario", "rho=\n");
  EXPECT_THROW((void)load_scenario_dir(dir_.string()),
               std::invalid_argument);
}

TEST_F(ScenarioFileTest, MergeWithRegistryReplacesByNameAndAppends) {
  write_file("fig02.scenario",
             "config=Hera/XScale\nparam=C\npoints=5\n");  // overrides fig02
  write_file("extra.scenario", "config=Coastal/Crusoe\nparam=lambda\n");
  const auto merged = merge_with_registry(load_scenario_dir(dir_.string()));

  ASSERT_EQ(merged.size(), scenario_registry().size() + 1);
  EXPECT_EQ(merged.front().name, "fig02");
  EXPECT_EQ(merged.front().configuration, "Hera/XScale");  // replaced
  EXPECT_EQ(merged.front().points, 5u);
  EXPECT_EQ(merged.back().name, "extra");  // appended

  // No extras: the registry comes back untouched.
  EXPECT_EQ(merge_with_registry({}).size(), scenario_registry().size());
}

}  // namespace
}  // namespace rexspeed::engine
