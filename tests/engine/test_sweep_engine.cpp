#include "rexspeed/engine/sweep_engine.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "rexspeed/engine/solver_context.hpp"
#include "rexspeed/platform/configuration.hpp"
#include "test_util.hpp"

namespace rexspeed::engine {
namespace {

const platform::Configuration& atlas_crusoe() {
  return platform::configuration_by_name("Atlas/Crusoe");
}

using test::expect_identical_pair;
using test::expect_identical_series;

TEST(SweepEngine, RunAllSweepsParallelIsBitIdenticalToSerial) {
  // The satellite requirement: a multi-thread pool must not change a
  // single bit of any panel relative to the serial run.
  sweep::SweepOptions serial;
  serial.points = 13;
  const auto reference = sweep::run_all_sweeps(atlas_crusoe(), serial);

  sweep::ThreadPool pool(4);
  sweep::SweepOptions pooled = serial;
  pooled.pool = &pool;
  const auto parallel = sweep::run_all_sweeps(atlas_crusoe(), pooled);

  ASSERT_EQ(reference.size(), parallel.size());
  for (std::size_t p = 0; p < reference.size(); ++p) {
    SCOPED_TRACE(sweep::to_string(reference[p].parameter));
    expect_identical_series(reference[p], parallel[p]);
  }
}

TEST(SweepEngine, EngineRunMatchesDirectSweep) {
  ScenarioSpec spec = scenario_by_name("fig04");
  spec.points = 9;
  const SweepEngine engine;  // parallel by default
  const auto via_engine = engine.run(spec);

  const auto direct = sweep::run_figure_sweep(
      platform::configuration_by_name(spec.configuration),
      *spec.sweep_parameter, spec.sweep_options(nullptr));
  expect_identical_series(via_engine, direct);
}

TEST(SweepEngine, RunScenarioDispatchesOnAllThreeKinds) {
  const SweepEngine engine;
  ScenarioSpec panel = scenario_by_name("fig05");
  panel.points = 5;
  ASSERT_EQ(panel.kind(), ScenarioKind::kSweep);
  EXPECT_EQ(engine.run_scenario(panel).size(), 1u);

  ScenarioSpec composite = scenario_by_name("fig08");
  composite.points = 3;
  ASSERT_EQ(composite.kind(), ScenarioKind::kAllSweeps);
  const auto panels = engine.run_scenario(composite);
  ASSERT_EQ(panels.size(), 6u);
  EXPECT_EQ(panels.front().parameter, sweep::SweepParameter::kCheckpointTime);
  EXPECT_EQ(panels.back().parameter, sweep::SweepParameter::kIoPower);

  // A solve has no panels: the historical fallthrough silently ran all six
  // sweeps; it must be rejected instead (solve_scenario / CampaignRunner
  // give the panel-free result).
  const ScenarioSpec solve = parse_scenario("config=Hera/XScale rho=3");
  ASSERT_EQ(solve.kind(), ScenarioKind::kSolve);
  EXPECT_THROW(engine.run_scenario(solve), std::invalid_argument);
}

TEST(SweepEngine, ScenarioOverridesReachTheSweptModel) {
  // fig03 sweeps V on Atlas/Crusoe; a lambda override must flow into every
  // grid point (run used to rebuild params from the configuration alone).
  ScenarioSpec spec = scenario_by_name("fig03");
  spec.points = 5;
  const SweepEngine engine(SweepEngineOptions{.threads = 1});
  const auto base = engine.run(spec);

  spec.overrides.push_back({"lambda", 5e-4});
  const auto overridden = engine.run(spec);
  ASSERT_EQ(base.points.size(), overridden.points.size());
  EXPECT_NE(base.points[2].two_speed.w_opt,
            overridden.points[2].two_speed.w_opt);

  const auto direct = sweep::run_figure_sweep(
      spec.resolve_params(), spec.configuration, *spec.sweep_parameter,
      sweep::default_grid(*spec.sweep_parameter, spec.points),
      spec.sweep_options(nullptr));
  expect_identical_series(overridden, direct);
}

TEST(SweepEngine, RunRejectsScenariosWithoutASweepParameter) {
  const SweepEngine engine;
  EXPECT_THROW(engine.run(ScenarioSpec{}), std::invalid_argument);
}

TEST(SweepEngine, SerialEngineHandsOutNoPool) {
  const SweepEngine serial(SweepEngineOptions{.threads = 1});
  EXPECT_EQ(serial.pool(), nullptr);
  EXPECT_EQ(serial.thread_count(), 1u);

  const SweepEngine parallel(SweepEngineOptions{.threads = 3});
  EXPECT_NE(parallel.pool(), nullptr);
  EXPECT_EQ(parallel.thread_count(), 3u);

  // Serial and parallel engines agree bit for bit.
  ScenarioSpec spec = scenario_by_name("fig02");
  spec.points = 7;
  expect_identical_series(serial.run(spec), parallel.run(spec));
}

TEST(SweepEngine, SpeedPairTablesMatchPerBoundCalls) {
  const SweepEngine engine;
  const ScenarioSpec spec = parse_scenario("config=Hera/XScale");
  const auto bounds = sweep::section42_bounds();
  const auto tables = engine.speed_pair_tables(spec, bounds);
  ASSERT_EQ(tables.size(), bounds.size());

  const SolverContext context = make_context(spec);
  for (std::size_t b = 0; b < bounds.size(); ++b) {
    const auto expected =
        sweep::speed_pair_table(context.backend(), bounds[b]);
    ASSERT_EQ(tables[b].size(), expected.size());
    for (std::size_t r = 0; r < expected.size(); ++r) {
      EXPECT_EQ(tables[b][r].sigma1, expected[r].sigma1);
      EXPECT_EQ(tables[b][r].feasible, expected[r].feasible);
      EXPECT_EQ(tables[b][r].best_sigma2, expected[r].best_sigma2);
      EXPECT_EQ(tables[b][r].w_opt, expected[r].w_opt);
      EXPECT_EQ(tables[b][r].energy_overhead, expected[r].energy_overhead);
      EXPECT_EQ(tables[b][r].is_global_best, expected[r].is_global_best);
    }
  }
}

TEST(SweepEngine, RhoSweepSharedContextMatchesPerPointSolves) {
  // The ρ fast path reuses one SolverContext across the grid; every point
  // must still equal an independent solve at that bound.
  const SweepEngine engine;
  ScenarioSpec spec = scenario_by_name("fig05");
  spec.points = 11;
  const auto series = engine.run(spec);
  const SolverContext context = make_context(spec);
  for (const auto& point : series.points) {
    const core::Solution expected =
        context.solve(point.x, core::SpeedPolicy::kTwoSpeed,
                      /*min_rho_fallback=*/true);
    expect_identical_pair(point.two_speed, expected.pair);
    EXPECT_EQ(point.two_speed_fallback, expected.used_fallback);
  }
}

}  // namespace
}  // namespace rexspeed::engine
