// The thin backend-owning SolverContext: bit-identity of the cached
// closed-form backend against a legacy per-call reference implementation,
// fallback semantics through the unified Solution, and the prepared-
// backend ownership contract.

#include "rexspeed/engine/solver_context.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

#include "rexspeed/core/exact_expectations.hpp"
#include "rexspeed/core/feasibility.hpp"
#include "rexspeed/core/first_order.hpp"
#include "rexspeed/engine/backend_registry.hpp"
#include "rexspeed/engine/scenario.hpp"
#include "rexspeed/platform/configuration.hpp"
#include "test_util.hpp"

namespace rexspeed::engine {
namespace {

using core::EvalMode;
using core::ModelParams;
using core::PairSolution;
using core::SpeedPolicy;

// ---------------------------------------------------------------------
// Reference implementation: the pre-context per-call solver, which
// re-derived both first-order expansions on every solve_pair call. The
// cached backend must reproduce it bit for bit.
// ---------------------------------------------------------------------

PairSolution legacy_solve_pair(const ModelParams& params, double rho,
                               double sigma1, double sigma2,
                               EvalMode mode) {
  PairSolution sol;
  sol.sigma1 = sigma1;
  sol.sigma2 = sigma2;

  const core::OverheadExpansion time_exp =
      core::time_expansion(params, sigma1, sigma2);
  const core::OverheadExpansion energy_exp =
      core::energy_expansion(params, sigma1, sigma2);
  sol.first_order_valid = time_exp.y > 0.0 && energy_exp.y > 0.0;
  sol.rho_min = core::rho_min(time_exp);
  if (!sol.first_order_valid) {
    sol.feasible = false;
    return sol;
  }

  const core::FeasibleInterval interval =
      core::feasible_interval(time_exp, rho);
  if (!interval.feasible()) {
    sol.feasible = false;
    return sol;
  }
  sol.w_min = interval.w_min;
  sol.w_max = interval.w_max;
  sol.w_energy = energy_exp.has_interior_minimum() ? energy_exp.argmin()
                                                   : interval.w_max;
  if (!std::isfinite(sol.w_energy)) {
    sol.w_energy =
        std::isfinite(interval.w_max) ? interval.w_max : 1e12;
  }
  sol.w_opt = std::min(std::max(interval.w_min, sol.w_energy),
                       std::isfinite(interval.w_max)
                           ? interval.w_max
                           : std::numeric_limits<double>::max());
  sol.feasible = true;

  if (mode == EvalMode::kFirstOrder) {
    sol.energy_overhead = energy_exp.evaluate(sol.w_opt);
    sol.time_overhead = time_exp.evaluate(sol.w_opt);
  } else {
    sol.energy_overhead =
        core::energy_overhead(params, sol.w_opt, sigma1, sigma2);
    sol.time_overhead =
        core::time_overhead(params, sol.w_opt, sigma1, sigma2);
  }
  return sol;
}

PairSolution legacy_best(const ModelParams& params, double rho,
                         SpeedPolicy policy, EvalMode mode) {
  PairSolution best;
  double best_energy = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < params.speeds.size(); ++i) {
    for (std::size_t j = 0; j < params.speeds.size(); ++j) {
      if (policy == SpeedPolicy::kSingleSpeed && i != j) continue;
      const PairSolution pair = legacy_solve_pair(
          params, rho, params.speeds[i], params.speeds[j], mode);
      if (pair.feasible && pair.energy_overhead < best_energy) {
        best_energy = pair.energy_overhead;
        best = pair;
      }
    }
  }
  return best;
}

void expect_same_solution(const PairSolution& cached,
                          const PairSolution& legacy) {
  EXPECT_EQ(cached.feasible, legacy.feasible);
  if (!cached.feasible || !legacy.feasible) return;
  // Bit-identical: the backend caches the very same expansions the
  // per-call path derives, so no tolerance is needed.
  EXPECT_EQ(cached.sigma1, legacy.sigma1);
  EXPECT_EQ(cached.sigma2, legacy.sigma2);
  EXPECT_EQ(cached.w_opt, legacy.w_opt);
  EXPECT_EQ(cached.w_min, legacy.w_min);
  EXPECT_EQ(cached.w_max, legacy.w_max);
  EXPECT_EQ(cached.energy_overhead, legacy.energy_overhead);
  EXPECT_EQ(cached.time_overhead, legacy.time_overhead);
  EXPECT_EQ(cached.rho_min, legacy.rho_min);
}

TEST(SolverContext, MatchesLegacyPerCallSolveOnAllConfigurations) {
  const double bounds[] = {1.2, 1.4, 1.775, 2.0, 3.0, 8.0};
  const EvalMode modes[] = {EvalMode::kFirstOrder,
                            EvalMode::kExactEvaluation};
  for (const auto& config : platform::all_configurations()) {
    const ModelParams params = ModelParams::from_configuration(config);
    for (const EvalMode mode : modes) {
      const SolverContext context(params, mode);
      for (const double rho : bounds) {
        for (const SpeedPolicy policy :
             {SpeedPolicy::kTwoSpeed, SpeedPolicy::kSingleSpeed}) {
          SCOPED_TRACE(config.name() + " rho=" + std::to_string(rho));
          const core::Solution cached = context.solve(rho, policy);
          const PairSolution legacy = legacy_best(params, rho, policy, mode);
          EXPECT_EQ(cached.feasible(), legacy.feasible);
          expect_same_solution(cached.pair, legacy);
        }
      }
    }
  }
}

TEST(SolverContext, PairsMatchLegacyPairByPair) {
  const ModelParams params = test::params_for("Atlas/Crusoe");
  const SolverContext context(params);
  const core::BiCritSolution solution = context.solve_report(3.0);
  ASSERT_EQ(solution.pairs.size(),
            params.speeds.size() * params.speeds.size());
  for (const auto& pair : solution.pairs) {
    const auto legacy = legacy_solve_pair(params, 3.0, pair.sigma1,
                                          pair.sigma2, EvalMode::kFirstOrder);
    expect_same_solution(pair, legacy);
  }
}

TEST(SolverContext, MinRhoMatchesBackendSolver) {
  const SolverContext context(test::params_for("Hera/XScale"));
  const core::BiCritSolver reference(test::params_for("Hera/XScale"));
  for (const SpeedPolicy policy :
       {SpeedPolicy::kTwoSpeed, SpeedPolicy::kSingleSpeed}) {
    const core::Solution cached = context.min_rho(policy);
    const PairSolution fresh = reference.min_rho_solution(policy);
    EXPECT_EQ(cached.feasible(), fresh.feasible);
    EXPECT_EQ(cached.pair.sigma1, fresh.sigma1);
    EXPECT_EQ(cached.pair.sigma2, fresh.sigma2);
    EXPECT_EQ(cached.pair.rho_min, fresh.rho_min);
    EXPECT_EQ(cached.pair.w_opt, fresh.w_opt);
  }
}

TEST(SolverContext, SolveTakesFallbackBeyondFeasibilityHorizon) {
  const SolverContext context(test::params_for("Atlas/Crusoe"));
  const core::Solution sol =
      context.solve(1.0, SpeedPolicy::kTwoSpeed, /*min_rho_fallback=*/true);
  EXPECT_TRUE(sol.feasible());
  EXPECT_TRUE(sol.used_fallback);
  EXPECT_GT(sol.time_overhead(), 1.0);

  const core::Solution strict =
      context.solve(1.0, SpeedPolicy::kTwoSpeed, /*min_rho_fallback=*/false);
  EXPECT_FALSE(strict.feasible());
  EXPECT_FALSE(strict.used_fallback);

  const core::Solution feasible =
      context.solve(3.0, SpeedPolicy::kTwoSpeed, /*min_rho_fallback=*/true);
  EXPECT_TRUE(feasible.feasible());
  EXPECT_FALSE(feasible.used_fallback);
}

TEST(SolverContext, SolvePairByIndexChecksRange) {
  const SolverContext context(test::toy_params());
  EXPECT_NO_THROW(context.solve_pair(3.0, 0, 2));
  EXPECT_THROW(context.solve_pair(3.0, 0, 3), std::out_of_range);
  EXPECT_THROW(context.solve_pair(3.0, 7, 0), std::out_of_range);
}

TEST(SolverContext, SharedAcrossRhoGridMatchesPerPointContexts) {
  // The engine's ρ-sweep fast path: one context, many bounds.
  const ModelParams params = test::params_for("Coastal/XScale");
  const SolverContext shared(params);
  for (double rho = 1.1; rho < 4.0; rho += 0.3) {
    const SolverContext fresh(params);
    expect_same_solution(shared.solve(rho).pair, fresh.solve(rho).pair);
  }
}

TEST(SolverContext, RejectsNullBackend) {
  EXPECT_THROW(SolverContext(std::unique_ptr<core::SolverBackend>{}),
               std::invalid_argument);
}

TEST(SolverContext, MakeContextPreparesTheScenarioBackend) {
  // make_context is THE context-from-scenario rule: the backend arrives
  // prepared, whatever it defers (the exact cache here).
  const ScenarioSpec spec = parse_scenario(
      "name=ctx config=Hera/XScale mode=exact-opt param=none rho=2");
  const SolverContext context = make_context(spec);
  EXPECT_FALSE(context.backend().needs_prepare());
  EXPECT_TRUE(context.solve(2.0, spec.policy).feasible());
}

}  // namespace
}  // namespace rexspeed::engine
