#include "rexspeed/engine/solver_context.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

#include "rexspeed/core/exact_expectations.hpp"
#include "rexspeed/core/feasibility.hpp"
#include "rexspeed/core/first_order.hpp"
#include "rexspeed/platform/configuration.hpp"
#include "test_util.hpp"

namespace rexspeed::engine {
namespace {

using core::EvalMode;
using core::ModelParams;
using core::PairSolution;
using core::SpeedPolicy;

// ---------------------------------------------------------------------
// Reference implementation: the pre-context per-call solver, which
// re-derived both first-order expansions on every solve_pair call. The
// cached context must reproduce it bit for bit.
// ---------------------------------------------------------------------

PairSolution legacy_solve_pair(const ModelParams& params, double rho,
                               double sigma1, double sigma2,
                               EvalMode mode) {
  PairSolution sol;
  sol.sigma1 = sigma1;
  sol.sigma2 = sigma2;

  const core::OverheadExpansion time_exp =
      core::time_expansion(params, sigma1, sigma2);
  const core::OverheadExpansion energy_exp =
      core::energy_expansion(params, sigma1, sigma2);
  sol.first_order_valid = time_exp.y > 0.0 && energy_exp.y > 0.0;
  sol.rho_min = core::rho_min(time_exp);
  if (!sol.first_order_valid) {
    sol.feasible = false;
    return sol;
  }

  const core::FeasibleInterval interval =
      core::feasible_interval(time_exp, rho);
  if (!interval.feasible()) {
    sol.feasible = false;
    return sol;
  }
  sol.w_min = interval.w_min;
  sol.w_max = interval.w_max;
  sol.w_energy = energy_exp.has_interior_minimum() ? energy_exp.argmin()
                                                   : interval.w_max;
  if (!std::isfinite(sol.w_energy)) {
    sol.w_energy =
        std::isfinite(interval.w_max) ? interval.w_max : 1e12;
  }
  sol.w_opt = std::min(std::max(interval.w_min, sol.w_energy),
                       std::isfinite(interval.w_max)
                           ? interval.w_max
                           : std::numeric_limits<double>::max());
  sol.feasible = true;

  if (mode == EvalMode::kFirstOrder) {
    sol.energy_overhead = energy_exp.evaluate(sol.w_opt);
    sol.time_overhead = time_exp.evaluate(sol.w_opt);
  } else {
    sol.energy_overhead =
        core::energy_overhead(params, sol.w_opt, sigma1, sigma2);
    sol.time_overhead =
        core::time_overhead(params, sol.w_opt, sigma1, sigma2);
  }
  return sol;
}

PairSolution legacy_best(const ModelParams& params, double rho,
                         SpeedPolicy policy, EvalMode mode) {
  PairSolution best;
  double best_energy = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < params.speeds.size(); ++i) {
    for (std::size_t j = 0; j < params.speeds.size(); ++j) {
      if (policy == SpeedPolicy::kSingleSpeed && i != j) continue;
      const PairSolution pair = legacy_solve_pair(
          params, rho, params.speeds[i], params.speeds[j], mode);
      if (pair.feasible && pair.energy_overhead < best_energy) {
        best_energy = pair.energy_overhead;
        best = pair;
      }
    }
  }
  return best;
}

void expect_same_solution(const PairSolution& cached,
                          const PairSolution& legacy) {
  EXPECT_EQ(cached.feasible, legacy.feasible);
  if (!cached.feasible || !legacy.feasible) return;
  // Bit-identical: the context caches the very same expansions the
  // per-call path derives, so no tolerance is needed.
  EXPECT_EQ(cached.sigma1, legacy.sigma1);
  EXPECT_EQ(cached.sigma2, legacy.sigma2);
  EXPECT_EQ(cached.w_opt, legacy.w_opt);
  EXPECT_EQ(cached.w_min, legacy.w_min);
  EXPECT_EQ(cached.w_max, legacy.w_max);
  EXPECT_EQ(cached.energy_overhead, legacy.energy_overhead);
  EXPECT_EQ(cached.time_overhead, legacy.time_overhead);
  EXPECT_EQ(cached.rho_min, legacy.rho_min);
}

TEST(SolverContext, MatchesLegacyPerCallSolveOnAllConfigurations) {
  const double bounds[] = {1.2, 1.4, 1.775, 2.0, 3.0, 8.0};
  const EvalMode modes[] = {EvalMode::kFirstOrder,
                            EvalMode::kExactEvaluation};
  for (const auto& config : platform::all_configurations()) {
    const ModelParams params = ModelParams::from_configuration(config);
    const SolverContext context(params);
    for (const double rho : bounds) {
      for (const EvalMode mode : modes) {
        for (const SpeedPolicy policy :
             {SpeedPolicy::kTwoSpeed, SpeedPolicy::kSingleSpeed}) {
          SCOPED_TRACE(config.name() + " rho=" + std::to_string(rho));
          const auto cached = context.solve(rho, policy, mode);
          const auto legacy = legacy_best(params, rho, policy, mode);
          EXPECT_EQ(cached.feasible, legacy.feasible);
          expect_same_solution(cached.best, legacy);
        }
      }
    }
  }
}

TEST(SolverContext, PairsMatchLegacyPairByPair) {
  const ModelParams params = test::params_for("Atlas/Crusoe");
  const SolverContext context(params);
  const auto solution = context.solve(3.0);
  ASSERT_EQ(solution.pairs.size(),
            params.speeds.size() * params.speeds.size());
  for (const auto& pair : solution.pairs) {
    const auto legacy = legacy_solve_pair(params, 3.0, pair.sigma1,
                                          pair.sigma2, EvalMode::kFirstOrder);
    expect_same_solution(pair, legacy);
  }
}

TEST(SolverContext, MinRhoIsCachedAndMatchesSolver) {
  const SolverContext context(test::params_for("Hera/XScale"));
  for (const SpeedPolicy policy :
       {SpeedPolicy::kTwoSpeed, SpeedPolicy::kSingleSpeed}) {
    const auto& cached = context.min_rho(policy);
    const auto fresh = context.solver().min_rho_solution(policy);
    EXPECT_EQ(cached.feasible, fresh.feasible);
    EXPECT_EQ(cached.sigma1, fresh.sigma1);
    EXPECT_EQ(cached.sigma2, fresh.sigma2);
    EXPECT_EQ(cached.rho_min, fresh.rho_min);
    EXPECT_EQ(cached.w_opt, fresh.w_opt);
  }
}

TEST(SolverContext, BestTakesFallbackBeyondFeasibilityHorizon) {
  const SolverContext context(test::params_for("Atlas/Crusoe"));
  bool used_fallback = false;
  const auto sol = context.best(1.0, SpeedPolicy::kTwoSpeed,
                                EvalMode::kFirstOrder,
                                /*min_rho_fallback=*/true, &used_fallback);
  EXPECT_TRUE(sol.feasible);
  EXPECT_TRUE(used_fallback);
  EXPECT_GT(sol.time_overhead, 1.0);

  const auto strict = context.best(1.0, SpeedPolicy::kTwoSpeed,
                                   EvalMode::kFirstOrder,
                                   /*min_rho_fallback=*/false,
                                   &used_fallback);
  EXPECT_FALSE(strict.feasible);
  EXPECT_FALSE(used_fallback);

  bool no_fallback_needed = true;
  const auto feasible = context.best(3.0, SpeedPolicy::kTwoSpeed,
                                     EvalMode::kFirstOrder, true,
                                     &no_fallback_needed);
  EXPECT_TRUE(feasible.feasible);
  EXPECT_FALSE(no_fallback_needed);
}

TEST(SolverContext, SolvePairByIndexChecksRange) {
  const SolverContext context(test::toy_params());
  EXPECT_NO_THROW(context.solve_pair(3.0, 0, 2));
  EXPECT_THROW(context.solve_pair(3.0, 0, 3), std::out_of_range);
  EXPECT_THROW(context.solve_pair(3.0, 7, 0), std::out_of_range);
}

TEST(SolverContext, SharedAcrossRhoGridMatchesPerPointContexts) {
  // The engine's ρ-sweep fast path: one context, many bounds.
  const ModelParams params = test::params_for("Coastal/XScale");
  const SolverContext shared(params);
  for (double rho = 1.1; rho < 4.0; rho += 0.3) {
    const SolverContext fresh(params);
    expect_same_solution(shared.solve(rho).best, fresh.solve(rho).best);
  }
}

}  // namespace
}  // namespace rexspeed::engine
