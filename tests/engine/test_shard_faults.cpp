// Fault injection against the shard coordinator: SIGKILL a worker
// mid-panel, close the result pipe mid-frame, exit nonzero before doing
// any work, kill the whole fleet. Every case must (a) requeue the lost
// work transparently, (b) complete the campaign, (c) report the
// incident with the worker's real exit status, and (d) produce results
// byte-identical to a serial in-process run — crash recovery is not
// allowed to cost a single bit.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "rexspeed/engine/scenario.hpp"
#include "rexspeed/engine/shard/shard_coordinator.hpp"
#include "support/result_identity.hpp"

namespace rexspeed::engine::shard {
namespace {

/// A handful of registry scenarios at a small grid — enough tasks that
/// the fleet keeps working after the victim dies.
std::vector<ScenarioSpec> fault_batch() {
  std::vector<ScenarioSpec> specs = scenario_registry();
  specs.resize(5);
  for (ScenarioSpec& spec : specs) spec.points = 3;
  return specs;
}

bool any_incident_contains(const ShardReport& report,
                           const std::string& needle) {
  for (const ShardIncident& incident : report.incidents) {
    if (incident.detail.find(needle) != std::string::npos) return true;
  }
  return false;
}

ShardOptions shard_options(unsigned workers,
                           std::vector<WorkerFault> faults) {
  ShardOptions options;
  options.workers = workers;
  options.faults = std::move(faults);
  return options;
}

WorkerFault fault(WorkerFault::Kind kind, unsigned worker,
                  unsigned nth = 1) {
  WorkerFault injected;
  injected.kind = kind;
  injected.worker = worker;
  injected.nth = nth;
  return injected;
}

TEST(ShardFaults, SigkillMidPanelRequeuesAndStaysByteIdentical) {
  const std::vector<ScenarioSpec> specs = fault_batch();
  const std::vector<ScenarioResult> expected = test::serial_reference(specs);
  ShardCoordinator coordinator(
      shard_options(2, {fault(WorkerFault::Kind::kKillMidPanel, 0)}));
  // The victim computes its first panel, then SIGKILLs itself before
  // reporting — the finished work is simply gone and must be redone.
  test::expect_identical_results(coordinator.run(specs), expected);
  const ShardReport& report = coordinator.report();
  EXPECT_GE(report.worker_deaths, 1u);
  EXPECT_GE(report.requeued, 1u);
  EXPECT_TRUE(any_incident_contains(report, "killed by signal 9"))
      << "incident must carry the worker's real exit status";
  EXPECT_EQ(report.completed_by_workers + report.completed_in_process,
            report.tasks);
}

TEST(ShardFaults, PipeClosedMidFrameIsDetectedAndRequeued) {
  const std::vector<ScenarioSpec> specs = fault_batch();
  const std::vector<ScenarioResult> expected = test::serial_reference(specs);
  ShardCoordinator coordinator(
      shard_options(2, {fault(WorkerFault::Kind::kTruncateResult, 0)}));
  // Half a result frame then EOF: the decoder must treat the truncated
  // stream as a dead worker — a partial frame never surfaces as data.
  test::expect_identical_results(coordinator.run(specs), expected);
  const ShardReport& report = coordinator.report();
  EXPECT_GE(report.worker_deaths, 1u);
  EXPECT_GE(report.requeued, 1u);
  EXPECT_TRUE(any_incident_contains(report, "mid-frame"));
}

TEST(ShardFaults, NonzeroExitIsReportedWithItsCode) {
  const std::vector<ScenarioSpec> specs = fault_batch();
  const std::vector<ScenarioResult> expected = test::serial_reference(specs);
  WorkerFault injected = fault(WorkerFault::Kind::kExitAtStart, 0);
  injected.exit_code = 3;
  ShardCoordinator coordinator(shard_options(2, {injected}));
  test::expect_identical_results(coordinator.run(specs), expected);
  const ShardReport& report = coordinator.report();
  EXPECT_GE(report.worker_deaths, 1u);
  EXPECT_TRUE(any_incident_contains(report, "exited with code 3"));
  EXPECT_EQ(report.completed_by_workers + report.completed_in_process,
            report.tasks);
}

TEST(ShardFaults, WholeFleetDeadFallsBackInProcess) {
  const std::vector<ScenarioSpec> specs = fault_batch();
  const std::vector<ScenarioResult> expected = test::serial_reference(specs);
  ShardCoordinator coordinator(
      shard_options(2, {fault(WorkerFault::Kind::kExitAtStart, 0),
                        fault(WorkerFault::Kind::kExitAtStart, 1)}));
  // Both workers die before serving anything: the coordinator must
  // finish the entire campaign itself, byte-identically.
  test::expect_identical_results(coordinator.run(specs), expected);
  const ShardReport& report = coordinator.report();
  EXPECT_EQ(report.worker_deaths, 2u);
  EXPECT_EQ(report.completed_by_workers, 0u);
  EXPECT_EQ(report.completed_in_process, report.tasks);
}

TEST(ShardFaults, SingleWorkerDeathStillCompletesTheCampaign) {
  const std::vector<ScenarioSpec> specs = fault_batch();
  const std::vector<ScenarioResult> expected = test::serial_reference(specs);
  ShardCoordinator coordinator(
      shard_options(1, {fault(WorkerFault::Kind::kKillMidPanel, 0)}));
  // workers=1 and the only worker dies: everything after the crash runs
  // in-process.
  test::expect_identical_results(coordinator.run(specs), expected);
  const ShardReport& report = coordinator.report();
  EXPECT_EQ(report.worker_deaths, 1u);
  EXPECT_GE(report.completed_in_process, 1u);
  EXPECT_EQ(report.completed_by_workers + report.completed_in_process,
            report.tasks);
}

TEST(ShardFaults, LaterVictimDiesAfterServingEarlierTasks) {
  const std::vector<ScenarioSpec> specs = fault_batch();
  const std::vector<ScenarioResult> expected = test::serial_reference(specs);
  ShardCoordinator coordinator(
      shard_options(2, {fault(WorkerFault::Kind::kKillMidPanel, 1, 2)}));
  // The victim completes its first assignment normally and dies on its
  // second — mixing served results and lost work in one worker.
  test::expect_identical_results(coordinator.run(specs), expected);
  const ShardReport& report = coordinator.report();
  EXPECT_GE(report.worker_deaths, 1u);
  EXPECT_EQ(report.completed_by_workers + report.completed_in_process,
            report.tasks);
}

}  // namespace
}  // namespace rexspeed::engine::shard
