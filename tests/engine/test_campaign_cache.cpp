// The campaign ↔ result-store contract: a warm campaign is bit-identical
// to a cold one (verified fetches replace planning/prepare/solves), a
// corrupt entry is a transparent recompute that heals the store, a
// partially-warm cache never leaks between scenarios, cache=0 scenarios
// are never stored, and cost seeding reorders work without changing any
// byte of the results.

#include "rexspeed/engine/campaign_runner.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "rexspeed/engine/scenario.hpp"
#include "rexspeed/store/result_store.hpp"
#include "rexspeed/store/serialize.hpp"

namespace rexspeed::engine {
namespace {

namespace fs = std::filesystem;

/// A small mixed campaign: a first-order ρ panel, an exact-opt C panel
/// (heavy prepare — the interesting cache-hit case), and a bound solve.
std::vector<ScenarioSpec> make_campaign() {
  std::vector<ScenarioSpec> specs;

  ScenarioSpec rho_panel;
  rho_panel.name = "cache_rho";
  rho_panel.configuration = "Hera/XScale";
  rho_panel.points = 9;
  rho_panel.sweep_parameter = sweep::SweepParameter::kPerformanceBound;
  specs.push_back(rho_panel);

  ScenarioSpec exact_panel;
  exact_panel.name = "cache_exact";
  exact_panel.configuration = "Atlas/Crusoe";
  exact_panel.points = 7;
  exact_panel.mode = core::EvalMode::kExactOptimize;
  exact_panel.sweep_parameter = sweep::SweepParameter::kCheckpointTime;
  specs.push_back(exact_panel);

  ScenarioSpec solve;
  solve.name = "cache_solve";
  solve.configuration = "Hera/XScale";
  solve.rho = 3.0;
  specs.push_back(solve);

  return specs;
}

/// Serializes every result byte that the store contract promises to
/// preserve — panel blobs and solve blobs alike.
std::string fingerprint(const std::vector<ScenarioResult>& results) {
  std::string bytes;
  for (const auto& result : results) {
    for (const auto& panel : result.panels) {
      bytes += store::serialize_panel_series(panel);
    }
    if (result.spec.kind() == ScenarioKind::kSolve) {
      bytes += store::serialize_solution(result.solution);
    }
  }
  return bytes;
}

class CampaignCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("rexspeed_campaign_cache_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()));
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  /// Runs the campaign against a fresh store handle on dir_; reports the
  /// handle's session stats through `out_stats` when non-null.
  std::vector<ScenarioResult> run_cached(
      const std::vector<ScenarioSpec>& specs,
      store::StoreStats* out_stats = nullptr) {
    store::LocalResultStore cache(dir_);
    const CampaignRunner runner({.threads = 1, .store = &cache});
    auto results = runner.run(specs);
    if (out_stats != nullptr) *out_stats = cache.stats();
    return results;
  }

  fs::path dir_;
};

TEST_F(CampaignCacheTest, WarmCampaignIsBitIdenticalToCold) {
  const auto specs = make_campaign();

  store::StoreStats cold_stats;
  const std::string cold = fingerprint(run_cached(specs, &cold_stats));
  EXPECT_EQ(cold_stats.hits, 0u);
  EXPECT_GT(cold_stats.stores, 0u);

  store::StoreStats warm_stats;
  const std::string warm = fingerprint(run_cached(specs, &warm_stats));
  EXPECT_EQ(warm, cold);
  EXPECT_GT(warm_stats.hits, 0u);
  // Cumulative counters: the warm run added hits but no new stores.
  EXPECT_EQ(warm_stats.stores, cold_stats.stores);

  // And both equal the uncached baseline — caching must be invisible.
  const CampaignRunner uncached({.threads = 1});
  EXPECT_EQ(fingerprint(uncached.run(specs)), cold);
}

TEST_F(CampaignCacheTest, CorruptEntryIsRecomputedAndHealed) {
  const auto specs = make_campaign();
  const std::string cold = fingerprint(run_cached(specs));

  // Damage every stored entry: the warm run must detect each corruption,
  // recompute, still produce identical bytes, and heal the store.
  for (const auto& file : fs::directory_iterator(dir_ / "entries")) {
    if (file.path().extension() != ".bin") continue;
    std::fstream blob(file.path(),
                      std::ios::in | std::ios::out | std::ios::binary);
    blob.seekp(0);
    blob.put('X');
  }

  store::StoreStats stats;
  EXPECT_EQ(fingerprint(run_cached(specs, &stats)), cold);
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_GT(stats.corrupt, 0u);

  // Healed: the next run is all hits and verify is clean.
  store::StoreStats healed;
  EXPECT_EQ(fingerprint(run_cached(specs, &healed)), cold);
  EXPECT_GT(healed.hits, 0u);
  store::LocalResultStore cache(dir_);
  EXPECT_TRUE(cache.verify().empty());
}

TEST_F(CampaignCacheTest, PartiallyWarmCampaignMatchesStandaloneRuns) {
  const auto specs = make_campaign();

  // Pre-cache only the first scenario, then run the whole campaign: the
  // cached panel must not bleed into the cold ones, and every result must
  // equal its standalone uncached run.
  {
    store::LocalResultStore cache(dir_);
    const CampaignRunner seeder({.threads = 1, .store = &cache});
    (void)seeder.run_one(specs.front());
  }

  store::StoreStats stats;
  const auto mixed = run_cached(specs, &stats);
  EXPECT_GT(stats.hits, 0u);
  EXPECT_GT(stats.misses, 0u);

  const CampaignRunner uncached({.threads = 1});
  ASSERT_EQ(mixed.size(), specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(fingerprint({mixed[i]}),
              fingerprint({uncached.run_one(specs[i])}))
        << "scenario " << specs[i].name;
  }
}

TEST_F(CampaignCacheTest, CacheOptOutScenarioIsNeverStored) {
  auto specs = make_campaign();
  for (auto& spec : specs) spec.cache = false;

  store::StoreStats stats;
  const std::string first = fingerprint(run_cached(specs, &stats));
  EXPECT_EQ(stats.stores, 0u);
  EXPECT_EQ(stats.entries, 0u);

  // Opting out changes persistence, never results.
  const CampaignRunner uncached({.threads = 1});
  EXPECT_EQ(fingerprint(uncached.run(specs)), first);
}

TEST_F(CampaignCacheTest, CostSeedingReordersWithoutChangingResults) {
  const auto specs = make_campaign();
  const std::string cold = fingerprint(run_cached(specs));

  // Keep the measured cost table but drop every entry: the rerun seeds
  // its longest-first ordering from persisted costs (no timed probes)
  // while recomputing everything — results must not move by a byte.
  fs::remove_all(dir_ / "entries");
  store::StoreStats stats;
  EXPECT_EQ(fingerprint(run_cached(specs, &stats)), cold);
  EXPECT_EQ(stats.hits, 0u);
}

}  // namespace
}  // namespace rexspeed::engine
