// The shard coordinator's merge contract: a campaign sharded across N
// worker processes is BYTE-identical to the serial in-process
// CampaignRunner — for every registry scenario, every tested worker
// count, cold or warm store — and its report accounts for every task.
// Identity is asserted through the store's serializers (bit patterns,
// not tolerances); this is the ctest-enforced acceptance criterion, not
// just a CI smoke diff.

#include <gtest/gtest.h>

#include <cstddef>
#include <filesystem>
#include <string>
#include <vector>

#include "rexspeed/engine/campaign_runner.hpp"
#include "rexspeed/engine/scenario.hpp"
#include "rexspeed/engine/shard/shard_coordinator.hpp"
#include "rexspeed/store/result_store.hpp"
#include "support/result_identity.hpp"

namespace rexspeed::engine::shard {
namespace {

namespace fs = std::filesystem;

/// The whole scenario registry at a small grid — every backend mode,
/// every panel kind, composites and solves included, but cheap enough
/// to run several full campaigns per suite.
std::vector<ScenarioSpec> small_registry() {
  std::vector<ScenarioSpec> specs = scenario_registry();
  for (ScenarioSpec& spec : specs) spec.points = 3;
  return specs;
}

ShardOptions shard_options(unsigned workers, std::string cache_spec = "") {
  ShardOptions options;
  options.workers = workers;
  options.cache_spec = std::move(cache_spec);
  return options;
}

TEST(ShardCoordinator, MatchesSerialRunnerAtEveryWorkerCount) {
  const std::vector<ScenarioSpec> specs = small_registry();
  const std::vector<ScenarioResult> expected = test::serial_reference(specs);
  for (const unsigned workers : {1u, 2u, 4u}) {
    SCOPED_TRACE("workers=" + std::to_string(workers));
    ShardCoordinator coordinator(shard_options(workers));
    const std::vector<ScenarioResult> actual = coordinator.run(specs);
    test::expect_identical_results(actual, expected);
    const ShardReport& report = coordinator.report();
    EXPECT_GT(report.tasks, 0u);
    EXPECT_EQ(report.cache_hits, 0u);  // uncached run
    EXPECT_EQ(report.completed_by_workers, report.tasks);
    EXPECT_EQ(report.completed_in_process, 0u);
    EXPECT_EQ(report.requeued, 0u);
    EXPECT_EQ(report.worker_deaths, 0u);
    EXPECT_TRUE(report.incidents.empty());
    EXPECT_LE(report.workers_spawned, workers);
    EXPECT_GE(report.workers_spawned, 1u);
  }
}

TEST(ShardCoordinator, SharedStoreFlowsHitsAcrossProcesses) {
  const fs::path dir = fs::temp_directory_path() / "rexspeed_shard_store";
  fs::remove_all(dir);
  const std::vector<ScenarioSpec> specs = small_registry();
  const std::vector<ScenarioResult> expected = test::serial_reference(specs);

  // Cold: workers compute everything and write the shared store.
  ShardCoordinator cold(shard_options(2, dir.string()));
  test::expect_identical_results(cold.run(specs), expected);
  const std::size_t computed = cold.report().completed_by_workers;
  EXPECT_EQ(computed, cold.report().tasks);
  EXPECT_GT(computed, 0u);

  // Warm: the coordinator serves every slot from the store the workers
  // populated — nothing left to distribute, no process forked.
  ShardCoordinator warm(shard_options(4, dir.string()));
  test::expect_identical_results(warm.run(specs), expected);
  EXPECT_EQ(warm.report().cache_hits, computed);
  EXPECT_EQ(warm.report().tasks, 0u);
  EXPECT_EQ(warm.report().workers_spawned, 0u);

  // Cross-runner warmth: an in-process CampaignRunner reading the same
  // directory gets identical bytes — worker-written and runner-written
  // entries are interchangeable.
  {
    const std::unique_ptr<store::ResultStore> store =
        store::make_store(dir.string());
    const CampaignRunner runner({.threads = 1, .store = store.get()});
    test::expect_identical_results(runner.run(specs), expected);
  }
  fs::remove_all(dir);
}

TEST(ShardCoordinator, WorkerFleetIsClampedToTaskCount) {
  // One sweep panel = one task: asking for 8 workers must fork 1, not 7
  // idle processes.
  ScenarioSpec spec = scenario_registry().front();
  spec.points = 3;
  ShardCoordinator coordinator(shard_options(8));
  const std::vector<ScenarioResult> results = coordinator.run({spec});
  EXPECT_EQ(coordinator.report().workers_spawned,
            coordinator.report().tasks);
  test::expect_identical_results(results, test::serial_reference({spec}));
}

TEST(ShardCoordinator, ValidationErrorsThrowBeforeForking) {
  ScenarioSpec spec = scenario_registry().front();
  spec.rho = -1.0;  // the solve-bound check CampaignRunner also enforces
  ShardCoordinator coordinator(shard_options(2));
  EXPECT_THROW((void)coordinator.run({spec}), std::invalid_argument);
  EXPECT_EQ(coordinator.report().workers_spawned, 0u);
}

TEST(ShardCoordinator, EmptyCampaignSpawnsNothing) {
  ShardCoordinator coordinator(shard_options(4));
  EXPECT_TRUE(coordinator.run({}).empty());
  EXPECT_EQ(coordinator.report().workers_spawned, 0u);
  EXPECT_EQ(coordinator.report().tasks, 0u);
}

}  // namespace
}  // namespace rexspeed::engine::shard
