#include "rexspeed/engine/scenario.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "rexspeed/engine/solver_context.hpp"
#include "rexspeed/platform/configuration.hpp"
#include "test_util.hpp"

namespace rexspeed::engine {
namespace {

TEST(ScenarioParse, StructuralKeys) {
  const ScenarioSpec spec = parse_scenario(
      "name=demo config=Atlas/Crusoe rho=2.5 points=21 param=C "
      "policy=single-speed mode=exact-eval fallback=0");
  EXPECT_EQ(spec.name, "demo");
  EXPECT_EQ(spec.configuration, "Atlas/Crusoe");
  EXPECT_DOUBLE_EQ(spec.rho, 2.5);
  EXPECT_EQ(spec.points, 21u);
  ASSERT_TRUE(spec.sweep_parameter.has_value());
  EXPECT_EQ(*spec.sweep_parameter, sweep::SweepParameter::kCheckpointTime);
  EXPECT_EQ(spec.policy, core::SpeedPolicy::kSingleSpeed);
  EXPECT_EQ(spec.mode, core::EvalMode::kExactEvaluation);
  EXPECT_FALSE(spec.min_rho_fallback);
  EXPECT_EQ(spec.kind(), ScenarioKind::kSweep);
}

TEST(ScenarioParse, DefaultsAreASolveOnHeraXScale) {
  const ScenarioSpec spec = parse_scenario("");
  EXPECT_EQ(spec.configuration, "Hera/XScale");
  EXPECT_DOUBLE_EQ(spec.rho, 3.0);
  EXPECT_EQ(spec.kind(), ScenarioKind::kSolve);
  EXPECT_TRUE(spec.min_rho_fallback);
}

TEST(ScenarioParse, ParamAllAndNone) {
  EXPECT_EQ(parse_scenario("param=all").kind(), ScenarioKind::kAllSweeps);
  EXPECT_EQ(parse_scenario("param=rho param=none").kind(),
            ScenarioKind::kSolve);
  EXPECT_EQ(parse_scenario("param=all param=V").kind(),
            ScenarioKind::kSweep);
}

TEST(ScenarioParse, OverridesResolveIntoModelParams) {
  const ScenarioSpec spec =
      parse_scenario("config=Hera/XScale V=123 lambda=1e-5 Pio=77");
  const core::ModelParams params = spec.resolve_params();
  EXPECT_DOUBLE_EQ(params.verification_s, 123.0);
  EXPECT_DOUBLE_EQ(params.lambda_silent, 1e-5);
  EXPECT_DOUBLE_EQ(params.io_power_mw, 77.0);
  // Untouched fields keep the configuration's values.
  const core::ModelParams base = test::params_for("Hera/XScale");
  EXPECT_DOUBLE_EQ(params.checkpoint_s, base.checkpoint_s);
  EXPECT_EQ(params.speeds, base.speeds);
}

TEST(ScenarioParse, RejectsMalformedInput) {
  EXPECT_THROW(parse_scenario("rho"), std::invalid_argument);
  EXPECT_THROW(parse_scenario("=3"), std::invalid_argument);
  EXPECT_THROW(parse_scenario("rho=abc"), std::invalid_argument);
  EXPECT_THROW(parse_scenario("param=bogus"), std::invalid_argument);
  EXPECT_THROW(parse_scenario("policy=warp"), std::invalid_argument);
  EXPECT_THROW(parse_scenario("mode=psychic"), std::invalid_argument);
  EXPECT_THROW(parse_scenario("unknown_key=1"), std::invalid_argument);
  EXPECT_THROW(parse_scenario("points=0"), std::invalid_argument);
  // A non-positive bound must fail at parse time, not inside a pool
  // worker (which would terminate the process).
  EXPECT_THROW(parse_scenario("rho=0"), std::invalid_argument);
  EXPECT_THROW(parse_scenario("rho=-1"), std::invalid_argument);
  EXPECT_THROW(parse_scenario("rho=nan"), std::invalid_argument);
  EXPECT_THROW(parse_scenario("rho=inf"), std::invalid_argument);
  // fallback accepts only 0/1/true/false — "anything else means true"
  // would turn typos into the opposite policy.
  EXPECT_THROW(parse_scenario("fallback=off"), std::invalid_argument);
  EXPECT_THROW(parse_scenario("fallback=flase"), std::invalid_argument);
  EXPECT_FALSE(parse_scenario("fallback=false").min_rho_fallback);
  EXPECT_TRUE(parse_scenario("fallback=true").min_rho_fallback);
}

TEST(ScenarioParse, OverrideValidationFailsAtResolveTimeForBadValues) {
  // A negative cost parses (it is a well-formed number) but must be
  // rejected by ModelParams::validate when the scenario is resolved.
  const ScenarioSpec spec = parse_scenario("config=Hera/XScale C=-5");
  EXPECT_THROW(spec.resolve_params(), std::invalid_argument);
}

TEST(ScenarioRegistry, CoversThePaperFiguresAndBackendExtensions) {
  const auto& registry = scenario_registry();
  ASSERT_EQ(registry.size(), 17u);
  EXPECT_EQ(registry.front().name, "fig02");
  int panels = 0;
  int composites = 0;
  int interleaved = 0;
  for (const auto& spec : registry) {
    ASSERT_FALSE(spec.description.empty()) << spec.name;
    // Every registered configuration must actually exist.
    EXPECT_NO_THROW(platform::configuration_by_name(spec.configuration))
        << spec.name;
    if (spec.interleaved()) {
      ++interleaved;
      continue;
    }
    if (spec.kind() == ScenarioKind::kSweep) ++panels;
    if (spec.kind() == ScenarioKind::kAllSweeps) ++composites;
  }
  EXPECT_EQ(panels, 8);       // Figs 2–7 + the exact and recall rho panels
  EXPECT_EQ(composites, 7);   // Figures 8–14
  EXPECT_EQ(interleaved, 2);  // the related-work extension panels

  // The exact-backend workload keeps its natural shared-cache panel.
  const ScenarioSpec& exact = scenario_by_name("exact_rho");
  EXPECT_EQ(exact.mode, core::EvalMode::kExactOptimize);
  EXPECT_EQ(exact.sweep_parameter,
            sweep::SweepParameter::kPerformanceBound);

  // The interleaved extensions are well-formed: a best-m ρ sweep and an
  // overhead-vs-segments grid, both with a search cap.
  const ScenarioSpec& vs_rho = scenario_by_name("interleaved_rho");
  EXPECT_EQ(vs_rho.sweep_parameter,
            sweep::SweepParameter::kPerformanceBound);
  EXPECT_EQ(vs_rho.max_segments, 8u);
  EXPECT_NO_THROW(vs_rho.validate());
  const ScenarioSpec& vs_m = scenario_by_name("interleaved_segments");
  EXPECT_EQ(vs_m.sweep_parameter, sweep::SweepParameter::kSegments);
  EXPECT_EQ(vs_m.max_segments, 8u);
  EXPECT_NO_THROW(vs_m.validate());

  // The partial-recall extension panel is a recall-mode ρ sweep.
  const ScenarioSpec& recall = scenario_by_name("recall_rho");
  EXPECT_TRUE(recall.recall_mode);
  EXPECT_EQ(recall.verification_recall, 0.8);
  EXPECT_EQ(recall.sweep_parameter, sweep::SweepParameter::kPerformanceBound);
  EXPECT_NO_THROW(recall.validate());
}

TEST(ScenarioRegistry, LookupByName) {
  EXPECT_EQ(scenario_by_name("fig05").sweep_parameter,
            sweep::SweepParameter::kPerformanceBound);
  EXPECT_EQ(find_scenario("fig99"), nullptr);
  EXPECT_THROW(scenario_by_name("fig99"), std::out_of_range);
}

TEST(ScenarioSolve, MatchesDirectContextSolve) {
  const ScenarioSpec spec = parse_scenario("config=Hera/XScale rho=3");
  const core::Solution via_scenario = solve_scenario(spec);
  const SolverContext context = make_context(spec);
  const core::PairSolution direct = context.solve(3.0).pair;
  ASSERT_TRUE(via_scenario.feasible());
  EXPECT_EQ(via_scenario.sigma1(), direct.sigma1);
  EXPECT_EQ(via_scenario.sigma2(), direct.sigma2);
  EXPECT_EQ(via_scenario.w_opt(), direct.w_opt);
  EXPECT_EQ(via_scenario.energy_overhead(), direct.energy_overhead);
}

TEST(ScenarioSolve, ReportsFallbackUse) {
  const ScenarioSpec spec = parse_scenario("config=Atlas/Crusoe rho=1.0");
  const core::Solution sol = solve_scenario(spec);
  EXPECT_TRUE(sol.feasible());
  EXPECT_TRUE(sol.used_fallback);
}

TEST(ScenarioRecall, ParsesValidatesAndRoutesToTheSimulator) {
  // verification_recall= is a validated scenario key, routed into
  // SimulatorOptions — the simulate-only contract.
  const ScenarioSpec spec = parse_scenario(
      "config=Hera/XScale verification_recall=0.8");
  EXPECT_DOUBLE_EQ(spec.verification_recall, 0.8);
  EXPECT_DOUBLE_EQ(simulator_options(spec).verification_recall, 0.8);
  EXPECT_DOUBLE_EQ(
      simulator_options(parse_scenario("config=Hera/XScale"))
          .verification_recall,
      1.0);

  EXPECT_THROW(parse_scenario("verification_recall=1.5"),
               std::invalid_argument);
  EXPECT_THROW(parse_scenario("verification_recall=-0.1"),
               std::invalid_argument);
  EXPECT_THROW(parse_scenario("verification_recall=maybe"),
               std::invalid_argument);
}

TEST(ScenarioRecall, FullRecallModesRejectPartialRecallWithAClearError) {
  // Only mode=recall models partial recall analytically: every other
  // solver entry point refuses, naming the key and both escape hatches
  // (the recall backend and the simulator).
  ScenarioSpec spec = parse_scenario(
      "name=sdc config=Hera/XScale verification_recall=0.9");
  try {
    (void)solve_scenario(spec);
    FAIL() << "partial recall must be rejected by full-recall modes";
  } catch (const std::invalid_argument& error) {
    const std::string message = error.what();
    EXPECT_NE(message.find("verification_recall"), std::string::npos)
        << message;
    EXPECT_NE(message.find("mode=recall"), std::string::npos) << message;
    EXPECT_NE(message.find("simulate"), std::string::npos) << message;
  }
  // ...but the simulator bridge still accepts the spec's other settings.
  spec.verification_recall = 1.0;
  EXPECT_TRUE(solve_scenario(spec).feasible());
}

TEST(ScenarioRecall, RecallModeSolvesAndRoundTripsThroughTokens) {
  // mode=recall is a first-class solver mode: it parses, solves, and the
  // canonical token form round-trips (mode=recall pins EvalMode to
  // first-order so write/parse is lossless).
  const ScenarioSpec spec = parse_scenario(
      "name=sdc config=Hera/XScale mode=recall verification_recall=0.9 "
      "rho=3");
  EXPECT_TRUE(spec.recall_mode);
  EXPECT_EQ(spec.mode, core::EvalMode::kFirstOrder);
  EXPECT_TRUE(solve_scenario(spec).feasible());
  // A later mode token turns recall mode back off (last-wins semantics).
  EXPECT_FALSE(parse_scenario("config=Hera/XScale mode=recall "
                              "mode=first-order")
                   .recall_mode);
  // Recall mode is a speed-pair backend: segments are rejected.
  EXPECT_THROW(parse_scenario("config=Hera/XScale mode=recall segments=2"),
               std::invalid_argument);
  // solve_for_simulation keeps the recall-aware optimum rather than
  // stripping the key the way full-recall modes do.
  const core::Solution recall_solve = solve_for_simulation(spec);
  const core::Solution via_solver = solve_scenario(spec);
  EXPECT_EQ(recall_solve.w_opt(), via_solver.w_opt());
  EXPECT_EQ(recall_solve.sigma1(), via_solver.sigma1());
}

TEST(ScenarioRecall, MakePolicyAcceptsSimulateOnlySpecs) {
  // make_policy is the simulator bridge: a recall < 1 spec must yield the
  // same policy as its full-recall twin (recall shapes the simulation,
  // never the solve).
  ScenarioSpec spec = parse_scenario("config=Hera/XScale rho=3");
  ScenarioSpec partial = spec;
  partial.verification_recall = 0.8;
  const sim::ExecutionPolicy reference = make_policy(spec);
  const sim::ExecutionPolicy bridged = make_policy(partial);
  EXPECT_DOUBLE_EQ(bridged.pattern_work(), reference.pattern_work());
  ASSERT_EQ(bridged.attempt_speeds().size(),
            reference.attempt_speeds().size());
  EXPECT_DOUBLE_EQ(bridged.attempt_speeds()[0],
                   reference.attempt_speeds()[0]);
  EXPECT_DOUBLE_EQ(simulator_options(partial).verification_recall, 0.8);
}

TEST(ScenarioPolicy, BuildsSimulatorPolicyFromSolution) {
  const ScenarioSpec spec = parse_scenario("config=Hera/XScale rho=3");
  const sim::ExecutionPolicy policy = make_policy(spec);
  const core::Solution sol = solve_scenario(spec);
  EXPECT_DOUBLE_EQ(policy.pattern_work(), sol.w_opt());
  ASSERT_EQ(policy.attempt_speeds().size(), 2u);
  EXPECT_DOUBLE_EQ(policy.attempt_speeds()[0], sol.sigma1());
  EXPECT_DOUBLE_EQ(policy.attempt_speeds()[1], sol.sigma2());
}

TEST(ScenarioPolicy, ThrowsWhenInfeasibleAndFallbackDisabled) {
  const ScenarioSpec spec =
      parse_scenario("config=Atlas/Crusoe rho=1.0 fallback=0");
  EXPECT_THROW(make_policy(spec), std::runtime_error);
}

TEST(ScenarioSweepOptions, CarryTheSpecSettings) {
  const ScenarioSpec spec = parse_scenario(
      "rho=2.25 points=33 mode=exact-eval fallback=0 param=V");
  sweep::ThreadPool pool(2);
  const sweep::SweepOptions options = spec.sweep_options(&pool);
  EXPECT_DOUBLE_EQ(options.rho, 2.25);
  EXPECT_EQ(options.points, 33u);
  EXPECT_EQ(options.mode, core::EvalMode::kExactEvaluation);
  EXPECT_FALSE(options.min_rho_fallback);
  EXPECT_EQ(options.pool, &pool);
}

}  // namespace
}  // namespace rexspeed::engine
