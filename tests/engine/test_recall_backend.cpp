// Pinned acceptance regression for the recall mode: at full recall
// (verification_recall = 1) the recall backend must be BIT-identical to
// the first-order mode on every registered scenario — scaling the silent
// rate by 1.0 is exact in floating point, so any divergence is a real
// wiring bug (double scaling, wrong params() in a rebind, a forked solve
// path). The randomized generalization lives in
// tests/properties/prop_recall_identity.cpp; this suite pins the claim to
// the registered workloads and to one full campaign run.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "rexspeed/engine/backend_registry.hpp"
#include "rexspeed/engine/campaign_runner.hpp"
#include "rexspeed/engine/scenario.hpp"
#include "test_util.hpp"

namespace rexspeed::engine {
namespace {

using test::expect_identical_panel;
using test::expect_identical_solution;

/// The registered spec re-expressed as mode=recall at r = 1. Segment
/// configurations are dropped: recall is a speed-pair mode (the registry
/// rejects the combination), but the scenario's configuration, overrides
/// and bound still make it a distinct workload worth pinning.
ScenarioSpec recall_twin_of(const ScenarioSpec& registered) {
  ScenarioSpec twin = registered;
  twin.segments = 0;
  twin.max_segments = 0;
  twin.max_segments_defaulted = false;
  if (twin.sweep_parameter == sweep::SweepParameter::kSegments) {
    // The segments axis only exists for the interleaved mode; the pair
    // twins sweep the bound instead.
    twin.sweep_parameter = sweep::SweepParameter::kPerformanceBound;
  }
  twin.recall_mode = true;
  twin.verification_recall = 1.0;
  twin.mode = core::EvalMode::kFirstOrder;
  return twin;
}

TEST(RecallBackendPinned, FullRecallMatchesFirstOrderOnEveryScenario) {
  for (const ScenarioSpec& registered : scenario_registry()) {
    SCOPED_TRACE(registered.name);
    const ScenarioSpec recall_spec = recall_twin_of(registered);
    ScenarioSpec reference_spec = recall_spec;
    reference_spec.recall_mode = false;

    ASSERT_EQ(backend_mode_name(recall_spec), "recall");
    ASSERT_EQ(backend_mode_name(reference_spec), "first-order");

    const core::ModelParams params = registered.resolve_params();
    const auto recall_backend = make_backend(recall_spec, params);
    const auto reference = make_backend(reference_spec, params);
    recall_backend->prepare();
    reference->prepare();

    for (const core::SpeedPolicy policy :
         {core::SpeedPolicy::kTwoSpeed, core::SpeedPolicy::kSingleSpeed}) {
      expect_identical_solution(
          recall_backend->solve(registered.rho, policy,
                                registered.min_rho_fallback),
          reference->solve(registered.rho, policy,
                           registered.min_rho_fallback));
      expect_identical_solution(recall_backend->min_rho(policy),
                                reference->min_rho(policy));
    }
    expect_identical_solution(
        recall_backend->solve_baseline(registered.rho,
                                       registered.min_rho_fallback),
        reference->solve_baseline(registered.rho,
                                  registered.min_rho_fallback));

    // The scenario's own ρ panel grid through the batched sweep path.
    const std::size_t points = std::min<std::size_t>(registered.points, 9);
    std::vector<double> rhos(points);
    for (std::size_t i = 0; i < points; ++i) {
      const double t = points > 1
                           ? static_cast<double>(i) /
                                 static_cast<double>(points - 1)
                           : 0.0;
      rhos[i] = 1.05 + t * (2.0 * registered.rho - 1.05);
    }
    std::vector<core::PanelPoint> via_recall(points);
    std::vector<core::PanelPoint> via_reference(points);
    recall_backend->solve_rho_batch(rhos.data(), points,
                                    registered.min_rho_fallback,
                                    via_recall.data());
    reference->solve_rho_batch(rhos.data(), points,
                               registered.min_rho_fallback,
                               via_reference.data());
    for (std::size_t i = 0; i < points; ++i) {
      SCOPED_TRACE("rho grid point " + std::to_string(i));
      expect_identical_solution(via_recall[i].primary,
                                via_reference[i].primary);
      expect_identical_solution(via_recall[i].baseline,
                                via_reference[i].baseline);
    }
  }
}

TEST(RecallBackendPinned, FullRecallCampaignMatchesFirstOrderPanels) {
  // End to end through the campaign runner: the recall_rho scenario at
  // r = 1 must produce the same panels, point for point, as its
  // first-order twin.
  ScenarioSpec recall_spec = recall_twin_of(scenario_by_name("recall_rho"));
  ScenarioSpec reference_spec = recall_spec;
  reference_spec.recall_mode = false;

  const CampaignRunnerOptions options{.threads = 2};
  const ScenarioResult via_recall =
      CampaignRunner(options).run_one(recall_spec);
  const ScenarioResult via_reference =
      CampaignRunner(options).run_one(reference_spec);
  ASSERT_EQ(via_recall.panels.size(), via_reference.panels.size());
  ASSERT_FALSE(via_recall.panels.empty());
  for (std::size_t i = 0; i < via_recall.panels.size(); ++i) {
    SCOPED_TRACE("panel " + std::to_string(i));
    expect_identical_panel(via_recall.panels[i], via_reference.panels[i]);
  }
}

}  // namespace
}  // namespace rexspeed::engine
