// The shard frame codec: every frame type round-trips bit-exactly
// through encode_frame + FrameDecoder (whole, dribbled a byte at a time,
// and concatenated), and structural damage is always detected — the
// rejection matrix covers truncation, a flipped length prefix, payload
// corruption and unknown tags, plus the same "any single flipped bit"
// sweep the store's RXSC envelope is held to: no corrupted frame may
// ever decode.

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "rexspeed/engine/shard/frame.hpp"

namespace rexspeed::engine::shard {
namespace {

/// Decodes exactly one frame fed as a whole buffer.
std::optional<Frame> decode_one(const std::string& bytes) {
  FrameDecoder decoder;
  decoder.feed(bytes.data(), bytes.size());
  return decoder.next();
}

AssignFrame sample_assign() {
  AssignFrame assign;
  assign.task = 41;
  assign.panel = 2;
  assign.spec_text =
      "name=prop_case\nconfig=Hera/XScale\nrho=3.25\npoints=4\nparam=rho\n";
  return assign;
}

ResultFrame sample_result() {
  ResultFrame result;
  result.task = 41;
  result.seconds_per_point = 0.0078125;  // exact in binary on purpose
  result.blob = std::string("RXSC\x01pretend-blob\x00\xff", 18);
  return result;
}

TEST(ShardFrame, HelloRoundTrips) {
  HelloFrame hello;
  hello.protocol = kProtocolVersion;
  hello.worker = 7;
  const std::string bytes =
      encode_frame(FrameTag::kHello, encode_hello(hello));
  const std::optional<Frame> frame = decode_one(bytes);
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->tag, FrameTag::kHello);
  const HelloFrame back = decode_hello(frame->payload);
  EXPECT_EQ(back.protocol, hello.protocol);
  EXPECT_EQ(back.worker, hello.worker);
}

TEST(ShardFrame, AssignRoundTrips) {
  const AssignFrame assign = sample_assign();
  const std::string bytes =
      encode_frame(FrameTag::kAssign, encode_assign(assign));
  const std::optional<Frame> frame = decode_one(bytes);
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->tag, FrameTag::kAssign);
  const AssignFrame back = decode_assign(frame->payload);
  EXPECT_EQ(back.task, assign.task);
  EXPECT_EQ(back.panel, assign.panel);
  EXPECT_EQ(back.spec_text, assign.spec_text);
}

TEST(ShardFrame, SolveSentinelRoundTrips) {
  AssignFrame assign = sample_assign();
  assign.panel = kSolveTask;
  const AssignFrame back = decode_assign(
      decode_one(encode_frame(FrameTag::kAssign, encode_assign(assign)))
          ->payload);
  EXPECT_EQ(back.panel, kSolveTask);
}

TEST(ShardFrame, ResultRoundTripsWithBinaryBlob) {
  const ResultFrame result = sample_result();
  const std::string bytes =
      encode_frame(FrameTag::kResult, encode_result(result));
  const std::optional<Frame> frame = decode_one(bytes);
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->tag, FrameTag::kResult);
  const ResultFrame back = decode_result(frame->payload);
  EXPECT_EQ(back.task, result.task);
  EXPECT_EQ(back.seconds_per_point, result.seconds_per_point);
  EXPECT_EQ(back.blob, result.blob);  // embedded NUL and 0xff survive
}

TEST(ShardFrame, FailureRoundTrips) {
  FailureFrame failure;
  failure.task = 9;
  failure.message = "scenario 'x': rho must be positive and finite";
  const FailureFrame back = decode_failure(
      decode_one(encode_frame(FrameTag::kFailure, encode_failure(failure)))
          ->payload);
  EXPECT_EQ(back.task, failure.task);
  EXPECT_EQ(back.message, failure.message);
}

TEST(ShardFrame, ShutdownCarriesEmptyPayload) {
  const std::optional<Frame> frame =
      decode_one(encode_frame(FrameTag::kShutdown, ""));
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->tag, FrameTag::kShutdown);
  EXPECT_TRUE(frame->payload.empty());
}

TEST(ShardFrame, DecoderHandlesDribbledBytesAndConcatenatedFrames) {
  // A pipe delivers arbitrary chunkings; byte-at-a-time is the worst.
  const std::string first =
      encode_frame(FrameTag::kAssign, encode_assign(sample_assign()));
  const std::string second =
      encode_frame(FrameTag::kResult, encode_result(sample_result()));
  const std::string stream = first + second;
  FrameDecoder decoder;
  std::vector<Frame> seen;
  for (std::size_t i = 0; i < stream.size(); ++i) {
    decoder.feed(stream.data() + i, 1);
    while (std::optional<Frame> frame = decoder.next()) {
      seen.push_back(std::move(*frame));
    }
  }
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0].tag, FrameTag::kAssign);
  EXPECT_EQ(seen[1].tag, FrameTag::kResult);
  EXPECT_EQ(decode_result(seen[1].payload).blob, sample_result().blob);
  EXPECT_FALSE(decoder.mid_frame());
}

// ------------------------------------------------------ rejection matrix

TEST(ShardFrame, TruncatedFrameIsIncompleteNotAFrame) {
  const std::string bytes =
      encode_frame(FrameTag::kAssign, encode_assign(sample_assign()));
  for (const std::size_t keep :
       {std::size_t{0}, std::size_t{3}, std::size_t{8}, std::size_t{9},
        bytes.size() / 2, bytes.size() - 1}) {
    SCOPED_TRACE("first " + std::to_string(keep) + " bytes");
    FrameDecoder decoder;
    decoder.feed(bytes.data(), keep);
    EXPECT_EQ(decoder.next(), std::nullopt);
    EXPECT_EQ(decoder.mid_frame(), keep > 0);  // EOF here = died mid-frame
  }
}

TEST(ShardFrame, FlippedLengthPrefixNeverYieldsAFrame) {
  const std::string bytes =
      encode_frame(FrameTag::kResult, encode_result(sample_result()));
  // The length prefix is bytes [4, 8). Understatement breaks the
  // checksum; overstatement leaves the decoder waiting for bytes that
  // never come. Either way: no frame.
  for (std::size_t byte = 4; byte < 8; ++byte) {
    for (unsigned bit = 0; bit < 8; ++bit) {
      SCOPED_TRACE("byte " + std::to_string(byte) + " bit " +
                   std::to_string(bit));
      std::string corrupt = bytes;
      corrupt[byte] ^= static_cast<char>(1u << bit);
      FrameDecoder decoder;
      decoder.feed(corrupt.data(), corrupt.size());
      try {
        EXPECT_EQ(decoder.next(), std::nullopt);
      } catch (const FrameError&) {
        // detected outright — equally correct
      }
    }
  }
}

TEST(ShardFrame, CorruptedPayloadChecksumThrows) {
  const std::string bytes =
      encode_frame(FrameTag::kResult, encode_result(sample_result()));
  std::string corrupt = bytes;
  corrupt[bytes.size() / 2] ^= 0x20;  // inside the payload
  EXPECT_THROW((void)decode_one(corrupt), FrameError);
}

TEST(ShardFrame, UnknownFrameTagThrows) {
  // A tag from a future protocol version must be rejected at the frame
  // layer, not misdispatched — even when the frame is otherwise intact.
  // encode_frame computes a valid checksum over whatever tag it is
  // given, so this frame fails ONLY the tag-validity check.
  const std::string valid_checksum_bad_tag =
      encode_frame(static_cast<FrameTag>(250), "");
  EXPECT_THROW((void)decode_one(valid_checksum_bad_tag), FrameError);
  // A spliced-in tag without a recomputed checksum is caught earlier,
  // by the checksum — either way no unknown tag gets through.
  std::string spliced = encode_frame(FrameTag::kHello, "");
  spliced[8] = static_cast<char>(250);
  EXPECT_THROW((void)decode_one(spliced), FrameError);
}

TEST(ShardFrame, BadMagicThrows) {
  std::string bytes = encode_frame(FrameTag::kShutdown, "");
  bytes[0] = 'X';
  EXPECT_THROW((void)decode_one(bytes), FrameError);
}

TEST(ShardFrame, AnySingleFlippedBitNeverDecodesToAFrame) {
  // The frame-level analogue of the store's single-bit property: flip
  // any one bit of a valid frame and the decoder must either throw or
  // keep waiting — it must NEVER hand back a decoded frame. (An
  // overstated length prefix legitimately waits; everything else is a
  // checksum, magic or tag failure.)
  const std::string bytes =
      encode_frame(FrameTag::kAssign, encode_assign(sample_assign()));
  for (std::size_t byte = 0; byte < bytes.size(); ++byte) {
    for (unsigned bit = 0; bit < 8; ++bit) {
      std::string corrupt = bytes;
      corrupt[byte] ^= static_cast<char>(1u << bit);
      FrameDecoder decoder;
      decoder.feed(corrupt.data(), corrupt.size());
      try {
        const std::optional<Frame> frame = decoder.next();
        EXPECT_EQ(frame, std::nullopt)
            << "flipped bit " << bit << " of byte " << byte
            << " decoded to a frame";
      } catch (const FrameError&) {
        // detected — the common outcome
      }
    }
  }
}

TEST(ShardFrame, OversizedLengthPrefixIsRejectedBeforeAllocation) {
  // A garbage length above kMaxFramePayload must fail fast, not drive a
  // giant allocation while "waiting" for 4 GiB that never arrives.
  std::string bytes = encode_frame(FrameTag::kShutdown, "");
  bytes[4] = static_cast<char>(0xff);
  bytes[5] = static_cast<char>(0xff);
  bytes[6] = static_cast<char>(0xff);
  bytes[7] = static_cast<char>(0xff);
  EXPECT_THROW((void)decode_one(bytes), FrameError);
}

TEST(ShardFrame, PayloadDecodersRejectTrailingGarbage) {
  // decode_* enforce expect_end: a payload with extra bytes is damage,
  // not forward compatibility.
  EXPECT_THROW((void)decode_hello(encode_hello(HelloFrame{}) + "x"),
               FrameError);
  EXPECT_THROW(
      (void)decode_assign(encode_assign(sample_assign()) + std::string(1, 0)),
      FrameError);
  EXPECT_THROW((void)decode_result(std::string_view("")), FrameError);
}

}  // namespace
}  // namespace rexspeed::engine::shard
