#include "rexspeed/core/attempt_stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "test_util.hpp"

namespace rexspeed::core {
namespace {

using test::params_for;
using test::toy_params;

TEST(AttemptFailureProbability, SilentOnlyMatchesExposure) {
  ModelParams p = toy_params();
  p.lambda_silent = 1e-4;
  // Exposure W/σ = 2000 s: p = 1 − e^{−0.2}.
  EXPECT_NEAR(attempt_failure_probability(p, 1000.0, 0.5),
              -std::expm1(-0.2), 1e-12);
}

TEST(AttemptFailureProbability, FailstopSeesVerificationToo) {
  ModelParams p = toy_params();
  p.lambda_silent = 0.0;
  p.lambda_failstop = 1e-4;
  // Span (W+V)/σ = 2004 s.
  EXPECT_NEAR(attempt_failure_probability(p, 1000.0, 0.5),
              -std::expm1(-1e-4 * 2004.0), 1e-12);
}

TEST(AttemptFailureProbability, CombinedSourcesMultiply) {
  ModelParams p = toy_params();
  p.lambda_silent = 1e-4;
  p.lambda_failstop = 2e-4;
  const double span = 1002.0 / 0.5;
  const double exposure = 1000.0 / 0.5;
  EXPECT_NEAR(attempt_failure_probability(p, 1000.0, 0.5),
              -std::expm1(-(2e-4 * span + 1e-4 * exposure)), 1e-12);
}

TEST(AttemptFailureProbability, ZeroWhenErrorFree) {
  ModelParams p = toy_params();
  p.lambda_silent = 0.0;
  EXPECT_DOUBLE_EQ(attempt_failure_probability(p, 1000.0, 0.5), 0.0);
}

TEST(AttemptStats, GeometricRetryProcess) {
  ModelParams p = toy_params();
  p.lambda_silent = 1e-3;
  const AttemptStats stats = attempt_stats(p, 500.0, 0.5, 1.0);
  const double q1 = attempt_failure_probability(p, 500.0, 0.5);
  const double q2 = attempt_failure_probability(p, 500.0, 1.0);
  EXPECT_DOUBLE_EQ(stats.first_failure_probability, q1);
  EXPECT_DOUBLE_EQ(stats.retry_failure_probability, q2);
  EXPECT_NEAR(stats.expected_attempts, 1.0 + q1 / (1.0 - q2), 1e-15);
  EXPECT_NEAR(stats.expected_recoveries, stats.expected_attempts - 1.0,
              1e-15);
}

TEST(AttemptStats, FasterRetriesReduceExpectedAttempts) {
  ModelParams p = toy_params();
  p.lambda_silent = 1e-3;
  const AttemptStats slow = attempt_stats(p, 500.0, 0.5, 0.5);
  const AttemptStats fast = attempt_stats(p, 500.0, 0.5, 1.0);
  EXPECT_LT(fast.expected_attempts, slow.expected_attempts);
}

TEST(AttemptStats, ErrorFreeIsExactlyOneAttempt) {
  ModelParams p = toy_params();
  p.lambda_silent = 0.0;
  const AttemptStats stats = attempt_stats(p, 500.0, 0.5, 1.0);
  EXPECT_DOUBLE_EQ(stats.expected_attempts, 1.0);
  EXPECT_DOUBLE_EQ(stats.expected_recoveries, 0.0);
}

TEST(ProbabilityAttemptsExceed, GeometricTail) {
  ModelParams p = toy_params();
  p.lambda_silent = 1e-3;
  const double q1 = attempt_failure_probability(p, 500.0, 0.5);
  const double q2 = attempt_failure_probability(p, 500.0, 1.0);
  EXPECT_DOUBLE_EQ(probability_attempts_exceed(p, 500.0, 0.5, 1.0, 0), 1.0);
  EXPECT_NEAR(probability_attempts_exceed(p, 500.0, 0.5, 1.0, 1), q1,
              1e-15);
  EXPECT_NEAR(probability_attempts_exceed(p, 500.0, 0.5, 1.0, 3),
              q1 * q2 * q2, 1e-15);
}

TEST(AttemptStats, MatchesExpectedTimeDecomposition) {
  // Cross-check against the exact expectation: for silent errors only at
  // a single speed, E[attempts] = e^{λW/σ} (each attempt succeeds with
  // probability e^{−λW/σ}).
  const ModelParams p = params_for("Hera/XScale");
  const double w = 2764.0;
  const AttemptStats stats = attempt_stats(p, w, 0.4, 0.4);
  EXPECT_NEAR(stats.expected_attempts,
              std::exp(p.lambda_silent * w / 0.4), 1e-12);
}

TEST(AttemptStats, RejectsBadArguments) {
  const ModelParams p = toy_params();
  EXPECT_THROW(attempt_failure_probability(p, 0.0, 0.5),
               std::invalid_argument);
  EXPECT_THROW(attempt_failure_probability(p, 100.0, 0.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace rexspeed::core
