// The SIMD expansion-kernel tiers against their scalar reference: the
// pure tier-selection rule, the dispatch table, and — the load-bearing
// contract — bit-identical outputs from every available tier for all
// three kernel ops (build_pair_table, eval_pairs, classify_pairs) over
// every registered scenario's model parameters. A SIMD tier that rounds
// one intermediate differently from the scalar order fails here, not in
// a golden fixture three layers up.

#include "rexspeed/core/kernels/kernel_dispatch.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "rexspeed/core/bicrit_solver.hpp"
#include "rexspeed/core/expansion_soa.hpp"
#include "rexspeed/engine/scenario.hpp"
#include "rexspeed/sweep/figure_sweeps.hpp"
#include "test_util.hpp"

namespace rexspeed::core::kernels {
namespace {

TEST(KernelTierRule, ForceScalarBeatsEveryFeature) {
  EXPECT_EQ(choose_tier(true, true, true), KernelTier::kScalar);
  EXPECT_EQ(choose_tier(true, true, false), KernelTier::kScalar);
  EXPECT_EQ(choose_tier(true, false, true), KernelTier::kScalar);
  EXPECT_EQ(choose_tier(true, false, false), KernelTier::kScalar);
}

TEST(KernelTierRule, WidestAvailableTierWins) {
  EXPECT_EQ(choose_tier(false, false, false), KernelTier::kScalar);
  EXPECT_EQ(choose_tier(false, true, false), KernelTier::kAVX2);
  EXPECT_EQ(choose_tier(false, false, true), KernelTier::kNEON);
  // AVX2 and NEON never coexist on real hardware; the rule still has to
  // pick deterministically (the native tier of the probing architecture).
  EXPECT_EQ(choose_tier(false, true, true), KernelTier::kNEON);
}

TEST(KernelDispatch, ScalarTierIsAlwaysAvailable) {
  const std::vector<KernelTier> tiers = available_tiers();
  ASSERT_FALSE(tiers.empty());
  EXPECT_EQ(tiers.front(), KernelTier::kScalar);
  // The active tier is one of the available ones.
  bool listed = false;
  for (const KernelTier tier : tiers) {
    if (tier == active_tier()) listed = true;
  }
  EXPECT_TRUE(listed);
  EXPECT_STREQ(to_string(KernelTier::kScalar), "scalar");
  EXPECT_STREQ(ops_for_tier(KernelTier::kScalar).name, "scalar");
  EXPECT_STREQ(active_ops().name, to_string(active_tier()));
}

TEST(KernelDispatch, EveryOpIsWiredInEveryTier) {
  for (const KernelTier tier : available_tiers()) {
    const KernelOps& ops = ops_for_tier(tier);
    EXPECT_NE(ops.build_pair_table, nullptr) << ops.name;
    EXPECT_NE(ops.eval_pairs, nullptr) << ops.name;
    EXPECT_NE(ops.classify_pairs, nullptr) << ops.name;
  }
}

/// Bytewise comparison of two double arrays — EXPECT_EQ would call +0.0
/// and -0.0 equal and NaN unequal; the kernel contract is stricter (the
/// exact same bits, padding included).
void expect_same_bits(const AlignedDoubles& a, const AlignedDoubles& b,
                      const char* label, const char* tier) {
  ASSERT_EQ(a.size(), b.size()) << label << " (" << tier << ")";
  EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(double)), 0)
      << label << " differs from scalar in tier " << tier;
}

/// The distinct model-parameter bundles of the whole scenario registry —
/// every configuration × override combination a figure actually uses.
std::vector<core::ModelParams> registry_params() {
  std::vector<core::ModelParams> all;
  for (const engine::ScenarioSpec& spec : engine::scenario_registry()) {
    all.push_back(spec.resolve_params());
  }
  return all;
}

TEST(KernelBitIdentity, BuildPairTableMatchesScalarOnEveryTier) {
  for (const core::ModelParams& params : registry_params()) {
    const ExpansionSoA reference =
        ExpansionSoA::build_with(params, scalar_ops());
    ASSERT_EQ(reference.count, reference.k * reference.k);
    ASSERT_EQ(reference.padded % ExpansionSoA::kLane, 0u);
    for (const KernelTier tier : available_tiers()) {
      const KernelOps& ops = ops_for_tier(tier);
      const ExpansionSoA table = ExpansionSoA::build_with(params, ops);
      ASSERT_EQ(table.count, reference.count);
      ASSERT_EQ(table.padded, reference.padded);
      expect_same_bits(table.tx, reference.tx, "tx", ops.name);
      expect_same_bits(table.ty, reference.ty, "ty", ops.name);
      expect_same_bits(table.tz, reference.tz, "tz", ops.name);
      expect_same_bits(table.ex, reference.ex, "ex", ops.name);
      expect_same_bits(table.ey, reference.ey, "ey", ops.name);
      expect_same_bits(table.ez, reference.ez, "ez", ops.name);
      expect_same_bits(table.sigma1, reference.sigma1, "sigma1", ops.name);
      expect_same_bits(table.sigma2, reference.sigma2, "sigma2", ops.name);
      expect_same_bits(table.rho_min, reference.rho_min, "rho_min",
                       ops.name);
      expect_same_bits(table.we, reference.we, "we", ops.name);
      EXPECT_EQ(table.valid, reference.valid) << ops.name;
    }
  }
}

TEST(KernelBitIdentity, EvalPairsMatchesScalarOnEveryTier) {
  const NumericOptions numeric;
  // The bounds every registered ρ panel actually evaluates, plus the
  // infeasible low end where everything canonicalizes.
  const std::vector<double> rhos =
      sweep::default_grid(sweep::SweepParameter::kPerformanceBound, 17);
  for (const core::ModelParams& params : registry_params()) {
    const ExpansionSoA table = ExpansionSoA::build_with(params, scalar_ops());
    const std::size_t n = table.padded;
    AlignedDoubles ref_w(n), ref_lo(n), ref_hi(n), ref_e(n);
    AlignedDoubles w(n), lo(n), hi(n), e(n);
    std::vector<unsigned char> ref_f(n), f(n);
    for (const double rho : rhos) {
      scalar_ops().eval_pairs(table, rho, numeric.w_cap, ref_w.data(),
                              ref_lo.data(), ref_hi.data(), ref_e.data(),
                              ref_f.data());
      for (const KernelTier tier : available_tiers()) {
        const KernelOps& ops = ops_for_tier(tier);
        ops.eval_pairs(table, rho, numeric.w_cap, w.data(), lo.data(),
                       hi.data(), e.data(), f.data());
        expect_same_bits(w, ref_w, "w_opt", ops.name);
        expect_same_bits(lo, ref_lo, "w_min", ops.name);
        expect_same_bits(hi, ref_hi, "w_max", ops.name);
        expect_same_bits(e, ref_e, "energy", ops.name);
        EXPECT_EQ(f, ref_f) << "feasible differs in tier " << ops.name
                            << " at rho=" << rho;
      }
    }
  }
}

TEST(KernelBitIdentity, ClassifyPairsMatchesScalarOnEveryTier) {
  // The classifier consumes per-pair (ρ_min, time-at-W_E) arrays; the
  // SoA's rho_min column and time x coefficients are real solver data of
  // exactly that shape, including infinities from invalid pairs.
  const std::vector<double> rhos =
      sweep::default_grid(sweep::SweepParameter::kPerformanceBound, 17);
  for (const core::ModelParams& params : registry_params()) {
    const ExpansionSoA table = ExpansionSoA::build_with(params, scalar_ops());
    const std::size_t n = table.count;
    std::vector<unsigned char> reference(n), cls(n);
    for (const double rho : rhos) {
      scalar_ops().classify_pairs(table.rho_min.data(), table.tx.data(), n,
                                  rho, reference.data());
      for (unsigned char c : reference) EXPECT_LE(c, 2);
      for (const KernelTier tier : available_tiers()) {
        const KernelOps& ops = ops_for_tier(tier);
        ops.classify_pairs(table.rho_min.data(), table.tx.data(), n, rho,
                           cls.data());
        EXPECT_EQ(cls, reference)
            << "classification differs in tier " << ops.name
            << " at rho=" << rho;
      }
    }
  }
}

TEST(KernelBitIdentity, SolverAdoptionMatchesTheScalarBuild) {
  // The BiCritSolver materializes its cache from the active tier's build;
  // its expansion table must be the scalar build bit for bit (the whole
  // point of the scalar-reference contract: dispatch is invisible).
  const core::ModelParams params = test::params_for("Hera/XScale");
  const BiCritSolver solver(params);
  const ExpansionSoA reference = ExpansionSoA::build_with(params, scalar_ops());
  const ExpansionSoA& table = solver.expansion_table();
  ASSERT_EQ(table.count, reference.count);
  expect_same_bits(table.tx, reference.tx, "tx", "solver");
  expect_same_bits(table.ey, reference.ey, "ey", "solver");
  expect_same_bits(table.rho_min, reference.rho_min, "rho_min", "solver");
  EXPECT_EQ(table.valid, reference.valid);
}

}  // namespace
}  // namespace rexspeed::core::kernels
