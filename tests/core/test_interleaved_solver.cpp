// The cached interleaved solver: agreement with the per-pair
// optimize_interleaved baseline, the property tests of the optimizer
// (monotonicity in the search cap, infeasibility reporting, λf
// rejection), and the m = 1 reduction to the paper's exact BiCrit solve.

#include <gtest/gtest.h>

#include <stdexcept>

#include "rexspeed/core/bicrit_solver.hpp"
#include "rexspeed/core/interleaved.hpp"
#include "test_util.hpp"

namespace rexspeed::core {
namespace {

using test::params_for;
using test::toy_params;

/// The uncached reference: best pattern over every pair at the given cap.
InterleavedSolution best_by_rebuild(const ModelParams& params, double rho,
                                    unsigned max_segments) {
  InterleavedSolution best;
  bool first = true;
  for (const double sigma1 : params.speeds) {
    for (const double sigma2 : params.speeds) {
      const InterleavedSolution candidate =
          optimize_interleaved(params, rho, sigma1, sigma2, max_segments);
      if (!candidate.feasible) continue;
      if (first || candidate.energy_overhead < best.energy_overhead) {
        best = candidate;
        first = false;
      }
    }
  }
  return best;
}

TEST(InterleavedSolver, MatchesPerPairRebuildAcrossBounds) {
  // The cache must change the cost, not the answer: the boundary-snap
  // solve on cached expansions agrees with the golden-section rebuild at
  // every bound, tight and loose.
  ModelParams p = params_for("Hera/XScale");
  p.lambda_silent *= 100.0;
  p.verification_s = 2.0;
  const InterleavedSolver solver(p, 6);
  for (const double rho : {2.7, 3.0, 4.0, 6.0}) {
    SCOPED_TRACE(rho);
    const InterleavedSolution cached = solver.solve(rho);
    const InterleavedSolution rebuilt = best_by_rebuild(p, rho, 6);
    ASSERT_EQ(cached.feasible, rebuilt.feasible);
    if (!cached.feasible) continue;
    EXPECT_NEAR(cached.energy_overhead, rebuilt.energy_overhead,
                1e-6 * rebuilt.energy_overhead);
    EXPECT_LE(cached.time_overhead, rho * (1.0 + 1e-9));
    // The reported overheads are the curves evaluated at the reported W.
    EXPECT_NEAR(cached.energy_overhead,
                expected_energy_interleaved(p, cached.w_opt, cached.segments,
                                            cached.sigma1, cached.sigma2) /
                    cached.w_opt,
                1e-12 * cached.energy_overhead);
  }
}

TEST(InterleavedSolver, FixedSegmentCountMatchesRebuild) {
  ModelParams p = toy_params();
  p.lambda_silent = 1e-3;
  p.verification_s = 0.5;
  const InterleavedSolver solver(p, 5);
  for (unsigned m = 1; m <= 5; ++m) {
    SCOPED_TRACE(m);
    const InterleavedSolution cached = solver.solve_segments(4.0, m);
    InterleavedSolution rebuilt;
    bool first = true;
    for (const double s1 : p.speeds) {
      for (const double s2 : p.speeds) {
        // A cap-m optimizer restricted to exactly m: cap the search at m
        // and keep only candidates that chose m.
        const InterleavedSolution candidate =
            optimize_interleaved(p, 4.0, s1, s2, m);
        if (!candidate.feasible || candidate.segments != m) continue;
        if (first || candidate.energy_overhead < rebuilt.energy_overhead) {
          rebuilt = candidate;
          first = false;
        }
      }
    }
    if (!cached.feasible) continue;
    EXPECT_EQ(cached.segments, m);
    // The true fixed-m optimum can only match or beat any cap-m candidate
    // that happened to choose m (the cap search may prefer a smaller m
    // for every pair, in which case there is nothing to compare).
    if (!first) {
      EXPECT_LE(cached.energy_overhead,
                rebuilt.energy_overhead * (1.0 + 1e-6));
    }
  }
}

TEST(InterleavedSolver, SegmentsOneMatchesExactBiCritSolve) {
  // m = 1 through the interleaved machinery IS the paper's exact-opt
  // two-speed solve: same objective, same constraint, silent errors only.
  const ModelParams p = params_for("Hera/XScale");
  const InterleavedSolver solver(p, 1);
  const InterleavedSolution interleaved = solver.solve(3.0);
  const BiCritSolver bicrit(p);
  const BiCritSolution exact =
      bicrit.solve(3.0, SpeedPolicy::kTwoSpeed, EvalMode::kExactOptimize);
  ASSERT_TRUE(interleaved.feasible);
  ASSERT_TRUE(exact.feasible);
  EXPECT_EQ(interleaved.segments, 1u);
  EXPECT_EQ(interleaved.sigma1, exact.best.sigma1);
  EXPECT_EQ(interleaved.sigma2, exact.best.sigma2);
  EXPECT_NEAR(interleaved.energy_overhead, exact.best.energy_overhead,
              1e-6 * exact.best.energy_overhead);
  EXPECT_NEAR(interleaved.w_opt, exact.best.w_opt, 1e-4 * exact.best.w_opt);
}

TEST(OptimizeInterleaved, EnergyMonotoneNonIncreasingInMaxSegments) {
  // Property: a larger search cap can only help — the optimal energy
  // overhead is non-increasing in max_segments (the search sets nest).
  ModelParams p = params_for("Hera/XScale");
  p.lambda_silent = 1e-3;
  p.verification_s = 1.0;
  double previous = 0.0;
  for (unsigned cap = 1; cap <= 8; ++cap) {
    const InterleavedSolution sol =
        optimize_interleaved(p, 5.0, 0.6, 0.6, cap);
    ASSERT_TRUE(sol.feasible) << cap;
    EXPECT_LE(sol.segments, cap);
    if (cap > 1) {
      EXPECT_LE(sol.energy_overhead, previous * (1.0 + 1e-9)) << cap;
    }
    previous = sol.energy_overhead;
  }
}

TEST(InterleavedSolver, EnergyMonotoneNonIncreasingInMaxSegments) {
  // The same nesting property through the cached full-pair search.
  ModelParams p = params_for("Hera/XScale");
  p.lambda_silent = 1e-3;
  p.verification_s = 1.0;
  double previous = 0.0;
  for (unsigned cap = 1; cap <= 8; ++cap) {
    const InterleavedSolution sol = InterleavedSolver(p, cap).solve(5.0);
    ASSERT_TRUE(sol.feasible) << cap;
    if (cap > 1) {
      EXPECT_LE(sol.energy_overhead, previous * (1.0 + 1e-9)) << cap;
    }
    previous = sol.energy_overhead;
  }
}

TEST(OptimizeInterleaved, InfeasibleRhoReportedInfeasibleNeverThrows) {
  // Property: an unattainable bound is reported, not thrown — and the
  // solver agrees with the per-pair optimizer about where the horizon is.
  const ModelParams p = params_for("Hera/XScale");
  const InterleavedSolution per_pair =
      optimize_interleaved(p, 0.9, 1.0, 1.0, 4);
  EXPECT_FALSE(per_pair.feasible);
  EXPECT_EQ(per_pair.energy_overhead, 0.0);

  const InterleavedSolver solver(p, 4);
  const InterleavedSolution all_pairs = solver.solve(0.9);
  EXPECT_FALSE(all_pairs.feasible);
  EXPECT_EQ(all_pairs.energy_overhead, 0.0);
  EXPECT_FALSE(solver.solve_segments(0.9, 2).feasible);
}

TEST(InterleavedSolver, FailstopRatesAreRejectedAsDocumented) {
  // λf ≠ 0 throws, per the core/interleaved.hpp contract — at
  // construction for the solver, at call time for the free functions.
  ModelParams p = toy_params();
  p.lambda_failstop = 1e-5;
  EXPECT_THROW(InterleavedSolver(p, 4), std::invalid_argument);
  EXPECT_THROW((void)optimize_interleaved(p, 3.0, 0.5, 0.5, 4),
               std::invalid_argument);
}

TEST(InterleavedSolver, RejectsBadArguments) {
  const ModelParams p = toy_params();
  EXPECT_THROW(InterleavedSolver(p, 0), std::invalid_argument);
  const InterleavedSolver solver(p, 4);
  EXPECT_THROW((void)solver.solve(0.0), std::invalid_argument);
  EXPECT_THROW((void)solver.solve_segments(3.0, 0), std::invalid_argument);
  EXPECT_THROW((void)solver.solve_segments(3.0, 5), std::invalid_argument);
}

TEST(InterleavedSolver, CacheShapeCoversEveryPairAndCount) {
  const ModelParams p = toy_params();  // 3 speeds
  const InterleavedSolver solver(p, 4);
  EXPECT_EQ(solver.max_segments(), 4u);
  ASSERT_EQ(solver.expansions().size(), 3u * 3u * 4u);
  // Entry (i, j, m) sits at (i * K + j) * max_segments + (m - 1).
  const InterleavedExpansion& entry =
      solver.expansions()[(1 * 3 + 2) * 4 + (3 - 1)];
  EXPECT_EQ(entry.index1, 1);
  EXPECT_EQ(entry.index2, 2);
  EXPECT_EQ(entry.segments, 3u);
  EXPECT_EQ(entry.sigma1, p.speeds[1]);
  EXPECT_EQ(entry.sigma2, p.speeds[2]);
  // The cached thresholds are consistent: the energy optimum can never
  // beat the time optimum on the time axis.
  for (const InterleavedExpansion& expansion : solver.expansions()) {
    EXPECT_GE(expansion.time_at_we, expansion.rho_min);
    EXPECT_GT(expansion.w_time, 0.0);
    EXPECT_GT(expansion.w_energy, 0.0);
  }
}

}  // namespace
}  // namespace rexspeed::core
