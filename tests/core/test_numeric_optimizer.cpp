#include "rexspeed/core/numeric_optimizer.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "rexspeed/core/exact_expectations.hpp"
#include "rexspeed/core/first_order.hpp"
#include "test_util.hpp"

namespace rexspeed::core {
namespace {

using test::params_for;
using test::toy_params;

TEST(GoldenSection, FindsParabolaMinimum) {
  const auto f = [](double x) { return (x - 3.0) * (x - 3.0) + 1.0; };
  EXPECT_NEAR(golden_section_minimize(f, 0.0, 10.0), 3.0, 1e-7);
}

TEST(GoldenSection, FindsAsymmetricMinimum) {
  const auto f = [](double x) { return x + 100.0 / x; };  // min at 10
  EXPECT_NEAR(golden_section_minimize(f, 0.1, 1000.0), 10.0, 1e-5);
}

TEST(GoldenSection, HandlesBoundaryMinimum) {
  const auto f = [](double x) { return x; };
  EXPECT_NEAR(golden_section_minimize(f, 2.0, 5.0), 2.0, 1e-6);
}

TEST(GoldenSection, RejectsEmptyInterval) {
  const auto f = [](double x) { return x; };
  EXPECT_THROW(golden_section_minimize(f, 5.0, 5.0), std::invalid_argument);
}

TEST(ExactPair, AgreesWithFirstOrderAtSmallRates) {
  // With λW ≪ 1 the first-order Wopt and the exact optimum coincide.
  const ModelParams p = params_for("Hera/XScale");
  const ExactPairResult exact = optimize_exact_pair(p, 3.0, 0.4, 0.4);
  ASSERT_TRUE(exact.feasible);
  // The exact optimum sits ~1.2% below the first-order Wopt = 2764.
  EXPECT_NEAR(exact.w_opt, 2764.0, 45.0);
  EXPECT_NEAR(exact.energy_overhead, 416.8, 1.0);
  EXPECT_LE(exact.time_overhead, 3.0 + 1e-9);
}

TEST(ExactPair, OptimumBeatsGridSearch) {
  ModelParams p = toy_params();
  p.lambda_silent = 1e-3;  // strong curvature so the exact optimum matters
  const double rho = 5.0;
  const ExactPairResult result = optimize_exact_pair(p, rho, 0.5, 1.0);
  ASSERT_TRUE(result.feasible);
  for (double w = result.w_min * 1.001; w < result.w_max;
       w *= 1.05) {
    EXPECT_GE(energy_overhead(p, w, 0.5, 1.0),
              result.energy_overhead - 1e-9 * result.energy_overhead)
        << "w=" << w;
  }
}

TEST(ExactPair, RespectsTheBoundWhenActive) {
  // Tight ρ forces Wopt onto the feasibility boundary (ρ_min(0.8, 0.4)
  // ≈ 1.368 on Hera/XScale, so ρ = 1.4 leaves a sliver of feasibility).
  const ModelParams p = params_for("Hera/XScale");
  const double rho = 1.4;
  const ExactPairResult result = optimize_exact_pair(p, rho, 0.8, 0.4);
  ASSERT_TRUE(result.feasible);
  EXPECT_LE(result.time_overhead, rho + 1e-9);
}

TEST(ExactPair, InfeasibleWhenBoundBelowBestTime) {
  const ModelParams p = params_for("Hera/XScale");
  // 1/σ1 = 2.5 already exceeds ρ = 2 before any resilience overhead.
  const ExactPairResult result = optimize_exact_pair(p, 2.0, 0.4, 0.4);
  EXPECT_FALSE(result.feasible);
}

TEST(ExactPair, FeasibleIntervalBracketsOptimum) {
  const ModelParams p = params_for("Atlas/Crusoe");
  const ExactPairResult result = optimize_exact_pair(p, 3.0, 0.45, 0.6);
  ASSERT_TRUE(result.feasible);
  EXPECT_LE(result.w_min, result.w_opt);
  EXPECT_GE(result.w_max, result.w_opt);
  // Boundaries are on the constraint (or at the probe limits).
  EXPECT_NEAR(time_overhead(p, result.w_min, 0.45, 0.6), 3.0, 1e-3);
  EXPECT_NEAR(time_overhead(p, result.w_max, 0.45, 0.6), 3.0, 1e-3);
}

TEST(ExactPair, RejectsNonPositiveRho) {
  const ModelParams p = toy_params();
  EXPECT_THROW(optimize_exact_pair(p, 0.0, 0.5, 0.5), std::invalid_argument);
}

TEST(ExactMinimizers, TimeMinimizerMatchesFirstOrderForSmallLambda) {
  const ModelParams p = params_for("Coastal/XScale");  // λ = 2.01e-6
  const double numeric = minimize_exact_time_overhead(p, 0.6, 0.6);
  const double first_order = time_expansion(p, 0.6, 0.6).argmin();
  // Second-order effects pull the exact optimum ~2.3% below √(z/y) here.
  EXPECT_NEAR(numeric, first_order, 0.03 * first_order);
  EXPECT_LT(numeric, first_order);  // the shift is always downward
}

TEST(ExactMinimizers, EnergyMinimizerMatchesEq5ForSmallLambda) {
  const ModelParams p = params_for("Hera/XScale");
  const double numeric = minimize_exact_energy_overhead(p, 0.4, 0.4);
  EXPECT_NEAR(numeric, 2764.0, 45.0);
}

TEST(ExactMinimizers, WorkOutsideFirstOrderWindow) {
  // Fail-stop only with σ2 = 4σ1 > 2σ1: the first-order expansion is
  // invalid (§5.2) but the exact model still has a finite optimum.
  ModelParams p = toy_params();
  p.lambda_silent = 0.0;
  p.lambda_failstop = 1e-3;
  p.speeds = {0.25, 1.0};
  const double w_star = minimize_exact_time_overhead(p, 0.25, 1.0);
  EXPECT_GT(w_star, 0.0);
  EXPECT_TRUE(std::isfinite(w_star));
  const double f_star = time_overhead(p, w_star, 0.25, 1.0);
  for (const double w : {0.5 * w_star, 2.0 * w_star}) {
    EXPECT_GE(time_overhead(p, w, 0.25, 1.0), f_star - 1e-9 * f_star);
  }
}

}  // namespace
}  // namespace rexspeed::core
