#include "rexspeed/core/bicrit_solver.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <string>
#include <tuple>

#include "rexspeed/core/exact_expectations.hpp"
#include "test_util.hpp"

namespace rexspeed::core {
namespace {

using test::params_for;
using test::toy_params;

TEST(BiCritSolver, HeraXScaleRho3MatchesPaperTable) {
  // §4.2 second table: global best (0.4, 0.4), Wopt = 2764, E/W = 416.
  const BiCritSolver solver(params_for("Hera/XScale"));
  const BiCritSolution sol = solver.solve(3.0);
  ASSERT_TRUE(sol.feasible);
  EXPECT_DOUBLE_EQ(sol.best.sigma1, 0.4);
  EXPECT_DOUBLE_EQ(sol.best.sigma2, 0.4);
  EXPECT_NEAR(sol.best.w_opt, 2764.0, 1.0);
  EXPECT_NEAR(sol.best.energy_overhead, 416.8, 0.5);
}

TEST(BiCritSolver, HeraXScaleRho3RowEntries) {
  const BiCritSolver solver(params_for("Hera/XScale"));
  const BiCritSolution sol = solver.solve(3.0);
  // σ1 = 0.15 infeasible; every other row's best σ2 is 0.4.
  EXPECT_FALSE(sol.best_for_sigma1(0.15).feasible);
  const struct {
    double sigma1, w_opt, energy;
  } rows[] = {{0.4, 2764.0, 416.0},
              {0.6, 3639.0, 674.0},
              {0.8, 4627.0, 1082.0},
              {1.0, 5742.0, 1625.0}};
  for (const auto& row : rows) {
    const PairSolution r = sol.best_for_sigma1(row.sigma1);
    ASSERT_TRUE(r.feasible) << row.sigma1;
    EXPECT_DOUBLE_EQ(r.sigma2, 0.4) << row.sigma1;
    EXPECT_NEAR(r.w_opt, row.w_opt, 1.5) << row.sigma1;
    EXPECT_NEAR(r.energy_overhead, row.energy, 1.0) << row.sigma1;
  }
}

TEST(BiCritSolver, HeraXScaleRho8LowestSpeedBecomesFeasible) {
  // §4.2 first table: at ρ = 8, σ1 = 0.15 pairs with σ2 = 0.4,
  // Wopt = 1711, E/W = 466 — but (0.4, 0.4) still wins globally.
  const BiCritSolver solver(params_for("Hera/XScale"));
  const BiCritSolution sol = solver.solve(8.0);
  const PairSolution slow = sol.best_for_sigma1(0.15);
  ASSERT_TRUE(slow.feasible);
  EXPECT_DOUBLE_EQ(slow.sigma2, 0.4);
  EXPECT_NEAR(slow.w_opt, 1711.0, 1.0);
  EXPECT_NEAR(slow.energy_overhead, 466.0, 1.0);
  EXPECT_DOUBLE_EQ(sol.best.sigma1, 0.4);
  EXPECT_DOUBLE_EQ(sol.best.sigma2, 0.4);
}

TEST(BiCritSolver, HeraXScaleRho1775TwoDifferentSpeedsWin) {
  // §4.2 third table: the global best is the genuinely mixed pair
  // (0.6, 0.8) with Wopt = 4251, E/W = 690 — the paper's headline case.
  const BiCritSolver solver(params_for("Hera/XScale"));
  const BiCritSolution sol = solver.solve(1.775);
  ASSERT_TRUE(sol.feasible);
  EXPECT_DOUBLE_EQ(sol.best.sigma1, 0.6);
  EXPECT_DOUBLE_EQ(sol.best.sigma2, 0.8);
  EXPECT_NEAR(sol.best.w_opt, 4251.0, 1.5);
  EXPECT_NEAR(sol.best.energy_overhead, 690.0, 1.0);
  EXPECT_FALSE(sol.best_for_sigma1(0.4).feasible);
}

TEST(BiCritSolver, HeraXScaleRho14OnlyFastSpeedsSurvive) {
  // §4.2 fourth table.
  const BiCritSolver solver(params_for("Hera/XScale"));
  const BiCritSolution sol = solver.solve(1.4);
  ASSERT_TRUE(sol.feasible);
  EXPECT_DOUBLE_EQ(sol.best.sigma1, 0.8);
  EXPECT_DOUBLE_EQ(sol.best.sigma2, 0.4);
  EXPECT_NEAR(sol.best.w_opt, 4627.0, 1.0);
  EXPECT_NEAR(sol.best.energy_overhead, 1082.0, 1.0);
  EXPECT_FALSE(sol.best_for_sigma1(0.6).feasible);
  EXPECT_TRUE(sol.best_for_sigma1(1.0).feasible);
}

TEST(BiCritSolver, InfeasibleWhenBoundBelowFastestSpeed) {
  // Even σ = 1 has time overhead > 1; ρ = 0.99 admits nothing.
  const BiCritSolver solver(params_for("Hera/XScale"));
  EXPECT_FALSE(solver.solve(0.99).feasible);
}

TEST(BiCritSolver, SingleSpeedPolicyOnlyConsidersDiagonal) {
  const BiCritSolver solver(params_for("Atlas/Crusoe"));
  const BiCritSolution sol = solver.solve(3.0, SpeedPolicy::kSingleSpeed);
  ASSERT_TRUE(sol.feasible);
  EXPECT_EQ(sol.pairs.size(), 5u);
  for (const auto& pair : sol.pairs) {
    EXPECT_DOUBLE_EQ(pair.sigma1, pair.sigma2);
  }
}

TEST(BiCritSolver, TwoSpeedEnumeratesAllPairs) {
  const BiCritSolver solver(params_for("Atlas/Crusoe"));
  const BiCritSolution sol = solver.solve(3.0, SpeedPolicy::kTwoSpeed);
  EXPECT_EQ(sol.pairs.size(), 25u);
}

TEST(BiCritSolver, PairFeasibilityMatchesRhoMin) {
  const ModelParams p = params_for("Coastal/XScale");
  const BiCritSolver solver(p);
  for (const double s1 : p.speeds) {
    for (const double s2 : p.speeds) {
      const PairSolution at_least =
          solver.solve_pair(rho_min_eq6(p, s1, s2) + 1e-6, s1, s2,
                            EvalMode::kFirstOrder);
      EXPECT_TRUE(at_least.feasible) << s1 << "," << s2;
      const PairSolution below =
          solver.solve_pair(rho_min_eq6(p, s1, s2) - 1e-6, s1, s2,
                            EvalMode::kFirstOrder);
      EXPECT_FALSE(below.feasible) << s1 << "," << s2;
    }
  }
}

TEST(BiCritSolver, WoptIsClampedIntoFeasibleInterval) {
  const BiCritSolver solver(params_for("Hera/XScale"));
  // Tight bound: the unconstrained We violates it, so Wopt = W1 or W2.
  const PairSolution sol =
      solver.solve_pair(1.4, 0.8, 0.4, EvalMode::kFirstOrder);
  ASSERT_TRUE(sol.feasible);
  EXPECT_GE(sol.w_opt, sol.w_min - 1e-9);
  EXPECT_LE(sol.w_opt, sol.w_max + 1e-9);
  EXPECT_LE(sol.time_overhead, 1.4 + 1e-9);
}

TEST(BiCritSolver, FirstOrderWoptBeatsGridWithinInterval) {
  const BiCritSolver solver(params_for("Atlas/Crusoe"));
  const PairSolution sol =
      solver.solve_pair(3.0, 0.45, 0.6, EvalMode::kFirstOrder);
  ASSERT_TRUE(sol.feasible);
  const OverheadExpansion energy =
      energy_expansion(solver.params(), 0.45, 0.6);
  const double best = energy.evaluate(sol.w_opt);
  for (double w = sol.w_min * 1.01; w < sol.w_max; w *= 1.1) {
    EXPECT_GE(energy.evaluate(w), best - 1e-12 * best);
  }
}

TEST(BiCritSolver, ExactEvaluationStaysCloseToFirstOrder) {
  const BiCritSolver solver(params_for("Hera/XScale"));
  const PairSolution fo =
      solver.solve_pair(3.0, 0.4, 0.4, EvalMode::kFirstOrder);
  const PairSolution exact =
      solver.solve_pair(3.0, 0.4, 0.4, EvalMode::kExactEvaluation);
  ASSERT_TRUE(fo.feasible);
  ASSERT_TRUE(exact.feasible);
  EXPECT_DOUBLE_EQ(fo.w_opt, exact.w_opt);  // same Theorem-1 pattern
  EXPECT_NEAR(exact.energy_overhead, fo.energy_overhead,
              1e-3 * fo.energy_overhead);
}

TEST(BiCritSolver, ExactOptimizeNeverWorseThanExactEvaluation) {
  const ModelParams p = params_for("Atlas/Crusoe");
  const BiCritSolver solver(p);
  for (const double s1 : {0.45, 0.6}) {
    for (const double s2 : {0.45, 0.8}) {
      const PairSolution eval =
          solver.solve_pair(3.0, s1, s2, EvalMode::kExactEvaluation);
      const PairSolution opt =
          solver.solve_pair(3.0, s1, s2, EvalMode::kExactOptimize);
      ASSERT_TRUE(eval.feasible);
      ASSERT_TRUE(opt.feasible);
      EXPECT_LE(opt.energy_overhead,
                eval.energy_overhead + 1e-9 * eval.energy_overhead);
    }
  }
}

TEST(BiCritSolver, MinRhoSolutionIsTheBestEffortPolicy) {
  ModelParams p = params_for("Atlas/Crusoe");
  p.lambda_silent = 2e-3;  // beyond the ρ = 3 feasibility horizon
  const BiCritSolver solver(p);
  ASSERT_FALSE(solver.solve(3.0).feasible);
  const PairSolution fallback = solver.min_rho_solution();
  ASSERT_TRUE(fallback.feasible);
  // The best-effort pair pins the fastest first speed (Figure 4's high-λ
  // behaviour) and its tangency time overhead equals its ρ_min.
  EXPECT_DOUBLE_EQ(fallback.sigma1, 1.0);
  EXPECT_NEAR(fallback.time_overhead, fallback.rho_min,
              1e-9 * fallback.rho_min);
  // No pair can achieve a smaller bound.
  for (const double s1 : p.speeds) {
    for (const double s2 : p.speeds) {
      EXPECT_GE(rho_min(time_expansion(p, s1, s2)),
                fallback.rho_min * (1.0 - 1e-12));
    }
  }
}

TEST(BiCritSolver, MinRhoSolutionSingleSpeedRestriction) {
  ModelParams p = params_for("Atlas/Crusoe");
  p.lambda_silent = 2e-3;
  const BiCritSolver solver(p);
  const PairSolution fallback =
      solver.min_rho_solution(SpeedPolicy::kSingleSpeed);
  ASSERT_TRUE(fallback.feasible);
  EXPECT_DOUBLE_EQ(fallback.sigma1, fallback.sigma2);
}

TEST(BiCritSolver, RejectsNonPositiveRho) {
  const BiCritSolver solver(toy_params());
  EXPECT_THROW(solver.solve(0.0), std::invalid_argument);
  EXPECT_THROW(solver.solve(-1.0), std::invalid_argument);
}

TEST(BiCritSolver, RejectsInvalidParams) {
  ModelParams bad = toy_params();
  bad.speeds.clear();
  EXPECT_THROW(BiCritSolver{bad}, std::invalid_argument);
}

TEST(BiCritSolver, PairsCarrySpeedSetIndices) {
  const ModelParams p = params_for("Atlas/Crusoe");
  const BiCritSolver solver(p);
  const BiCritSolution sol = solver.solve(3.0);
  ASSERT_EQ(sol.pairs.size(), p.speeds.size() * p.speeds.size());
  for (std::size_t i = 0; i < p.speeds.size(); ++i) {
    for (std::size_t j = 0; j < p.speeds.size(); ++j) {
      const auto& pair = sol.pairs[i * p.speeds.size() + j];
      EXPECT_EQ(pair.sigma1_index, static_cast<int>(i));
      EXPECT_EQ(pair.sigma2_index, static_cast<int>(j));
      EXPECT_DOUBLE_EQ(pair.sigma1, p.speeds[i]);
      EXPECT_DOUBLE_EQ(pair.sigma2, p.speeds[j]);
    }
  }
  EXPECT_GE(sol.best.sigma1_index, 0);
  EXPECT_GE(sol.best.sigma2_index, 0);
}

TEST(BiCritSolver, SingleSpeedFilterComparesIndicesNotDoubles) {
  const BiCritSolver solver(params_for("Hera/XScale"));
  const BiCritSolution sol = solver.solve(3.0, SpeedPolicy::kSingleSpeed);
  for (const auto& pair : sol.pairs) {
    EXPECT_EQ(pair.sigma1_index, pair.sigma2_index);
  }
  const PairSolution fallback =
      solver.min_rho_solution(SpeedPolicy::kSingleSpeed);
  ASSERT_TRUE(fallback.feasible);
  EXPECT_EQ(fallback.sigma1_index, fallback.sigma2_index);
}

TEST(BiCritSolver, BestForSigma1IndexMatchesValueLookup) {
  const ModelParams p = params_for("Hera/XScale");
  const BiCritSolver solver(p);
  const BiCritSolution sol = solver.solve(3.0);
  for (std::size_t i = 0; i < p.speeds.size(); ++i) {
    const PairSolution by_index = sol.best_for_sigma1_index(i);
    const PairSolution by_value = sol.best_for_sigma1(p.speeds[i]);
    EXPECT_EQ(by_index.feasible, by_value.feasible);
    EXPECT_DOUBLE_EQ(by_index.sigma1, by_value.sigma1);
    if (by_index.feasible) {
      EXPECT_EQ(by_index.sigma2_index, by_value.sigma2_index);
      EXPECT_EQ(by_index.w_opt, by_value.w_opt);
    }
  }
}

TEST(BiCritSolver, BestForSigma1ToleratesInexactSpeedValues) {
  // The historical implementation compared doubles with !=, so a value
  // that went through any arithmetic could silently select nothing.
  const ModelParams p = params_for("Hera/XScale");
  const BiCritSolver solver(p);
  const BiCritSolution sol = solver.solve(3.0);
  const double perturbed = 0.05 + 0.35;  // 0.4 with representation error
  ASSERT_NE(perturbed, 0.4);
  const PairSolution row = sol.best_for_sigma1(perturbed);
  ASSERT_TRUE(row.feasible);
  EXPECT_DOUBLE_EQ(row.sigma1, 0.4);
  EXPECT_DOUBLE_EQ(row.sigma2, 0.4);
}

TEST(BiCritSolver, SolvePairOutsideSpeedSetStillWorks) {
  // Out-of-set speeds take the uncached path and must agree with the
  // cached path on set members.
  const ModelParams p = params_for("Hera/XScale");
  const BiCritSolver solver(p);
  const PairSolution cached =
      solver.solve_pair(3.0, 0.4, 0.6, EvalMode::kFirstOrder);
  EXPECT_EQ(cached.sigma1_index, 1);
  EXPECT_EQ(cached.sigma2_index, 2);
  const PairSolution foreign =
      solver.solve_pair(3.0, 0.5, 0.7, EvalMode::kFirstOrder);
  EXPECT_EQ(foreign.sigma1_index, -1);
  EXPECT_EQ(foreign.sigma2_index, -1);
  ASSERT_TRUE(foreign.feasible);
  EXPECT_GT(foreign.w_opt, 0.0);
}

// ---------------------------------------------------------------------------
// Property sweep: across every paper configuration and a grid of bounds,
// the two-speed optimum never loses to the single-speed baseline, and all
// reported solutions respect their constraints.
// ---------------------------------------------------------------------------

class SolverProperties
    : public ::testing::TestWithParam<std::tuple<std::string, double>> {};

TEST_P(SolverProperties, TwoSpeedNeverWorseAndConstraintsHold) {
  const auto& [name, rho] = GetParam();
  const BiCritSolver solver(params_for(name));
  const BiCritSolution two = solver.solve(rho, SpeedPolicy::kTwoSpeed);
  const BiCritSolution one = solver.solve(rho, SpeedPolicy::kSingleSpeed);

  if (one.feasible) {
    ASSERT_TRUE(two.feasible);  // the diagonal is a subset of all pairs
    EXPECT_LE(two.best.energy_overhead,
              one.best.energy_overhead * (1.0 + 1e-12));
  }
  if (two.feasible) {
    EXPECT_LE(two.best.time_overhead, rho * (1.0 + 1e-9));
    EXPECT_GT(two.best.w_opt, 0.0);
    for (const auto& pair : two.pairs) {
      if (!pair.feasible) continue;
      EXPECT_LE(pair.time_overhead, rho * (1.0 + 1e-9));
      EXPECT_GE(pair.energy_overhead,
                two.best.energy_overhead * (1.0 - 1e-12));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigsAndBounds, SolverProperties,
    ::testing::Combine(
        ::testing::Values("Hera/XScale", "Atlas/XScale", "Coastal/XScale",
                          "CoastalSSD/XScale", "Hera/Crusoe", "Atlas/Crusoe",
                          "Coastal/Crusoe", "CoastalSSD/Crusoe"),
        ::testing::Values(1.2, 1.5, 2.0, 3.0, 8.0)),
    [](const auto& info) {
      std::string name = std::get<0>(info.param);
      for (auto& ch : name) {
        if (ch == '/') ch = '_';
      }
      const double rho = std::get<1>(info.param);
      return name + "_rho_" + std::to_string(static_cast<int>(rho * 1000));
    });

}  // namespace
}  // namespace rexspeed::core
