#include "rexspeed/core/second_order.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "rexspeed/core/exact_expectations.hpp"
#include "rexspeed/core/numeric_optimizer.hpp"
#include "test_util.hpp"

namespace rexspeed::core {
namespace {

ModelParams failstop_params(double lambda) {
  ModelParams p = test::toy_params();
  p.lambda_silent = 0.0;
  p.lambda_failstop = lambda;
  p.checkpoint_s = 60.0;
  p.recovery_s = 60.0;
  p.verification_s = 0.0;
  return p;
}

TEST(SecondOrder, LinearCoefficientVanishesAtDoubleSpeed) {
  const ModelParams p = failstop_params(1e-4);
  const SecondOrderExpansion exp = time_second_order_failstop(p, 0.5, 1.0);
  EXPECT_NEAR(exp.y1, 0.0, 1e-18);
  // y2 = λ²/(24 σ1³) at σ2 = 2σ1 (paper's T/W = 1/σ + C/W + λ²W²/24σ³).
  EXPECT_NEAR(exp.y2, 1e-8 / (24.0 * 0.125), 1e-15);
  EXPECT_NEAR(exp.x, 1.0 / 0.5 + 1e-4 * 60.0 / 0.5, 1e-12);
  EXPECT_DOUBLE_EQ(exp.z, 60.0);
}

TEST(SecondOrder, EvaluateCombinesAllTerms) {
  const SecondOrderExpansion exp{.x = 1.0, .z = 10.0, .y1 = 0.1, .y2 = 0.01};
  EXPECT_DOUBLE_EQ(exp.evaluate(10.0), 1.0 + 1.0 + 1.0 + 1.0);
}

TEST(SecondOrder, Theorem2ClosedForm) {
  // Wopt = (12C/λ²)^{1/3} σ.
  EXPECT_NEAR(theorem2_pattern_size(60.0, 1e-4, 0.5),
              std::cbrt(12.0 * 60.0 / 1e-8) * 0.5, 1e-6);
}

TEST(SecondOrder, MinimizerMatchesTheorem2AtDoubleSpeed) {
  for (const double lambda : {1e-5, 1e-4, 1e-3}) {
    const ModelParams p = failstop_params(lambda);
    const SecondOrderExpansion exp = time_second_order_failstop(p, 0.5, 1.0);
    const double numeric = minimize_second_order(exp);
    const double closed = theorem2_pattern_size(p.checkpoint_s, lambda, 0.5);
    EXPECT_NEAR(numeric, closed, 1e-6 * closed) << "lambda=" << lambda;
  }
}

TEST(SecondOrder, Theorem2ScalesAsLambdaToMinusTwoThirds) {
  const double w1 = theorem2_pattern_size(60.0, 1e-4, 0.5);
  const double w2 = theorem2_pattern_size(60.0, 1e-4 / 8.0, 0.5);
  // λ → λ/8 ⇒ Wopt × 8^{2/3} = 4.
  EXPECT_NEAR(w2 / w1, 4.0, 1e-9);
}

TEST(SecondOrder, MinimizerMatchesGridSearchAwayFromDoubleSpeed) {
  const ModelParams p = failstop_params(1e-4);
  const SecondOrderExpansion exp = time_second_order_failstop(p, 0.5, 0.8);
  ASSERT_GT(exp.y1, 0.0);
  ASSERT_GT(exp.y2, 0.0);
  const double w_star = minimize_second_order(exp);
  const double f_star = exp.evaluate(w_star);
  for (double w = 0.5 * w_star; w <= 2.0 * w_star; w += 0.01 * w_star) {
    EXPECT_GE(exp.evaluate(w), f_star - 1e-12 * f_star);
  }
}

TEST(SecondOrder, DegenerateQuadraticFallsBackToFirstOrder) {
  const SecondOrderExpansion exp{.x = 1.0, .z = 16.0, .y1 = 4.0, .y2 = 0.0};
  EXPECT_NEAR(minimize_second_order(exp), 2.0, 1e-12);
}

TEST(SecondOrderSilent, CoefficientsMatchHandDerivation) {
  const ModelParams p = test::params_for("Hera/XScale");
  const double lam = p.lambda_silent;
  const double s1 = 0.4;
  const double s2 = 0.8;
  const SecondOrderExpansion exp = time_second_order_silent(p, s1, s2);
  const double rv = p.recovery_s + p.verification_s / s2;
  EXPECT_NEAR(exp.x, 1.0 / s1 + lam * rv / s1, 1e-15);
  EXPECT_NEAR(exp.z, p.checkpoint_s + p.verification_s / s1, 1e-12);
  EXPECT_NEAR(exp.y1,
              lam / (s1 * s2) +
                  lam * lam * rv * (1.0 / (s1 * s2) - 0.5 / (s1 * s1)),
              1e-18);
  EXPECT_NEAR(exp.y2,
              lam * lam * (1.0 / (s1 * s2 * s2) - 0.5 / (s1 * s1 * s2)),
              1e-22);
}

TEST(SecondOrderSilent, TighterThanFirstOrderAgainstExact) {
  // The second-order expansion must approximate the exact time overhead
  // better than the first-order one at every probe, and its minimizer
  // must land closer to the exact minimizer.
  ModelParams p = test::params_for("Hera/XScale");
  p.lambda_silent *= 100.0;  // large λW so the orders separate
  const double s1 = 0.4;
  const double s2 = 0.4;
  const SecondOrderExpansion second = time_second_order_silent(p, s1, s2);
  // First-order = second-order with the quadratic correction dropped.
  const SecondOrderExpansion first{
      .x = second.x, .z = second.z,
      .y1 = p.lambda_silent / (s1 * s2), .y2 = 0.0};
  for (const double w : {200.0, 400.0, 800.0}) {
    const double exact =
        core::expected_time_single_speed_silent(p, w, s1) / w;
    EXPECT_LT(std::abs(second.evaluate(w) - exact),
              std::abs(first.evaluate(w) - exact))
        << "w=" << w;
  }
}

TEST(SecondOrderSilent, MinimizerCloserToExactOptimum) {
  ModelParams p = test::params_for("Hera/XScale");
  p.lambda_silent *= 100.0;
  const SecondOrderExpansion second = time_second_order_silent(p, 0.4, 0.4);
  ASSERT_GT(second.y2, 0.0);  // σ2 < 2σ1 keeps the quadratic positive
  const double w2 = minimize_second_order(second);
  const double w1 = std::sqrt(second.z / (p.lambda_silent / 0.16));
  const double exact = core::minimize_exact_time_overhead(p, 0.4, 0.4);
  EXPECT_LT(std::abs(w2 - exact), std::abs(w1 - exact));
}

TEST(SecondOrderSilent, QuadraticSignFlipsAtDoubleSpeed) {
  // y2 ∝ 1/σ2 − 1/(2σ1): positive below σ2 = 2σ1, negative above — the
  // same threshold as the fail-stop linear term.
  ModelParams p = test::toy_params();
  p.speeds = {0.25, 0.49, 0.51, 1.0};
  EXPECT_GT(time_second_order_silent(p, 0.25, 0.49).y2, 0.0);
  EXPECT_LT(time_second_order_silent(p, 0.25, 0.51).y2, 0.0);
}

TEST(SecondOrderSilent, RejectsErrorFreeModel) {
  ModelParams p = test::toy_params();
  p.lambda_silent = 0.0;
  EXPECT_THROW(time_second_order_silent(p, 0.5, 1.0),
               std::invalid_argument);
}

TEST(SecondOrder, RejectsInvalidInputs) {
  const ModelParams silent = test::toy_params();  // λf = 0
  EXPECT_THROW(time_second_order_failstop(silent, 0.5, 1.0),
               std::invalid_argument);
  EXPECT_THROW(theorem2_pattern_size(0.0, 1e-4, 0.5), std::invalid_argument);
  EXPECT_THROW(theorem2_pattern_size(60.0, 0.0, 0.5), std::invalid_argument);
  const SecondOrderExpansion unbounded{
      .x = 1.0, .z = 10.0, .y1 = -1.0, .y2 = 0.0};
  EXPECT_THROW(minimize_second_order(unbounded), std::invalid_argument);
}

}  // namespace
}  // namespace rexspeed::core
