#include "rexspeed/core/campaign.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "test_util.hpp"

namespace rexspeed::core {
namespace {

using test::params_for;

TEST(CampaignPlan, ScalesPatternOverheadsToTheApplication) {
  const ModelParams p = params_for("Hera/XScale");
  const double wbase = 30.0 * 86400.0;
  const CampaignPlan plan = plan_campaign(p, 3.0, wbase);
  ASSERT_TRUE(plan.feasible);
  EXPECT_DOUBLE_EQ(plan.total_work, wbase);
  EXPECT_NEAR(plan.patterns, wbase / plan.policy.w_opt, 1e-9);
  EXPECT_NEAR(plan.expected_makespan_s,
              plan.policy.time_overhead * wbase, 1e-6);
  EXPECT_NEAR(plan.expected_energy_mws,
              plan.policy.energy_overhead * wbase, 1e-3);
  EXPECT_NEAR(plan.ideal_makespan_s, wbase / plan.policy.sigma1, 1e-6);
  EXPECT_DOUBLE_EQ(plan.expected_checkpoints, plan.patterns);
}

TEST(CampaignPlan, DegradationRespectsBound) {
  const ModelParams p = params_for("Atlas/Crusoe");
  const CampaignPlan plan = plan_campaign(p, 3.0, 1e7);
  ASSERT_TRUE(plan.feasible);
  // T/W ≤ ρ ⇔ makespan ≤ ρ · Wbase.
  EXPECT_LE(plan.expected_makespan_s, 3.0 * 1e7 * (1.0 + 1e-9));
}

TEST(CampaignPlan, ExpectedErrorsScaleWithPatterns) {
  const ModelParams p = params_for("Hera/XScale");
  const CampaignPlan small = plan_campaign(p, 3.0, 1e6);
  const CampaignPlan large = plan_campaign(p, 3.0, 2e6);
  ASSERT_TRUE(small.feasible);
  ASSERT_TRUE(large.feasible);
  EXPECT_NEAR(large.expected_errors, 2.0 * small.expected_errors, 1e-9);
}

TEST(CampaignPlan, InfeasibleBoundYieldsInfeasiblePlan) {
  const ModelParams p = params_for("Hera/XScale");
  const CampaignPlan plan = plan_campaign(p, 0.9, 1e6);
  EXPECT_FALSE(plan.feasible);
}

TEST(CampaignPlan, SingleSpeedPolicyOption) {
  const ModelParams p = params_for("Hera/XScale");
  const CampaignPlan plan =
      plan_campaign(p, 3.0, 1e6, SpeedPolicy::kSingleSpeed);
  ASSERT_TRUE(plan.feasible);
  EXPECT_DOUBLE_EQ(plan.policy.sigma1, plan.policy.sigma2);
}

TEST(CampaignPlan, FromSolutionMatchesSolve) {
  const ModelParams p = params_for("Coastal/XScale");
  const BiCritSolver solver(p);
  const auto sol = solver.solve(2.0);
  ASSERT_TRUE(sol.feasible);
  const CampaignPlan direct = plan_campaign(p, 2.0, 5e6);
  const CampaignPlan via_solution =
      plan_campaign_from_solution(p, sol.best, 5e6);
  EXPECT_DOUBLE_EQ(direct.expected_makespan_s,
                   via_solution.expected_makespan_s);
  EXPECT_DOUBLE_EQ(direct.expected_energy_mws,
                   via_solution.expected_energy_mws);
}

TEST(CampaignPlan, RejectsNonPositiveWork) {
  const ModelParams p = params_for("Hera/XScale");
  EXPECT_THROW(plan_campaign(p, 3.0, 0.0), std::invalid_argument);
}

}  // namespace
}  // namespace rexspeed::core
