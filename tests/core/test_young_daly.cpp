#include "rexspeed/core/young_daly.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace rexspeed::core {
namespace {

TEST(YoungPeriod, Formula) {
  EXPECT_NEAR(young_period(300.0, 1e-5), std::sqrt(2.0 * 300.0 / 1e-5),
              1e-9);
}

TEST(YoungPeriod, ScalesAsInverseSqrtOfRate) {
  const double t1 = young_period(300.0, 1e-5);
  const double t2 = young_period(300.0, 4e-5);
  EXPECT_NEAR(t1 / t2, 2.0, 1e-12);
}

TEST(DalyPeriod, CloseToYoungForSmallCheckpointCost) {
  // C ≪ μ: Daly's correction is small.
  const double young = young_period(10.0, 1e-6);
  const double daly = daly_period(10.0, 1e-6);
  EXPECT_NEAR(daly, young, 0.01 * young);
  EXPECT_LT(daly, young);  // the −C correction dominates the + terms
}

TEST(DalyPeriod, SaturatesAtMtbfForHugeCheckpointCost) {
  EXPECT_DOUBLE_EQ(daly_period(2000.0, 1e-3), 1000.0);  // C ≥ 2μ ⇒ μ
}

TEST(SilentVerifiedPeriod, Formula) {
  // √((V + C)/λ) — no factor 2 (paper §1 explains the missing factor).
  EXPECT_NEAR(silent_verified_period(300.0, 15.4, 3.38e-6),
              std::sqrt(315.4 / 3.38e-6), 1e-6);
}

TEST(SilentVerifiedPeriod, ShorterThanYoungEquivalent) {
  // For equal costs, silent-error periods are shorter by the √2 factor:
  // a full period is always lost, not half on average.
  const double silent = silent_verified_period(300.0, 0.0, 1e-5);
  const double failstop = young_period(300.0, 1e-5);
  EXPECT_NEAR(failstop / silent, std::sqrt(2.0), 1e-12);
}

TEST(Periods, RejectBadArguments) {
  EXPECT_THROW(young_period(0.0, 1e-5), std::invalid_argument);
  EXPECT_THROW(young_period(300.0, 0.0), std::invalid_argument);
  EXPECT_THROW(daly_period(-1.0, 1e-5), std::invalid_argument);
  EXPECT_THROW(silent_verified_period(300.0, -1.0, 1e-5),
               std::invalid_argument);
}

}  // namespace
}  // namespace rexspeed::core
