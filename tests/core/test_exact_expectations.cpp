#include "rexspeed/core/exact_expectations.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <stdexcept>
#include <string>

#include "test_util.hpp"

namespace rexspeed::core {
namespace {

using test::params_for;
using test::toy_params;

// ---------------------------------------------------------------------------
// Independent reference: solves the paper's recursive equations numerically,
// integrating the fail-stop arrival density with composite Simpson rather
// than using any closed form. Slow but formula-free.
// ---------------------------------------------------------------------------

double simpson(const std::function<double(double)>& f, double lo, double hi,
               int intervals) {
  const double h = (hi - lo) / intervals;
  double sum = f(lo) + f(hi);
  for (int i = 1; i < intervals; ++i) {
    sum += f(lo + i * h) * (i % 2 == 1 ? 4.0 : 2.0);
  }
  return sum * h / 3.0;
}

double numeric_expected_time(const ModelParams& p, double work, double s1,
                             double s2) {
  const double lf = p.lambda_failstop;
  const double ls = p.lambda_silent;
  const auto attempt = [&](double sigma, double tail) {
    const double span = (work + p.verification_s) / sigma;
    const double ps = -std::expm1(-ls * work / sigma);
    double value = 0.0;
    if (lf > 0.0) {
      value += simpson(
          [&](double t) {
            return lf * std::exp(-lf * t) * (t + p.recovery_s + tail);
          },
          0.0, span, 4000);
    }
    const double survive = std::exp(-lf * span);
    value += survive * (span + ps * (p.recovery_s + tail) +
                        (1.0 - ps) * p.checkpoint_s);
    return value;
  };
  // Tail (all attempts at s2): fixed point of T2 = attempt(s2, T2). The
  // mapping is affine in the tail, so two evaluations determine it.
  const double a0 = attempt(s2, 0.0);
  const double a1 = attempt(s2, 1.0);
  const double q = a1 - a0;  // failure probability (coefficient of tail)
  const double tail = a0 / (1.0 - q);
  return attempt(s1, tail);
}

// ---------------------------------------------------------------------------

TEST(ExactTime, ErrorFreeIsDeterministic) {
  ModelParams p = toy_params();
  p.lambda_silent = 0.0;
  const double w = 500.0;
  const double expected = p.checkpoint_s + (w + p.verification_s) / 0.5;
  EXPECT_NEAR(expected_time(p, w, 0.5, 1.0), expected, 1e-9);
}

TEST(ExactEnergy, ErrorFreeIsDeterministic) {
  ModelParams p = toy_params();
  p.lambda_silent = 0.0;
  const double w = 500.0;
  const double expected = (w + p.verification_s) / 0.5 * p.compute_power(0.5) +
                          p.checkpoint_s * p.io_total_power();
  EXPECT_NEAR(expected_energy(p, w, 0.5, 1.0), expected, 1e-9);
}

TEST(ExactTime, Prop1LiteralFormula) {
  const ModelParams p = toy_params();
  const double w = 1000.0;
  const double sigma = 0.5;
  const double growth = std::exp(p.lambda_silent * w / sigma);
  const double expected = p.checkpoint_s +
                          growth * (w + p.verification_s) / sigma +
                          (growth - 1.0) * p.recovery_s;
  EXPECT_NEAR(expected_time_single_speed_silent(p, w, sigma), expected,
              1e-9);
}

TEST(ExactTime, TwoSpeedWithEqualSpeedsReducesToProp1) {
  const ModelParams p = params_for("Hera/XScale");
  for (const double sigma : p.speeds) {
    for (const double w : {100.0, 2764.0, 50000.0}) {
      EXPECT_NEAR(expected_time(p, w, sigma, sigma),
                  expected_time_single_speed_silent(p, w, sigma),
                  1e-9 * expected_time(p, w, sigma, sigma))
          << "sigma=" << sigma << " w=" << w;
    }
  }
}

TEST(ExactTime, MatchesLiteralProp2) {
  const ModelParams p = params_for("Atlas/Crusoe");
  const double lam = p.lambda_silent;
  for (const double s1 : {0.45, 0.8}) {
    for (const double s2 : {0.6, 1.0}) {
      for (const double w : {500.0, 5000.0, 20000.0}) {
        const double literal =
            p.checkpoint_s + (w + p.verification_s) / s1 +
            (-std::expm1(-lam * w / s1)) * std::exp(lam * w / s2) *
                (p.recovery_s + (w + p.verification_s) / s2);
        EXPECT_NEAR(expected_time(p, w, s1, s2), literal, 1e-9 * literal);
      }
    }
  }
}

TEST(ExactEnergy, MatchesLiteralProp3) {
  const ModelParams p = params_for("Atlas/Crusoe");
  const double lam = p.lambda_silent;
  const double pio = p.io_total_power();
  for (const double s1 : {0.45, 0.9}) {
    for (const double s2 : {0.45, 1.0}) {
      for (const double w : {1000.0, 10000.0}) {
        const double fail = -std::expm1(-lam * w / s1);
        const double growth = std::exp(lam * w / s2);
        const double literal =
            (p.checkpoint_s + fail * growth * p.recovery_s) * pio +
            (w + p.verification_s) / s1 * p.compute_power(s1) +
            (w + p.verification_s) / s2 * fail * growth *
                p.compute_power(s2);
        EXPECT_NEAR(expected_energy(p, w, s1, s2), literal, 1e-9 * literal);
      }
    }
  }
}

TEST(ExactTime, MatchesNumericRecursionSilentOnly) {
  const ModelParams p = params_for("Hera/XScale");
  const double w = 2764.0;
  EXPECT_NEAR(expected_time(p, w, 0.4, 0.8),
              numeric_expected_time(p, w, 0.4, 0.8),
              1e-6 * expected_time(p, w, 0.4, 0.8));
}

TEST(ExactTime, MatchesNumericRecursionCombinedErrors) {
  ModelParams p = toy_params();
  p.lambda_silent = 5e-5;
  p.lambda_failstop = 5e-5;
  for (const double s2 : {0.25, 0.5, 1.0}) {
    const double closed = expected_time(p, 800.0, 0.5, s2);
    const double numeric = numeric_expected_time(p, 800.0, 0.5, s2);
    EXPECT_NEAR(closed, numeric, 1e-6 * closed) << "s2=" << s2;
  }
}

TEST(ExactTime, MatchesNumericRecursionFailstopOnly) {
  ModelParams p = toy_params();
  p.lambda_silent = 0.0;
  p.lambda_failstop = 1e-4;
  const double closed = expected_time(p, 1500.0, 0.5, 1.0);
  const double numeric = numeric_expected_time(p, 1500.0, 0.5, 1.0);
  EXPECT_NEAR(closed, numeric, 1e-6 * closed);
}

TEST(ExactTime, CombinedContinuousAsFailstopRateVanishes) {
  ModelParams p = toy_params();
  p.lambda_silent = 1e-4;
  const double silent_only = expected_time(p, 1000.0, 0.5, 1.0);
  p.lambda_failstop = 1e-12;
  const double nearly_silent = expected_time(p, 1000.0, 0.5, 1.0);
  EXPECT_NEAR(nearly_silent, silent_only, 1e-6 * silent_only);
}

TEST(ExactTime, IncreasingInWorkAndErrorRate) {
  ModelParams p = params_for("Hera/XScale");
  double prev = 0.0;
  for (const double w : {100.0, 1000.0, 10000.0, 100000.0}) {
    const double t = expected_time(p, w, 0.4, 0.6);
    EXPECT_GT(t, prev);
    prev = t;
  }
  const double base = expected_time(p, 5000.0, 0.4, 0.6);
  p.lambda_silent *= 10.0;
  EXPECT_GT(expected_time(p, 5000.0, 0.4, 0.6), base);
}

TEST(ExactEnergy, IncreasingInIdlePower) {
  ModelParams p = params_for("Atlas/Crusoe");
  const double base = expected_energy(p, 5000.0, 0.6, 0.6);
  p.idle_power_mw += 1000.0;
  EXPECT_GT(expected_energy(p, 5000.0, 0.6, 0.6), base);
}

TEST(ExactEnergy, FasterReexecutionCostsMoreDynamicPowerPerRetry) {
  // With negligible static power, retrying faster burns more energy per
  // work unit (σ² law), so E should increase in σ2 at fixed W when errors
  // are frequent enough to matter.
  ModelParams p = toy_params();
  p.idle_power_mw = 0.0;
  p.lambda_silent = 1e-3;
  const double slow = expected_energy(p, 1000.0, 0.5, 0.5);
  const double fast = expected_energy(p, 1000.0, 0.5, 1.0);
  EXPECT_GT(fast, slow);
}

TEST(ExpectedTimeLost, HalfDurationLimitForRareErrors) {
  // λ·d → 0 ⇒ Tlost → d/2 (uniform strike position).
  EXPECT_NEAR(expected_time_lost(1e-9, 100.0), 50.0, 1e-4);
}

TEST(ExpectedTimeLost, ApproachesMtbfForFrequentErrors) {
  // λ·d → ∞ ⇒ Tlost → 1/λ.
  EXPECT_NEAR(expected_time_lost(10.0, 1000.0), 0.1, 1e-9);
}

TEST(ExpectedTimeLost, RejectsBadArguments) {
  EXPECT_THROW(expected_time_lost(0.0, 10.0), std::invalid_argument);
  EXPECT_THROW(expected_time_lost(1.0, 0.0), std::invalid_argument);
}

TEST(Overheads, DividePerWorkUnit) {
  const ModelParams p = params_for("Hera/XScale");
  const double w = 2764.0;
  EXPECT_DOUBLE_EQ(time_overhead(p, w, 0.4, 0.4),
                   expected_time(p, w, 0.4, 0.4) / w);
  EXPECT_DOUBLE_EQ(energy_overhead(p, w, 0.4, 0.4),
                   expected_energy(p, w, 0.4, 0.4) / w);
}

TEST(Arguments, RejectedWhenNonPositive) {
  const ModelParams p = toy_params();
  EXPECT_THROW(expected_time(p, 0.0, 0.5, 0.5), std::invalid_argument);
  EXPECT_THROW(expected_time(p, 100.0, 0.0, 0.5), std::invalid_argument);
  EXPECT_THROW(expected_energy(p, 100.0, 0.5, -1.0), std::invalid_argument);
}

// ------------------------ convexity properties ----------------------------
// The numeric optimizer golden-sections the overheads, which requires
// unimodality; verify discrete convexity of both overheads in W across
// every paper configuration and a spread of speed pairs.

class OverheadConvexity : public ::testing::TestWithParam<std::string> {};

TEST_P(OverheadConvexity, TimeAndEnergyOverheadsAreUnimodalInW) {
  ModelParams p = params_for(GetParam());
  p.lambda_silent *= 20.0;  // strengthen the curvature
  const double s1 = p.speeds[1];
  const double s2 = p.speeds[2];
  for (const auto overhead :
       {+[](const ModelParams& mp, double w, double a, double b) {
          return time_overhead(mp, w, a, b);
        },
        +[](const ModelParams& mp, double w, double a, double b) {
          return energy_overhead(mp, w, a, b);
        }}) {
    // Sample log-spaced W and check the difference sequence changes sign
    // at most once (decreasing then increasing).
    double prev = overhead(p, 50.0, s1, s2);
    int sign_changes = 0;
    int last_sign = -1;
    for (double w = 60.0; w < 3e5; w *= 1.2) {
      const double cur = overhead(p, w, s1, s2);
      const int sign = cur > prev ? 1 : -1;
      if (sign != last_sign && sign == 1) ++sign_changes;
      if (sign == 1) last_sign = 1;
      prev = cur;
    }
    EXPECT_LE(sign_changes, 1) << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigs, OverheadConvexity,
    ::testing::Values("Hera/XScale", "Atlas/XScale", "Coastal/XScale",
                      "CoastalSSD/XScale", "Hera/Crusoe", "Atlas/Crusoe",
                      "Coastal/Crusoe", "CoastalSSD/Crusoe"),
    [](const auto& info) {
      std::string name = info.param;
      for (auto& ch : name) {
        if (ch == '/') ch = '_';
      }
      return name;
    });

// --------------------------- paper erratum --------------------------------

TEST(PaperProp4, DiffersFromRecursionByExactlyTheSpuriousTerm) {
  ModelParams p = toy_params();
  p.lambda_silent = 5e-5;
  p.lambda_failstop = 5e-5;
  const double w = 800.0;
  const double s1 = 0.5;
  const double s2 = 1.0;
  const double ours = expected_time(p, w, s1, s2);
  const double paper = paper_forms::prop4_expected_time(p, w, s1, s2);
  const double fail1 = -std::expm1(
      -(p.lambda_failstop * (w + p.verification_s) + p.lambda_silent * w) /
      s1);
  const double spurious = fail1 * std::exp(p.lambda_silent * w / s2) *
                          p.verification_s / s2;
  EXPECT_NEAR(paper - ours, spurious, 1e-9 * ours);
}

TEST(PaperProp4, NumericallyNegligibleAtRealisticScales) {
  ModelParams p = params_for("Hera/XScale");
  p.lambda_failstop = p.lambda_silent;  // half fail-stop, half silent
  const double w = 3000.0;
  const double ours = expected_time(p, w, 0.4, 0.8);
  const double paper = paper_forms::prop4_expected_time(p, w, 0.4, 0.8);
  EXPECT_NEAR(paper, ours, 1e-3 * ours);
}

TEST(PaperProp5, DiffersFromRecursionByExactlyTheSpuriousTerm) {
  ModelParams p = toy_params();
  p.lambda_silent = 5e-5;
  p.lambda_failstop = 5e-5;
  const double w = 800.0;
  const double s1 = 0.5;
  const double s2 = 1.0;
  const double ours = expected_energy(p, w, s1, s2);
  const double paper = paper_forms::prop5_expected_energy(p, w, s1, s2);
  const double fail1 = -std::expm1(
      -(p.lambda_failstop * (w + p.verification_s) + p.lambda_silent * w) /
      s1);
  const double spurious = fail1 * std::exp(p.lambda_silent * w / s2) *
                          p.verification_s / s2 * p.compute_power(s2);
  EXPECT_NEAR(paper - ours, spurious, 1e-9 * ours);
}

TEST(PaperProp4, RequiresFailstopRate) {
  const ModelParams p = toy_params();  // λf = 0
  EXPECT_THROW(paper_forms::prop4_expected_time(p, 100.0, 0.5, 0.5),
               std::invalid_argument);
  EXPECT_THROW(paper_forms::prop5_expected_energy(p, 100.0, 0.5, 0.5),
               std::invalid_argument);
}

}  // namespace
}  // namespace rexspeed::core
