#include "rexspeed/core/interleaved.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "rexspeed/core/exact_expectations.hpp"
#include "test_util.hpp"

namespace rexspeed::core {
namespace {

using test::params_for;
using test::toy_params;

TEST(Interleaved, OneSegmentReducesToPaperModel) {
  const ModelParams p = params_for("Hera/XScale");
  for (const double s1 : {0.4, 0.8}) {
    for (const double s2 : {0.4, 1.0}) {
      for (const double w : {500.0, 2764.0, 20000.0}) {
        EXPECT_NEAR(expected_time_interleaved(p, w, 1, s1, s2),
                    expected_time(p, w, s1, s2),
                    1e-9 * expected_time(p, w, s1, s2));
        EXPECT_NEAR(expected_energy_interleaved(p, w, 1, s1, s2),
                    expected_energy(p, w, s1, s2),
                    1e-9 * expected_energy(p, w, s1, s2));
      }
    }
  }
}

TEST(Interleaved, ErrorFreeCostGrowsLinearlyWithSegments) {
  // Without errors each extra segment just adds one verification.
  ModelParams p = toy_params();
  p.lambda_silent = 0.0;
  const double w = 1000.0;
  const double sigma = 0.5;
  const double base = expected_time_interleaved(p, w, 1, sigma, sigma);
  for (unsigned m : {2u, 4u, 8u}) {
    EXPECT_NEAR(expected_time_interleaved(p, w, m, sigma, sigma),
                base + (m - 1) * p.verification_s / sigma, 1e-9);
  }
}

TEST(Interleaved, MoreSegmentsReduceLostWorkAtHighErrorRates) {
  // With frequent errors and cheap verifications, detecting early beats
  // re-executing the whole pattern: expected time decreases from m = 1 to
  // m = 4.
  ModelParams p = toy_params();
  p.lambda_silent = 2e-3;
  p.verification_s = 0.5;  // cheap checks
  const double w = 2000.0;
  const double t1 = expected_time_interleaved(p, w, 1, 0.5, 0.5);
  const double t4 = expected_time_interleaved(p, w, 4, 0.5, 0.5);
  EXPECT_LT(t4, t1);
}

TEST(Interleaved, ExpensiveVerificationsFavorFewSegments) {
  ModelParams p = toy_params();
  p.lambda_silent = 1e-5;   // rare errors
  p.verification_s = 50.0;  // expensive checks
  const double w = 2000.0;
  const double t1 = expected_time_interleaved(p, w, 1, 0.5, 0.5);
  const double t8 = expected_time_interleaved(p, w, 8, 0.5, 0.5);
  EXPECT_LT(t1, t8);
}

TEST(Interleaved, SegmentProbabilitiesSumCorrectly) {
  // Failure probability is independent of m (errors strike the same total
  // exposure); only the detection latency changes. Verify via the time
  // expectation at V = 0, where the attempt cost differences vanish and
  // all m must agree.
  ModelParams p = toy_params();
  p.lambda_silent = 1e-3;
  p.verification_s = 0.0;
  const double w = 1500.0;
  const double t1 = expected_time_interleaved(p, w, 1, 0.5, 1.0);
  const double t5 = expected_time_interleaved(p, w, 5, 0.5, 1.0);
  // V = 0: detection still happens only at segment ends, so m > 1 detects
  // *earlier* and must be cheaper or equal.
  EXPECT_LE(t5, t1 + 1e-9);
}

TEST(OptimizeInterleaved, SegmentationGainIsModestAtPaperScales) {
  // At the paper's error rates a second verification per pattern already
  // pays for itself (the Benoit–Robert–Raina effect), but the gain over
  // the paper's m = 1 pattern stays in the low percent range — so the
  // paper's simpler pattern loses very little.
  const ModelParams p = params_for("Hera/XScale");
  const InterleavedSolution best = optimize_interleaved(p, 3.0, 0.4, 0.4, 8);
  const InterleavedSolution single =
      optimize_interleaved(p, 3.0, 0.4, 0.4, 1);
  ASSERT_TRUE(best.feasible);
  ASSERT_TRUE(single.feasible);
  EXPECT_EQ(single.segments, 1u);
  EXPECT_NEAR(single.energy_overhead, 416.9, 1.0);  // §4.2 anchor
  EXPECT_LE(best.energy_overhead, single.energy_overhead * (1.0 + 1e-12));
  EXPECT_GE(best.energy_overhead, single.energy_overhead * 0.95);
}

TEST(OptimizeInterleaved, PicksManySegmentsAtHighRateCheapChecks) {
  ModelParams p = params_for("Hera/XScale");
  p.lambda_silent *= 300.0;
  p.verification_s = 1.0;
  const InterleavedSolution sol = optimize_interleaved(p, 5.0, 0.6, 0.6, 16);
  ASSERT_TRUE(sol.feasible);
  EXPECT_GT(sol.segments, 1u);
  // And segmentation beats the single-verification pattern outright.
  const InterleavedSolution single =
      optimize_interleaved(p, 5.0, 0.6, 0.6, 1);
  ASSERT_TRUE(single.feasible);
  EXPECT_LT(sol.energy_overhead, single.energy_overhead);
}

TEST(OptimizeInterleaved, RespectsTheBound) {
  const ModelParams p = params_for("Atlas/Crusoe");
  const InterleavedSolution sol =
      optimize_interleaved(p, 2.0, 0.6, 0.45, 8);
  ASSERT_TRUE(sol.feasible);
  EXPECT_LE(sol.time_overhead, 2.0 * (1.0 + 1e-9));
}

TEST(OptimizeInterleaved, InfeasibleBound) {
  const ModelParams p = params_for("Hera/XScale");
  const InterleavedSolution sol = optimize_interleaved(p, 0.9, 1.0, 1.0, 4);
  EXPECT_FALSE(sol.feasible);
}

TEST(Interleaved, RejectsBadArguments) {
  ModelParams p = toy_params();
  EXPECT_THROW(expected_time_interleaved(p, 100.0, 0, 0.5, 0.5),
               std::invalid_argument);
  EXPECT_THROW(expected_time_interleaved(p, 0.0, 1, 0.5, 0.5),
               std::invalid_argument);
  p.lambda_failstop = 1e-5;
  EXPECT_THROW(expected_time_interleaved(p, 100.0, 1, 0.5, 0.5),
               std::invalid_argument);
  EXPECT_THROW(optimize_interleaved(toy_params(), 0.0, 0.5, 0.5),
               std::invalid_argument);
  EXPECT_THROW(optimize_interleaved(toy_params(), 3.0, 0.5, 0.5, 0),
               std::invalid_argument);
}

}  // namespace
}  // namespace rexspeed::core
