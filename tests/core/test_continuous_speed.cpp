#include "rexspeed/core/continuous_speed.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "rexspeed/core/bicrit_solver.hpp"
#include "test_util.hpp"

namespace rexspeed::core {
namespace {

using test::params_for;
using test::toy_params;

TEST(ContinuousSpeed, NeverWorseThanDiscreteOptimum) {
  for (const char* name : {"Hera/XScale", "Atlas/Crusoe"}) {
    const ModelParams p = test::params_for(name);
    const BiCritSolver solver(p);
    const auto discrete = solver.solve(3.0, SpeedPolicy::kTwoSpeed,
                                       EvalMode::kExactOptimize);
    const ContinuousSolution continuous = solve_continuous(p, 3.0);
    ASSERT_TRUE(discrete.feasible) << name;
    ASSERT_TRUE(continuous.feasible) << name;
    EXPECT_LE(continuous.energy_overhead,
              discrete.best.energy_overhead * (1.0 + 1e-6))
        << name;
  }
}

TEST(ContinuousSpeed, StaysWithinSpeedBounds) {
  const ModelParams p = params_for("Hera/XScale");
  const ContinuousSolution sol = solve_continuous(p, 3.0);
  ASSERT_TRUE(sol.feasible);
  EXPECT_GE(sol.sigma1, p.speeds.front() - 1e-12);
  EXPECT_LE(sol.sigma1, p.speeds.back() + 1e-12);
  EXPECT_GE(sol.sigma2, p.speeds.front() - 1e-12);
  EXPECT_LE(sol.sigma2, p.speeds.back() + 1e-12);
}

TEST(ContinuousSpeed, RespectsTheTimeBound) {
  const ModelParams p = params_for("Atlas/Crusoe");
  for (const double rho : {1.5, 2.0, 3.0}) {
    const ContinuousSolution sol = solve_continuous(p, rho);
    ASSERT_TRUE(sol.feasible) << rho;
    EXPECT_LE(sol.time_overhead, rho * (1.0 + 1e-6)) << rho;
  }
}

TEST(ContinuousSpeed, FindsInteriorOptimumOnDenseLadder) {
  // With a two-point ladder {0.4, 1.0}, the continuous optimum on the
  // same range should be at least as good and typically interior.
  ModelParams p = params_for("Hera/XScale");
  p.speeds = {0.4, 1.0};
  const BiCritSolver solver(p);
  const auto discrete =
      solver.solve(3.0, SpeedPolicy::kTwoSpeed, EvalMode::kExactOptimize);
  const ContinuousSolution continuous = solve_continuous(p, 3.0);
  ASSERT_TRUE(discrete.feasible);
  ASSERT_TRUE(continuous.feasible);
  EXPECT_LT(continuous.energy_overhead,
            discrete.best.energy_overhead * (1.0 + 1e-9));
}

TEST(ContinuousSpeed, MatchesKnownOptimumNearDiscretePoint) {
  // On Hera/XScale at ρ = 3 the discrete optimum is (0.4, 0.4); the
  // continuous optimum should sit nearby (the energy landscape is smooth
  // around the cubic-power sweet spot).
  const ModelParams p = params_for("Hera/XScale");
  const ContinuousSolution sol = solve_continuous(p, 3.0);
  ASSERT_TRUE(sol.feasible);
  EXPECT_NEAR(sol.sigma1, 0.4, 0.15);
  EXPECT_NEAR(sol.sigma2, 0.4, 0.15);
}

TEST(ContinuousSpeed, InfeasibleBelowAchievableBound) {
  const ModelParams p = params_for("Hera/XScale");
  const ContinuousSolution sol = solve_continuous(p, 0.9);
  EXPECT_FALSE(sol.feasible);
}

TEST(ContinuousSpeed, ExplicitRangeOverridesSpeedSet) {
  const ModelParams p = params_for("Hera/XScale");
  ContinuousOptions options;
  options.sigma_min = 0.8;
  options.sigma_max = 1.0;
  const ContinuousSolution sol = solve_continuous(p, 3.0, options);
  ASSERT_TRUE(sol.feasible);
  EXPECT_GE(sol.sigma1, 0.8 - 1e-12);
  EXPECT_GE(sol.sigma2, 0.8 - 1e-12);
}

TEST(ContinuousSpeed, RejectsBadArguments) {
  const ModelParams p = toy_params();
  EXPECT_THROW(solve_continuous(p, 0.0), std::invalid_argument);
  ContinuousOptions bad;
  bad.sigma_min = 0.9;
  bad.sigma_max = 0.5;
  EXPECT_THROW(solve_continuous(p, 3.0, bad), std::invalid_argument);
}

}  // namespace
}  // namespace rexspeed::core
