#include "rexspeed/core/first_order.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>

#include "rexspeed/core/exact_expectations.hpp"
#include "test_util.hpp"

namespace rexspeed::core {
namespace {

using test::params_for;
using test::toy_params;

TEST(OverheadExpansion, EvaluateAndMinimum) {
  const OverheadExpansion exp{.x = 2.0, .y = 0.5, .z = 8.0};
  EXPECT_DOUBLE_EQ(exp.evaluate(4.0), 2.0 + 2.0 + 2.0);
  EXPECT_TRUE(exp.has_interior_minimum());
  EXPECT_DOUBLE_EQ(exp.argmin(), 4.0);
  EXPECT_DOUBLE_EQ(exp.min_value(), 6.0);
}

TEST(OverheadExpansion, NoInteriorMinimumWithoutPositiveY) {
  const OverheadExpansion flat{.x = 1.0, .y = 0.0, .z = 5.0};
  EXPECT_FALSE(flat.has_interior_minimum());
  EXPECT_THROW(flat.argmin(), std::logic_error);
  EXPECT_THROW(flat.min_value(), std::logic_error);
}

TEST(TimeExpansion, SilentCoefficientsMatchEq2) {
  const ModelParams p = params_for("Hera/XScale");
  const double s1 = 0.4;
  const double s2 = 0.8;
  const double lam = p.lambda_silent;
  const OverheadExpansion exp = time_expansion(p, s1, s2);
  EXPECT_NEAR(exp.x,
              1.0 / s1 + lam * p.recovery_s / s1 +
                  lam * p.verification_s / (s1 * s2),
              1e-15);
  EXPECT_NEAR(exp.y, lam / (s1 * s2), 1e-20);
  EXPECT_NEAR(exp.z, p.checkpoint_s + p.verification_s / s1, 1e-12);
}

TEST(EnergyExpansion, SilentCoefficientsMatchCorrectedEq3) {
  const ModelParams p = params_for("Hera/XScale");
  const double s1 = 0.4;
  const double s2 = 0.8;
  const double lam = p.lambda_silent;
  const double pc1 = p.compute_power(s1);
  const double pc2 = p.compute_power(s2);
  const double pio = p.io_total_power();
  const OverheadExpansion exp = energy_expansion(p, s1, s2);
  // The λV term carries Pc(σ2): re-executed verifications run at σ2 (the
  // paper's Eq. (3) prints κσ1³ there; see the header's erratum note).
  EXPECT_NEAR(exp.x,
              pc1 / s1 + lam * p.recovery_s * pio / s1 +
                  lam * p.verification_s * pc2 / (s1 * s2),
              1e-10);
  EXPECT_NEAR(exp.y, lam * pc2 / (s1 * s2), 1e-15);
  EXPECT_NEAR(exp.z, p.checkpoint_s * pio + p.verification_s * pc1 / s1,
              1e-9);
}

TEST(TimeExpansion, HeraXScaleWeMatchesPaperWopt) {
  // Eq. (5) at (σ1, σ2) = (0.4, 0.4) on Hera/XScale gives the paper's
  // Wopt = 2764 for ρ = 3 (the bound is inactive there).
  const ModelParams p = params_for("Hera/XScale");
  const OverheadExpansion exp = energy_expansion(p, 0.4, 0.4);
  EXPECT_NEAR(exp.argmin(), 2764.0, 1.0);
}

TEST(FirstOrder, ConvergesToExactAtSecondOrderRate) {
  // |exact − expansion| at fixed W should scale like λ² as λ shrinks.
  ModelParams p = params_for("Atlas/Crusoe");
  const double w = 4000.0;
  const double s1 = 0.6;
  const double s2 = 0.8;
  double prev_err = 0.0;
  double prev_lambda = 0.0;
  for (const double lam : {4e-6, 2e-6, 1e-6}) {
    p.lambda_silent = lam;
    const double exact = time_overhead(p, w, s1, s2);
    const double approx = time_expansion(p, s1, s2).evaluate(w);
    const double err = std::abs(exact - approx);
    if (prev_lambda > 0.0) {
      const double expected_ratio =
          (lam * lam) / (prev_lambda * prev_lambda);
      EXPECT_NEAR(err / prev_err, expected_ratio, 0.1 * expected_ratio);
    }
    prev_err = err;
    prev_lambda = lam;
  }
}

TEST(FirstOrder, EnergyExpansionConvergesToExact) {
  ModelParams p = params_for("Hera/XScale");
  const double w = 2764.0;
  p.lambda_silent = 3.38e-6;
  const double exact = energy_overhead(p, w, 0.4, 0.4);
  const double approx = energy_expansion(p, 0.4, 0.4).evaluate(w);
  // Truncation error is O(λ²W) ≈ 3e-4 relative at Hera's rate.
  EXPECT_NEAR(approx, exact, 5e-4 * exact);
}

TEST(Validity, AlwaysValidWithSilentErrorsOnly) {
  const ModelParams p = params_for("CoastalSSD/Crusoe");
  for (const double s1 : p.speeds) {
    for (const double s2 : p.speeds) {
      EXPECT_TRUE(first_order_valid(p, s1, s2));
    }
  }
  EXPECT_EQ(max_valid_speed_ratio(p),
            std::numeric_limits<double>::infinity());
}

TEST(Validity, TimeCoefficientFlipsSignAtPaperBoundary) {
  // §5.2: y_time > 0 ⟺ σ2/σ1 < 2(1 + s/f). With f = s (half fail-stop),
  // the boundary ratio is 4.
  ModelParams p = toy_params();
  p.lambda_silent = 5e-5;
  p.lambda_failstop = 5e-5;
  p.speeds = {0.1, 0.2, 0.39, 0.41, 0.8, 1.0};
  EXPECT_DOUBLE_EQ(max_valid_speed_ratio(p), 4.0);
  EXPECT_GT(time_expansion(p, 0.1, 0.39).y, 0.0);  // ratio 3.9 < 4
  EXPECT_LT(time_expansion(p, 0.1, 0.41).y, 0.0);  // ratio 4.1 > 4
}

TEST(Validity, FailstopOnlyBoundaryIsTwo) {
  ModelParams p = toy_params();
  p.lambda_silent = 0.0;
  p.lambda_failstop = 1e-4;
  EXPECT_DOUBLE_EQ(max_valid_speed_ratio(p), 2.0);
  EXPECT_GT(time_expansion(p, 0.5, 0.99).y, 0.0);
  EXPECT_DOUBLE_EQ(time_expansion(p, 0.5, 1.0).y, 0.0);  // exactly σ2 = 2σ1
}

TEST(Validity, EnergyLowerBoundWithZeroIdlePower) {
  // §5.2 with Pidle = 0: y_energy > 0 ⟺ σ2/σ1 > (2(1+s/f))^{-1/2}.
  ModelParams p = toy_params();
  p.idle_power_mw = 0.0;
  p.lambda_silent = 0.0;
  p.lambda_failstop = 1e-4;  // boundary ratio: 2^{-1/2} ≈ 0.7071
  p.speeds = {0.1, 0.7, 0.72, 1.0};
  EXPECT_LT(energy_expansion(p, 1.0, 0.70).y, 0.0);  // below 0.7071
  EXPECT_GT(energy_expansion(p, 1.0, 0.72).y, 0.0);  // above 0.7071
  EXPECT_FALSE(first_order_valid(p, 1.0, 0.70));
  EXPECT_TRUE(first_order_valid(p, 1.0, 0.72));
}

TEST(Expansion, RejectsNonPositiveSpeeds) {
  const ModelParams p = toy_params();
  EXPECT_THROW(time_expansion(p, 0.0, 0.5), std::invalid_argument);
  EXPECT_THROW(energy_expansion(p, 0.5, -1.0), std::invalid_argument);
}

}  // namespace
}  // namespace rexspeed::core
