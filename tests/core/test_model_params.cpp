#include "rexspeed/core/model_params.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "test_util.hpp"

namespace rexspeed::core {
namespace {

TEST(ModelParams, FromConfigurationMapsAllFields) {
  const ModelParams p = test::params_for("Hera/XScale");
  EXPECT_DOUBLE_EQ(p.lambda_silent, 3.38e-6);
  EXPECT_DOUBLE_EQ(p.lambda_failstop, 0.0);
  EXPECT_DOUBLE_EQ(p.checkpoint_s, 300.0);
  EXPECT_DOUBLE_EQ(p.recovery_s, 300.0);  // R = C
  EXPECT_DOUBLE_EQ(p.verification_s, 15.4);
  EXPECT_DOUBLE_EQ(p.kappa_mw, 1550.0);
  EXPECT_DOUBLE_EQ(p.idle_power_mw, 60.0);
  EXPECT_NEAR(p.io_power_mw, 1550.0 * 0.15 * 0.15 * 0.15, 1e-12);
  ASSERT_EQ(p.speeds.size(), 5u);
}

TEST(ModelParams, PowerHelpers) {
  const ModelParams p = test::toy_params();
  EXPECT_DOUBLE_EQ(p.compute_power(1.0), 1100.0);
  EXPECT_DOUBLE_EQ(p.compute_power(0.5), 1000.0 / 8.0 + 100.0);
  EXPECT_DOUBLE_EQ(p.io_total_power(), 150.0);
}

TEST(ModelParams, ErrorRateHelpers) {
  ModelParams p = test::toy_params();
  p.lambda_silent = 3e-5;
  p.lambda_failstop = 1e-5;
  EXPECT_DOUBLE_EQ(p.total_error_rate(), 4e-5);
  EXPECT_DOUBLE_EQ(p.failstop_fraction(), 0.25);

  p.lambda_silent = 0.0;
  p.lambda_failstop = 0.0;
  EXPECT_DOUBLE_EQ(p.failstop_fraction(), 0.0);
}

TEST(ModelParams, ValidateAcceptsErrorFreeModel) {
  ModelParams p = test::toy_params();
  p.lambda_silent = 0.0;
  EXPECT_NO_THROW(p.validate());
}

TEST(ModelParams, ValidateRejectsNegativeRates) {
  ModelParams p = test::toy_params();
  p.lambda_silent = -1e-6;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = test::toy_params();
  p.lambda_failstop = -1e-6;
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(ModelParams, ValidateRejectsNegativeCosts) {
  for (auto field : {&ModelParams::checkpoint_s, &ModelParams::recovery_s,
                     &ModelParams::verification_s}) {
    ModelParams p = test::toy_params();
    p.*field = -1.0;
    EXPECT_THROW(p.validate(), std::invalid_argument);
  }
}

TEST(ModelParams, ValidateRejectsNegativePowers) {
  for (auto field : {&ModelParams::kappa_mw, &ModelParams::idle_power_mw,
                     &ModelParams::io_power_mw}) {
    ModelParams p = test::toy_params();
    p.*field = -1.0;
    EXPECT_THROW(p.validate(), std::invalid_argument);
  }
}

TEST(ModelParams, ValidateRejectsBadSpeedSets) {
  ModelParams p = test::toy_params();
  p.speeds = {};
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p.speeds = {0.5, 0.25};  // decreasing
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p.speeds = {0.5, 1.25};  // above 1
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p.speeds = {0.0, 0.5};  // zero
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(ModelParams, AllPaperConfigurationsValidate) {
  for (const auto& config : platform::all_configurations()) {
    EXPECT_NO_THROW(ModelParams::from_configuration(config).validate())
        << config.name();
  }
}

}  // namespace
}  // namespace rexspeed::core
