// The cached exact-optimization backend: agreement with the uncached
// optimize_exact_pair path (per pair and through the full solve), the
// warm-started construction, the exact-model min-ρ fallback, bit-identity
// of parallel vs serial cache builds, and the paper-regime agreement of
// exact-opt with the first-order closed forms at small λ.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "rexspeed/core/bicrit_solver.hpp"
#include "rexspeed/core/exact_expectations.hpp"
#include "rexspeed/core/exact_solver.hpp"
#include "rexspeed/core/numeric_optimizer.hpp"
#include "test_util.hpp"

namespace rexspeed::core {
namespace {

using test::params_for;
using test::toy_params;

TEST(ExactSolver, MatchesUncachedPerPairAcrossBounds) {
  // The cache must change the cost, not the answer: the boundary-snap
  // solve on cached curve optima agrees with the from-scratch
  // optimize_exact_pair at every bound, tight and loose.
  ModelParams p = params_for("Hera/XScale");
  p.lambda_silent *= 50.0;  // push the exact model away from first order
  const ExactSolver solver(p);
  const std::size_t k = p.speeds.size();
  for (const double rho : {1.2, 1.5, 2.0, 3.0, 8.0}) {
    for (std::size_t i = 0; i < k; ++i) {
      for (std::size_t j = 0; j < k; ++j) {
        SCOPED_TRACE(testing::Message()
                     << "rho=" << rho << " pair=(" << i << "," << j << ")");
        const PairSolution cached = solver.solve_pair_by_index(rho, i, j);
        const ExactPairResult exact =
            optimize_exact_pair(p, rho, p.speeds[i], p.speeds[j]);
        ASSERT_EQ(cached.feasible, exact.feasible);
        if (!cached.feasible) continue;
        EXPECT_NEAR(cached.energy_overhead, exact.energy_overhead,
                    1e-6 * exact.energy_overhead);
        EXPECT_NEAR(cached.time_overhead, exact.time_overhead,
                    1e-5 * exact.time_overhead);
        // The reported overheads are the exact curves at the reported W.
        EXPECT_NEAR(cached.energy_overhead,
                    energy_overhead(p, cached.w_opt, cached.sigma1,
                                    cached.sigma2),
                    1e-12 * cached.energy_overhead);
        EXPECT_LE(cached.time_overhead, rho * (1.0 + 1e-9));
      }
    }
  }
}

TEST(ExactSolver, SolveMatchesBiCritExactOptimize) {
  // Full solve vs BiCritSolver's per-bound numeric optimization: same
  // winning pair, same overheads, both speed policies.
  const ModelParams p = params_for("Atlas/Crusoe");
  const ExactSolver cached(p);
  const BiCritSolver uncached(p);
  for (const double rho : {1.3, 2.0, 3.0}) {
    for (const SpeedPolicy policy :
         {SpeedPolicy::kTwoSpeed, SpeedPolicy::kSingleSpeed}) {
      SCOPED_TRACE(testing::Message()
                   << "rho=" << rho << " single="
                   << (policy == SpeedPolicy::kSingleSpeed));
      const BiCritSolution a = cached.solve(rho, policy);
      const BiCritSolution b =
          uncached.solve(rho, policy, EvalMode::kExactOptimize);
      ASSERT_EQ(a.feasible, b.feasible);
      if (!a.feasible) continue;
      EXPECT_EQ(a.best.sigma1_index, b.best.sigma1_index);
      EXPECT_EQ(a.best.sigma2_index, b.best.sigma2_index);
      EXPECT_NEAR(a.best.energy_overhead, b.best.energy_overhead,
                  1e-6 * b.best.energy_overhead);
      EXPECT_NEAR(a.best.w_opt, b.best.w_opt, 1e-4 * b.best.w_opt);
    }
  }
}

TEST(ExactSolver, SupportsFailstopOutsideFirstOrderWindow) {
  // λf > 0 with a large speed ratio puts pairs outside the §5.2 window
  // where the closed forms are meaningless — the regime kExactOptimize
  // exists for. The cached backend must handle it identically.
  ModelParams p = toy_params();
  p.lambda_failstop = 5e-4;
  p.lambda_silent = 1e-4;
  const ExactSolver solver(p);
  bool saw_invalid_pair = false;
  for (const ExactExpansion& e : solver.expansions()) {
    saw_invalid_pair |= !e.first_order_valid;
    EXPECT_GT(e.rho_min, 0.0);
    EXPECT_GT(e.w_time, 0.0);
    EXPECT_GT(e.w_energy, 0.0);
  }
  EXPECT_TRUE(saw_invalid_pair)
      << "expected at least one pair outside the first-order window";
  const BiCritSolution a = solver.solve(3.0);
  const BiCritSolution b =
      BiCritSolver(p).solve(3.0, SpeedPolicy::kTwoSpeed,
                            EvalMode::kExactOptimize);
  ASSERT_EQ(a.feasible, b.feasible);
  ASSERT_TRUE(a.feasible);
  EXPECT_EQ(a.best.sigma1_index, b.best.sigma1_index);
  EXPECT_EQ(a.best.sigma2_index, b.best.sigma2_index);
  EXPECT_NEAR(a.best.energy_overhead, b.best.energy_overhead,
              1e-6 * b.best.energy_overhead);
}

TEST(ExactSolver, AgreesWithFirstOrderAtSmallLambda) {
  // §5.2: inside the validity window at small λ the first-order optimum
  // and the exact optimum coincide to O(λW) — the paper-regime agreement
  // check for the cached backend.
  ModelParams p = params_for("Hera/XScale");
  p.lambda_silent = 1e-7;
  const ExactSolver exact(p);
  const BiCritSolver first_order(p);
  for (const double rho : {1.5, 2.0, 3.0}) {
    SCOPED_TRACE(rho);
    const PairSolution a = exact.solve(rho).best;
    const PairSolution b =
        first_order.solve(rho, SpeedPolicy::kTwoSpeed,
                          EvalMode::kFirstOrder).best;
    ASSERT_TRUE(a.feasible);
    ASSERT_TRUE(b.feasible);
    EXPECT_EQ(a.sigma1_index, b.sigma1_index);
    EXPECT_EQ(a.sigma2_index, b.sigma2_index);
    EXPECT_NEAR(a.energy_overhead, b.energy_overhead,
                1e-2 * b.energy_overhead);
  }
}

TEST(ExactSolver, ParallelBuildIsBitIdentical) {
  // The construction hook may run entries in any order/interleaving; the
  // cache must not depend on it. Drive it with a deliberately reversed
  // schedule and compare every field bitwise.
  ModelParams p = params_for("Coastal/XScale");
  p.lambda_silent *= 10.0;
  const ExactSolver serial(p);
  const ExactSolver reversed(
      p, [](std::size_t count, const std::function<void(std::size_t)>& fn) {
        for (std::size_t i = count; i-- > 0;) fn(i);
      });
  ASSERT_EQ(serial.expansions().size(), reversed.expansions().size());
  for (std::size_t i = 0; i < serial.expansions().size(); ++i) {
    const ExactExpansion& a = serial.expansions()[i];
    const ExactExpansion& b = reversed.expansions()[i];
    EXPECT_EQ(a.w_time, b.w_time);
    EXPECT_EQ(a.rho_min, b.rho_min);
    EXPECT_EQ(a.w_energy, b.w_energy);
    EXPECT_EQ(a.energy_min, b.energy_min);
    EXPECT_EQ(a.time_at_we, b.time_at_we);
    EXPECT_EQ(a.first_order_valid, b.first_order_valid);
  }
  test::expect_identical_pair(serial.solve(2.0).best,
                              reversed.solve(2.0).best);
  test::expect_identical_pair(serial.min_rho_solution(),
                              reversed.min_rho_solution());
}

TEST(ExactSolver, MinRhoSolutionIsTheExactFloor) {
  ModelParams p = params_for("Hera/XScale");
  p.lambda_silent *= 100.0;
  const ExactSolver solver(p);
  for (const SpeedPolicy policy :
       {SpeedPolicy::kTwoSpeed, SpeedPolicy::kSingleSpeed}) {
    const PairSolution& fallback = solver.min_rho_solution(policy);
    ASSERT_TRUE(fallback.feasible);
    EXPECT_EQ(fallback.time_overhead, fallback.rho_min);
    if (policy == SpeedPolicy::kSingleSpeed) {
      EXPECT_EQ(fallback.sigma1_index, fallback.sigma2_index);
    }
    // No cached pair undercuts the reported floor, and a bound just above
    // it is feasible while one just below is not.
    for (const ExactExpansion& e : solver.expansions()) {
      if (policy == SpeedPolicy::kSingleSpeed && e.index1 != e.index2) {
        continue;
      }
      EXPECT_GE(e.rho_min, fallback.rho_min);
    }
    EXPECT_TRUE(solver.solve(fallback.rho_min * 1.01, policy).feasible);
    EXPECT_FALSE(solver.solve(fallback.rho_min * 0.99, policy).feasible);
  }
}

TEST(ExactSolver, TightBoundSitsOnTheFeasibilityBoundary) {
  // A bound between rho_min and the unconstrained-optimum overhead forces
  // the bisection branch; the returned pattern must sit on the boundary
  // (time overhead ≈ rho) with the energy still decreasing toward the
  // unconstrained optimum.
  ModelParams p = params_for("Hera/XScale");
  p.lambda_silent *= 100.0;
  const ExactSolver solver(p);
  bool exercised = false;
  for (const ExactExpansion& e : solver.expansions()) {
    if (!(e.time_at_we > e.rho_min * 1.01)) continue;
    const double rho = 0.5 * (e.rho_min + e.time_at_we);
    const PairSolution sol = solver.solve_pair_by_index(
        rho, static_cast<std::size_t>(e.index1),
        static_cast<std::size_t>(e.index2));
    ASSERT_TRUE(sol.feasible);
    EXPECT_NEAR(sol.time_overhead, rho, 1e-6 * rho);
    EXPECT_GE(sol.energy_overhead, e.energy_min * (1.0 - 1e-9));
    exercised = true;
  }
  EXPECT_TRUE(exercised) << "no pair had a tight-bound window to exercise";
}

TEST(ExactSolver, RejectsBadArguments) {
  const ExactSolver solver(toy_params());
  EXPECT_THROW(solver.solve(0.0), std::invalid_argument);
  EXPECT_THROW(solver.solve(-1.0), std::invalid_argument);
  EXPECT_THROW(solver.solve_pair_by_index(2.0, 99, 0), std::out_of_range);
  ModelParams bad;  // empty speed set
  EXPECT_THROW(ExactSolver{bad}, std::invalid_argument);
}

TEST(SeededMinimizer, MatchesColdStartWithinTolerance) {
  // The warm start changes the bracket, not the optimum: seeded and
  // cold-start minimizations land on the same minimizer of the exact
  // curve within the numeric tolerance, for good and bad seeds alike.
  const ModelParams p = params_for("Hera/XScale");
  const double s1 = p.speeds.front();
  const double s2 = p.speeds.back();
  const auto curve = [&](double w) { return time_overhead(p, w, s1, s2); };
  const double cold = minimize_unimodal_overhead(curve, NumericOptions{});
  for (const double seed : {cold, cold * 0.1, cold * 10.0, 1.0, 0.0, -5.0}) {
    SCOPED_TRACE(seed);
    const double warm =
        minimize_unimodal_overhead(curve, seed, NumericOptions{});
    EXPECT_NEAR(curve(warm), curve(cold),
                1e-9 * std::abs(curve(cold)) + 1e-12);
  }
}

TEST(SeededMinimizer, OverflowingSeedFallsBackToColdStart) {
  // A finite seed deep in the e^{λW} overflow region evaluates to +inf;
  // the seeded bracket must detect that and take the cold-start path
  // instead of golden-sectioning over an all-inf interval.
  const auto curve = [](double w) { return 1.0 / w + std::exp(w); };
  const double cold = minimize_unimodal_overhead(curve, NumericOptions{});
  const double warm =
      minimize_unimodal_overhead(curve, 1e6, NumericOptions{});
  ASSERT_TRUE(std::isfinite(curve(warm)));
  EXPECT_NEAR(curve(warm), curve(cold), 1e-9 * curve(cold));
}

}  // namespace
}  // namespace rexspeed::core
