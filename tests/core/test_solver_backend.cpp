// The polymorphic SolverBackend interface: the unified Solution view,
// capability advertising, the prepare lifecycle, the shared panel-point
// kernel, and rebind semantics — everything the engine's generic drivers
// rely on instead of mode branches.

#include "rexspeed/core/solver_backend.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>

#include "test_util.hpp"

namespace rexspeed::core {
namespace {

using test::expect_identical_interleaved;
using test::expect_identical_pair;

ModelParams hot_params() {
  ModelParams params = test::params_for("Hera/XScale");
  params.lambda_silent = 1e-3;
  params.verification_s = 1.0;
  return params;
}

TEST(Solution, CommonViewDispatchesOnTheKind) {
  PairSolution pair;
  pair.feasible = true;
  pair.sigma1 = 0.4;
  pair.sigma2 = 0.8;
  pair.w_opt = 1000.0;
  pair.energy_overhead = 400.0;
  pair.time_overhead = 2.5;
  const Solution from_pair = Solution::from_pair(pair, true);
  EXPECT_EQ(from_pair.kind, SolutionKind::kPair);
  EXPECT_TRUE(from_pair.feasible());
  EXPECT_TRUE(from_pair.used_fallback);
  EXPECT_DOUBLE_EQ(from_pair.sigma1(), 0.4);
  EXPECT_DOUBLE_EQ(from_pair.sigma2(), 0.8);
  EXPECT_DOUBLE_EQ(from_pair.w_opt(), 1000.0);
  EXPECT_DOUBLE_EQ(from_pair.energy_overhead(), 400.0);
  EXPECT_DOUBLE_EQ(from_pair.time_overhead(), 2.5);
  EXPECT_EQ(from_pair.segments(), 1u);  // the paper's own pattern

  InterleavedSolution seg;
  seg.feasible = true;
  seg.segments = 4;
  seg.sigma1 = 0.6;
  seg.sigma2 = 0.4;
  seg.w_opt = 2000.0;
  seg.energy_overhead = 350.0;
  seg.time_overhead = 3.0;
  const Solution from_seg = Solution::from_interleaved(seg);
  EXPECT_EQ(from_seg.kind, SolutionKind::kInterleaved);
  EXPECT_TRUE(from_seg.feasible());
  EXPECT_FALSE(from_seg.used_fallback);
  EXPECT_EQ(from_seg.segments(), 4u);
  EXPECT_DOUBLE_EQ(from_seg.energy_overhead(), 350.0);

  // Default: an infeasible pair solution.
  const Solution empty;
  EXPECT_FALSE(empty.feasible());
}

TEST(ClosedFormBackend, MatchesBiCritSolverBitForBit) {
  const ModelParams params = test::params_for("Hera/XScale");
  const BiCritSolver reference(params);
  for (const EvalMode mode :
       {EvalMode::kFirstOrder, EvalMode::kExactEvaluation}) {
    const ClosedFormBackend backend(params, mode);
    EXPECT_FALSE(backend.needs_prepare());
    for (const double rho : {1.4, 2.0, 3.0}) {
      for (const SpeedPolicy policy :
           {SpeedPolicy::kTwoSpeed, SpeedPolicy::kSingleSpeed}) {
        expect_identical_pair(backend.solve(rho, policy, false).pair,
                              reference.solve(rho, policy, mode).best);
      }
    }
    expect_identical_pair(backend.solve_pair(2.0, 0, 1),
                          reference.solve_pair_by_index(2.0, 0, 1, mode));
    expect_identical_pair(
        backend.min_rho(SpeedPolicy::kTwoSpeed).pair,
        reference.min_rho_solution(SpeedPolicy::kTwoSpeed));
  }
}

TEST(ClosedFormBackend, FallbackSemanticsMatchTheHistoricalKernel) {
  // Atlas/Crusoe at ρ = 1 is infeasible: with the fallback the backend
  // degrades to the min-ρ policy and flags it; without, it reports the
  // infeasible solve untouched.
  const ClosedFormBackend backend(test::params_for("Atlas/Crusoe"),
                                  EvalMode::kFirstOrder);
  const Solution with = backend.solve(1.0, SpeedPolicy::kTwoSpeed, true);
  EXPECT_TRUE(with.feasible());
  EXPECT_TRUE(with.used_fallback);
  expect_identical_pair(with.pair,
                        backend.min_rho(SpeedPolicy::kTwoSpeed).pair);
  const Solution without =
      backend.solve(1.0, SpeedPolicy::kTwoSpeed, false);
  EXPECT_FALSE(without.feasible());
  EXPECT_FALSE(without.used_fallback);
}

TEST(ClosedFormBackend, CapabilitiesDescribeThePairFamily) {
  const ClosedFormBackend backend(test::params_for("Hera/XScale"),
                                  EvalMode::kFirstOrder);
  const BackendCapabilities& caps = backend.capabilities();
  EXPECT_EQ(caps.kind, SolutionKind::kPair);
  EXPECT_EQ(caps.axes.size(), 6u);
  EXPECT_TRUE(caps.supports(SweepAxis::kCheckpointTime));
  EXPECT_FALSE(caps.supports(SweepAxis::kSegments));
  EXPECT_TRUE(caps.shares_panel_solver(SweepAxis::kPerformanceBound));
  EXPECT_FALSE(caps.shares_panel_solver(SweepAxis::kErrorRate));
  EXPECT_TRUE(caps.pair_table);
  EXPECT_TRUE(caps.min_rho_fallback);
  EXPECT_EQ(caps.max_segments, 1u);
  EXPECT_FALSE(caps.validity.empty());
  // Mode-dependent per-point cost: exact per-bound optimization is the
  // heaviest closed-form path.
  const ClosedFormBackend exact(test::params_for("Hera/XScale"),
                                EvalMode::kExactOptimize);
  EXPECT_GT(exact.capabilities().cost_weight, caps.cost_weight);
}

TEST(ClosedFormBackend, SegmentsSolveIsRejected) {
  const ClosedFormBackend backend(test::params_for("Hera/XScale"),
                                  EvalMode::kFirstOrder);
  EXPECT_THROW((void)backend.solve_segments(3.0, 2), std::logic_error);
}

TEST(ExactOptBackend, PrepareLifecycleAndRouting) {
  const ModelParams params = test::params_for("Hera/XScale");
  ExactOptBackend backend(params);
  EXPECT_TRUE(backend.needs_prepare());
  EXPECT_THROW((void)backend.exact(), std::logic_error);
  EXPECT_THROW((void)backend.min_rho(SpeedPolicy::kTwoSpeed),
               std::logic_error);
  backend.prepare();
  EXPECT_FALSE(backend.needs_prepare());
  backend.prepare();  // idempotent

  const ExactSolver reference(params);
  expect_identical_pair(
      backend.solve(2.0, SpeedPolicy::kTwoSpeed, false).pair,
      reference.solve(2.0, SpeedPolicy::kTwoSpeed).best);
  expect_identical_pair(backend.solve_pair(2.0, 1, 0),
                        reference.solve_pair_by_index(2.0, 1, 0));
  expect_identical_pair(
      backend.min_rho(SpeedPolicy::kSingleSpeed).pair,
      reference.min_rho_solution(SpeedPolicy::kSingleSpeed));
}

TEST(ExactOptBackend, RebindYieldsThePerBoundClosedFormPath) {
  // Model-axis panels historically solved each point with the per-bound
  // numeric path off a fresh BiCritSolver — rebind must reproduce exactly
  // that, not the cached curve structure.
  const ModelParams params = test::params_for("Hera/XScale");
  ExactOptBackend backend(params);
  const auto rebound = backend.rebind(params);
  EXPECT_FALSE(rebound->needs_prepare());
  const BiCritSolver reference(params);
  expect_identical_pair(
      rebound->solve(2.0, SpeedPolicy::kTwoSpeed, false).pair,
      reference.solve(2.0, SpeedPolicy::kTwoSpeed,
                      EvalMode::kExactOptimize)
          .best);
}

TEST(InterleavedBackend, ValidatesEagerlyAndMatchesTheSolver) {
  const ModelParams params = hot_params();
  InterleavedBackend backend(params, 6);
  EXPECT_TRUE(backend.needs_prepare());
  backend.prepare();
  const InterleavedSolver reference(params, 6);
  expect_identical_interleaved(
      backend.solve(5.0, SpeedPolicy::kTwoSpeed, false).interleaved,
      reference.solve(5.0));
  expect_identical_interleaved(backend.solve_baseline(5.0, false).interleaved,
                               reference.solve_segments(5.0, 1));
  expect_identical_interleaved(backend.solve_segments(5.0, 3).interleaved,
                               reference.solve_segments(5.0, 3));
  // No min-ρ fallback in this family: an infeasible Solution, and the
  // fallback flag on solve is accepted-but-ignored.
  EXPECT_FALSE(backend.min_rho(SpeedPolicy::kTwoSpeed).feasible());
  EXPECT_FALSE(
      backend.solve(5.0, SpeedPolicy::kTwoSpeed, true).used_fallback);

  // A pinned count stays pinned through the generic solve.
  InterleavedBackend pinned(params, 6, 3);
  pinned.prepare();
  expect_identical_interleaved(
      pinned.solve(5.0, SpeedPolicy::kTwoSpeed, false).interleaved,
      reference.solve_segments(5.0, 3));

  // Construction-time rejection (never inside a worker).
  ModelParams failstop = params;
  failstop.lambda_failstop = 1e-5;
  EXPECT_THROW(InterleavedBackend(failstop, 4), std::invalid_argument);
  EXPECT_THROW(InterleavedBackend(params, 0), std::invalid_argument);
  EXPECT_THROW(InterleavedBackend(params, 4, 5), std::invalid_argument);
}

TEST(SolverBackend, PanelPointKernelCoversEveryAxisShape) {
  // The shared per-grid-point kernel: ρ-axis x is the bound, segments-axis
  // x is the pinned count, model axes use the panel bound.
  const ModelParams params = hot_params();
  InterleavedBackend interleaved(params, 6);
  interleaved.prepare();
  const InterleavedSolver reference(params, 6);

  const PanelPoint rho_point = interleaved.solve_panel_point(
      SweepAxis::kPerformanceBound, 5.0, 99.0, false);
  expect_identical_interleaved(rho_point.primary.interleaved,
                               reference.solve(5.0));
  expect_identical_interleaved(rho_point.baseline.interleaved,
                               reference.solve_segments(5.0, 1));

  const PanelPoint m_point =
      interleaved.solve_panel_point(SweepAxis::kSegments, 3.0, 5.0, false);
  expect_identical_interleaved(m_point.primary.interleaved,
                               reference.solve_segments(5.0, 3));
  EXPECT_GE(m_point.energy_saving(), 0.0);

  const ClosedFormBackend pair(test::params_for("Hera/XScale"),
                               EvalMode::kFirstOrder);
  const BiCritSolver pair_reference(test::params_for("Hera/XScale"));
  const PanelPoint c_point =
      pair.solve_panel_point(SweepAxis::kCheckpointTime, 1000.0, 3.0, true);
  EXPECT_DOUBLE_EQ(c_point.x, 1000.0);
  // Model axes assume a rebound backend; the bound is the panel's ρ.
  expect_identical_pair(
      c_point.primary.pair,
      pair_reference.solve(3.0, SpeedPolicy::kTwoSpeed).best);
  expect_identical_pair(
      c_point.baseline.pair,
      pair_reference.solve(3.0, SpeedPolicy::kSingleSpeed).best);
}

TEST(MakeModeBackend, DispatchesOnTheEvalMode) {
  const ModelParams params = test::params_for("Hera/XScale");
  EXPECT_STREQ(make_mode_backend(params, EvalMode::kFirstOrder)->name(),
               "first-order");
  EXPECT_STREQ(
      make_mode_backend(params, EvalMode::kExactEvaluation)->name(),
      "exact-eval");
  const auto exact = make_mode_backend(params, EvalMode::kExactOptimize);
  EXPECT_STREQ(exact->name(), "exact-opt");
  EXPECT_TRUE(exact->needs_prepare());
}

}  // namespace
}  // namespace rexspeed::core
