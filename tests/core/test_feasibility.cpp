#include "rexspeed/core/feasibility.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>

#include "test_util.hpp"

namespace rexspeed::core {
namespace {

TEST(SolveQuadratic, TwoDistinctRoots) {
  const QuadraticRoots roots = solve_quadratic(1.0, -5.0, 6.0);
  ASSERT_EQ(roots.count, 2);
  EXPECT_NEAR(roots.lower, 2.0, 1e-12);
  EXPECT_NEAR(roots.upper, 3.0, 1e-12);
}

TEST(SolveQuadratic, DoubleRoot) {
  const QuadraticRoots roots = solve_quadratic(1.0, -4.0, 4.0);
  ASSERT_EQ(roots.count, 1);
  EXPECT_NEAR(roots.lower, 2.0, 1e-12);
}

TEST(SolveQuadratic, NoRealRoots) {
  EXPECT_EQ(solve_quadratic(1.0, 0.0, 1.0).count, 0);
}

TEST(SolveQuadratic, LinearFallback) {
  const QuadraticRoots roots = solve_quadratic(0.0, 2.0, -8.0);
  ASSERT_EQ(roots.count, 1);
  EXPECT_NEAR(roots.lower, 4.0, 1e-12);
  EXPECT_EQ(solve_quadratic(0.0, 0.0, 1.0).count, 0);
}

TEST(SolveQuadratic, StableForTinyRoot) {
  // x² − 1e8·x + 1 = 0: roots ≈ 1e8 and 1e-8. The naive formula loses the
  // small root to cancellation; the q-formula keeps full precision.
  const QuadraticRoots roots = solve_quadratic(1.0, -1e8, 1.0);
  ASSERT_EQ(roots.count, 2);
  EXPECT_NEAR(roots.lower, 1e-8, 1e-16);
  EXPECT_NEAR(roots.upper, 1e8, 1.0);
}

TEST(SolveQuadratic, NegativeLeadingCoefficient) {
  // −x² + x + 6 = 0 ⇒ roots −2 and 3.
  const QuadraticRoots roots = solve_quadratic(-1.0, 1.0, 6.0);
  ASSERT_EQ(roots.count, 2);
  EXPECT_NEAR(roots.lower, -2.0, 1e-12);
  EXPECT_NEAR(roots.upper, 3.0, 1e-12);
}

TEST(FeasibleInterval, StandardTwoRootCase) {
  // overhead(W) = 1 + 0.01 W + 100/W ≤ 4 ⇔ 0.01W² − 3W + 100 ≤ 0.
  const OverheadExpansion exp{.x = 1.0, .y = 0.01, .z = 100.0};
  const FeasibleInterval interval = feasible_interval(exp, 4.0);
  ASSERT_EQ(interval.status, FeasibleInterval::Status::kFeasible);
  EXPECT_NEAR(exp.evaluate(interval.w_min), 4.0, 1e-9);
  EXPECT_NEAR(exp.evaluate(interval.w_max), 4.0, 1e-9);
  EXPECT_LT(interval.w_min, interval.w_max);
}

TEST(FeasibleInterval, InfeasibleBelowRhoMin) {
  const OverheadExpansion exp{.x = 1.0, .y = 0.01, .z = 100.0};
  const double bound = rho_min(exp);  // 1 + 2·√1 = 3
  EXPECT_NEAR(bound, 3.0, 1e-12);
  EXPECT_EQ(feasible_interval(exp, bound - 1e-6).status,
            FeasibleInterval::Status::kInfeasible);
  EXPECT_EQ(feasible_interval(exp, bound + 1e-6).status,
            FeasibleInterval::Status::kFeasible);
}

TEST(FeasibleInterval, TightAtRhoMinTheIntervalCollapses) {
  const OverheadExpansion exp{.x = 1.0, .y = 0.01, .z = 100.0};
  const FeasibleInterval interval = feasible_interval(exp, 3.0 + 1e-9);
  ASSERT_EQ(interval.status, FeasibleInterval::Status::kFeasible);
  // Both endpoints collapse onto argmin = √(z/y) = 100.
  EXPECT_NEAR(interval.w_min, 100.0, 0.5);
  EXPECT_NEAR(interval.w_max, 100.0, 0.5);
}

TEST(FeasibleInterval, ErrorFreeCaseIsHalfLine) {
  const OverheadExpansion exp{.x = 1.0, .y = 0.0, .z = 100.0};
  const FeasibleInterval interval = feasible_interval(exp, 2.0);
  ASSERT_EQ(interval.status, FeasibleInterval::Status::kUnbounded);
  EXPECT_NEAR(interval.w_min, 100.0, 1e-9);  // 100/W ≤ 1 ⇒ W ≥ 100
  EXPECT_TRUE(std::isinf(interval.w_max));
}

TEST(FeasibleInterval, ErrorFreeInfeasibleWhenAsymptoteTooSlow) {
  const OverheadExpansion exp{.x = 3.0, .y = 0.0, .z = 100.0};
  EXPECT_EQ(feasible_interval(exp, 2.0).status,
            FeasibleInterval::Status::kInfeasible);
}

TEST(FeasibleInterval, NegativeYIsUnboundedBeyondCrossing) {
  // Invalid first-order regime: overhead eventually sinks below any bound.
  const OverheadExpansion exp{.x = 2.0, .y = -0.001, .z = 100.0};
  const FeasibleInterval interval = feasible_interval(exp, 2.5);
  ASSERT_EQ(interval.status, FeasibleInterval::Status::kUnbounded);
  EXPECT_GT(interval.w_min, 0.0);
  EXPECT_NEAR(exp.evaluate(interval.w_min), 2.5, 1e-9);
  EXPECT_TRUE(std::isinf(interval.w_max));
}

TEST(FeasibleInterval, RejectsNonPositiveRho) {
  const OverheadExpansion exp{.x = 1.0, .y = 0.01, .z = 100.0};
  EXPECT_THROW(feasible_interval(exp, 0.0), std::invalid_argument);
}

TEST(RhoMin, MatchesLiteralEq6OnPaperConfigs) {
  for (const char* name : {"Hera/XScale", "Atlas/Crusoe", "Coastal/XScale"}) {
    const ModelParams p = test::params_for(name);
    for (const double si : p.speeds) {
      for (const double sj : p.speeds) {
        const double via_expansion = rho_min(time_expansion(p, si, sj));
        const double via_eq6 = rho_min_eq6(p, si, sj);
        EXPECT_NEAR(via_expansion, via_eq6, 1e-9 * via_eq6)
            << name << " (" << si << "," << sj << ")";
      }
    }
  }
}

TEST(RhoMin, MinusInfinityWhenExpansionInvalid) {
  const OverheadExpansion exp{.x = 1.0, .y = -0.1, .z = 10.0};
  EXPECT_TRUE(std::isinf(rho_min(exp)));
  EXPECT_LT(rho_min(exp), 0.0);
}

TEST(RhoMinEq6, HeraXScaleLowestSpeedNeedsLargeBound) {
  // §4.2: σ1 = 0.15 is infeasible at ρ = 3 but feasible at ρ = 8 —
  // so ρ_min(0.15, ·) must lie between.
  const ModelParams p = test::params_for("Hera/XScale");
  double best = std::numeric_limits<double>::infinity();
  for (const double sj : p.speeds) {
    best = std::min(best, rho_min_eq6(p, 0.15, sj));
  }
  EXPECT_GT(best, 3.0);
  EXPECT_LT(best, 8.0);
}

}  // namespace
}  // namespace rexspeed::core
