// The persistent result store: hashing primitives against published test
// vectors, content-address derivation (stability + sensitivity), the
// local tier's disk contract (roundtrip, sidecars, verify/gc, persisted
// counters, cost table), and the null/remote tiers.

#include "rexspeed/store/result_store.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "rexspeed/engine/backend_registry.hpp"
#include "rexspeed/engine/scenario.hpp"
#include "rexspeed/store/hash.hpp"
#include "rexspeed/store/serialize.hpp"
#include "rexspeed/store/store_key.hpp"

namespace rexspeed::store {
namespace {

namespace fs = std::filesystem;

class ResultStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("rexspeed_store_" + std::string(::testing::UnitTest::GetInstance()
                                                ->current_test_info()
                                                ->name()));
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  fs::path dir_;
};

// ---- hashing primitives --------------------------------------------------

TEST(StoreHash, Sha256MatchesFipsTestVectors) {
  // FIPS 180-4 appendix examples.
  EXPECT_EQ(to_hex(Sha256::of("abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  EXPECT_EQ(to_hex(Sha256::of("")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(to_hex(Sha256::of(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(StoreHash, Sha256IncrementalMatchesOneShot) {
  Sha256 incremental;
  incremental.update("abcdbcdecdefdefgefghfghighij", 28);
  incremental.update("hijkijkljklmklmnlmnomnopnopq", 28);
  EXPECT_EQ(to_hex(incremental.finish()),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(StoreHash, Fnv1a64MatchesReferenceValues) {
  EXPECT_EQ(fnv1a64(std::string_view{}), 0xcbf29ce484222325ull);
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(to_hex(std::uint64_t{0xaf63dc4c8601ec8cull}),
            "af63dc4c8601ec8c");
}

// ---- key derivation ------------------------------------------------------

TEST(StoreKey, PanelKeyIsStableAndIgnoresExecutionKnobs) {
  engine::ScenarioSpec spec;
  spec.configuration = "Hera/XScale";
  const auto backend = engine::make_backend(spec);
  const std::vector<double> grid = {1.5, 2.0, 3.0};
  sweep::SweepOptions options;

  const std::string key =
      panel_key(*backend, spec.configuration,
                sweep::SweepParameter::kPerformanceBound, grid, options);
  EXPECT_EQ(key.size(), 64u);  // SHA-256 hex
  EXPECT_EQ(key,
            panel_key(*backend, spec.configuration,
                      sweep::SweepParameter::kPerformanceBound, grid,
                      options));

  // Bit-identity-contracted execution knobs (batched vs pointwise) must
  // NOT split the address space: both paths produce the same bytes.
  sweep::SweepOptions batched = options;
  batched.batch = sweep::BatchMode::kOn;
  EXPECT_EQ(key,
            panel_key(*backend, spec.configuration,
                      sweep::SweepParameter::kPerformanceBound, grid,
                      batched));

  // Everything that can change the output bits must change the key.
  sweep::SweepOptions other_rho = options;
  other_rho.rho = options.rho + 1.0;
  EXPECT_NE(key,
            panel_key(*backend, spec.configuration,
                      sweep::SweepParameter::kPerformanceBound, grid,
                      other_rho));
  sweep::SweepOptions no_chain = options;
  no_chain.warm_start_chain = false;
  EXPECT_NE(key,
            panel_key(*backend, spec.configuration,
                      sweep::SweepParameter::kPerformanceBound, grid,
                      no_chain));
  EXPECT_NE(key, panel_key(*backend, spec.configuration,
                           sweep::SweepParameter::kCheckpointTime, grid,
                           options));
  const std::vector<double> other_grid = {1.5, 2.0, 3.5};
  EXPECT_NE(key,
            panel_key(*backend, spec.configuration,
                      sweep::SweepParameter::kPerformanceBound, other_grid,
                      options));

  engine::ScenarioSpec exact = spec;
  exact.mode = core::EvalMode::kExactOptimize;
  const auto exact_backend = engine::make_backend(exact);
  EXPECT_NE(key,
            panel_key(*exact_backend, spec.configuration,
                      sweep::SweepParameter::kPerformanceBound, grid,
                      options));
}

TEST(StoreKey, SolveKeyDependsOnPolicyBoundAndFallback) {
  engine::ScenarioSpec spec;
  spec.configuration = "Hera/XScale";
  const auto backend = engine::make_backend(spec);
  const std::string key = solve_key(*backend, 3.0,
                                    core::SpeedPolicy::kTwoSpeed, true);
  EXPECT_EQ(key, solve_key(*backend, 3.0, core::SpeedPolicy::kTwoSpeed,
                           true));
  EXPECT_NE(key, solve_key(*backend, 3.5, core::SpeedPolicy::kTwoSpeed,
                           true));
  EXPECT_NE(key, solve_key(*backend, 3.0, core::SpeedPolicy::kSingleSpeed,
                           true));
  EXPECT_NE(key, solve_key(*backend, 3.0, core::SpeedPolicy::kTwoSpeed,
                           false));
}

TEST(StoreKey, CostKeyIsCoarse) {
  engine::ScenarioSpec spec;
  spec.configuration = "Hera/XScale";
  const auto backend = engine::make_backend(spec);
  const std::string key =
      cost_key(*backend, sweep::SweepParameter::kPerformanceBound);
  EXPECT_EQ(key.size(), 16u);  // FNV-1a 64 hex
  EXPECT_EQ(key, cost_key(*backend, sweep::SweepParameter::kPerformanceBound));
  EXPECT_NE(key, cost_key(*backend, sweep::SweepParameter::kCheckpointTime));
}

// ---- serialization -------------------------------------------------------

TEST(StoreSerialize, SolutionRoundTripsBitForBit) {
  core::Solution solution;
  solution.kind = core::SolutionKind::kPair;
  solution.pair.sigma1 = 0.4;
  solution.pair.sigma2 = 0.81;
  solution.pair.sigma1_index = 1;
  solution.pair.sigma2_index = 3;
  solution.pair.feasible = true;
  solution.pair.first_order_valid = false;
  solution.pair.rho_min = 1.25;
  solution.pair.w_opt = 2764.25;
  solution.pair.w_energy = std::numeric_limits<double>::infinity();
  solution.pair.w_min = 12.5;
  solution.pair.w_max = std::numeric_limits<double>::quiet_NaN();
  solution.pair.energy_overhead = 416.8125;
  solution.pair.time_overhead = 2.6837;
  solution.used_fallback = true;

  const std::string blob = serialize_solution(solution);
  EXPECT_EQ(payload_kind(blob), PayloadKind::kSolution);
  // Serialize(deserialize(x)) is a fixed point — including non-finite
  // doubles, whose bit patterns must survive the trip untouched.
  EXPECT_EQ(serialize_solution(deserialize_solution(blob)), blob);
}

TEST(StoreSerialize, CorruptedBytesAreDetected) {
  const sweep::PanelSeries series = [] {
    sweep::PanelSeries s;
    s.configuration = "Hera/XScale";
    s.rho = 3.0;
    s.points.resize(2);
    s.points[0].x = 1.5;
    s.points[1].x = 2.5;
    return s;
  }();
  const std::string blob = serialize_panel_series(series);
  EXPECT_EQ(serialize_panel_series(deserialize_panel_series(blob)), blob);

  std::string corrupt = blob;
  corrupt[corrupt.size() / 2] ^= 0x01;  // one flipped bit anywhere
  EXPECT_THROW((void)deserialize_panel_series(corrupt), SerializeError);
  EXPECT_THROW((void)deserialize_panel_series(blob.substr(0, 10)),
               SerializeError);
  EXPECT_THROW((void)deserialize_solution(blob), SerializeError);  // kind
}

// ---- local tier ----------------------------------------------------------

TEST_F(ResultStoreTest, LocalPutFetchRoundTripsWithSidecar) {
  LocalResultStore store(dir_);
  const std::string key(64, 'a');
  const std::string blob = serialize_solution(core::Solution{});

  EXPECT_FALSE(store.fetch(key).has_value());  // miss first

  EntryInfo info;
  info.kind = "solution";
  info.scenario = "fig02";
  info.configuration = "Hera/XScale";
  info.backend = "closed-form";
  info.backend_version = "cf-1";
  info.axis = "-";
  info.points = 1;
  store.put(key, blob, info);

  const auto fetched = store.fetch(key);
  ASSERT_TRUE(fetched.has_value());
  EXPECT_EQ(*fetched, blob);

  const auto sidecar = store.info(key);
  ASSERT_TRUE(sidecar.has_value());
  EXPECT_EQ(sidecar->key, key);
  EXPECT_EQ(sidecar->kind, "solution");
  EXPECT_EQ(sidecar->scenario, "fig02");
  EXPECT_EQ(sidecar->backend_version, "cf-1");
  EXPECT_EQ(sidecar->data_size, blob.size());
  EXPECT_EQ(sidecar->data_hash,
            "fnv1a64:" + to_hex(fnv1a64(blob.data(), blob.size())));

  const StoreStats stats = store.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.stores, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_TRUE(store.verify().empty());
}

TEST_F(ResultStoreTest, CountersPersistAcrossInstances) {
  const std::string key(64, 'b');
  {
    LocalResultStore store(dir_);
    (void)store.fetch(key);  // miss
    store.put(key, serialize_solution(core::Solution{}), EntryInfo{});
    (void)store.fetch(key);  // hit
  }  // destructor flushes
  LocalResultStore reopened(dir_);
  const StoreStats stats = reopened.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.stores, 1u);
}

TEST_F(ResultStoreTest, CorruptEntriesAreMissesUntilHealed) {
  LocalResultStore store(dir_);
  const std::string key(64, 'c');
  const std::string blob = serialize_solution(core::Solution{});
  store.put(key, blob, EntryInfo{});

  // Flip one payload byte on disk: fetch must report a miss (corrupt
  // counter bumped), verify must flag the key, and the entry must stay on
  // disk for inspection until gc or a healing re-put.
  const fs::path entry = dir_ / "entries" / (key + ".bin");
  {
    std::fstream file(entry, std::ios::in | std::ios::out |
                                 std::ios::binary);
    file.seekp(9);
    file.put('\xff');
  }
  EXPECT_FALSE(store.fetch(key).has_value());
  EXPECT_EQ(store.stats().corrupt, 1u);
  const std::vector<std::string> bad = store.verify();
  ASSERT_EQ(bad.size(), 1u);
  EXPECT_EQ(bad.front(), key);

  store.put(key, blob, EntryInfo{});  // healing re-put
  EXPECT_TRUE(store.fetch(key).has_value());
  EXPECT_TRUE(store.verify().empty());
}

TEST_F(ResultStoreTest, GcRemovesWhatVerifyFlags) {
  LocalResultStore store(dir_);
  const std::string good(64, 'd');
  const std::string bad(64, 'e');
  store.put(good, serialize_solution(core::Solution{}), EntryInfo{});
  store.put(bad, serialize_solution(core::Solution{}), EntryInfo{});
  std::ofstream(dir_ / "entries" / (bad + ".bin"), std::ios::trunc)
      << "garbage";
  // An orphan sidecar (no payload) is damage too.
  std::ofstream(dir_ / "entries" / (std::string(64, 'f') + ".info"))
      << "Key: " << std::string(64, 'f') << "\n";

  EXPECT_EQ(store.verify().size(), 2u);
  EXPECT_EQ(store.gc(), 2u);
  EXPECT_TRUE(store.verify().empty());
  EXPECT_TRUE(store.fetch(good).has_value());
  EXPECT_FALSE(store.fetch(bad).has_value());
}

TEST_F(ResultStoreTest, CostTableRoundTrips) {
  LocalResultStore store(dir_);
  const std::string key = "0123456789abcdef";
  EXPECT_FALSE(store.lookup_cost(key).has_value());
  store.record_cost(key, 1.25e-4);
  const auto cost = store.lookup_cost(key);
  ASSERT_TRUE(cost.has_value());
  EXPECT_EQ(*cost, 1.25e-4);
  // Persisted: a fresh instance sees it.
  LocalResultStore reopened(dir_);
  EXPECT_TRUE(reopened.lookup_cost(key).has_value());
}

TEST_F(ResultStoreTest, InvalidKeysAreRejectedNotPathTraversed) {
  // Keys are lower-case hex by construction; anything else is a caller
  // bug (and a path-traversal hazard), reported loudly — not a miss.
  LocalResultStore store(dir_);
  EXPECT_THROW((void)store.fetch("../../etc/passwd"), StoreError);
  EXPECT_THROW((void)store.fetch("UPPER"), StoreError);
  EXPECT_THROW((void)store.fetch(""), StoreError);
}

// ---- sidecar format ------------------------------------------------------

TEST(StoreSidecar, FormatParseRoundTrips) {
  EntryInfo info;
  info.key = std::string(64, 'a');
  info.kind = "panel";
  info.scenario = "fig05";
  info.configuration = "Atlas/Crusoe";
  info.backend = "exact-opt";
  info.backend_version = "exact-1";
  info.axis = "rho";
  info.points = 51;
  info.data_size = 4096;
  info.data_hash = "fnv1a64:0123456789abcdef";
  info.cost_seconds_per_point = 3.5e-3;

  const EntryInfo parsed = parse_entry_info(format_entry_info(info));
  EXPECT_EQ(parsed.key, info.key);
  EXPECT_EQ(parsed.kind, info.kind);
  EXPECT_EQ(parsed.scenario, info.scenario);
  EXPECT_EQ(parsed.configuration, info.configuration);
  EXPECT_EQ(parsed.backend, info.backend);
  EXPECT_EQ(parsed.backend_version, info.backend_version);
  EXPECT_EQ(parsed.axis, info.axis);
  EXPECT_EQ(parsed.points, info.points);
  EXPECT_EQ(parsed.data_size, info.data_size);
  EXPECT_EQ(parsed.data_hash, info.data_hash);
  EXPECT_EQ(parsed.cost_seconds_per_point, info.cost_seconds_per_point);

  // Unknown fields are skipped (forward compatibility); a sidecar with no
  // usable Key line is structurally broken.
  EXPECT_EQ(parse_entry_info("Key: abc\nFutureField: 7\n").key, "abc");
  EXPECT_THROW((void)parse_entry_info("Kind: panel\n"), StoreError);
}

// ---- null + remote tiers and the factory ---------------------------------

TEST(StoreFactory, DispatchesOnSpecVocabulary) {
  EXPECT_STREQ(make_store("")->tier_name(), "null");
  EXPECT_STREQ(make_store("none")->tier_name(), "null");
  EXPECT_STREQ(make_store("https://cache.example.org")->tier_name(),
               "remote");
  EXPECT_STREQ(make_store("s3://bucket/prefix")->tier_name(), "remote");
  const fs::path dir =
      fs::temp_directory_path() / "rexspeed_store_factory_local";
  fs::remove_all(dir);
  EXPECT_STREQ(make_store("file://" + dir.string())->tier_name(), "local");
  fs::remove_all(dir);
}

TEST(StoreTiers, NullStoreMissesAndSwallowsPuts) {
  NullResultStore store;
  EXPECT_FALSE(store.fetch("abc").has_value());
  store.put("abc", "bytes", EntryInfo{});
  EXPECT_FALSE(store.fetch("abc").has_value());
  EXPECT_EQ(store.stats().misses, 2u);
  EXPECT_EQ(store.stats().stores, 0u);
}

TEST(StoreTiers, RemoteStoreConstructsButThrowsOnUse) {
  const auto store = make_store("https://cache.example.org/rexspeed");
  EXPECT_THROW((void)store->fetch(std::string(64, 'a')), StoreError);
  EXPECT_THROW(store->put(std::string(64, 'a'), "x", EntryInfo{}),
               StoreError);
  EXPECT_THROW((void)store->stats(), StoreError);
}

}  // namespace
}  // namespace rexspeed::store
