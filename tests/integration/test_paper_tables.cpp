// Full reproduction of the four §4.2 tables (Hera/XScale): every row's
// best second speed, optimal pattern size and energy overhead, the
// infeasibility dashes, and the bold (global-best) marker.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "rexspeed/sweep/section42_tables.hpp"
#include "test_util.hpp"

namespace rexspeed {
namespace {

struct ExpectedRow {
  double sigma1;
  bool feasible;
  double sigma2;
  double w_opt;
  double energy;
  bool bold;
};

struct ExpectedTable {
  double rho;
  std::vector<ExpectedRow> rows;
};

// Values printed in the paper; Wopt within ±1.5 (the paper rounds to
// integers and differs by one unit in two cells due to rounding in the
// intermediate W1/W2), energy within ±1.
const std::vector<ExpectedTable>& expected_tables() {
  static const std::vector<ExpectedTable> kTables = {
      {8.0,
       {{0.15, true, 0.4, 1711, 466, false},
        {0.4, true, 0.4, 2764, 416, true},
        {0.6, true, 0.4, 3639, 674, false},
        {0.8, true, 0.4, 4627, 1082, false},
        {1.0, true, 0.4, 5742, 1625, false}}},
      {3.0,
       {{0.15, false, 0, 0, 0, false},
        {0.4, true, 0.4, 2764, 416, true},
        {0.6, true, 0.4, 3639, 674, false},
        {0.8, true, 0.4, 4627, 1082, false},
        {1.0, true, 0.4, 5742, 1625, false}}},
      {1.775,
       {{0.15, false, 0, 0, 0, false},
        {0.4, false, 0, 0, 0, false},
        {0.6, true, 0.8, 4251, 690, true},
        {0.8, true, 0.4, 4627, 1082, false},
        {1.0, true, 0.4, 5742, 1625, false}}},
      {1.4,
       {{0.15, false, 0, 0, 0, false},
        {0.4, false, 0, 0, 0, false},
        {0.6, false, 0, 0, 0, false},
        {0.8, true, 0.4, 4627, 1082, true},
        {1.0, true, 0.4, 5742, 1625, false}}}};
  return kTables;
}

class Section42Tables : public ::testing::TestWithParam<std::size_t> {};

TEST_P(Section42Tables, MatchesPaperExactly) {
  const ExpectedTable& expected = expected_tables()[GetParam()];
  const auto params = test::params_for("Hera/XScale");
  const auto rows = sweep::speed_pair_table(params, expected.rho);
  ASSERT_EQ(rows.size(), expected.rows.size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    SCOPED_TRACE("rho=" + std::to_string(expected.rho) +
                 " sigma1=" + std::to_string(expected.rows[i].sigma1));
    EXPECT_DOUBLE_EQ(rows[i].sigma1, expected.rows[i].sigma1);
    ASSERT_EQ(rows[i].feasible, expected.rows[i].feasible);
    EXPECT_EQ(rows[i].is_global_best, expected.rows[i].bold);
    if (!expected.rows[i].feasible) continue;
    EXPECT_DOUBLE_EQ(rows[i].best_sigma2, expected.rows[i].sigma2);
    EXPECT_NEAR(rows[i].w_opt, expected.rows[i].w_opt, 1.5);
    EXPECT_NEAR(rows[i].energy_overhead, expected.rows[i].energy, 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(AllFourBounds, Section42Tables,
                         ::testing::Values(0u, 1u, 2u, 3u),
                         [](const auto& info) {
                           const double rho =
                               expected_tables()[info.param].rho;
                           return "rho_" + std::to_string(
                                               static_cast<int>(rho * 1000));
                         });

TEST(Section42Tables, ExactEvaluationAgreesWithFirstOrderWithinHalfPercent) {
  // The paper evaluates overheads with the first-order formulas; verify
  // those numbers survive re-evaluation under the exact expectations.
  const auto params = test::params_for("Hera/XScale");
  const auto fo =
      sweep::speed_pair_table(params, 3.0, core::EvalMode::kFirstOrder);
  const auto exact =
      sweep::speed_pair_table(params, 3.0, core::EvalMode::kExactEvaluation);
  ASSERT_EQ(fo.size(), exact.size());
  for (std::size_t i = 0; i < fo.size(); ++i) {
    if (!fo[i].feasible) continue;
    EXPECT_NEAR(exact[i].energy_overhead, fo[i].energy_overhead,
                5e-3 * fo[i].energy_overhead);
    EXPECT_EQ(exact[i].best_sigma2, fo[i].best_sigma2);
  }
}

}  // namespace
}  // namespace rexspeed
