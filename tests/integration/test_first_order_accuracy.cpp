// How much does the paper's first-order machinery lose against exact
// optimization of the non-expanded model? At the paper's error rates the
// answer must be "essentially nothing" — this is the ablation the solver's
// kExactOptimize mode exists for.

#include <gtest/gtest.h>

#include <string>

#include "rexspeed/core/bicrit_solver.hpp"
#include "rexspeed/core/exact_expectations.hpp"
#include "test_util.hpp"

namespace rexspeed {
namespace {

class FirstOrderAccuracy : public ::testing::TestWithParam<std::string> {};

TEST_P(FirstOrderAccuracy, ClosedFormLosesUnderHalfPercent) {
  const core::BiCritSolver solver(test::params_for(GetParam()));
  const core::BiCritSolution fo =
      solver.solve(3.0, core::SpeedPolicy::kTwoSpeed,
                   core::EvalMode::kFirstOrder);
  const core::BiCritSolution exact =
      solver.solve(3.0, core::SpeedPolicy::kTwoSpeed,
                   core::EvalMode::kExactOptimize);
  ASSERT_TRUE(fo.feasible);
  ASSERT_TRUE(exact.feasible);

  // Evaluate the first-order policy under the exact model and compare with
  // the exact optimum: the regret of using Theorem 1.
  const double fo_exact_energy = core::energy_overhead(
      solver.params(), fo.best.w_opt, fo.best.sigma1, fo.best.sigma2);
  EXPECT_LE(fo_exact_energy,
            exact.best.energy_overhead * 1.005)
      << GetParam();
  // And the exact optimum can never beat itself being re-found by the
  // closed form by more than that same margin.
  EXPECT_GE(fo_exact_energy, exact.best.energy_overhead * (1.0 - 1e-9));
}

TEST_P(FirstOrderAccuracy, PatternSizesAgreeWithinTwoPercent) {
  const core::BiCritSolver solver(test::params_for(GetParam()));
  const auto fo = solver.solve(3.0, core::SpeedPolicy::kTwoSpeed,
                               core::EvalMode::kFirstOrder);
  ASSERT_TRUE(fo.feasible);
  const auto exact = solver.solve_pair(3.0, fo.best.sigma1, fo.best.sigma2,
                                       core::EvalMode::kExactOptimize);
  ASSERT_TRUE(exact.feasible);
  // The shift grows with λ·W/σ; CoastalSSD/Crusoe (largest C, slowest
  // speeds) peaks at ~3.7%.
  EXPECT_NEAR(exact.w_opt, fo.best.w_opt, 0.05 * fo.best.w_opt)
      << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    AllEightConfigs, FirstOrderAccuracy,
    ::testing::Values("Hera/XScale", "Atlas/XScale", "Coastal/XScale",
                      "CoastalSSD/XScale", "Hera/Crusoe", "Atlas/Crusoe",
                      "Coastal/Crusoe", "CoastalSSD/Crusoe"),
    [](const auto& info) {
      std::string name = info.param;
      for (auto& ch : name) {
        if (ch == '/') ch = '_';
      }
      return name;
    });

TEST(FirstOrderAccuracy, DegradesGracefullyAtHighErrorRates) {
  // At λ = 1e-3 (MTBF ≈ 17 min) λW is no longer small; the closed form may
  // drift but should still land within a few percent of the exact optimum.
  core::ModelParams p = test::params_for("Hera/XScale");
  p.lambda_silent = 1e-3;
  const core::BiCritSolver solver(p);
  const auto fo = solver.solve(3.0, core::SpeedPolicy::kTwoSpeed,
                               core::EvalMode::kFirstOrder);
  const auto exact = solver.solve(3.0, core::SpeedPolicy::kTwoSpeed,
                                  core::EvalMode::kExactOptimize);
  ASSERT_TRUE(fo.feasible);
  ASSERT_TRUE(exact.feasible);
  const double fo_exact_energy = core::energy_overhead(
      p, fo.best.w_opt, fo.best.sigma1, fo.best.sigma2);
  EXPECT_LE(fo_exact_energy, exact.best.energy_overhead * 1.05);
}

}  // namespace
}  // namespace rexspeed
