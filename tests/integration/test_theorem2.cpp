// Theorem 2 — the paper's "striking" result: with fail-stop errors only
// and re-execution at twice the first speed, the optimal pattern size
// scales as Θ(λ^{-2/3}) instead of the Young/Daly Θ(λ^{-1/2}). We verify
// the exponent on the *exact* model (not just the printed formula) by
// regressing log Wopt against log λ.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "rexspeed/core/numeric_optimizer.hpp"
#include "rexspeed/core/second_order.hpp"
#include "rexspeed/stats/regression.hpp"
#include "test_util.hpp"

namespace rexspeed {
namespace {

core::ModelParams failstop_only(double lambda) {
  core::ModelParams p = test::toy_params();
  p.lambda_silent = 0.0;
  p.lambda_failstop = lambda;
  p.checkpoint_s = 600.0;
  p.recovery_s = 600.0;
  p.verification_s = 0.0;
  return p;
}

std::vector<double> lambda_grid() {
  return {1e-7, 2e-7, 5e-7, 1e-6, 2e-6, 5e-6, 1e-5};
}

stats::LinearFit fit_exponent(double sigma1, double sigma2) {
  std::vector<double> lambdas;
  std::vector<double> wopts;
  for (const double lam : lambda_grid()) {
    lambdas.push_back(lam);
    wopts.push_back(core::minimize_exact_time_overhead(failstop_only(lam),
                                                       sigma1, sigma2));
  }
  return stats::log_log_fit(lambdas, wopts);
}

TEST(Theorem2, ExactModelExponentIsMinusTwoThirdsAtDoubleSpeed) {
  const stats::LinearFit fit = fit_exponent(0.5, 1.0);  // σ2 = 2σ1
  EXPECT_NEAR(fit.slope, -2.0 / 3.0, 0.02);
  EXPECT_GT(fit.r_squared, 0.999);
}

TEST(Theorem2, SingleSpeedExponentIsMinusOneHalf) {
  // Young/Daly regime for comparison.
  const stats::LinearFit fit = fit_exponent(0.5, 0.5);
  EXPECT_NEAR(fit.slope, -0.5, 0.02);
  EXPECT_GT(fit.r_squared, 0.999);
}

TEST(Theorem2, IntermediateRatioStaysNearOneHalf) {
  // For σ2/σ1 < 2 the first-order term dominates again.
  const stats::LinearFit fit = fit_exponent(0.5, 0.75);
  EXPECT_NEAR(fit.slope, -0.5, 0.05);
}

TEST(Theorem2, ClosedFormTracksExactMinimizer) {
  for (const double lam : {1e-7, 1e-6, 1e-5}) {
    const core::ModelParams p = failstop_only(lam);
    const double exact = core::minimize_exact_time_overhead(p, 0.5, 1.0);
    const double closed =
        core::theorem2_pattern_size(p.checkpoint_s, lam, 0.5);
    // Second-order truncation: agreement tightens as λ → 0.
    EXPECT_NEAR(exact, closed, 0.08 * closed) << "lambda=" << lam;
  }
}

TEST(Theorem2, ClosedFormConvergesToExactAsLambdaShrinks) {
  double prev_rel = 1.0;
  for (const double lam : {1e-5, 1e-6, 1e-7}) {
    const core::ModelParams p = failstop_only(lam);
    const double exact = core::minimize_exact_time_overhead(p, 0.5, 1.0);
    const double closed =
        core::theorem2_pattern_size(p.checkpoint_s, lam, 0.5);
    const double rel = std::abs(exact - closed) / closed;
    EXPECT_LT(rel, prev_rel + 1e-12) << "lambda=" << lam;
    prev_rel = rel;
  }
}

}  // namespace
}  // namespace rexspeed
