// Qualitative reproduction of the claims the paper makes about Figures
// 2–7 (Atlas/Crusoe) and the §4.3 discussion: which speed pairs win where,
// how Wopt moves with each parameter, and the headline "up to 35% energy
// savings". Absolute thresholds are anchored on the model, not on noise —
// these assertions fail loudly if the solver's behaviour changes shape.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>

#include "rexspeed/sweep/figure_sweeps.hpp"
#include "rexspeed/sweep/grid.hpp"
#include "test_util.hpp"

namespace rexspeed {
namespace {

using sweep::FigureSeries;
using sweep::SweepOptions;
using sweep::SweepParameter;

const platform::Configuration& atlas_crusoe() {
  return platform::configuration_by_name("Atlas/Crusoe");
}

SweepOptions dense() {
  SweepOptions options;
  options.points = 101;
  return options;
}

TEST(Figure2, CheckpointSweepSpeedPairEvolution) {
  // §4.3.1: "the optimal speed pair starts at (0.45, 0.45) when C is small
  // and reaches (0.45, 0.8) when C is increased to 5000 seconds."
  const FigureSeries series = run_figure_sweep(
      atlas_crusoe(), SweepParameter::kCheckpointTime, dense());
  const auto& first = series.points.front().two_speed;
  EXPECT_DOUBLE_EQ(first.sigma1, 0.45);
  EXPECT_DOUBLE_EQ(first.sigma2, 0.45);
  const auto& last = series.points.back().two_speed;
  EXPECT_DOUBLE_EQ(last.sigma1, 0.45);
  EXPECT_DOUBLE_EQ(last.sigma2, 0.8);
}

TEST(Figure2, UpToThirtyFivePercentSavings) {
  // §4.3.1: "using two speeds achieves up to 35% improvement in the
  // energy overhead" (C sweep peaks just above 32%, the V sweep at 35%).
  const FigureSeries series = run_figure_sweep(
      atlas_crusoe(), SweepParameter::kCheckpointTime, dense());
  EXPECT_GE(series.max_energy_saving(), 0.30);
  EXPECT_LE(series.max_energy_saving(), 0.40);
}

TEST(Figure2, PatternSizeGrowsWithCheckpointCostAtFixedSpeeds) {
  const FigureSeries series = run_figure_sweep(
      atlas_crusoe(), SweepParameter::kCheckpointTime, dense());
  for (std::size_t i = 1; i < series.points.size(); ++i) {
    const auto& prev = series.points[i - 1].two_speed;
    const auto& cur = series.points[i].two_speed;
    if (prev.sigma1 == cur.sigma1 && prev.sigma2 == cur.sigma2) {
      EXPECT_GE(cur.w_opt, prev.w_opt - 1e-9)
          << "x=" << series.points[i].x;
    }
  }
}

TEST(Figure3, VerificationSweepStabilizesAtMixedPair) {
  // §4.3.1: "the optimal speed pair stabilizes at (0.6, 0.45) when V is
  // increased to 5000 seconds" — with ~35% peak savings on the way.
  const FigureSeries series = run_figure_sweep(
      atlas_crusoe(), SweepParameter::kVerificationTime, dense());
  const auto& last = series.points.back().two_speed;
  EXPECT_DOUBLE_EQ(last.sigma1, 0.6);
  EXPECT_DOUBLE_EQ(last.sigma2, 0.45);
  EXPECT_GE(series.max_energy_saving(), 0.33);
  EXPECT_LE(series.max_energy_saving(), 0.40);
}

TEST(Figure4, ErrorRateSweepShrinksPatternsAndRaisesSpeeds) {
  // §4.3.2: Wopt decreases with λ while the execution speeds increase
  // (σ2 first, then σ1, until both reach the maximum).
  const FigureSeries series =
      run_figure_sweep(atlas_crusoe(), SweepParameter::kErrorRate, dense());
  const auto& low = series.points.front().two_speed;
  EXPECT_DOUBLE_EQ(low.sigma1, 0.45);
  EXPECT_DOUBLE_EQ(low.sigma2, 0.45);

  double prev_w = std::numeric_limits<double>::infinity();
  double prev_s1 = 0.0;
  double prev_s2 = 0.0;
  bool prev_fallback = false;
  bool prev_inactive = true;
  for (const auto& point : series.points) {
    const auto& sol = point.two_speed;
    ASSERT_TRUE(sol.feasible);
    // Wopt decreases while the speed pair is unchanged *and* the bound is
    // inactive (Wopt = We). Pair switches reset it upward, and when the
    // bound binds from below (We < W1) Wopt = W1 grows with λ — both are
    // the bumps visible in the paper's Figure 4 middle panel.
    const bool bound_inactive =
        std::abs(sol.w_opt - sol.w_energy) <= 1e-6 * sol.w_opt;
    if (bound_inactive && prev_inactive && sol.sigma1 == prev_s1 &&
        sol.sigma2 == prev_s2 &&
        point.two_speed_fallback == prev_fallback) {
      EXPECT_LE(sol.w_opt, prev_w * (1.0 + 1e-9)) << "lambda=" << point.x;
    }
    EXPECT_GE(sol.sigma1, prev_s1 - 1e-12);  // σ1 never falls back
    prev_w = sol.w_opt;
    prev_s1 = sol.sigma1;
    prev_s2 = sol.sigma2;
    prev_fallback = point.two_speed_fallback;
    prev_inactive = bound_inactive;
  }
  // Beyond the feasibility horizon the fallback pins the fastest speed.
  const auto& high = series.points.back();
  EXPECT_TRUE(high.two_speed_fallback);
  EXPECT_DOUBLE_EQ(high.two_speed.sigma1, 1.0);
}

TEST(Figure5, TighterBoundForcesFasterSpeedsAndMoreEnergy) {
  // §4.3.2: as ρ is reduced the speeds increase; with more slack the
  // energy overhead decreases monotonically.
  const FigureSeries series = run_figure_sweep(
      atlas_crusoe(), SweepParameter::kPerformanceBound, dense());
  double prev_energy = std::numeric_limits<double>::infinity();
  double prev_s1 = 2.0;
  for (const auto& point : series.points) {
    if (point.two_speed_fallback) continue;  // ρ below every ρ_{i,j}
    const auto& sol = point.two_speed;
    EXPECT_LE(sol.energy_overhead, prev_energy * (1.0 + 1e-9))
        << "rho=" << point.x;
    EXPECT_LE(sol.sigma1, prev_s1 + 1e-12) << "rho=" << point.x;
    prev_energy = sol.energy_overhead;
    prev_s1 = sol.sigma1;
  }
  // Generous bounds settle on the cheapest speed.
  EXPECT_DOUBLE_EQ(series.points.back().two_speed.sigma1, 0.45);
  EXPECT_DOUBLE_EQ(series.points.back().two_speed.sigma2, 0.45);
}

TEST(Figure6, IdlePowerRaisesSpeedsSigma1First) {
  // §4.3.3: speeds increase with Pidle (σ1 first, then σ2), and σ2 almost
  // always equals σ1 so one speed suffices.
  const FigureSeries series =
      run_figure_sweep(atlas_crusoe(), SweepParameter::kIdlePower, dense());
  const auto& first = series.points.front().two_speed;
  const auto& last = series.points.back().two_speed;
  EXPECT_DOUBLE_EQ(first.sigma1, 0.45);
  EXPECT_GT(last.sigma1, first.sigma1);
  EXPECT_DOUBLE_EQ(last.sigma1, last.sigma2);
  // Energy overhead strictly grows with static power.
  EXPECT_GT(last.energy_overhead,
            series.points.front().two_speed.energy_overhead);
  // Two-speed gains are marginal in this sweep (σ2 ≈ σ1 throughout).
  EXPECT_LT(series.max_energy_saving(), 0.05);
}

TEST(Figure7, IoPowerLeavesSpeedsUnchanged) {
  // §4.3.3: the execution speeds are not affected by Pio; the pattern size
  // and the energy overhead grow with it.
  const FigureSeries series =
      run_figure_sweep(atlas_crusoe(), SweepParameter::kIoPower, dense());
  double prev_w = 0.0;
  double prev_energy = 0.0;
  for (const auto& point : series.points) {
    const auto& sol = point.two_speed;
    ASSERT_TRUE(sol.feasible);
    EXPECT_DOUBLE_EQ(sol.sigma1, 0.45);
    EXPECT_DOUBLE_EQ(sol.sigma2, 0.45);
    EXPECT_GE(sol.w_opt, prev_w);
    EXPECT_GE(sol.energy_overhead, prev_energy);
    prev_w = sol.w_opt;
    prev_energy = sol.energy_overhead;
  }
}

TEST(Figures8to14, EveryConfigurationSweepsCleanly) {
  // The remaining figures repeat the six sweeps on the other seven
  // configurations; check global sanity everywhere (full benches print
  // the complete panels).
  SweepOptions options;
  options.points = 11;
  for (const auto& config : platform::all_configurations()) {
    const auto panels = run_all_sweeps(config, options);
    ASSERT_EQ(panels.size(), 6u) << config.name();
    for (const auto& panel : panels) {
      for (const auto& point : panel.points) {
        if (!point.two_speed.feasible) continue;
        EXPECT_GT(point.two_speed.w_opt, 0.0) << config.name();
        EXPECT_GT(point.two_speed.energy_overhead, 0.0) << config.name();
        if (point.single_speed.feasible && !point.single_speed_fallback &&
            !point.two_speed_fallback) {
          EXPECT_LE(point.two_speed.energy_overhead,
                    point.single_speed.energy_overhead * (1.0 + 1e-12))
              << config.name();
        }
      }
    }
  }
}

TEST(Figures8to14, CrusoeOnOtherPlatformsKeepsSlowPairLonger) {
  // §4.3.4: "the optimal speed pair (0.45, 0.45) remains unchanged as the
  // checkpointing cost increases up to 5000 s when the Crusoe processor is
  // coupled with platforms other than Atlas" (their error rates are
  // smaller).
  SweepOptions options;
  options.points = 26;
  for (const char* name : {"Hera/Crusoe", "Coastal/Crusoe",
                           "CoastalSSD/Crusoe"}) {
    const FigureSeries series =
        run_figure_sweep(platform::configuration_by_name(name),
                         SweepParameter::kCheckpointTime, options);
    for (const auto& point : series.points) {
      EXPECT_DOUBLE_EQ(point.two_speed.sigma1, 0.45) << name;
      EXPECT_DOUBLE_EQ(point.two_speed.sigma2, 0.45) << name;
    }
  }
}

}  // namespace
}  // namespace rexspeed
