// Cross-validation of the analytical expectations (Props. 1–5) against the
// fault-injection simulator: the strongest evidence available that both
// the closed forms and the simulator implement the same model.

#include <gtest/gtest.h>

#include <string>

#include "rexspeed/core/attempt_stats.hpp"
#include "rexspeed/core/exact_expectations.hpp"
#include "rexspeed/sim/monte_carlo.hpp"
#include "test_util.hpp"

namespace rexspeed {
namespace {

using core::energy_overhead;
using core::time_overhead;

/// Widened 95% CI: with 8 configurations × 2 metrics under test, a plain
/// 95% interval would flake; 3.5× the half-width keeps the false-alarm
/// rate negligible while still detecting real model/simulator mismatches.
double slack(const stats::ConfidenceInterval& ci) {
  return 3.5 * ci.half_width() + 1e-12;
}

class ModelVsSimulation : public ::testing::TestWithParam<std::string> {};

TEST_P(ModelVsSimulation, SilentErrorOverheadsMatchClosedForms) {
  const core::ModelParams params = test::params_for(GetParam());
  // Use the ρ = 3 two-speed optimum as the simulated policy, but crank the
  // error rate up 50× so each replication sees many errors (the paper's
  // rates would need billions of work units for tight statistics).
  core::ModelParams hot = params;
  hot.lambda_silent *= 50.0;
  const core::BiCritSolver solver(params);
  const core::BiCritSolution sol = solver.solve(3.0);
  ASSERT_TRUE(sol.feasible);

  const double w = sol.best.w_opt;
  const double s1 = sol.best.sigma1;
  const double s2 = sol.best.sigma2;
  const sim::Simulator simulator(hot);
  const sim::ExecutionPolicy policy =
      sim::ExecutionPolicy::two_speed(w, s1, s2);
  sim::MonteCarloOptions options;
  options.replications = 300;
  options.total_work = 60.0 * w;  // 60 whole patterns per replication
  options.base_seed = 0xC0FFEE;
  const sim::MonteCarloResult mc =
      sim::run_monte_carlo(simulator, policy, options);

  EXPECT_NEAR(mc.time_overhead.mean(), time_overhead(hot, w, s1, s2),
              slack(mc.time_ci))
      << GetParam();
  EXPECT_NEAR(mc.energy_overhead.mean(), energy_overhead(hot, w, s1, s2),
              slack(mc.energy_ci))
      << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    AllEightConfigs, ModelVsSimulation,
    ::testing::Values("Hera/XScale", "Atlas/XScale", "Coastal/XScale",
                      "CoastalSSD/XScale", "Hera/Crusoe", "Atlas/Crusoe",
                      "Coastal/Crusoe", "CoastalSSD/Crusoe"),
    [](const auto& info) {
      std::string name = info.param;
      for (auto& ch : name) {
        if (ch == '/') ch = '_';
      }
      return name;
    });

TEST(ModelVsSimulation, AttemptCountersMatchClosedForms) {
  // The simulator's attempt counters must agree with the geometric-process
  // closed forms of core::attempt_stats.
  core::ModelParams p = test::toy_params();
  p.lambda_silent = 4e-4;
  p.lambda_failstop = 1e-4;
  const double w = 600.0;
  const double s1 = 0.5;
  const double s2 = 1.0;
  const sim::Simulator simulator(p);
  sim::MonteCarloOptions options;
  options.replications = 500;
  options.total_work = 100.0 * w;
  const sim::MonteCarloResult mc = sim::run_monte_carlo(
      simulator, sim::ExecutionPolicy::two_speed(w, s1, s2), options);
  const core::AttemptStats expected = core::attempt_stats(p, w, s1, s2);
  EXPECT_NEAR(mc.attempts_per_pattern.mean(), expected.expected_attempts,
              3.5 * mc.attempts_per_pattern.standard_error() + 1e-12);
  // Error split: detected silent vs fail-stop counts follow the rates.
  EXPECT_GT(mc.silent_errors.mean(), mc.failstop_errors.mean());
}

TEST(ModelVsSimulation, CombinedErrorsMatchRecursionForm) {
  // Parameters chosen to make the paper's spurious Prop-4 V/σ2 term large
  // (~1.4% of T): the simulation must side with the recursion-derived form
  // and reject the literal printed formula.
  core::ModelParams p = test::toy_params();
  p.lambda_silent = 5e-5;
  p.lambda_failstop = 5e-5;
  p.verification_s = 200.0;
  const double w = 800.0;
  const double s1 = 0.5;
  const double s2 = 1.0;

  const sim::Simulator simulator(p);
  const sim::ExecutionPolicy policy =
      sim::ExecutionPolicy::two_speed(w, s1, s2);
  sim::MonteCarloOptions options;
  options.replications = 1500;
  options.total_work = 100.0 * w;
  options.base_seed = 0xBADF00D;
  const sim::MonteCarloResult mc =
      sim::run_monte_carlo(simulator, policy, options);

  const double ours = time_overhead(p, w, s1, s2);
  const double paper =
      core::paper_forms::prop4_expected_time(p, w, s1, s2) / w;
  ASSERT_GT(paper, ours);  // the printed form overshoots

  EXPECT_NEAR(mc.time_overhead.mean(), ours, slack(mc.time_ci));
  // The printed Prop. 4 lies outside even the widened interval.
  EXPECT_GT(paper, mc.time_overhead.mean() + slack(mc.time_ci));
}

TEST(ModelVsSimulation, FailstopOnlyOverheadsMatch) {
  core::ModelParams p = test::toy_params();
  p.lambda_silent = 0.0;
  p.lambda_failstop = 2e-4;
  const double w = 600.0;
  const sim::Simulator simulator(p);
  const sim::ExecutionPolicy policy =
      sim::ExecutionPolicy::two_speed(w, 0.5, 1.0);
  sim::MonteCarloOptions options;
  options.replications = 800;
  options.total_work = 80.0 * w;
  const sim::MonteCarloResult mc =
      sim::run_monte_carlo(simulator, policy, options);
  EXPECT_NEAR(mc.time_overhead.mean(), time_overhead(p, w, 0.5, 1.0),
              slack(mc.time_ci));
  EXPECT_NEAR(mc.energy_overhead.mean(), energy_overhead(p, w, 0.5, 1.0),
              slack(mc.energy_ci));
}

TEST(ModelVsSimulation, SingleSpeedPatternMatchesProp1) {
  core::ModelParams p = test::params_for("Atlas/Crusoe");
  p.lambda_silent *= 100.0;
  const double w = 2000.0;
  const double sigma = 0.6;
  const sim::Simulator simulator(p);
  const sim::ExecutionPolicy policy =
      sim::ExecutionPolicy::single_speed(w, sigma);
  sim::MonteCarloOptions options;
  options.replications = 400;
  options.total_work = 50.0 * w;
  const sim::MonteCarloResult mc =
      sim::run_monte_carlo(simulator, policy, options);
  const double expected =
      core::expected_time_single_speed_silent(p, w, sigma) / w;
  EXPECT_NEAR(mc.time_overhead.mean(), expected, slack(mc.time_ci));
}

}  // namespace
}  // namespace rexspeed
