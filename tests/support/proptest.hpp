#pragma once

// Small dependency-free property-testing harness in the RapidCheck-under-
// gtest style (see ROADMAP open item 5): seeded generators with greedy
// shrinking, driven by proptest::check() inside ordinary TEST bodies.
//
//   proptest::check("solver matches simulator", CaseGen{},
//                   [](const Case& c) { EXPECT_NEAR(...); });
//
// check() runs the property body over `iterations` generated cases. Each
// case has its own seed; the seeds chain deterministically (splitmix64),
// so one integer pins the whole run. Failures inside the body (any gtest
// assertion, or an exception) are captured silently during the search and
// the shrink, then the minimal counterexample is re-run uncaptured so the
// real assertion diagnostics point at it — prefixed by a single-line
// `REXSPEED_PROP_SEED=<n> REXSPEED_PROP_ITERS=1` repro command.
//
// Environment overrides (absolute, applying to every property):
//   REXSPEED_PROP_ITERS — iterations per property (CI runs 1000+)
//   REXSPEED_PROP_SEED  — the first case seed of every property
//
// Generators are plain structs:
//   using Value = ...;
//   Value operator()(Rng&) const;                 // generate one case
//   std::vector<Value> shrink(const Value&) const;  // simpler candidates
//   std::string describe(const Value&) const;     // printed counterexample

#include <gtest/gtest-spi.h>
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "rexspeed/core/model_params.hpp"
#include "rexspeed/engine/scenario.hpp"

namespace rexspeed::proptest {

/// Advances `state` and returns the next value of its splitmix64 stream —
/// both the per-case random core and the case-to-case seed chain.
std::uint64_t splitmix64(std::uint64_t& state);

/// Deterministic per-case random source over one splitmix64 stream.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next_u64() { return splitmix64(state_); }
  /// Uniform in [0, 1).
  double uniform();
  /// Uniform in [lo, hi).
  double uniform(double lo, double hi);
  /// Log-uniform in [lo, hi) — the natural draw for rates and costs that
  /// span orders of magnitude. Requires 0 < lo < hi.
  double log_uniform(double lo, double hi);
  /// Uniform index in [0, n). Requires n > 0.
  std::size_t index(std::size_t n);
  /// True with probability p.
  bool chance(double p) { return uniform() < p; }

 private:
  std::uint64_t state_;
};

struct PropOptions {
  /// Per-property default; REXSPEED_PROP_ITERS overrides it absolutely
  /// (every property in this suite is cheap enough for >= 1000).
  std::size_t iterations = 100;
  /// First case seed; REXSPEED_PROP_SEED overrides it.
  std::uint64_t seed = 0x5EEDF00Dull;
  /// Cap on greedy shrink steps (each step re-runs the body once per
  /// candidate until one fails).
  std::size_t max_shrink_steps = 200;
};

/// REXSPEED_PROP_ITERS, or options.iterations when unset/malformed.
[[nodiscard]] std::size_t resolved_iterations(const PropOptions& options);
/// REXSPEED_PROP_SEED, or options.seed when unset/malformed.
[[nodiscard]] std::uint64_t resolved_seed(const PropOptions& options);

namespace detail {

/// Runs `body` with every gtest failure intercepted (not reported) and
/// exceptions swallowed; false when it failed. `failure`, when non-null,
/// receives a summary of the first failure.
bool run_captured(const std::function<void()>& body, std::string* failure);

/// Prints the falsification banner: iteration, shrink count, the
/// single-line seed repro and the counterexample description.
void report_falsified(const char* property, std::size_t iteration,
                      std::uint64_t case_seed, std::size_t shrink_steps,
                      const std::string& description);

}  // namespace detail

/// Runs `body` over generated cases; on failure shrinks greedily, prints
/// the seed repro line and re-runs the minimal counterexample uncaptured
/// so its assertion diagnostics reach the test log.
template <typename Gen, typename Body>
void check(const char* property, const Gen& gen, const Body& body,
           PropOptions options = {}) {
  using Value = typename Gen::Value;
  const std::size_t iterations = resolved_iterations(options);
  std::uint64_t chain = resolved_seed(options);
  for (std::size_t i = 0; i < iterations; ++i) {
    const std::uint64_t case_seed = chain;
    splitmix64(chain);  // pre-advance: the chain never reuses a case seed
    Rng rng(case_seed);
    Value value = gen(rng);
    if (detail::run_captured([&] { body(value); }, nullptr)) continue;

    // Greedy shrink: adopt the first failing candidate of each round,
    // stop when a round produces none (or the step cap is hit). Shrinking
    // is deterministic in `value`, so the seed repro re-finds the same
    // minimal counterexample.
    std::size_t steps = 0;
    bool shrunk = true;
    while (shrunk && steps < options.max_shrink_steps) {
      shrunk = false;
      for (const Value& candidate : gen.shrink(value)) {
        if (!detail::run_captured([&] { body(candidate); }, nullptr)) {
          value = candidate;
          shrunk = true;
          ++steps;
          break;
        }
      }
    }
    detail::report_falsified(property, i, case_seed, steps,
                             gen.describe(value));
    body(value);  // uncaptured: the real diagnostics, on the minimal case
    return;
  }
}

// ---------------------------------------------------------------- domain
// Generators for the library's core value types, biased toward the
// boundary regions where the closed forms are most stressed: tight
// feasibility windows (costly C/V), sigma1 ~ sigma2, rates near zero and
// near the first-order validity edge.

/// Random valid ModelParams.
struct ModelParamsGen {
  using Value = core::ModelParams;
  /// False pins lambda_failstop to 0 (the interleaved backend's domain;
  /// also the paper's §2–§4 setting).
  bool allow_failstop = true;

  core::ModelParams operator()(Rng& rng) const;
  std::vector<core::ModelParams> shrink(const core::ModelParams&) const;
  std::string describe(const core::ModelParams&) const;
};

/// Random performance bound, biased toward the tight end (ρ near ρ_min is
/// where feasibility windows pinch and fallbacks engage).
struct RhoGen {
  using Value = double;
  double min = 1.05;
  double max = 24.0;

  double operator()(Rng& rng) const;
  std::vector<double> shrink(const double&) const;
  std::string describe(const double&) const;
};

/// Random sorted ρ-grid (the batched-solve input shape).
struct RhoGridGen {
  using Value = std::vector<double>;
  std::size_t min_points = 2;
  std::size_t max_points = 48;

  std::vector<double> operator()(Rng& rng) const;
  std::vector<std::vector<double>> shrink(const std::vector<double>&) const;
  std::string describe(const std::vector<double>&) const;
};

/// Random segment-search cap, biased low (m = 1 is the paper's pattern).
struct SegmentCapGen {
  using Value = unsigned;
  unsigned max = 8;

  unsigned operator()(Rng& rng) const;
  std::vector<unsigned> shrink(const unsigned&) const;
  std::string describe(const unsigned&) const;
};

/// Random valid ScenarioSpec across every registered mode (round-trip and
/// registry properties). Always parseable by parse_scenario and writable
/// by write_scenario.
struct ScenarioSpecGen {
  using Value = engine::ScenarioSpec;

  engine::ScenarioSpec operator()(Rng& rng) const;
  std::vector<engine::ScenarioSpec> shrink(
      const engine::ScenarioSpec&) const;
  std::string describe(const engine::ScenarioSpec&) const;
};

}  // namespace rexspeed::proptest
