#pragma once

// Reusable simulator-vs-model cross-validation fixture (hoisted from the
// old tests/sim/interleaved_crossval.hpp so every suite shares ONE copy of
// the stderr-tolerance logic): Monte-Carlo-estimates the time and energy
// overheads of an ExecutionPolicy run and asserts agreement with a closed
// form within a seeded confidence interval. The tolerance is derived from
// the replications' Welford standard error (stats/welford.hpp): `sigmas`
// standard errors of the mean, plus an epsilon for the error-free case
// where the variance collapses to zero.
//
// Wrappers cover the three model families with analytical expectations:
// speed-pair patterns (exact_expectations), interleaved patterns
// (core/interleaved) and partial-recall patterns (core/recall_solver).

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>

#include "rexspeed/core/exact_expectations.hpp"
#include "rexspeed/core/interleaved.hpp"
#include "rexspeed/core/recall_solver.hpp"
#include "rexspeed/sim/monte_carlo.hpp"
#include "rexspeed/sim/simulator.hpp"

namespace rexspeed::test {

struct CrossValOptions {
  std::size_t replications = 300;
  /// Whole patterns simulated per replication (more patterns → tighter
  /// per-replication estimate of the overheads).
  double patterns_per_replication = 60.0;
  /// Seeds are fixed so CI runs are reproducible; vary the seed per case,
  /// never per run.
  std::uint64_t base_seed = 0x1A7E;
  /// Widened interval: with many (case × metric) combinations under test,
  /// a plain 95% interval would flake. 4.5 standard errors keeps the
  /// family-wise false-alarm rate negligible while still detecting real
  /// model/simulator mismatches (a 1% bias in either is many standard
  /// errors at these replication counts).
  double sigmas = 4.5;
  /// Relative slack on top of the stderr interval, covering the
  /// unobserved-rare-branch regime: when an error/retry branch has
  /// probability so small that NO replication samples it, the Welford
  /// stderr collapses to zero while the model's expectation still carries
  /// the branch's tiny contribution. The slack bounds that contribution
  /// (total branch probability × per-event cost stays well under 1e-3 of
  /// the overhead once the branch is too rare to sample); it is an order
  /// of magnitude below the bias level the stderr interval detects, so the
  /// fixture loses no real sensitivity.
  double rel_slack = 1e-3;
};

/// THE shared stderr-tolerance core: runs `policy` under `simulator` and
/// asserts the observed mean time/energy overheads match the expected
/// per-work-unit overheads within `sigmas` Welford standard errors.
/// Returns the Monte-Carlo result so callers can assert further statistics
/// (e.g. the corrupted-run ratio of partial-recall cases).
inline sim::MonteCarloResult expect_simulator_matches_model(
    const sim::Simulator& simulator, const sim::ExecutionPolicy& policy,
    double expected_time_overhead, double expected_energy_overhead,
    const CrossValOptions& options = {}) {
  sim::MonteCarloOptions mc_options;
  mc_options.replications = options.replications;
  mc_options.total_work =
      options.patterns_per_replication * policy.pattern_work();
  mc_options.base_seed = options.base_seed;
  const sim::MonteCarloResult mc =
      sim::run_monte_carlo(simulator, policy, mc_options);

  EXPECT_NEAR(mc.time_overhead.mean(), expected_time_overhead,
              options.sigmas * mc.time_overhead.standard_error() +
                  options.rel_slack * std::abs(expected_time_overhead) +
                  1e-12);
  EXPECT_NEAR(mc.energy_overhead.mean(), expected_energy_overhead,
              options.sigmas * mc.energy_overhead.standard_error() +
                  options.rel_slack * std::abs(expected_energy_overhead) +
                  1e-9);
  return mc;
}

/// Speed-pair pattern (W, σ1, σ2) vs the exact expectations — the paper's
/// own model family.
inline sim::MonteCarloResult expect_simulator_matches_pair_model(
    const core::ModelParams& params, double work, double sigma1,
    double sigma2, const CrossValOptions& options = {}) {
  SCOPED_TRACE("pair W=" + std::to_string(work));
  const sim::Simulator simulator(params);
  const sim::ExecutionPolicy policy =
      sim::ExecutionPolicy::two_speed(work, sigma1, sigma2);
  return expect_simulator_matches_model(
      simulator, policy, core::time_overhead(params, work, sigma1, sigma2),
      core::energy_overhead(params, work, sigma1, sigma2), options);
}

/// Segmented policy (work, segments, σ1, σ2) vs the interleaved closed
/// forms — keeps the historical per-segment seed offset so the pinned
/// interleaved cross-validation cases reproduce their pre-hoist runs.
inline void expect_simulator_matches_interleaved_model(
    const core::ModelParams& params, double work, unsigned segments,
    double sigma1, double sigma2, const CrossValOptions& options = {}) {
  SCOPED_TRACE("segments=" + std::to_string(segments));
  const sim::Simulator simulator(params);
  const sim::ExecutionPolicy policy =
      sim::ExecutionPolicy::segmented(work, segments, sigma1, sigma2);
  CrossValOptions seeded = options;
  seeded.base_seed = options.base_seed + segments;
  expect_simulator_matches_model(
      simulator, policy,
      core::expected_time_interleaved(params, work, segments, sigma1,
                                      sigma2) /
          work,
      core::expected_energy_interleaved(params, work, segments, sigma1,
                                        sigma2) /
          work,
      seeded);
}

/// Partial-recall pattern (W, σ1, σ2) at recall r vs the exact recall
/// expectations, plus the committed-corruption probability against the
/// simulator's corrupted-checkpoint ratio.
inline void expect_simulator_matches_recall_model(
    const core::ModelParams& params, double recall, double work,
    double sigma1, double sigma2, const CrossValOptions& options = {}) {
  SCOPED_TRACE("recall=" + std::to_string(recall));
  sim::SimulatorOptions sim_options;
  sim_options.verification_recall = recall;
  const sim::Simulator simulator(params, sim::FaultInjector(params),
                                 sim_options);
  const sim::ExecutionPolicy policy =
      sim::ExecutionPolicy::two_speed(work, sigma1, sigma2);
  const sim::MonteCarloResult mc = expect_simulator_matches_model(
      simulator, policy,
      core::expected_time_recall(params, recall, work, sigma1, sigma2) /
          work,
      core::expected_energy_recall(params, recall, work, sigma1, sigma2) /
          work,
      options);

  // Corrupted checkpoints per pattern estimate the per-pattern
  // committed-corruption probability (every pattern commits exactly one
  // checkpoint).
  const double expected_corrupt = core::recall_corruption_probability(
      params, recall, work, sigma1, sigma2);
  const double patterns = options.patterns_per_replication;
  // Corruption is a counting statistic: when the expected number of
  // corrupt events over the whole run is O(1), every replication can
  // legitimately observe zero and the empirical stderr collapses. The
  // Poisson standard error of the rate estimate, √(p/N) over all N
  // simulated patterns, is the correct floor for that regime (and is of
  // the same order as the empirical stderr when events are plentiful).
  const double total_patterns =
      patterns * static_cast<double>(options.replications);
  const double poisson_se =
      std::sqrt(std::max(expected_corrupt, 0.0) / total_patterns);
  EXPECT_NEAR(
      mc.corrupted_checkpoints.mean() / patterns, expected_corrupt,
      options.sigmas *
              std::max(mc.corrupted_checkpoints.standard_error() / patterns,
                       poisson_se) +
          options.rel_slack * expected_corrupt + 1e-12);
}

}  // namespace rexspeed::test
