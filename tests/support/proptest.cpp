#include "support/proptest.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <sstream>

#include "rexspeed/engine/scenario_file.hpp"
#include "rexspeed/platform/configuration.hpp"

namespace rexspeed::proptest {

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

double Rng::uniform() {
  // 53 random mantissa bits — every double in [0, 1) at full precision.
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * uniform();
}

double Rng::log_uniform(double lo, double hi) {
  return std::exp(uniform(std::log(lo), std::log(hi)));
}

std::size_t Rng::index(std::size_t n) {
  return static_cast<std::size_t>(uniform() * static_cast<double>(n)) %
         n;  // the modulo only guards the uniform() == nextafter(1) edge
}

namespace {

/// Strict unsigned parse of an environment variable; nullopt when unset,
/// empty or malformed (a typo must not silently pin every property run).
std::optional<std::uint64_t> env_u64(const char* name) {
  const char* text = std::getenv(name);
  if (text == nullptr || *text == '\0') return std::nullopt;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text, &end, 10);
  if (end == nullptr || *end != '\0') return std::nullopt;
  return static_cast<std::uint64_t>(value);
}

std::string format_double(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.17g", value);
  return buffer;
}

}  // namespace

std::size_t resolved_iterations(const PropOptions& options) {
  if (const auto iters = env_u64("REXSPEED_PROP_ITERS")) {
    return static_cast<std::size_t>(std::max<std::uint64_t>(*iters, 1));
  }
  return options.iterations;
}

std::uint64_t resolved_seed(const PropOptions& options) {
  if (const auto seed = env_u64("REXSPEED_PROP_SEED")) return *seed;
  return options.seed;
}

namespace detail {

bool run_captured(const std::function<void()>& body, std::string* failure) {
  ::testing::TestPartResultArray results;
  {
    ::testing::ScopedFakeTestPartResultReporter reporter(
        ::testing::ScopedFakeTestPartResultReporter::INTERCEPT_ALL_THREADS,
        &results);
    try {
      body();
    } catch (const std::exception& error) {
      if (failure) *failure = error.what();
      return false;
    } catch (...) {
      if (failure) *failure = "non-standard exception";
      return false;
    }
  }
  for (int i = 0; i < results.size(); ++i) {
    if (results.GetTestPartResult(i).failed()) {
      if (failure) *failure = results.GetTestPartResult(i).summary();
      return false;
    }
  }
  return true;
}

void report_falsified(const char* property, std::size_t iteration,
                      std::uint64_t case_seed, std::size_t shrink_steps,
                      const std::string& description) {
  std::fprintf(stderr,
               "[proptest] property '%s' falsified at iteration %zu "
               "(%zu shrink steps)\n",
               property, iteration, shrink_steps);
  // The single-line deterministic repro: the seed regenerates the original
  // failing case and the (deterministic) shrink re-finds this minimum.
  std::fprintf(stderr,
               "[proptest] repro: REXSPEED_PROP_SEED=%llu "
               "REXSPEED_PROP_ITERS=1 <test binary> "
               "--gtest_filter=<this test>\n",
               static_cast<unsigned long long>(case_seed));
  std::fprintf(stderr, "[proptest] counterexample: %s\n",
               description.c_str());
}

}  // namespace detail

// ---------------------------------------------------------------- domain

core::ModelParams ModelParamsGen::operator()(Rng& rng) const {
  core::ModelParams params;
  // Rates: log-uniform across the regimes the paper sweeps, with mass on
  // zero (error-free is a valid boundary) and on the hot end where the
  // first-order window tightens.
  params.lambda_silent =
      rng.chance(0.1) ? 0.0 : rng.log_uniform(1e-6, 2e-3);
  if (allow_failstop && rng.chance(0.4)) {
    params.lambda_failstop = rng.log_uniform(1e-7, 5e-4);
  }
  params.checkpoint_s = rng.log_uniform(0.5, 120.0);
  // The paper's own platforms use R = C; keep that region dense.
  params.recovery_s =
      rng.chance(0.5) ? params.checkpoint_s : rng.log_uniform(0.5, 120.0);
  params.verification_s = rng.log_uniform(0.1, 30.0);
  params.kappa_mw = rng.log_uniform(100.0, 5000.0);
  params.idle_power_mw = rng.log_uniform(10.0, 500.0);
  params.io_power_mw = rng.log_uniform(5.0, 200.0);

  if (rng.chance(0.3)) {
    params.speeds = {0.25, 0.5, 1.0};  // the canonical toy ladder
  } else {
    const std::size_t count = 2 + rng.index(3);
    params.speeds.clear();
    double speed = 1.0;
    for (std::size_t i = 0; i + 1 < count; ++i) {
      // Walk down from 1.0; a small step makes sigma1 ~ sigma2 — the
      // boundary where the two-speed optimum degenerates to single-speed.
      const double step =
          rng.chance(0.25) ? rng.uniform(1e-4, 2e-2) : rng.uniform(0.1, 0.4);
      speed = std::max(0.05, speed - step);
      params.speeds.push_back(speed);
    }
    params.speeds.push_back(1.0);
    std::sort(params.speeds.begin(), params.speeds.end());
    params.speeds.erase(
        std::unique(params.speeds.begin(), params.speeds.end()),
        params.speeds.end());
  }
  params.validate();
  return params;
}

std::vector<core::ModelParams> ModelParamsGen::shrink(
    const core::ModelParams& value) const {
  // One candidate per field reset to its round toy value: the greedy loop
  // converges on a counterexample whose irrelevant fields are all round.
  core::ModelParams toy;
  toy.lambda_silent = 1e-4;
  toy.lambda_failstop = 0.0;
  toy.checkpoint_s = 10.0;
  toy.recovery_s = 10.0;
  toy.verification_s = 2.0;
  toy.kappa_mw = 1000.0;
  toy.idle_power_mw = 100.0;
  toy.io_power_mw = 50.0;
  toy.speeds = {0.25, 0.5, 1.0};

  std::vector<core::ModelParams> candidates;
  const auto propose = [&](auto mutate) {
    core::ModelParams candidate = value;
    mutate(candidate);
    candidates.push_back(std::move(candidate));
  };
  if (value.speeds != toy.speeds) {
    propose([&](core::ModelParams& p) { p.speeds = toy.speeds; });
  }
  if (value.lambda_failstop != 0.0) {
    propose([&](core::ModelParams& p) { p.lambda_failstop = 0.0; });
  }
  if (value.lambda_silent != toy.lambda_silent) {
    propose([&](core::ModelParams& p) {
      p.lambda_silent = toy.lambda_silent;
    });
  }
  if (value.checkpoint_s != toy.checkpoint_s) {
    propose([&](core::ModelParams& p) { p.checkpoint_s = toy.checkpoint_s; });
  }
  if (value.recovery_s != value.checkpoint_s) {
    propose([&](core::ModelParams& p) { p.recovery_s = p.checkpoint_s; });
  }
  if (value.verification_s != toy.verification_s) {
    propose([&](core::ModelParams& p) {
      p.verification_s = toy.verification_s;
    });
  }
  if (value.kappa_mw != toy.kappa_mw) {
    propose([&](core::ModelParams& p) { p.kappa_mw = toy.kappa_mw; });
  }
  if (value.idle_power_mw != toy.idle_power_mw) {
    propose([&](core::ModelParams& p) {
      p.idle_power_mw = toy.idle_power_mw;
    });
  }
  if (value.io_power_mw != toy.io_power_mw) {
    propose([&](core::ModelParams& p) { p.io_power_mw = toy.io_power_mw; });
  }
  return candidates;
}

std::string ModelParamsGen::describe(const core::ModelParams& value) const {
  std::ostringstream out;
  out << "lambda=" << format_double(value.lambda_silent)
      << " lambda_failstop=" << format_double(value.lambda_failstop)
      << " C=" << format_double(value.checkpoint_s)
      << " R=" << format_double(value.recovery_s)
      << " V=" << format_double(value.verification_s)
      << " kappa=" << format_double(value.kappa_mw)
      << " Pidle=" << format_double(value.idle_power_mw)
      << " Pio=" << format_double(value.io_power_mw) << " speeds={";
  for (std::size_t i = 0; i < value.speeds.size(); ++i) {
    if (i > 0) out << ", ";
    out << format_double(value.speeds[i]);
  }
  out << "}";
  return out.str();
}

double RhoGen::operator()(Rng& rng) const {
  // Half the mass hugs the tight end (fallback / infeasibility boundary),
  // the rest spreads log-uniformly across the comfortable range.
  if (rng.chance(0.5)) return rng.uniform(min, std::min(max, 3.0));
  return rng.log_uniform(min, max);
}

std::vector<double> RhoGen::shrink(const double& value) const {
  std::vector<double> candidates;
  if (value != 3.0 && 3.0 >= min && 3.0 <= max) candidates.push_back(3.0);
  if (value > 6.0) candidates.push_back(value / 2.0);
  return candidates;
}

std::string RhoGen::describe(const double& value) const {
  return "rho=" + format_double(value);
}

std::vector<double> RhoGridGen::operator()(Rng& rng) const {
  const std::size_t count =
      min_points + rng.index(max_points - min_points + 1);
  std::vector<double> grid(count);
  RhoGen rho_gen;
  for (double& rho : grid) rho = rho_gen(rng);
  std::sort(grid.begin(), grid.end());
  if (count >= 2 && rng.chance(0.2)) grid[1] = grid[0];  // duplicate edge
  return grid;
}

std::vector<std::vector<double>> RhoGridGen::shrink(
    const std::vector<double>& value) const {
  std::vector<std::vector<double>> candidates;
  if (value.size() > min_points) {
    // Halve: first half, second half — a failing point survives in one.
    const std::size_t mid = value.size() / 2;
    candidates.emplace_back(value.begin(), value.begin() + mid);
    candidates.emplace_back(value.begin() + mid, value.end());
    for (auto& candidate : candidates) {
      if (candidate.size() < min_points) {
        candidate = value;  // too small to stand alone; drop below
      }
    }
    candidates.erase(
        std::remove(candidates.begin(), candidates.end(), value),
        candidates.end());
  }
  return candidates;
}

std::string RhoGridGen::describe(const std::vector<double>& value) const {
  std::ostringstream out;
  out << "rhos[" << value.size() << "]={";
  for (std::size_t i = 0; i < value.size(); ++i) {
    if (i > 0) out << ", ";
    out << format_double(value[i]);
  }
  out << "}";
  return out.str();
}

unsigned SegmentCapGen::operator()(Rng& rng) const {
  // Biased low: m = 1 (the paper's pattern) and small caps are the common
  // case; the tail still reaches `max`.
  if (rng.chance(0.4)) return 1 + static_cast<unsigned>(rng.index(2));
  return 1 + static_cast<unsigned>(rng.index(max));
}

std::vector<unsigned> SegmentCapGen::shrink(const unsigned& value) const {
  std::vector<unsigned> candidates;
  if (value > 1) candidates.push_back(value - 1);
  if (value > 2) candidates.push_back(1);
  return candidates;
}

std::string SegmentCapGen::describe(const unsigned& value) const {
  return "max_segments=" + std::to_string(value);
}

engine::ScenarioSpec ScenarioSpecGen::operator()(Rng& rng) const {
  engine::ScenarioSpec spec;
  spec.name = "prop_case";
  const auto& configurations = platform::all_configurations();
  spec.configuration = configurations[rng.index(configurations.size())].name();
  spec.rho = RhoGen{}(rng);
  spec.points = 2 + rng.index(8);
  spec.policy = rng.chance(0.5) ? core::SpeedPolicy::kTwoSpeed
                                : core::SpeedPolicy::kSingleSpeed;
  spec.min_rho_fallback = rng.chance(0.8);
  if (rng.chance(0.2)) {
    spec.batch =
        rng.chance(0.5) ? sweep::BatchMode::kOn : sweep::BatchMode::kOff;
  }

  switch (rng.index(5)) {
    case 0:
      spec.mode = core::EvalMode::kFirstOrder;
      break;
    case 1:
      spec.mode = core::EvalMode::kExactEvaluation;
      break;
    case 2:
      spec.mode = core::EvalMode::kExactOptimize;
      break;
    case 3:  // interleaved: a fixed count or a search cap
      if (rng.chance(0.5)) {
        spec.segments = SegmentCapGen{}(rng);
      } else {
        spec.max_segments = SegmentCapGen{}(rng);
      }
      break;
    case 4:  // recall: the only mode carrying partial recall
      spec.recall_mode = true;
      spec.verification_recall =
          rng.chance(0.5) ? rng.uniform(0.0, 1.0)
                          : std::vector<double>{0.5, 0.8, 0.95,
                                                1.0}[rng.index(4)];
      break;
  }

  // Sweep axis: rho always works; segments only for interleaved specs.
  if (spec.interleaved() && rng.chance(0.4)) {
    spec.sweep_parameter = sweep::SweepParameter::kSegments;
  } else if (rng.chance(0.8)) {
    spec.sweep_parameter = sweep::SweepParameter::kPerformanceBound;
  }  // else param=none (a solve)

  if (rng.chance(0.4)) {
    spec.overrides.push_back({"lambda", rng.log_uniform(1e-6, 2e-3)});
  }
  if (rng.chance(0.2)) {
    spec.overrides.push_back({"V", rng.log_uniform(0.1, 30.0)});
  }
  spec.cache = rng.chance(0.8);  // cache=0 opt-outs round-trip too
  spec.validate();
  return spec;
}

std::vector<engine::ScenarioSpec> ScenarioSpecGen::shrink(
    const engine::ScenarioSpec& value) const {
  std::vector<engine::ScenarioSpec> candidates;
  const auto propose = [&](auto mutate) {
    engine::ScenarioSpec candidate = value;
    mutate(candidate);
    candidate.validate();
    candidates.push_back(std::move(candidate));
  };
  if (!value.overrides.empty()) {
    propose([](engine::ScenarioSpec& s) { s.overrides.clear(); });
  }
  if (value.points > 3) {
    propose([](engine::ScenarioSpec& s) { s.points = 3; });
  }
  if (value.configuration != "Hera/XScale") {
    propose([](engine::ScenarioSpec& s) { s.configuration = "Hera/XScale"; });
  }
  if (value.rho != 3.0) {
    propose([](engine::ScenarioSpec& s) { s.rho = 3.0; });
  }
  if (value.recall_mode && value.verification_recall != 1.0) {
    propose([](engine::ScenarioSpec& s) { s.verification_recall = 1.0; });
  }
  if (!value.cache) {
    propose([](engine::ScenarioSpec& s) { s.cache = true; });
  }
  return candidates;
}

std::string ScenarioSpecGen::describe(
    const engine::ScenarioSpec& value) const {
  // write_scenario's key=value lines, flattened to the one-line
  // parse_scenario form — paste it straight back into `rexspeed sweep`.
  std::string text = engine::write_scenario(value);
  std::replace(text.begin(), text.end(), '\n', ' ');
  return text;
}

}  // namespace rexspeed::proptest
