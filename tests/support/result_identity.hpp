#pragma once

// Byte-level campaign-result comparison via the store's canonical
// serializers — the same representation shard workers ship results in.
// "Identical" here means every double's bit pattern matches (NaNs and
// signed zeros included), which is the contract the shard merge and the
// result cache both promise; EXPECT_DOUBLE_EQ would be too weak.

#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <vector>

#include "rexspeed/engine/campaign_runner.hpp"
#include "rexspeed/store/serialize.hpp"

namespace rexspeed::test {

inline void expect_identical_results(
    const std::vector<engine::ScenarioResult>& actual,
    const std::vector<engine::ScenarioResult>& expected) {
  ASSERT_EQ(actual.size(), expected.size());
  for (std::size_t s = 0; s < actual.size(); ++s) {
    SCOPED_TRACE("scenario '" + expected[s].spec.name + "' [" +
                 std::to_string(s) + "]");
    EXPECT_EQ(store::serialize_solution(actual[s].solution),
              store::serialize_solution(expected[s].solution));
    ASSERT_EQ(actual[s].panels.size(), expected[s].panels.size());
    for (std::size_t p = 0; p < actual[s].panels.size(); ++p) {
      SCOPED_TRACE("panel " + std::to_string(p));
      EXPECT_EQ(store::serialize_panel_series(actual[s].panels[p]),
                store::serialize_panel_series(expected[s].panels[p]));
    }
  }
}

/// The serial in-process reference the shard suites compare against.
/// Scoped helper on purpose: the runner's ThreadPool must be destroyed
/// BEFORE a ShardCoordinator forks (forking a process that carries live
/// threads is exactly the hazard the shard layer avoids by forking
/// first).
inline std::vector<engine::ScenarioResult> serial_reference(
    const std::vector<engine::ScenarioSpec>& specs) {
  engine::CampaignRunnerOptions options;
  options.threads = 1;
  const engine::CampaignRunner runner(options);
  return runner.run(specs);
}

}  // namespace rexspeed::test
