#include "rexspeed/platform/configuration.hpp"

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

namespace rexspeed::platform {
namespace {

TEST(Configuration, DefaultPioRuleUsesLowestSpeedDynamicPower) {
  // Paper §4.1: Pio defaults to the CPU power at the lowest speed.
  const Configuration hx = make_configuration(hera(), intel_xscale());
  EXPECT_NEAR(hx.io_power_mw, 1550.0 * 0.15 * 0.15 * 0.15, 1e-12);

  const Configuration hc = make_configuration(hera(), transmeta_crusoe());
  EXPECT_NEAR(hc.io_power_mw, 5756.0 * 0.45 * 0.45 * 0.45, 1e-9);
}

TEST(Configuration, NameCombinesPlatformAndProcessor) {
  const Configuration c = make_configuration(atlas(), transmeta_crusoe());
  EXPECT_EQ(c.name(), "Atlas/Crusoe");
}

TEST(Configuration, RegistryHasAllEightCombinations) {
  const auto& all = all_configurations();
  ASSERT_EQ(all.size(), 8u);
  std::set<std::string> names;
  for (const auto& config : all) names.insert(config.name());
  EXPECT_EQ(names.size(), 8u);
  EXPECT_TRUE(names.contains("Hera/XScale"));
  EXPECT_TRUE(names.contains("Atlas/Crusoe"));
  EXPECT_TRUE(names.contains("CoastalSSD/Crusoe"));
}

TEST(Configuration, LookupByName) {
  const Configuration& c = configuration_by_name("Coastal/XScale");
  EXPECT_EQ(c.platform.name, "Coastal");
  EXPECT_EQ(c.processor.name, "XScale");
}

TEST(Configuration, LookupUnknownThrows) {
  EXPECT_THROW(configuration_by_name("Sierra/XScale"), std::out_of_range);
  EXPECT_THROW(configuration_by_name(""), std::out_of_range);
}

TEST(Configuration, ValidateRejectsNegativeIoPower) {
  Configuration c = make_configuration(hera(), intel_xscale());
  c.io_power_mw = -1.0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
}

TEST(Configuration, AllRegistryEntriesValidate) {
  for (const auto& config : all_configurations()) {
    EXPECT_NO_THROW(config.validate()) << config.name();
  }
}

}  // namespace
}  // namespace rexspeed::platform
