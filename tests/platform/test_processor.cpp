#include "rexspeed/platform/processor.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace rexspeed::platform {
namespace {

TEST(Processor, XScaleMatchesPaperTable2) {
  const ProcessorSpec p = intel_xscale();
  EXPECT_EQ(p.name, "XScale");
  ASSERT_EQ(p.speeds.size(), 5u);
  EXPECT_DOUBLE_EQ(p.speeds[0], 0.15);
  EXPECT_DOUBLE_EQ(p.speeds[1], 0.4);
  EXPECT_DOUBLE_EQ(p.speeds[2], 0.6);
  EXPECT_DOUBLE_EQ(p.speeds[3], 0.8);
  EXPECT_DOUBLE_EQ(p.speeds[4], 1.0);
  EXPECT_DOUBLE_EQ(p.kappa_mw, 1550.0);
  EXPECT_DOUBLE_EQ(p.idle_power_mw, 60.0);
}

TEST(Processor, CrusoeMatchesPaperTable2) {
  const ProcessorSpec p = transmeta_crusoe();
  EXPECT_EQ(p.name, "Crusoe");
  ASSERT_EQ(p.speeds.size(), 5u);
  EXPECT_DOUBLE_EQ(p.speeds[0], 0.45);
  EXPECT_DOUBLE_EQ(p.speeds[4], 1.0);
  EXPECT_DOUBLE_EQ(p.kappa_mw, 5756.0);
  EXPECT_DOUBLE_EQ(p.idle_power_mw, 4.4);
}

TEST(Processor, PowerLawIsCubic) {
  const ProcessorSpec p = intel_xscale();
  // P(1) = 1550 + 60; P(0.5) = 1550/8 + 60.
  EXPECT_DOUBLE_EQ(p.compute_power(1.0), 1610.0);
  EXPECT_DOUBLE_EQ(p.compute_power(0.5), 1550.0 / 8.0 + 60.0);
  EXPECT_DOUBLE_EQ(p.dynamic_power(0.5), 1550.0 / 8.0);
}

TEST(Processor, MinMaxSpeed) {
  const ProcessorSpec p = transmeta_crusoe();
  EXPECT_DOUBLE_EQ(p.min_speed(), 0.45);
  EXPECT_DOUBLE_EQ(p.max_speed(), 1.0);
}

TEST(Processor, ValidateAcceptsFactorySpecs) {
  EXPECT_NO_THROW(intel_xscale().validate());
  EXPECT_NO_THROW(transmeta_crusoe().validate());
}

TEST(Processor, ValidateRejectsMalformedSpecs) {
  ProcessorSpec p = intel_xscale();
  p.name.clear();
  EXPECT_THROW(p.validate(), std::invalid_argument);

  p = intel_xscale();
  p.speeds.clear();
  EXPECT_THROW(p.validate(), std::invalid_argument);

  p = intel_xscale();
  p.speeds = {0.5, 0.5};  // not strictly increasing
  EXPECT_THROW(p.validate(), std::invalid_argument);

  p = intel_xscale();
  p.speeds = {0.5, 1.5};  // above normalized range
  EXPECT_THROW(p.validate(), std::invalid_argument);

  p = intel_xscale();
  p.speeds = {0.0, 0.5};  // zero speed
  EXPECT_THROW(p.validate(), std::invalid_argument);

  p = intel_xscale();
  p.kappa_mw = -1.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(Processor, RegistryHasBothProcessorsInTableOrder) {
  const auto& all = all_processors();
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0].name, "XScale");
  EXPECT_EQ(all[1].name, "Crusoe");
}

}  // namespace
}  // namespace rexspeed::platform
