#include "rexspeed/platform/platform.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace rexspeed::platform {
namespace {

TEST(Platform, Table1Values) {
  const PlatformSpec h = hera();
  EXPECT_EQ(h.name, "Hera");
  EXPECT_DOUBLE_EQ(h.error_rate, 3.38e-6);
  EXPECT_DOUBLE_EQ(h.checkpoint_s, 300.0);
  EXPECT_DOUBLE_EQ(h.verification_s, 15.4);

  const PlatformSpec a = atlas();
  EXPECT_DOUBLE_EQ(a.error_rate, 7.78e-6);
  EXPECT_DOUBLE_EQ(a.checkpoint_s, 439.0);
  EXPECT_DOUBLE_EQ(a.verification_s, 9.1);

  const PlatformSpec c = coastal();
  EXPECT_DOUBLE_EQ(c.error_rate, 2.01e-6);
  EXPECT_DOUBLE_EQ(c.checkpoint_s, 1051.0);
  EXPECT_DOUBLE_EQ(c.verification_s, 4.5);

  const PlatformSpec s = coastal_ssd();
  EXPECT_DOUBLE_EQ(s.error_rate, 2.01e-6);
  EXPECT_DOUBLE_EQ(s.checkpoint_s, 2500.0);
  EXPECT_DOUBLE_EQ(s.verification_s, 180.0);
}

TEST(Platform, RecoveryEqualsCheckpoint) {
  for (const auto& p : all_platforms()) {
    EXPECT_DOUBLE_EQ(p.recovery_s(), p.checkpoint_s) << p.name;
  }
}

TEST(Platform, MtbfIsInverseRate) {
  EXPECT_NEAR(hera().mtbf_s(), 1.0 / 3.38e-6, 1e-3);
}

TEST(Platform, RegistryOrderMatchesTable1) {
  const auto& all = all_platforms();
  ASSERT_EQ(all.size(), 4u);
  EXPECT_EQ(all[0].name, "Hera");
  EXPECT_EQ(all[1].name, "Atlas");
  EXPECT_EQ(all[2].name, "Coastal");
  EXPECT_EQ(all[3].name, "CoastalSSD");
}

TEST(Platform, ValidateRejectsMalformedSpecs) {
  PlatformSpec p = hera();
  p.error_rate = 0.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);

  p = hera();
  p.checkpoint_s = 0.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);

  p = hera();
  p.verification_s = -1.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);

  p = hera();
  p.name.clear();
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

}  // namespace
}  // namespace rexspeed::platform
