#include "rexspeed/stats/regression.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

namespace rexspeed::stats {
namespace {

TEST(LinearFit, RecoversExactLine) {
  const std::vector<double> x = {1.0, 2.0, 3.0, 4.0, 5.0};
  std::vector<double> y;
  for (const double xi : x) y.push_back(3.0 * xi - 2.0);
  const LinearFit fit = linear_fit(x, y);
  EXPECT_NEAR(fit.slope, 3.0, 1e-12);
  EXPECT_NEAR(fit.intercept, -2.0, 1e-12);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(LinearFit, NoisyDataHasPositiveSlopeError) {
  const std::vector<double> x = {0.0, 1.0, 2.0, 3.0, 4.0, 5.0};
  const std::vector<double> y = {0.1, 0.9, 2.2, 2.8, 4.1, 4.9};
  const LinearFit fit = linear_fit(x, y);
  EXPECT_NEAR(fit.slope, 1.0, 0.1);
  EXPECT_GT(fit.slope_stderr, 0.0);
  EXPECT_GT(fit.r_squared, 0.98);
}

TEST(LinearFit, TwoPointsIsExact) {
  const std::vector<double> x = {1.0, 3.0};
  const std::vector<double> y = {2.0, 8.0};
  const LinearFit fit = linear_fit(x, y);
  EXPECT_NEAR(fit.slope, 3.0, 1e-12);
  EXPECT_NEAR(fit.intercept, -1.0, 1e-12);
  EXPECT_EQ(fit.slope_stderr, 0.0);  // no residual degrees of freedom
}

TEST(LinearFit, RejectsDegenerateInput) {
  const std::vector<double> one = {1.0};
  const std::vector<double> same = {2.0, 2.0};
  const std::vector<double> y2 = {1.0, 2.0};
  EXPECT_THROW(linear_fit(one, one), std::invalid_argument);
  EXPECT_THROW(linear_fit(same, y2), std::invalid_argument);
  const std::vector<double> x3 = {1.0, 2.0, 3.0};
  EXPECT_THROW(linear_fit(x3, y2), std::invalid_argument);
}

TEST(LogLogFit, RecoversPowerLawExponent) {
  // y = 5 x^{-2/3}, the Theorem-2 shape.
  std::vector<double> x;
  std::vector<double> y;
  for (double v = 1e-7; v < 1e-3; v *= 2.0) {
    x.push_back(v);
    y.push_back(5.0 * std::pow(v, -2.0 / 3.0));
  }
  const LinearFit fit = log_log_fit(x, y);
  EXPECT_NEAR(fit.slope, -2.0 / 3.0, 1e-10);
  EXPECT_NEAR(std::exp(fit.intercept), 5.0, 1e-8);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(LogLogFit, RejectsNonPositiveValues) {
  const std::vector<double> x = {1.0, 2.0};
  const std::vector<double> y = {1.0, 0.0};
  EXPECT_THROW(log_log_fit(x, y), std::domain_error);
  const std::vector<double> xneg = {-1.0, 2.0};
  const std::vector<double> ypos = {1.0, 2.0};
  EXPECT_THROW(log_log_fit(xneg, ypos), std::domain_error);
}

}  // namespace
}  // namespace rexspeed::stats
