#include "rexspeed/stats/quantile.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "rexspeed/sim/rng.hpp"

namespace rexspeed::stats {
namespace {

double exact_quantile(std::vector<double> xs, double p) {
  std::sort(xs.begin(), xs.end());
  const auto rank = static_cast<std::size_t>(
      std::ceil(p * static_cast<double>(xs.size())));
  return xs[std::max<std::size_t>(rank, 1) - 1];
}

TEST(P2Quantile, ExactForFewSamples) {
  P2Quantile q(0.5);
  q.add(10.0);
  EXPECT_DOUBLE_EQ(q.value(), 10.0);
  q.add(20.0);
  q.add(30.0);
  EXPECT_DOUBLE_EQ(q.value(), 20.0);  // median of {10,20,30}
}

TEST(P2Quantile, MedianOfUniformStream) {
  P2Quantile q(0.5);
  sim::Xoshiro256 rng(1);
  for (int i = 0; i < 100000; ++i) q.add(rng.uniform());
  EXPECT_NEAR(q.value(), 0.5, 0.01);
}

TEST(P2Quantile, TailQuantileOfUniformStream) {
  P2Quantile q(0.95);
  sim::Xoshiro256 rng(2);
  for (int i = 0; i < 100000; ++i) q.add(rng.uniform());
  EXPECT_NEAR(q.value(), 0.95, 0.01);
}

TEST(P2Quantile, ExponentialTail) {
  // P99 of Exp(1) is −ln(0.01) ≈ 4.605.
  P2Quantile q(0.99);
  sim::Xoshiro256 rng(3);
  for (int i = 0; i < 200000; ++i) {
    q.add(-std::log(rng.uniform_positive()));
  }
  EXPECT_NEAR(q.value(), 4.605, 0.25);
}

TEST(P2Quantile, CloseToExactOrderStatisticOnModerateSample) {
  P2Quantile q(0.9);
  std::vector<double> xs;
  sim::Xoshiro256 rng(4);
  for (int i = 0; i < 5000; ++i) {
    const double x = rng.uniform() * rng.uniform();  // skewed
    xs.push_back(x);
    q.add(x);
  }
  EXPECT_NEAR(q.value(), exact_quantile(xs, 0.9), 0.02);
}

TEST(P2Quantile, MonotoneInProbability) {
  P2Quantile q10(0.1);
  P2Quantile q50(0.5);
  P2Quantile q90(0.9);
  sim::Xoshiro256 rng(5);
  for (int i = 0; i < 20000; ++i) {
    const double x = rng.uniform();
    q10.add(x);
    q50.add(x);
    q90.add(x);
  }
  EXPECT_LT(q10.value(), q50.value());
  EXPECT_LT(q50.value(), q90.value());
}

TEST(P2Quantile, CountTracksSamples) {
  P2Quantile q(0.5);
  EXPECT_EQ(q.count(), 0u);
  for (int i = 0; i < 17; ++i) q.add(i);
  EXPECT_EQ(q.count(), 17u);
  EXPECT_DOUBLE_EQ(q.probability(), 0.5);
}

TEST(P2Quantile, RejectsBadProbabilityAndEmptyValue) {
  EXPECT_THROW(P2Quantile(0.0), std::invalid_argument);
  EXPECT_THROW(P2Quantile(1.0), std::invalid_argument);
  P2Quantile q(0.5);
  EXPECT_THROW(q.value(), std::logic_error);
}

}  // namespace
}  // namespace rexspeed::stats
