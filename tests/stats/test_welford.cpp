#include "rexspeed/stats/welford.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace rexspeed::stats {
namespace {

TEST(Welford, EmptyAccumulator) {
  Welford acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_EQ(acc.mean(), 0.0);
  EXPECT_EQ(acc.variance(), 0.0);
}

TEST(Welford, SingleObservation) {
  Welford acc;
  acc.add(7.0);
  EXPECT_EQ(acc.count(), 1u);
  EXPECT_DOUBLE_EQ(acc.mean(), 7.0);
  EXPECT_EQ(acc.variance(), 0.0);
  EXPECT_EQ(acc.min(), 7.0);
  EXPECT_EQ(acc.max(), 7.0);
}

TEST(Welford, MatchesTextbookFormulas) {
  const std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  Welford acc;
  for (const double x : xs) acc.add(x);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  // Sample variance with n−1 = 7: Σ(x−5)² = 32, 32/7.
  EXPECT_NEAR(acc.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(acc.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_NEAR(acc.standard_error(), std::sqrt(32.0 / 7.0 / 8.0), 1e-12);
  EXPECT_EQ(acc.min(), 2.0);
  EXPECT_EQ(acc.max(), 9.0);
}

TEST(Welford, StableUnderLargeOffset) {
  // Classic catastrophic-cancellation case for naive two-pass variance.
  constexpr double kOffset = 1e9;
  Welford acc;
  for (const double x : {4.0, 7.0, 13.0, 16.0}) acc.add(kOffset + x);
  EXPECT_NEAR(acc.variance(), 30.0, 1e-6);
}

TEST(Welford, MergeEqualsSequential) {
  Welford sequential;
  Welford left;
  Welford right;
  for (int i = 0; i < 100; ++i) {
    const double x = 0.1 * i * i - 3.0 * i;
    sequential.add(x);
    (i < 37 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), sequential.count());
  EXPECT_NEAR(left.mean(), sequential.mean(), 1e-10);
  EXPECT_NEAR(left.variance(), sequential.variance(), 1e-8);
  EXPECT_EQ(left.min(), sequential.min());
  EXPECT_EQ(left.max(), sequential.max());
}

TEST(Welford, MergeWithEmptySides) {
  Welford filled;
  filled.add(1.0);
  filled.add(3.0);

  Welford empty;
  Welford copy = filled;
  copy.merge(empty);
  EXPECT_EQ(copy.count(), 2u);
  EXPECT_DOUBLE_EQ(copy.mean(), 2.0);

  empty.merge(filled);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
}

TEST(Welford, ResetClearsState) {
  Welford acc;
  acc.add(5.0);
  acc.reset();
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_EQ(acc.mean(), 0.0);
}

}  // namespace
}  // namespace rexspeed::stats
