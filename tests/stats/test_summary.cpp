#include "rexspeed/stats/summary.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace rexspeed::stats {
namespace {

TEST(NormalQuantile, StandardValues) {
  EXPECT_NEAR(normal_quantile(0.5), 0.0, 1e-9);
  EXPECT_NEAR(normal_quantile(0.975), 1.959963985, 1e-6);
  EXPECT_NEAR(normal_quantile(0.995), 2.575829304, 1e-6);
  EXPECT_NEAR(normal_quantile(0.8413447461), 1.0, 1e-6);
}

TEST(NormalQuantile, Symmetry) {
  for (const double p : {0.6, 0.75, 0.9, 0.99, 0.999}) {
    EXPECT_NEAR(normal_quantile(p), -normal_quantile(1.0 - p), 1e-9)
        << "p = " << p;
  }
}

TEST(NormalQuantile, TailBranch) {
  // Values below the 0.02425 switchover exercise the tail approximation.
  EXPECT_NEAR(normal_quantile(0.001), -3.090232306, 1e-6);
  EXPECT_NEAR(normal_quantile(0.999), 3.090232306, 1e-6);
}

TEST(NormalQuantile, RejectsOutOfRange) {
  EXPECT_THROW(normal_quantile(0.0), std::domain_error);
  EXPECT_THROW(normal_quantile(1.0), std::domain_error);
  EXPECT_THROW(normal_quantile(-0.1), std::domain_error);
}

TEST(StudentTQuantile, ConvergesToNormalForLargeDf) {
  EXPECT_NEAR(student_t_quantile(0.975, 1000000), normal_quantile(0.975),
              1e-5);
}

TEST(StudentTQuantile, TableValues) {
  // Standard t-table entries, two-sided 95% (p = 0.975).
  EXPECT_NEAR(student_t_quantile(0.975, 10), 2.228, 4e-3);
  EXPECT_NEAR(student_t_quantile(0.975, 30), 2.042, 2e-3);
  EXPECT_NEAR(student_t_quantile(0.975, 100), 1.984, 1e-3);
}

TEST(StudentTQuantile, RejectsZeroDf) {
  EXPECT_THROW(student_t_quantile(0.975, 0), std::domain_error);
}

TEST(ConfidenceInterval, Basics) {
  const ConfidenceInterval ci{1.0, 3.0};
  EXPECT_DOUBLE_EQ(ci.half_width(), 1.0);
  EXPECT_DOUBLE_EQ(ci.center(), 2.0);
  EXPECT_TRUE(ci.contains(1.0));
  EXPECT_TRUE(ci.contains(2.5));
  EXPECT_FALSE(ci.contains(3.5));
}

TEST(MeanConfidenceInterval, DegenerateWithFewSamples) {
  Welford acc;
  acc.add(5.0);
  const ConfidenceInterval ci = mean_confidence_interval(acc, 0.95);
  EXPECT_EQ(ci.lower, 5.0);
  EXPECT_EQ(ci.upper, 5.0);
}

TEST(MeanConfidenceInterval, MatchesManualComputation) {
  Welford acc;
  for (const double x : {10.0, 12.0, 14.0, 16.0, 18.0}) acc.add(x);
  // mean 14, sd = sqrt(40/4) = sqrt(10), se = sqrt(10/5) = sqrt(2).
  const ConfidenceInterval ci = mean_confidence_interval(acc, 0.95);
  const double t = student_t_quantile(0.975, 4);
  EXPECT_NEAR(ci.center(), 14.0, 1e-12);
  EXPECT_NEAR(ci.half_width(), t * std::sqrt(2.0), 1e-9);
}

TEST(MeanConfidenceInterval, WiderAtHigherConfidence) {
  Welford acc;
  for (int i = 0; i < 50; ++i) acc.add(static_cast<double>(i % 7));
  const auto ci95 = mean_confidence_interval(acc, 0.95);
  const auto ci99 = mean_confidence_interval(acc, 0.99);
  EXPECT_GT(ci99.half_width(), ci95.half_width());
}

TEST(MeanConfidenceInterval, RejectsBadConfidence) {
  Welford acc;
  acc.add(1.0);
  acc.add(2.0);
  EXPECT_THROW(mean_confidence_interval(acc, 0.0), std::domain_error);
  EXPECT_THROW(mean_confidence_interval(acc, 1.0), std::domain_error);
}

}  // namespace
}  // namespace rexspeed::stats
