#include "rexspeed/stats/kahan.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace rexspeed::stats {
namespace {

TEST(KahanSum, EmptySumIsZero) {
  KahanSum sum;
  EXPECT_EQ(sum.value(), 0.0);
  EXPECT_EQ(sum.count(), 0u);
}

TEST(KahanSum, SumsExactValues) {
  KahanSum sum;
  sum.add(1.0);
  sum.add(2.0);
  sum.add(3.0);
  EXPECT_DOUBLE_EQ(sum.value(), 6.0);
  EXPECT_EQ(sum.count(), 3u);
}

TEST(KahanSum, InitialValueConstructor) {
  KahanSum sum(10.0);
  sum.add(5.0);
  EXPECT_DOUBLE_EQ(sum.value(), 15.0);
}

TEST(KahanSum, RecoversBitsLostByNaiveSummation) {
  // 1 + 1e-16 repeated: naive summation never leaves 1.0.
  KahanSum sum;
  sum.add(1.0);
  constexpr int kAdds = 10000;
  for (int i = 0; i < kAdds; ++i) sum.add(1e-16);
  EXPECT_DOUBLE_EQ(sum.value(), 1.0 + kAdds * 1e-16);

  double naive = 1.0;
  for (int i = 0; i < kAdds; ++i) naive += 1e-16;
  EXPECT_EQ(naive, 1.0);  // demonstrates the failure Kahan avoids
}

TEST(KahanSum, NeumaierHandlesLargeAddendAfterSmallSum) {
  // Classic case where plain Kahan (non-Neumaier) fails:
  // 1 + 1e100 + 1 - 1e100 should be 2.
  KahanSum sum;
  sum.add(1.0);
  sum.add(1e100);
  sum.add(1.0);
  sum.add(-1e100);
  EXPECT_DOUBLE_EQ(sum.value(), 2.0);
}

TEST(KahanSum, RangeAddAndHelper) {
  const std::vector<double> values = {0.1, 0.2, 0.3, 0.4};
  KahanSum sum;
  sum.add(values.begin(), values.end());
  EXPECT_NEAR(sum.value(), 1.0, 1e-15);
  EXPECT_EQ(sum.count(), values.size());
  EXPECT_NEAR(kahan_sum(values.begin(), values.end()), 1.0, 1e-15);
}

TEST(KahanSum, ResetClearsState) {
  KahanSum sum;
  sum.add(42.0);
  sum.reset();
  EXPECT_EQ(sum.value(), 0.0);
  EXPECT_EQ(sum.count(), 0u);
}

TEST(KahanSum, OperatorPlusEquals) {
  KahanSum sum;
  sum += 1.5;
  sum += 2.5;
  EXPECT_DOUBLE_EQ(sum.value(), 4.0);
}

}  // namespace
}  // namespace rexspeed::stats
