#include "rexspeed/io/csv_writer.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "rexspeed/sweep/figure_sweeps.hpp"

namespace rexspeed::io {
namespace {

TEST(CsvWriter, PlainRow) {
  std::ostringstream os;
  CsvWriter csv(os);
  csv.write_row(std::vector<std::string>{"a", "b", "c"});
  EXPECT_EQ(os.str(), "a,b,c\n");
}

TEST(CsvWriter, NumericRowUsesCompactFormat) {
  std::ostringstream os;
  CsvWriter csv(os);
  csv.write_row(std::vector<double>{1.5, 2764.0, 3.38e-6});
  EXPECT_EQ(os.str(), "1.5,2764,3.38e-06\n");
}

TEST(CsvWriter, EscapesCommasAndQuotes) {
  EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvWriter::escape("line\nbreak"), "\"line\nbreak\"");
  EXPECT_EQ(CsvWriter::escape("plain"), "plain");
}

TEST(CsvWriter, MixedRowsAccumulate) {
  std::ostringstream os;
  CsvWriter csv(os);
  csv.write_row(std::vector<std::string>{"x", "value"});
  csv.write_row(std::vector<double>{1.0, 2.0});
  csv.write_row(std::vector<double>{3.0, 4.0});
  EXPECT_EQ(os.str(), "x,value\n1,2\n3,4\n");
}

TEST(CsvWriter, WriteCsvSeriesEmitsHeaderAndOneRowPerPoint) {
  sweep::Series series("rho", {"up", "down"});
  series.add_row(1.0, {10.0, 0.5});
  series.add_row(2.0, {20.0, 0.25});
  std::ostringstream os;
  write_csv_series(os, series);
  EXPECT_EQ(os.str(), "rho,up,down\n1,10,0.5\n2,20,0.25\n");
}

TEST(CsvWriter, ExportCsvFigureSharesTheGnuplotStem) {
  sweep::FigureSeries figure;
  figure.parameter = sweep::SweepParameter::kVerificationTime;
  figure.configuration = "Hera/XScale";
  figure.rho = 3.0;
  figure.points.resize(2);
  figure.points[0].x = 0.0;
  figure.points[1].x = 100.0;

  const auto stem = export_csv_figure(figure, ::testing::TempDir());
  ASSERT_TRUE(stem.has_value());
  EXPECT_EQ(*stem, "Hera_XScale_V");
  std::ifstream in(::testing::TempDir() + "/" + *stem + ".csv");
  std::string header;
  ASSERT_TRUE(std::getline(in, header));
  EXPECT_EQ(header, "V,sigma1,sigma2,Wopt2,energy2,sigma,Wopt1,energy1,saving");

  EXPECT_FALSE(export_csv_figure(figure, "/nonexistent-dir").has_value());
}

}  // namespace
}  // namespace rexspeed::io
