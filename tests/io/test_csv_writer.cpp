#include "rexspeed/io/csv_writer.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace rexspeed::io {
namespace {

TEST(CsvWriter, PlainRow) {
  std::ostringstream os;
  CsvWriter csv(os);
  csv.write_row(std::vector<std::string>{"a", "b", "c"});
  EXPECT_EQ(os.str(), "a,b,c\n");
}

TEST(CsvWriter, NumericRowUsesCompactFormat) {
  std::ostringstream os;
  CsvWriter csv(os);
  csv.write_row(std::vector<double>{1.5, 2764.0, 3.38e-6});
  EXPECT_EQ(os.str(), "1.5,2764,3.38e-06\n");
}

TEST(CsvWriter, EscapesCommasAndQuotes) {
  EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvWriter::escape("line\nbreak"), "\"line\nbreak\"");
  EXPECT_EQ(CsvWriter::escape("plain"), "plain");
}

TEST(CsvWriter, MixedRowsAccumulate) {
  std::ostringstream os;
  CsvWriter csv(os);
  csv.write_row(std::vector<std::string>{"x", "value"});
  csv.write_row(std::vector<double>{1.0, 2.0});
  csv.write_row(std::vector<double>{3.0, 4.0});
  EXPECT_EQ(os.str(), "x,value\n1,2\n3,4\n");
}

}  // namespace
}  // namespace rexspeed::io
