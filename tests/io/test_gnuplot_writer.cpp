#include "rexspeed/io/gnuplot_writer.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <sstream>

namespace rexspeed::io {
namespace {

sweep::Series sample_series() {
  sweep::Series series("C", {"sigma1", "energy"});
  series.add_row(100.0, {0.45, 1200.5});
  series.add_row(200.0, {0.6, 1300.0});
  return series;
}

TEST(GnuplotWriter, DatHeaderAndRows) {
  std::ostringstream os;
  write_gnuplot_dat(os, sample_series());
  const std::string text = os.str();
  EXPECT_EQ(text,
            "# C sigma1 energy\n"
            "100 0.45 1200.5\n"
            "200 0.6 1300\n");
}

TEST(GnuplotWriter, NanBecomesMissingMarker) {
  sweep::Series series("x", {"y"});
  series.add_row(1.0, {std::numeric_limits<double>::quiet_NaN()});
  series.add_row(2.0, {5.0});
  std::ostringstream os;
  write_gnuplot_dat(os, series);
  EXPECT_EQ(os.str(), "# x y\n1 ?\n2 5\n");
}

TEST(GnuplotWriter, ScriptReferencesEveryColumn) {
  std::ostringstream os;
  write_gnuplot_script(os, sample_series(), "fig.dat");
  const std::string text = os.str();
  EXPECT_NE(text.find("set xlabel 'C'"), std::string::npos);
  EXPECT_NE(text.find("'fig.dat' using 1:2"), std::string::npos);
  EXPECT_NE(text.find("using 1:3"), std::string::npos);
  EXPECT_NE(text.find("title 'sigma1'"), std::string::npos);
  EXPECT_NE(text.find("set datafile missing '?'"), std::string::npos);
  EXPECT_EQ(text.find("logscale"), std::string::npos);
}

TEST(GnuplotWriter, ScriptLogscaleOption) {
  std::ostringstream os;
  write_gnuplot_script(os, sample_series(), "fig.dat", true);
  EXPECT_NE(os.str().find("set logscale x"), std::string::npos);
}

}  // namespace
}  // namespace rexspeed::io
