// Golden-file test for the campaign CSV/gnuplot export of an interleaved
// scenario: the exported artifacts must be BYTE-exact against checked-in
// fixtures (tests/io/golden/), exercising figure_file_stem and
// export_csv_figure/export_gnuplot_figure end to end. Any intentional
// format or solver change must regenerate the fixtures (see the scenario
// spec in the same directory:
//   rexspeed campaign --scenario-dir=tests/io/golden
//                     --scenarios=golden_interleaved --out-dir=...).

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "rexspeed/engine/campaign_runner.hpp"
#include "rexspeed/engine/scenario_file.hpp"
#include "rexspeed/io/csv_writer.hpp"
#include "rexspeed/io/gnuplot_writer.hpp"

namespace rexspeed::io {
namespace {

namespace fs = std::filesystem;

/// The checked-in fixture directory, located relative to this source file
/// so the test is independent of the ctest working directory.
fs::path golden_dir() {
  return fs::path(__FILE__).parent_path() / "golden";
}

std::string read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in) << "cannot open " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

class InterleavedGolden : public ::testing::Test {
 protected:
  void SetUp() override {
    out_dir_ = fs::temp_directory_path() / "rexspeed_interleaved_golden";
    fs::remove_all(out_dir_);
    fs::create_directories(out_dir_);
  }
  void TearDown() override { fs::remove_all(out_dir_); }

  fs::path out_dir_;
};

TEST_F(InterleavedGolden, CampaignExportIsByteExact) {
  // The spec comes from the checked-in scenario file, so the fixture
  // directory fully describes how to regenerate itself.
  const engine::ScenarioSpec spec = engine::load_scenario_file(
      (golden_dir() / "golden_interleaved.scenario").string());
  ASSERT_TRUE(spec.interleaved());
  ASSERT_EQ(spec.kind(), engine::ScenarioKind::kAllSweeps);

  const engine::ScenarioResult result =
      engine::CampaignRunner(engine::CampaignRunnerOptions{.threads = 2})
          .run_one(spec);
  ASSERT_EQ(result.panels.size(), 2u);

  // The generic panels carry the interleaved kind, and their exports keep
  // the historical "_interleaved_" stems byte for byte.
  EXPECT_EQ(result.panels[0].kind, core::SolutionKind::kInterleaved);
  EXPECT_EQ(figure_file_stem(result.panels[0]),
            "Hera_XScale_interleaved_rho");
  EXPECT_EQ(figure_file_stem(result.panels[1]),
            "Hera_XScale_interleaved_segments");

  for (const auto& panel : result.panels) {
    const auto csv_stem = export_csv_figure(panel, out_dir_.string());
    const auto gp_stem = export_gnuplot_figure(panel, out_dir_.string());
    ASSERT_TRUE(csv_stem.has_value());
    ASSERT_TRUE(gp_stem.has_value());
    EXPECT_EQ(*csv_stem, *gp_stem);  // artifacts share one stem
    for (const char* extension : {".csv", ".dat", ".gp"}) {
      const std::string filename = *csv_stem + extension;
      SCOPED_TRACE(filename);
      EXPECT_EQ(read_file(out_dir_ / filename),
                read_file(golden_dir() / filename));
    }
  }
}

TEST_F(InterleavedGolden, GoldenFixturesHaveExpectedShape) {
  // Guard the fixtures themselves: headers carry the interleaved columns,
  // infeasible points render as '?' gaps in the .dat (the ρ panel starts
  // below the feasibility horizon), and the CSV has one row per point.
  const std::string dat =
      read_file(golden_dir() / "Hera_XScale_interleaved_rho.dat");
  EXPECT_EQ(dat.rfind("# rho best_m sigma1 sigma2 Wopt energy time "
                      "energy1 saving\n",
                      0),
            0u);
  EXPECT_NE(dat.find(" ? "), std::string::npos);

  const std::string csv =
      read_file(golden_dir() / "Hera_XScale_interleaved_segments.csv");
  EXPECT_EQ(csv.rfind("segments,best_m,sigma1,sigma2,Wopt,energy,time,"
                      "energy1,saving\n",
                      0),
            0u);
  // 4 segment counts (max_segments=4) + header.
  std::size_t lines = 0;
  for (const char ch : csv) lines += ch == '\n';
  EXPECT_EQ(lines, 5u);
}

}  // namespace
}  // namespace rexspeed::io
