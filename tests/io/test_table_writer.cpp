#include "rexspeed/io/table_writer.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace rexspeed::io {
namespace {

TEST(TableWriter, AlignsColumns) {
  TableWriter table({"sigma1", "E/W"});
  table.add_row({"0.4", "416"});
  table.add_row({"0.15", "1625.5"});
  const std::string text = table.str();
  std::istringstream lines(text);
  std::string header;
  std::string underline;
  std::string row1;
  std::string row2;
  std::getline(lines, header);
  std::getline(lines, underline);
  std::getline(lines, row1);
  std::getline(lines, row2);
  EXPECT_NE(header.find("sigma1"), std::string::npos);
  EXPECT_NE(underline.find("------"), std::string::npos);
  // Both data rows render, column 2 starts at the same offset.
  EXPECT_EQ(row1.find("416"), row2.find("1625.5"));
}

TEST(TableWriter, CellFormatsDoubles) {
  EXPECT_EQ(TableWriter::cell(2764.0, 0), "2764");
  EXPECT_EQ(TableWriter::cell(0.4, 2), "0.4");     // trailing zero trimmed
  EXPECT_EQ(TableWriter::cell(1.775, 3), "1.775");
  EXPECT_EQ(TableWriter::cell(416.83, 1), "416.8");
}

TEST(TableWriter, NanRendersAsDash) {
  EXPECT_EQ(TableWriter::cell(std::numeric_limits<double>::quiet_NaN()), "-");
}

TEST(TableWriter, RejectsEmptyHeader) {
  EXPECT_THROW(TableWriter({}), std::invalid_argument);
}

TEST(TableWriter, RejectsWidthMismatch) {
  TableWriter table({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), std::invalid_argument);
}

TEST(TableWriter, WriteToStream) {
  TableWriter table({"x"});
  table.add_row({"1"});
  std::ostringstream os;
  table.write(os);
  EXPECT_EQ(os.str(), table.str());
}

}  // namespace
}  // namespace rexspeed::io
