set xlabel 'rho'
set key outside
set datafile missing '?'
plot 'Hera_XScale_rho.dat' using 1:2 with linespoints title 'sigma1', 'Hera_XScale_rho.dat' using 1:3 with linespoints title 'sigma2', 'Hera_XScale_rho.dat' using 1:4 with linespoints title 'Wopt2', 'Hera_XScale_rho.dat' using 1:5 with linespoints title 'energy2', 'Hera_XScale_rho.dat' using 1:6 with linespoints title 'sigma', 'Hera_XScale_rho.dat' using 1:7 with linespoints title 'Wopt1', 'Hera_XScale_rho.dat' using 1:8 with linespoints title 'energy1', 'Hera_XScale_rho.dat' using 1:9 with linespoints title 'saving'
