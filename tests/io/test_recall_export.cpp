// Golden-file test for the campaign CSV/gnuplot export of a partial-recall
// scenario (mode=recall): the exported artifacts must be BYTE-exact
// against checked-in fixtures (tests/io/golden/), pinning the recall
// backend's sweep output and its figure file stem end to end. Any
// intentional format or solver change must regenerate the fixtures (see
// the scenario spec in the same directory:
//   rexspeed campaign --scenario-dir=tests/io/golden
//                     --scenarios=golden_recall --out-dir=...).

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "rexspeed/engine/campaign_runner.hpp"
#include "rexspeed/engine/scenario_file.hpp"
#include "rexspeed/io/csv_writer.hpp"
#include "rexspeed/io/gnuplot_writer.hpp"

namespace rexspeed::io {
namespace {

namespace fs = std::filesystem;

/// The checked-in fixture directory, located relative to this source file
/// so the test is independent of the ctest working directory.
fs::path golden_dir() {
  return fs::path(__FILE__).parent_path() / "golden";
}

std::string read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in) << "cannot open " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

class RecallGolden : public ::testing::Test {
 protected:
  void SetUp() override {
    out_dir_ = fs::temp_directory_path() / "rexspeed_recall_golden";
    fs::remove_all(out_dir_);
    fs::create_directories(out_dir_);
  }
  void TearDown() override { fs::remove_all(out_dir_); }

  fs::path out_dir_;
};

TEST_F(RecallGolden, CampaignExportIsByteExact) {
  // The spec comes from the checked-in scenario file, so the fixture
  // directory fully describes how to regenerate itself.
  const engine::ScenarioSpec spec = engine::load_scenario_file(
      (golden_dir() / "golden_recall.scenario").string());
  ASSERT_TRUE(spec.recall_mode);
  ASSERT_EQ(spec.verification_recall, 0.8);
  ASSERT_EQ(spec.kind(), engine::ScenarioKind::kSweep);

  const engine::ScenarioResult result =
      engine::CampaignRunner(engine::CampaignRunnerOptions{.threads = 2})
          .run_one(spec);
  ASSERT_EQ(result.panels.size(), 1u);

  const auto& panel = result.panels[0];
  const auto csv_stem = export_csv_figure(panel, out_dir_.string());
  const auto gp_stem = export_gnuplot_figure(panel, out_dir_.string());
  ASSERT_TRUE(csv_stem.has_value());
  ASSERT_TRUE(gp_stem.has_value());
  EXPECT_EQ(*csv_stem, *gp_stem);  // artifacts share one stem
  for (const char* extension : {".csv", ".dat", ".gp"}) {
    const std::string filename = *csv_stem + extension;
    SCOPED_TRACE(filename);
    EXPECT_EQ(read_file(out_dir_ / filename),
              read_file(golden_dir() / filename));
  }
}

}  // namespace
}  // namespace rexspeed::io
