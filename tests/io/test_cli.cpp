#include "rexspeed/io/cli.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace rexspeed::io {
namespace {

ArgParser parse(std::initializer_list<const char*> args) {
  std::vector<const char*> argv = {"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return ArgParser(static_cast<int>(argv.size()), argv.data());
}

TEST(ArgParser, KeyValuePairs) {
  const ArgParser args = parse({"--config=Hera/XScale", "--rho=3.0"});
  EXPECT_EQ(args.get_or("config", "none"), "Hera/XScale");
  EXPECT_DOUBLE_EQ(args.get_double_or("rho", 1.0), 3.0);
}

TEST(ArgParser, FlagsWithoutValues) {
  const ArgParser args = parse({"--verbose"});
  EXPECT_TRUE(args.has_flag("verbose"));
  EXPECT_FALSE(args.has_flag("quiet"));
  EXPECT_EQ(args.get("verbose").value(), "");
}

TEST(ArgParser, Positionals) {
  const ArgParser args = parse({"input.csv", "--n=5", "output.csv"});
  ASSERT_EQ(args.positionals().size(), 2u);
  EXPECT_EQ(args.positionals()[0], "input.csv");
  EXPECT_EQ(args.positionals()[1], "output.csv");
}

TEST(ArgParser, DefaultsWhenAbsent) {
  const ArgParser args = parse({});
  EXPECT_EQ(args.get_or("name", "fallback"), "fallback");
  EXPECT_DOUBLE_EQ(args.get_double_or("x", 2.5), 2.5);
  EXPECT_EQ(args.get_long_or("n", 7), 7);
  EXPECT_FALSE(args.get("missing").has_value());
}

TEST(ArgParser, NumericParsing) {
  const ArgParser args = parse({"--lambda=3.38e-6", "--reps=1000"});
  EXPECT_DOUBLE_EQ(args.get_double_or("lambda", 0.0), 3.38e-6);
  EXPECT_EQ(args.get_long_or("reps", 0), 1000);
}

TEST(ArgParser, RejectsMalformedNumbers) {
  const ArgParser args = parse({"--x=abc"});
  EXPECT_THROW(args.get_double_or("x", 0.0), std::invalid_argument);
  EXPECT_THROW(args.get_long_or("x", 0), std::invalid_argument);
}

TEST(ArgParser, EmptyValueFallsBack) {
  const ArgParser args = parse({"--x="});
  EXPECT_DOUBLE_EQ(args.get_double_or("x", 9.0), 9.0);
}

}  // namespace
}  // namespace rexspeed::io
