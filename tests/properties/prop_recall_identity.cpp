// Property: at r = 1 the recall backend IS the first-order backend, bit
// for bit — for ANY model and bound. Scaling the silent rate by 1.0 is an
// exact floating-point identity, so mode=recall at full recall must
// reproduce mode=first-order on every entry point: solve, baseline,
// min-ρ, the §4.2 pair table, panel points and the batched ρ path. This is
// the acceptance anchor that makes the recall backend a strict extension
// rather than a fork.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "rexspeed/core/recall_solver.hpp"
#include "rexspeed/core/solver_backend.hpp"
#include "support/proptest.hpp"
#include "test_util.hpp"

namespace rexspeed::core {
namespace {

struct IdentityCase {
  ModelParams params;
  std::vector<double> rhos;
};

struct IdentityCaseGen {
  using Value = IdentityCase;
  proptest::ModelParamsGen params_gen;
  proptest::RhoGridGen grid_gen{2, 12};

  IdentityCase operator()(proptest::Rng& rng) const {
    return {params_gen(rng), grid_gen(rng)};
  }
  std::vector<IdentityCase> shrink(const IdentityCase& value) const {
    std::vector<IdentityCase> out;
    for (const auto& params : params_gen.shrink(value.params)) {
      out.push_back({params, value.rhos});
    }
    for (const auto& rhos : grid_gen.shrink(value.rhos)) {
      out.push_back({value.params, rhos});
    }
    return out;
  }
  std::string describe(const IdentityCase& value) const {
    return params_gen.describe(value.params) + " | rhos " +
           grid_gen.describe(value.rhos);
  }
};

TEST(PropRecallIdentity, FullRecallBackendEqualsFirstOrderBitForBit) {
  proptest::PropOptions options;
  options.iterations = 100;
  proptest::check(
      "RecallBackend(r=1) == ClosedFormBackend(first-order), bit for bit",
      IdentityCaseGen{},
      [](const IdentityCase& c) {
        const RecallBackend recall(c.params, 1.0);
        const ClosedFormBackend reference(c.params, EvalMode::kFirstOrder);
        // Scaled-by-1.0 params are the SAME params, exactly.
        EXPECT_EQ(recall.effective_params().lambda_silent,
                  c.params.lambda_silent);

        test::expect_identical_solution(
            recall.min_rho(SpeedPolicy::kTwoSpeed),
            reference.min_rho(SpeedPolicy::kTwoSpeed));
        for (const double rho : c.rhos) {
          SCOPED_TRACE("rho " + std::to_string(rho));
          test::expect_identical_solution(
              recall.solve(rho, SpeedPolicy::kTwoSpeed, true),
              reference.solve(rho, SpeedPolicy::kTwoSpeed, true));
          test::expect_identical_solution(recall.solve_baseline(rho, true),
                                          reference.solve_baseline(rho, true));
        }
        // The §4.2 pair table.
        const double rho = c.rhos.front();
        for (std::size_t i = 0; i < c.params.speeds.size(); ++i) {
          for (std::size_t j = i; j < c.params.speeds.size(); ++j) {
            test::expect_identical_pair(recall.solve_pair(rho, i, j),
                                        reference.solve_pair(rho, i, j));
          }
        }
        // The batched ρ path the sweep engine uses.
        std::vector<PanelPoint> via_recall(c.rhos.size());
        std::vector<PanelPoint> via_reference(c.rhos.size());
        recall.solve_rho_batch(c.rhos.data(), c.rhos.size(), true,
                               via_recall.data());
        reference.solve_rho_batch(c.rhos.data(), c.rhos.size(), true,
                                  via_reference.data());
        for (std::size_t i = 0; i < c.rhos.size(); ++i) {
          test::expect_identical_solution(via_recall[i].primary,
                                          via_reference[i].primary);
          test::expect_identical_solution(via_recall[i].baseline,
                                          via_reference[i].baseline);
        }
      },
      options);
}

TEST(PropRecallIdentity, RebindPreservesTheRecallSetting) {
  proptest::PropOptions options;
  options.iterations = 50;
  proptest::check(
      "rebind keeps r; params() reports the unscaled model",
      proptest::ModelParamsGen{},
      [](const ModelParams& params) {
        const double r = 0.8;
        const RecallBackend backend(params, r);
        // The panel rebind flow feeds params() back through rebind — the
        // backend must report the ORIGINAL rates so the recall scaling is
        // applied once, not squared.
        EXPECT_EQ(backend.params().lambda_silent, params.lambda_silent);
        EXPECT_EQ(backend.effective_params().lambda_silent,
                  r * params.lambda_silent);
        const auto rebound = backend.rebind(backend.params());
        const auto* typed = dynamic_cast<const RecallBackend*>(rebound.get());
        ASSERT_NE(typed, nullptr);
        EXPECT_EQ(typed->recall(), r);
        EXPECT_EQ(typed->effective_params().lambda_silent,
                  r * params.lambda_silent);
        test::expect_identical_solution(
            rebound->solve(3.0, SpeedPolicy::kTwoSpeed, true),
            backend.solve(3.0, SpeedPolicy::kTwoSpeed, true));
      },
      options);
}

}  // namespace
}  // namespace rexspeed::core
