// Property: widening the interleaved segment-count search can only help —
// for ANY silent-error model and bound, the best energy overhead under cap
// M is non-increasing in M, and the capped search equals the minimum over
// the pinned per-count solves (the search IS exhaustive enumeration, never
// a heuristic that skips a count).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "rexspeed/core/interleaved.hpp"
#include "support/proptest.hpp"
#include "test_util.hpp"

namespace rexspeed::core {
namespace {

struct SegmentsCase {
  ModelParams params;
  double rho = 3.0;
  unsigned cap = 4;
};

struct SegmentsCaseGen {
  using Value = SegmentsCase;
  proptest::ModelParamsGen params_gen{false};  // interleaved: λf = 0
  proptest::RhoGen rho_gen;
  proptest::SegmentCapGen cap_gen;

  SegmentsCase operator()(proptest::Rng& rng) const {
    return {params_gen(rng), rho_gen(rng), cap_gen(rng)};
  }
  std::vector<SegmentsCase> shrink(const SegmentsCase& value) const {
    std::vector<SegmentsCase> out;
    for (auto& params : params_gen.shrink(value.params)) {
      params.lambda_failstop = 0.0;
      out.push_back({params, value.rho, value.cap});
    }
    for (const double rho : rho_gen.shrink(value.rho)) {
      out.push_back({value.params, rho, value.cap});
    }
    for (const unsigned cap : cap_gen.shrink(value.cap)) {
      out.push_back({value.params, value.rho, cap});
    }
    return out;
  }
  std::string describe(const SegmentsCase& value) const {
    return params_gen.describe(value.params) + " rho=" +
           std::to_string(value.rho) + " cap=" + std::to_string(value.cap);
  }
};

TEST(PropSegmentsMonotonic, WideningTheCapNeverHurts) {
  proptest::PropOptions options;
  options.iterations = 30;
  proptest::check(
      "best overhead non-increasing in max_segments; search == min over "
      "pinned counts",
      SegmentsCaseGen{},
      [](const SegmentsCase& c) {
        const InterleavedSolver solver(c.params, c.cap);
        // Pinned per-count solves, the ground truth the search must match.
        std::vector<InterleavedSolution> pinned;
        for (unsigned m = 1; m <= c.cap; ++m) {
          pinned.push_back(solver.solve_segments(c.rho, m));
        }

        double best_so_far = 0.0;
        bool any_feasible = false;
        std::size_t best_index = 0;
        for (unsigned cap = 1; cap <= c.cap; ++cap) {
          SCOPED_TRACE("cap " + std::to_string(cap));
          // Track the running minimum of the pinned solves under this cap.
          const InterleavedSolution& at_cap = pinned[cap - 1];
          if (at_cap.feasible &&
              (!any_feasible ||
               at_cap.energy_overhead < best_so_far)) {
            any_feasible = true;
            best_so_far = at_cap.energy_overhead;
            best_index = cap - 1;
          }
          const InterleavedSolution searched =
              InterleavedSolver(c.params, cap).solve(c.rho);
          EXPECT_EQ(searched.feasible, any_feasible);
          if (any_feasible) {
            // The search returns the running minimum — monotone by
            // construction, and bit-identical to the best pinned solve.
            test::expect_identical_interleaved(searched,
                                               pinned[best_index]);
          }
        }
      },
      options);
}

}  // namespace
}  // namespace rexspeed::core
