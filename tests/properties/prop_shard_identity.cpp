// Property: a sharded campaign equals the serial in-process
// CampaignRunner BIT FOR BIT — for ANY small scenario batch, ANY worker
// count in 1..8, and ANY injected worker death (exit-at-start, SIGKILL
// mid-panel, result pipe truncated mid-frame). Crash recovery and
// scheduling freedom are pure transport concerns; they may never cost a
// bit of the answer.
//
// Cases are deliberately tiny (1–2 scenarios, 2–4 grid points): the CI
// property leg runs every property at REXSPEED_PROP_ITERS=1000, and each
// case here forks a fleet and runs two full campaigns.

#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <vector>

#include "rexspeed/engine/shard/shard_coordinator.hpp"
#include "support/proptest.hpp"
#include "support/result_identity.hpp"

namespace rexspeed::engine::shard {
namespace {

struct ShardCase {
  std::vector<ScenarioSpec> specs;
  unsigned workers = 1;
  std::vector<WorkerFault> faults;
};

struct ShardCaseGen {
  using Value = ShardCase;
  proptest::ScenarioSpecGen spec_gen;

  ShardCase operator()(proptest::Rng& rng) const {
    ShardCase value;
    const std::size_t count = 1 + rng.index(2);
    for (std::size_t i = 0; i < count; ++i) {
      ScenarioSpec spec = spec_gen(rng);
      spec.name = "prop_case_" + std::to_string(i);
      spec.points = 2 + rng.index(3);
      // batch=on requires a batching backend and the generator does not
      // correlate the two; kAuto batches exactly when legal (batched
      // bit-identity has its own property).
      if (spec.batch == sweep::BatchMode::kOn) {
        spec.batch = sweep::BatchMode::kAuto;
      }
      value.specs.push_back(std::move(spec));
    }
    value.workers = static_cast<unsigned>(1 + rng.index(8));
    if (rng.chance(0.5)) {
      WorkerFault fault;
      switch (rng.index(3)) {
        case 0:
          fault.kind = WorkerFault::Kind::kExitAtStart;
          break;
        case 1:
          fault.kind = WorkerFault::Kind::kKillMidPanel;
          break;
        default:
          fault.kind = WorkerFault::Kind::kTruncateResult;
          break;
      }
      fault.worker = static_cast<unsigned>(rng.index(value.workers));
      fault.nth = static_cast<unsigned>(1 + rng.index(2));
      value.faults.push_back(fault);
    }
    return value;
  }

  std::vector<ShardCase> shrink(const ShardCase& value) const {
    std::vector<ShardCase> out;
    if (value.specs.size() > 1) {
      for (std::size_t drop = 0; drop < value.specs.size(); ++drop) {
        ShardCase smaller = value;
        smaller.specs.erase(smaller.specs.begin() +
                            static_cast<std::ptrdiff_t>(drop));
        out.push_back(std::move(smaller));
      }
    }
    if (!value.faults.empty()) {
      ShardCase no_faults = value;
      no_faults.faults.clear();
      out.push_back(std::move(no_faults));
    }
    if (value.workers > 1) {
      ShardCase fewer = value;
      fewer.workers = 1;
      out.push_back(std::move(fewer));
    }
    for (std::size_t i = 0; i < value.specs.size(); ++i) {
      for (ScenarioSpec& shrunk : spec_gen.shrink(value.specs[i])) {
        ShardCase smaller = value;
        shrunk.name = value.specs[i].name;
        shrunk.points = value.specs[i].points;
        smaller.specs[i] = std::move(shrunk);
        out.push_back(std::move(smaller));
      }
    }
    return out;
  }

  std::string describe(const ShardCase& value) const {
    std::string text = std::to_string(value.specs.size()) +
                       " scenario(s), workers=" +
                       std::to_string(value.workers);
    if (!value.faults.empty()) {
      const WorkerFault& fault = value.faults.front();
      const char* kind = "none";
      switch (fault.kind) {
        case WorkerFault::Kind::kExitAtStart:
          kind = "exit-at-start";
          break;
        case WorkerFault::Kind::kKillMidPanel:
          kind = "sigkill-mid-panel";
          break;
        case WorkerFault::Kind::kTruncateResult:
          kind = "truncate-result";
          break;
        case WorkerFault::Kind::kNone:
          break;
      }
      text += std::string(", fault=") + kind + " on worker " +
              std::to_string(fault.worker) + " nth=" +
              std::to_string(fault.nth);
    }
    for (const ScenarioSpec& spec : value.specs) {
      text += "\n  " + spec_gen.describe(spec);
    }
    return text;
  }
};

TEST(PropShardIdentity, ShardedCampaignEqualsSerialBitForBit) {
  proptest::PropOptions options;
  options.iterations = 40;  // each case forks a fleet + two campaigns
  proptest::check(
      "shard(specs, workers, faults) == serial CampaignRunner, bit for bit",
      ShardCaseGen{},
      [](const ShardCase& value) {
        // Serial reference first, scoped: its pool thread must be gone
        // before the coordinator forks.
        const std::vector<ScenarioResult> expected =
            test::serial_reference(value.specs);
        ShardOptions options;
        options.workers = value.workers;
        options.faults = value.faults;
        ShardCoordinator coordinator(options);
        const std::vector<ScenarioResult> actual =
            coordinator.run(value.specs);
        test::expect_identical_results(actual, expected);
        const ShardReport& report = coordinator.report();
        EXPECT_EQ(report.completed_by_workers + report.completed_in_process +
                      report.cache_hits,
                  report.tasks + report.cache_hits);
        if (value.faults.empty()) {
          EXPECT_EQ(report.worker_deaths, 0u);
          EXPECT_TRUE(report.incidents.empty());
        }
      },
      options);
}

}  // namespace
}  // namespace rexspeed::engine::shard
