// Property: solve_rho_batch is bit-identical to the pointwise loop for
// EVERY registered backend and ANY model/ρ-grid — the contract that lets
// sweep::PanelSweep route a shared-backend ρ panel whole-grid through the
// SIMD kernels without changing a single output bit.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "rexspeed/engine/backend_registry.hpp"
#include "rexspeed/engine/scenario.hpp"
#include "support/proptest.hpp"
#include "test_util.hpp"

namespace rexspeed::engine {
namespace {

/// One generated case: a backend-selecting scenario plus a ρ-grid.
struct BatchCase {
  ScenarioSpec spec;
  std::vector<double> rhos;
};

struct BatchCaseGen {
  using Value = BatchCase;
  proptest::ScenarioSpecGen spec_gen;
  proptest::RhoGridGen grid_gen;

  BatchCase operator()(proptest::Rng& rng) const {
    return {spec_gen(rng), grid_gen(rng)};
  }
  std::vector<BatchCase> shrink(const BatchCase& value) const {
    std::vector<BatchCase> out;
    for (const auto& spec : spec_gen.shrink(value.spec)) {
      out.push_back({spec, value.rhos});
    }
    for (const auto& rhos : grid_gen.shrink(value.rhos)) {
      out.push_back({value.spec, rhos});
    }
    return out;
  }
  std::string describe(const BatchCase& value) const {
    return spec_gen.describe(value.spec) + " | rhos " +
           grid_gen.describe(value.rhos);
  }
};

TEST(PropBatchBitIdentity, BatchEqualsPointwiseForEveryBackend) {
  proptest::PropOptions options;
  options.iterations = 50;
  proptest::check(
      "solve_rho_batch == pointwise solve_panel_point, bit for bit",
      BatchCaseGen{},
      [](const BatchCase& c) {
        auto backend = make_backend(c.spec);
        backend->prepare();
        const std::size_t n = c.rhos.size();
        std::vector<core::PanelPoint> batched(n);
        backend->solve_rho_batch(c.rhos.data(), n, c.spec.min_rho_fallback,
                                 batched.data());
        for (std::size_t i = 0; i < n; ++i) {
          SCOPED_TRACE("rho[" + std::to_string(i) + "]");
          const core::PanelPoint pointwise = backend->solve_panel_point(
              core::SweepAxis::kPerformanceBound, c.rhos[i], c.rhos[i],
              c.spec.min_rho_fallback);
          EXPECT_EQ(batched[i].x, pointwise.x);
          test::expect_identical_solution(batched[i].primary,
                                          pointwise.primary);
          test::expect_identical_solution(batched[i].baseline,
                                          pointwise.baseline);
        }
      },
      options);
}

}  // namespace
}  // namespace rexspeed::engine
