// Properties of the result-store serialization and the local tier:
//
//   1. serialize/deserialize is a fixed point for ANY Solution and ANY
//      PanelSeries — including non-finite doubles, whose bit patterns
//      must survive untouched (the cached ≡ recomputed contract is byte
//      equality, so "round-trips up to tolerance" is not good enough);
//   2. a single flipped bit ANYWHERE in a blob is detected — the
//      deserializer throws, it never silently returns altered values;
//   3. put → fetch through a LocalResultStore is the identity on blobs.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <filesystem>
#include <limits>
#include <string>
#include <vector>

#include "rexspeed/store/hash.hpp"
#include "rexspeed/store/result_store.hpp"
#include "rexspeed/store/serialize.hpp"
#include "support/proptest.hpp"

namespace rexspeed::store {
namespace {

namespace fs = std::filesystem;

/// Doubles spanning the store's whole input domain: ordinary magnitudes,
/// subnormals, signed zeros, infinities and NaN — everything a solver
/// field can legally hold.
double arbitrary_double(proptest::Rng& rng) {
  switch (rng.index(8)) {
    case 0:
      return 0.0;
    case 1:
      return -0.0;
    case 2:
      return std::numeric_limits<double>::infinity();
    case 3:
      return -std::numeric_limits<double>::infinity();
    case 4:
      return std::numeric_limits<double>::quiet_NaN();
    case 5:
      return std::numeric_limits<double>::denorm_min();
    case 6:
      return rng.uniform(-1.0, 1.0) * 1e300;
    default:
      return rng.uniform(-1e4, 1e4);
  }
}

core::PairSolution arbitrary_pair(proptest::Rng& rng) {
  core::PairSolution pair;
  pair.sigma1 = arbitrary_double(rng);
  pair.sigma2 = arbitrary_double(rng);
  pair.sigma1_index = static_cast<int>(rng.index(8)) - 1;
  pair.sigma2_index = static_cast<int>(rng.index(8)) - 1;
  pair.feasible = rng.chance(0.5);
  pair.first_order_valid = rng.chance(0.5);
  pair.rho_min = arbitrary_double(rng);
  pair.w_opt = arbitrary_double(rng);
  pair.w_energy = arbitrary_double(rng);
  pair.w_min = arbitrary_double(rng);
  pair.w_max = arbitrary_double(rng);
  pair.energy_overhead = arbitrary_double(rng);
  pair.time_overhead = arbitrary_double(rng);
  return pair;
}

core::Solution arbitrary_solution(proptest::Rng& rng) {
  core::Solution solution;
  if (rng.chance(0.5)) {
    solution.kind = core::SolutionKind::kPair;
  } else {
    solution.kind = core::SolutionKind::kInterleaved;
  }
  solution.pair = arbitrary_pair(rng);
  solution.interleaved.feasible = rng.chance(0.5);
  solution.interleaved.segments = static_cast<unsigned>(rng.index(16)) + 1;
  solution.interleaved.sigma1 = arbitrary_double(rng);
  solution.interleaved.sigma2 = arbitrary_double(rng);
  solution.interleaved.w_opt = arbitrary_double(rng);
  solution.interleaved.energy_overhead = arbitrary_double(rng);
  solution.interleaved.time_overhead = arbitrary_double(rng);
  solution.used_fallback = rng.chance(0.5);
  return solution;
}

struct BlobGen {
  using Value = std::string;

  Value operator()(proptest::Rng& rng) const {
    if (rng.chance(0.4)) return serialize_solution(arbitrary_solution(rng));
    sweep::PanelSeries series;
    series.parameter = static_cast<sweep::SweepParameter>(rng.index(7));
    series.configuration =
        rng.chance(0.5) ? "Hera/XScale" : std::string(rng.index(12), 'x');
    series.rho = arbitrary_double(rng);
    series.kind = rng.chance(0.5) ? core::SolutionKind::kPair
                                  : core::SolutionKind::kInterleaved;
    series.max_segments = static_cast<unsigned>(rng.index(16)) + 1;
    series.points.resize(rng.index(5));
    for (auto& point : series.points) {
      point.x = arbitrary_double(rng);
      point.primary = arbitrary_solution(rng);
      point.baseline = arbitrary_solution(rng);
    }
    return serialize_panel_series(series);
  }

  std::vector<Value> shrink(const Value&) const { return {}; }

  std::string describe(const Value& blob) const {
    return "blob of " + std::to_string(blob.size()) + " bytes, kind " +
           (payload_kind(blob) == PayloadKind::kSolution ? "solution"
                                                         : "panel");
  }
};

/// Deserialize-then-reserialize under either payload codec; throws when
/// the blob does not verify.
std::string reserialize(const std::string& blob) {
  if (payload_kind(blob) == PayloadKind::kSolution) {
    return serialize_solution(deserialize_solution(blob));
  }
  return serialize_panel_series(deserialize_panel_series(blob));
}

TEST(PropStoreRoundtrip, SerializeDeserializeIsAFixedPoint) {
  proptest::PropOptions options;
  options.iterations = 300;  // cheap: pure (de)serialization
  proptest::check(
      "reserialize(blob) == blob", BlobGen{},
      [](const std::string& blob) { EXPECT_EQ(reserialize(blob), blob); },
      options);
}

TEST(PropStoreRoundtrip, AnySingleFlippedBitIsDetected) {
  proptest::PropOptions options;
  options.iterations = 300;
  proptest::check(
      "one flipped bit anywhere -> SerializeError", BlobGen{},
      [](const std::string& blob) {
        // Derive the corruption site from the blob itself so the case
        // stays a pure function of the generator's seed.
        const std::uint64_t h = fnv1a64(blob);
        std::string corrupt = blob;
        const std::size_t byte = h % corrupt.size();
        corrupt[byte] ^= static_cast<char>(1u << ((h >> 32) % 8));
        EXPECT_THROW((void)reserialize(corrupt), SerializeError)
            << "flipped bit " << ((h >> 32) % 8) << " of byte " << byte
            << " went undetected";
      },
      options);
}

TEST(PropStoreRoundtrip, LocalStorePutFetchIsIdentity) {
  const fs::path dir =
      fs::temp_directory_path() / "rexspeed_prop_store_roundtrip";
  fs::remove_all(dir);
  {
    LocalResultStore store(dir);
    proptest::PropOptions options;
    options.iterations = 60;  // touches disk per case
    proptest::check(
        "fetch(put(blob)) == blob", BlobGen{},
        [&store](const std::string& blob) {
          const std::string key = to_hex(Sha256::of(blob));
          store.put(key, blob, EntryInfo{});
          const auto fetched = store.fetch(key);
          ASSERT_TRUE(fetched.has_value());
          EXPECT_EQ(*fetched, blob);
        },
        options);
    EXPECT_TRUE(store.verify().empty());
  }
  fs::remove_all(dir);
}

}  // namespace
}  // namespace rexspeed::store
