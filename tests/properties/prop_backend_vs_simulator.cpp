// Property: every registered solver backend tells the truth — for ANY
// scenario the registry can build, executing the backend's chosen policy
// in the Monte-Carlo simulator reproduces the model expectations for that
// policy within the shared Welford-stderr tolerance. Pair policies are
// checked against the exact pattern expectations, segmented policies
// against the interleaved closed forms, and recall-mode policies against
// the recall-exact forms (the first-order backends OPTIMIZE with
// approximate coefficients, but the policy they return must still behave
// as the exact model predicts — that is what makes their output usable).

#include <gtest/gtest.h>

#include <memory>

#include "rexspeed/engine/backend_registry.hpp"
#include "rexspeed/engine/scenario.hpp"
#include "support/crossval.hpp"
#include "support/proptest.hpp"

namespace rexspeed::engine {
namespace {

TEST(PropBackendVsSimulator, ChosenPolicyMatchesTheExactModel) {
  proptest::PropOptions options;
  options.iterations = 25;  // each case pays a small Monte-Carlo run
  test::CrossValOptions mc;
  mc.replications = 60;
  mc.patterns_per_replication = 25.0;
  // Wider interval than the pinned cross-validation suites: this property
  // evaluates thousands of (case × metric) combinations under
  // REXSPEED_PROP_ITERS=1000, so the family-wise false-alarm budget is
  // spent much faster.
  mc.sigmas = 6.0;
  // Random models roam into arbitrarily-rare-event regimes where a retry
  // branch with probability ≲ sigmas/total_patterns can stay entirely
  // unobserved (stderr 0) while biasing the model by up to a few such
  // event probabilities relative — widen the slack accordingly. The
  // pinned cross-validation suites keep the tight default; real formula
  // errors are far above 2% whenever their branch is actually sampled.
  mc.rel_slack = 0.02;
  proptest::check(
      "simulating the backend's policy reproduces the exact expectations",
      proptest::ScenarioSpecGen{},
      [mc](const ScenarioSpec& spec) {
        const core::ModelParams params = spec.resolve_params();
        auto backend = make_backend(spec, params);
        backend->prepare();
        const core::Solution sol =
            backend->solve(spec.rho, spec.policy, spec.min_rho_fallback);
        if (!sol.feasible()) return;  // nothing to execute

        if (sol.kind == core::SolutionKind::kInterleaved) {
          test::expect_simulator_matches_interleaved_model(
              params, sol.w_opt(), sol.segments(), sol.sigma1(),
              sol.sigma2(), mc);
          return;
        }
        if (spec.recall_mode && spec.verification_recall < 1.0) {
          test::expect_simulator_matches_recall_model(
              params, spec.verification_recall, sol.w_opt(), sol.sigma1(),
              sol.sigma2(), mc);
          return;
        }
        test::expect_simulator_matches_pair_model(params, sol.w_opt(),
                                                  sol.sigma1(), sol.sigma2(),
                                                  mc);
      },
      options);
}

}  // namespace
}  // namespace rexspeed::engine
