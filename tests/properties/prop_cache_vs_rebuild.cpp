// Property: every expansion/optimization cache answers exactly what a
// from-scratch rebuild would — for ANY valid model. Three caches are under
// test: the SoA expansion table (vs the per-pair closed forms it is
// materialized from), the prepared exact-optimization backend (vs a fresh
// instance prepared per bound), and the prepared interleaved backend (vs a
// fresh InterleavedSolver). Caching is a pure speed trade: never a bit of
// the answer.

#include <gtest/gtest.h>

#include <string>

#include "rexspeed/core/expansion_soa.hpp"
#include "rexspeed/core/first_order.hpp"
#include "rexspeed/core/interleaved.hpp"
#include "rexspeed/core/solver_backend.hpp"
#include "support/proptest.hpp"
#include "test_util.hpp"

namespace rexspeed::core {
namespace {

struct ParamsAndRho {
  ModelParams params;
  double rho = 3.0;
};

struct ParamsAndRhoGen {
  using Value = ParamsAndRho;
  proptest::ModelParamsGen params_gen;
  proptest::RhoGen rho_gen;

  ParamsAndRho operator()(proptest::Rng& rng) const {
    return {params_gen(rng), rho_gen(rng)};
  }
  std::vector<ParamsAndRho> shrink(const ParamsAndRho& value) const {
    std::vector<ParamsAndRho> out;
    for (const auto& params : params_gen.shrink(value.params)) {
      out.push_back({params, value.rho});
    }
    for (const double rho : rho_gen.shrink(value.rho)) {
      out.push_back({value.params, rho});
    }
    return out;
  }
  std::string describe(const ParamsAndRho& value) const {
    return params_gen.describe(value.params) + " rho=" +
           std::to_string(value.rho);
  }
};

TEST(PropCacheVsRebuild, ExpansionSoAMatchesPerPairClosedForms) {
  proptest::PropOptions options;
  options.iterations = 100;
  proptest::check(
      "ExpansionSoA::build slots == per-pair expansions, bit for bit",
      proptest::ModelParamsGen{},
      [](const ModelParams& params) {
        const ExpansionSoA table = ExpansionSoA::build(params);
        const std::size_t k = params.speeds.size();
        ASSERT_EQ(table.k, k);
        for (std::size_t i = 0; i < k; ++i) {
          for (std::size_t j = 0; j < k; ++j) {
            SCOPED_TRACE("pair (" + std::to_string(i) + ", " +
                         std::to_string(j) + ")");
            const std::size_t s = table.slot(i, j);
            const double s1 = params.speeds[i];
            const double s2 = params.speeds[j];
            const OverheadExpansion t = time_expansion(params, s1, s2);
            const OverheadExpansion e = energy_expansion(params, s1, s2);
            EXPECT_EQ(table.tx[s], t.x);
            EXPECT_EQ(table.ty[s], t.y);
            EXPECT_EQ(table.tz[s], t.z);
            EXPECT_EQ(table.ex[s], e.x);
            EXPECT_EQ(table.ey[s], e.y);
            EXPECT_EQ(table.ez[s], e.z);
            EXPECT_EQ(table.sigma1[s], s1);
            EXPECT_EQ(table.sigma2[s], s2);
            EXPECT_EQ(table.valid[s] != 0,
                      first_order_valid(params, s1, s2));
          }
        }
        // Padding slots are inert.
        for (std::size_t s = table.count; s < table.padded; ++s) {
          EXPECT_EQ(table.valid[s], 0);
        }
      },
      options);
}

TEST(PropCacheVsRebuild, PreparedExactOptBackendMatchesFreshInstance) {
  proptest::PropOptions options;
  options.iterations = 20;  // two exact-curve preparations per case
  proptest::check(
      "one prepared ExactOptBackend == fresh prepare at each bound",
      ParamsAndRhoGen{},
      [](const ParamsAndRho& c) {
        ExactOptBackend shared(c.params);
        shared.prepare();
        // The shared cache serves several bounds; a fresh backend pays its
        // own prepare per bound. Same bits either way.
        for (const double scale : {1.0, 1.7, 3.1}) {
          SCOPED_TRACE("rho scale " + std::to_string(scale));
          ExactOptBackend fresh(c.params);
          fresh.prepare();
          test::expect_identical_solution(
              shared.solve(c.rho * scale, SpeedPolicy::kTwoSpeed, true),
              fresh.solve(c.rho * scale, SpeedPolicy::kTwoSpeed, true));
        }
      },
      options);
}

/// ParamsAndRhoGen constrained to the interleaved model's λf = 0.
struct SilentParamsAndRhoGen {
  using Value = ParamsAndRho;
  ParamsAndRhoGen inner{proptest::ModelParamsGen{false},
                        proptest::RhoGen{}};
  ParamsAndRho operator()(proptest::Rng& rng) const { return inner(rng); }
  std::vector<ParamsAndRho> shrink(const ParamsAndRho& value) const {
    std::vector<ParamsAndRho> out;
    for (auto& candidate : inner.shrink(value)) {
      candidate.params.lambda_failstop = 0.0;
      out.push_back(candidate);
    }
    return out;
  }
  std::string describe(const ParamsAndRho& value) const {
    return inner.describe(value);
  }
};

TEST(PropCacheVsRebuild, PreparedInterleavedBackendMatchesFreshSolver) {
  proptest::PropOptions options;
  options.iterations = 25;
  proptest::check(
      "prepared InterleavedBackend == fresh InterleavedSolver",
      SilentParamsAndRhoGen{},
      [](const ParamsAndRho& c) {
        constexpr unsigned kCap = 4;
        InterleavedBackend backend(c.params, kCap);
        backend.prepare();
        const InterleavedSolver fresh(c.params, kCap);
        test::expect_identical_interleaved(
            backend.solve(c.rho, SpeedPolicy::kTwoSpeed, false).interleaved,
            fresh.solve(c.rho));
        for (unsigned m = 1; m <= kCap; ++m) {
          SCOPED_TRACE("segments " + std::to_string(m));
          test::expect_identical_interleaved(
              backend.solve_segments(c.rho, m).interleaved,
              fresh.solve_segments(c.rho, m));
        }
      },
      options);
}

}  // namespace
}  // namespace rexspeed::core
