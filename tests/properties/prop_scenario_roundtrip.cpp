// Property: write_scenario is a faithful inverse of parse_scenario — for
// ANY valid ScenarioSpec, serializing it to the key=value format and
// parsing the result reproduces the spec field for field (including the
// mode=recall / verification_recall combination and the resolved model
// parameters). This is the invariant that makes scenario files a safe
// interchange format: nothing a spec can express is lost on disk.

#include <gtest/gtest.h>

#include "rexspeed/engine/scenario.hpp"
#include "rexspeed/engine/scenario_file.hpp"
#include "support/proptest.hpp"

namespace rexspeed::engine {
namespace {

void expect_specs_equivalent(const ScenarioSpec& a, const ScenarioSpec& b) {
  EXPECT_EQ(a.configuration, b.configuration);
  EXPECT_EQ(a.rho, b.rho);
  EXPECT_EQ(a.points, b.points);
  EXPECT_EQ(a.policy, b.policy);
  EXPECT_EQ(a.mode, b.mode);
  EXPECT_EQ(a.min_rho_fallback, b.min_rho_fallback);
  EXPECT_EQ(a.batch, b.batch);
  EXPECT_EQ(a.sweep_parameter, b.sweep_parameter);
  EXPECT_EQ(a.all_panels, b.all_panels);
  EXPECT_EQ(a.segments, b.segments);
  EXPECT_EQ(a.max_segments, b.max_segments);
  EXPECT_EQ(a.recall_mode, b.recall_mode);
  EXPECT_EQ(a.verification_recall, b.verification_recall);
  EXPECT_EQ(a.cache, b.cache);
  // Overrides may be re-ordered or merged by a serializer in principle;
  // what must survive is the resolved model.
  const core::ModelParams pa = a.resolve_params();
  const core::ModelParams pb = b.resolve_params();
  EXPECT_EQ(pa.lambda_silent, pb.lambda_silent);
  EXPECT_EQ(pa.lambda_failstop, pb.lambda_failstop);
  EXPECT_EQ(pa.checkpoint_s, pb.checkpoint_s);
  EXPECT_EQ(pa.recovery_s, pb.recovery_s);
  EXPECT_EQ(pa.verification_s, pb.verification_s);
  EXPECT_EQ(pa.kappa_mw, pb.kappa_mw);
  EXPECT_EQ(pa.idle_power_mw, pb.idle_power_mw);
  EXPECT_EQ(pa.io_power_mw, pb.io_power_mw);
}

TEST(PropScenarioRoundtrip, WriteThenParseIsIdentity) {
  proptest::PropOptions options;
  options.iterations = 200;  // cheap: no solves, just (de)serialization
  proptest::check(
      "parse_scenario(write_scenario(spec)) == spec",
      proptest::ScenarioSpecGen{},
      [](const ScenarioSpec& spec) {
        const std::string text = write_scenario(spec);
        const ScenarioSpec reparsed = parse_scenario(text);
        expect_specs_equivalent(spec, reparsed);
        // The round trip is also a fixed point: writing the reparsed spec
        // reproduces the byte stream (the golden-file stability contract).
        EXPECT_EQ(write_scenario(reparsed), text);
      },
      options);
}

}  // namespace
}  // namespace rexspeed::engine
