// Property: the partial-recall closed forms are the truth of the
// partial-recall simulator — for ANY model, ANY recall r and the recall
// solver's own chosen policy, the simulated time/energy overheads and the
// committed-corruption rate match core::expected_time_recall /
// expected_energy_recall / recall_corruption_probability within the shared
// Welford-stderr tolerance. This is the property-test side of the pinned
// r ∈ {0.5, 0.8, 0.95} regression in tests/sim/test_verification_recall.cpp.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "rexspeed/core/recall_solver.hpp"
#include "support/crossval.hpp"
#include "support/proptest.hpp"

namespace rexspeed::core {
namespace {

struct RecallCase {
  ModelParams params;
  double rho = 3.0;
  double recall = 0.8;
};

struct RecallCaseGen {
  using Value = RecallCase;
  proptest::ModelParamsGen params_gen;
  proptest::RhoGen rho_gen;

  RecallCase operator()(proptest::Rng& rng) const {
    RecallCase c{params_gen(rng), rho_gen(rng), 0.0};
    // Bias toward the acceptance grid, cover the full range too (r = 0 is
    // the every-miss extreme, r = 1 the paper's guaranteed verification).
    if (rng.chance(0.5)) {
      const double grid[] = {0.0, 0.5, 0.8, 0.95, 1.0};
      c.recall = grid[rng.index(5)];
    } else {
      c.recall = rng.uniform();
    }
    return c;
  }
  std::vector<RecallCase> shrink(const RecallCase& value) const {
    std::vector<RecallCase> out;
    for (const auto& params : params_gen.shrink(value.params)) {
      out.push_back({params, value.rho, value.recall});
    }
    for (const double rho : rho_gen.shrink(value.rho)) {
      out.push_back({value.params, rho, value.recall});
    }
    if (value.recall != 1.0) {
      out.push_back({value.params, value.rho, 1.0});
    }
    return out;
  }
  std::string describe(const RecallCase& value) const {
    return params_gen.describe(value.params) + " rho=" +
           std::to_string(value.rho) + " recall=" +
           std::to_string(value.recall);
  }
};

TEST(PropRecallVsSimulator, ClosedFormsMatchTheSimulatorAtAnyRecall) {
  proptest::PropOptions options;
  options.iterations = 25;  // each case pays a small Monte-Carlo run
  test::CrossValOptions mc;
  mc.replications = 60;
  mc.patterns_per_replication = 25.0;
  mc.sigmas = 6.0;      // see prop_backend_vs_simulator on both widenings
  mc.rel_slack = 0.02;  // random models reach unobservably-rare branches
  proptest::check(
      "recall expectations and corruption probability match the simulator",
      RecallCaseGen{},
      [mc](const RecallCase& c) {
        const RecallSolver solver(c.params, c.recall);
        const BiCritSolution sol = solver.solve(c.rho);
        if (!sol.best.feasible) return;
        test::expect_simulator_matches_recall_model(
            c.params, c.recall, sol.best.w_opt, sol.best.sigma1,
            sol.best.sigma2, mc);
      },
      options);
}

TEST(PropRecallVsSimulator, CorruptionProbabilityIsAProbability) {
  proptest::PropOptions options;
  options.iterations = 200;  // pure closed-form checks, no simulation
  proptest::check(
      "0 <= P_corrupt <= 1, zero at r=1, and recall-exact >= error-free "
      "overheads",
      RecallCaseGen{},
      [](const RecallCase& c) {
        const double w = 500.0;
        const double s1 = c.params.speeds.front();
        const double s2 = c.params.speeds.back();
        const double p =
            recall_corruption_probability(c.params, c.recall, w, s1, s2);
        EXPECT_GE(p, 0.0);
        EXPECT_LE(p, 1.0);
        EXPECT_EQ(recall_corruption_probability(c.params, 1.0, w, s1, s2),
                  0.0);
        // A pattern can never finish faster than one full error-free
        // attempt at the FASTER speed plus the checkpoint. (The σ1 span is
        // NOT a floor: a fail-stop can preempt the slow first attempt and
        // the re-execution runs at σ2.)
        const double floor_t =
            (w + c.params.verification_s) / std::max(s1, s2) +
            c.params.checkpoint_s;
        EXPECT_GE(expected_time_recall(c.params, c.recall, w, s1, s2),
                  floor_t * (1.0 - 1e-12));
      },
      options);
}

}  // namespace
}  // namespace rexspeed::core
