// Property: the feasibility window behaves like a window — for ANY model,
// a feasible bound stays feasible when loosened, the reported pattern-size
// window brackets the optimum, the min-ρ fallback engages exactly when the
// bound is unachievable, and the backends that share Theorem 1's window
// (first-order, exact-eval, recall at r = 1) agree on feasibility at every
// bound.

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "rexspeed/core/recall_solver.hpp"
#include "rexspeed/core/solver_backend.hpp"
#include "support/proptest.hpp"

namespace rexspeed::core {
namespace {

struct WindowCase {
  ModelParams params;
  double rho = 3.0;
};

struct WindowCaseGen {
  using Value = WindowCase;
  proptest::ModelParamsGen params_gen;
  proptest::RhoGen rho_gen;

  WindowCase operator()(proptest::Rng& rng) const {
    return {params_gen(rng), rho_gen(rng)};
  }
  std::vector<WindowCase> shrink(const WindowCase& value) const {
    std::vector<WindowCase> out;
    for (const auto& params : params_gen.shrink(value.params)) {
      out.push_back({params, value.rho});
    }
    for (const double rho : rho_gen.shrink(value.rho)) {
      out.push_back({value.params, rho});
    }
    return out;
  }
  std::string describe(const WindowCase& value) const {
    return params_gen.describe(value.params) + " rho=" +
           std::to_string(value.rho);
  }
};

TEST(PropFeasibilityWindow, LooseningTheBoundNeverLosesFeasibility) {
  proptest::PropOptions options;
  options.iterations = 100;
  proptest::check(
      "feasible at rho => feasible at every looser bound; w_min <= w_opt "
      "<= w_max",
      WindowCaseGen{},
      [](const WindowCase& c) {
        const ClosedFormBackend backend(c.params, EvalMode::kFirstOrder);
        bool was_feasible = false;
        for (const double scale : {1.0, 1.3, 2.0, 4.0}) {
          SCOPED_TRACE("rho scale " + std::to_string(scale));
          const Solution sol =
              backend.solve(c.rho * scale, SpeedPolicy::kTwoSpeed, false);
          if (was_feasible) EXPECT_TRUE(sol.feasible());
          was_feasible = was_feasible || sol.feasible();
          if (sol.feasible()) {
            EXPECT_LE(sol.pair.w_min, sol.pair.w_opt);
            EXPECT_LE(sol.pair.w_opt, sol.pair.w_max);
            EXPECT_GT(sol.pair.w_opt, 0.0);
          }
        }
      },
      options);
}

TEST(PropFeasibilityWindow, FallbackEngagesExactlyWhenTheBoundFails) {
  proptest::PropOptions options;
  options.iterations = 100;
  proptest::check(
      "used_fallback <=> (bound infeasible && min_rho feasible)",
      WindowCaseGen{},
      [](const WindowCase& c) {
        const ClosedFormBackend backend(c.params, EvalMode::kFirstOrder);
        const Solution strict =
            backend.solve(c.rho, SpeedPolicy::kTwoSpeed, false);
        const Solution relaxed =
            backend.solve(c.rho, SpeedPolicy::kTwoSpeed, true);
        const Solution min_rho = backend.min_rho(SpeedPolicy::kTwoSpeed);
        if (strict.feasible()) {
          // A feasible bound never takes the fallback.
          EXPECT_FALSE(relaxed.used_fallback);
          EXPECT_EQ(relaxed.pair.w_opt, strict.pair.w_opt);
        } else {
          EXPECT_EQ(relaxed.used_fallback, min_rho.feasible());
          if (min_rho.feasible()) {
            EXPECT_EQ(relaxed.pair.w_opt, min_rho.pair.w_opt);
            EXPECT_EQ(relaxed.pair.sigma1, min_rho.pair.sigma1);
            EXPECT_EQ(relaxed.pair.sigma2, min_rho.pair.sigma2);
          }
        }
      },
      options);
}

TEST(PropFeasibilityWindow, TheoremOneBackendsAgreeOnFeasibility) {
  proptest::PropOptions options;
  options.iterations = 100;
  proptest::check(
      "first-order, exact-eval and recall@r=1 share one feasibility window",
      WindowCaseGen{},
      [](const WindowCase& c) {
        const ClosedFormBackend first_order(c.params, EvalMode::kFirstOrder);
        const ClosedFormBackend exact_eval(c.params,
                                           EvalMode::kExactEvaluation);
        const RecallBackend recall(c.params, 1.0);
        for (const double scale : {1.0, 2.5}) {
          SCOPED_TRACE("rho scale " + std::to_string(scale));
          const double rho = c.rho * scale;
          const bool fo =
              first_order.solve(rho, SpeedPolicy::kTwoSpeed, false)
                  .feasible();
          EXPECT_EQ(
              exact_eval.solve(rho, SpeedPolicy::kTwoSpeed, false)
                  .feasible(),
              fo);
          EXPECT_EQ(
              recall.solve(rho, SpeedPolicy::kTwoSpeed, false).feasible(),
              fo);
        }
      },
      options);
}

}  // namespace
}  // namespace rexspeed::core
