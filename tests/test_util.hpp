#pragma once

#include <gtest/gtest.h>

#include "rexspeed/core/bicrit_solver.hpp"
#include "rexspeed/core/interleaved.hpp"
#include "rexspeed/core/model_params.hpp"
#include "rexspeed/core/solver_backend.hpp"
#include "rexspeed/platform/configuration.hpp"
#include "rexspeed/sweep/figure_sweeps.hpp"
#include "rexspeed/sweep/interleaved_sweeps.hpp"
#include "rexspeed/sweep/panel_sweep.hpp"

namespace rexspeed::test {

/// Model parameters of a named paper configuration (e.g. "Hera/XScale").
inline core::ModelParams params_for(const std::string& name) {
  return core::ModelParams::from_configuration(
      platform::configuration_by_name(name));
}

/// Small synthetic parameter set with round numbers, handy for hand
/// calculations in unit tests.
inline core::ModelParams toy_params() {
  core::ModelParams params;
  params.lambda_silent = 1e-4;
  params.lambda_failstop = 0.0;
  params.checkpoint_s = 10.0;
  params.recovery_s = 10.0;
  params.verification_s = 2.0;
  params.kappa_mw = 1000.0;
  params.idle_power_mw = 100.0;
  params.io_power_mw = 50.0;
  params.speeds = {0.25, 0.5, 1.0};
  return params;
}

/// Field-by-field bit-identity check for a pair solution — THE comparison
/// behind every "parallel equals serial" guarantee. One definition so a
/// field added to PairSolution is added to the check exactly once.
inline void expect_identical_pair(const core::PairSolution& a,
                                  const core::PairSolution& b) {
  EXPECT_EQ(a.feasible, b.feasible);
  EXPECT_EQ(a.sigma1, b.sigma1);
  EXPECT_EQ(a.sigma2, b.sigma2);
  EXPECT_EQ(a.sigma1_index, b.sigma1_index);
  EXPECT_EQ(a.sigma2_index, b.sigma2_index);
  EXPECT_EQ(a.w_opt, b.w_opt);
  EXPECT_EQ(a.w_min, b.w_min);
  EXPECT_EQ(a.w_max, b.w_max);
  EXPECT_EQ(a.energy_overhead, b.energy_overhead);
  EXPECT_EQ(a.time_overhead, b.time_overhead);
}

/// Bit-identity check for a whole figure panel.
inline void expect_identical_series(const sweep::FigureSeries& a,
                                    const sweep::FigureSeries& b) {
  EXPECT_EQ(a.parameter, b.parameter);
  EXPECT_EQ(a.configuration, b.configuration);
  EXPECT_EQ(a.rho, b.rho);
  ASSERT_EQ(a.points.size(), b.points.size());
  for (std::size_t i = 0; i < a.points.size(); ++i) {
    EXPECT_EQ(a.points[i].x, b.points[i].x);
    EXPECT_EQ(a.points[i].two_speed_fallback, b.points[i].two_speed_fallback);
    EXPECT_EQ(a.points[i].single_speed_fallback,
              b.points[i].single_speed_fallback);
    expect_identical_pair(a.points[i].two_speed, b.points[i].two_speed);
    expect_identical_pair(a.points[i].single_speed, b.points[i].single_speed);
  }
}

/// Bit-identity check for an interleaved solution — the segmented
/// counterpart of expect_identical_pair.
inline void expect_identical_interleaved(const core::InterleavedSolution& a,
                                         const core::InterleavedSolution& b) {
  EXPECT_EQ(a.feasible, b.feasible);
  EXPECT_EQ(a.segments, b.segments);
  EXPECT_EQ(a.sigma1, b.sigma1);
  EXPECT_EQ(a.sigma2, b.sigma2);
  EXPECT_EQ(a.w_opt, b.w_opt);
  EXPECT_EQ(a.energy_overhead, b.energy_overhead);
  EXPECT_EQ(a.time_overhead, b.time_overhead);
}

/// Bit-identity check for a whole interleaved panel.
inline void expect_identical_interleaved_series(
    const sweep::InterleavedSeries& a, const sweep::InterleavedSeries& b) {
  EXPECT_EQ(a.parameter, b.parameter);
  EXPECT_EQ(a.configuration, b.configuration);
  EXPECT_EQ(a.rho, b.rho);
  EXPECT_EQ(a.max_segments, b.max_segments);
  ASSERT_EQ(a.points.size(), b.points.size());
  for (std::size_t i = 0; i < a.points.size(); ++i) {
    EXPECT_EQ(a.points[i].x, b.points[i].x);
    expect_identical_interleaved(a.points[i].best, b.points[i].best);
    expect_identical_interleaved(a.points[i].single, b.points[i].single);
  }
}

/// Bit-identity check for a unified backend solution — dispatches on the
/// kind tag and reuses the typed checks, so a field added to either
/// payload is covered exactly once.
inline void expect_identical_solution(const core::Solution& a,
                                      const core::Solution& b) {
  ASSERT_EQ(a.kind, b.kind);
  EXPECT_EQ(a.used_fallback, b.used_fallback);
  if (a.kind == core::SolutionKind::kInterleaved) {
    expect_identical_interleaved(a.interleaved, b.interleaved);
  } else {
    expect_identical_pair(a.pair, b.pair);
  }
}

/// Bit-identity check for a whole generic backend panel.
inline void expect_identical_panel(const sweep::PanelSeries& a,
                                   const sweep::PanelSeries& b) {
  EXPECT_EQ(a.parameter, b.parameter);
  EXPECT_EQ(a.configuration, b.configuration);
  EXPECT_EQ(a.rho, b.rho);
  EXPECT_EQ(a.kind, b.kind);
  EXPECT_EQ(a.max_segments, b.max_segments);
  ASSERT_EQ(a.points.size(), b.points.size());
  for (std::size_t i = 0; i < a.points.size(); ++i) {
    EXPECT_EQ(a.points[i].x, b.points[i].x);
    expect_identical_solution(a.points[i].primary, b.points[i].primary);
    expect_identical_solution(a.points[i].baseline, b.points[i].baseline);
  }
}

}  // namespace rexspeed::test
