#pragma once

#include "rexspeed/core/model_params.hpp"
#include "rexspeed/platform/configuration.hpp"

namespace rexspeed::test {

/// Model parameters of a named paper configuration (e.g. "Hera/XScale").
inline core::ModelParams params_for(const std::string& name) {
  return core::ModelParams::from_configuration(
      platform::configuration_by_name(name));
}

/// Small synthetic parameter set with round numbers, handy for hand
/// calculations in unit tests.
inline core::ModelParams toy_params() {
  core::ModelParams params;
  params.lambda_silent = 1e-4;
  params.lambda_failstop = 0.0;
  params.checkpoint_s = 10.0;
  params.recovery_s = 10.0;
  params.verification_s = 2.0;
  params.kappa_mw = 1000.0;
  params.idle_power_mw = 100.0;
  params.io_power_mw = 50.0;
  params.speeds = {0.25, 0.5, 1.0};
  return params;
}

}  // namespace rexspeed::test
