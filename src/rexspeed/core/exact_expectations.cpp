#include "rexspeed/core/exact_expectations.hpp"

#include <cmath>
#include <stdexcept>

namespace rexspeed::core {

namespace {

void check_args(const ModelParams& params, double work, double sigma1,
                double sigma2) {
  params.validate();
  if (!(work > 0.0)) {
    throw std::invalid_argument("expected value: work must be positive");
  }
  if (!(sigma1 > 0.0) || !(sigma2 > 0.0)) {
    throw std::invalid_argument("expected value: speeds must be positive");
  }
}

/// (1 − e^{−rate·x}) / rate, continuous at rate = 0 where it equals x.
double one_minus_exp_over(double x, double rate) {
  if (rate <= 0.0) return x;
  return -std::expm1(-rate * x) / rate;
}

/// (e^{rate·x} − 1) / rate, continuous at rate = 0 where it equals x.
double expm1_over(double x, double rate) {
  if (rate <= 0.0) return x;
  return std::expm1(rate * x) / rate;
}

struct PatternCosts {
  double lam_s;   // λs
  double lam_f;   // λf
  double c;       // C
  double r;       // R
  double v;       // V at full speed
};

/// Expected time of the single-speed tail (all re-executions at σ), with
/// both error sources: T₂ = C + R(e^{Λ} − 1) + e^{λs w/σ}·(e^{λf(w+V)/σ}−1)/λf,
/// where Λ = (λf(w+V)+λs w)/σ; the last factor degenerates to (w+V)/σ when
/// λf = 0.
double tail_time(const PatternCosts& p, double work, double sigma) {
  const double span = (work + p.v) / sigma;       // compute + verify
  const double exposure = work / sigma;           // silent-error window
  const double big = p.lam_f * span + p.lam_s * exposure;
  const double compute_term =
      std::exp(p.lam_s * exposure) * expm1_over(span, p.lam_f);
  return p.c + p.r * std::expm1(big) + compute_term;
}

/// Same recursion solved for energy: checkpoint/recovery terms carry
/// Pidle+Pio, compute terms carry Pidle+κσ³.
double tail_energy(const PatternCosts& p, double work, double sigma,
                   double compute_power, double io_power) {
  const double span = (work + p.v) / sigma;
  const double exposure = work / sigma;
  const double big = p.lam_f * span + p.lam_s * exposure;
  const double compute_term =
      std::exp(p.lam_s * exposure) * expm1_over(span, p.lam_f);
  return p.c * io_power + p.r * io_power * std::expm1(big) +
         compute_term * compute_power;
}

PatternCosts costs_of(const ModelParams& params) {
  return {.lam_s = params.lambda_silent,
          .lam_f = params.lambda_failstop,
          .c = params.checkpoint_s,
          .r = params.recovery_s,
          .v = params.verification_s};
}

}  // namespace

double expected_time_single_speed_silent(const ModelParams& params,
                                         double work, double sigma) {
  check_args(params, work, sigma, sigma);
  const double lam = params.lambda_silent;
  const double growth = std::exp(lam * work / sigma);
  return params.checkpoint_s +
         growth * (work + params.verification_s) / sigma +
         (growth - 1.0) * params.recovery_s;
}

double expected_time(const ModelParams& params, double work, double sigma1,
                     double sigma2) {
  check_args(params, work, sigma1, sigma2);
  const PatternCosts p = costs_of(params);
  const double span1 = (work + p.v) / sigma1;
  const double exposure1 = work / sigma1;
  // Probability that the first attempt fails (either error source):
  // 1 − e^{−(λf·span1 + λs·exposure1)}.
  const double fail1 = -std::expm1(-(p.lam_f * span1 + p.lam_s * exposure1));
  // Expected productive-or-lost time of the first attempt:
  // (1 − e^{−λf·span1})/λf, which is span1 when λf = 0.
  const double first_attempt = one_minus_exp_over(span1, p.lam_f);
  const double tail = tail_time(p, work, sigma2);
  return first_attempt + fail1 * (p.r + tail) + (1.0 - fail1) * p.c;
}

double expected_energy(const ModelParams& params, double work, double sigma1,
                       double sigma2) {
  check_args(params, work, sigma1, sigma2);
  const PatternCosts p = costs_of(params);
  const double pc1 = params.compute_power(sigma1);
  const double pc2 = params.compute_power(sigma2);
  const double pio = params.io_total_power();
  const double span1 = (work + p.v) / sigma1;
  const double exposure1 = work / sigma1;
  const double fail1 = -std::expm1(-(p.lam_f * span1 + p.lam_s * exposure1));
  const double first_attempt = one_minus_exp_over(span1, p.lam_f);
  const double tail = tail_energy(p, work, sigma2, pc2, pio);
  return first_attempt * pc1 + fail1 * (p.r * pio + tail) +
         (1.0 - fail1) * p.c * pio;
}

double time_overhead(const ModelParams& params, double work, double sigma1,
                     double sigma2) {
  return expected_time(params, work, sigma1, sigma2) / work;
}

double energy_overhead(const ModelParams& params, double work, double sigma1,
                       double sigma2) {
  return expected_energy(params, work, sigma1, sigma2) / work;
}

double expected_time_lost(double lambda_failstop, double duration) {
  if (!(lambda_failstop > 0.0)) {
    throw std::invalid_argument(
        "expected_time_lost: fail-stop rate must be positive");
  }
  if (!(duration > 0.0)) {
    throw std::invalid_argument(
        "expected_time_lost: duration must be positive");
  }
  return 1.0 / lambda_failstop -
         duration / std::expm1(lambda_failstop * duration);
}

namespace paper_forms {

double prop4_expected_time(const ModelParams& params, double work,
                           double sigma1, double sigma2) {
  check_args(params, work, sigma1, sigma2);
  const double lf = params.lambda_failstop;
  const double ls = params.lambda_silent;
  if (!(lf > 0.0)) {
    throw std::invalid_argument(
        "prop4_expected_time: requires a positive fail-stop rate (the "
        "printed form divides by lambda_f)");
  }
  const double c = params.checkpoint_s;
  const double r = params.recovery_s;
  const double v = params.verification_s;
  const double wv = work + v;
  const double fail1 = -std::expm1(-(lf * wv + ls * work) / sigma1);
  return c + fail1 * std::exp((lf * wv + ls * work) / sigma2) * r +
         fail1 * std::exp(ls * work / sigma2) * v / sigma2 +
         (1.0 / lf) * (-std::expm1(-lf * wv / sigma1)) +
         (1.0 / lf) * fail1 * std::exp(ls * work / sigma2) *
             std::expm1(lf * wv / sigma2);
}

double prop5_expected_energy(const ModelParams& params, double work,
                             double sigma1, double sigma2) {
  check_args(params, work, sigma1, sigma2);
  const double lf = params.lambda_failstop;
  const double ls = params.lambda_silent;
  if (!(lf > 0.0)) {
    throw std::invalid_argument(
        "prop5_expected_energy: requires a positive fail-stop rate (the "
        "printed form divides by lambda_f)");
  }
  const double c = params.checkpoint_s;
  const double r = params.recovery_s;
  const double v = params.verification_s;
  const double wv = work + v;
  const double pio = params.io_total_power();
  const double pc1 = params.compute_power(sigma1);
  const double pc2 = params.compute_power(sigma2);
  const double fail1 = -std::expm1(-(lf * wv + ls * work) / sigma1);
  return c * pio +
         fail1 * std::exp((lf * wv + ls * work) / sigma2) * r * pio +
         fail1 * std::exp(ls * work / sigma2) * (v / sigma2) * pc2 +
         (1.0 / lf) * fail1 * std::exp(ls * work / sigma2) *
             std::expm1(lf * wv / sigma2) * pc2 +
         (1.0 / lf) * (-std::expm1(-lf * wv / sigma1)) * pc1;
}

}  // namespace paper_forms

}  // namespace rexspeed::core
