#pragma once

#include <optional>
#include <string_view>

namespace rexspeed::core {

/// The sweepable model dimensions: the six parameters the paper sweeps in
/// Figures 2–14 plus the segment count of the interleaved-verification
/// extension. This lives in core (not sweep) so a SolverBackend can
/// advertise which axes it supports without depending on the sweep layer;
/// sweep::SweepParameter is an alias of this type.
enum class SweepAxis {
  kCheckpointTime,   ///< C (s)          — Figs. 2, 8–14 row 1
  kVerificationTime, ///< V (s)          — Figs. 3, 8–14 row 2
  kErrorRate,        ///< λ (1/s), log   — Figs. 4, 8–14 row 3
  kPerformanceBound, ///< ρ              — Figs. 5, 8–14 row 4
  kIdlePower,        ///< Pidle (mW)     — Figs. 6, 8–14 row 5
  kIoPower,          ///< Pio (mW)       — Figs. 7, 8–14 row 6
  kSegments,         ///< verifications per pattern m — interleaved
                     ///< backends only (pair backends reject the axis)
};

[[nodiscard]] const char* to_string(SweepAxis axis) noexcept;

/// Inverse of to_string: parses an axis name ("C", "V", "lambda", "rho",
/// "Pidle", "Pio", "segments"). Returns nullopt for anything else.
[[nodiscard]] std::optional<SweepAxis> parse_sweep_axis(
    std::string_view name) noexcept;

}  // namespace rexspeed::core
