#include "rexspeed/core/first_order.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace rexspeed::core {

double OverheadExpansion::argmin() const {
  if (!has_interior_minimum()) {
    throw std::logic_error(
        "OverheadExpansion: no interior minimum (y or z not positive)");
  }
  return std::sqrt(z / y);
}

double OverheadExpansion::min_value() const {
  if (!has_interior_minimum()) {
    throw std::logic_error(
        "OverheadExpansion: no interior minimum (y or z not positive)");
  }
  return x + 2.0 * std::sqrt(y * z);
}

namespace {

void check_speeds(double sigma1, double sigma2) {
  if (!(sigma1 > 0.0) || !(sigma2 > 0.0)) {
    throw std::invalid_argument("expansion: speeds must be positive");
  }
}

}  // namespace

OverheadExpansion time_expansion(const ModelParams& params, double sigma1,
                                 double sigma2) {
  params.validate();
  check_speeds(sigma1, sigma2);
  const double lam = params.total_error_rate();
  const double lf = params.lambda_failstop;
  const double r = params.recovery_s;
  const double v = params.verification_s;
  OverheadExpansion exp{};
  exp.x = (1.0 + lam * (r + v / sigma2) - lf * v / sigma1) / sigma1;
  exp.y = lam / (sigma1 * sigma2) - lf / (2.0 * sigma1 * sigma1);
  exp.z = params.checkpoint_s + v / sigma1;
  return exp;
}

OverheadExpansion energy_expansion(const ModelParams& params, double sigma1,
                                   double sigma2) {
  params.validate();
  check_speeds(sigma1, sigma2);
  const double lam = params.total_error_rate();
  const double lf = params.lambda_failstop;
  const double r = params.recovery_s;
  const double v = params.verification_s;
  const double pc1 = params.compute_power(sigma1);
  const double pc2 = params.compute_power(sigma2);
  const double pio = params.io_total_power();
  OverheadExpansion exp{};
  exp.x = pc1 / sigma1 + lam * (r * pio + v * pc2 / sigma2) / sigma1 -
          lf * v * pc1 / (sigma1 * sigma1);
  exp.y = lam * pc2 / (sigma1 * sigma2) - lf * pc1 / (2.0 * sigma1 * sigma1);
  exp.z = params.checkpoint_s * pio + v * pc1 / sigma1;
  return exp;
}

bool first_order_valid(const ModelParams& params, double sigma1,
                       double sigma2) {
  return time_expansion(params, sigma1, sigma2).y > 0.0 &&
         energy_expansion(params, sigma1, sigma2).y > 0.0;
}

double max_valid_speed_ratio(const ModelParams& params) {
  const double lf = params.lambda_failstop;
  if (!(lf > 0.0)) return std::numeric_limits<double>::infinity();
  return 2.0 * params.total_error_rate() / lf;
}

}  // namespace rexspeed::core
