#pragma once

#include "rexspeed/core/model_params.hpp"

namespace rexspeed::core {

/// First-order (Young/Daly-style) expansion of an overhead-per-work-unit
/// function: overhead(W) ≈ x + y·W + z/W, obtained from the exact
/// expectations via the Taylor expansion e^{λW} = 1 + λW + O(λ²W²)
/// (paper Eqs. (2), (3), (9), (10)).
struct OverheadExpansion {
  double x = 0.0;  ///< constant term
  double y = 0.0;  ///< coefficient of W (may be negative with fail-stop)
  double z = 0.0;  ///< coefficient of 1/W

  [[nodiscard]] double evaluate(double work) const noexcept {
    return x + y * work + z / work;
  }

  /// True when the expansion has a finite positive minimizer √(z/y).
  [[nodiscard]] bool has_interior_minimum() const noexcept {
    return y > 0.0 && z > 0.0;
  }

  /// Unconstrained minimizer √(z/y); requires has_interior_minimum().
  [[nodiscard]] double argmin() const;

  /// Minimum value x + 2√(yz); requires has_interior_minimum().
  [[nodiscard]] double min_value() const;
};

/// Time overhead expansion T(W,σ1,σ2)/W. For silent errors only this is
/// exactly Eq. (2); with fail-stop errors it is Eq. (9):
///   x = (1 + λ(R + V/σ2) − λf V/σ1) / σ1,
///   y = λ/(σ1σ2) − λf/(2σ1²),
///   z = C + V/σ1,            with λ = λs + λf.
[[nodiscard]] OverheadExpansion time_expansion(const ModelParams& params,
                                               double sigma1, double sigma2);

/// Energy overhead expansion E(W,σ1,σ2)/W. For silent errors only this is
/// Eq. (3) with the paper's κσ1³ typo in the λV term corrected to κσ2³
/// (the term stems from re-executed verifications, which run at σ2; the
/// corrected form is the true first-order expansion of Prop. 3 and matches
/// the paper's own combined-error Eq. (10) when λf = 0):
///   x = Pc(σ1)/σ1 + λ(R·Pio⁺ + V·Pc(σ2)/σ2)/σ1 − λf V·Pc(σ1)/σ1²,
///   y = λ·Pc(σ2)/(σ1σ2) − λf·Pc(σ1)/(2σ1²),
///   z = C·Pio⁺ + V·Pc(σ1)/σ1,
/// where Pc(σ) = Pidle + κσ³ and Pio⁺ = Pidle + Pio.
[[nodiscard]] OverheadExpansion energy_expansion(const ModelParams& params,
                                                 double sigma1, double sigma2);

/// True when the first-order approach yields a meaningful optimum for this
/// speed pair, i.e. both expansions have y > 0 (paper §5.2: requires
/// (2(1+s/f))^{-1/2} < σ2/σ1 < 2(1+s/f) up to power factors). Always true
/// for silent errors only.
[[nodiscard]] bool first_order_valid(const ModelParams& params, double sigma1,
                                     double sigma2);

/// Largest re-execution ratio σ2/σ1 for which the time expansion keeps a
/// positive W coefficient: 2λ/λf = 2(1 + s/f). Returns +inf when λf = 0.
[[nodiscard]] double max_valid_speed_ratio(const ModelParams& params);

}  // namespace rexspeed::core
