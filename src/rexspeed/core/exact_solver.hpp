#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "rexspeed/core/bicrit_solver.hpp"
#include "rexspeed/core/model_params.hpp"
#include "rexspeed/core/numeric_optimizer.hpp"

namespace rexspeed::core {

/// Everything about one speed pair (σ1, σ2) of the EXACT model that
/// depends only on the model parameters — not on the performance bound ρ.
/// Both exact overhead curves T(W)/W and E(W)/W are unimodal in W (the
/// 1/W checkpoint term falls, the e^{λW} re-execution terms rise), so
/// their unconstrained minima pin down every constrained solve: a bound
/// below `rho_min` is infeasible, a bound admitting `w_energy` is solved
/// by the cached optimum outright, and anything in between reduces to
/// locating one feasibility boundary by bisection.
///
/// This is the exact-model counterpart of PairExpansion (whose closed-form
/// coefficients are only meaningful inside the §5.2 first-order validity
/// window) and the m = 1 slice of InterleavedExpansion — but valid for any
/// λs, λf ≥ 0, including the σ2 > 2σ1(1+s/f) regime where the first-order
/// machinery breaks down.
struct ExactExpansion {
  double sigma1 = 0.0;
  double sigma2 = 0.0;
  int index1 = -1;  ///< positions in ModelParams::speeds
  int index2 = -1;
  /// True when the pair sits inside the §5.2 first-order validity window.
  /// The closed-form argmins then seed the numeric bracketing (a warm
  /// start); outside the window the cold-start bracket is used. Either
  /// way the cached optima are exact — the flag is carried into
  /// PairSolution::first_order_valid for reporting only.
  bool first_order_valid = true;
  double w_time = 0.0;      ///< unconstrained minimizer of T(W)/W
  double rho_min = 0.0;     ///< T(w_time)/w_time — exact feasibility floor
  double w_energy = 0.0;    ///< unconstrained minimizer of E(W)/W
  double energy_min = 0.0;  ///< E(w_energy)/w_energy
  double time_at_we = 0.0;  ///< T(w_energy)/w_energy

  /// Builds the pair-invariant exact curve structure for one speed pair:
  /// two warm-started 1-D minimizations plus three curve evaluations.
  [[nodiscard]] static ExactExpansion make(const ModelParams& params,
                                           double sigma1, double sigma2,
                                           int index1, int index2,
                                           const NumericOptions& options = {});

  /// Same, but with the first-order expansions (warm-start seeds and the
  /// validity flag) read from slot (i, j) of a prebuilt SoA table instead
  /// of being recomputed per pair — the shared-pass construction
  /// ExactSolver uses. Bit-identical to the overload above.
  [[nodiscard]] static ExactExpansion make(const ModelParams& params,
                                           const ExpansionSoA& table,
                                           std::size_t i, std::size_t j,
                                           const NumericOptions& options = {});
};

/// The cached exact-optimization backend: enumerate every speed pair
/// (σ1, σ2) ∈ S × S and pick the pattern with the smallest exact energy
/// overhead subject to T/W ≤ ρ — the same problem
/// BiCritSolver::solve(…, EvalMode::kExactOptimize) answers, but with the
/// ρ-independent curve work hoisted out of the per-bound path.
///
/// Construction pays the numeric optimization of both exact overhead
/// curves once per pair (warm-started from the first-order expansions
/// where §5.2 holds). Every solve afterwards is cheap feasibility math on
/// the cached expansions plus at most one warm-started bisection per pair
/// whose bound is tight, so one solver serves an entire ρ sweep — exactly
/// the property BiCritSolver has for the first-order mode, extended to
/// the mode that is valid outside the first-order window
/// (bench_exact measures the gain vs the per-point rebuild path).
///
/// Construction can be parallelized by passing a `parallel_build` hook
/// (e.g. sweep::parallel_for over a ThreadPool): every cache entry is
/// computed independently and written to its own slot, so the finished
/// cache is bit-identical to a serial build regardless of scheduling.
///
/// The solver is immutable after construction and therefore safe to share
/// across threads without synchronization.
class ExactSolver {
 public:
  /// Signature of the optional construction parallelizer: call fn(i) for
  /// every i in [0, count), in any order, and return once all completed.
  using ParallelFor = std::function<void(
      std::size_t count, const std::function<void(std::size_t)>& fn)>;

  /// Throws std::invalid_argument on invalid params. `parallel_build`,
  /// when set, distributes the per-pair curve optimization; it is not
  /// retained past construction.
  explicit ExactSolver(ModelParams params,
                       const ParallelFor& parallel_build = {});

  /// Best pair at bound `rho` plus every candidate, for reporting — the
  /// cached equivalent of BiCritSolver::solve(rho, policy,
  /// EvalMode::kExactOptimize), with three reporting differences: rho_min
  /// carries the pair's exact feasibility floor (the uncached path
  /// reports NaN there), w_min/w_max carry the bracket the constrained
  /// search actually proved feasible (not the full feasible window), and
  /// w_energy carries the true unconstrained energy minimizer (the
  /// uncached path echoes w_opt). Throws std::invalid_argument when rho
  /// is not positive.
  [[nodiscard]] BiCritSolution solve(
      double rho, SpeedPolicy policy = SpeedPolicy::kTwoSpeed) const;

  /// Solves the speed pair at positions (i, j) of the speed set off the
  /// cached expansions. Throws std::out_of_range on a bad index.
  [[nodiscard]] PairSolution solve_pair_by_index(double rho, std::size_t i,
                                                 std::size_t j) const;

  /// Batched selection core: the best pair at `rho` under `policy`,
  /// driven by a precomputed per-slot class array `cls` (0 = infeasible,
  /// 1 = cache lookup, 2 = tight; from kernels::classify_pairs over
  /// rho_mins()/times_at_we()). Bit-identical to solve(rho, policy).best
  /// — same in-order scan, same strict-< tie-breaking — but without
  /// materializing the K² PairSolution report, which is what makes whole
  /// ρ-grids cheap. `cls` must have expansions().size() entries.
  [[nodiscard]] PairSolution solve_classified(double rho, SpeedPolicy policy,
                                              const unsigned char* cls) const;

  /// Best-effort policy when no pair satisfies the bound: the pair with
  /// the smallest EXACT achievable bound rho_min, run at its time-optimal
  /// pattern size — the exact-model analog of
  /// BiCritSolver::min_rho_solution (which ranks pairs by the first-order
  /// tangency and is therefore blind outside the validity window).
  /// Precomputed at construction; the reference stays valid for the
  /// solver's lifetime.
  [[nodiscard]] const PairSolution& min_rho_solution(
      SpeedPolicy policy = SpeedPolicy::kTwoSpeed) const noexcept {
    return policy == SpeedPolicy::kSingleSpeed ? min_rho_single_
                                               : min_rho_two_;
  }

  [[nodiscard]] const ModelParams& params() const noexcept { return params_; }

  /// The cached pair-invariant data, row-major over the K×K speed grid
  /// (entry (i, j) at i * K + j).
  [[nodiscard]] const std::vector<ExactExpansion>& expansions()
      const noexcept {
    return cache_;
  }

  /// Contiguous per-slot feasibility floors / times-at-optimum, mirrors
  /// of the cache for the vectorized classify kernel to stream over.
  [[nodiscard]] const std::vector<double>& rho_mins() const noexcept {
    return rho_min_flat_;
  }
  [[nodiscard]] const std::vector<double>& times_at_we() const noexcept {
    return time_at_we_flat_;
  }

 private:
  [[nodiscard]] PairSolution base_solution(const ExactExpansion& pair) const;
  [[nodiscard]] PairSolution lookup_solution(const ExactExpansion& pair) const;
  [[nodiscard]] PairSolution tight_solution(double rho,
                                            const ExactExpansion& pair) const;
  [[nodiscard]] PairSolution solve_cached(double rho,
                                          const ExactExpansion& pair) const;
  [[nodiscard]] PairSolution compute_min_rho(SpeedPolicy policy) const;

  ModelParams params_;
  NumericOptions options_;
  /// K² ExactExpansions, entry (i, j) at i * K + j.
  std::vector<ExactExpansion> cache_;
  std::vector<double> rho_min_flat_;
  std::vector<double> time_at_we_flat_;
  PairSolution min_rho_two_;
  PairSolution min_rho_single_;
};

}  // namespace rexspeed::core
