#include "rexspeed/core/recall_solver.hpp"

#include <cmath>
#include <stdexcept>
#include <utility>

namespace rexspeed::core {

namespace {

void check_recall(double recall) {
  if (!(recall >= 0.0) || recall > 1.0) {
    throw std::invalid_argument(
        "recall: verification recall must be in [0, 1]");
  }
}

void check_args(const ModelParams& params, double recall, double work,
                double sigma1, double sigma2) {
  params.validate();
  check_recall(recall);
  if (!(work > 0.0)) {
    throw std::invalid_argument("recall expectation: work must be positive");
  }
  if (!(sigma1 > 0.0) || !(sigma2 > 0.0)) {
    throw std::invalid_argument(
        "recall expectation: speeds must be positive");
  }
}

/// (1 − e^{−rate·x}) / rate, continuous at rate = 0 where it equals x
/// (same as exact_expectations.cpp — the expected elapsed time of an
/// attempt truncated by an Exp(rate) fail-stop).
double one_minus_exp_over(double x, double rate) {
  if (rate <= 0.0) return x;
  return -std::expm1(-rate * x) / rate;
}

/// Everything one attempt at speed σ contributes to the recursion.
struct AttemptStats {
  double duration;  ///< E[elapsed time] = (1 − e^{−λf·span})/λf
  double retry;     ///< q = p_f + (1 − p_f)·p_s·r
  double corrupt;   ///< (1 − p_f)·p_s·(1 − r): commits corrupted
};

AttemptStats attempt_stats(const ModelParams& params, double recall,
                           double work, double sigma) {
  const double span = (work + params.verification_s) / sigma;
  const double exposure = work / sigma;
  const double p_fail = -std::expm1(-params.lambda_failstop * span);
  const double p_silent = -std::expm1(-params.lambda_silent * exposure);
  AttemptStats stats;
  stats.duration = one_minus_exp_over(span, params.lambda_failstop);
  stats.retry = p_fail + (1.0 - p_fail) * p_silent * recall;
  stats.corrupt = (1.0 - p_fail) * p_silent * (1.0 - recall);
  return stats;
}

}  // namespace

ModelParams recall_effective_params(ModelParams params, double recall) {
  check_recall(recall);
  params.lambda_silent *= recall;
  return params;
}

double expected_time_recall(const ModelParams& params, double recall,
                            double work, double sigma1, double sigma2) {
  check_args(params, recall, work, sigma1, sigma2);
  const AttemptStats a1 = attempt_stats(params, recall, work, sigma1);
  const AttemptStats a2 = attempt_stats(params, recall, work, sigma2);
  const double c = params.checkpoint_s;
  const double r = params.recovery_s;
  // Tail recursion (all re-executions at σ2): T2 = A2 + q2(R + T2) +
  // (1 − q2)C, a geometric series over the retry probability q2.
  const double tail = (a2.duration + a2.retry * r) / (1.0 - a2.retry) + c;
  return a1.duration + a1.retry * (r + tail) + (1.0 - a1.retry) * c;
}

double expected_energy_recall(const ModelParams& params, double recall,
                              double work, double sigma1, double sigma2) {
  check_args(params, recall, work, sigma1, sigma2);
  const AttemptStats a1 = attempt_stats(params, recall, work, sigma1);
  const AttemptStats a2 = attempt_stats(params, recall, work, sigma2);
  const double pc1 = params.compute_power(sigma1);
  const double pc2 = params.compute_power(sigma2);
  const double pio = params.io_total_power();
  const double c = params.checkpoint_s;
  const double r = params.recovery_s;
  // Same recursion with compute time at Pidle + κσ³ and checkpoint /
  // recovery time at Pidle + Pio.
  const double tail = (a2.duration * pc2 + a2.retry * r * pio) /
                          (1.0 - a2.retry) +
                      c * pio;
  return a1.duration * pc1 + a1.retry * (r * pio + tail) +
         (1.0 - a1.retry) * c * pio;
}

double recall_corruption_probability(const ModelParams& params, double recall,
                                     double work, double sigma1,
                                     double sigma2) {
  check_args(params, recall, work, sigma1, sigma2);
  const AttemptStats a1 = attempt_stats(params, recall, work, sigma1);
  const AttemptStats a2 = attempt_stats(params, recall, work, sigma2);
  // The committing attempt is the first non-retried one: corrupt on the
  // first attempt, or after any geometric number of retries at σ2.
  return a1.corrupt + a1.retry * a2.corrupt / (1.0 - a2.retry);
}

RecallSolver::RecallSolver(ModelParams params, double recall)
    : params_(params),
      recall_(recall),
      solver_(recall_effective_params(std::move(params), recall)) {
  params_.validate();
}

BiCritSolution RecallSolver::solve(double rho, SpeedPolicy policy) const {
  return solver_.solve(rho, policy, EvalMode::kFirstOrder);
}

PairSolution RecallSolver::min_rho_solution(SpeedPolicy policy) const {
  return solver_.min_rho_solution(policy);
}

double RecallSolver::expected_time(double work, double sigma1,
                                   double sigma2) const {
  return expected_time_recall(params_, recall_, work, sigma1, sigma2);
}

double RecallSolver::expected_energy(double work, double sigma1,
                                     double sigma2) const {
  return expected_energy_recall(params_, recall_, work, sigma1, sigma2);
}

double RecallSolver::corruption_probability(double work, double sigma1,
                                            double sigma2) const {
  return recall_corruption_probability(params_, recall_, work, sigma1,
                                       sigma2);
}

RecallBackend::RecallBackend(ModelParams params, double recall)
    : params_(params),
      recall_(recall),
      delegate_(recall_effective_params(std::move(params), recall),
                EvalMode::kFirstOrder) {
  params_.validate();
  capabilities_ = delegate_.capabilities();
  capabilities_.version = "recall-1";
  capabilities_.validity =
      "first-order window over the recall-scaled rate r*lambda_s; "
      "overheads count detected-error re-executions only — "
      "recall_corruption_probability quantifies the committed-corrupt "
      "risk a partial verification adds";
}

const char* RecallBackend::name() const noexcept { return "recall"; }

void RecallBackend::prepare(const ParallelFor& parallel_build) {
  delegate_.prepare(parallel_build);
}

Solution RecallBackend::solve(double rho, SpeedPolicy policy,
                              bool min_rho_fallback) const {
  return delegate_.solve(rho, policy, min_rho_fallback);
}

Solution RecallBackend::solve_baseline(double rho,
                                       bool min_rho_fallback) const {
  return delegate_.solve_baseline(rho, min_rho_fallback);
}

Solution RecallBackend::min_rho(SpeedPolicy policy) const {
  return delegate_.min_rho(policy);
}

PairSolution RecallBackend::solve_pair(double rho, std::size_t i,
                                       std::size_t j) const {
  return delegate_.solve_pair(rho, i, j);
}

BiCritSolution RecallBackend::solve_report(double rho,
                                           SpeedPolicy policy) const {
  return delegate_.solve_report(rho, policy);
}

std::unique_ptr<SolverBackend> RecallBackend::rebind(
    ModelParams params, const PairSeedTable* /*seeds*/) const {
  // Rebinds carry the ORIGINAL parameters (panel sweeps mutate the true
  // model axis); the recall scaling is re-applied by the new delegate.
  return std::make_unique<RecallBackend>(std::move(params), recall_);
}

void RecallBackend::solve_rho_batch(const double* rhos, std::size_t count,
                                    bool min_rho_fallback,
                                    PanelPoint* out) const {
  delegate_.solve_rho_batch(rhos, count, min_rho_fallback, out);
}

PanelPoint RecallBackend::solve_panel_point_seeded(
    SweepAxis axis, double x, double panel_rho, bool min_rho_fallback,
    PairSeedTable* harvest) const {
  return delegate_.solve_panel_point_seeded(axis, x, panel_rho,
                                            min_rho_fallback, harvest);
}

}  // namespace rexspeed::core
