#include "rexspeed/core/numeric_optimizer.hpp"

#include <cmath>
#include <stdexcept>

#include "rexspeed/core/exact_expectations.hpp"

namespace rexspeed::core {

double golden_section_minimize(const std::function<double(double)>& f,
                               double lo, double hi,
                               const NumericOptions& options) {
  if (!(lo < hi)) {
    throw std::invalid_argument("golden_section_minimize: empty interval");
  }
  constexpr double kInvPhi = 0.6180339887498949;  // 1/φ
  double a = lo;
  double b = hi;
  double x1 = b - kInvPhi * (b - a);
  double x2 = a + kInvPhi * (b - a);
  double f1 = f(x1);
  double f2 = f(x2);
  for (int i = 0; i < options.max_iterations &&
                  (b - a) > options.relative_tolerance * (std::abs(a) + 1.0);
       ++i) {
    if (f1 < f2) {
      b = x2;
      x2 = x1;
      f2 = f1;
      x1 = b - kInvPhi * (b - a);
      f1 = f(x1);
    } else {
      a = x1;
      x1 = x2;
      f1 = f2;
      x2 = a + kInvPhi * (b - a);
      f2 = f(x2);
    }
  }
  return 0.5 * (a + b);
}

double minimize_unimodal_overhead(
    const std::function<double(double)>& overhead,
    const NumericOptions& options) {
  // Exact overheads are convex in W: the 1/W checkpoint term falls, the
  // e^{λW} re-execution terms rise. Double the upper bracket until the
  // function increases (or overflows), then golden-section.
  double lo = 1e-6;
  double hi = 1.0;
  double prev = overhead(hi);
  while (hi < options.w_cap) {
    const double next = overhead(hi * 2.0);
    if (next > prev || !std::isfinite(next)) break;
    prev = next;
    hi *= 2.0;
  }
  return golden_section_minimize(overhead, lo, hi * 2.0, options);
}

double minimize_unimodal_overhead(
    const std::function<double(double)>& overhead, double seed,
    const NumericOptions& options) {
  if (!(seed > 0.0) || !std::isfinite(seed) ||
      !std::isfinite(overhead(seed))) {
    // A useless seed — non-positive, non-finite, or sitting in the
    // e^{λW} overflow region where every nearby probe is ±inf and the
    // bracket scans below would terminate on garbage comparisons.
    return minimize_unimodal_overhead(overhead, options);
  }
  // Expand a bracket around the seed until the function rises (or stops
  // being finite) on both sides; unimodality then pins the minimizer
  // inside [lo/2, hi*2].
  constexpr double kWFloor = 1e-6;
  double lo = std::max(seed, kWFloor);
  double f_lo = overhead(lo);
  while (lo > kWFloor) {
    const double probe = std::max(lo * 0.5, kWFloor);
    const double value = overhead(probe);
    if (!(value < f_lo)) break;  // rising (or NaN) to the left: bracketed
    lo = probe;
    f_lo = value;
  }
  double hi = std::max(seed, kWFloor);
  double f_hi = overhead(hi);
  while (hi < options.w_cap) {
    const double probe = hi * 2.0;
    const double value = overhead(probe);
    if (!std::isfinite(value) || !(value < f_hi)) break;
    hi = probe;
    f_hi = value;
  }
  return golden_section_minimize(overhead, std::max(lo * 0.5, kWFloor * 0.5),
                                 hi * 2.0, options);
}

double bisect_boundary(const std::function<double(double)>& overhead,
                       double rho, double inside, double outside,
                       const NumericOptions& options) {
  for (int i = 0; i < options.max_iterations; ++i) {
    const double mid = 0.5 * (inside + outside);
    if (std::abs(outside - inside) <=
        options.relative_tolerance * (std::abs(mid) + 1.0)) {
      break;
    }
    const double value = overhead(mid);
    if (std::isfinite(value) && value <= rho) {
      inside = mid;
    } else {
      outside = mid;
    }
  }
  return inside;
}

ExactPairResult optimize_exact_pair(const ModelParams& params, double rho,
                                    double sigma1, double sigma2,
                                    const NumericOptions& options) {
  // The seeded overload with a useless seed takes the cold-start bracket,
  // so this is the exact historical path bit for bit.
  return optimize_exact_pair(params, rho, sigma1, sigma2, 0.0, options);
}

ExactPairResult optimize_exact_pair(const ModelParams& params, double rho,
                                    double sigma1, double sigma2,
                                    double w_seed,
                                    const NumericOptions& options) {
  if (!(rho > 0.0)) {
    throw std::invalid_argument("optimize_exact_pair: rho must be positive");
  }
  const auto time_per_work = [&](double w) {
    return time_overhead(params, w, sigma1, sigma2);
  };
  const auto energy_per_work = [&](double w) {
    return energy_overhead(params, w, sigma1, sigma2);
  };

  ExactPairResult result;
  const double w_time_opt =
      minimize_unimodal_overhead(time_per_work, w_seed, options);
  if (time_per_work(w_time_opt) > rho) {
    return result;  // even the fastest pattern violates the bound
  }

  // Expand outward from the time-optimal pattern to bracket the feasible
  // boundary on each side, then bisect.
  double left_out = w_time_opt;
  while (left_out > 1e-9 && time_per_work(left_out) <= rho) left_out *= 0.5;
  const double w_lo = (time_per_work(left_out) <= rho)
                          ? left_out
                          : bisect_boundary(time_per_work, rho,
                                            w_time_opt, left_out, options);

  double right_out = w_time_opt;
  while (right_out < options.w_cap) {
    const double probe = right_out * 2.0;
    const double value = time_per_work(probe);
    if (!std::isfinite(value) || value > rho) {
      right_out = probe;
      break;
    }
    right_out = probe;
  }
  const double right_value = time_per_work(right_out);
  const double w_hi = (std::isfinite(right_value) && right_value <= rho)
                          ? right_out
                          : bisect_boundary(time_per_work, rho, w_time_opt,
                                            right_out, options);

  result.feasible = true;
  result.w_min = w_lo;
  result.w_max = w_hi;
  result.w_opt =
      golden_section_minimize(energy_per_work, w_lo, w_hi, options);
  result.energy_overhead = energy_per_work(result.w_opt);
  result.time_overhead = time_per_work(result.w_opt);
  return result;
}

double minimize_exact_time_overhead(const ModelParams& params, double sigma1,
                                    double sigma2,
                                    const NumericOptions& options) {
  return minimize_unimodal_overhead(
      [&](double w) { return time_overhead(params, w, sigma1, sigma2); },
      options);
}

double minimize_exact_energy_overhead(const ModelParams& params,
                                      double sigma1, double sigma2,
                                      const NumericOptions& options) {
  return minimize_unimodal_overhead(
      [&](double w) { return energy_overhead(params, w, sigma1, sigma2); },
      options);
}

}  // namespace rexspeed::core
