#include "rexspeed/core/sweep_axis.hpp"

namespace rexspeed::core {

const char* to_string(SweepAxis axis) noexcept {
  switch (axis) {
    case SweepAxis::kCheckpointTime:
      return "C";
    case SweepAxis::kVerificationTime:
      return "V";
    case SweepAxis::kErrorRate:
      return "lambda";
    case SweepAxis::kPerformanceBound:
      return "rho";
    case SweepAxis::kIdlePower:
      return "Pidle";
    case SweepAxis::kIoPower:
      return "Pio";
    case SweepAxis::kSegments:
      return "segments";
  }
  return "unknown";
}

std::optional<SweepAxis> parse_sweep_axis(std::string_view name) noexcept {
  constexpr SweepAxis kAxes[] = {
      SweepAxis::kCheckpointTime, SweepAxis::kVerificationTime,
      SweepAxis::kErrorRate,      SweepAxis::kPerformanceBound,
      SweepAxis::kIdlePower,      SweepAxis::kIoPower,
      SweepAxis::kSegments};
  for (const SweepAxis axis : kAxes) {
    if (name == to_string(axis)) return axis;
  }
  return std::nullopt;
}

}  // namespace rexspeed::core
