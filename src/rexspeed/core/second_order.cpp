#include "rexspeed/core/second_order.hpp"

#include <cmath>
#include <stdexcept>

namespace rexspeed::core {

SecondOrderExpansion time_second_order_failstop(const ModelParams& params,
                                                double sigma1,
                                                double sigma2) {
  params.validate();
  if (!(params.lambda_failstop > 0.0)) {
    throw std::invalid_argument(
        "time_second_order_failstop: requires a positive fail-stop rate");
  }
  if (!(sigma1 > 0.0) || !(sigma2 > 0.0)) {
    throw std::invalid_argument(
        "time_second_order_failstop: speeds must be positive");
  }
  const double lam = params.lambda_failstop;
  const double s1 = sigma1;
  const double s2 = sigma2;
  SecondOrderExpansion exp{};
  exp.x = 1.0 / s1 + lam * params.recovery_s / s1;
  exp.z = params.checkpoint_s;
  exp.y1 = (1.0 / (s1 * s2) - 1.0 / (2.0 * s1 * s1)) * lam;
  exp.y2 = (1.0 / (6.0 * s1 * s1 * s1) - 1.0 / (2.0 * s1 * s1 * s2) +
            1.0 / (2.0 * s1 * s2 * s2)) *
           lam * lam;
  return exp;
}

SecondOrderExpansion time_second_order_silent(const ModelParams& params,
                                              double sigma1, double sigma2) {
  params.validate();
  if (!(params.lambda_silent > 0.0)) {
    throw std::invalid_argument(
        "time_second_order_silent: requires a positive silent-error rate");
  }
  if (!(sigma1 > 0.0) || !(sigma2 > 0.0)) {
    throw std::invalid_argument(
        "time_second_order_silent: speeds must be positive");
  }
  const double lam = params.lambda_silent;
  const double s1 = sigma1;
  const double s2 = sigma2;
  const double rv = params.recovery_s + params.verification_s / s2;
  SecondOrderExpansion exp{};
  exp.x = 1.0 / s1 + lam * rv / s1;
  exp.z = params.checkpoint_s + params.verification_s / s1;
  exp.y1 = lam / (s1 * s2) +
           lam * lam * rv * (1.0 / (s1 * s2) - 1.0 / (2.0 * s1 * s1));
  exp.y2 = lam * lam *
           (1.0 / (s1 * s2 * s2) - 1.0 / (2.0 * s1 * s1 * s2));
  return exp;
}

double theorem2_pattern_size(double checkpoint_s, double lambda_failstop,
                             double sigma) {
  if (!(checkpoint_s > 0.0) || !(lambda_failstop > 0.0) || !(sigma > 0.0)) {
    throw std::invalid_argument(
        "theorem2_pattern_size: all arguments must be positive");
  }
  return std::cbrt(12.0 * checkpoint_s /
                   (lambda_failstop * lambda_failstop)) *
         sigma;
}

double minimize_second_order(const SecondOrderExpansion& exp) {
  if (!(exp.z > 0.0)) {
    throw std::invalid_argument("minimize_second_order: z must be positive");
  }
  if (!(exp.y2 > 0.0) && !(exp.y2 == 0.0 && exp.y1 > 0.0)) {
    throw std::invalid_argument(
        "minimize_second_order: expansion is unbounded below (y2 <= 0)");
  }
  if (exp.y2 == 0.0) {
    return std::sqrt(exp.z / exp.y1);  // degenerate first-order case
  }
  // Stationarity: g(W) = 2 y2 W³ + y1 W² − z = 0 has exactly one positive
  // root (g(0) = −z < 0, g strictly increasing for W large). Bracket it.
  const auto g = [&](double w) {
    return 2.0 * exp.y2 * w * w * w + exp.y1 * w * w - exp.z;
  };
  double hi = std::cbrt(exp.z / (2.0 * exp.y2));
  while (g(hi) < 0.0) hi *= 2.0;
  double lo = 0.0;
  // Bisection with a Newton polish: robust on the whole y1 sign range.
  for (int i = 0; i < 200 && (hi - lo) > 1e-12 * hi; ++i) {
    const double mid = 0.5 * (lo + hi);
    (g(mid) < 0.0 ? lo : hi) = mid;
  }
  double w = 0.5 * (lo + hi);
  for (int i = 0; i < 4; ++i) {
    const double grad = 6.0 * exp.y2 * w * w + 2.0 * exp.y1 * w;
    if (grad <= 0.0) break;
    const double step = g(w) / grad;
    const double next = w - step;
    if (!(next > 0.0)) break;
    w = next;
  }
  return w;
}

}  // namespace rexspeed::core
