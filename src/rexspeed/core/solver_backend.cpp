#include "rexspeed/core/solver_backend.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>
#include <stdexcept>
#include <utility>

#include "rexspeed/core/kernels/kernel_dispatch.hpp"

namespace rexspeed::core {

Solution Solution::from_pair(PairSolution solution, bool used_fallback) {
  Solution out;
  out.kind = SolutionKind::kPair;
  out.pair = std::move(solution);
  out.used_fallback = used_fallback;
  return out;
}

Solution Solution::from_interleaved(InterleavedSolution solution) {
  Solution out;
  out.kind = SolutionKind::kInterleaved;
  out.interleaved = solution;
  return out;
}

double PanelPoint::energy_saving() const noexcept {
  if (!primary.feasible() || !baseline.feasible() ||
      !(baseline.energy_overhead() > 0.0)) {
    return 0.0;
  }
  return 1.0 - primary.energy_overhead() / baseline.energy_overhead();
}

bool BackendCapabilities::supports(SweepAxis axis) const noexcept {
  return std::find(axes.begin(), axes.end(), axis) != axes.end();
}

bool BackendCapabilities::shares_panel_solver(SweepAxis axis) const noexcept {
  return std::find(shared_axes.begin(), shared_axes.end(), axis) !=
         shared_axes.end();
}

Solution SolverBackend::solve_segments(double /*rho*/,
                                       unsigned /*segments*/) const {
  throw std::logic_error(std::string("SolverBackend: backend '") + name() +
                         "' does not solve pinned segment counts (only "
                         "backends advertising the segments axis do)");
}

PairSolution SolverBackend::solve_pair(double /*rho*/, std::size_t /*i*/,
                                       std::size_t /*j*/) const {
  throw std::logic_error(std::string("SolverBackend: backend '") + name() +
                         "' has no per-pair solve (capabilities().pair_table "
                         "is false)");
}

BiCritSolution SolverBackend::solve_report(double /*rho*/,
                                           SpeedPolicy /*policy*/) const {
  throw std::logic_error(std::string("SolverBackend: backend '") + name() +
                         "' has no speed-pair table (capabilities()."
                         "pair_table is false)");
}

PanelPoint SolverBackend::solve_panel_point(SweepAxis axis, double x,
                                            double panel_rho,
                                            bool min_rho_fallback) const {
  PanelPoint point;
  point.x = x;
  if (axis == SweepAxis::kSegments) {
    // x IS the pinned count; the panel's own bound applies throughout.
    const auto m = static_cast<unsigned>(std::floor(x + 0.5));
    point.primary = solve_segments(panel_rho, m);
    point.baseline = solve_baseline(panel_rho, min_rho_fallback);
    return point;
  }
  const double rho =
      axis == SweepAxis::kPerformanceBound ? x : panel_rho;
  point.primary = solve(rho, SpeedPolicy::kTwoSpeed, min_rho_fallback);
  point.baseline = solve_baseline(rho, min_rho_fallback);
  return point;
}

void SolverBackend::solve_rho_batch(const double* rhos, std::size_t count,
                                    bool min_rho_fallback,
                                    PanelPoint* out) const {
  // The reference semantics of every batched override: the pointwise
  // per-grid-point kernel, one bound at a time.
  for (std::size_t i = 0; i < count; ++i) {
    out[i] = solve_panel_point(SweepAxis::kPerformanceBound, rhos[i],
                               rhos[i], min_rho_fallback);
  }
}

PanelPoint SolverBackend::solve_panel_point_seeded(
    SweepAxis axis, double x, double panel_rho, bool min_rho_fallback,
    PairSeedTable* /*harvest*/) const {
  // Backends without a warm-start chain have nothing to harvest.
  return solve_panel_point(axis, x, panel_rho, min_rho_fallback);
}

namespace {

/// The six figure axes in composite order — what every pair backend
/// sweeps.
std::vector<SweepAxis> pair_axes() {
  return {SweepAxis::kCheckpointTime, SweepAxis::kVerificationTime,
          SweepAxis::kErrorRate,      SweepAxis::kPerformanceBound,
          SweepAxis::kIdlePower,      SweepAxis::kIoPower};
}

/// Shared fallback step of every pair backend's solve: degrade an
/// infeasible best to the backend's min-ρ policy when asked to — the exact
/// logic the historical SolverContext::best and panel kernels applied, so
/// panel and solve paths cannot diverge.
Solution pair_solution_with_fallback(PairSolution best,
                                     const PairSolution& fallback,
                                     bool min_rho_fallback) {
  if (!best.feasible && min_rho_fallback && fallback.feasible) {
    return Solution::from_pair(fallback, /*used_fallback=*/true);
  }
  return Solution::from_pair(std::move(best));
}

}  // namespace

// ---------------------------------------------------------------------
// ClosedFormBackend
// ---------------------------------------------------------------------

ClosedFormBackend::ClosedFormBackend(ModelParams params, EvalMode mode,
                                     const PairSeedTable* seeds)
    : solver_(std::move(params)), mode_(mode) {
  if (seeds != nullptr && mode_ == EvalMode::kExactOptimize) {
    // Only the numeric mode brackets anything a seed could steer; holding
    // seeds in other modes would just misleadingly advertise state.
    seeds_ = *seeds;
  }
  capabilities_.kind = SolutionKind::kPair;
  capabilities_.axes = pair_axes();
  // ρ sweeps leave the model untouched, so one solver serves the panel;
  // every other axis rebuilds the model per point (rebind).
  capabilities_.shared_axes = {SweepAxis::kPerformanceBound};
  capabilities_.pair_table = true;
  capabilities_.min_rho_fallback = true;
  capabilities_.version = "cf-1";
  switch (mode_) {
    case EvalMode::kFirstOrder:
      capabilities_.cost_weight = 1.0;
      // The whole first-order pair table evaluates in one SIMD sweep of
      // the SoA cache, so ρ grids go through solve_rho_batch.
      capabilities_.batched_rho = true;
      capabilities_.validity =
          "first-order closed forms; meaningful inside the paper's 5.2 "
          "validity window (sigma2 <= 2 sigma1 (1 + s/f))";
      break;
    case EvalMode::kExactEvaluation:
      capabilities_.cost_weight = 2.0;
      capabilities_.validity =
          "Theorem 1 pattern size, overheads re-evaluated with the exact "
          "expectations; pattern choice still first-order";
      break;
    case EvalMode::kExactOptimize:
      capabilities_.cost_weight = 6.0;
      // The per-bound bracketing accepts per-pair seeds, so model-axis
      // panels chain warm starts along their grid.
      capabilities_.warm_start_chain = true;
      capabilities_.validity =
          "full per-bound numeric optimization of the exact model; valid "
          "for any error rates (prefer the cached exact-opt backend for "
          "repeated bounds)";
      break;
  }
}

const char* to_mode_name(EvalMode mode) noexcept {
  switch (mode) {
    case EvalMode::kFirstOrder:
      return "first-order";
    case EvalMode::kExactEvaluation:
      return "exact-eval";
    case EvalMode::kExactOptimize:
      return "exact-opt";
  }
  return "first-order";
}

const char* ClosedFormBackend::name() const noexcept {
  return to_mode_name(mode_);
}

void ClosedFormBackend::prepare(const ParallelFor& /*parallel_build*/) {
  // Construction already paid the O(K²) expansions — nothing deferred.
}

Solution ClosedFormBackend::solve(double rho, SpeedPolicy policy,
                                  bool min_rho_fallback) const {
  // The fallback is derived on demand, only for infeasible bounds — the
  // common feasible point never pays for it (rebind() builds one of
  // these per grid point on model-axis panels, so ctor leanness is a hot
  // path property). min_rho_solution is a pure const read of the cached
  // expansions, so sharing one backend across workers stays safe.
  PairSolution best =
      solver_.solve(rho, policy, mode_, seeds_.empty() ? nullptr : &seeds_)
          .best;
  if (!best.feasible && min_rho_fallback) {
    PairSolution fallback = solver_.min_rho_solution(policy);
    if (fallback.feasible) {
      return Solution::from_pair(std::move(fallback),
                                 /*used_fallback=*/true);
    }
  }
  return Solution::from_pair(std::move(best));
}

Solution ClosedFormBackend::solve_baseline(double rho,
                                           bool min_rho_fallback) const {
  return solve(rho, SpeedPolicy::kSingleSpeed, min_rho_fallback);
}

Solution ClosedFormBackend::min_rho(SpeedPolicy policy) const {
  return Solution::from_pair(solver_.min_rho_solution(policy));
}

PairSolution ClosedFormBackend::solve_pair(double rho, std::size_t i,
                                           std::size_t j) const {
  return solver_.solve_pair_by_index(rho, i, j, mode_);
}

BiCritSolution ClosedFormBackend::solve_report(double rho,
                                               SpeedPolicy policy) const {
  return solver_.solve(rho, policy, mode_,
                       seeds_.empty() ? nullptr : &seeds_);
}

std::unique_ptr<SolverBackend> ClosedFormBackend::rebind(
    ModelParams params, const PairSeedTable* seeds) const {
  return std::make_unique<ClosedFormBackend>(std::move(params), mode_,
                                             seeds);
}

void ClosedFormBackend::solve_rho_batch(const double* rhos,
                                        std::size_t count,
                                        bool min_rho_fallback,
                                        PanelPoint* out) const {
  if (mode_ != EvalMode::kFirstOrder) {
    // Only the first-order evaluation is expressible as a pure SoA sweep;
    // the exact-evaluation/optimization modes keep the pointwise loop.
    SolverBackend::solve_rho_batch(rhos, count, min_rho_fallback, out);
    return;
  }
  const ExpansionSoA& table = solver_.expansion_table();
  const kernels::KernelOps& ops = kernels::active_ops();
  const double w_cap = solver_.numeric_options().w_cap;
  const std::size_t k = table.k;
  AlignedDoubles w_opt(table.padded);
  AlignedDoubles w_min(table.padded);
  AlignedDoubles w_max(table.padded);
  AlignedDoubles energy(table.padded);
  std::vector<unsigned char> feasible(table.padded);
  // Winner selection stays scalar and in-order: the strict < below is the
  // same tie-break BiCritSolver::solve applies, so the winning slot — and
  // therefore every bit of the reconstructed solution — matches the
  // pointwise path. Reductions across SIMD lanes would reorder ties.
  // The min-ρ fallback is ρ-independent, so the whole batch shares one
  // lazily-built copy per policy — the same bits min_rho_solution returns
  // on every per-point call (the solver is immutable and deterministic).
  std::optional<Solution> fallbacks[2];
  const auto fallback_for = [&](SpeedPolicy policy) {
    std::optional<Solution>& cached =
        fallbacks[policy == SpeedPolicy::kSingleSpeed ? 1 : 0];
    if (!cached) {
      PairSolution infeasible_best;  // solve()'s empty-scan outcome
      cached = pair_solution_with_fallback(std::move(infeasible_best),
                                           solver_.min_rho_solution(policy),
                                           min_rho_fallback);
    }
    return *cached;
  };
  // Winner reconstruction is a pure read-out of the batch outputs: every
  // field below is the expression solve_cached_pair evaluates on the same
  // inputs (the kernel arrays are bit-identical to its intermediates by
  // the eval_pairs contract), so no pair is ever solved twice.
  const auto winner = [&](std::size_t slot, SpeedPolicy policy) {
    if (slot >= table.count) return fallback_for(policy);
    PairSolution sol;
    sol.sigma1 = table.sigma1[slot];
    sol.sigma2 = table.sigma2[slot];
    sol.sigma1_index = static_cast<int>(slot / k);
    sol.sigma2_index = static_cast<int>(slot % k);
    sol.feasible = true;  // winners come from the feasible scan below
    sol.first_order_valid = true;  // feasible ⇒ valid (eval gates on it)
    sol.rho_min = table.rho_min[slot];
    sol.w_opt = w_opt[slot];
    sol.w_min = w_min[slot];
    sol.w_max = w_max[slot];
    // w_energy with solve_cached_pair's finite fallbacks: the cached `we`
    // column is +inf exactly when there is no interior minimum, and both
    // the no-minimum and the non-finite-argmin branches resolve to
    // finite(w_max) ? w_max : w_cap — one isfinite covers them all.
    sol.w_energy = std::isfinite(table.we[slot])
                       ? table.we[slot]
                       : (std::isfinite(sol.w_max) ? sol.w_max : w_cap);
    sol.energy_overhead = energy[slot];
    sol.time_overhead = table.time_expansion(slot).evaluate(sol.w_opt);
    return Solution::from_pair(sol);
  };
  for (std::size_t p = 0; p < count; ++p) {
    const double rho = rhos[p];
    ops.eval_pairs(table, rho, w_cap, w_opt.data(), w_min.data(),
                   w_max.data(), energy.data(), feasible.data());
    std::size_t best_two = table.count;
    std::size_t best_single = table.count;
    double energy_two = std::numeric_limits<double>::infinity();
    double energy_single = std::numeric_limits<double>::infinity();
    for (std::size_t s = 0; s < table.count; ++s) {
      if (feasible[s] != 0 && energy[s] < energy_two) {
        energy_two = energy[s];
        best_two = s;
      }
    }
    // Single-speed candidates are the diagonal slots i·(K+1); walking them
    // directly in ascending order visits the same slots with the same
    // strict < as the full scan's s/k == s%k filter did.
    for (std::size_t i = 0; i < k; ++i) {
      const std::size_t s = i * (k + 1);
      if (feasible[s] != 0 && energy[s] < energy_single) {
        energy_single = energy[s];
        best_single = s;
      }
    }
    PanelPoint point;
    point.x = rho;
    point.primary = winner(best_two, SpeedPolicy::kTwoSpeed);
    point.baseline = winner(best_single, SpeedPolicy::kSingleSpeed);
    out[p] = point;
  }
}

PanelPoint ClosedFormBackend::solve_panel_point_seeded(
    SweepAxis axis, double x, double panel_rho, bool min_rho_fallback,
    PairSeedTable* harvest) const {
  if (axis == SweepAxis::kSegments) {
    return solve_panel_point(axis, x, panel_rho, min_rho_fallback);
  }
  const double rho = axis == SweepAxis::kPerformanceBound ? x : panel_rho;
  // ONE report serves both policies and the harvest: every pair is solved
  // once (with this backend's seeds, when chained). The single-speed
  // baseline is the in-order diagonal scan of the same table — identical
  // candidates and the same strict-< selection as a second kSingleSpeed
  // solve, so the same bits at half the pair solves.
  const BiCritSolution report = solve_report(rho, SpeedPolicy::kTwoSpeed);
  PanelPoint point;
  point.x = x;
  point.primary = pair_solution_with_fallback(
      report.best, solver_.min_rho_solution(SpeedPolicy::kTwoSpeed),
      min_rho_fallback);
  PairSolution single;
  double best_energy = std::numeric_limits<double>::infinity();
  for (const PairSolution& pair : report.pairs) {
    if (pair.sigma1_index != pair.sigma2_index) continue;
    if (pair.feasible && pair.energy_overhead < best_energy) {
      best_energy = pair.energy_overhead;
      single = pair;
    }
  }
  point.baseline = pair_solution_with_fallback(
      std::move(single), solver_.min_rho_solution(SpeedPolicy::kSingleSpeed),
      min_rho_fallback);
  if (harvest != nullptr) {
    const std::size_t k = solver_.params().speeds.size();
    harvest->k = k;
    harvest->w_opt.assign(k * k, 0.0);
    for (const PairSolution& pair : report.pairs) {
      if (pair.feasible && pair.sigma1_index >= 0 && pair.sigma2_index >= 0) {
        harvest->w_opt[static_cast<std::size_t>(pair.sigma1_index) * k +
                       static_cast<std::size_t>(pair.sigma2_index)] =
            pair.w_opt;
      }
    }
  }
  return point;
}

// ---------------------------------------------------------------------
// ExactOptBackend
// ---------------------------------------------------------------------

ExactOptBackend::ExactOptBackend(ModelParams params)
    : params_(std::move(params)) {
  // Everything prepare() or a solve could reject is rejected here — never
  // inside a pool worker.
  params_.validate();
  capabilities_.kind = SolutionKind::kPair;
  capabilities_.axes = pair_axes();
  capabilities_.shared_axes = {SweepAxis::kPerformanceBound};
  capabilities_.pair_table = true;
  capabilities_.min_rho_fallback = true;
  capabilities_.cost_weight = 3.0;
  // ρ grids classify every cached pair in one kernel sweep of the flat
  // rho_min/time_at_we arrays; model axes rebind to the seeded numeric
  // path and chain warm starts along the grid.
  capabilities_.batched_rho = true;
  capabilities_.warm_start_chain = true;
  capabilities_.version = "exact-1";
  capabilities_.validity =
      "cached exact-model curve optima (warm-started from the first-order "
      "argmins where 5.2 holds); valid for any error rates";
}

const char* ExactOptBackend::name() const noexcept { return "exact-opt"; }

void ExactOptBackend::prepare(const ParallelFor& parallel_build) {
  if (!exact_) exact_.emplace(params_, parallel_build);
}

const ExactSolver& ExactOptBackend::exact() const {
  if (!exact_) {
    throw std::logic_error(
        "ExactOptBackend: prepare() must run before the first solve (the "
        "per-pair exact curve optimization is deferred)");
  }
  return *exact_;
}

Solution ExactOptBackend::solve(double rho, SpeedPolicy policy,
                                bool min_rho_fallback) const {
  const ExactSolver& solver = exact();
  return pair_solution_with_fallback(solver.solve(rho, policy).best,
                                     solver.min_rho_solution(policy),
                                     min_rho_fallback);
}

Solution ExactOptBackend::solve_baseline(double rho,
                                         bool min_rho_fallback) const {
  return solve(rho, SpeedPolicy::kSingleSpeed, min_rho_fallback);
}

Solution ExactOptBackend::min_rho(SpeedPolicy policy) const {
  return Solution::from_pair(exact().min_rho_solution(policy));
}

PairSolution ExactOptBackend::solve_pair(double rho, std::size_t i,
                                         std::size_t j) const {
  return exact().solve_pair_by_index(rho, i, j);
}

BiCritSolution ExactOptBackend::solve_report(double rho,
                                             SpeedPolicy policy) const {
  return exact().solve(rho, policy);
}

std::unique_ptr<SolverBackend> ExactOptBackend::rebind(
    ModelParams params, const PairSeedTable* seeds) const {
  // Per-point panels on model axes keep the historical per-bound numeric
  // path (one bound per point makes the cached curve structure useless);
  // the seeds — harvested from the neighboring grid point — are what keep
  // that path cheap along a chained panel.
  return std::make_unique<ClosedFormBackend>(std::move(params),
                                             EvalMode::kExactOptimize,
                                             seeds);
}

void ExactOptBackend::solve_rho_batch(const double* rhos, std::size_t count,
                                      bool min_rho_fallback,
                                      PanelPoint* out) const {
  const ExactSolver& solver = exact();
  const std::vector<double>& rho_mins = solver.rho_mins();
  const std::vector<double>& times_at_we = solver.times_at_we();
  const kernels::KernelOps& ops = kernels::active_ops();
  std::vector<unsigned char> cls(rho_mins.size());
  // The min-ρ fallbacks are ρ-independent: one copy per policy serves the
  // whole batch with the bits every per-point call would return.
  const PairSolution fallback_two =
      solver.min_rho_solution(SpeedPolicy::kTwoSpeed);
  const PairSolution fallback_single =
      solver.min_rho_solution(SpeedPolicy::kSingleSpeed);
  for (std::size_t p = 0; p < count; ++p) {
    const double rho = rhos[p];
    // One classify sweep answers both policies' per-pair branch tests;
    // the classified scans below are bit-identical to solve(rho, ·).best.
    ops.classify_pairs(rho_mins.data(), times_at_we.data(), rho_mins.size(),
                       rho, cls.data());
    PanelPoint point;
    point.x = rho;
    point.primary = pair_solution_with_fallback(
        solver.solve_classified(rho, SpeedPolicy::kTwoSpeed, cls.data()),
        fallback_two, min_rho_fallback);
    point.baseline = pair_solution_with_fallback(
        solver.solve_classified(rho, SpeedPolicy::kSingleSpeed, cls.data()),
        fallback_single, min_rho_fallback);
    out[p] = point;
  }
}

// ---------------------------------------------------------------------
// InterleavedBackend
// ---------------------------------------------------------------------

InterleavedBackend::InterleavedBackend(ModelParams params,
                                       unsigned max_segments,
                                       unsigned fixed_segments)
    : params_(std::move(params)),
      max_segments_(max_segments),
      fixed_segments_(fixed_segments) {
  // Everything the deferred prepare() (and pool workers) would reject is
  // rejected here instead — the InterleavedSolver preconditions included,
  // so prepare() cannot throw later.
  params_.validate();
  if (params_.lambda_failstop > 0.0) {
    throw std::invalid_argument(
        "InterleavedBackend: interleaved mode requires lambda_failstop = 0 "
        "(the segmented closed forms are derived for silent errors)");
  }
  if (max_segments_ == 0) {
    throw std::invalid_argument(
        "InterleavedBackend: need at least one segment");
  }
  if (fixed_segments_ > max_segments_) {
    throw std::invalid_argument(
        "InterleavedBackend: fixed_segments must be in [0, max_segments]");
  }
  capabilities_.kind = SolutionKind::kInterleaved;
  capabilities_.axes = {SweepAxis::kPerformanceBound, SweepAxis::kSegments};
  // Both axes leave the model untouched: one prepared solver serves every
  // grid point of either panel.
  capabilities_.shared_axes = capabilities_.axes;
  capabilities_.pair_table = false;
  capabilities_.min_rho_fallback = false;
  capabilities_.cost_weight = 8.0;
  // ρ grids classify every cached (pair, m) slot in one kernel sweep.
  capabilities_.batched_rho = true;
  capabilities_.max_segments = max_segments_;
  capabilities_.version = "il-1";
  capabilities_.validity =
      "exact segmented expectations (silent errors only, lambda_f = 0); "
      "m = 1 is the paper's own pattern";
}

const char* InterleavedBackend::name() const noexcept {
  return "interleaved";
}

void InterleavedBackend::prepare(const ParallelFor& /*parallel_build*/) {
  if (!solver_) solver_.emplace(params_, max_segments_);
}

const InterleavedSolver& InterleavedBackend::solver() const {
  if (!solver_) {
    throw std::logic_error(
        "InterleavedBackend: prepare() must run before the first solve "
        "(the per-(pair, m) curve optimization is deferred)");
  }
  return *solver_;
}

Solution InterleavedBackend::solve(double rho, SpeedPolicy /*policy*/,
                                   bool /*min_rho_fallback*/) const {
  // Interleaved mode enumerates every pair (no single-speed variant) and
  // has no min-ρ fallback; both arguments are accepted for interface
  // uniformity and ignored, as the solve path always has.
  const InterleavedSolver& cached = solver();
  return Solution::from_interleaved(
      fixed_segments_ > 0 ? cached.solve_segments(rho, fixed_segments_)
                          : cached.solve(rho));
}

Solution InterleavedBackend::solve_baseline(double rho,
                                            bool /*min_rho_fallback*/) const {
  return Solution::from_interleaved(solver().solve_segments(rho, 1));
}

Solution InterleavedBackend::solve_segments(double rho,
                                            unsigned segments) const {
  return Solution::from_interleaved(solver().solve_segments(rho, segments));
}

Solution InterleavedBackend::min_rho(SpeedPolicy /*policy*/) const {
  // No min-ρ fallback in interleaved mode: an infeasible Solution.
  Solution out;
  out.kind = SolutionKind::kInterleaved;
  return out;
}

std::unique_ptr<SolverBackend> InterleavedBackend::rebind(
    ModelParams params, const PairSeedTable* /*seeds*/) const {
  // No warm-start chain: the interleaved minimizations stay cold so the
  // cached curve data (and the golden fixtures over it) never move.
  return std::make_unique<InterleavedBackend>(std::move(params),
                                              max_segments_,
                                              fixed_segments_);
}

void InterleavedBackend::solve_rho_batch(const double* rhos,
                                         std::size_t count,
                                         bool /*min_rho_fallback*/,
                                         PanelPoint* out) const {
  const InterleavedSolver& cached = solver();
  const std::vector<double>& rho_mins = cached.rho_mins();
  const std::vector<double>& times_at_we = cached.times_at_we();
  const kernels::KernelOps& ops = kernels::active_ops();
  std::vector<unsigned char> cls(rho_mins.size());
  for (std::size_t p = 0; p < count; ++p) {
    const double rho = rhos[p];
    // One classify sweep over every (σ1, σ2, m) slot serves the primary
    // search and the m = 1 baseline of this grid point.
    ops.classify_pairs(rho_mins.data(), times_at_we.data(), rho_mins.size(),
                       rho, cls.data());
    PanelPoint point;
    point.x = rho;
    point.primary = Solution::from_interleaved(
        cached.solve_classified(rho, fixed_segments_, cls.data()));
    point.baseline = Solution::from_interleaved(
        cached.solve_classified(rho, 1, cls.data()));
    out[p] = point;
  }
}

// ---------------------------------------------------------------------

std::unique_ptr<SolverBackend> make_mode_backend(ModelParams params,
                                                 EvalMode mode) {
  if (mode == EvalMode::kExactOptimize) {
    return std::make_unique<ExactOptBackend>(std::move(params));
  }
  return std::make_unique<ClosedFormBackend>(std::move(params), mode);
}

}  // namespace rexspeed::core
