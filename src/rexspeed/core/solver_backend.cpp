#include "rexspeed/core/solver_backend.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

namespace rexspeed::core {

Solution Solution::from_pair(PairSolution solution, bool used_fallback) {
  Solution out;
  out.kind = SolutionKind::kPair;
  out.pair = std::move(solution);
  out.used_fallback = used_fallback;
  return out;
}

Solution Solution::from_interleaved(InterleavedSolution solution) {
  Solution out;
  out.kind = SolutionKind::kInterleaved;
  out.interleaved = solution;
  return out;
}

double PanelPoint::energy_saving() const noexcept {
  if (!primary.feasible() || !baseline.feasible() ||
      !(baseline.energy_overhead() > 0.0)) {
    return 0.0;
  }
  return 1.0 - primary.energy_overhead() / baseline.energy_overhead();
}

bool BackendCapabilities::supports(SweepAxis axis) const noexcept {
  return std::find(axes.begin(), axes.end(), axis) != axes.end();
}

bool BackendCapabilities::shares_panel_solver(SweepAxis axis) const noexcept {
  return std::find(shared_axes.begin(), shared_axes.end(), axis) !=
         shared_axes.end();
}

Solution SolverBackend::solve_segments(double /*rho*/,
                                       unsigned /*segments*/) const {
  throw std::logic_error(std::string("SolverBackend: backend '") + name() +
                         "' does not solve pinned segment counts (only "
                         "backends advertising the segments axis do)");
}

PairSolution SolverBackend::solve_pair(double /*rho*/, std::size_t /*i*/,
                                       std::size_t /*j*/) const {
  throw std::logic_error(std::string("SolverBackend: backend '") + name() +
                         "' has no per-pair solve (capabilities().pair_table "
                         "is false)");
}

BiCritSolution SolverBackend::solve_report(double /*rho*/,
                                           SpeedPolicy /*policy*/) const {
  throw std::logic_error(std::string("SolverBackend: backend '") + name() +
                         "' has no speed-pair table (capabilities()."
                         "pair_table is false)");
}

PanelPoint SolverBackend::solve_panel_point(SweepAxis axis, double x,
                                            double panel_rho,
                                            bool min_rho_fallback) const {
  PanelPoint point;
  point.x = x;
  if (axis == SweepAxis::kSegments) {
    // x IS the pinned count; the panel's own bound applies throughout.
    const auto m = static_cast<unsigned>(std::floor(x + 0.5));
    point.primary = solve_segments(panel_rho, m);
    point.baseline = solve_baseline(panel_rho, min_rho_fallback);
    return point;
  }
  const double rho =
      axis == SweepAxis::kPerformanceBound ? x : panel_rho;
  point.primary = solve(rho, SpeedPolicy::kTwoSpeed, min_rho_fallback);
  point.baseline = solve_baseline(rho, min_rho_fallback);
  return point;
}

namespace {

/// The six figure axes in composite order — what every pair backend
/// sweeps.
std::vector<SweepAxis> pair_axes() {
  return {SweepAxis::kCheckpointTime, SweepAxis::kVerificationTime,
          SweepAxis::kErrorRate,      SweepAxis::kPerformanceBound,
          SweepAxis::kIdlePower,      SweepAxis::kIoPower};
}

/// Shared fallback step of every pair backend's solve: degrade an
/// infeasible best to the backend's min-ρ policy when asked to — the exact
/// logic the historical SolverContext::best and panel kernels applied, so
/// panel and solve paths cannot diverge.
Solution pair_solution_with_fallback(PairSolution best,
                                     const PairSolution& fallback,
                                     bool min_rho_fallback) {
  if (!best.feasible && min_rho_fallback && fallback.feasible) {
    return Solution::from_pair(fallback, /*used_fallback=*/true);
  }
  return Solution::from_pair(std::move(best));
}

}  // namespace

// ---------------------------------------------------------------------
// ClosedFormBackend
// ---------------------------------------------------------------------

ClosedFormBackend::ClosedFormBackend(ModelParams params, EvalMode mode)
    : solver_(std::move(params)), mode_(mode) {
  capabilities_.kind = SolutionKind::kPair;
  capabilities_.axes = pair_axes();
  // ρ sweeps leave the model untouched, so one solver serves the panel;
  // every other axis rebuilds the model per point (rebind).
  capabilities_.shared_axes = {SweepAxis::kPerformanceBound};
  capabilities_.pair_table = true;
  capabilities_.min_rho_fallback = true;
  switch (mode_) {
    case EvalMode::kFirstOrder:
      capabilities_.cost_weight = 1.0;
      capabilities_.validity =
          "first-order closed forms; meaningful inside the paper's 5.2 "
          "validity window (sigma2 <= 2 sigma1 (1 + s/f))";
      break;
    case EvalMode::kExactEvaluation:
      capabilities_.cost_weight = 2.0;
      capabilities_.validity =
          "Theorem 1 pattern size, overheads re-evaluated with the exact "
          "expectations; pattern choice still first-order";
      break;
    case EvalMode::kExactOptimize:
      capabilities_.cost_weight = 6.0;
      capabilities_.validity =
          "full per-bound numeric optimization of the exact model; valid "
          "for any error rates (prefer the cached exact-opt backend for "
          "repeated bounds)";
      break;
  }
}

const char* to_mode_name(EvalMode mode) noexcept {
  switch (mode) {
    case EvalMode::kFirstOrder:
      return "first-order";
    case EvalMode::kExactEvaluation:
      return "exact-eval";
    case EvalMode::kExactOptimize:
      return "exact-opt";
  }
  return "first-order";
}

const char* ClosedFormBackend::name() const noexcept {
  return to_mode_name(mode_);
}

void ClosedFormBackend::prepare(const ParallelFor& /*parallel_build*/) {
  // Construction already paid the O(K²) expansions — nothing deferred.
}

Solution ClosedFormBackend::solve(double rho, SpeedPolicy policy,
                                  bool min_rho_fallback) const {
  // The fallback is derived on demand, only for infeasible bounds — the
  // common feasible point never pays for it (rebind() builds one of
  // these per grid point on model-axis panels, so ctor leanness is a hot
  // path property). min_rho_solution is a pure const read of the cached
  // expansions, so sharing one backend across workers stays safe.
  PairSolution best = solver_.solve(rho, policy, mode_).best;
  if (!best.feasible && min_rho_fallback) {
    PairSolution fallback = solver_.min_rho_solution(policy);
    if (fallback.feasible) {
      return Solution::from_pair(std::move(fallback),
                                 /*used_fallback=*/true);
    }
  }
  return Solution::from_pair(std::move(best));
}

Solution ClosedFormBackend::solve_baseline(double rho,
                                           bool min_rho_fallback) const {
  return solve(rho, SpeedPolicy::kSingleSpeed, min_rho_fallback);
}

Solution ClosedFormBackend::min_rho(SpeedPolicy policy) const {
  return Solution::from_pair(solver_.min_rho_solution(policy));
}

PairSolution ClosedFormBackend::solve_pair(double rho, std::size_t i,
                                           std::size_t j) const {
  return solver_.solve_pair_by_index(rho, i, j, mode_);
}

BiCritSolution ClosedFormBackend::solve_report(double rho,
                                               SpeedPolicy policy) const {
  return solver_.solve(rho, policy, mode_);
}

std::unique_ptr<SolverBackend> ClosedFormBackend::rebind(
    ModelParams params) const {
  return std::make_unique<ClosedFormBackend>(std::move(params), mode_);
}

// ---------------------------------------------------------------------
// ExactOptBackend
// ---------------------------------------------------------------------

ExactOptBackend::ExactOptBackend(ModelParams params)
    : params_(std::move(params)) {
  // Everything prepare() or a solve could reject is rejected here — never
  // inside a pool worker.
  params_.validate();
  capabilities_.kind = SolutionKind::kPair;
  capabilities_.axes = pair_axes();
  capabilities_.shared_axes = {SweepAxis::kPerformanceBound};
  capabilities_.pair_table = true;
  capabilities_.min_rho_fallback = true;
  capabilities_.cost_weight = 3.0;
  capabilities_.validity =
      "cached exact-model curve optima (warm-started from the first-order "
      "argmins where 5.2 holds); valid for any error rates";
}

const char* ExactOptBackend::name() const noexcept { return "exact-opt"; }

void ExactOptBackend::prepare(const ParallelFor& parallel_build) {
  if (!exact_) exact_.emplace(params_, parallel_build);
}

const ExactSolver& ExactOptBackend::exact() const {
  if (!exact_) {
    throw std::logic_error(
        "ExactOptBackend: prepare() must run before the first solve (the "
        "per-pair exact curve optimization is deferred)");
  }
  return *exact_;
}

Solution ExactOptBackend::solve(double rho, SpeedPolicy policy,
                                bool min_rho_fallback) const {
  const ExactSolver& solver = exact();
  return pair_solution_with_fallback(solver.solve(rho, policy).best,
                                     solver.min_rho_solution(policy),
                                     min_rho_fallback);
}

Solution ExactOptBackend::solve_baseline(double rho,
                                         bool min_rho_fallback) const {
  return solve(rho, SpeedPolicy::kSingleSpeed, min_rho_fallback);
}

Solution ExactOptBackend::min_rho(SpeedPolicy policy) const {
  return Solution::from_pair(exact().min_rho_solution(policy));
}

PairSolution ExactOptBackend::solve_pair(double rho, std::size_t i,
                                         std::size_t j) const {
  return exact().solve_pair_by_index(rho, i, j);
}

BiCritSolution ExactOptBackend::solve_report(double rho,
                                             SpeedPolicy policy) const {
  return exact().solve(rho, policy);
}

std::unique_ptr<SolverBackend> ExactOptBackend::rebind(
    ModelParams params) const {
  // Per-point panels on model axes keep the historical per-bound numeric
  // path (one bound per point makes the cached curve structure useless).
  return std::make_unique<ClosedFormBackend>(std::move(params),
                                             EvalMode::kExactOptimize);
}

// ---------------------------------------------------------------------
// InterleavedBackend
// ---------------------------------------------------------------------

InterleavedBackend::InterleavedBackend(ModelParams params,
                                       unsigned max_segments,
                                       unsigned fixed_segments)
    : params_(std::move(params)),
      max_segments_(max_segments),
      fixed_segments_(fixed_segments) {
  // Everything the deferred prepare() (and pool workers) would reject is
  // rejected here instead — the InterleavedSolver preconditions included,
  // so prepare() cannot throw later.
  params_.validate();
  if (params_.lambda_failstop > 0.0) {
    throw std::invalid_argument(
        "InterleavedBackend: interleaved mode requires lambda_failstop = 0 "
        "(the segmented closed forms are derived for silent errors)");
  }
  if (max_segments_ == 0) {
    throw std::invalid_argument(
        "InterleavedBackend: need at least one segment");
  }
  if (fixed_segments_ > max_segments_) {
    throw std::invalid_argument(
        "InterleavedBackend: fixed_segments must be in [0, max_segments]");
  }
  capabilities_.kind = SolutionKind::kInterleaved;
  capabilities_.axes = {SweepAxis::kPerformanceBound, SweepAxis::kSegments};
  // Both axes leave the model untouched: one prepared solver serves every
  // grid point of either panel.
  capabilities_.shared_axes = capabilities_.axes;
  capabilities_.pair_table = false;
  capabilities_.min_rho_fallback = false;
  capabilities_.cost_weight = 8.0;
  capabilities_.max_segments = max_segments_;
  capabilities_.validity =
      "exact segmented expectations (silent errors only, lambda_f = 0); "
      "m = 1 is the paper's own pattern";
}

const char* InterleavedBackend::name() const noexcept {
  return "interleaved";
}

void InterleavedBackend::prepare(const ParallelFor& /*parallel_build*/) {
  if (!solver_) solver_.emplace(params_, max_segments_);
}

const InterleavedSolver& InterleavedBackend::solver() const {
  if (!solver_) {
    throw std::logic_error(
        "InterleavedBackend: prepare() must run before the first solve "
        "(the per-(pair, m) curve optimization is deferred)");
  }
  return *solver_;
}

Solution InterleavedBackend::solve(double rho, SpeedPolicy /*policy*/,
                                   bool /*min_rho_fallback*/) const {
  // Interleaved mode enumerates every pair (no single-speed variant) and
  // has no min-ρ fallback; both arguments are accepted for interface
  // uniformity and ignored, as the solve path always has.
  const InterleavedSolver& cached = solver();
  return Solution::from_interleaved(
      fixed_segments_ > 0 ? cached.solve_segments(rho, fixed_segments_)
                          : cached.solve(rho));
}

Solution InterleavedBackend::solve_baseline(double rho,
                                            bool /*min_rho_fallback*/) const {
  return Solution::from_interleaved(solver().solve_segments(rho, 1));
}

Solution InterleavedBackend::solve_segments(double rho,
                                            unsigned segments) const {
  return Solution::from_interleaved(solver().solve_segments(rho, segments));
}

Solution InterleavedBackend::min_rho(SpeedPolicy /*policy*/) const {
  // No min-ρ fallback in interleaved mode: an infeasible Solution.
  Solution out;
  out.kind = SolutionKind::kInterleaved;
  return out;
}

std::unique_ptr<SolverBackend> InterleavedBackend::rebind(
    ModelParams params) const {
  return std::make_unique<InterleavedBackend>(std::move(params),
                                              max_segments_,
                                              fixed_segments_);
}

// ---------------------------------------------------------------------

std::unique_ptr<SolverBackend> make_mode_backend(ModelParams params,
                                                 EvalMode mode) {
  if (mode == EvalMode::kExactOptimize) {
    return std::make_unique<ExactOptBackend>(std::move(params));
  }
  return std::make_unique<ClosedFormBackend>(std::move(params), mode);
}

}  // namespace rexspeed::core
