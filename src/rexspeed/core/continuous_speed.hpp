#pragma once

#include "rexspeed/core/model_params.hpp"
#include "rexspeed/core/numeric_optimizer.hpp"

namespace rexspeed::core {

/// Continuous-speed relaxation of BiCrit: instead of restricting (σ1, σ2)
/// to the processor's discrete DVFS ladder, optimize over the full
/// rectangle [σ_min, σ_max]². The paper's model never needs this (real
/// processors expose a handful of operating points), but the relaxation
/// bounds from below what *any* ladder could achieve — the gap to the
/// discrete optimum is the price of DVFS granularity, quantified by
/// `bench_ablation_continuous`.
///
/// Implementation: Nelder–Mead over (σ1, σ2) with the exact per-pair
/// solution (optimize_exact_pair) as the inner objective; infeasible pairs
/// are assigned +inf. The objective is piecewise-smooth and unimodal in
/// practice; multi-start from the discrete optimum plus the rectangle
/// corners guards against local traps.
struct ContinuousSolution {
  bool feasible = false;
  double sigma1 = 0.0;
  double sigma2 = 0.0;
  double w_opt = 0.0;
  double energy_overhead = 0.0;
  double time_overhead = 0.0;
};

struct ContinuousOptions {
  /// Speed bounds; defaults (0 = derive) use the params' speed set range.
  double sigma_min = 0.0;
  double sigma_max = 0.0;
  /// Nelder–Mead iteration cap and simplex convergence tolerance.
  int max_iterations = 400;
  double tolerance = 1e-7;
  NumericOptions inner;
};

/// Solves the relaxed BiCrit problem. Throws std::invalid_argument on a
/// non-positive rho or an empty speed range.
[[nodiscard]] ContinuousSolution solve_continuous(
    const ModelParams& params, double rho,
    const ContinuousOptions& options = {});

}  // namespace rexspeed::core
