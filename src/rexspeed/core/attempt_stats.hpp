#pragma once

#include "rexspeed/core/model_params.hpp"

namespace rexspeed::core {

/// Closed-form statistics of the attempt process of one pattern: how often
/// the first execution fails, how many re-executions follow, how many
/// recoveries are paid. Exact for the paper's model (exponential arrivals,
/// first attempt at σ1, all re-executions at σ2): after the first attempt
/// the process is a geometric trial sequence with the σ2 failure
/// probability.
///
/// These are the analytical counterparts of the simulator's SimResult
/// counters, and the cross-check between the two is asserted in
/// tests/integration.
struct AttemptStats {
  /// Probability that an attempt at σ1 fails (either error source).
  double first_failure_probability = 0.0;
  /// Probability that a re-execution attempt at σ2 fails.
  double retry_failure_probability = 0.0;
  /// Expected attempts per pattern: 1 + q1/(1 − q2).
  double expected_attempts = 0.0;
  /// Expected recoveries per pattern (= expected failures).
  double expected_recoveries = 0.0;
};

/// Failure probability of a single attempt of `work` units at speed
/// `sigma`: 1 − e^{−(λf(W+V) + λsW)/σ}. Fail-stop errors are exposed over
/// compute + verification, silent errors over compute only (§2.2).
[[nodiscard]] double attempt_failure_probability(const ModelParams& params,
                                                 double work, double sigma);

/// Full attempt statistics for a (W, σ1, σ2) pattern.
[[nodiscard]] AttemptStats attempt_stats(const ModelParams& params,
                                         double work, double sigma1,
                                         double sigma2);

/// Probability that the pattern needs strictly more than `attempts`
/// attempts (attempts >= 1): q1 · q2^{attempts−1}.
[[nodiscard]] double probability_attempts_exceed(const ModelParams& params,
                                                 double work, double sigma1,
                                                 double sigma2,
                                                 unsigned attempts);

}  // namespace rexspeed::core
