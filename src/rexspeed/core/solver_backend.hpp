#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "rexspeed/core/bicrit_solver.hpp"
#include "rexspeed/core/exact_solver.hpp"
#include "rexspeed/core/interleaved.hpp"
#include "rexspeed/core/sweep_axis.hpp"

namespace rexspeed::core {

/// Which payload a unified Solution carries.
enum class SolutionKind {
  kPair,         ///< a speed-pair pattern (PairSolution)
  kInterleaved,  ///< a segmented pattern (InterleavedSolution)
};

/// The unified solve outcome every SolverBackend returns: a tagged struct
/// subsuming PairSolution (the closed-form and exact backends) and
/// InterleavedSolution (the segmented backend) behind one common
/// feasibility / speeds / overhead view, so engine drivers, panels and the
/// CLI report any backend's result without mode branches. The payload the
/// tag does not select is default-constructed.
struct Solution {
  SolutionKind kind = SolutionKind::kPair;
  PairSolution pair;                ///< kPair payload
  InterleavedSolution interleaved;  ///< kInterleaved payload
  /// True when the bound was unachievable and the backend degraded to its
  /// min-ρ best-effort policy (pair backends only; see
  /// SolverBackend::solve).
  bool used_fallback = false;

  // ---- the common view -------------------------------------------------
  [[nodiscard]] bool feasible() const noexcept {
    return kind == SolutionKind::kPair ? pair.feasible
                                       : interleaved.feasible;
  }
  [[nodiscard]] double sigma1() const noexcept {
    return kind == SolutionKind::kPair ? pair.sigma1 : interleaved.sigma1;
  }
  [[nodiscard]] double sigma2() const noexcept {
    return kind == SolutionKind::kPair ? pair.sigma2 : interleaved.sigma2;
  }
  [[nodiscard]] double w_opt() const noexcept {
    return kind == SolutionKind::kPair ? pair.w_opt : interleaved.w_opt;
  }
  [[nodiscard]] double energy_overhead() const noexcept {
    return kind == SolutionKind::kPair ? pair.energy_overhead
                                       : interleaved.energy_overhead;
  }
  [[nodiscard]] double time_overhead() const noexcept {
    return kind == SolutionKind::kPair ? pair.time_overhead
                                       : interleaved.time_overhead;
  }
  /// Verifications per pattern (1 for every pair solution — the paper's
  /// own pattern).
  [[nodiscard]] unsigned segments() const noexcept {
    return kind == SolutionKind::kPair ? 1u : interleaved.segments;
  }

  [[nodiscard]] static Solution from_pair(PairSolution solution,
                                          bool used_fallback = false);
  [[nodiscard]] static Solution from_interleaved(
      InterleavedSolution solution);
};

/// One x position of a figure panel, backend-agnostic: the backend's best
/// solution next to its baseline (single-speed for pair backends, m = 1
/// for the interleaved backend). The generic sweep::PanelSweep fills a
/// vector of these; typed figure/interleaved series are views over them.
struct PanelPoint {
  double x = 0.0;
  Solution primary;   ///< the backend's configured best
  Solution baseline;  ///< the backend's baseline policy

  /// Energy saved by the primary policy relative to the baseline, as a
  /// fraction of the baseline overhead (the paper's "up to 35%").
  [[nodiscard]] double energy_saving() const noexcept;
};

/// What a backend can do — the data the engine's generic drivers dispatch
/// on instead of mode-specific branches.
struct BackendCapabilities {
  SolutionKind kind = SolutionKind::kPair;
  /// Panel axes the backend sweeps, in composite (figure) order.
  std::vector<SweepAxis> axes;
  /// Axes where ONE prepared backend instance serves the whole panel (the
  /// swept value never touches the model parameters). Other supported
  /// axes rebuild a cheap per-point backend via rebind().
  std::vector<SweepAxis> shared_axes;
  /// True when solve_pair / solve_report (the §4.2 speed-pair tables) are
  /// available.
  bool pair_table = false;
  /// True when the backend has a min-ρ best-effort fallback policy.
  bool min_rho_fallback = false;
  /// True when solve_rho_batch beats the pointwise loop: the backend
  /// answers a whole ρ-grid in one batched call against its contiguous
  /// caches (the SIMD eval/classify kernels). The default implementation
  /// is always available; this flag is what makes a ρ panel route
  /// whole-grid instead of per-point.
  bool batched_rho = false;
  /// True when rebind() accepts a PairSeedTable and
  /// solve_panel_point_seeded harvests one — the warm-start chain the
  /// model-axis panels of the numeric exact mode thread along their grid.
  bool warm_start_chain = false;
  /// Relative cost of one panel-point solve, used by campaign-level
  /// scheduling to order long panels first. 1.0 = a first-order solve.
  double cost_weight = 1.0;
  /// Segment-count search cap (1 for pair backends) — the upper end of
  /// the kSegments axis.
  unsigned max_segments = 1;
  /// Human-readable validity-window note (e.g. the §5.2 first-order
  /// window), surfaced by documentation and diagnostics.
  std::string validity;
  /// Numeric-contract version tag, hashed into every persistent-cache key
  /// (store::panel_key / solve_key). Bump it whenever the backend's output
  /// bits can change — cached entries from older numerics then miss
  /// instead of resurfacing stale results.
  std::string version = "1";

  [[nodiscard]] bool supports(SweepAxis axis) const noexcept;
  [[nodiscard]] bool shares_panel_solver(SweepAxis axis) const noexcept;
};

/// Construction parallelizer hook shared by every backend's prepare():
/// call fn(i) for every i in [0, count), in any order, and return once all
/// completed. Empty means serial. Identical shape to
/// ExactSolver::ParallelFor (sweep::make_parallel_build adapts a pool).
using ParallelFor = std::function<void(
    std::size_t count, const std::function<void(std::size_t)>& fn)>;

/// The polymorphic solver interface behind every evaluation mode —
/// first-order closed forms, cached exact optimization, interleaved
/// verification, and whatever comes next. One backend is bound to one
/// ModelParams bundle and one mode configuration; the engine's registry
/// (engine::backend_registry) maps mode names to factories, so adding a
/// mode is one class plus one registration.
///
/// Lifecycle: construction validates everything and is cheap; prepare()
/// pays the backend's heavy ρ-independent cache (idempotent, cannot throw
/// on a constructed backend, optionally parallelized — the finished cache
/// is bit-identical any schedule); solves afterwards are cheap feasibility
/// math. needs_prepare() is true until prepare() ran for backends that
/// defer work (a backend whose construction is already complete returns
/// false throughout).
///
/// Thread-safety: after prepare(), a backend is immutable — every solve is
/// const and touches only the prepared caches, so one backend is safe to
/// share across ThreadPool workers without synchronization (the uniform
/// contract of BiCritSolver / ExactSolver / InterleavedSolver).
class SolverBackend {
 public:
  virtual ~SolverBackend() = default;

  /// The registry mode name ("first-order", "exact-opt", ...).
  [[nodiscard]] virtual const char* name() const noexcept = 0;
  [[nodiscard]] virtual const ModelParams& params() const noexcept = 0;
  [[nodiscard]] virtual const BackendCapabilities& capabilities()
      const noexcept = 0;

  /// True until prepare() has built the caches this backend defers.
  [[nodiscard]] virtual bool needs_prepare() const noexcept = 0;

  /// Builds the deferred caches (idempotent; no-op for backends that need
  /// none). `parallel_build`, when set, distributes independent cache
  /// entries; it is not retained. Must complete before the first solve on
  /// backends that defer; never throws on a constructed backend.
  virtual void prepare(const ParallelFor& parallel_build = {}) = 0;

  /// Best solution at bound `rho`. Pair backends honor `policy`; the
  /// interleaved backend enumerates every pair regardless (it has no
  /// single-speed variant). With `min_rho_fallback` set, an unachievable
  /// bound degrades to the backend's min-ρ best-effort policy when it has
  /// one (Solution::used_fallback reports this).
  [[nodiscard]] virtual Solution solve(
      double rho, SpeedPolicy policy = SpeedPolicy::kTwoSpeed,
      bool min_rho_fallback = false) const = 0;

  /// The panel baseline at bound `rho`: the single-speed optimum for pair
  /// backends, the m = 1 pattern for the interleaved backend.
  [[nodiscard]] virtual Solution solve_baseline(
      double rho, bool min_rho_fallback = false) const = 0;

  /// Best pattern pinned at exactly `segments` verifications. Only
  /// backends advertising the kSegments axis implement this; the default
  /// throws std::logic_error.
  [[nodiscard]] virtual Solution solve_segments(double rho,
                                                unsigned segments) const;

  /// The backend's min-ρ best-effort policy (infeasible Solution when
  /// capabilities().min_rho_fallback is false).
  [[nodiscard]] virtual Solution min_rho(SpeedPolicy policy) const = 0;

  /// Solves the speed pair at positions (i, j) of the speed set. Requires
  /// capabilities().pair_table; the default throws std::logic_error.
  [[nodiscard]] virtual PairSolution solve_pair(double rho, std::size_t i,
                                                std::size_t j) const;

  /// Full reporting solve (best + every candidate pair — the §4.2
  /// tables). Requires capabilities().pair_table; the default throws
  /// std::logic_error.
  [[nodiscard]] virtual BiCritSolution solve_report(
      double rho, SpeedPolicy policy = SpeedPolicy::kTwoSpeed) const;

  /// A cheap per-point backend over different model parameters, used by
  /// panels on non-shared axes (C, V, λ, Pidle, Pio rebuild the model per
  /// grid point by necessity). The result needs no prepare() beyond a
  /// no-op call and reproduces the historical per-point path of its mode
  /// bit for bit. `seeds`, when non-null, warm-starts the rebound
  /// backend's numeric bracketing (backends advertising warm_start_chain;
  /// others ignore it) — the chain link of a warm-started panel.
  [[nodiscard]] virtual std::unique_ptr<SolverBackend> rebind(
      ModelParams params, const PairSeedTable* seeds = nullptr) const = 0;

  /// One panel point on any supported axis, off this (already rebound for
  /// model axes) backend: x is the bound on the ρ axis, the pinned count
  /// on the segments axis, and recorded-only elsewhere. This is THE
  /// per-grid-point kernel every sweep and campaign task runs.
  [[nodiscard]] PanelPoint solve_panel_point(SweepAxis axis, double x,
                                             double panel_rho,
                                             bool min_rho_fallback) const;

  /// A whole ρ-grid in one call: out[i] is the panel point at bound
  /// rhos[i], bit-identical to calling solve_panel_point per point. The
  /// default IS that pointwise loop; backends advertising batched_rho
  /// override it to stream the grid against their contiguous caches
  /// through the active SIMD kernel tier (`out` must hold `count`
  /// entries). This is how sweep::PanelSweep hands a shared-backend ρ
  /// panel to the backend in one piece.
  virtual void solve_rho_batch(const double* rhos, std::size_t count,
                               bool min_rho_fallback, PanelPoint* out) const;

  /// solve_panel_point plus seed harvesting: backends advertising
  /// warm_start_chain fill `harvest` (when non-null) with this point's
  /// per-pair optima, ready to seed the next grid point's rebind. The
  /// default ignores `harvest` and delegates to solve_panel_point.
  [[nodiscard]] virtual PanelPoint solve_panel_point_seeded(
      SweepAxis axis, double x, double panel_rho, bool min_rho_fallback,
      PairSeedTable* harvest) const;
};

/// The closed-form backend family: BiCritSolver's cached first-order
/// expansions, evaluated per the mode (kFirstOrder, kExactEvaluation, or
/// the per-bound kExactOptimize path that panels use on non-ρ axes).
/// Construction is the complete preparation (needs_prepare() is false).
class ClosedFormBackend final : public SolverBackend {
 public:
  /// `seeds`, when non-null, is copied and warm-starts every
  /// kExactOptimize pair bracketing (the chain link rebind() forges;
  /// other modes ignore it).
  ClosedFormBackend(ModelParams params, EvalMode mode,
                    const PairSeedTable* seeds = nullptr);

  [[nodiscard]] const char* name() const noexcept override;
  [[nodiscard]] const ModelParams& params() const noexcept override {
    return solver_.params();
  }
  [[nodiscard]] const BackendCapabilities& capabilities()
      const noexcept override {
    return capabilities_;
  }
  [[nodiscard]] bool needs_prepare() const noexcept override {
    return false;
  }
  void prepare(const ParallelFor& parallel_build = {}) override;
  [[nodiscard]] Solution solve(double rho, SpeedPolicy policy,
                               bool min_rho_fallback) const override;
  [[nodiscard]] Solution solve_baseline(double rho,
                                        bool min_rho_fallback) const override;
  [[nodiscard]] Solution min_rho(SpeedPolicy policy) const override;
  [[nodiscard]] PairSolution solve_pair(double rho, std::size_t i,
                                        std::size_t j) const override;
  [[nodiscard]] BiCritSolution solve_report(
      double rho, SpeedPolicy policy) const override;
  [[nodiscard]] std::unique_ptr<SolverBackend> rebind(
      ModelParams params,
      const PairSeedTable* seeds = nullptr) const override;
  void solve_rho_batch(const double* rhos, std::size_t count,
                       bool min_rho_fallback,
                       PanelPoint* out) const override;
  [[nodiscard]] PanelPoint solve_panel_point_seeded(
      SweepAxis axis, double x, double panel_rho, bool min_rho_fallback,
      PairSeedTable* harvest) const override;

  [[nodiscard]] EvalMode mode() const noexcept { return mode_; }
  [[nodiscard]] const BiCritSolver& solver() const noexcept {
    return solver_;
  }

 private:
  BiCritSolver solver_;
  EvalMode mode_;
  PairSeedTable seeds_;
  BackendCapabilities capabilities_;
};

/// The cached exact-optimization backend: construction validates, prepare()
/// pays the per-(σ1, σ2) exact curve optimization (ExactSolver), solves
/// afterwards are feasibility math plus at most one warm-started bisection
/// per tight pair. ρ panels share one prepared instance; other axes rebind
/// to the per-bound ClosedFormBackend path, exactly as the historical
/// panel sweep did.
class ExactOptBackend final : public SolverBackend {
 public:
  explicit ExactOptBackend(ModelParams params);

  [[nodiscard]] const char* name() const noexcept override;
  [[nodiscard]] const ModelParams& params() const noexcept override {
    return params_;
  }
  [[nodiscard]] const BackendCapabilities& capabilities()
      const noexcept override {
    return capabilities_;
  }
  [[nodiscard]] bool needs_prepare() const noexcept override {
    return !exact_.has_value();
  }
  void prepare(const ParallelFor& parallel_build = {}) override;
  [[nodiscard]] Solution solve(double rho, SpeedPolicy policy,
                               bool min_rho_fallback) const override;
  [[nodiscard]] Solution solve_baseline(double rho,
                                        bool min_rho_fallback) const override;
  [[nodiscard]] Solution min_rho(SpeedPolicy policy) const override;
  [[nodiscard]] PairSolution solve_pair(double rho, std::size_t i,
                                        std::size_t j) const override;
  [[nodiscard]] BiCritSolution solve_report(
      double rho, SpeedPolicy policy) const override;
  [[nodiscard]] std::unique_ptr<SolverBackend> rebind(
      ModelParams params,
      const PairSeedTable* seeds = nullptr) const override;
  void solve_rho_batch(const double* rhos, std::size_t count,
                       bool min_rho_fallback,
                       PanelPoint* out) const override;

  /// The prepared cache. Throws std::logic_error before prepare().
  [[nodiscard]] const ExactSolver& exact() const;

 private:
  ModelParams params_;
  std::optional<ExactSolver> exact_;
  BackendCapabilities capabilities_;
};

/// The interleaved-verification backend: construction validates (λf = 0,
/// segment limits), prepare() pays the per-(σ1, σ2, m) curve optimization
/// (InterleavedSolver). A positive `fixed_segments` pins the count
/// (a `segments=M` scenario); 0 searches every count in [1, max_segments].
class InterleavedBackend final : public SolverBackend {
 public:
  /// Throws std::invalid_argument on invalid params, λf ≠ 0,
  /// max_segments == 0, or fixed_segments > max_segments.
  InterleavedBackend(ModelParams params, unsigned max_segments,
                     unsigned fixed_segments = 0);

  [[nodiscard]] const char* name() const noexcept override;
  [[nodiscard]] const ModelParams& params() const noexcept override {
    return params_;
  }
  [[nodiscard]] const BackendCapabilities& capabilities()
      const noexcept override {
    return capabilities_;
  }
  [[nodiscard]] bool needs_prepare() const noexcept override {
    return !solver_.has_value();
  }
  void prepare(const ParallelFor& parallel_build = {}) override;
  [[nodiscard]] Solution solve(double rho, SpeedPolicy policy,
                               bool min_rho_fallback) const override;
  [[nodiscard]] Solution solve_baseline(double rho,
                                        bool min_rho_fallback) const override;
  [[nodiscard]] Solution solve_segments(double rho,
                                        unsigned segments) const override;
  [[nodiscard]] Solution min_rho(SpeedPolicy policy) const override;
  [[nodiscard]] std::unique_ptr<SolverBackend> rebind(
      ModelParams params,
      const PairSeedTable* seeds = nullptr) const override;
  void solve_rho_batch(const double* rhos, std::size_t count,
                       bool min_rho_fallback,
                       PanelPoint* out) const override;

  [[nodiscard]] unsigned max_segments() const noexcept {
    return max_segments_;
  }
  [[nodiscard]] unsigned fixed_segments() const noexcept {
    return fixed_segments_;
  }
  /// The prepared cache. Throws std::logic_error before prepare().
  [[nodiscard]] const InterleavedSolver& solver() const;

 private:
  ModelParams params_;
  unsigned max_segments_;
  unsigned fixed_segments_;
  std::optional<InterleavedSolver> solver_;
  BackendCapabilities capabilities_;
};

/// The registry mode name of a closed-form EvalMode ("first-order",
/// "exact-eval", "exact-opt") — the single vocabulary source that
/// ClosedFormBackend::name() and the engine's spec→mode-name mapping
/// share.
[[nodiscard]] const char* to_mode_name(EvalMode mode) noexcept;

/// Backend for a bare EvalMode over one parameter bundle — the shape the
/// mode-only entry points (run_figure_sweep, speed_pair_table) use when no
/// scenario is involved. kFirstOrder/kExactEvaluation yield a (fully
/// prepared) ClosedFormBackend, kExactOptimize an ExactOptBackend whose
/// prepare() is still pending.
[[nodiscard]] std::unique_ptr<SolverBackend> make_mode_backend(
    ModelParams params, EvalMode mode);

}  // namespace rexspeed::core
