#pragma once

#include "rexspeed/core/first_order.hpp"

namespace rexspeed::core {

/// Real roots of a·x² + b·x + c = 0, computed with the numerically stable
/// "q-formula" (avoids catastrophic cancellation when b² ≫ 4ac).
struct QuadraticRoots {
  int count = 0;       ///< 0, 1 or 2 real roots
  double lower = 0.0;  ///< smaller root (valid when count >= 1)
  double upper = 0.0;  ///< larger root (valid when count >= 1)
};

[[nodiscard]] QuadraticRoots solve_quadratic(double a, double b, double c);

/// Feasible pattern-size interval induced by the performance bound
/// T(W)/W ≤ ρ under a first-order expansion (Theorem 1's aW² + bW + c ≤ 0
/// with a = y, b = x − ρ, c = z).
struct FeasibleInterval {
  enum class Status {
    kFeasible,    ///< non-empty interval [w_min, w_max]
    kInfeasible,  ///< no W satisfies the bound (ρ < ρ_min)
    kUnbounded,   ///< y ≤ 0: the expansion decreases forever (invalid
                  ///< first-order regime, paper §5.2) — w_max is +inf when
                  ///< the bound is met for large W
  };
  Status status = Status::kInfeasible;
  double w_min = 0.0;
  double w_max = 0.0;

  [[nodiscard]] bool feasible() const noexcept {
    return status != Status::kInfeasible;
  }
};

[[nodiscard]] FeasibleInterval feasible_interval(
    const OverheadExpansion& time_exp, double rho);

/// Minimum admissible performance bound for an expansion with y > 0:
/// ρ_min = x + 2√(yz) (paper Eq. (6) once the silent-only x, y, z are
/// substituted). Returns x when z = 0 and −inf when y ≤ 0.
[[nodiscard]] double rho_min(const OverheadExpansion& time_exp);

/// Literal paper Eq. (6) for silent errors only:
/// ρ_{i,j} = 1/σi + 2√((C + V/σi)·λ/(σiσj)) + λ(R/σi + V/(σiσj)).
[[nodiscard]] double rho_min_eq6(const ModelParams& params, double sigma_i,
                                 double sigma_j);

}  // namespace rexspeed::core
