#pragma once

#include "rexspeed/core/model_params.hpp"

namespace rexspeed::core {

/// Interleaved-verification patterns — the generalization the paper cites
/// as related work (§6, Benoit–Robert–Raina "Efficient checkpoint/
/// verification patterns"): the chunk W is cut into `segments` equal
/// pieces, each followed by a verification; the checkpoint still closes
/// the pattern. A silent error is then detected at the end of the segment
/// it struck, so only a prefix of the attempt is lost instead of the whole
/// pattern — at the price of `segments` verifications per attempt.
///
/// The paper's model is the special case segments = 1. The expectations
/// below are exact finite sums over the striking segment (silent errors
/// only, the setting of the original pattern work); re-executions run at
/// σ2 with the same segmented layout.

/// Expected time of one pattern with `segments` interleaved verifications.
/// Requires λf = 0 (throws otherwise: the segmented closed form is derived
/// for silent errors, matching the related work).
[[nodiscard]] double expected_time_interleaved(const ModelParams& params,
                                               double work,
                                               unsigned segments,
                                               double sigma1, double sigma2);

/// Expected energy of one pattern with `segments` interleaved
/// verifications.
[[nodiscard]] double expected_energy_interleaved(const ModelParams& params,
                                                 double work,
                                                 unsigned segments,
                                                 double sigma1,
                                                 double sigma2);

/// Best segmented pattern under the BiCrit rule: for each segment count in
/// [1, max_segments], numerically optimize W for minimum energy overhead
/// subject to T/W ≤ rho, then keep the best count.
struct InterleavedSolution {
  bool feasible = false;
  unsigned segments = 1;
  double w_opt = 0.0;
  double energy_overhead = 0.0;
  double time_overhead = 0.0;
};

[[nodiscard]] InterleavedSolution optimize_interleaved(
    const ModelParams& params, double rho, double sigma1, double sigma2,
    unsigned max_segments = 16);

}  // namespace rexspeed::core
