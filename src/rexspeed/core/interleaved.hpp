#pragma once

#include <vector>

#include "rexspeed/core/model_params.hpp"

namespace rexspeed::core {

/// Interleaved-verification patterns — the generalization the paper cites
/// as related work (§6, Benoit–Robert–Raina "Efficient checkpoint/
/// verification patterns"): the chunk W is cut into `segments` equal
/// pieces, each followed by a verification; the checkpoint still closes
/// the pattern. A silent error is then detected at the end of the segment
/// it struck, so only a prefix of the attempt is lost instead of the whole
/// pattern — at the price of `segments` verifications per attempt.
///
/// The paper's model is the special case segments = 1. The expectations
/// below are exact finite sums over the striking segment (silent errors
/// only, the setting of the original pattern work); re-executions run at
/// σ2 with the same segmented layout.

/// Expected time of one pattern with `segments` interleaved verifications.
/// Requires λf = 0 (throws otherwise: the segmented closed form is derived
/// for silent errors, matching the related work).
[[nodiscard]] double expected_time_interleaved(const ModelParams& params,
                                               double work,
                                               unsigned segments,
                                               double sigma1, double sigma2);

/// Expected energy of one pattern with `segments` interleaved
/// verifications.
[[nodiscard]] double expected_energy_interleaved(const ModelParams& params,
                                                 double work,
                                                 unsigned segments,
                                                 double sigma1,
                                                 double sigma2);

/// Best segmented pattern under the BiCrit rule: for each segment count in
/// [1, max_segments], numerically optimize W for minimum energy overhead
/// subject to T/W ≤ rho, then keep the best count.
struct InterleavedSolution {
  bool feasible = false;
  unsigned segments = 1;
  double sigma1 = 0.0;
  double sigma2 = 0.0;
  double w_opt = 0.0;
  double energy_overhead = 0.0;
  double time_overhead = 0.0;
};

[[nodiscard]] InterleavedSolution optimize_interleaved(
    const ModelParams& params, double rho, double sigma1, double sigma2,
    unsigned max_segments = 16);

/// Everything about one (σ1, σ2, m) combination that depends only on the
/// model parameters — not on the performance bound ρ. Both overhead curves
/// T(W)/W and E(W)/W are unimodal in W, so their unconstrained minima pin
/// down every constrained solve: a bound below `rho_min` is infeasible,
/// a bound admitting `w_energy` is solved by the cached optimum outright,
/// and anything in between reduces to locating one feasibility boundary.
struct InterleavedExpansion {
  double sigma1 = 0.0;
  double sigma2 = 0.0;
  int index1 = -1;  ///< positions in ModelParams::speeds
  int index2 = -1;
  unsigned segments = 1;
  double w_time = 0.0;      ///< unconstrained minimizer of T(W)/W
  double rho_min = 0.0;     ///< T(w_time)/w_time — feasibility threshold
  double w_energy = 0.0;    ///< unconstrained minimizer of E(W)/W
  double energy_min = 0.0;  ///< E(w_energy)/w_energy
  double time_at_we = 0.0;  ///< T(w_energy)/w_energy
};

/// The interleaved counterpart of BiCritSolver: enumerate every speed pair
/// (σ1, σ2) ∈ S × S and every segment count m ∈ [1, max_segments], and
/// pick the segmented pattern with the smallest energy overhead subject to
/// T/W ≤ ρ.
///
/// Construction pays the numeric optimization of both overhead curves once
/// per (pair, m) — the ρ-independent work. Every solve afterwards is cheap
/// feasibility math on the cached expansions (plus one bisection per
/// candidate whose bound is tight), so one solver serves an entire ρ sweep
/// and every segment count of an overhead-vs-m grid. The solver is
/// immutable after construction and safe to share across threads.
class InterleavedSolver {
 public:
  /// Throws std::invalid_argument on invalid params, λf ≠ 0 (the segmented
  /// closed forms are derived for silent errors) or max_segments == 0.
  InterleavedSolver(ModelParams params, unsigned max_segments);

  /// Best pattern over all pairs and all m ∈ [1, max_segments].
  [[nodiscard]] InterleavedSolution solve(double rho) const;

  /// Best pattern over all pairs at exactly `segments` verifications
  /// (1 ≤ segments ≤ max_segments; throws std::invalid_argument outside).
  [[nodiscard]] InterleavedSolution solve_segments(double rho,
                                                   unsigned segments) const;

  /// Batched selection core: solve() (segments = 0) or
  /// solve_segments(segments) driven by a precomputed per-slot class
  /// array `cls` (0 = infeasible, 1 = cache lookup, 2 = tight; from
  /// kernels::classify_pairs over rho_mins()/times_at_we()). Bit-identical
  /// to the pointwise calls — same scan order, same strict-< selection —
  /// but infeasible slots are skipped off one byte, so a whole ρ-grid
  /// shares a single classification pass per point. `cls` must have
  /// expansions().size() entries.
  [[nodiscard]] InterleavedSolution solve_classified(
      double rho, unsigned segments, const unsigned char* cls) const;

  [[nodiscard]] const ModelParams& params() const noexcept { return params_; }
  [[nodiscard]] unsigned max_segments() const noexcept {
    return max_segments_;
  }

  /// The cached pair-invariant data: entry (i, j, m) at
  /// (i * K + j) * max_segments + (m - 1) over the K×K speed grid.
  [[nodiscard]] const std::vector<InterleavedExpansion>& expansions()
      const noexcept {
    return cache_;
  }

  /// Contiguous per-slot feasibility floors / times-at-optimum, mirrors
  /// of the cache for the vectorized classify kernel to stream over.
  [[nodiscard]] const std::vector<double>& rho_mins() const noexcept {
    return rho_min_flat_;
  }
  [[nodiscard]] const std::vector<double>& times_at_we() const noexcept {
    return time_at_we_flat_;
  }

 private:
  [[nodiscard]] InterleavedSolution solve_cached(
      double rho, const InterleavedExpansion& expansion) const;

  ModelParams params_;
  unsigned max_segments_;
  std::vector<InterleavedExpansion> cache_;
  std::vector<double> rho_min_flat_;
  std::vector<double> time_at_we_flat_;
};

}  // namespace rexspeed::core
