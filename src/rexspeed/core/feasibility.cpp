#include "rexspeed/core/feasibility.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace rexspeed::core {

QuadraticRoots solve_quadratic(double a, double b, double c) {
  QuadraticRoots roots;
  if (a == 0.0) {
    if (b == 0.0) return roots;  // constant equation: no roots reported
    roots.count = 1;
    roots.lower = roots.upper = -c / b;
    return roots;
  }
  const double disc = b * b - 4.0 * a * c;
  if (disc < 0.0) return roots;
  if (disc == 0.0) {
    roots.count = 1;
    roots.lower = roots.upper = -b / (2.0 * a);
    return roots;
  }
  const double sqrt_disc = std::sqrt(disc);
  const double q = -0.5 * (b + std::copysign(sqrt_disc, b));
  double r1 = q / a;
  double r2 = (q != 0.0) ? c / q : -b / a - r1;
  if (r1 > r2) std::swap(r1, r2);
  roots.count = 2;
  roots.lower = r1;
  roots.upper = r2;
  return roots;
}

FeasibleInterval feasible_interval(const OverheadExpansion& time_exp,
                                   double rho) {
  if (!(rho > 0.0)) {
    throw std::invalid_argument("feasible_interval: rho must be positive");
  }
  const double a = time_exp.y;
  const double b = time_exp.x - rho;
  const double c = time_exp.z;
  FeasibleInterval interval;
  constexpr double kInf = std::numeric_limits<double>::infinity();

  if (a > 0.0) {
    // Upward parabola: feasible between the roots, when they exist and at
    // least the larger one is positive (Theorem 1).
    const QuadraticRoots roots = solve_quadratic(a, b, c);
    if (roots.count == 0 || roots.upper <= 0.0) {
      interval.status = FeasibleInterval::Status::kInfeasible;
      return interval;
    }
    interval.status = FeasibleInterval::Status::kFeasible;
    interval.w_min = std::max(roots.lower, 0.0);
    interval.w_max = roots.upper;
    return interval;
  }

  if (a == 0.0) {
    // Error-free (or degenerate) case: bW + c ≤ 0.
    if (b >= 0.0) {
      // Overhead never drops below x (plus z/W > 0): feasible only if the
      // asymptote already satisfies the bound, which needs b < 0.
      interval.status = FeasibleInterval::Status::kInfeasible;
      return interval;
    }
    interval.status = FeasibleInterval::Status::kUnbounded;
    interval.w_min = c > 0.0 ? c / -b : 0.0;
    interval.w_max = kInf;
    return interval;
  }

  // a < 0: downward parabola — the invalid first-order regime (paper
  // §5.2). With c = z > 0 the constraint is violated near W = 0 and holds
  // for every W beyond the unique positive root.
  const QuadraticRoots roots = solve_quadratic(a, b, c);
  interval.status = FeasibleInterval::Status::kUnbounded;
  interval.w_min =
      roots.count >= 1 ? std::max(roots.upper, 0.0) : 0.0;
  interval.w_max = kInf;
  return interval;
}

double rho_min(const OverheadExpansion& time_exp) {
  if (time_exp.y <= 0.0) {
    return -std::numeric_limits<double>::infinity();
  }
  if (time_exp.z <= 0.0) return time_exp.x;
  return time_exp.min_value();
}

double rho_min_eq6(const ModelParams& params, double sigma_i,
                   double sigma_j) {
  params.validate();
  if (!(sigma_i > 0.0) || !(sigma_j > 0.0)) {
    throw std::invalid_argument("rho_min_eq6: speeds must be positive");
  }
  const double lam = params.lambda_silent;
  const double c = params.checkpoint_s;
  const double r = params.recovery_s;
  const double v = params.verification_s;
  return 1.0 / sigma_i +
         2.0 * std::sqrt((c + v / sigma_i) * lam / (sigma_i * sigma_j)) +
         lam * (r / sigma_i + v / (sigma_i * sigma_j));
}

}  // namespace rexspeed::core
