#pragma once

#include <functional>

#include "rexspeed/core/model_params.hpp"

namespace rexspeed::core {

/// Options for the 1-D numeric routines.
struct NumericOptions {
  double relative_tolerance = 1e-10;
  int max_iterations = 300;
  /// Hard cap on the pattern size explored (seconds-at-full-speed). Large
  /// enough for every configuration in the paper; prevents overflow probes.
  double w_cap = 1e12;
};

/// Golden-section search for the minimizer of a unimodal function on
/// [lo, hi]. Returns the abscissa of the minimum.
[[nodiscard]] double golden_section_minimize(
    const std::function<double(double)>& f, double lo, double hi,
    const NumericOptions& options = {});

/// Minimizer of a convex overhead-per-work function over W > 0: doubles an
/// upper bracket from W = 1 until the function rises (or overflows), then
/// golden-sections. Safe against the e^{λW} overflow region that a naive
/// fixed bracket would fall into.
[[nodiscard]] double minimize_unimodal_overhead(
    const std::function<double(double)>& overhead,
    const NumericOptions& options = {});

/// Warm-started variant: brackets the minimum outward from `seed` (e.g. a
/// first-order closed-form argmin) instead of doubling up from W = 1 —
/// far fewer curve evaluations when the seed lands near the true optimum,
/// which is what core::ExactSolver exploits when a pair sits inside the
/// §5.2 validity window. A useless seed — non-positive, non-finite, or
/// one where overhead(seed) itself is not finite (the e^{λW} overflow
/// region) — falls back to the cold-start bracket above. Deterministic
/// for a given (overhead, seed, options) triple.
[[nodiscard]] double minimize_unimodal_overhead(
    const std::function<double(double)>& overhead, double seed,
    const NumericOptions& options);

/// Bisects for the W where `overhead(W) == rho`, assuming the overhead is
/// monotone between `inside` (overhead ≤ rho, kept) and `outside`
/// (overhead > rho). Returns the feasible end of the shrunken bracket —
/// the boundary locator shared by optimize_exact_pair and the cached
/// ExactSolver solve path (one implementation, so the two cannot drift).
[[nodiscard]] double bisect_boundary(
    const std::function<double(double)>& overhead, double rho,
    double inside, double outside, const NumericOptions& options = {});

/// Solution of the exact (non-expanded) BiCrit problem for one speed pair:
/// minimize E(W,σ1,σ2)/W subject to T(W,σ1,σ2)/W ≤ ρ, using the exact
/// expectations of `exact_expectations.hpp`. Valid for any λs, λf ≥ 0 —
/// including the σ2 > 2σ1(1+s/f) regime where the first-order machinery
/// breaks down (paper §5.2).
struct ExactPairResult {
  bool feasible = false;
  double w_opt = 0.0;
  double energy_overhead = 0.0;
  double time_overhead = 0.0;
  /// Feasible pattern-size interval found numerically.
  double w_min = 0.0;
  double w_max = 0.0;
};

[[nodiscard]] ExactPairResult optimize_exact_pair(
    const ModelParams& params, double rho, double sigma1, double sigma2,
    const NumericOptions& options = {});

/// Warm-started variant: `w_seed` (> 0; e.g. the same pair's w_opt at a
/// neighboring grid point of a parameter sweep) seeds the unconstrained
/// time minimization the search pivots on, replacing the cold doubling
/// bracket from W = 1. The seed steers only how fast the bracket closes,
/// never which optimum it converges to (within numeric tolerance), so
/// warm-chained sweeps are equivalent to cold-started ones. A
/// non-positive or non-finite seed IS the cold start above, bit for bit.
[[nodiscard]] ExactPairResult optimize_exact_pair(
    const ModelParams& params, double rho, double sigma1, double sigma2,
    double w_seed, const NumericOptions& options = {});

/// Unconstrained minimizer of the exact time overhead T(W,σ1,σ2)/W — the
/// classical "minimize expected makespan" objective, used to validate
/// Theorem 2 against the exact model.
[[nodiscard]] double minimize_exact_time_overhead(
    const ModelParams& params, double sigma1, double sigma2,
    const NumericOptions& options = {});

/// Unconstrained minimizer of the exact energy overhead E(W,σ1,σ2)/W.
[[nodiscard]] double minimize_exact_energy_overhead(
    const ModelParams& params, double sigma1, double sigma2,
    const NumericOptions& options = {});

}  // namespace rexspeed::core
