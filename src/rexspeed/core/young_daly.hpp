#pragma once

namespace rexspeed::core {

/// Classical checkpointing-period baselines the paper generalizes.
/// All periods are expressed in the same unit as `checkpoint_s` (seconds of
/// work at the execution speed).

/// Young's first-order period for fail-stop errors: T = √(2C/λ).
[[nodiscard]] double young_period(double checkpoint_s, double error_rate);

/// Daly's higher-order period for fail-stop errors (FGCS 2006):
/// T = √(2Cμ)·[1 + (1/3)√(C/(2μ)) + C/(18μ)] − C for C < 2μ, else μ.
[[nodiscard]] double daly_period(double checkpoint_s, double error_rate);

/// Optimal period for silent errors with verified checkpoints (paper §1):
/// T = √((V + C)/λ). The factor 2 of Young's formula disappears because a
/// silent error is only detected by the verification at the end of the
/// period, so a full period is always lost.
[[nodiscard]] double silent_verified_period(double checkpoint_s,
                                            double verification_s,
                                            double error_rate);

}  // namespace rexspeed::core
