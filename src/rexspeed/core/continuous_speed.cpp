#include "rexspeed/core/continuous_speed.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "rexspeed/core/bicrit_solver.hpp"

namespace rexspeed::core {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

struct Point {
  double s1 = 0.0;
  double s2 = 0.0;
  double value = kInf;
};

double clamp(double x, double lo, double hi) {
  return std::min(std::max(x, lo), hi);
}

}  // namespace

ContinuousSolution solve_continuous(const ModelParams& params, double rho,
                                    const ContinuousOptions& options) {
  params.validate();
  if (!(rho > 0.0)) {
    throw std::invalid_argument("solve_continuous: rho must be positive");
  }
  const double lo =
      options.sigma_min > 0.0 ? options.sigma_min : params.speeds.front();
  const double hi =
      options.sigma_max > 0.0 ? options.sigma_max : params.speeds.back();
  if (!(lo > 0.0) || !(lo <= hi)) {
    throw std::invalid_argument("solve_continuous: bad speed range");
  }

  const auto objective = [&](double s1, double s2) -> double {
    if (s1 < lo || s1 > hi || s2 < lo || s2 > hi) return kInf;
    const ExactPairResult pair =
        optimize_exact_pair(params, rho, s1, s2, options.inner);
    return pair.feasible ? pair.energy_overhead : kInf;
  };

  // Multi-start seeds: the discrete optimum (when feasible) plus the
  // rectangle corners and center.
  std::array<Point, 6> seeds{};
  std::size_t n_seeds = 0;
  const BiCritSolution discrete =
      BiCritSolver(params).solve(rho, SpeedPolicy::kTwoSpeed,
                                 EvalMode::kFirstOrder);
  if (discrete.feasible) {
    seeds[n_seeds++] = {discrete.best.sigma1, discrete.best.sigma2, kInf};
  }
  seeds[n_seeds++] = {lo, lo, kInf};
  seeds[n_seeds++] = {hi, hi, kInf};
  seeds[n_seeds++] = {hi, lo, kInf};
  seeds[n_seeds++] = {0.5 * (lo + hi), 0.5 * (lo + hi), kInf};

  Point global_best{0.0, 0.0, kInf};
  for (std::size_t seed = 0; seed < n_seeds; ++seed) {
    // Nelder–Mead with a simplex spanning ~10% of the rectangle.
    const double step = 0.1 * (hi - lo) + 1e-3;
    std::array<Point, 3> simplex{
        Point{seeds[seed].s1, seeds[seed].s2, 0.0},
        Point{clamp(seeds[seed].s1 + step, lo, hi), seeds[seed].s2, 0.0},
        Point{seeds[seed].s1, clamp(seeds[seed].s2 + step, lo, hi), 0.0}};
    for (auto& p : simplex) p.value = objective(p.s1, p.s2);

    for (int it = 0; it < options.max_iterations; ++it) {
      std::sort(simplex.begin(), simplex.end(),
                [](const Point& a, const Point& b) {
                  return a.value < b.value;
                });
      const Point& best = simplex[0];
      Point& worst = simplex[2];
      const double spread =
          std::abs(simplex[0].s1 - simplex[2].s1) +
          std::abs(simplex[0].s2 - simplex[2].s2);
      if (spread < options.tolerance) break;

      const double cx = 0.5 * (simplex[0].s1 + simplex[1].s1);
      const double cy = 0.5 * (simplex[0].s2 + simplex[1].s2);
      const auto try_point = [&](double alpha) {
        Point p{clamp(cx + alpha * (cx - worst.s1), lo, hi),
                clamp(cy + alpha * (cy - worst.s2), lo, hi), 0.0};
        p.value = objective(p.s1, p.s2);
        return p;
      };

      const Point reflected = try_point(1.0);
      if (reflected.value < best.value) {
        const Point expanded = try_point(2.0);
        worst = expanded.value < reflected.value ? expanded : reflected;
      } else if (reflected.value < simplex[1].value) {
        worst = reflected;
      } else {
        const Point contracted = try_point(-0.5);
        if (contracted.value < worst.value) {
          worst = contracted;
        } else {
          // Shrink toward the best vertex.
          for (std::size_t i = 1; i < simplex.size(); ++i) {
            simplex[i].s1 = 0.5 * (simplex[i].s1 + simplex[0].s1);
            simplex[i].s2 = 0.5 * (simplex[i].s2 + simplex[0].s2);
            simplex[i].value = objective(simplex[i].s1, simplex[i].s2);
          }
        }
      }
    }
    std::sort(simplex.begin(), simplex.end(),
              [](const Point& a, const Point& b) {
                return a.value < b.value;
              });
    if (simplex[0].value < global_best.value) global_best = simplex[0];
  }

  ContinuousSolution solution;
  if (!std::isfinite(global_best.value)) return solution;
  const ExactPairResult pair = optimize_exact_pair(
      params, rho, global_best.s1, global_best.s2, options.inner);
  solution.feasible = pair.feasible;
  solution.sigma1 = global_best.s1;
  solution.sigma2 = global_best.s2;
  solution.w_opt = pair.w_opt;
  solution.energy_overhead = pair.energy_overhead;
  solution.time_overhead = pair.time_overhead;
  return solution;
}

}  // namespace rexspeed::core
