#pragma once

#include <vector>

#include "rexspeed/core/feasibility.hpp"
#include "rexspeed/core/first_order.hpp"
#include "rexspeed/core/model_params.hpp"
#include "rexspeed/core/numeric_optimizer.hpp"

namespace rexspeed::core {

/// Which speed pairs the solver may use.
enum class SpeedPolicy {
  kTwoSpeed,     ///< any (σ1, σ2) ∈ S × S — the paper's proposal
  kSingleSpeed,  ///< σ2 = σ1 — the classical baseline (dotted lines in the
                 ///< paper's figures)
};

/// How the per-pair optimum is computed and evaluated.
enum class EvalMode {
  kFirstOrder,       ///< Theorem 1 closed form, overheads from Eqs. (2)/(3)
                     ///< — the paper's procedure, O(K²) total
  kExactEvaluation,  ///< Theorem 1 pattern size, overheads re-evaluated with
                     ///< the exact expectations
  kExactOptimize,    ///< full numeric optimization of the exact model
                     ///< (valid outside the first-order window)
};

/// Outcome for one speed pair (σ1, σ2).
struct PairSolution {
  double sigma1 = 0.0;
  double sigma2 = 0.0;
  bool feasible = false;
  /// True when the first-order expansions have positive W coefficients for
  /// this pair (always true with silent errors only).
  bool first_order_valid = true;
  /// Minimum admissible bound ρ_{i,j} for this pair (Eq. (6) generalized);
  /// −inf when the first-order expansion is invalid.
  double rho_min = 0.0;
  /// Chosen pattern size Wopt (Eq. (4)).
  double w_opt = 0.0;
  /// Unconstrained energy minimizer We (Eq. (5)).
  double w_energy = 0.0;
  /// Feasible interval [W1, W2] from the performance bound.
  double w_min = 0.0;
  double w_max = 0.0;
  double energy_overhead = 0.0;  ///< E(Wopt)/Wopt
  double time_overhead = 0.0;    ///< T(Wopt)/Wopt
};

/// Full solver outcome: the best pair plus every candidate, for reporting.
struct BiCritSolution {
  bool feasible = false;
  PairSolution best;
  std::vector<PairSolution> pairs;

  /// Best pair restricted to a given first speed (the per-row entries of
  /// the paper's §4.2 tables). Returns an infeasible PairSolution when no
  /// second speed satisfies the bound.
  [[nodiscard]] PairSolution best_for_sigma1(double sigma1) const;
};

/// The paper's O(K²) BiCrit solver (§3): enumerate speed pairs, discard
/// those whose ρ_{i,j} exceeds the bound, compute Wopt by Theorem 1, and
/// return the pair with the smallest energy overhead.
class BiCritSolver {
 public:
  explicit BiCritSolver(ModelParams params);

  /// Solves BiCrit for performance bound `rho`.
  [[nodiscard]] BiCritSolution solve(
      double rho, SpeedPolicy policy = SpeedPolicy::kTwoSpeed,
      EvalMode mode = EvalMode::kFirstOrder) const;

  /// Solves a single speed pair.
  [[nodiscard]] PairSolution solve_pair(double rho, double sigma1,
                                        double sigma2,
                                        EvalMode mode) const;

  /// Best-effort policy when no pair satisfies the bound: the pair with
  /// the smallest achievable bound ρ_{i,j}, run at its time-optimal
  /// pattern size (the tangency point of Eq. (6)). This is how the
  /// paper's figures keep plotting beyond the feasibility horizon (e.g.
  /// the λ ≥ 10⁻³ region of Figure 4, where the speed curves pin at the
  /// maximum speed). The returned solution has feasible = true but its
  /// time_overhead generally exceeds any requested ρ.
  [[nodiscard]] PairSolution min_rho_solution(
      SpeedPolicy policy = SpeedPolicy::kTwoSpeed) const;

  [[nodiscard]] const ModelParams& params() const noexcept { return params_; }

 private:
  ModelParams params_;
  NumericOptions numeric_options_;
};

}  // namespace rexspeed::core
