#pragma once

#include <cstddef>
#include <vector>

#include "rexspeed/core/expansion_soa.hpp"
#include "rexspeed/core/feasibility.hpp"
#include "rexspeed/core/first_order.hpp"
#include "rexspeed/core/model_params.hpp"
#include "rexspeed/core/numeric_optimizer.hpp"

namespace rexspeed::core {

/// Which speed pairs the solver may use.
enum class SpeedPolicy {
  kTwoSpeed,     ///< any (σ1, σ2) ∈ S × S — the paper's proposal
  kSingleSpeed,  ///< σ2 = σ1 — the classical baseline (dotted lines in the
                 ///< paper's figures)
};

/// How the per-pair optimum is computed and evaluated.
enum class EvalMode {
  kFirstOrder,       ///< Theorem 1 closed form, overheads from Eqs. (2)/(3)
                     ///< — the paper's procedure, O(K²) total
  kExactEvaluation,  ///< Theorem 1 pattern size, overheads re-evaluated with
                     ///< the exact expectations
  kExactOptimize,    ///< full numeric optimization of the exact model
                     ///< (valid outside the first-order window). Through
                     ///< BiCritSolver this re-optimizes per bound; repeated
                     ///< solves (ρ sweeps) should use the cached ExactSolver
                     ///< backend (exact_solver.hpp) instead — engine
                     ///< contexts and ρ panels route there automatically.
};

/// Everything about a speed pair (σ1, σ2) that depends only on the model
/// parameters — not on the performance bound ρ. The solver precomputes one
/// of these per pair at construction, so every solve afterwards is pure
/// feasibility math on cached expansions. `index1`/`index2` are positions
/// in ModelParams::speeds, or -1 for speeds outside the set (the
/// out-of-set path of solve_pair).
struct PairExpansion {
  double sigma1 = 0.0;
  double sigma2 = 0.0;
  int index1 = -1;
  int index2 = -1;
  OverheadExpansion time_exp;
  OverheadExpansion energy_exp;
  /// Both expansions have y > 0 (paper §5.2 validity window).
  bool first_order_valid = true;
  /// Minimum admissible bound ρ_{i,j} (Eq. (6) generalized). Derived from
  /// the time expansion alone: −inf when time_exp.y ≤ 0, but still finite
  /// when only the energy expansion is invalid — check first_order_valid
  /// before ranking pairs by this value.
  double rho_min = 0.0;

  /// Builds the pair-invariant data for one speed pair.
  [[nodiscard]] static PairExpansion make(const ModelParams& params,
                                          double sigma1, double sigma2,
                                          int index1 = -1, int index2 = -1);
};

/// Per-pair warm-start seeds for the numeric (kExactOptimize) path:
/// w_opt of pair (i, j) — typically harvested from the same pair's solve
/// at a neighboring grid point of a parameter sweep — at slot i·K + j.
/// A seed of 0 means "no seed" (cold-start bracket). Seeds steer only how
/// fast the per-pair bracketing converges, never where (within numeric
/// tolerance), so chained sweeps stay equivalent to cold-started ones.
struct PairSeedTable {
  std::size_t k = 0;
  std::vector<double> w_opt;

  [[nodiscard]] bool empty() const noexcept { return w_opt.empty(); }
  [[nodiscard]] double seed(int i, int j) const noexcept {
    if (i < 0 || j < 0 || static_cast<std::size_t>(i) >= k ||
        static_cast<std::size_t>(j) >= k) {
      return 0.0;
    }
    const std::size_t slot =
        static_cast<std::size_t>(i) * k + static_cast<std::size_t>(j);
    return slot < w_opt.size() ? w_opt[slot] : 0.0;
  }
};

/// Outcome for one speed pair (σ1, σ2).
struct PairSolution {
  double sigma1 = 0.0;
  double sigma2 = 0.0;
  /// Positions of σ1/σ2 in the speed set (-1 when the pair was solved for
  /// speeds outside the set). Pair selection — best_for_sigma1, the
  /// single-speed filter — goes through these indices, never through
  /// floating-point equality on the speeds themselves.
  int sigma1_index = -1;
  int sigma2_index = -1;
  bool feasible = false;
  /// True when the first-order expansions have positive W coefficients for
  /// this pair (always true with silent errors only).
  bool first_order_valid = true;
  /// Minimum admissible bound ρ_{i,j} for this pair (Eq. (6) generalized);
  /// −inf when the time expansion is invalid (see PairExpansion::rho_min).
  double rho_min = 0.0;
  /// Chosen pattern size Wopt (Eq. (4)).
  double w_opt = 0.0;
  /// Unconstrained energy minimizer We (Eq. (5)).
  double w_energy = 0.0;
  /// Feasible interval [W1, W2] from the performance bound.
  double w_min = 0.0;
  double w_max = 0.0;
  double energy_overhead = 0.0;  ///< E(Wopt)/Wopt
  double time_overhead = 0.0;    ///< T(Wopt)/Wopt
};

/// Full solver outcome: the best pair plus every candidate, for reporting.
struct BiCritSolution {
  bool feasible = false;
  PairSolution best;
  std::vector<PairSolution> pairs;

  /// Best pair restricted to a given first-speed index (the per-row
  /// entries of the paper's §4.2 tables). Returns an infeasible
  /// PairSolution when no second speed satisfies the bound.
  [[nodiscard]] PairSolution best_for_sigma1_index(std::size_t index) const;

  /// Same, addressed by speed value: resolves `sigma1` to the nearest
  /// first speed present in `pairs` (no exact floating-point match
  /// required), then selects by index.
  [[nodiscard]] PairSolution best_for_sigma1(double sigma1) const;
};

/// The paper's O(K²) BiCrit solver (§3): enumerate speed pairs, discard
/// those whose ρ_{i,j} exceeds the bound, compute Wopt by Theorem 1, and
/// return the pair with the smallest energy overhead.
///
/// Construction precomputes the K² first-order expansions (time + energy),
/// per-pair ρ_min and validity flags; solve/solve_pair/min_rho_solution
/// afterwards are cheap lookups plus feasibility math. Reusing one solver
/// across many bounds (a ρ sweep) therefore costs the expansions once —
/// engine::SolverContext builds on exactly this property. The exception
/// is kExactOptimize, whose per-bound numeric optimization this cache
/// cannot help; the ExactSolver backend (exact_solver.hpp) is its cached
/// counterpart.
///
/// Thread-safety contract (shared by ExactSolver and InterleavedSolver):
/// immutable after construction — every member function is const and
/// reads only the construction-time cache, so one solver is safe to
/// share across threads without synchronization.
class BiCritSolver {
 public:
  /// Builds the K² expansion cache in one structure-of-arrays pass
  /// through the process-wide active SIMD kernel tier (scalar reference
  /// is bit-identical by contract).
  explicit BiCritSolver(ModelParams params);

  /// Adopts a prebuilt SoA table for the same parameters (the shared-pass
  /// construction: one ExpansionSoA::build serves this solver and any
  /// other consumer). Throws std::invalid_argument when the table's speed
  /// count does not match.
  BiCritSolver(ModelParams params, ExpansionSoA table);

  /// Solves BiCrit for performance bound `rho`. `seeds`, when non-null,
  /// warm-starts the per-pair numeric bracketing of kExactOptimize (other
  /// modes ignore it) — see PairSeedTable.
  [[nodiscard]] BiCritSolution solve(
      double rho, SpeedPolicy policy = SpeedPolicy::kTwoSpeed,
      EvalMode mode = EvalMode::kFirstOrder,
      const PairSeedTable* seeds = nullptr) const;

  /// Solves a single speed pair. Speeds from the model's speed set hit the
  /// precomputed cache; other values are expanded on the fly.
  [[nodiscard]] PairSolution solve_pair(double rho, double sigma1,
                                        double sigma2,
                                        EvalMode mode) const;

  /// Solves the speed pair at positions (i, j) of the speed set.
  [[nodiscard]] PairSolution solve_pair_by_index(double rho, std::size_t i,
                                                 std::size_t j,
                                                 EvalMode mode) const;

  /// Best-effort policy when no pair satisfies the bound: the pair with
  /// the smallest achievable bound ρ_{i,j}, run at its time-optimal
  /// pattern size (the tangency point of Eq. (6)). This is how the
  /// paper's figures keep plotting beyond the feasibility horizon (e.g.
  /// the λ ≥ 10⁻³ region of Figure 4, where the speed curves pin at the
  /// maximum speed). The returned solution has feasible = true but its
  /// time_overhead generally exceeds any requested ρ.
  [[nodiscard]] PairSolution min_rho_solution(
      SpeedPolicy policy = SpeedPolicy::kTwoSpeed) const;

  [[nodiscard]] const ModelParams& params() const noexcept { return params_; }

  /// The cached pair-invariant data, row-major over the K×K speed grid.
  [[nodiscard]] const std::vector<PairExpansion>& pair_expansions()
      const noexcept {
    return cache_;
  }

  /// The structure-of-arrays expansion table the cache was materialized
  /// from — what the batched ρ-grid kernels stream over.
  [[nodiscard]] const ExpansionSoA& expansion_table() const noexcept {
    return soa_;
  }

  [[nodiscard]] const NumericOptions& numeric_options() const noexcept {
    return numeric_options_;
  }

 private:
  [[nodiscard]] PairSolution solve_cached_pair(double rho,
                                               const PairExpansion& pair,
                                               EvalMode mode,
                                               double w_seed = 0.0) const;
  void materialize_cache();

  ModelParams params_;
  NumericOptions numeric_options_;
  /// One kernel pass over the K×K speed grid; source of `cache_`.
  ExpansionSoA soa_;
  /// K² PairExpansions, entry (i, j) at i * K + j.
  std::vector<PairExpansion> cache_;
};

}  // namespace rexspeed::core
