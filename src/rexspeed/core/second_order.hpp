#pragma once

#include "rexspeed/core/model_params.hpp"

namespace rexspeed::core {

/// Second-order expansion of the time overhead for fail-stop errors only
/// (paper Prop. 7 / Eq. (11)):
///   T/W ≈ x + z/W + y1·W + y2·W²
/// with
///   x  = 1/σ1 + λR/σ1,
///   z  = C,
///   y1 = (1/(σ1σ2) − 1/(2σ1²))·λ,
///   y2 = (1/(6σ1³) − 1/(2σ1²σ2) + 1/(2σ1σ2²))·λ².
/// At σ2 = 2σ1 the linear coefficient y1 vanishes and the minimizer becomes
/// Θ(λ^{-2/3}) — Theorem 2.
struct SecondOrderExpansion {
  double x = 0.0;
  double z = 0.0;
  double y1 = 0.0;
  double y2 = 0.0;

  [[nodiscard]] double evaluate(double work) const noexcept {
    return x + z / work + y1 * work + y2 * work * work;
  }
};

/// Builds the Eq. (11) expansion; requires λf > 0 and ignores λs (the paper
/// derives it for s = 0).
[[nodiscard]] SecondOrderExpansion time_second_order_failstop(
    const ModelParams& params, double sigma1, double sigma2);

/// Second-order expansion of Prop. 2 for silent errors only (our
/// extension of the paper's Prop. 7 to the silent-error side):
///   x  = 1/σ1 + λ(R + V/σ2)/σ1,
///   z  = C + V/σ1,
///   y1 = λ/(σ1σ2) + λ²(R + V/σ2)(1/(σ1σ2) − 1/(2σ1²)),
///   y2 = λ²(1/(σ1σ2²) − 1/(2σ1²σ2)).
/// Unlike the fail-stop case, y1 > 0 for every speed pair, so the optimal
/// pattern stays Θ(λ^{-1/2}) — but the quadratic term shifts it downward,
/// explaining the ~1–4% gap between Theorem 1 and the exact optimizer
/// measured by bench_ablation_first_order. Requires λs > 0; ignores λf.
[[nodiscard]] SecondOrderExpansion time_second_order_silent(
    const ModelParams& params, double sigma1, double sigma2);

/// Theorem 2 closed form: Wopt = (12C/λf²)^{1/3}·σ for σ2 = 2σ1 = 2σ.
[[nodiscard]] double theorem2_pattern_size(double checkpoint_s,
                                           double lambda_failstop,
                                           double sigma);

/// Minimizes a second-order expansion over W > 0 by solving
/// 2·y2·W³ + y1·W² − z = 0 (the stationarity condition) with safeguarded
/// Newton iteration. Requires y2 > 0 or (y2 == 0 and y1 > 0).
[[nodiscard]] double minimize_second_order(const SecondOrderExpansion& exp);

}  // namespace rexspeed::core
