#pragma once

#include <cstddef>
#include <cstdlib>
#include <limits>
#include <new>
#include <vector>

#include "rexspeed/core/first_order.hpp"

namespace rexspeed::core {

namespace kernels {
struct KernelOps;
}  // namespace kernels

/// Minimal 64-byte-aligned allocator so every coefficient array starts on
/// a cache-line (and therefore SIMD-register) boundary. Only what
/// std::vector needs.
template <typename T>
struct AlignedAllocator {
  using value_type = T;
  static constexpr std::size_t kAlignment = 64;

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U>&) noexcept {}

  [[nodiscard]] T* allocate(std::size_t n) {
    if (n == 0) return nullptr;
    void* p = ::operator new(n * sizeof(T), std::align_val_t{kAlignment});
    return static_cast<T*>(p);
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t{kAlignment});
  }
  template <typename U>
  bool operator==(const AlignedAllocator<U>&) const noexcept {
    return true;
  }
};

using AlignedDoubles = std::vector<double, AlignedAllocator<double>>;

/// Structure-of-arrays cache of all K² first-order pair expansions for one
/// ModelParams: contiguous coefficient arrays (time x/y/z, energy x/y/z),
/// ρ_min, the speed values, and validity flags, indexed row-major — the
/// pair (i, j) lives at slot i·K + j. This is the layout the SIMD kernels
/// stream over; the per-pair caches of BiCritSolver / ExactSolver /
/// InterleavedSolver are materialized *from* one build of this table, so
/// the expansion math runs once per ModelParams, not once per consumer.
///
/// Arrays are padded to a lane multiple (kLane) with inert slots
/// (valid = 0, benign coefficients) so kernels never need a scalar tail.
struct ExpansionSoA {
  /// Pad to 8 doubles: a multiple of every shipped lane width (AVX2 = 4,
  /// NEON = 2) with headroom for 8-wide tiers.
  static constexpr std::size_t kLane = 8;

  std::size_t k = 0;       ///< speed count; count = k²
  std::size_t count = 0;   ///< live slots (k²)
  std::size_t padded = 0;  ///< count rounded up to a kLane multiple

  AlignedDoubles tx, ty, tz;  ///< time expansion coefficients x, y, z
  AlignedDoubles ex, ey, ez;  ///< energy expansion coefficients x, y, z
  AlignedDoubles sigma1, sigma2;  ///< the pair's speed values
  AlignedDoubles rho_min;         ///< per-pair feasibility threshold
  /// Unconstrained energy argmin √(z_E/y_E) where the energy expansion has
  /// an interior minimum, +inf otherwise. ρ-independent, so it is computed
  /// once at build time and streamed by eval_pairs instead of paying a
  /// divide + sqrt per lane per grid point (pure common-subexpression
  /// elimination: the build-time value is the same correctly-rounded
  /// result the eval would have produced).
  AlignedDoubles we;
  std::vector<unsigned char> valid;  ///< first_order_valid (ty>0 && ey>0)

  /// Builds the full table for `params` through the process-wide active
  /// kernel tier (scalar result is bit-identical by contract).
  [[nodiscard]] static ExpansionSoA build(const ModelParams& params);

  /// Builds through a specific tier's ops — the bit-comparability tests
  /// drive this with scalar and SIMD side by side.
  [[nodiscard]] static ExpansionSoA build_with(const ModelParams& params,
                                               const kernels::KernelOps& ops);

  [[nodiscard]] std::size_t slot(std::size_t i, std::size_t j) const {
    return i * k + j;
  }
  [[nodiscard]] OverheadExpansion time_expansion(std::size_t s) const {
    return OverheadExpansion{tx[s], ty[s], tz[s]};
  }
  [[nodiscard]] OverheadExpansion energy_expansion(std::size_t s) const {
    return OverheadExpansion{ex[s], ey[s], ez[s]};
  }
};

}  // namespace rexspeed::core
