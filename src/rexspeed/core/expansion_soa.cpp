#include "rexspeed/core/expansion_soa.hpp"

#include <limits>

#include "rexspeed/core/kernels/kernel_dispatch.hpp"
#include "rexspeed/core/model_params.hpp"

namespace rexspeed::core {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Writes the inert values a padding (or otherwise dead) slot carries:
/// invalid, infeasible for every bound, and coefficients that keep lane
/// arithmetic finite (no 0/0) so kernels can process padding unmasked.
void write_inert_slot(ExpansionSoA& table, std::size_t s) {
  table.tx[s] = 0.0;
  table.ty[s] = 1.0;
  table.tz[s] = 1.0;
  table.ex[s] = 0.0;
  table.ey[s] = 1.0;
  table.ez[s] = 1.0;
  table.sigma1[s] = 1.0;
  table.sigma2[s] = 1.0;
  table.rho_min[s] = kInf;
  table.we[s] = 1.0;  // √(ez/ey) of the inert coefficients, kept finite
  table.valid[s] = 0;
}

}  // namespace

ExpansionSoA ExpansionSoA::build(const ModelParams& params) {
  return build_with(params, kernels::active_ops());
}

ExpansionSoA ExpansionSoA::build_with(const ModelParams& params,
                                      const kernels::KernelOps& ops) {
  params.validate();
  ExpansionSoA table;
  table.k = params.speeds.size();
  table.count = table.k * table.k;
  table.padded = (table.count + kLane - 1) / kLane * kLane;

  table.tx.resize(table.padded);
  table.ty.resize(table.padded);
  table.tz.resize(table.padded);
  table.ex.resize(table.padded);
  table.ey.resize(table.padded);
  table.ez.resize(table.padded);
  table.sigma1.resize(table.padded);
  table.sigma2.resize(table.padded);
  table.rho_min.resize(table.padded);
  table.we.resize(table.padded);
  table.valid.resize(table.padded);

  for (std::size_t i = 0; i < table.k; ++i) {
    for (std::size_t j = 0; j < table.k; ++j) {
      table.sigma1[table.slot(i, j)] = params.speeds[i];
      table.sigma2[table.slot(i, j)] = params.speeds[j];
    }
  }
  ops.build_pair_table(params, table);

  // Padding is canonicalized *after* the op so every tier produces
  // byte-identical arrays end to end, whatever its tail handling did.
  for (std::size_t s = table.count; s < table.padded; ++s) {
    write_inert_slot(table, s);
  }
  return table;
}

}  // namespace rexspeed::core
