#include "rexspeed/core/model_params.hpp"

#include <stdexcept>
#include <string>

namespace rexspeed::core {

double ModelParams::failstop_fraction() const noexcept {
  const double total = total_error_rate();
  return total > 0.0 ? lambda_failstop / total : 0.0;
}

ModelParams ModelParams::from_configuration(
    const platform::Configuration& config) {
  config.validate();
  ModelParams params{
      .lambda_silent = config.platform.error_rate,
      .lambda_failstop = 0.0,
      .checkpoint_s = config.platform.checkpoint_s,
      .recovery_s = config.platform.recovery_s(),
      .verification_s = config.platform.verification_s,
      .kappa_mw = config.processor.kappa_mw,
      .idle_power_mw = config.processor.idle_power_mw,
      .io_power_mw = config.io_power_mw,
      .speeds = config.processor.speeds};
  params.validate();
  return params;
}

void ModelParams::validate() const {
  if (lambda_silent < 0.0 || lambda_failstop < 0.0) {
    throw std::invalid_argument(
        "ModelParams: error rates must be non-negative");
  }
  if (checkpoint_s < 0.0 || recovery_s < 0.0 || verification_s < 0.0) {
    throw std::invalid_argument(
        "ModelParams: resilience costs must be non-negative");
  }
  if (kappa_mw < 0.0 || idle_power_mw < 0.0 || io_power_mw < 0.0) {
    throw std::invalid_argument("ModelParams: powers must be non-negative");
  }
  if (speeds.empty()) {
    throw std::invalid_argument("ModelParams: speed set must not be empty");
  }
  double prev = 0.0;
  for (const double s : speeds) {
    if (!(s > 0.0) || s > 1.0) {
      throw std::invalid_argument(
          "ModelParams: speeds must lie in (0, 1], got " + std::to_string(s));
    }
    if (s <= prev) {
      throw std::invalid_argument(
          "ModelParams: speeds must be strictly increasing");
    }
    prev = s;
  }
}

}  // namespace rexspeed::core
