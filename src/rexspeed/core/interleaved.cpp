#include "rexspeed/core/interleaved.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "rexspeed/core/numeric_optimizer.hpp"

namespace rexspeed::core {

namespace {

void check_args(const ModelParams& params, double work, unsigned segments,
                double sigma1, double sigma2) {
  params.validate();
  if (params.lambda_failstop > 0.0) {
    throw std::invalid_argument(
        "interleaved expectations: derived for silent errors only");
  }
  if (!(work > 0.0)) {
    throw std::invalid_argument(
        "interleaved expectations: work must be positive");
  }
  if (segments == 0) {
    throw std::invalid_argument(
        "interleaved expectations: need at least one segment");
  }
  if (!(sigma1 > 0.0) || !(sigma2 > 0.0)) {
    throw std::invalid_argument(
        "interleaved expectations: speeds must be positive");
  }
}

/// Per-attempt aggregates at one speed: probability of failure `q`,
/// expected *lost* time `lost_time` spent before detection on a failed
/// attempt (compute+verify, excluding the recovery), and the deterministic
/// duration of a successful attempt `success_time`.
struct AttemptProfile {
  double q = 0.0;
  double lost_time = 0.0;     // E[time | failure] · P(failure)
  double success_time = 0.0;  // W/σ + m·V/σ
};

AttemptProfile profile(const ModelParams& p, double work, unsigned segments,
                       double sigma) {
  const double m = static_cast<double>(segments);
  const double seg_compute = work / (m * sigma);
  const double verify = p.verification_s / sigma;
  const double a = p.lambda_silent * seg_compute;  // per-segment exposure
  const double step = seg_compute + verify;        // segment + its check

  AttemptProfile out;
  out.success_time = work / sigma + m * verify;
  // P(first error in segment i) = e^{−(i−1)a}(1 − e^{−a}); detection at
  // the end of segment i costs i·step.
  const double p_seg = -std::expm1(-a);
  double survive = 1.0;  // e^{−(i−1)a}
  for (unsigned i = 1; i <= segments; ++i) {
    const double pi = survive * p_seg;
    out.q += pi;
    out.lost_time += pi * static_cast<double>(i) * step;
    survive *= std::exp(-a);
  }
  return out;
}

}  // namespace

double expected_time_interleaved(const ModelParams& params, double work,
                                 unsigned segments, double sigma1,
                                 double sigma2) {
  check_args(params, work, segments, sigma1, sigma2);
  const AttemptProfile first = profile(params, work, segments, sigma1);
  const AttemptProfile retry = profile(params, work, segments, sigma2);
  // Tail (all retries at σ2): T2 = lost + q·R + (1−q)(succ + C) + q·T2.
  const double tail =
      (retry.lost_time + retry.q * params.recovery_s +
       (1.0 - retry.q) * (retry.success_time + params.checkpoint_s)) /
      (1.0 - retry.q);
  return first.lost_time + first.q * (params.recovery_s + tail) +
         (1.0 - first.q) * (first.success_time + params.checkpoint_s);
}

double expected_energy_interleaved(const ModelParams& params, double work,
                                   unsigned segments, double sigma1,
                                   double sigma2) {
  check_args(params, work, segments, sigma1, sigma2);
  const AttemptProfile first = profile(params, work, segments, sigma1);
  const AttemptProfile retry = profile(params, work, segments, sigma2);
  const double pc1 = params.compute_power(sigma1);
  const double pc2 = params.compute_power(sigma2);
  const double pio = params.io_total_power();
  const double tail =
      (retry.lost_time * pc2 + retry.q * params.recovery_s * pio +
       (1.0 - retry.q) *
           (retry.success_time * pc2 + params.checkpoint_s * pio)) /
      (1.0 - retry.q);
  return first.lost_time * pc1 +
         first.q * (params.recovery_s * pio + tail) +
         (1.0 - first.q) *
             (first.success_time * pc1 + params.checkpoint_s * pio);
}

InterleavedSolution optimize_interleaved(const ModelParams& params,
                                         double rho, double sigma1,
                                         double sigma2,
                                         unsigned max_segments) {
  if (!(rho > 0.0)) {
    throw std::invalid_argument("optimize_interleaved: rho must be positive");
  }
  if (max_segments == 0) {
    throw std::invalid_argument(
        "optimize_interleaved: need at least one segment");
  }
  InterleavedSolution best;
  best.sigma1 = sigma1;
  best.sigma2 = sigma2;
  best.energy_overhead = std::numeric_limits<double>::infinity();
  NumericOptions options;
  for (unsigned m = 1; m <= max_segments; ++m) {
    const auto time_per_work = [&](double w) {
      return expected_time_interleaved(params, w, m, sigma1, sigma2) / w;
    };
    const auto energy_per_work = [&](double w) {
      return expected_energy_interleaved(params, w, m, sigma1, sigma2) / w;
    };
    // Reuse the exact-pair machinery shape: find the feasible window of
    // the time constraint, then minimize energy inside it.
    const double w_time = minimize_unimodal_overhead(time_per_work, options);
    if (time_per_work(w_time) > rho) continue;
    // Bracket the feasible interval around the time optimum, then bisect
    // each boundary so the energy search never leaves the feasible set.
    const auto bisect = [&](double inside, double outside) {
      for (int i = 0; i < 200 && std::abs(outside - inside) >
                                     1e-9 * (inside + 1.0); ++i) {
        const double mid = 0.5 * (inside + outside);
        (time_per_work(mid) <= rho ? inside : outside) = mid;
      }
      return inside;
    };
    double lo = w_time;
    while (lo > 1e-6 && time_per_work(lo * 0.5) <= rho) lo *= 0.5;
    lo = bisect(lo, lo * 0.5);
    double hi = w_time;
    while (hi < options.w_cap && time_per_work(hi * 2.0) <= rho) hi *= 2.0;
    hi = bisect(hi, std::min(hi * 2.0, options.w_cap));
    const double w_opt =
        golden_section_minimize(energy_per_work, lo, hi, options);
    const double energy = energy_per_work(w_opt);
    const double time = time_per_work(w_opt);
    if (time <= rho * (1.0 + 1e-9) && energy < best.energy_overhead) {
      best.feasible = true;
      best.segments = m;
      best.w_opt = w_opt;
      best.energy_overhead = energy;
      best.time_overhead = time;
    }
  }
  if (!best.feasible) best.energy_overhead = 0.0;
  return best;
}

InterleavedSolver::InterleavedSolver(ModelParams params,
                                     unsigned max_segments)
    : params_(std::move(params)), max_segments_(max_segments) {
  params_.validate();
  if (params_.lambda_failstop > 0.0) {
    throw std::invalid_argument(
        "InterleavedSolver: derived for silent errors only (lambda_failstop "
        "must be 0)");
  }
  if (max_segments_ == 0) {
    throw std::invalid_argument(
        "InterleavedSolver: need at least one segment");
  }
  const std::size_t speed_count = params_.speeds.size();
  cache_.reserve(speed_count * speed_count * max_segments_);
  const NumericOptions options;
  for (std::size_t i = 0; i < speed_count; ++i) {
    for (std::size_t j = 0; j < speed_count; ++j) {
      const double sigma1 = params_.speeds[i];
      const double sigma2 = params_.speeds[j];
      for (unsigned m = 1; m <= max_segments_; ++m) {
        InterleavedExpansion expansion;
        expansion.sigma1 = sigma1;
        expansion.sigma2 = sigma2;
        expansion.index1 = static_cast<int>(i);
        expansion.index2 = static_cast<int>(j);
        expansion.segments = m;
        const auto time_per_work = [&](double w) {
          return expected_time_interleaved(params_, w, m, sigma1, sigma2) / w;
        };
        const auto energy_per_work = [&](double w) {
          return expected_energy_interleaved(params_, w, m, sigma1, sigma2) /
                 w;
        };
        expansion.w_time = minimize_unimodal_overhead(time_per_work, options);
        expansion.rho_min = time_per_work(expansion.w_time);
        expansion.w_energy =
            minimize_unimodal_overhead(energy_per_work, options);
        expansion.energy_min = energy_per_work(expansion.w_energy);
        expansion.time_at_we = time_per_work(expansion.w_energy);
        cache_.push_back(expansion);
      }
    }
  }
  rho_min_flat_.resize(cache_.size());
  time_at_we_flat_.resize(cache_.size());
  for (std::size_t index = 0; index < cache_.size(); ++index) {
    rho_min_flat_[index] = cache_[index].rho_min;
    time_at_we_flat_[index] = cache_[index].time_at_we;
  }
}

InterleavedSolution InterleavedSolver::solve_cached(
    double rho, const InterleavedExpansion& expansion) const {
  InterleavedSolution solution;
  solution.segments = expansion.segments;
  solution.sigma1 = expansion.sigma1;
  solution.sigma2 = expansion.sigma2;
  if (!(expansion.rho_min <= rho)) return solution;  // bound unattainable

  if (expansion.time_at_we <= rho) {
    // The unconstrained energy optimum already satisfies the bound: the
    // solve is a pure cache lookup (the common case of loose-ρ grid
    // points, and the reason one solver serves a whole sweep).
    solution.feasible = true;
    solution.w_opt = expansion.w_energy;
    solution.energy_overhead = expansion.energy_min;
    solution.time_overhead = expansion.time_at_we;
    return solution;
  }

  // The unconstrained energy optimum violates the bound, so the
  // constrained optimum sits on the feasibility boundary between w_time
  // (feasible) and w_energy (not): both overhead curves are unimodal, so
  // energy only decreases toward w_energy and the boundary nearest it
  // wins. Locate it by bisection, keeping the feasible end.
  const unsigned m = expansion.segments;
  const auto time_per_work = [&](double w) {
    return expected_time_interleaved(params_, w, m, expansion.sigma1,
                                     expansion.sigma2) /
           w;
  };
  double inside = expansion.w_time;
  double outside = expansion.w_energy;
  for (int it = 0; it < 200 && std::abs(outside - inside) >
                                   1e-9 * (inside + 1.0); ++it) {
    const double mid = 0.5 * (inside + outside);
    (time_per_work(mid) <= rho ? inside : outside) = mid;
  }
  const double w_opt = inside;
  solution.feasible = true;
  solution.w_opt = w_opt;
  solution.energy_overhead =
      expected_energy_interleaved(params_, w_opt, m, expansion.sigma1,
                                  expansion.sigma2) /
      w_opt;
  solution.time_overhead = time_per_work(w_opt);
  return solution;
}

InterleavedSolution InterleavedSolver::solve(double rho) const {
  if (!(rho > 0.0)) {
    throw std::invalid_argument("InterleavedSolver: rho must be positive");
  }
  InterleavedSolution best;
  best.energy_overhead = std::numeric_limits<double>::infinity();
  for (const InterleavedExpansion& expansion : cache_) {
    const InterleavedSolution candidate = solve_cached(rho, expansion);
    if (candidate.feasible &&
        candidate.energy_overhead < best.energy_overhead) {
      best = candidate;
    }
  }
  if (!best.feasible) best.energy_overhead = 0.0;
  return best;
}

InterleavedSolution InterleavedSolver::solve_segments(
    double rho, unsigned segments) const {
  if (!(rho > 0.0)) {
    throw std::invalid_argument("InterleavedSolver: rho must be positive");
  }
  if (segments == 0 || segments > max_segments_) {
    throw std::invalid_argument(
        "InterleavedSolver: segments must be in [1, max_segments]");
  }
  InterleavedSolution best;
  best.segments = segments;
  best.energy_overhead = std::numeric_limits<double>::infinity();
  for (const InterleavedExpansion& expansion : cache_) {
    if (expansion.segments != segments) continue;
    const InterleavedSolution candidate = solve_cached(rho, expansion);
    if (candidate.feasible &&
        candidate.energy_overhead < best.energy_overhead) {
      best = candidate;
    }
  }
  if (!best.feasible) best.energy_overhead = 0.0;
  return best;
}

InterleavedSolution InterleavedSolver::solve_classified(
    double rho, unsigned segments, const unsigned char* cls) const {
  if (!(rho > 0.0)) {
    throw std::invalid_argument("InterleavedSolver: rho must be positive");
  }
  if (segments > max_segments_) {
    throw std::invalid_argument(
        "InterleavedSolver: segments must be in [0, max_segments]");
  }
  // Same scan as solve()/solve_segments() — in cache order, strict-<
  // selection, same trailing overhead reset — but the feasibility and
  // lookup branch tests were already answered in bulk by the classify
  // kernel: class-0 slots are skipped off one byte, class-1 slots cost
  // one comparison against the cached minimum, and only class-2 slots
  // (tight bounds) pay the bisection.
  InterleavedSolution best;
  if (segments != 0) best.segments = segments;
  best.energy_overhead = std::numeric_limits<double>::infinity();
  for (std::size_t s = 0; s < cache_.size(); ++s) {
    const InterleavedExpansion& expansion = cache_[s];
    if (segments != 0 && expansion.segments != segments) continue;
    if (cls[s] == 0) continue;
    if (cls[s] == 1) {
      if (expansion.energy_min < best.energy_overhead) {
        best.feasible = true;
        best.segments = expansion.segments;
        best.sigma1 = expansion.sigma1;
        best.sigma2 = expansion.sigma2;
        best.w_opt = expansion.w_energy;
        best.energy_overhead = expansion.energy_min;
        best.time_overhead = expansion.time_at_we;
      }
      continue;
    }
    const InterleavedSolution candidate = solve_cached(rho, expansion);
    if (candidate.feasible &&
        candidate.energy_overhead < best.energy_overhead) {
      best = candidate;
    }
  }
  if (!best.feasible) best.energy_overhead = 0.0;
  return best;
}

}  // namespace rexspeed::core
