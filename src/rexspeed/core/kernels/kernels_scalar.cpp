// Portable reference tier. Every slot goes through the *same* library
// functions the pointwise solvers use (time_expansion, energy_expansion,
// feasible_interval, OverheadExpansion members), so its outputs are
// bit-identical to the pre-SoA per-pair code by construction — this is
// the contract every SIMD tier is tested against.

#include <algorithm>
#include <cmath>
#include <limits>

#include "rexspeed/core/expansion_soa.hpp"
#include "rexspeed/core/feasibility.hpp"
#include "rexspeed/core/first_order.hpp"
#include "rexspeed/core/kernels/kernel_dispatch.hpp"
#include "rexspeed/core/model_params.hpp"

namespace rexspeed::core::kernels {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

void build_pair_table_scalar(const ModelParams& params, ExpansionSoA& out) {
  for (std::size_t s = 0; s < out.count; ++s) {
    const double sigma1 = out.sigma1[s];
    const double sigma2 = out.sigma2[s];
    const OverheadExpansion time_exp = time_expansion(params, sigma1, sigma2);
    const OverheadExpansion energy_exp =
        energy_expansion(params, sigma1, sigma2);
    out.tx[s] = time_exp.x;
    out.ty[s] = time_exp.y;
    out.tz[s] = time_exp.z;
    out.ex[s] = energy_exp.x;
    out.ey[s] = energy_exp.y;
    out.ez[s] = energy_exp.z;
    out.rho_min[s] = rho_min(time_exp);
    out.we[s] =
        energy_exp.has_interior_minimum() ? energy_exp.argmin() : kInf;
    out.valid[s] = (time_exp.y > 0.0 && energy_exp.y > 0.0) ? 1 : 0;
  }
}

void eval_pairs_scalar(const ExpansionSoA& table, double rho, double w_cap,
                       double* w_opt, double* w_min, double* w_max,
                       double* energy, unsigned char* feasible) {
  for (std::size_t s = 0; s < table.padded; ++s) {
    // Canonical infeasible outputs; overwritten only by feasible slots so
    // invalid/infeasible/padding lanes compare bitwise across tiers.
    w_opt[s] = 0.0;
    w_min[s] = 0.0;
    w_max[s] = 0.0;
    energy[s] = kInf;
    feasible[s] = 0;
    if (s >= table.count || table.valid[s] == 0) continue;

    // The kFirstOrder branch of BiCritSolver::solve_cached_pair, slot-wise.
    const OverheadExpansion time_exp = table.time_expansion(s);
    const OverheadExpansion energy_exp = table.energy_expansion(s);
    const FeasibleInterval interval = feasible_interval(time_exp, rho);
    if (!interval.feasible()) continue;

    // table.we caches argmin() from build time — same inputs, same
    // correctly-rounded √(ez/ey), same bits.
    double w_energy =
        energy_exp.has_interior_minimum() ? table.we[s] : interval.w_max;
    if (!std::isfinite(w_energy)) {
      w_energy = std::isfinite(interval.w_max) ? interval.w_max : w_cap;
    }
    const double w =
        std::min(std::max(interval.w_min, w_energy),
                 std::isfinite(interval.w_max)
                     ? interval.w_max
                     : std::numeric_limits<double>::max());
    w_opt[s] = w;
    w_min[s] = interval.w_min;
    w_max[s] = interval.w_max;
    energy[s] = energy_exp.evaluate(w);
    feasible[s] = 1;
  }
}

void classify_pairs_scalar(const double* rho_min, const double* time_at_we,
                           std::size_t count, double rho,
                           unsigned char* cls) {
  for (std::size_t s = 0; s < count; ++s) {
    // The branch structure of ExactSolver::solve_cached: NaN-propagating
    // comparisons mean "not ≤" routes to infeasible, exactly as there.
    cls[s] = !(rho_min[s] <= rho) ? 0u : (time_at_we[s] <= rho ? 1u : 2u);
  }
}

}  // namespace

const KernelOps& scalar_ops() noexcept {
  static const KernelOps ops{
      "scalar",
      &build_pair_table_scalar,
      &eval_pairs_scalar,
      &classify_pairs_scalar,
  };
  return ops;
}

}  // namespace rexspeed::core::kernels
