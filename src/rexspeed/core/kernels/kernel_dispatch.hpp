#pragma once

#include <cstddef>
#include <vector>

namespace rexspeed::core {

struct ModelParams;
struct ExpansionSoA;

namespace kernels {

/// The instruction-set tiers the expansion kernels ship in. Exactly one
/// tier is active per process (picked once at first use); the scalar tier
/// is the source of truth — every SIMD tier must reproduce its outputs
/// bit for bit (the kernels use only IEEE correctly-rounded lane ops in
/// the scalar evaluation order, no FMA contraction, no reassociation).
enum class KernelTier {
  kScalar,  ///< portable reference (always available)
  kAVX2,    ///< 4-wide double lanes, x86-64 with AVX2
  kNEON,    ///< 2-wide double lanes, aarch64
};

[[nodiscard]] const char* to_string(KernelTier tier) noexcept;

/// One tier's implementation of the two hot loops plus the exact-cache
/// classifier — plain function pointers so the dispatch is one indirect
/// call per *batch*, never per pair.
struct KernelOps {
  const char* name = "scalar";

  /// Hot loop (a): builds all K² first-order expansion coefficient slots
  /// of `out` in one pass — bit-identical to calling
  /// time_expansion/energy_expansion (+ rho_min, first-order validity)
  /// per pair. ExpansionSoA::build_with sizes the table and prefills
  /// sigma1/sigma2 (row-major: pair (i, j) at i·K + j) before the call;
  /// the op writes the coefficient, rho_min and valid slots [0, count).
  void (*build_pair_table)(const ModelParams& params, ExpansionSoA& out) =
      nullptr;

  /// Hot loop (b): evaluates every cached pair against one bound `rho`
  /// (> 0) — the kFirstOrder branch of BiCritSolver::solve_cached_pair
  /// per slot. Output arrays have table.padded entries; w_min/w_max carry
  /// the pair's feasible interval [W1, W2] so winner reconstruction never
  /// re-solves the quadratic. Infeasible (or invalid, or padding) slots
  /// are canonicalized to w_opt = 0, w_min = 0, w_max = 0, energy = +inf,
  /// feasible = 0 so whole arrays compare bitwise across tiers.
  void (*eval_pairs)(const ExpansionSoA& table, double rho, double w_cap,
                     double* w_opt, double* w_min, double* w_max,
                     double* energy, unsigned char* feasible) = nullptr;

  /// Classifies `count` cached exact/interleaved expansions against one
  /// bound: 0 = infeasible (!(rho_min ≤ ρ)), 1 = pure cache lookup
  /// (time_at_we ≤ ρ), 2 = tight (needs one boundary bisection) — the
  /// branch structure of ExactSolver::solve_cached, hoisted into one
  /// vectorized pass per grid point.
  void (*classify_pairs)(const double* rho_min, const double* time_at_we,
                         std::size_t count, double rho,
                         unsigned char* cls) = nullptr;
};

/// The portable reference tier (always available, the bit-identity
/// source of truth).
[[nodiscard]] const KernelOps& scalar_ops() noexcept;

/// A specific tier's ops. Tiers the *build* cannot serve (e.g. kAVX2 on
/// aarch64) fall back to scalar_ops() — compare names to detect this.
/// Calling a SIMD tier's ops on hardware that lacks the feature is
/// undefined (SIGILL); consult available_tiers() first.
[[nodiscard]] const KernelOps& ops_for_tier(KernelTier tier) noexcept;

/// The tier the running CPU supports, probed once at first use
/// (cpuid/feature test). Setting REXSPEED_FORCE_SCALAR=1 in the
/// environment pins the scalar tier regardless of hardware; the value is
/// read once, at the first call.
[[nodiscard]] KernelTier active_tier() noexcept;

/// The active tier's ops — what every solver build/eval path dispatches
/// through.
[[nodiscard]] const KernelOps& active_ops() noexcept;

/// Tiers this build could run on this machine (always contains kScalar).
/// Diagnostic only (the CLI `kernels` command).
[[nodiscard]] std::vector<KernelTier> available_tiers();

/// Pure tier-selection rule, exposed for tests: what active_tier() would
/// pick given the probed facts.
[[nodiscard]] KernelTier choose_tier(bool force_scalar, bool has_avx2,
                                     bool has_neon) noexcept;

}  // namespace kernels
}  // namespace rexspeed::core
