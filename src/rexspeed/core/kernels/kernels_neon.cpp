// NEON tier: 2-wide double lanes for aarch64, mirroring the AVX2 tier's
// branch-as-blend structure and the scalar reference's exact IEEE
// evaluation order (the library builds with -ffp-contract=off, so no
// fused multiply-adds sneak in). Compares are false on NaN (like scalar
// ordered compares); the unordered predicates (!=, "not <", "not >=")
// are built by complementing the ordered opposite.

#include "rexspeed/core/kernels/kernel_dispatch.hpp"

#if defined(__aarch64__)

#include <arm_neon.h>

#include <cstddef>
#include <cstdint>
#include <limits>

#include "rexspeed/core/expansion_soa.hpp"
#include "rexspeed/core/model_params.hpp"

namespace rexspeed::core::kernels {
namespace {

inline float64x2_t blend(float64x2_t a, float64x2_t b, uint64x2_t mask) {
  return vbslq_f64(mask, b, a);  // mask ? b : a
}
inline uint64x2_t not_mask(uint64x2_t m) {
  return veorq_u64(m, vdupq_n_u64(~UINT64_C(0)));
}
// std::max(a, b) = (a < b) ? b : a; std::min(a, b) = (b < a) ? b : a.
inline float64x2_t std_max(float64x2_t a, float64x2_t b) {
  return blend(a, b, vcltq_f64(a, b));
}
inline float64x2_t std_min(float64x2_t a, float64x2_t b) {
  return blend(a, b, vcltq_f64(b, a));
}
inline float64x2_t copysign_f64(float64x2_t mag, float64x2_t sgn) {
  const uint64x2_t smask = vdupq_n_u64(UINT64_C(0x8000000000000000));
  return vbslq_f64(smask, sgn, mag);
}
inline uint64x2_t is_finite(float64x2_t a) {
  return vcltq_f64(vabsq_f64(a),
                   vdupq_n_f64(std::numeric_limits<double>::infinity()));
}

void build_pair_table_neon(const ModelParams& params, ExpansionSoA& out) {
  const float64x2_t one = vdupq_n_f64(1.0);
  const float64x2_t two = vdupq_n_f64(2.0);
  const float64x2_t zero = vdupq_n_f64(0.0);
  const float64x2_t ninf =
      vdupq_n_f64(-std::numeric_limits<double>::infinity());
  const float64x2_t pinf =
      vdupq_n_f64(std::numeric_limits<double>::infinity());
  const float64x2_t lam = vdupq_n_f64(params.total_error_rate());
  const float64x2_t lf = vdupq_n_f64(params.lambda_failstop);
  const float64x2_t r = vdupq_n_f64(params.recovery_s);
  const float64x2_t v = vdupq_n_f64(params.verification_s);
  const float64x2_t chk = vdupq_n_f64(params.checkpoint_s);
  const float64x2_t kappa = vdupq_n_f64(params.kappa_mw);
  const float64x2_t idle = vdupq_n_f64(params.idle_power_mw);
  const float64x2_t pio = vdupq_n_f64(params.io_total_power());

  for (std::size_t s = 0; s < out.padded; s += 2) {
    const float64x2_t s1 = vld1q_f64(out.sigma1.data() + s);
    const float64x2_t s2 = vld1q_f64(out.sigma2.data() + s);
    const float64x2_t pc1 = vaddq_f64(
        idle, vmulq_f64(vmulq_f64(vmulq_f64(kappa, s1), s1), s1));
    const float64x2_t pc2 = vaddq_f64(
        idle, vmulq_f64(vmulq_f64(vmulq_f64(kappa, s2), s2), s2));

    const float64x2_t tx = vdivq_f64(
        vsubq_f64(
            vaddq_f64(one,
                      vmulq_f64(lam, vaddq_f64(r, vdivq_f64(v, s2)))),
            vdivq_f64(vmulq_f64(lf, v), s1)),
        s1);
    const float64x2_t ty = vsubq_f64(
        vdivq_f64(lam, vmulq_f64(s1, s2)),
        vdivq_f64(lf, vmulq_f64(vmulq_f64(two, s1), s1)));
    const float64x2_t tz = vaddq_f64(chk, vdivq_f64(v, s1));

    const float64x2_t ex = vsubq_f64(
        vaddq_f64(
            vdivq_f64(pc1, s1),
            vdivq_f64(
                vmulq_f64(lam,
                          vaddq_f64(vmulq_f64(r, pio),
                                    vdivq_f64(vmulq_f64(v, pc2), s2))),
                s1)),
        vdivq_f64(vmulq_f64(vmulq_f64(lf, v), pc1), vmulq_f64(s1, s1)));
    const float64x2_t ey = vsubq_f64(
        vdivq_f64(vmulq_f64(lam, pc2), vmulq_f64(s1, s2)),
        vdivq_f64(vmulq_f64(lf, pc1),
                  vmulq_f64(vmulq_f64(two, s1), s1)));
    const float64x2_t ez = vaddq_f64(
        vmulq_f64(chk, pio), vdivq_f64(vmulq_f64(v, pc1), s1));

    const float64x2_t min_val = vaddq_f64(
        tx, vmulq_f64(two, vsqrtq_f64(vmulq_f64(ty, tz))));
    float64x2_t rho_min = blend(min_val, tx, vcleq_f64(tz, zero));
    rho_min = blend(rho_min, ninf, vcleq_f64(ty, zero));

    // Energy argmin √(ez/ey) where the interior minimum exists, +inf
    // otherwise — hoisted here because it is ρ-independent.
    const uint64x2_t has_interior =
        vandq_u64(vcgtq_f64(ey, zero), vcgtq_f64(ez, zero));
    const float64x2_t we =
        blend(pinf, vsqrtq_f64(vdivq_f64(ez, ey)), has_interior);

    vst1q_f64(out.tx.data() + s, tx);
    vst1q_f64(out.ty.data() + s, ty);
    vst1q_f64(out.tz.data() + s, tz);
    vst1q_f64(out.ex.data() + s, ex);
    vst1q_f64(out.ey.data() + s, ey);
    vst1q_f64(out.ez.data() + s, ez);
    vst1q_f64(out.rho_min.data() + s, rho_min);
    vst1q_f64(out.we.data() + s, we);

    const uint64x2_t valid =
        vandq_u64(vcgtq_f64(ty, zero), vcgtq_f64(ey, zero));
    out.valid[s] = vgetq_lane_u64(valid, 0) ? 1 : 0;
    out.valid[s + 1] = vgetq_lane_u64(valid, 1) ? 1 : 0;
  }
}

void eval_pairs_neon(const ExpansionSoA& table, double rho, double w_cap,
                     double* w_opt, double* w_min_out, double* w_max_out,
                     double* energy, unsigned char* feasible) {
  const float64x2_t zero = vdupq_n_f64(0.0);
  const float64x2_t two = vdupq_n_f64(2.0);
  const float64x2_t four = vdupq_n_f64(4.0);
  const float64x2_t neg_half = vdupq_n_f64(-0.5);
  const float64x2_t inf =
      vdupq_n_f64(std::numeric_limits<double>::infinity());
  const float64x2_t dbl_max =
      vdupq_n_f64(std::numeric_limits<double>::max());
  const float64x2_t rho_v = vdupq_n_f64(rho);
  const float64x2_t cap_v = vdupq_n_f64(w_cap);

  for (std::size_t s = 0; s < table.padded; s += 2) {
    const float64x2_t a = vld1q_f64(table.ty.data() + s);
    const float64x2_t b =
        vsubq_f64(vld1q_f64(table.tx.data() + s), rho_v);
    const float64x2_t c = vld1q_f64(table.tz.data() + s);

    const float64x2_t disc = vsubq_f64(
        vmulq_f64(b, b), vmulq_f64(vmulq_f64(four, a), c));
    const float64x2_t sqrt_disc = vsqrtq_f64(disc);
    const float64x2_t q =
        vmulq_f64(neg_half, vaddq_f64(b, copysign_f64(sqrt_disc, b)));
    const float64x2_t r1 = vdivq_f64(q, a);
    const float64x2_t r2_from_q = vdivq_f64(c, q);
    const float64x2_t r2_alt =
        vsubq_f64(vdivq_f64(vnegq_f64(b), a), r1);
    const uint64x2_t q_nonzero = not_mask(vceqq_f64(q, zero));
    const float64x2_t r2 = blend(r2_alt, r2_from_q, q_nonzero);
    const uint64x2_t swap = vcgtq_f64(r1, r2);
    const float64x2_t lower_two = blend(r1, r2, swap);
    const float64x2_t upper_two = blend(r2, r1, swap);
    const float64x2_t root_one =
        vdivq_f64(vnegq_f64(b), vmulq_f64(two, a));
    const uint64x2_t has_roots = not_mask(vcltq_f64(disc, zero));
    const uint64x2_t two_roots =
        vandq_u64(has_roots, not_mask(vceqq_f64(disc, zero)));
    const float64x2_t lower = blend(root_one, lower_two, two_roots);
    const float64x2_t upper = blend(root_one, upper_two, two_roots);

    const uint64x2_t a_pos = vcgtq_f64(a, zero);
    const uint64x2_t a_zero = vceqq_f64(a, zero);
    const uint64x2_t tail = not_mask(vorrq_u64(a_pos, a_zero));

    const uint64x2_t feas_pos =
        vandq_u64(has_roots, not_mask(vcleq_f64(upper, zero)));
    const float64x2_t w_min_pos = std_max(lower, zero);
    const uint64x2_t feas_zero = not_mask(vcgeq_f64(b, zero));
    const float64x2_t w_min_zero = blend(
        zero, vdivq_f64(c, vnegq_f64(b)), vcgtq_f64(c, zero));
    const float64x2_t w_min_tail =
        blend(zero, std_max(upper, zero), has_roots);

    float64x2_t w_min = blend(w_min_tail, w_min_zero, a_zero);
    w_min = blend(w_min, w_min_pos, a_pos);
    const float64x2_t w_max = blend(inf, upper, a_pos);
    uint64x2_t feas = vorrq_u64(vandq_u64(a_pos, feas_pos),
                                vandq_u64(a_zero, feas_zero));
    feas = vorrq_u64(feas, tail);

    const float64x2_t ey = vld1q_f64(table.ey.data() + s);
    const float64x2_t ez = vld1q_f64(table.ez.data() + s);
    const uint64x2_t has_interior =
        vandq_u64(vcgtq_f64(ey, zero), vcgtq_f64(ez, zero));
    // √(ez/ey) is ρ-independent: streamed from the build-time `we` column
    // instead of recomputed per grid point.
    const float64x2_t argmin = vld1q_f64(table.we.data() + s);
    float64x2_t w_energy = blend(w_max, argmin, has_interior);
    const uint64x2_t w_max_finite = is_finite(w_max);
    w_energy = blend(blend(cap_v, w_max, w_max_finite), w_energy,
                     is_finite(w_energy));
    const float64x2_t w_clamp = blend(dbl_max, w_max, w_max_finite);
    const float64x2_t w = std_min(std_max(w_min, w_energy), w_clamp);
    const float64x2_t ex = vld1q_f64(table.ex.data() + s);
    const float64x2_t e = vaddq_f64(vaddq_f64(ex, vmulq_f64(ey, w)),
                                    vdivq_f64(ez, w));

    const uint64x2_t valid = vcombine_u64(
        vdup_n_u64(table.valid[s] ? ~UINT64_C(0) : 0),
        vdup_n_u64(table.valid[s + 1] ? ~UINT64_C(0) : 0));
    const uint64x2_t live = vandq_u64(feas, valid);
    vst1q_f64(w_opt + s,
              vreinterpretq_f64_u64(vandq_u64(
                  vreinterpretq_u64_f64(w), live)));
    vst1q_f64(w_min_out + s,
              vreinterpretq_f64_u64(vandq_u64(
                  vreinterpretq_u64_f64(w_min), live)));
    vst1q_f64(w_max_out + s,
              vreinterpretq_f64_u64(vandq_u64(
                  vreinterpretq_u64_f64(w_max), live)));
    vst1q_f64(energy + s, blend(inf, e, live));
    feasible[s] = vgetq_lane_u64(live, 0) ? 1 : 0;
    feasible[s + 1] = vgetq_lane_u64(live, 1) ? 1 : 0;
  }
}

void classify_pairs_neon(const double* rho_min, const double* time_at_we,
                         std::size_t count, double rho,
                         unsigned char* cls) {
  const float64x2_t rho_v = vdupq_n_f64(rho);
  std::size_t s = 0;
  for (; s + 2 <= count; s += 2) {
    const uint64x2_t feas = vcleq_f64(vld1q_f64(rho_min + s), rho_v);
    const uint64x2_t lookup = vcleq_f64(vld1q_f64(time_at_we + s), rho_v);
    for (int lane = 0; lane < 2; ++lane) {
      const std::uint64_t f =
          lane ? vgetq_lane_u64(feas, 1) : vgetq_lane_u64(feas, 0);
      const std::uint64_t l =
          lane ? vgetq_lane_u64(lookup, 1) : vgetq_lane_u64(lookup, 0);
      cls[s + static_cast<std::size_t>(lane)] = !f ? 0u : (l ? 1u : 2u);
    }
  }
  for (; s < count; ++s) {
    cls[s] = !(rho_min[s] <= rho) ? 0u : (time_at_we[s] <= rho ? 1u : 2u);
  }
}

}  // namespace

const KernelOps& neon_ops() noexcept {
  static const KernelOps ops{
      "neon",
      &build_pair_table_neon,
      &eval_pairs_neon,
      &classify_pairs_neon,
  };
  return ops;
}

}  // namespace rexspeed::core::kernels

#else  // non-aarch64 build: the NEON tier is unavailable, alias scalar.

namespace rexspeed::core::kernels {
const KernelOps& neon_ops() noexcept { return scalar_ops(); }
}  // namespace rexspeed::core::kernels

#endif
