#include "rexspeed/core/kernels/kernel_dispatch.hpp"

#include <cstdlib>

namespace rexspeed::core::kernels {

// Defined in kernels_avx2.cpp / kernels_neon.cpp. On targets the build
// cannot serve they return scalar_ops().
[[nodiscard]] const KernelOps& avx2_ops() noexcept;
[[nodiscard]] const KernelOps& neon_ops() noexcept;

const char* to_string(KernelTier tier) noexcept {
  switch (tier) {
    case KernelTier::kAVX2:
      return "avx2";
    case KernelTier::kNEON:
      return "neon";
    case KernelTier::kScalar:
      break;
  }
  return "scalar";
}

KernelTier choose_tier(bool force_scalar, bool has_avx2,
                       bool has_neon) noexcept {
  if (force_scalar) return KernelTier::kScalar;
  if (has_neon) return KernelTier::kNEON;
  if (has_avx2) return KernelTier::kAVX2;
  return KernelTier::kScalar;
}

namespace {

bool env_forces_scalar() noexcept {
  const char* value = std::getenv("REXSPEED_FORCE_SCALAR");
  return value != nullptr && value[0] == '1' && value[1] == '\0';
}

bool cpu_has_avx2() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

bool cpu_has_neon() noexcept {
#if defined(__aarch64__)
  // Advanced SIMD is architecturally mandatory on AArch64.
  return true;
#else
  return false;
#endif
}

}  // namespace

KernelTier active_tier() noexcept {
  static const KernelTier tier =
      choose_tier(env_forces_scalar(), cpu_has_avx2(), cpu_has_neon());
  return tier;
}

const KernelOps& ops_for_tier(KernelTier tier) noexcept {
  switch (tier) {
    case KernelTier::kAVX2:
      return avx2_ops();
    case KernelTier::kNEON:
      return neon_ops();
    case KernelTier::kScalar:
      break;
  }
  return scalar_ops();
}

const KernelOps& active_ops() noexcept { return ops_for_tier(active_tier()); }

std::vector<KernelTier> available_tiers() {
  std::vector<KernelTier> tiers{KernelTier::kScalar};
  if (cpu_has_avx2()) tiers.push_back(KernelTier::kAVX2);
  if (cpu_has_neon()) tiers.push_back(KernelTier::kNEON);
  return tiers;
}

}  // namespace rexspeed::core::kernels
