// AVX2 tier: 4-wide double lanes, bit-identical to the scalar reference.
//
// Bit-identity tactics (see docs/ARCHITECTURE.md):
//  * only IEEE correctly-rounded lane ops (add/sub/mul/div/sqrt) in the
//    scalar code's exact parse order — no reassociation, no FMA (the
//    library builds with -ffp-contract=off and this TU never enables FMA);
//  * every scalar branch becomes a compare + blend with the scalar
//    comparison's NaN semantics spelled out (ordered vs unordered
//    predicates chosen to match `<`, `<=`, `!(x <= y)` exactly);
//  * std::min/std::max are emulated as (b<a)?b:a / (a<b)?b:a — NOT
//    _mm256_min_pd/_mm256_max_pd, whose ±0/NaN behavior differs;
//  * infeasible lanes are canonicalized (w=0, energy=+inf, feasible=0)
//    identically to the scalar tier so whole arrays compare bytewise.
//
// The intrinsics are gated per-function with __attribute__((target))
// instead of a TU-wide -mavx2 so no inline/template code in shared
// headers is ever compiled with AVX2 enabled (an ODR-selected AVX2 body
// would SIGILL on pre-AVX2 hardware).

#include "rexspeed/core/kernels/kernel_dispatch.hpp"

#if defined(__x86_64__) || defined(__i386__)

#include <immintrin.h>

#include <cstddef>
#include <cstdint>
#include <limits>

#include "rexspeed/core/expansion_soa.hpp"
#include "rexspeed/core/model_params.hpp"

namespace rexspeed::core::kernels {
namespace {

#define REXSPEED_AVX2 __attribute__((target("avx2"), always_inline)) inline

REXSPEED_AVX2 __m256d blend(__m256d a, __m256d b, __m256d mask) {
  return _mm256_blendv_pd(a, b, mask);  // mask ? b : a
}
// std::max(a, b) is (a < b) ? b : a; std::min(a, b) is (b < a) ? b : a.
// The LT_OQ predicate is false on NaN, matching scalar operator<.
REXSPEED_AVX2 __m256d std_max(__m256d a, __m256d b) {
  return blend(a, b, _mm256_cmp_pd(a, b, _CMP_LT_OQ));
}
REXSPEED_AVX2 __m256d std_min(__m256d a, __m256d b) {
  return blend(a, b, _mm256_cmp_pd(b, a, _CMP_LT_OQ));
}
REXSPEED_AVX2 __m256d negate(__m256d a) {
  return _mm256_xor_pd(a, _mm256_set1_pd(-0.0));
}
REXSPEED_AVX2 __m256d copysign_pd(__m256d mag, __m256d sgn) {
  const __m256d smask = _mm256_set1_pd(-0.0);
  return _mm256_or_pd(_mm256_andnot_pd(smask, mag),
                      _mm256_and_pd(smask, sgn));
}
// std::isfinite(x) as |x| < inf (false on NaN and ±inf, like the scalar).
REXSPEED_AVX2 __m256d is_finite(__m256d a) {
  const __m256d abs = _mm256_andnot_pd(_mm256_set1_pd(-0.0), a);
  return _mm256_cmp_pd(
      abs, _mm256_set1_pd(std::numeric_limits<double>::infinity()),
      _CMP_LT_OQ);
}
REXSPEED_AVX2 __m256d not_mask(__m256d m) {
  return _mm256_xor_pd(m, _mm256_castsi256_pd(_mm256_set1_epi64x(-1)));
}

__attribute__((target("avx2"))) void build_pair_table_avx2(
    const ModelParams& params, ExpansionSoA& out) {
  const __m256d one = _mm256_set1_pd(1.0);
  const __m256d two = _mm256_set1_pd(2.0);
  const __m256d zero = _mm256_setzero_pd();
  const __m256d ninf =
      _mm256_set1_pd(-std::numeric_limits<double>::infinity());
  const __m256d pinf =
      _mm256_set1_pd(std::numeric_limits<double>::infinity());
  const __m256d lam = _mm256_set1_pd(params.total_error_rate());
  const __m256d lf = _mm256_set1_pd(params.lambda_failstop);
  const __m256d r = _mm256_set1_pd(params.recovery_s);
  const __m256d v = _mm256_set1_pd(params.verification_s);
  const __m256d chk = _mm256_set1_pd(params.checkpoint_s);
  const __m256d kappa = _mm256_set1_pd(params.kappa_mw);
  const __m256d idle = _mm256_set1_pd(params.idle_power_mw);
  const __m256d pio = _mm256_set1_pd(params.io_total_power());

  for (std::size_t s = 0; s < out.padded; s += 4) {
    const __m256d s1 = _mm256_loadu_pd(out.sigma1.data() + s);
    const __m256d s2 = _mm256_loadu_pd(out.sigma2.data() + s);
    // compute_power(σ) = idle + κ·σ·σ·σ, left-to-right.
    const __m256d pc1 = _mm256_add_pd(
        idle,
        _mm256_mul_pd(_mm256_mul_pd(_mm256_mul_pd(kappa, s1), s1), s1));
    const __m256d pc2 = _mm256_add_pd(
        idle,
        _mm256_mul_pd(_mm256_mul_pd(_mm256_mul_pd(kappa, s2), s2), s2));

    // time: x = (1 + λ(r + v/σ2) − λf·v/σ1) / σ1
    const __m256d tx = _mm256_div_pd(
        _mm256_sub_pd(
            _mm256_add_pd(
                one, _mm256_mul_pd(lam, _mm256_add_pd(r, _mm256_div_pd(v, s2)))),
            _mm256_div_pd(_mm256_mul_pd(lf, v), s1)),
        s1);
    // time: y = λ/(σ1σ2) − λf/(2σ1·σ1)
    const __m256d ty = _mm256_sub_pd(
        _mm256_div_pd(lam, _mm256_mul_pd(s1, s2)),
        _mm256_div_pd(lf, _mm256_mul_pd(_mm256_mul_pd(two, s1), s1)));
    // time: z = C + v/σ1
    const __m256d tz = _mm256_add_pd(chk, _mm256_div_pd(v, s1));

    // energy: x = pc1/σ1 + λ(r·pio + v·pc2/σ2)/σ1 − λf·v·pc1/(σ1σ1)
    const __m256d ex = _mm256_sub_pd(
        _mm256_add_pd(
            _mm256_div_pd(pc1, s1),
            _mm256_div_pd(
                _mm256_mul_pd(
                    lam, _mm256_add_pd(
                             _mm256_mul_pd(r, pio),
                             _mm256_div_pd(_mm256_mul_pd(v, pc2), s2))),
                s1)),
        _mm256_div_pd(_mm256_mul_pd(_mm256_mul_pd(lf, v), pc1),
                      _mm256_mul_pd(s1, s1)));
    // energy: y = λ·pc2/(σ1σ2) − λf·pc1/(2σ1·σ1)
    const __m256d ey = _mm256_sub_pd(
        _mm256_div_pd(_mm256_mul_pd(lam, pc2), _mm256_mul_pd(s1, s2)),
        _mm256_div_pd(_mm256_mul_pd(lf, pc1),
                      _mm256_mul_pd(_mm256_mul_pd(two, s1), s1)));
    // energy: z = C·pio + v·pc1/σ1
    const __m256d ez = _mm256_add_pd(
        _mm256_mul_pd(chk, pio),
        _mm256_div_pd(_mm256_mul_pd(v, pc1), s1));

    // rho_min: y ≤ 0 → −inf; z ≤ 0 → x; else x + 2√(y·z). LE_OQ is false
    // on NaN, like the scalar `<=`.
    const __m256d min_val = _mm256_add_pd(
        tx, _mm256_mul_pd(two, _mm256_sqrt_pd(_mm256_mul_pd(ty, tz))));
    __m256d rho_min =
        blend(min_val, tx, _mm256_cmp_pd(tz, zero, _CMP_LE_OQ));
    rho_min = blend(rho_min, ninf, _mm256_cmp_pd(ty, zero, _CMP_LE_OQ));

    // Energy argmin √(ez/ey) where the interior minimum exists, +inf
    // otherwise — hoisted here because it is ρ-independent.
    const __m256d has_interior =
        _mm256_and_pd(_mm256_cmp_pd(ey, zero, _CMP_GT_OQ),
                      _mm256_cmp_pd(ez, zero, _CMP_GT_OQ));
    const __m256d we =
        blend(pinf, _mm256_sqrt_pd(_mm256_div_pd(ez, ey)), has_interior);

    _mm256_storeu_pd(out.tx.data() + s, tx);
    _mm256_storeu_pd(out.ty.data() + s, ty);
    _mm256_storeu_pd(out.tz.data() + s, tz);
    _mm256_storeu_pd(out.ex.data() + s, ex);
    _mm256_storeu_pd(out.ey.data() + s, ey);
    _mm256_storeu_pd(out.ez.data() + s, ez);
    _mm256_storeu_pd(out.rho_min.data() + s, rho_min);
    _mm256_storeu_pd(out.we.data() + s, we);

    const __m256d valid =
        _mm256_and_pd(_mm256_cmp_pd(ty, zero, _CMP_GT_OQ),
                      _mm256_cmp_pd(ey, zero, _CMP_GT_OQ));
    const int bits = _mm256_movemask_pd(valid);
    for (int lane = 0; lane < 4; ++lane) {
      out.valid[s + static_cast<std::size_t>(lane)] =
          (bits >> lane) & 1 ? 1 : 0;
    }
  }
}

__attribute__((target("avx2"))) void eval_pairs_avx2(
    const ExpansionSoA& table, double rho, double w_cap, double* w_opt,
    double* w_min_out, double* w_max_out, double* energy,
    unsigned char* feasible) {
  const __m256d zero = _mm256_setzero_pd();
  const __m256d two = _mm256_set1_pd(2.0);
  const __m256d four = _mm256_set1_pd(4.0);
  const __m256d neg_half = _mm256_set1_pd(-0.5);
  const __m256d inf =
      _mm256_set1_pd(std::numeric_limits<double>::infinity());
  const __m256d dbl_max =
      _mm256_set1_pd(std::numeric_limits<double>::max());
  const __m256d rho_v = _mm256_set1_pd(rho);
  const __m256d cap_v = _mm256_set1_pd(w_cap);

  for (std::size_t s = 0; s < table.padded; s += 4) {
    const __m256d a = _mm256_loadu_pd(table.ty.data() + s);
    const __m256d b =
        _mm256_sub_pd(_mm256_loadu_pd(table.tx.data() + s), rho_v);
    const __m256d c = _mm256_loadu_pd(table.tz.data() + s);

    // solve_quadratic for the a ≠ 0 lanes (a == 0 lanes never read these
    // results — they are routed to the linear branch below).
    const __m256d disc = _mm256_sub_pd(
        _mm256_mul_pd(b, b), _mm256_mul_pd(_mm256_mul_pd(four, a), c));
    const __m256d sqrt_disc = _mm256_sqrt_pd(disc);
    const __m256d q = _mm256_mul_pd(
        neg_half, _mm256_add_pd(b, copysign_pd(sqrt_disc, b)));
    const __m256d r1 = _mm256_div_pd(q, a);
    const __m256d r2_from_q = _mm256_div_pd(c, q);
    // q != 0.0 is true on NaN (scalar !=) → NEQ_UQ. The q == 0 rescue
    // division only runs when some lane actually needs it — on typical
    // panels every lane has q ≠ 0 and the divider stays idle. Lanes that
    // keep r2_from_q get the identical blend result either way.
    const __m256d q_nonzero = _mm256_cmp_pd(q, zero, _CMP_NEQ_UQ);
    __m256d r2 = r2_from_q;
    if (_mm256_movemask_pd(q_nonzero) != 0xF) {
      const __m256d r2_alt =
          _mm256_sub_pd(_mm256_div_pd(negate(b), a), r1);
      r2 = blend(r2_alt, r2_from_q, q_nonzero);
    }
    const __m256d swap = _mm256_cmp_pd(r1, r2, _CMP_GT_OQ);
    const __m256d lower_two = blend(r1, r2, swap);
    const __m256d upper_two = blend(r2, r1, swap);
    // Scalar control flow: disc < 0 → no roots; disc == 0 → one root;
    // anything else (including NaN disc) falls through to the two-root
    // path. NLT_UQ/NEQ_UQ are true on NaN, reproducing that routing.
    const __m256d has_roots = _mm256_cmp_pd(disc, zero, _CMP_NLT_UQ);
    const __m256d two_roots = _mm256_and_pd(
        has_roots, _mm256_cmp_pd(disc, zero, _CMP_NEQ_UQ));
    // The repeated-root division is needed only when some rooted lane has
    // disc == 0. Rootless lanes are infeasible on every consuming branch,
    // so their lower/upper values are dead and the skip cannot change any
    // stored bit.
    __m256d lower = lower_two;
    __m256d upper = upper_two;
    if (_mm256_movemask_pd(two_roots) != _mm256_movemask_pd(has_roots)) {
      const __m256d root_one =
          _mm256_div_pd(negate(b), _mm256_mul_pd(two, a));
      lower = blend(root_one, lower_two, two_roots);
      upper = blend(root_one, upper_two, two_roots);
    }

    // feasible_interval branch select on the sign of a. NaN a matches
    // none of the compares and lands in the unconditional tail branch,
    // exactly like the scalar fall-through.
    const __m256d a_pos = _mm256_cmp_pd(a, zero, _CMP_GT_OQ);
    const __m256d a_zero = _mm256_cmp_pd(a, zero, _CMP_EQ_OQ);
    const __m256d tail = not_mask(_mm256_or_pd(a_pos, a_zero));

    // a > 0: infeasible when no roots or upper ≤ 0.
    const __m256d feas_pos = _mm256_and_pd(
        has_roots,
        not_mask(_mm256_cmp_pd(upper, zero, _CMP_LE_OQ)));
    const __m256d w_min_pos = std_max(lower, zero);
    // a == 0: feasible iff !(b >= 0) (NaN b → feasible, as in the scalar).
    const __m256d feas_zero = _mm256_cmp_pd(b, zero, _CMP_NGE_UQ);
    // tail (a < 0 or NaN): always unbounded-feasible.
    const __m256d w_min_tail =
        blend(zero, std_max(upper, zero), has_roots);

    // The three branch masks are disjoint, so blending a_pos before a_zero
    // gives the same lanes as the other order — and a = ty > 0 for every
    // valid pair, so the linear-branch division almost never runs.
    __m256d w_min = blend(w_min_tail, w_min_pos, a_pos);
    if (_mm256_movemask_pd(a_zero) != 0) {
      const __m256d w_min_zero =
          blend(zero, _mm256_div_pd(c, negate(b)),
                _mm256_cmp_pd(c, zero, _CMP_GT_OQ));
      w_min = blend(w_min, w_min_zero, a_zero);
    }
    const __m256d w_max = blend(inf, upper, a_pos);
    __m256d feas = _mm256_or_pd(_mm256_and_pd(a_pos, feas_pos),
                                _mm256_and_pd(a_zero, feas_zero));
    feas = _mm256_or_pd(feas, tail);

    // w_energy = has_interior_minimum ? argmin : w_max, then the finite
    // fallbacks of solve_cached_pair.
    const __m256d ey = _mm256_loadu_pd(table.ey.data() + s);
    const __m256d ez = _mm256_loadu_pd(table.ez.data() + s);
    const __m256d has_interior =
        _mm256_and_pd(_mm256_cmp_pd(ey, zero, _CMP_GT_OQ),
                      _mm256_cmp_pd(ez, zero, _CMP_GT_OQ));
    // √(ez/ey) is ρ-independent: streamed from the build-time `we` column
    // instead of recomputed per grid point.
    const __m256d argmin = _mm256_loadu_pd(table.we.data() + s);
    __m256d w_energy = blend(w_max, argmin, has_interior);
    const __m256d w_max_finite = is_finite(w_max);
    w_energy = blend(blend(cap_v, w_max, w_max_finite), w_energy,
                     is_finite(w_energy));
    const __m256d w_clamp = blend(dbl_max, w_max, w_max_finite);
    const __m256d w = std_min(std_max(w_min, w_energy), w_clamp);
    const __m256d ex = _mm256_loadu_pd(table.ex.data() + s);
    const __m256d e = _mm256_add_pd(_mm256_add_pd(ex, _mm256_mul_pd(ey, w)),
                                    _mm256_div_pd(ez, w));

    // Gate on the cached validity flags and canonicalize dead lanes
    // (padding slots have valid = 0, so they fall out here too).
    const __m256d valid = _mm256_castsi256_pd(_mm256_setr_epi64x(
        table.valid[s] ? -1 : 0, table.valid[s + 1] ? -1 : 0,
        table.valid[s + 2] ? -1 : 0, table.valid[s + 3] ? -1 : 0));
    const __m256d live = _mm256_and_pd(feas, valid);
    _mm256_storeu_pd(w_opt + s, _mm256_and_pd(w, live));
    _mm256_storeu_pd(w_min_out + s, _mm256_and_pd(w_min, live));
    _mm256_storeu_pd(w_max_out + s, _mm256_and_pd(w_max, live));
    _mm256_storeu_pd(energy + s, blend(inf, e, live));
    const int bits = _mm256_movemask_pd(live);
    for (int lane = 0; lane < 4; ++lane) {
      feasible[s + static_cast<std::size_t>(lane)] =
          (bits >> lane) & 1 ? 1 : 0;
    }
  }
}

__attribute__((target("avx2"))) void classify_pairs_avx2(
    const double* rho_min, const double* time_at_we, std::size_t count,
    double rho, unsigned char* cls) {
  const __m256d rho_v = _mm256_set1_pd(rho);
  std::size_t s = 0;
  for (; s + 4 <= count; s += 4) {
    const __m256d feas = _mm256_cmp_pd(_mm256_loadu_pd(rho_min + s), rho_v,
                                       _CMP_LE_OQ);
    const __m256d lookup = _mm256_cmp_pd(_mm256_loadu_pd(time_at_we + s),
                                         rho_v, _CMP_LE_OQ);
    const int fbits = _mm256_movemask_pd(feas);
    const int lbits = _mm256_movemask_pd(lookup);
    for (int lane = 0; lane < 4; ++lane) {
      cls[s + static_cast<std::size_t>(lane)] =
          !((fbits >> lane) & 1) ? 0u : (((lbits >> lane) & 1) ? 1u : 2u);
    }
  }
  for (; s < count; ++s) {
    cls[s] = !(rho_min[s] <= rho) ? 0u : (time_at_we[s] <= rho ? 1u : 2u);
  }
}

#undef REXSPEED_AVX2

}  // namespace

const KernelOps& avx2_ops() noexcept {
  static const KernelOps ops{
      "avx2",
      &build_pair_table_avx2,
      &eval_pairs_avx2,
      &classify_pairs_avx2,
  };
  return ops;
}

}  // namespace rexspeed::core::kernels

#else  // non-x86 build: the AVX2 tier is unavailable, alias scalar.

namespace rexspeed::core::kernels {
const KernelOps& avx2_ops() noexcept { return scalar_ops(); }
}  // namespace rexspeed::core::kernels

#endif
