#include "rexspeed/core/attempt_stats.hpp"

#include <cmath>
#include <stdexcept>

namespace rexspeed::core {

double attempt_failure_probability(const ModelParams& params, double work,
                                   double sigma) {
  params.validate();
  if (!(work > 0.0) || !(sigma > 0.0)) {
    throw std::invalid_argument(
        "attempt_failure_probability: work and speed must be positive");
  }
  const double span = (work + params.verification_s) / sigma;
  const double exposure = work / sigma;
  return -std::expm1(
      -(params.lambda_failstop * span + params.lambda_silent * exposure));
}

AttemptStats attempt_stats(const ModelParams& params, double work,
                           double sigma1, double sigma2) {
  AttemptStats stats;
  stats.first_failure_probability =
      attempt_failure_probability(params, work, sigma1);
  stats.retry_failure_probability =
      attempt_failure_probability(params, work, sigma2);
  const double q1 = stats.first_failure_probability;
  const double q2 = stats.retry_failure_probability;
  if (q2 >= 1.0) {
    throw std::domain_error(
        "attempt_stats: re-execution attempts never succeed (q2 = 1)");
  }
  // Retries form a geometric sequence with failure probability q2, entered
  // with probability q1: E[attempts] = 1 + q1/(1 − q2). Every attempt but
  // the final (successful) one pays a recovery.
  stats.expected_attempts = 1.0 + q1 / (1.0 - q2);
  stats.expected_recoveries = stats.expected_attempts - 1.0;
  return stats;
}

double probability_attempts_exceed(const ModelParams& params, double work,
                                   double sigma1, double sigma2,
                                   unsigned attempts) {
  if (attempts == 0) return 1.0;  // every pattern needs at least one
  const double q1 = attempt_failure_probability(params, work, sigma1);
  const double q2 = attempt_failure_probability(params, work, sigma2);
  return q1 * std::pow(q2, static_cast<double>(attempts - 1));
}

}  // namespace rexspeed::core
