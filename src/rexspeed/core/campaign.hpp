#pragma once

#include "rexspeed/core/attempt_stats.hpp"
#include "rexspeed/core/bicrit_solver.hpp"

namespace rexspeed::core {

/// Application-level plan derived from a pattern-level solution (§2.3:
/// Ttotal ≈ (T/W)·Wbase, Etotal ≈ (E/W)·Wbase for a long-running divisible
/// application). This is what an operator reads off before launching a
/// campaign: wall-clock and energy budgets, checkpoint pressure, expected
/// error counts.
struct CampaignPlan {
  bool feasible = false;
  PairSolution policy;           ///< the pattern-level optimum
  double total_work = 0.0;       ///< Wbase (seconds-at-full-speed)
  double patterns = 0.0;         ///< Wbase / Wopt (fractional)
  double expected_makespan_s = 0.0;
  double expected_energy_mws = 0.0;
  /// Error-free makespan at σ1 (no checkpoints, no errors) — the
  /// denominator of the "degradation" the ρ bound controls.
  double ideal_makespan_s = 0.0;
  AttemptStats attempts;          ///< per-pattern attempt process
  double expected_errors = 0.0;   ///< expected failures over the campaign
  double expected_checkpoints = 0.0;
};

/// Solves BiCrit for `rho` and scales the winning pattern to a campaign of
/// `total_work` units. Returns feasible = false when no speed pair meets
/// the bound.
[[nodiscard]] CampaignPlan plan_campaign(
    const ModelParams& params, double rho, double total_work,
    SpeedPolicy policy = SpeedPolicy::kTwoSpeed,
    EvalMode mode = EvalMode::kFirstOrder);

/// Scales an already-computed pattern solution to a campaign.
[[nodiscard]] CampaignPlan plan_campaign_from_solution(
    const ModelParams& params, const PairSolution& solution,
    double total_work);

}  // namespace rexspeed::core
