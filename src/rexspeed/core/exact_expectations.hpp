#pragma once

#include "rexspeed/core/model_params.hpp"

namespace rexspeed::core {

/// Exact expected values for one periodic pattern (W units of work, then a
/// verification, then a checkpoint), first executed at σ1 and re-executed
/// at σ2 after every detected error until success.
///
/// These evaluators are derived by solving the paper's recursive equations
/// ((Prop. 1)–(Prop. 3) recursion for silent errors, Eq. (8) for combined
/// fail-stop + silent errors) in closed form. For silent errors only they
/// coincide exactly with the printed Propositions 1–3. For the combined
/// case the printed Prop. 4/5 carry a spurious `(… ) V/σ2` term that breaks
/// the λf → 0 reduction to Prop. 2; our forms (which do reduce correctly)
/// are used everywhere, and the literal printed forms are provided below
/// for comparison (see `paper_forms`). The discrepancy is O(λ V) and is
/// numerically negligible for every configuration in the paper.

/// Prop. 1 — expected time with a single speed σ, silent errors only.
/// Requires lambda_failstop == 0 conceptually; only lambda_silent is read.
[[nodiscard]] double expected_time_single_speed_silent(
    const ModelParams& params, double work, double sigma);

/// Expected time of one pattern; exact for any λs, λf ≥ 0.
/// Reduces to Prop. 2 when λf = 0 and to the error-free
/// `C + (W+V)/σ1` when both rates are zero.
[[nodiscard]] double expected_time(const ModelParams& params, double work,
                                   double sigma1, double sigma2);

/// Expected energy of one pattern; exact for any λs, λf ≥ 0.
/// Reduces to Prop. 3 when λf = 0.
[[nodiscard]] double expected_energy(const ModelParams& params, double work,
                                     double sigma1, double sigma2);

/// Expected time overhead per work unit, T(W,σ1,σ2)/W.
[[nodiscard]] double time_overhead(const ModelParams& params, double work,
                                   double sigma1, double sigma2);

/// Expected energy overhead per work unit, E(W,σ1,σ2)/W.
[[nodiscard]] double energy_overhead(const ModelParams& params, double work,
                                     double sigma1, double sigma2);

/// Expected wall-clock time lost when a fail-stop error strikes during a
/// segment lasting `duration = w/σ` seconds:
/// Tlost = 1/λf − duration / (e^{λf · duration} − 1).
[[nodiscard]] double expected_time_lost(double lambda_failstop,
                                        double duration);

namespace paper_forms {

/// Literal Prop. 4 of the paper (combined errors). Kept verbatim —
/// including its extra V/σ2 term — so tests can quantify the erratum.
[[nodiscard]] double prop4_expected_time(const ModelParams& params,
                                         double work, double sigma1,
                                         double sigma2);

/// Literal Prop. 5 of the paper (combined errors).
[[nodiscard]] double prop5_expected_energy(const ModelParams& params,
                                           double work, double sigma1,
                                           double sigma2);

}  // namespace paper_forms

}  // namespace rexspeed::core
