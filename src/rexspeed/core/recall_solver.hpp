#pragma once

#include "rexspeed/core/model_params.hpp"
#include "rexspeed/core/solver_backend.hpp"

namespace rexspeed::core {

/// Partial verification recall: each verification detects a silent error
/// only with probability r (the partial verifications of the paper's
/// related work [Cavelan et al., ICPP'15]; r = 1 is the paper's guaranteed
/// verification). A missed error is committed by the following checkpoint
/// and silently corrupts the result — the simulator executes this
/// (SimulatorOptions::verification_recall); the evaluators below are the
/// matching closed forms.
///
/// Exact expectations: per attempt at speed σ the pattern spans
/// (W+V)/σ seconds with the silent-error window W/σ inside it. With
/// p_f = P(fail-stop strikes the span) and p_s = P(silent error strikes
/// the window), an attempt is *retried* with probability
///   q = p_f + (1 − p_f)·p_s·r
/// (fail-stop, or a detected silent error) and otherwise commits — cleanly
/// with probability (1 − p_f)(1 − p_s), corrupted with probability
///   (1 − p_f)·p_s·(1 − r).
/// Solving the same recursion as exact_expectations.cpp (re-executions all
/// at σ2, geometric over q2) gives the expected time/energy until a
/// checkpoint commits, and the committed-corrupt probability as the
/// geometric mix of detected and missed patterns. At r = 1 every form
/// reduces algebraically to its exact_expectations counterpart.
///
/// First-order optimization: to the paper's §5.2 expansion order a partial
/// verification is equivalent to scaling the silent-error rate to r·λs
/// (only *detected* errors cost a re-execution, and detections thin λs by
/// r). The solver/backend below therefore optimize the first-order forms
/// over the recall-scaled parameters — bit-identical to the first-order
/// mode at r = 1 — while the exact evaluators above quantify the true
/// (recall-aware) overheads and the corruption risk the thinning hides.

/// `params` with the silent-error rate scaled to recall·λs — the
/// first-order-equivalent parameter bundle of a partial verification.
/// Throws std::invalid_argument when recall is outside [0, 1].
[[nodiscard]] ModelParams recall_effective_params(ModelParams params,
                                                 double recall);

/// Exact expected time of one pattern under partial recall; reduces to
/// expected_time() at recall = 1.
[[nodiscard]] double expected_time_recall(const ModelParams& params,
                                          double recall, double work,
                                          double sigma1, double sigma2);

/// Exact expected energy of one pattern under partial recall; reduces to
/// expected_energy() at recall = 1.
[[nodiscard]] double expected_energy_recall(const ModelParams& params,
                                            double recall, double work,
                                            double sigma1, double sigma2);

/// Probability that the checkpoint committing one pattern carries an
/// undetected silent corruption (0 at recall = 1; the simulator's
/// corrupted-checkpoint ratio estimates this).
[[nodiscard]] double recall_corruption_probability(const ModelParams& params,
                                                   double recall, double work,
                                                   double sigma1,
                                                   double sigma2);

/// The analytical core of the recall mode: first-order optimization over
/// the recall-scaled rate plus the exact recall evaluators at the original
/// parameters. Construction is the complete preparation (the O(K²)
/// first-order expansions over the effective parameters); immutable and
/// shareable across threads afterwards, like every solver in core/.
class RecallSolver {
 public:
  /// Throws std::invalid_argument on invalid params or recall ∉ [0, 1].
  RecallSolver(ModelParams params, double recall);

  /// The original (unscaled) model parameters.
  [[nodiscard]] const ModelParams& params() const noexcept {
    return params_;
  }
  /// The recall-scaled parameters the optimization runs over.
  [[nodiscard]] const ModelParams& effective_params() const noexcept {
    return solver_.params();
  }
  [[nodiscard]] double recall() const noexcept { return recall_; }
  /// The first-order solver over the effective parameters.
  [[nodiscard]] const BiCritSolver& solver() const noexcept {
    return solver_;
  }

  /// First-order optimum at bound `rho` over the effective parameters.
  [[nodiscard]] BiCritSolution solve(
      double rho, SpeedPolicy policy = SpeedPolicy::kTwoSpeed) const;
  /// The min-ρ best-effort pattern over the effective parameters.
  [[nodiscard]] PairSolution min_rho_solution(SpeedPolicy policy) const;

  /// Exact recall expectations of a (W, σ1, σ2) pattern at the ORIGINAL
  /// parameters — the quantities the fault-injection simulator estimates.
  [[nodiscard]] double expected_time(double work, double sigma1,
                                     double sigma2) const;
  [[nodiscard]] double expected_energy(double work, double sigma1,
                                       double sigma2) const;
  [[nodiscard]] double corruption_probability(double work, double sigma1,
                                              double sigma2) const;

 private:
  ModelParams params_;
  double recall_;
  BiCritSolver solver_;  // over the effective (recall-scaled) parameters
};

/// The partial-recall backend (registry mode "recall"): a speed-pair
/// backend that contains a first-order ClosedFormBackend over the
/// recall-scaled parameters and forwards every solve to it — so at
/// recall = 1 (a bit-exact no-op scaling) it is bit-identical to the
/// first-order mode on every path, batched ρ grids included.
/// params() returns the ORIGINAL parameters (panel rebinds sweep the true
/// model axis; the scaling is re-applied inside rebind()).
class RecallBackend final : public SolverBackend {
 public:
  /// Throws std::invalid_argument on invalid params or recall ∉ [0, 1].
  RecallBackend(ModelParams params, double recall);

  [[nodiscard]] const char* name() const noexcept override;
  [[nodiscard]] const ModelParams& params() const noexcept override {
    return params_;
  }
  [[nodiscard]] const BackendCapabilities& capabilities()
      const noexcept override {
    return capabilities_;
  }
  [[nodiscard]] bool needs_prepare() const noexcept override {
    return false;
  }
  void prepare(const ParallelFor& parallel_build = {}) override;
  [[nodiscard]] Solution solve(double rho, SpeedPolicy policy,
                               bool min_rho_fallback) const override;
  [[nodiscard]] Solution solve_baseline(double rho,
                                        bool min_rho_fallback) const override;
  [[nodiscard]] Solution min_rho(SpeedPolicy policy) const override;
  [[nodiscard]] PairSolution solve_pair(double rho, std::size_t i,
                                        std::size_t j) const override;
  [[nodiscard]] BiCritSolution solve_report(
      double rho, SpeedPolicy policy) const override;
  [[nodiscard]] std::unique_ptr<SolverBackend> rebind(
      ModelParams params,
      const PairSeedTable* seeds = nullptr) const override;
  void solve_rho_batch(const double* rhos, std::size_t count,
                       bool min_rho_fallback,
                       PanelPoint* out) const override;
  [[nodiscard]] PanelPoint solve_panel_point_seeded(
      SweepAxis axis, double x, double panel_rho, bool min_rho_fallback,
      PairSeedTable* harvest) const override;

  [[nodiscard]] double recall() const noexcept { return recall_; }
  /// The recall-scaled parameters the contained first-order backend
  /// optimizes over.
  [[nodiscard]] const ModelParams& effective_params() const noexcept {
    return delegate_.params();
  }

 private:
  ModelParams params_;
  double recall_;
  ClosedFormBackend delegate_;  // first-order over the effective params
  BackendCapabilities capabilities_;
};

}  // namespace rexspeed::core
