#include "rexspeed/core/young_daly.hpp"

#include <cmath>
#include <stdexcept>

namespace rexspeed::core {

namespace {

void check_positive(double checkpoint_s, double error_rate) {
  if (!(checkpoint_s > 0.0)) {
    throw std::invalid_argument("period: checkpoint time must be positive");
  }
  if (!(error_rate > 0.0)) {
    throw std::invalid_argument("period: error rate must be positive");
  }
}

}  // namespace

double young_period(double checkpoint_s, double error_rate) {
  check_positive(checkpoint_s, error_rate);
  return std::sqrt(2.0 * checkpoint_s / error_rate);
}

double daly_period(double checkpoint_s, double error_rate) {
  check_positive(checkpoint_s, error_rate);
  const double mtbf = 1.0 / error_rate;
  if (checkpoint_s >= 2.0 * mtbf) return mtbf;
  const double ratio = checkpoint_s / (2.0 * mtbf);
  return std::sqrt(2.0 * checkpoint_s * mtbf) *
             (1.0 + std::sqrt(ratio) / 3.0 + ratio / 9.0) -
         checkpoint_s;
}

double silent_verified_period(double checkpoint_s, double verification_s,
                              double error_rate) {
  check_positive(checkpoint_s, error_rate);
  if (verification_s < 0.0) {
    throw std::invalid_argument(
        "silent_verified_period: verification time must be non-negative");
  }
  return std::sqrt((verification_s + checkpoint_s) / error_rate);
}

}  // namespace rexspeed::core
