#pragma once

#include <vector>

#include "rexspeed/platform/configuration.hpp"

namespace rexspeed::core {

/// Full parameter bundle of the BiCrit model (paper §2).
///
/// Conventions used throughout the library:
///  * work `W` is measured in seconds-at-full-speed: executing `W` units at
///    normalized speed σ takes `W/σ` seconds;
///  * times (`C`, `R`, `V`) are in seconds; `V` is the verification time at
///    full speed, so a verification at speed σ costs `V/σ`;
///  * error rates are per second of wall-clock time;
///  * powers are in mW, energies in mW·s.
struct ModelParams {
  /// Silent-error rate λs (1/s). Zero disables silent errors.
  double lambda_silent = 0.0;
  /// Fail-stop error rate λf (1/s). Zero (the paper's §2–§4 setting)
  /// disables fail-stop errors.
  double lambda_failstop = 0.0;
  /// Checkpoint time C (s).
  double checkpoint_s = 0.0;
  /// Recovery time R (s).
  double recovery_s = 0.0;
  /// Verification time V at full speed (s).
  double verification_s = 0.0;
  /// Cubic dynamic-power coefficient κ (mW).
  double kappa_mw = 0.0;
  /// Static power Pidle (mW).
  double idle_power_mw = 0.0;
  /// Dynamic I/O power Pio (mW).
  double io_power_mw = 0.0;
  /// Available normalized speeds S, strictly increasing, each in (0, 1].
  std::vector<double> speeds;

  /// Combined error rate λ = λs + λf.
  [[nodiscard]] double total_error_rate() const noexcept {
    return lambda_silent + lambda_failstop;
  }

  /// Fraction f of errors that are fail-stop (0 when error-free).
  [[nodiscard]] double failstop_fraction() const noexcept;

  /// Total power while computing at speed σ: Pidle + κσ³ (mW).
  [[nodiscard]] double compute_power(double sigma) const noexcept {
    return idle_power_mw + kappa_mw * sigma * sigma * sigma;
  }

  /// Total power during checkpoint/recovery: Pidle + Pio (mW).
  [[nodiscard]] double io_total_power() const noexcept {
    return idle_power_mw + io_power_mw;
  }

  /// Bundles a platform/processor configuration into model parameters,
  /// with R = C (paper §4.1) and silent errors only.
  [[nodiscard]] static ModelParams from_configuration(
      const platform::Configuration& config);

  /// Throws std::invalid_argument on malformed parameters (negative rates
  /// or costs, empty/unsorted speed set, no error source allowed —
  /// error-free models are valid and mean deterministic execution).
  void validate() const;
};

}  // namespace rexspeed::core
