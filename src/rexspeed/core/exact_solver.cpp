#include "rexspeed/core/exact_solver.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <utility>

#include "rexspeed/core/exact_expectations.hpp"
#include "rexspeed/core/first_order.hpp"

namespace rexspeed::core {

ExactExpansion ExactExpansion::make(const ModelParams& params, double sigma1,
                                    double sigma2, int index1, int index2,
                                    const NumericOptions& options) {
  ExactExpansion pair;
  pair.sigma1 = sigma1;
  pair.sigma2 = sigma2;
  pair.index1 = index1;
  pair.index2 = index2;

  // Warm-start seeds: inside the §5.2 validity window the closed-form
  // argmins √(z/y) land within O(λW) of the exact optima, so the numeric
  // bracket starts there instead of growing from W = 1. A seed of 0 (no
  // interior closed-form minimum) falls back to the cold-start bracket.
  const OverheadExpansion time_exp = time_expansion(params, sigma1, sigma2);
  const OverheadExpansion energy_exp =
      energy_expansion(params, sigma1, sigma2);
  pair.first_order_valid = time_exp.y > 0.0 && energy_exp.y > 0.0;
  const double time_seed =
      time_exp.has_interior_minimum() ? time_exp.argmin() : 0.0;
  const double energy_seed =
      energy_exp.has_interior_minimum() ? energy_exp.argmin() : 0.0;

  const auto time_per_work = [&](double w) {
    return time_overhead(params, w, sigma1, sigma2);
  };
  const auto energy_per_work = [&](double w) {
    return energy_overhead(params, w, sigma1, sigma2);
  };
  pair.w_time = minimize_unimodal_overhead(time_per_work, time_seed, options);
  pair.rho_min = time_per_work(pair.w_time);
  pair.w_energy =
      minimize_unimodal_overhead(energy_per_work, energy_seed, options);
  pair.energy_min = energy_per_work(pair.w_energy);
  pair.time_at_we = time_per_work(pair.w_energy);
  return pair;
}

ExactExpansion ExactExpansion::make(const ModelParams& params,
                                    const ExpansionSoA& table, std::size_t i,
                                    std::size_t j,
                                    const NumericOptions& options) {
  // The shared-pass construction: the first-order expansions were already
  // built once into the SoA table, so only the exact-curve minimizations
  // remain per pair. The seeds (and therefore the optima) are
  // bit-identical to the recomputing overload, since the table stores the
  // same coefficients the expansion functions return.
  const std::size_t slot = table.slot(i, j);
  ExactExpansion pair;
  pair.sigma1 = table.sigma1[slot];
  pair.sigma2 = table.sigma2[slot];
  pair.index1 = static_cast<int>(i);
  pair.index2 = static_cast<int>(j);
  const OverheadExpansion time_exp = table.time_expansion(slot);
  const OverheadExpansion energy_exp = table.energy_expansion(slot);
  pair.first_order_valid = table.valid[slot] != 0;
  const double time_seed =
      time_exp.has_interior_minimum() ? time_exp.argmin() : 0.0;
  const double energy_seed =
      energy_exp.has_interior_minimum() ? energy_exp.argmin() : 0.0;

  const auto time_per_work = [&](double w) {
    return time_overhead(params, w, pair.sigma1, pair.sigma2);
  };
  const auto energy_per_work = [&](double w) {
    return energy_overhead(params, w, pair.sigma1, pair.sigma2);
  };
  pair.w_time = minimize_unimodal_overhead(time_per_work, time_seed, options);
  pair.rho_min = time_per_work(pair.w_time);
  pair.w_energy =
      minimize_unimodal_overhead(energy_per_work, energy_seed, options);
  pair.energy_min = energy_per_work(pair.w_energy);
  pair.time_at_we = time_per_work(pair.w_energy);
  return pair;
}

ExactSolver::ExactSolver(ModelParams params, const ParallelFor& parallel_build)
    : params_(std::move(params)) {
  params_.validate();
  // One SoA kernel pass supplies every pair's first-order seeds — the
  // expansions are no longer recomputed twice per pair (once here, once
  // by any BiCritSolver for the same parameters' table).
  const ExpansionSoA table = ExpansionSoA::build(params_);
  const std::size_t k = table.k;
  cache_.resize(k * k);
  const auto build = [this, k, &table](std::size_t index) {
    cache_[index] =
        ExactExpansion::make(params_, table, index / k, index % k, options_);
  };
  if (parallel_build) {
    // Every entry is computed independently and written to its own slot,
    // so any schedule yields the same cache bit for bit.
    parallel_build(cache_.size(), build);
  } else {
    for (std::size_t index = 0; index < cache_.size(); ++index) build(index);
  }
  rho_min_flat_.resize(cache_.size());
  time_at_we_flat_.resize(cache_.size());
  for (std::size_t index = 0; index < cache_.size(); ++index) {
    rho_min_flat_[index] = cache_[index].rho_min;
    time_at_we_flat_[index] = cache_[index].time_at_we;
  }
  min_rho_two_ = compute_min_rho(SpeedPolicy::kTwoSpeed);
  min_rho_single_ = compute_min_rho(SpeedPolicy::kSingleSpeed);
}

PairSolution ExactSolver::base_solution(const ExactExpansion& pair) const {
  PairSolution sol;
  sol.sigma1 = pair.sigma1;
  sol.sigma2 = pair.sigma2;
  sol.sigma1_index = pair.index1;
  sol.sigma2_index = pair.index2;
  sol.first_order_valid = pair.first_order_valid;
  sol.rho_min = pair.rho_min;
  sol.w_energy = pair.w_energy;
  return sol;
}

PairSolution ExactSolver::lookup_solution(const ExactExpansion& pair) const {
  // The unconstrained energy optimum already satisfies the bound: the
  // solve is a pure cache lookup (the common case of loose-ρ grid
  // points, and the reason one solver serves a whole sweep).
  PairSolution sol = base_solution(pair);
  sol.feasible = true;
  sol.w_opt = pair.w_energy;
  sol.w_min = std::min(pair.w_time, pair.w_energy);
  sol.w_max = std::max(pair.w_time, pair.w_energy);
  sol.energy_overhead = pair.energy_min;
  sol.time_overhead = pair.time_at_we;
  return sol;
}

PairSolution ExactSolver::tight_solution(double rho,
                                         const ExactExpansion& pair) const {
  // The unconstrained energy optimum violates the bound, so the
  // constrained optimum sits on the feasibility boundary between w_time
  // (feasible) and w_energy (not): both curves are unimodal, so energy
  // only decreases toward w_energy and the boundary nearest it wins.
  // Locate it with the shared boundary bisection (the same routine
  // optimize_exact_pair uses) — the single warm-started bisection a
  // tight-bound point costs.
  const auto time_per_work = [&](double w) {
    return time_overhead(params_, w, pair.sigma1, pair.sigma2);
  };
  const double w_opt = bisect_boundary(time_per_work, rho, pair.w_time,
                                       pair.w_energy, options_);
  PairSolution sol = base_solution(pair);
  sol.feasible = true;
  sol.w_opt = w_opt;
  sol.w_min = std::min(pair.w_time, w_opt);
  sol.w_max = std::max(pair.w_time, w_opt);
  sol.energy_overhead =
      energy_overhead(params_, w_opt, pair.sigma1, pair.sigma2);
  sol.time_overhead = time_per_work(w_opt);
  return sol;
}

PairSolution ExactSolver::solve_cached(double rho,
                                       const ExactExpansion& pair) const {
  if (!(pair.rho_min <= rho)) {
    return base_solution(pair);  // bound below the exact floor
  }
  if (pair.time_at_we <= rho) return lookup_solution(pair);
  return tight_solution(rho, pair);
}

PairSolution ExactSolver::compute_min_rho(SpeedPolicy policy) const {
  PairSolution best;
  best.feasible = false;
  double best_rho = std::numeric_limits<double>::infinity();
  for (const ExactExpansion& pair : cache_) {
    if (policy == SpeedPolicy::kSingleSpeed && pair.index1 != pair.index2) {
      continue;
    }
    if (!(pair.rho_min < best_rho)) continue;
    best_rho = pair.rho_min;
    best.feasible = true;
    best.first_order_valid = pair.first_order_valid;
    best.sigma1 = pair.sigma1;
    best.sigma2 = pair.sigma2;
    best.sigma1_index = pair.index1;
    best.sigma2_index = pair.index2;
    best.rho_min = pair.rho_min;
    best.w_opt = pair.w_time;  // tangency pattern size, exact model
    best.w_energy = pair.w_energy;
    best.w_min = pair.w_time;
    best.w_max = pair.w_time;
    best.time_overhead = pair.rho_min;
    best.energy_overhead =
        energy_overhead(params_, pair.w_time, pair.sigma1, pair.sigma2);
  }
  return best;
}

BiCritSolution ExactSolver::solve(double rho, SpeedPolicy policy) const {
  if (!(rho > 0.0)) {
    throw std::invalid_argument("ExactSolver: rho must be positive");
  }
  BiCritSolution solution;
  solution.pairs.reserve(cache_.size());
  double best_energy = std::numeric_limits<double>::infinity();
  for (const ExactExpansion& cached : cache_) {
    if (policy == SpeedPolicy::kSingleSpeed &&
        cached.index1 != cached.index2) {
      continue;
    }
    PairSolution pair = solve_cached(rho, cached);
    if (pair.feasible && pair.energy_overhead < best_energy) {
      best_energy = pair.energy_overhead;
      solution.best = pair;
      solution.feasible = true;
    }
    solution.pairs.push_back(std::move(pair));
  }
  return solution;
}

PairSolution ExactSolver::solve_classified(double rho, SpeedPolicy policy,
                                           const unsigned char* cls) const {
  if (!(rho > 0.0)) {
    throw std::invalid_argument("ExactSolver: rho must be positive");
  }
  // Same scan as solve() — in cache order, strict-< selection — but the
  // per-slot branch tests were already answered by the classify kernel
  // and no PairSolution report is materialized: class-0 slots cost
  // nothing, class-1 slots cost one comparison against the cached
  // minimum, and only winners (and class-2 bisections) build solutions.
  PairSolution best;
  best.feasible = false;
  double best_energy = std::numeric_limits<double>::infinity();
  for (std::size_t s = 0; s < cache_.size(); ++s) {
    const ExactExpansion& pair = cache_[s];
    if (policy == SpeedPolicy::kSingleSpeed && pair.index1 != pair.index2) {
      continue;
    }
    if (cls[s] == 0) continue;
    if (cls[s] == 1) {
      if (pair.energy_min < best_energy) {
        best_energy = pair.energy_min;
        best = lookup_solution(pair);
      }
      continue;
    }
    PairSolution candidate = tight_solution(rho, pair);
    if (candidate.feasible && candidate.energy_overhead < best_energy) {
      best_energy = candidate.energy_overhead;
      best = std::move(candidate);
    }
  }
  return best;
}

PairSolution ExactSolver::solve_pair_by_index(double rho, std::size_t i,
                                              std::size_t j) const {
  if (!(rho > 0.0)) {
    throw std::invalid_argument("ExactSolver: rho must be positive");
  }
  const std::size_t k = params_.speeds.size();
  if (i >= k || j >= k) {
    throw std::out_of_range("ExactSolver: speed index out of range");
  }
  return solve_cached(rho, cache_[i * k + j]);
}

}  // namespace rexspeed::core
