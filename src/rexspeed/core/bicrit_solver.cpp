#include "rexspeed/core/bicrit_solver.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "rexspeed/core/exact_expectations.hpp"

namespace rexspeed::core {

PairExpansion PairExpansion::make(const ModelParams& params, double sigma1,
                                  double sigma2, int index1, int index2) {
  PairExpansion pair;
  pair.sigma1 = sigma1;
  pair.sigma2 = sigma2;
  pair.index1 = index1;
  pair.index2 = index2;
  pair.time_exp = time_expansion(params, sigma1, sigma2);
  pair.energy_exp = energy_expansion(params, sigma1, sigma2);
  pair.first_order_valid =
      pair.time_exp.y > 0.0 && pair.energy_exp.y > 0.0;
  pair.rho_min = rexspeed::core::rho_min(pair.time_exp);
  return pair;
}

PairSolution BiCritSolution::best_for_sigma1_index(std::size_t index) const {
  PairSolution row;
  row.sigma1_index = static_cast<int>(index);
  row.feasible = false;
  double best_energy = std::numeric_limits<double>::infinity();
  for (const auto& pair : pairs) {
    if (pair.sigma1_index != static_cast<int>(index)) continue;
    row.sigma1 = pair.sigma1;  // report the actual speed even when no
                               // second speed is feasible
    if (!pair.feasible) continue;
    if (pair.energy_overhead < best_energy) {
      best_energy = pair.energy_overhead;
      row = pair;
    }
  }
  return row;
}

PairSolution BiCritSolution::best_for_sigma1(double sigma1) const {
  // Resolve the requested speed to an index present in `pairs`, then
  // select by index — never by floating-point equality.
  int index = -1;
  double best_gap = std::numeric_limits<double>::infinity();
  for (const auto& pair : pairs) {
    if (pair.sigma1_index < 0) continue;
    const double gap = std::abs(pair.sigma1 - sigma1);
    if (gap < best_gap) {
      best_gap = gap;
      index = pair.sigma1_index;
    }
  }
  if (index < 0) {
    PairSolution row;
    row.sigma1 = sigma1;
    row.feasible = false;
    return row;
  }
  return best_for_sigma1_index(static_cast<std::size_t>(index));
}

BiCritSolver::BiCritSolver(ModelParams params) : params_(std::move(params)) {
  params_.validate();
  soa_ = ExpansionSoA::build(params_);
  materialize_cache();
}

BiCritSolver::BiCritSolver(ModelParams params, ExpansionSoA table)
    : params_(std::move(params)), soa_(std::move(table)) {
  params_.validate();
  if (soa_.k != params_.speeds.size()) {
    throw std::invalid_argument(
        "BiCritSolver: expansion table speed count mismatch");
  }
  materialize_cache();
}

void BiCritSolver::materialize_cache() {
  // The SoA table is the single expansion pass; the per-pair cache is a
  // pure view materialization of it (bit-identical to building each
  // PairExpansion directly, since the scalar kernel calls the same
  // expansion functions and the SIMD tiers are bit-comparable to it).
  const std::size_t k = soa_.k;
  cache_.clear();
  cache_.reserve(k * k);
  for (std::size_t i = 0; i < k; ++i) {
    for (std::size_t j = 0; j < k; ++j) {
      const std::size_t s = soa_.slot(i, j);
      PairExpansion pair;
      pair.sigma1 = soa_.sigma1[s];
      pair.sigma2 = soa_.sigma2[s];
      pair.index1 = static_cast<int>(i);
      pair.index2 = static_cast<int>(j);
      pair.time_exp = soa_.time_expansion(s);
      pair.energy_exp = soa_.energy_expansion(s);
      pair.first_order_valid = soa_.valid[s] != 0;
      pair.rho_min = soa_.rho_min[s];
      cache_.push_back(pair);
    }
  }
}

PairSolution BiCritSolver::solve_cached_pair(double rho,
                                             const PairExpansion& pair,
                                             EvalMode mode,
                                             double w_seed) const {
  if (!(rho > 0.0)) {
    throw std::invalid_argument("BiCritSolver: rho must be positive");
  }
  PairSolution sol;
  sol.sigma1 = pair.sigma1;
  sol.sigma2 = pair.sigma2;
  sol.sigma1_index = pair.index1;
  sol.sigma2_index = pair.index2;

  if (mode == EvalMode::kExactOptimize) {
    const ExactPairResult exact =
        optimize_exact_pair(params_, rho, pair.sigma1, pair.sigma2, w_seed,
                            numeric_options_);
    sol.feasible = exact.feasible;
    sol.first_order_valid = pair.first_order_valid;
    sol.rho_min = std::numeric_limits<double>::quiet_NaN();
    sol.w_opt = exact.w_opt;
    sol.w_energy = exact.w_opt;
    sol.w_min = exact.w_min;
    sol.w_max = exact.w_max;
    sol.energy_overhead = exact.energy_overhead;
    sol.time_overhead = exact.time_overhead;
    return sol;
  }

  sol.first_order_valid = pair.first_order_valid;
  sol.rho_min = pair.rho_min;
  if (!sol.first_order_valid) {
    // Outside the validity window of §5.2 the closed form is meaningless;
    // this pair only has an answer in kExactOptimize — served cheaply by
    // the cached ExactSolver backend (exact_solver.hpp), which engine
    // contexts build for exact-mode scenarios.
    sol.feasible = false;
    return sol;
  }

  const FeasibleInterval interval = feasible_interval(pair.time_exp, rho);
  if (!interval.feasible()) {
    sol.feasible = false;
    return sol;
  }
  sol.w_min = interval.w_min;
  sol.w_max = interval.w_max;

  // Eq. (5): unconstrained energy optimum; Eq. (4): clamp into [W1, W2].
  sol.w_energy = pair.energy_exp.has_interior_minimum()
                     ? pair.energy_exp.argmin()
                     : interval.w_max;
  if (!std::isfinite(sol.w_energy)) {
    // Error-free model: energy overhead decreases in W forever; take the
    // largest bounded pattern if any, else a nominal large pattern.
    sol.w_energy = std::isfinite(interval.w_max) ? interval.w_max
                                                 : numeric_options_.w_cap;
  }
  sol.w_opt = std::min(std::max(interval.w_min, sol.w_energy),
                       std::isfinite(interval.w_max)
                           ? interval.w_max
                           : std::numeric_limits<double>::max());
  sol.feasible = true;

  if (mode == EvalMode::kFirstOrder) {
    sol.energy_overhead = pair.energy_exp.evaluate(sol.w_opt);
    sol.time_overhead = pair.time_exp.evaluate(sol.w_opt);
  } else {  // kExactEvaluation
    sol.energy_overhead =
        energy_overhead(params_, sol.w_opt, pair.sigma1, pair.sigma2);
    sol.time_overhead =
        time_overhead(params_, sol.w_opt, pair.sigma1, pair.sigma2);
  }
  return sol;
}

PairSolution BiCritSolver::solve_pair_by_index(double rho, std::size_t i,
                                               std::size_t j,
                                               EvalMode mode) const {
  const std::size_t k = params_.speeds.size();
  if (i >= k || j >= k) {
    throw std::out_of_range("BiCritSolver: speed index out of range");
  }
  return solve_cached_pair(rho, cache_[i * k + j], mode);
}

PairSolution BiCritSolver::solve_pair(double rho, double sigma1,
                                      double sigma2, EvalMode mode) const {
  // Hit the cache when both speeds are members of the speed set (bitwise
  // match: callers pass values read from ModelParams::speeds).
  const auto& speeds = params_.speeds;
  const auto it1 = std::find(speeds.begin(), speeds.end(), sigma1);
  const auto it2 = std::find(speeds.begin(), speeds.end(), sigma2);
  if (it1 != speeds.end() && it2 != speeds.end()) {
    return solve_pair_by_index(
        rho, static_cast<std::size_t>(it1 - speeds.begin()),
        static_cast<std::size_t>(it2 - speeds.begin()), mode);
  }
  return solve_cached_pair(rho, PairExpansion::make(params_, sigma1, sigma2),
                           mode);
}

PairSolution BiCritSolver::min_rho_solution(SpeedPolicy policy) const {
  PairSolution best;
  best.feasible = false;
  double best_rho = std::numeric_limits<double>::infinity();
  for (const PairExpansion& pair : cache_) {
    if (policy == SpeedPolicy::kSingleSpeed && pair.index1 != pair.index2) {
      continue;
    }
    if (!pair.first_order_valid) continue;
    if (pair.rho_min >= best_rho) continue;
    best_rho = pair.rho_min;
    best.feasible = true;
    best.first_order_valid = true;
    best.sigma1 = pair.sigma1;
    best.sigma2 = pair.sigma2;
    best.sigma1_index = pair.index1;
    best.sigma2_index = pair.index2;
    best.rho_min = pair.rho_min;
    best.w_opt = pair.time_exp.argmin();  // tangency pattern size
    best.w_energy = pair.energy_exp.argmin();
    best.w_min = best.w_opt;
    best.w_max = best.w_opt;
    best.time_overhead = pair.time_exp.evaluate(best.w_opt);
    best.energy_overhead = pair.energy_exp.evaluate(best.w_opt);
  }
  return best;
}

BiCritSolution BiCritSolver::solve(double rho, SpeedPolicy policy,
                                   EvalMode mode,
                                   const PairSeedTable* seeds) const {
  BiCritSolution solution;
  solution.pairs.reserve(cache_.size());
  double best_energy = std::numeric_limits<double>::infinity();
  for (const PairExpansion& cached : cache_) {
    if (policy == SpeedPolicy::kSingleSpeed &&
        cached.index1 != cached.index2) {
      continue;
    }
    const double w_seed = (seeds != nullptr && mode == EvalMode::kExactOptimize)
                              ? seeds->seed(cached.index1, cached.index2)
                              : 0.0;
    PairSolution pair = solve_cached_pair(rho, cached, mode, w_seed);
    if (pair.feasible && pair.energy_overhead < best_energy) {
      best_energy = pair.energy_overhead;
      solution.best = pair;
      solution.feasible = true;
    }
    solution.pairs.push_back(std::move(pair));
  }
  return solution;
}

}  // namespace rexspeed::core
