#include "rexspeed/core/bicrit_solver.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "rexspeed/core/exact_expectations.hpp"

namespace rexspeed::core {

PairSolution BiCritSolution::best_for_sigma1(double sigma1) const {
  PairSolution row;
  row.sigma1 = sigma1;
  row.feasible = false;
  double best_energy = std::numeric_limits<double>::infinity();
  for (const auto& pair : pairs) {
    if (pair.sigma1 != sigma1 || !pair.feasible) continue;
    if (pair.energy_overhead < best_energy) {
      best_energy = pair.energy_overhead;
      row = pair;
    }
  }
  return row;
}

BiCritSolver::BiCritSolver(ModelParams params) : params_(std::move(params)) {
  params_.validate();
}

PairSolution BiCritSolver::solve_pair(double rho, double sigma1,
                                      double sigma2, EvalMode mode) const {
  if (!(rho > 0.0)) {
    throw std::invalid_argument("BiCritSolver: rho must be positive");
  }
  PairSolution sol;
  sol.sigma1 = sigma1;
  sol.sigma2 = sigma2;

  if (mode == EvalMode::kExactOptimize) {
    const ExactPairResult exact =
        optimize_exact_pair(params_, rho, sigma1, sigma2, numeric_options_);
    sol.feasible = exact.feasible;
    sol.first_order_valid = first_order_valid(params_, sigma1, sigma2);
    sol.rho_min = std::numeric_limits<double>::quiet_NaN();
    sol.w_opt = exact.w_opt;
    sol.w_energy = exact.w_opt;
    sol.w_min = exact.w_min;
    sol.w_max = exact.w_max;
    sol.energy_overhead = exact.energy_overhead;
    sol.time_overhead = exact.time_overhead;
    return sol;
  }

  const OverheadExpansion time_exp = time_expansion(params_, sigma1, sigma2);
  const OverheadExpansion energy_exp =
      energy_expansion(params_, sigma1, sigma2);
  sol.first_order_valid = time_exp.y > 0.0 && energy_exp.y > 0.0;
  sol.rho_min = rho_min(time_exp);
  if (!sol.first_order_valid) {
    // Outside the validity window of §5.2 the closed form is meaningless;
    // callers should switch to kExactOptimize.
    sol.feasible = false;
    return sol;
  }

  const FeasibleInterval interval = feasible_interval(time_exp, rho);
  if (!interval.feasible()) {
    sol.feasible = false;
    return sol;
  }
  sol.w_min = interval.w_min;
  sol.w_max = interval.w_max;

  // Eq. (5): unconstrained energy optimum; Eq. (4): clamp into [W1, W2].
  sol.w_energy = energy_exp.has_interior_minimum()
                     ? energy_exp.argmin()
                     : interval.w_max;
  if (!std::isfinite(sol.w_energy)) {
    // Error-free model: energy overhead decreases in W forever; take the
    // largest bounded pattern if any, else a nominal large pattern.
    sol.w_energy = std::isfinite(interval.w_max) ? interval.w_max
                                                 : numeric_options_.w_cap;
  }
  sol.w_opt = std::min(std::max(interval.w_min, sol.w_energy),
                       std::isfinite(interval.w_max)
                           ? interval.w_max
                           : std::numeric_limits<double>::max());
  sol.feasible = true;

  if (mode == EvalMode::kFirstOrder) {
    sol.energy_overhead = energy_exp.evaluate(sol.w_opt);
    sol.time_overhead = time_exp.evaluate(sol.w_opt);
  } else {  // kExactEvaluation
    sol.energy_overhead = energy_overhead(params_, sol.w_opt, sigma1, sigma2);
    sol.time_overhead = time_overhead(params_, sol.w_opt, sigma1, sigma2);
  }
  return sol;
}

PairSolution BiCritSolver::min_rho_solution(SpeedPolicy policy) const {
  PairSolution best;
  best.feasible = false;
  double best_rho = std::numeric_limits<double>::infinity();
  for (const double s1 : params_.speeds) {
    for (const double s2 : params_.speeds) {
      if (policy == SpeedPolicy::kSingleSpeed && s1 != s2) continue;
      const OverheadExpansion time_exp = time_expansion(params_, s1, s2);
      const OverheadExpansion energy_exp =
          energy_expansion(params_, s1, s2);
      if (!(time_exp.y > 0.0) || !(energy_exp.y > 0.0)) continue;
      const double bound = rho_min(time_exp);
      if (bound >= best_rho) continue;
      best_rho = bound;
      best.feasible = true;
      best.first_order_valid = true;
      best.sigma1 = s1;
      best.sigma2 = s2;
      best.rho_min = bound;
      best.w_opt = time_exp.argmin();  // tangency pattern size
      best.w_energy = energy_exp.argmin();
      best.w_min = best.w_opt;
      best.w_max = best.w_opt;
      best.time_overhead = time_exp.evaluate(best.w_opt);
      best.energy_overhead = energy_exp.evaluate(best.w_opt);
    }
  }
  return best;
}

BiCritSolution BiCritSolver::solve(double rho, SpeedPolicy policy,
                                   EvalMode mode) const {
  BiCritSolution solution;
  solution.pairs.reserve(params_.speeds.size() * params_.speeds.size());
  double best_energy = std::numeric_limits<double>::infinity();
  for (const double s1 : params_.speeds) {
    for (const double s2 : params_.speeds) {
      if (policy == SpeedPolicy::kSingleSpeed && s1 != s2) continue;
      PairSolution pair = solve_pair(rho, s1, s2, mode);
      if (pair.feasible && pair.energy_overhead < best_energy) {
        best_energy = pair.energy_overhead;
        solution.best = pair;
        solution.feasible = true;
      }
      solution.pairs.push_back(std::move(pair));
    }
  }
  return solution;
}

}  // namespace rexspeed::core
