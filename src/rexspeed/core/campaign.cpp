#include "rexspeed/core/campaign.hpp"

#include <stdexcept>

namespace rexspeed::core {

CampaignPlan plan_campaign_from_solution(const ModelParams& params,
                                         const PairSolution& solution,
                                         double total_work) {
  params.validate();
  if (!(total_work > 0.0)) {
    throw std::invalid_argument(
        "plan_campaign: total work must be positive");
  }
  CampaignPlan plan;
  plan.total_work = total_work;
  if (!solution.feasible) return plan;

  plan.feasible = true;
  plan.policy = solution;
  plan.patterns = total_work / solution.w_opt;
  plan.expected_makespan_s = solution.time_overhead * total_work;
  plan.expected_energy_mws = solution.energy_overhead * total_work;
  plan.ideal_makespan_s = total_work / solution.sigma1;
  plan.attempts = attempt_stats(params, solution.w_opt, solution.sigma1,
                                solution.sigma2);
  plan.expected_errors = plan.attempts.expected_recoveries * plan.patterns;
  plan.expected_checkpoints = plan.patterns;
  return plan;
}

CampaignPlan plan_campaign(const ModelParams& params, double rho,
                           double total_work, SpeedPolicy policy,
                           EvalMode mode) {
  const BiCritSolver solver(params);
  const BiCritSolution solution = solver.solve(rho, policy, mode);
  CampaignPlan plan =
      plan_campaign_from_solution(params, solution.best, total_work);
  plan.feasible = solution.feasible;
  return plan;
}

}  // namespace rexspeed::core
