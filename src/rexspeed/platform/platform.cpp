#include "rexspeed/platform/platform.hpp"

#include <stdexcept>

namespace rexspeed::platform {

void PlatformSpec::validate() const {
  if (name.empty()) {
    throw std::invalid_argument("PlatformSpec: name must not be empty");
  }
  if (!(error_rate > 0.0)) {
    throw std::invalid_argument("PlatformSpec: error rate must be positive");
  }
  if (!(checkpoint_s > 0.0)) {
    throw std::invalid_argument(
        "PlatformSpec: checkpoint time must be positive");
  }
  if (verification_s < 0.0) {
    throw std::invalid_argument(
        "PlatformSpec: verification time must be non-negative");
  }
}

PlatformSpec hera() {
  return {.name = "Hera",
          .error_rate = 3.38e-6,
          .checkpoint_s = 300.0,
          .verification_s = 15.4};
}

PlatformSpec atlas() {
  return {.name = "Atlas",
          .error_rate = 7.78e-6,
          .checkpoint_s = 439.0,
          .verification_s = 9.1};
}

PlatformSpec coastal() {
  return {.name = "Coastal",
          .error_rate = 2.01e-6,
          .checkpoint_s = 1051.0,
          .verification_s = 4.5};
}

PlatformSpec coastal_ssd() {
  return {.name = "CoastalSSD",
          .error_rate = 2.01e-6,
          .checkpoint_s = 2500.0,
          .verification_s = 180.0};
}

const std::vector<PlatformSpec>& all_platforms() {
  static const std::vector<PlatformSpec> kPlatforms = {hera(), atlas(),
                                                       coastal(),
                                                       coastal_ssd()};
  return kPlatforms;
}

}  // namespace rexspeed::platform
