#pragma once

#include <string>
#include <vector>

namespace rexspeed::platform {

/// DVFS-capable processor description (paper Table 2).
///
/// The dynamic power law is `Pcpu(σ) = kappa_mw * σ³` with σ a normalized
/// speed in (0, 1]; `idle_power_mw` is the static power drawn whenever the
/// platform is on. Powers are in milliwatts, matching the source table
/// (Rizvandi et al., "Multiple frequency selection in DVFS-enabled
/// processors to minimize energy consumption", 2012).
struct ProcessorSpec {
  std::string name;
  /// Normalized operating points, strictly increasing, each in (0, 1].
  std::vector<double> speeds;
  /// Cubic dynamic-power coefficient κ (mW at σ = 1).
  double kappa_mw = 0.0;
  /// Static power Pidle (mW).
  double idle_power_mw = 0.0;

  /// Dynamic CPU power at normalized speed σ: κσ³ (mW).
  [[nodiscard]] double dynamic_power(double sigma) const noexcept {
    return kappa_mw * sigma * sigma * sigma;
  }

  /// Total compute power at speed σ: Pidle + κσ³ (mW).
  [[nodiscard]] double compute_power(double sigma) const noexcept {
    return idle_power_mw + dynamic_power(sigma);
  }

  [[nodiscard]] double min_speed() const { return speeds.front(); }
  [[nodiscard]] double max_speed() const { return speeds.back(); }

  /// Throws std::invalid_argument when the spec is malformed (empty or
  /// non-increasing speed set, speeds outside (0, 1], negative powers).
  void validate() const;
};

/// Intel XScale: speeds {0.15, 0.4, 0.6, 0.8, 1}, P(σ) = 1550σ³ + 60 mW.
[[nodiscard]] ProcessorSpec intel_xscale();

/// Transmeta Crusoe: speeds {0.45, 0.6, 0.8, 0.9, 1},
/// P(σ) = 5756σ³ + 4.4 mW.
[[nodiscard]] ProcessorSpec transmeta_crusoe();

/// All processors of paper Table 2, in table order.
[[nodiscard]] const std::vector<ProcessorSpec>& all_processors();

}  // namespace rexspeed::platform
