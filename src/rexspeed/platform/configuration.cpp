#include "rexspeed/platform/configuration.hpp"

#include <stdexcept>

namespace rexspeed::platform {

void Configuration::validate() const {
  platform.validate();
  processor.validate();
  if (io_power_mw < 0.0) {
    throw std::invalid_argument(
        "Configuration: I/O power must be non-negative");
  }
}

Configuration make_configuration(PlatformSpec platform,
                                 ProcessorSpec processor) {
  processor.validate();
  const double pio = processor.dynamic_power(processor.min_speed());
  Configuration config{.platform = std::move(platform),
                       .processor = std::move(processor),
                       .io_power_mw = pio};
  config.validate();
  return config;
}

const std::vector<Configuration>& all_configurations() {
  static const std::vector<Configuration> kConfigs = [] {
    std::vector<Configuration> configs;
    configs.reserve(all_platforms().size() * all_processors().size());
    for (const auto& plat : all_platforms()) {
      for (const auto& proc : all_processors()) {
        configs.push_back(make_configuration(plat, proc));
      }
    }
    return configs;
  }();
  return kConfigs;
}

const Configuration& configuration_by_name(const std::string& name) {
  for (const auto& config : all_configurations()) {
    if (config.name() == name) return config;
  }
  throw std::out_of_range("configuration_by_name: unknown configuration '" +
                          name + "'");
}

}  // namespace rexspeed::platform
