#pragma once

#include <string>
#include <vector>

#include "rexspeed/platform/platform.hpp"
#include "rexspeed/platform/processor.hpp"

namespace rexspeed::platform {

/// A platform × processor pairing — one of the paper's eight virtual
/// experimental configurations.
struct Configuration {
  PlatformSpec platform;
  ProcessorSpec processor;
  /// Dynamic I/O power Pio (mW), drawn on top of Pidle during checkpoint
  /// and recovery.
  double io_power_mw = 0.0;

  /// "Platform/Processor" display name, e.g. "Hera/XScale".
  [[nodiscard]] std::string name() const {
    return platform.name + "/" + processor.name;
  }

  void validate() const;
};

/// Builds a configuration with the paper's default-Pio rule: Pio equals the
/// dynamic CPU power at the processor's lowest speed, κ·σmin³.
[[nodiscard]] Configuration make_configuration(PlatformSpec platform,
                                               ProcessorSpec processor);

/// The eight virtual configurations used throughout the evaluation
/// (4 platforms × 2 processors), platform-major order.
[[nodiscard]] const std::vector<Configuration>& all_configurations();

/// Looks up a configuration by "Platform/Processor" name (case-sensitive).
/// Throws std::out_of_range when unknown.
[[nodiscard]] const Configuration& configuration_by_name(
    const std::string& name);

}  // namespace rexspeed::platform
