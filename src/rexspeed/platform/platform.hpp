#pragma once

#include <string>
#include <vector>

namespace rexspeed::platform {

/// Checkpointing platform description (paper Table 1).
///
/// Parameters come from the multi-level checkpointing study of Moody et al.
/// (SC'10). `error_rate` is the silent-error rate λ (errors per second);
/// `checkpoint_s` is the checkpoint write time C; `verification_s` is the
/// time V of a full verification *at maximum speed* (a verification at
/// speed σ costs V/σ). Recovery time R is taken equal to C (a read costs
/// the same as a write, following Quaglia's cost model), which the paper
/// adopts in its experimental setup.
struct PlatformSpec {
  std::string name;
  /// Silent-error rate λ (1/s). Platform MTBF is 1/λ.
  double error_rate = 0.0;
  /// Checkpoint time C (s).
  double checkpoint_s = 0.0;
  /// Verification time V at full speed (s).
  double verification_s = 0.0;

  /// Recovery time R (s); the paper sets R = C.
  [[nodiscard]] double recovery_s() const noexcept { return checkpoint_s; }

  /// Platform mean time between silent errors, 1/λ (s).
  [[nodiscard]] double mtbf_s() const noexcept { return 1.0 / error_rate; }

  /// Throws std::invalid_argument when a parameter is non-positive.
  void validate() const;
};

/// Hera: λ = 3.38e-6, C = 300 s, V = 15.4 s.
[[nodiscard]] PlatformSpec hera();
/// Atlas: λ = 7.78e-6, C = 439 s, V = 9.1 s.
[[nodiscard]] PlatformSpec atlas();
/// Coastal: λ = 2.01e-6, C = 1051 s, V = 4.5 s.
[[nodiscard]] PlatformSpec coastal();
/// Coastal with SSD storage: λ = 2.01e-6, C = 2500 s, V = 180 s.
[[nodiscard]] PlatformSpec coastal_ssd();

/// All platforms of paper Table 1, in table order.
[[nodiscard]] const std::vector<PlatformSpec>& all_platforms();

}  // namespace rexspeed::platform
