#include "rexspeed/platform/processor.hpp"

#include <stdexcept>

namespace rexspeed::platform {

void ProcessorSpec::validate() const {
  if (name.empty()) {
    throw std::invalid_argument("ProcessorSpec: name must not be empty");
  }
  if (speeds.empty()) {
    throw std::invalid_argument("ProcessorSpec: speed set must not be empty");
  }
  double prev = 0.0;
  for (const double s : speeds) {
    if (!(s > 0.0) || s > 1.0) {
      throw std::invalid_argument(
          "ProcessorSpec: speeds must lie in (0, 1], got " +
          std::to_string(s));
    }
    if (s <= prev) {
      throw std::invalid_argument(
          "ProcessorSpec: speeds must be strictly increasing");
    }
    prev = s;
  }
  if (kappa_mw < 0.0 || idle_power_mw < 0.0) {
    throw std::invalid_argument("ProcessorSpec: powers must be non-negative");
  }
}

ProcessorSpec intel_xscale() {
  return {.name = "XScale",
          .speeds = {0.15, 0.4, 0.6, 0.8, 1.0},
          .kappa_mw = 1550.0,
          .idle_power_mw = 60.0};
}

ProcessorSpec transmeta_crusoe() {
  return {.name = "Crusoe",
          .speeds = {0.45, 0.6, 0.8, 0.9, 1.0},
          .kappa_mw = 5756.0,
          .idle_power_mw = 4.4};
}

const std::vector<ProcessorSpec>& all_processors() {
  static const std::vector<ProcessorSpec> kProcessors = {intel_xscale(),
                                                         transmeta_crusoe()};
  return kProcessors;
}

}  // namespace rexspeed::platform
