#include "rexspeed/stats/regression.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

#include "rexspeed/stats/kahan.hpp"

namespace rexspeed::stats {

LinearFit linear_fit(std::span<const double> x, std::span<const double> y) {
  if (x.size() != y.size()) {
    throw std::invalid_argument("linear_fit: size mismatch");
  }
  const std::size_t n = x.size();
  if (n < 2) {
    throw std::invalid_argument("linear_fit: need at least two samples");
  }
  const double mean_x = kahan_sum(x.begin(), x.end()) / static_cast<double>(n);
  const double mean_y = kahan_sum(y.begin(), y.end()) / static_cast<double>(n);

  KahanSum sxx;
  KahanSum sxy;
  KahanSum syy;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = x[i] - mean_x;
    const double dy = y[i] - mean_y;
    sxx.add(dx * dx);
    sxy.add(dx * dy);
    syy.add(dy * dy);
  }
  if (sxx.value() <= 0.0) {
    throw std::invalid_argument("linear_fit: x values are all identical");
  }

  LinearFit fit;
  fit.slope = sxy.value() / sxx.value();
  fit.intercept = mean_y - fit.slope * mean_x;

  KahanSum ss_res;
  for (std::size_t i = 0; i < n; ++i) {
    const double r = y[i] - (fit.intercept + fit.slope * x[i]);
    ss_res.add(r * r);
  }
  fit.r_squared =
      syy.value() > 0.0 ? 1.0 - ss_res.value() / syy.value() : 1.0;
  if (n > 2) {
    const double mse = ss_res.value() / static_cast<double>(n - 2);
    fit.slope_stderr = std::sqrt(mse / sxx.value());
  }
  return fit;
}

LinearFit log_log_fit(std::span<const double> x, std::span<const double> y) {
  if (x.size() != y.size()) {
    throw std::invalid_argument("log_log_fit: size mismatch");
  }
  std::vector<double> lx(x.size());
  std::vector<double> ly(y.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (!(x[i] > 0.0) || !(y[i] > 0.0)) {
      throw std::domain_error("log_log_fit: inputs must be positive");
    }
    lx[i] = std::log(x[i]);
    ly[i] = std::log(y[i]);
  }
  return linear_fit(lx, ly);
}

}  // namespace rexspeed::stats
