#include "rexspeed/stats/quantile.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace rexspeed::stats {

P2Quantile::P2Quantile(double probability) : probability_(probability) {
  if (!(probability > 0.0 && probability < 1.0)) {
    throw std::invalid_argument(
        "P2Quantile: probability must lie in (0, 1)");
  }
  const double p = probability;
  desired_ = {1.0, 1.0 + 2.0 * p, 1.0 + 4.0 * p, 3.0 + 2.0 * p, 5.0};
  increments_ = {0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0};
  positions_ = {1.0, 2.0, 3.0, 4.0, 5.0};
}

double P2Quantile::parabolic(int i, double d) const {
  const double qp = heights_[static_cast<std::size_t>(i + 1)];
  const double q = heights_[static_cast<std::size_t>(i)];
  const double qm = heights_[static_cast<std::size_t>(i - 1)];
  const double np = positions_[static_cast<std::size_t>(i + 1)];
  const double n = positions_[static_cast<std::size_t>(i)];
  const double nm = positions_[static_cast<std::size_t>(i - 1)];
  return q + d / (np - nm) *
                 ((n - nm + d) * (qp - q) / (np - n) +
                  (np - n - d) * (q - qm) / (n - nm));
}

double P2Quantile::linear(int i, int d) const {
  const auto idx = static_cast<std::size_t>(i);
  const auto nbr = static_cast<std::size_t>(i + d);
  return heights_[idx] + d * (heights_[nbr] - heights_[idx]) /
                             (positions_[nbr] - positions_[idx]);
}

void P2Quantile::add(double x) {
  if (count_ < 5) {
    heights_[count_++] = x;
    if (count_ == 5) std::sort(heights_.begin(), heights_.end());
    return;
  }

  // Locate the cell containing x and clamp the extreme markers.
  int k;
  if (x < heights_[0]) {
    heights_[0] = x;
    k = 0;
  } else if (x < heights_[1]) {
    k = 0;
  } else if (x < heights_[2]) {
    k = 1;
  } else if (x < heights_[3]) {
    k = 2;
  } else if (x <= heights_[4]) {
    k = 3;
  } else {
    heights_[4] = x;
    k = 3;
  }

  for (int i = k + 1; i < 5; ++i) {
    positions_[static_cast<std::size_t>(i)] += 1.0;
  }
  for (int i = 0; i < 5; ++i) {
    desired_[static_cast<std::size_t>(i)] +=
        increments_[static_cast<std::size_t>(i)];
  }

  // Adjust the three interior markers toward their desired positions.
  for (int i = 1; i <= 3; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    const double gap = desired_[idx] - positions_[idx];
    const double right = positions_[idx + 1] - positions_[idx];
    const double left = positions_[idx - 1] - positions_[idx];
    if ((gap >= 1.0 && right > 1.0) || (gap <= -1.0 && left < -1.0)) {
      const int d = gap >= 1.0 ? 1 : -1;
      double candidate = parabolic(i, d);
      if (heights_[idx - 1] < candidate && candidate < heights_[idx + 1]) {
        heights_[idx] = candidate;
      } else {
        heights_[idx] = linear(i, d);
      }
      positions_[idx] += d;
    }
  }
  ++count_;
}

double P2Quantile::value() const {
  if (count_ == 0) {
    throw std::logic_error("P2Quantile: no samples");
  }
  if (count_ < 5) {
    // Exact order statistic on the sorted prefix.
    std::array<double, 5> sorted = heights_;
    std::sort(sorted.begin(), sorted.begin() + count_);
    const auto rank = static_cast<std::size_t>(std::ceil(
        probability_ * static_cast<double>(count_)));
    return sorted[std::min(count_ - 1, std::max<std::size_t>(rank, 1) - 1)];
  }
  return heights_[2];
}

}  // namespace rexspeed::stats
