#include "rexspeed/stats/summary.hpp"

#include <cmath>
#include <stdexcept>

namespace rexspeed::stats {

namespace {

// Coefficients of Acklam's inverse-normal-CDF approximation.
constexpr double kA[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                         -2.759285104469687e+02, 1.383577518672690e+02,
                         -3.066479806614716e+01, 2.506628277459239e+00};
constexpr double kB[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                         -1.556989798598866e+02, 6.680131188771972e+01,
                         -1.328068155288572e+01};
constexpr double kC[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                         -2.400758277161838e+00, -2.549732539343734e+00,
                         4.374664141464968e+00,  2.938163982698783e+00};
constexpr double kD[] = {7.784695709041462e-03, 3.224671290700398e-01,
                         2.445134137142996e+00, 3.754408661907416e+00};

double acklam_tail(double q) {
  // q in (0, 0.02425]: lower-tail branch.
  const double r = std::sqrt(-2.0 * std::log(q));
  return (((((kC[0] * r + kC[1]) * r + kC[2]) * r + kC[3]) * r + kC[4]) * r +
          kC[5]) /
         ((((kD[0] * r + kD[1]) * r + kD[2]) * r + kD[3]) * r + 1.0);
}

}  // namespace

double normal_quantile(double p) {
  if (!(p > 0.0 && p < 1.0)) {
    throw std::domain_error("normal_quantile: p must lie in (0, 1)");
  }
  constexpr double kLow = 0.02425;
  if (p < kLow) return acklam_tail(p);
  if (p > 1.0 - kLow) return -acklam_tail(1.0 - p);
  const double q = p - 0.5;
  const double r = q * q;
  return (((((kA[0] * r + kA[1]) * r + kA[2]) * r + kA[3]) * r + kA[4]) * r +
          kA[5]) *
         q /
         (((((kB[0] * r + kB[1]) * r + kB[2]) * r + kB[3]) * r + kB[4]) * r +
          1.0);
}

double student_t_quantile(double p, std::size_t df) {
  if (df == 0) {
    throw std::domain_error("student_t_quantile: df must be positive");
  }
  const double z = normal_quantile(p);
  const auto n = static_cast<double>(df);
  // Cornish–Fisher expansion of the t quantile in powers of 1/df.
  const double z3 = z * z * z;
  const double z5 = z3 * z * z;
  const double z7 = z5 * z * z;
  const double g1 = (z3 + z) / 4.0;
  const double g2 = (5.0 * z5 + 16.0 * z3 + 3.0 * z) / 96.0;
  const double g3 = (3.0 * z7 + 19.0 * z5 + 17.0 * z3 - 15.0 * z) / 384.0;
  return z + g1 / n + g2 / (n * n) + g3 / (n * n * n);
}

ConfidenceInterval mean_confidence_interval(const Welford& acc,
                                            double confidence) {
  if (!(confidence > 0.0 && confidence < 1.0)) {
    throw std::domain_error(
        "mean_confidence_interval: confidence must lie in (0, 1)");
  }
  if (acc.count() < 2) {
    return {acc.mean(), acc.mean()};
  }
  const double alpha = 1.0 - confidence;
  const double t = student_t_quantile(1.0 - alpha / 2.0, acc.count() - 1);
  const double half = t * acc.standard_error();
  return {acc.mean() - half, acc.mean() + half};
}

}  // namespace rexspeed::stats
