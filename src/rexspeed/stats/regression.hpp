#pragma once

#include <span>

namespace rexspeed::stats {

/// Result of an ordinary-least-squares fit y = intercept + slope * x.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r_squared = 0.0;
  /// Standard error of the slope estimate.
  double slope_stderr = 0.0;
};

/// OLS fit over paired samples. Requires at least two distinct x values.
[[nodiscard]] LinearFit linear_fit(std::span<const double> x,
                                   std::span<const double> y);

/// OLS fit of log(y) against log(x); the slope is the power-law exponent.
/// All inputs must be strictly positive. Used to measure the Θ(λ^-2/3)
/// checkpointing-period scaling of Theorem 2.
[[nodiscard]] LinearFit log_log_fit(std::span<const double> x,
                                    std::span<const double> y);

}  // namespace rexspeed::stats
