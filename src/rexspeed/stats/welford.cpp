#include "rexspeed/stats/welford.hpp"

#include <algorithm>
#include <cmath>

namespace rexspeed::stats {

void Welford::add(double x) noexcept {
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void Welford::merge(const Welford& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double Welford::variance() const noexcept {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double Welford::stddev() const noexcept { return std::sqrt(variance()); }

double Welford::standard_error() const noexcept {
  if (n_ < 2) return 0.0;
  return stddev() / std::sqrt(static_cast<double>(n_));
}

void Welford::reset() noexcept { *this = Welford{}; }

}  // namespace rexspeed::stats
