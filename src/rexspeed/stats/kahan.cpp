#include "rexspeed/stats/kahan.hpp"

#include <cmath>

namespace rexspeed::stats {

void KahanSum::add(double value) noexcept {
  const double t = sum_ + value;
  if (std::abs(sum_) >= std::abs(value)) {
    compensation_ += (sum_ - t) + value;
  } else {
    compensation_ += (value - t) + sum_;
  }
  sum_ = t;
  ++count_;
}

void KahanSum::reset() noexcept {
  sum_ = 0.0;
  compensation_ = 0.0;
  count_ = 0;
}

}  // namespace rexspeed::stats
