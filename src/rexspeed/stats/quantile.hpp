#pragma once

#include <array>
#include <cstddef>

namespace rexspeed::stats {

/// Streaming quantile estimator (Jain & Chlamtac's P² algorithm).
///
/// Tracks one quantile in O(1) memory without storing the samples — used
/// to report tail makespans (e.g. the P95 campaign duration) from long
/// Monte-Carlo runs. Exact while fewer than five samples have been seen;
/// afterwards the five markers follow piecewise-parabolic updates.
class P2Quantile {
 public:
  /// `probability` in (0, 1), e.g. 0.95 for the 95th percentile.
  explicit P2Quantile(double probability);

  void add(double x);

  /// Current estimate. Exact (order statistic) until five samples.
  [[nodiscard]] double value() const;

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] double probability() const noexcept { return probability_; }

 private:
  double probability_;
  std::size_t count_ = 0;
  std::array<double, 5> heights_{};    // marker heights q_i
  std::array<double, 5> positions_{};  // actual positions n_i
  std::array<double, 5> desired_{};    // desired positions n'_i
  std::array<double, 5> increments_{}; // dn'_i

  [[nodiscard]] double parabolic(int i, double d) const;
  [[nodiscard]] double linear(int i, int d) const;
};

}  // namespace rexspeed::stats
