#pragma once

#include <cstddef>

namespace rexspeed::stats {

/// Compensated (Kahan–Neumaier) summation.
///
/// Monte-Carlo harnesses accumulate millions of energy/time samples whose
/// magnitudes span several orders; naive summation loses the low-order bits
/// that the confidence intervals in `monte_carlo` depend on. Neumaier's
/// variant also stays accurate when an addend exceeds the running sum.
class KahanSum {
 public:
  KahanSum() = default;
  explicit KahanSum(double initial) : sum_(initial) {}

  /// Adds `value` with compensation.
  void add(double value) noexcept;

  /// Adds every element of a range.
  template <typename It>
  void add(It first, It last) noexcept {
    for (; first != last; ++first) add(static_cast<double>(*first));
  }

  /// Compensated total.
  [[nodiscard]] double value() const noexcept { return sum_ + compensation_; }

  /// Number of addends seen so far.
  [[nodiscard]] std::size_t count() const noexcept { return count_; }

  /// Resets to an empty sum.
  void reset() noexcept;

  KahanSum& operator+=(double value) noexcept {
    add(value);
    return *this;
  }

 private:
  double sum_ = 0.0;
  double compensation_ = 0.0;
  std::size_t count_ = 0;
};

/// One-shot compensated sum of a range.
template <typename It>
[[nodiscard]] double kahan_sum(It first, It last) noexcept {
  KahanSum s;
  s.add(first, last);
  return s.value();
}

}  // namespace rexspeed::stats
