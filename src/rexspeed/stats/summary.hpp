#pragma once

#include <cstddef>

#include "rexspeed/stats/welford.hpp"

namespace rexspeed::stats {

/// Symmetric confidence interval around a sample mean.
struct ConfidenceInterval {
  double lower = 0.0;
  double upper = 0.0;

  [[nodiscard]] double half_width() const noexcept {
    return 0.5 * (upper - lower);
  }
  [[nodiscard]] double center() const noexcept {
    return 0.5 * (upper + lower);
  }
  [[nodiscard]] bool contains(double x) const noexcept {
    return x >= lower && x <= upper;
  }
};

/// Upper quantile of the standard normal distribution (Acklam's rational
/// approximation, relative error < 1.2e-9). `p` must lie in (0, 1).
[[nodiscard]] double normal_quantile(double p);

/// Upper quantile of Student's t distribution with `df` degrees of freedom
/// (Cornish–Fisher expansion around the normal quantile; accurate to a few
/// 1e-4 for df >= 3, exact in the df → ∞ limit).
[[nodiscard]] double student_t_quantile(double p, std::size_t df);

/// Two-sided confidence interval for the mean of the accumulated samples.
/// `confidence` is the coverage level, e.g. 0.95.
[[nodiscard]] ConfidenceInterval mean_confidence_interval(const Welford& acc,
                                                          double confidence);

}  // namespace rexspeed::stats
