#pragma once

#include <cstddef>

namespace rexspeed::stats {

/// Streaming mean/variance accumulator (Welford's online algorithm).
///
/// Numerically stable for long replication runs; supports O(1) merging so
/// per-thread accumulators can be combined after a parallel Monte-Carlo
/// sweep without storing the samples.
class Welford {
 public:
  /// Incorporates one observation.
  void add(double x) noexcept;

  /// Merges another accumulator (Chan et al. parallel update).
  void merge(const Welford& other) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ > 0 ? mean_ : 0.0; }

  /// Unbiased sample variance (0 when fewer than two observations).
  [[nodiscard]] double variance() const noexcept;

  /// Sample standard deviation.
  [[nodiscard]] double stddev() const noexcept;

  /// Standard error of the mean.
  [[nodiscard]] double standard_error() const noexcept;

  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

  void reset() noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace rexspeed::stats
