#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

#include "rexspeed/core/solver_backend.hpp"
#include "rexspeed/sweep/panel_sweep.hpp"

namespace rexspeed::store {

/// Thrown on any malformed, truncated, version-mismatched or
/// checksum-failing blob. The store treats every SerializeError as "entry
/// corrupt": verify-on-fetch converts it into a recompute, never a crash.
class SerializeError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// On-disk format version. Bump whenever the byte layout below changes —
/// old entries then fail the header check and are recomputed (the same
/// invalidation path as a backend version-tag change, one layer down).
inline constexpr std::uint32_t kFormatVersion = 1;

/// Canonical little-endian byte-stream writer shared by the serializers
/// and the key derivation (store_key.cpp). Doubles are written as their
/// IEEE-754 bit patterns, so round trips are bit-exact (NaN payloads and
/// signed zeros included) and equal inputs hash equally across platforms.
class ByteWriter {
 public:
  void u8(std::uint8_t value);
  void u32(std::uint32_t value);
  void u64(std::uint64_t value);
  void i32(std::int32_t value);
  void f64(double value);
  void boolean(bool value);
  void str(std::string_view value);  ///< u32 length + raw bytes
  void raw(const void* data, std::size_t size);

  [[nodiscard]] const std::string& bytes() const noexcept { return bytes_; }
  [[nodiscard]] std::string take() { return std::move(bytes_); }

 private:
  std::string bytes_;
};

/// Bounds-checked reader over a serialized blob; every overrun or invalid
/// enum throws SerializeError.
class ByteReader {
 public:
  explicit ByteReader(std::string_view bytes) : bytes_(bytes) {}

  [[nodiscard]] std::uint8_t u8();
  [[nodiscard]] std::uint32_t u32();
  [[nodiscard]] std::uint64_t u64();
  [[nodiscard]] std::int32_t i32();
  [[nodiscard]] double f64();
  [[nodiscard]] bool boolean();
  [[nodiscard]] std::string str();

  [[nodiscard]] std::size_t remaining() const noexcept {
    return bytes_.size() - offset_;
  }
  /// Throws unless every byte has been consumed — trailing garbage means
  /// the blob does not round-trip and must not be trusted.
  void expect_end() const;

 private:
  void need(std::size_t count) const;

  std::string_view bytes_;
  std::size_t offset_ = 0;
};

/// Lossless binary serialization of the store's two payload types. Layout:
/// magic "RXSC", u32 format version, u8 payload kind (0 = Solution,
/// 1 = PanelSeries), payload bytes, trailing u64 FNV-1a checksum over
/// everything before it. deserialize_* verifies the checksum before
/// touching the payload and throws SerializeError on any mismatch;
/// serialize(deserialize(b)) == b and deserialize(serialize(v)) == v
/// bit for bit (tested contract).
[[nodiscard]] std::string serialize_solution(const core::Solution& solution);
[[nodiscard]] core::Solution deserialize_solution(std::string_view bytes);

[[nodiscard]] std::string serialize_panel_series(
    const sweep::PanelSeries& series);
[[nodiscard]] sweep::PanelSeries deserialize_panel_series(
    std::string_view bytes);

/// Payload kind recorded in a blob's header (throws SerializeError on a
/// bad header/checksum) — lets `rexspeed cache verify` and the store's
/// fetch paths reject a kind mismatch before full deserialization.
enum class PayloadKind : std::uint8_t {
  kSolution = 0,
  kPanelSeries = 1,
};
[[nodiscard]] PayloadKind payload_kind(std::string_view bytes);

}  // namespace rexspeed::store
