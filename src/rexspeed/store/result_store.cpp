#include "rexspeed/store/result_store.hpp"

#include <algorithm>
#include <array>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <system_error>

#include "rexspeed/store/hash.hpp"
#include "rexspeed/store/serialize.hpp"

namespace rexspeed::store {

namespace fs = std::filesystem;

namespace {

bool is_hex_key(const std::string& key) {
  if (key.empty() || key.size() > 128) return false;
  for (const char c : key) {
    const bool ok = (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f');
    if (!ok) return false;
  }
  return true;
}

void require_key(const std::string& key) {
  if (!is_hex_key(key)) {
    throw StoreError("store: malformed key '" + key +
                     "' (keys are lower-case hex)");
  }
}

std::optional<std::string> read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (!in.good() && !in.eof()) return std::nullopt;
  return std::move(buffer).str();
}

/// Atomic write: temp file in the same directory + rename, so readers
/// never observe a half-written entry and a killed run leaves at most a
/// stray .tmp for gc() to sweep.
void write_file_atomic(const fs::path& path, std::string_view bytes) {
  const fs::path tmp = path.string() + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw StoreError("store: cannot write " + tmp.string());
    }
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    if (!out.good()) {
      throw StoreError("store: short write to " + tmp.string());
    }
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    throw StoreError("store: cannot rename " + tmp.string() + " -> " +
                     path.string() + ": " + ec.message());
  }
}

std::string format_double_field(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

std::string payload_hash(std::string_view blob) {
  return "fnv1a64:" + to_hex(fnv1a64(blob.data(), blob.size()));
}

constexpr const char* kStatsFields[4] = {"Hits", "Misses", "Stores",
                                         "Corrupt"};

/// The persisted counter quartet, in kStatsFields order.
std::array<std::uint64_t, 4> load_counters(const fs::path& path) {
  std::array<std::uint64_t, 4> counters{};
  const std::optional<std::string> text = read_file(path);
  if (!text) return counters;
  std::istringstream lines(*text);
  std::string line;
  while (std::getline(lines, line)) {
    const std::size_t colon = line.find(": ");
    if (colon == std::string::npos) continue;
    const std::string field = line.substr(0, colon);
    const std::string value = line.substr(colon + 2);
    for (std::size_t i = 0; i < 4; ++i) {
      if (field == kStatsFields[i]) {
        counters[i] = std::strtoull(value.c_str(), nullptr, 10);
      }
    }
  }
  return counters;
}

}  // namespace

// ---- sidecar format ------------------------------------------------------

std::string format_entry_info(const EntryInfo& info) {
  std::ostringstream out;
  out << "Key: " << info.key << '\n'
      << "Kind: " << info.kind << '\n'
      << "Scenario: " << info.scenario << '\n'
      << "Configuration: " << info.configuration << '\n'
      << "Backend: " << info.backend << '\n'
      << "BackendVersion: " << info.backend_version << '\n'
      << "Axis: " << info.axis << '\n'
      << "Points: " << info.points << '\n'
      << "DataSize: " << info.data_size << '\n'
      << "DataHash: " << info.data_hash << '\n'
      << "CostPerPoint: " << format_double_field(info.cost_seconds_per_point)
      << '\n';
  return std::move(out).str();
}

EntryInfo parse_entry_info(const std::string& text) {
  EntryInfo info;
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    const std::size_t colon = line.find(": ");
    if (colon == std::string::npos) continue;
    const std::string field = line.substr(0, colon);
    const std::string value = line.substr(colon + 2);
    if (field == "Key") {
      info.key = value;
    } else if (field == "Kind") {
      info.kind = value;
    } else if (field == "Scenario") {
      info.scenario = value;
    } else if (field == "Configuration") {
      info.configuration = value;
    } else if (field == "Backend") {
      info.backend = value;
    } else if (field == "BackendVersion") {
      info.backend_version = value;
    } else if (field == "Axis") {
      info.axis = value;
    } else if (field == "Points") {
      info.points = std::strtoull(value.c_str(), nullptr, 10);
    } else if (field == "DataSize") {
      info.data_size = std::strtoull(value.c_str(), nullptr, 10);
    } else if (field == "DataHash") {
      info.data_hash = value;
    } else if (field == "CostPerPoint") {
      info.cost_seconds_per_point = std::strtod(value.c_str(), nullptr);
    }
    // Unknown fields are skipped: older binaries read newer sidecars.
  }
  if (!is_hex_key(info.key)) {
    throw StoreError("store: sidecar without a usable Key line");
  }
  return info;
}

// ---- LocalResultStore ----------------------------------------------------

LocalResultStore::LocalResultStore(fs::path root) : root_(std::move(root)) {
  std::error_code ec;
  fs::create_directories(root_ / "entries", ec);
  if (!ec) fs::create_directories(root_ / "costs", ec);
  if (ec) {
    throw StoreError("store: cannot create cache directory " +
                     root_.string() + ": " + ec.message());
  }
}

LocalResultStore::~LocalResultStore() {
  try {
    flush();
  } catch (...) {
    // Destructors must not throw; losing a stats merge is harmless.
  }
}

fs::path LocalResultStore::entry_path(const std::string& key) const {
  return root_ / "entries" / (key + ".bin");
}

fs::path LocalResultStore::info_path(const std::string& key) const {
  return root_ / "entries" / (key + ".info");
}

std::optional<std::string> LocalResultStore::fetch(const std::string& key) {
  require_key(key);
  std::optional<std::string> blob = read_file(entry_path(key));
  if (!blob) {
    ++session_.misses;
    return std::nullopt;
  }
  // Verify-on-fetch: the envelope check validates magic, format version
  // and the trailing checksum; the sidecar hash (when present) ties the
  // payload to its recorded provenance. Any failure is a recompute, not
  // an error.
  try {
    (void)payload_kind(*blob);
  } catch (const SerializeError&) {
    ++session_.corrupt;
    return std::nullopt;
  }
  if (const std::optional<std::string> sidecar = read_file(info_path(key))) {
    try {
      const EntryInfo info = parse_entry_info(*sidecar);
      if (!info.data_hash.empty() && info.data_hash != payload_hash(*blob)) {
        ++session_.corrupt;
        return std::nullopt;
      }
    } catch (const StoreError&) {
      ++session_.corrupt;
      return std::nullopt;
    }
  }
  ++session_.hits;
  return blob;
}

void LocalResultStore::put(const std::string& key, std::string_view blob,
                           EntryInfo info) {
  require_key(key);
  info.key = key;
  info.data_size = blob.size();
  info.data_hash = payload_hash(blob);
  write_file_atomic(entry_path(key), blob);
  write_file_atomic(info_path(key), format_entry_info(info));
  ++session_.stores;
}

std::optional<EntryInfo> LocalResultStore::info(const std::string& key) {
  require_key(key);
  const std::optional<std::string> sidecar = read_file(info_path(key));
  if (!sidecar) return std::nullopt;
  try {
    return parse_entry_info(*sidecar);
  } catch (const StoreError&) {
    return std::nullopt;
  }
}

std::optional<double> LocalResultStore::lookup_cost(
    const std::string& cost_key) {
  require_key(cost_key);
  const std::optional<std::string> text =
      read_file(root_ / "costs" / (cost_key + ".cost"));
  if (!text) return std::nullopt;
  char* end = nullptr;
  const double value = std::strtod(text->c_str(), &end);
  if (end == text->c_str() || !(value > 0.0)) return std::nullopt;
  return value;
}

void LocalResultStore::record_cost(const std::string& cost_key,
                                   double seconds_per_point) {
  require_key(cost_key);
  if (!(seconds_per_point > 0.0)) return;
  write_file_atomic(root_ / "costs" / (cost_key + ".cost"),
                    format_double_field(seconds_per_point) + "\n");
}

StoreStats LocalResultStore::stats() {
  const std::array<std::uint64_t, 4> persisted =
      load_counters(root_ / "stats");
  StoreStats out;
  out.hits = persisted[0] + session_.hits;
  out.misses = persisted[1] + session_.misses;
  out.stores = persisted[2] + session_.stores;
  out.corrupt = persisted[3] + session_.corrupt;
  std::error_code ec;
  for (const auto& file : fs::directory_iterator(root_ / "entries", ec)) {
    if (file.path().extension() == ".bin") {
      ++out.entries;
      out.bytes += fs::file_size(file.path(), ec);
    }
  }
  return out;
}

std::vector<std::string> LocalResultStore::verify() {
  std::vector<std::string> bad;
  std::error_code ec;
  for (const auto& file : fs::directory_iterator(root_ / "entries", ec)) {
    const fs::path& path = file.path();
    const std::string stem = path.stem().string();
    if (path.extension() == ".bin") {
      const std::optional<std::string> blob = read_file(path);
      bool ok = blob.has_value();
      if (ok) {
        try {
          (void)payload_kind(*blob);
        } catch (const SerializeError&) {
          ok = false;
        }
      }
      if (ok) {
        if (const std::optional<std::string> sidecar =
                read_file(info_path(stem))) {
          try {
            const EntryInfo entry = parse_entry_info(*sidecar);
            ok = entry.data_hash.empty() ||
                 entry.data_hash == payload_hash(*blob);
          } catch (const StoreError&) {
            ok = false;
          }
        }
      }
      if (!ok) bad.push_back(stem);
    } else if (path.extension() == ".info") {
      // A sidecar whose payload vanished is unusable provenance.
      if (!fs::exists(entry_path(stem))) bad.push_back(stem);
    } else if (path.extension() == ".tmp") {
      // Leftover from a killed write; never referenced by key.
      bad.push_back(path.filename().string());
    }
  }
  std::sort(bad.begin(), bad.end());
  bad.erase(std::unique(bad.begin(), bad.end()), bad.end());
  return bad;
}

std::size_t LocalResultStore::gc() {
  std::size_t removed = 0;
  for (const std::string& flagged : verify()) {
    std::error_code ec;
    if (flagged.size() > 4 &&
        flagged.compare(flagged.size() - 4, 4, ".tmp") == 0) {
      removed += fs::remove(root_ / "entries" / flagged, ec) ? 1 : 0;
      continue;
    }
    const bool had_entry = fs::remove(entry_path(flagged), ec);
    const bool had_info = fs::remove(info_path(flagged), ec);
    removed += (had_entry || had_info) ? 1 : 0;
  }
  return removed;
}

void LocalResultStore::flush() {
  if (session_.hits == 0 && session_.misses == 0 && session_.stores == 0 &&
      session_.corrupt == 0) {
    return;
  }
  std::array<std::uint64_t, 4> counters = load_counters(root_ / "stats");
  counters[0] += session_.hits;
  counters[1] += session_.misses;
  counters[2] += session_.stores;
  counters[3] += session_.corrupt;
  std::ostringstream out;
  for (std::size_t i = 0; i < 4; ++i) {
    out << kStatsFields[i] << ": " << counters[i] << '\n';
  }
  write_file_atomic(root_ / "stats", out.str());
  session_ = StoreStats{};
}

// ---- RemoteResultStore ---------------------------------------------------

void RemoteResultStore::unimplemented(const char* operation) const {
  throw StoreError(std::string("remote store (") + url_ + "): " + operation +
                   " not implemented yet — use a local --cache-dir "
                   "(the remote tier is the cross-host sharding hook)");
}

std::optional<std::string> RemoteResultStore::fetch(const std::string&) {
  unimplemented("fetch");
}
void RemoteResultStore::put(const std::string&, std::string_view, EntryInfo) {
  unimplemented("put");
}
std::optional<EntryInfo> RemoteResultStore::info(const std::string&) {
  unimplemented("info");
}
std::optional<double> RemoteResultStore::lookup_cost(const std::string&) {
  unimplemented("cost lookup");
}
void RemoteResultStore::record_cost(const std::string&, double) {
  unimplemented("cost record");
}
StoreStats RemoteResultStore::stats() { unimplemented("stats"); }
std::vector<std::string> RemoteResultStore::verify() {
  unimplemented("verify");
}
std::size_t RemoteResultStore::gc() { unimplemented("gc"); }

// ---- factory -------------------------------------------------------------

std::unique_ptr<ResultStore> make_store(const std::string& spec) {
  if (spec.empty() || spec == "none" || spec == "null") {
    return std::make_unique<NullResultStore>();
  }
  if (spec.rfind("http://", 0) == 0 || spec.rfind("https://", 0) == 0 ||
      spec.rfind("s3://", 0) == 0) {
    return std::make_unique<RemoteResultStore>(spec);
  }
  std::string path = spec;
  if (path.rfind("file://", 0) == 0) {
    path = path.substr(7);
    if (path.empty()) {
      throw StoreError("store: empty file:// cache path");
    }
  }
  return std::make_unique<LocalResultStore>(fs::path(path));
}

}  // namespace rexspeed::store
