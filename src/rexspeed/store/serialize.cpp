#include "rexspeed/store/serialize.hpp"

#include <bit>
#include <cstring>

#include "rexspeed/store/hash.hpp"

namespace rexspeed::store {

namespace {

constexpr char kMagic[4] = {'R', 'X', 'S', 'C'};

// Header = magic + version + kind; trailer = u64 checksum.
constexpr std::size_t kHeaderSize = 4 + 4 + 1;
constexpr std::size_t kTrailerSize = 8;

}  // namespace

// ---- ByteWriter ----------------------------------------------------------

void ByteWriter::u8(std::uint8_t value) {
  bytes_.push_back(static_cast<char>(value));
}

void ByteWriter::u32(std::uint32_t value) {
  for (int i = 0; i < 4; ++i) {
    bytes_.push_back(static_cast<char>((value >> (8 * i)) & 0xff));
  }
}

void ByteWriter::u64(std::uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    bytes_.push_back(static_cast<char>((value >> (8 * i)) & 0xff));
  }
}

void ByteWriter::i32(std::int32_t value) {
  u32(static_cast<std::uint32_t>(value));
}

void ByteWriter::f64(double value) {
  u64(std::bit_cast<std::uint64_t>(value));
}

void ByteWriter::boolean(bool value) { u8(value ? 1 : 0); }

void ByteWriter::str(std::string_view value) {
  if (value.size() > 0xffffffffu) {
    throw SerializeError("serialize: string too long");
  }
  u32(static_cast<std::uint32_t>(value.size()));
  bytes_.append(value.data(), value.size());
}

void ByteWriter::raw(const void* data, std::size_t size) {
  bytes_.append(static_cast<const char*>(data), size);
}

// ---- ByteReader ----------------------------------------------------------

void ByteReader::need(std::size_t count) const {
  if (bytes_.size() - offset_ < count) {
    throw SerializeError("deserialize: truncated blob");
  }
}

std::uint8_t ByteReader::u8() {
  need(1);
  return static_cast<std::uint8_t>(bytes_[offset_++]);
}

std::uint32_t ByteReader::u32() {
  need(4);
  std::uint32_t value = 0;
  for (int i = 0; i < 4; ++i) {
    value |= std::uint32_t{static_cast<std::uint8_t>(bytes_[offset_ + i])}
             << (8 * i);
  }
  offset_ += 4;
  return value;
}

std::uint64_t ByteReader::u64() {
  need(8);
  std::uint64_t value = 0;
  for (int i = 0; i < 8; ++i) {
    value |= std::uint64_t{static_cast<std::uint8_t>(bytes_[offset_ + i])}
             << (8 * i);
  }
  offset_ += 8;
  return value;
}

std::int32_t ByteReader::i32() {
  return static_cast<std::int32_t>(u32());
}

double ByteReader::f64() { return std::bit_cast<double>(u64()); }

bool ByteReader::boolean() {
  const std::uint8_t value = u8();
  if (value > 1) {
    throw SerializeError("deserialize: malformed boolean");
  }
  return value == 1;
}

std::string ByteReader::str() {
  const std::uint32_t length = u32();
  need(length);
  std::string value(bytes_.substr(offset_, length));
  offset_ += length;
  return value;
}

void ByteReader::expect_end() const {
  if (offset_ != bytes_.size()) {
    throw SerializeError("deserialize: trailing bytes after payload");
  }
}

// ---- payload serializers -------------------------------------------------

namespace {

void write_pair_solution(ByteWriter& out, const core::PairSolution& pair) {
  out.f64(pair.sigma1);
  out.f64(pair.sigma2);
  out.i32(pair.sigma1_index);
  out.i32(pair.sigma2_index);
  out.boolean(pair.feasible);
  out.boolean(pair.first_order_valid);
  out.f64(pair.rho_min);
  out.f64(pair.w_opt);
  out.f64(pair.w_energy);
  out.f64(pair.w_min);
  out.f64(pair.w_max);
  out.f64(pair.energy_overhead);
  out.f64(pair.time_overhead);
}

core::PairSolution read_pair_solution(ByteReader& in) {
  core::PairSolution pair;
  pair.sigma1 = in.f64();
  pair.sigma2 = in.f64();
  pair.sigma1_index = in.i32();
  pair.sigma2_index = in.i32();
  pair.feasible = in.boolean();
  pair.first_order_valid = in.boolean();
  pair.rho_min = in.f64();
  pair.w_opt = in.f64();
  pair.w_energy = in.f64();
  pair.w_min = in.f64();
  pair.w_max = in.f64();
  pair.energy_overhead = in.f64();
  pair.time_overhead = in.f64();
  return pair;
}

void write_interleaved_solution(ByteWriter& out,
                                const core::InterleavedSolution& solution) {
  out.boolean(solution.feasible);
  out.u32(solution.segments);
  out.f64(solution.sigma1);
  out.f64(solution.sigma2);
  out.f64(solution.w_opt);
  out.f64(solution.energy_overhead);
  out.f64(solution.time_overhead);
}

core::InterleavedSolution read_interleaved_solution(ByteReader& in) {
  core::InterleavedSolution solution;
  solution.feasible = in.boolean();
  solution.segments = in.u32();
  solution.sigma1 = in.f64();
  solution.sigma2 = in.f64();
  solution.w_opt = in.f64();
  solution.energy_overhead = in.f64();
  solution.time_overhead = in.f64();
  return solution;
}

core::SolutionKind read_solution_kind(ByteReader& in) {
  const std::uint8_t tag = in.u8();
  if (tag > 1) {
    throw SerializeError("deserialize: malformed solution kind");
  }
  return tag == 0 ? core::SolutionKind::kPair
                  : core::SolutionKind::kInterleaved;
}

void write_solution(ByteWriter& out, const core::Solution& solution) {
  out.u8(solution.kind == core::SolutionKind::kPair ? 0 : 1);
  write_pair_solution(out, solution.pair);
  write_interleaved_solution(out, solution.interleaved);
  out.boolean(solution.used_fallback);
}

core::Solution read_solution(ByteReader& in) {
  core::Solution solution;
  solution.kind = read_solution_kind(in);
  solution.pair = read_pair_solution(in);
  solution.interleaved = read_interleaved_solution(in);
  solution.used_fallback = in.boolean();
  return solution;
}

void write_panel_series(ByteWriter& out, const sweep::PanelSeries& series) {
  out.u32(static_cast<std::uint32_t>(series.parameter));
  out.str(series.configuration);
  out.f64(series.rho);
  out.u8(series.kind == core::SolutionKind::kPair ? 0 : 1);
  out.u32(series.max_segments);
  if (series.points.size() > 0xffffffffu) {
    throw SerializeError("serialize: panel too large");
  }
  out.u32(static_cast<std::uint32_t>(series.points.size()));
  for (const core::PanelPoint& point : series.points) {
    out.f64(point.x);
    write_solution(out, point.primary);
    write_solution(out, point.baseline);
  }
}

sweep::PanelSeries read_panel_series(ByteReader& in) {
  sweep::PanelSeries series;
  const std::uint32_t axis = in.u32();
  if (axis > static_cast<std::uint32_t>(core::SweepAxis::kSegments)) {
    throw SerializeError("deserialize: malformed sweep axis");
  }
  series.parameter = static_cast<sweep::SweepParameter>(axis);
  series.configuration = in.str();
  series.rho = in.f64();
  const std::uint8_t kind = in.u8();
  if (kind > 1) {
    throw SerializeError("deserialize: malformed panel kind");
  }
  series.kind = kind == 0 ? core::SolutionKind::kPair
                          : core::SolutionKind::kInterleaved;
  series.max_segments = in.u32();
  const std::uint32_t count = in.u32();
  // Each point is at least x + two solutions; a cheap lower bound on the
  // bytes still owed rejects absurd counts before any allocation.
  if (static_cast<std::uint64_t>(count) * 8 > in.remaining()) {
    throw SerializeError("deserialize: malformed point count");
  }
  series.points.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    core::PanelPoint point;
    point.x = in.f64();
    point.primary = read_solution(in);
    point.baseline = read_solution(in);
    series.points.push_back(point);
  }
  return series;
}

std::string finish_blob(ByteWriter&& out) {
  std::string bytes = out.take();
  const std::uint64_t checksum = fnv1a64(bytes.data(), bytes.size());
  ByteWriter trailer;
  trailer.u64(checksum);
  bytes += trailer.take();
  return bytes;
}

/// Validates magic/version/checksum and returns a reader positioned at the
/// payload (after the kind byte), plus the kind it found.
PayloadKind check_envelope(std::string_view bytes, ByteReader& payload) {
  if (bytes.size() < kHeaderSize + kTrailerSize) {
    throw SerializeError("deserialize: blob shorter than header");
  }
  if (std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    throw SerializeError("deserialize: bad magic (not a rexspeed blob)");
  }
  const std::string_view body = bytes.substr(0, bytes.size() - kTrailerSize);
  ByteReader trailer(bytes.substr(bytes.size() - kTrailerSize));
  const std::uint64_t stored = trailer.u64();
  const std::uint64_t actual = fnv1a64(body.data(), body.size());
  if (stored != actual) {
    throw SerializeError("deserialize: checksum mismatch (corrupt blob)");
  }
  ByteReader header(body.substr(sizeof(kMagic)));
  const std::uint32_t version = header.u32();
  if (version != kFormatVersion) {
    throw SerializeError("deserialize: unsupported format version " +
                         std::to_string(version));
  }
  const std::uint8_t kind = header.u8();
  if (kind > 1) {
    throw SerializeError("deserialize: malformed payload kind");
  }
  payload = ByteReader(body.substr(kHeaderSize));
  return static_cast<PayloadKind>(kind);
}

}  // namespace

std::string serialize_solution(const core::Solution& solution) {
  ByteWriter out;
  out.raw(kMagic, sizeof(kMagic));
  out.u32(kFormatVersion);
  out.u8(static_cast<std::uint8_t>(PayloadKind::kSolution));
  write_solution(out, solution);
  return finish_blob(std::move(out));
}

core::Solution deserialize_solution(std::string_view bytes) {
  ByteReader payload("");
  if (check_envelope(bytes, payload) != PayloadKind::kSolution) {
    throw SerializeError("deserialize: expected a Solution blob");
  }
  core::Solution solution = read_solution(payload);
  payload.expect_end();
  return solution;
}

std::string serialize_panel_series(const sweep::PanelSeries& series) {
  ByteWriter out;
  out.raw(kMagic, sizeof(kMagic));
  out.u32(kFormatVersion);
  out.u8(static_cast<std::uint8_t>(PayloadKind::kPanelSeries));
  write_panel_series(out, series);
  return finish_blob(std::move(out));
}

sweep::PanelSeries deserialize_panel_series(std::string_view bytes) {
  ByteReader payload("");
  if (check_envelope(bytes, payload) != PayloadKind::kPanelSeries) {
    throw SerializeError("deserialize: expected a PanelSeries blob");
  }
  sweep::PanelSeries series = read_panel_series(payload);
  payload.expect_end();
  return series;
}

PayloadKind payload_kind(std::string_view bytes) {
  ByteReader payload("");
  return check_envelope(bytes, payload);
}

}  // namespace rexspeed::store
