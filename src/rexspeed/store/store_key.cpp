#include "rexspeed/store/store_key.hpp"

#include "rexspeed/store/hash.hpp"
#include "rexspeed/store/serialize.hpp"

namespace rexspeed::store {

namespace {

void write_params(ByteWriter& out, const core::ModelParams& params) {
  out.f64(params.lambda_silent);
  out.f64(params.lambda_failstop);
  out.f64(params.checkpoint_s);
  out.f64(params.recovery_s);
  out.f64(params.verification_s);
  out.f64(params.kappa_mw);
  out.f64(params.idle_power_mw);
  out.f64(params.io_power_mw);
  out.u32(static_cast<std::uint32_t>(params.speeds.size()));
  for (const double speed : params.speeds) {
    out.f64(speed);
  }
}

/// The backend identity section shared by every key: mode name, version
/// tag, model parameters, and the segment configuration (a pinned count
/// and a search cap over the same limit solve differently, so both go
/// in). The pinned count lives only on the interleaved backend — every
/// other backend contributes 0.
void write_backend(ByteWriter& out, const core::SolverBackend& backend) {
  out.str(backend.name());
  out.str(backend.capabilities().version);
  write_params(out, backend.params());
  const auto* interleaved =
      dynamic_cast<const core::InterleavedBackend*>(&backend);
  out.u32(interleaved != nullptr ? interleaved->fixed_segments() : 0);
  out.u32(backend.capabilities().max_segments);
}

}  // namespace

std::string panel_key(const core::SolverBackend& backend,
                      const std::string& configuration,
                      sweep::SweepParameter axis,
                      const std::vector<double>& grid,
                      const sweep::SweepOptions& options, double recall) {
  ByteWriter out;
  out.str("rexspeed-panel-v1");
  write_backend(out, backend);
  out.str(configuration);
  out.u32(static_cast<std::uint32_t>(axis));
  out.f64(options.rho);
  out.boolean(options.min_rho_fallback);
  out.boolean(options.warm_start_chain);
  out.f64(recall);
  out.u32(static_cast<std::uint32_t>(grid.size()));
  for (const double value : grid) {
    out.f64(value);
  }
  return to_hex(Sha256::of(out.bytes()));
}

std::string solve_key(const core::SolverBackend& backend, double rho,
                      core::SpeedPolicy policy, bool min_rho_fallback,
                      double recall) {
  ByteWriter out;
  out.str("rexspeed-solve-v1");
  write_backend(out, backend);
  out.f64(rho);
  out.u8(policy == core::SpeedPolicy::kTwoSpeed ? 0 : 1);
  out.boolean(min_rho_fallback);
  out.f64(recall);
  return to_hex(Sha256::of(out.bytes()));
}

std::string cost_key(const core::SolverBackend& backend,
                     sweep::SweepParameter axis) {
  ByteWriter out;
  out.str("rexspeed-cost-v1");
  write_backend(out, backend);
  out.u32(static_cast<std::uint32_t>(axis));
  return to_hex(fnv1a64(out.bytes()));
}

}  // namespace rexspeed::store
