#pragma once

#include <string>
#include <vector>

#include "rexspeed/core/solver_backend.hpp"
#include "rexspeed/sweep/figure_sweeps.hpp"

namespace rexspeed::store {

/// Content-address derivation: a solve result is a deterministic function
/// of (model parameters, backend identity + version tag, solve/panel
/// configuration), so its key is the SHA-256 hex of a canonical
/// little-endian serialization of exactly those inputs — doubles as bit
/// patterns, strings length-prefixed, one layout-version tag leading the
/// stream. Anything that cannot change the output bits (batch mode,
/// thread count, scheduling) is deliberately NOT hashed: the bit-identity
/// contracts make those keys collide on purpose, so a batched campaign
/// hits a pointwise sweep's entries and vice versa. Bumping a backend's
/// capabilities().version invalidates its entries wholesale.
///
/// `recall` is the scenario's verification_recall: the recall backend's
/// params() reports the unscaled bundle, so the recall value must reach
/// the key explicitly (1.0 for every full-recall mode).

/// Key of one panel sweep: the backend (name, version, params, segment
/// configuration), the recorded configuration label, the swept axis, the
/// panel bound and fallback/chain options, and the exact grid.
[[nodiscard]] std::string panel_key(const core::SolverBackend& backend,
                                    const std::string& configuration,
                                    sweep::SweepParameter axis,
                                    const std::vector<double>& grid,
                                    const sweep::SweepOptions& options,
                                    double recall = 1.0);

/// Key of one standalone solve at bound `rho` under `policy`.
[[nodiscard]] std::string solve_key(const core::SolverBackend& backend,
                                    double rho, core::SpeedPolicy policy,
                                    bool min_rho_fallback,
                                    double recall = 1.0);

/// Coarse cost-table key — one measured seconds-per-point figure per
/// (model params, backend name + version, axis, segment cap). 16-hex
/// FNV-1a: the cost table seeds the campaign's longest-first ordering, so
/// it wants aggregation across grids and bounds, not exact addressing.
[[nodiscard]] std::string cost_key(const core::SolverBackend& backend,
                                   sweep::SweepParameter axis);

}  // namespace rexspeed::store
