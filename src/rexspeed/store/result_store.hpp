#pragma once

#include <cstdint>
#include <filesystem>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace rexspeed::store {

/// Thrown on store-level failures the caller must hear about: an
/// unwritable cache directory, a malformed store spec, an unimplemented
/// tier. Entry-level corruption is NOT a StoreError — fetch() reports it
/// as a miss (counted in StoreStats::corrupt) so solvers transparently
/// recompute.
class StoreError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// The narinfo-style sidecar persisted next to every entry: key
/// provenance (what produced the bytes, human-readable) plus the measured
/// panel cost. `rexspeed cache stats` aggregates these; the campaign
/// scheduler seeds its longest-first ordering from the cost table (see
/// record_cost — the sidecar carries the figure for provenance, the
/// coarser-keyed cost table serves lookups, which by construction happen
/// on entries that do not exist yet).
struct EntryInfo {
  std::string key;             ///< the entry's content-address (hex)
  std::string kind;            ///< "panel" | "solution"
  std::string scenario;        ///< producing scenario name ("" = ad hoc)
  std::string configuration;   ///< "Platform/Processor" label
  std::string backend;         ///< backend mode name
  std::string backend_version; ///< capabilities().version at store time
  std::string axis;            ///< swept axis name ("-" for solutions)
  std::uint64_t points = 0;    ///< grid points (1 for solutions)
  std::uint64_t data_size = 0; ///< payload bytes
  std::string data_hash;       ///< "fnv1a64:<16 hex>" of the payload
  double cost_seconds_per_point = 0.0;  ///< measured (0 = not measured)
};

/// Session + on-disk counters. hits/misses/stores/corrupt accumulate
/// across every process that touched the store (the local tier persists
/// them on flush); entries/bytes are the current on-disk footprint.
struct StoreStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t stores = 0;
  std::uint64_t corrupt = 0;
  std::uint64_t entries = 0;
  std::uint64_t bytes = 0;
};

/// One result-cache tier. Keys are content addresses (store_key.hpp);
/// values are serialized blobs (serialize.hpp). Implementations verify on
/// fetch: a returned blob has already passed the checksum, and anything
/// that fails it is reported as a miss with the corrupt counter bumped —
/// the caller's only obligation is to recompute (and re-put, which heals
/// the entry).
class ResultStore {
 public:
  virtual ~ResultStore() = default;

  [[nodiscard]] virtual const char* tier_name() const noexcept = 0;

  /// Verified blob bytes, or nullopt on miss/corruption.
  [[nodiscard]] virtual std::optional<std::string> fetch(
      const std::string& key) = 0;

  /// Persists a blob + its sidecar (overwrites — healing a corrupt entry
  /// is a plain re-put). info.key/data_size/data_hash are filled in by
  /// the store; callers provide provenance and cost.
  virtual void put(const std::string& key, std::string_view blob,
                   EntryInfo info) = 0;

  /// Sidecar lookup without touching the payload.
  [[nodiscard]] virtual std::optional<EntryInfo> info(
      const std::string& key) = 0;

  /// Measured-cost table: seconds per grid point under a coarse
  /// (params, backend, axis) key — store_key.hpp's cost_key. Persisted
  /// across runs; seeds the campaign's longest-first ordering before any
  /// probe runs.
  [[nodiscard]] virtual std::optional<double> lookup_cost(
      const std::string& cost_key) = 0;
  virtual void record_cost(const std::string& cost_key,
                           double seconds_per_point) = 0;

  /// Counters (persisted + this session) and the on-disk footprint.
  [[nodiscard]] virtual StoreStats stats() = 0;

  /// Checksums every entry; returns the keys that fail (corrupt payload,
  /// bad header, sidecar/payload hash mismatch, orphan sidecar).
  [[nodiscard]] virtual std::vector<std::string> verify() = 0;

  /// Removes everything verify() flags; returns the removed count.
  virtual std::size_t gc() = 0;

  /// Persists the session counters (local tier); called by the
  /// destructor, idempotent.
  virtual void flush() {}
};

/// The no-op tier: every fetch misses, every put vanishes. Lets all call
/// sites wire the store unconditionally — no cache configured means a
/// NullResultStore, not a null pointer.
class NullResultStore final : public ResultStore {
 public:
  [[nodiscard]] const char* tier_name() const noexcept override {
    return "null";
  }
  [[nodiscard]] std::optional<std::string> fetch(const std::string&) override {
    ++stats_.misses;
    return std::nullopt;
  }
  void put(const std::string&, std::string_view, EntryInfo) override {}
  [[nodiscard]] std::optional<EntryInfo> info(const std::string&) override {
    return std::nullopt;
  }
  [[nodiscard]] std::optional<double> lookup_cost(
      const std::string&) override {
    return std::nullopt;
  }
  void record_cost(const std::string&, double) override {}
  [[nodiscard]] StoreStats stats() override { return stats_; }
  [[nodiscard]] std::vector<std::string> verify() override { return {}; }
  std::size_t gc() override { return 0; }

 private:
  StoreStats stats_;
};

/// The local on-disk tier. Layout under the cache directory:
///   entries/<key>.bin    one serialized blob per entry
///   entries/<key>.info   narinfo-style sidecar ("Field: value" lines)
///   costs/<hex16>.cost   measured seconds-per-point, one per cost key
///   stats                cumulative hit/miss/store/corrupt counters
/// Writes are atomic (temp file + rename) so a killed run never leaves a
/// half-written entry behind; fetch verifies the blob checksum and the
/// sidecar's payload hash before returning bytes.
class LocalResultStore final : public ResultStore {
 public:
  /// Creates the directory tree; throws StoreError when that fails.
  explicit LocalResultStore(std::filesystem::path root);
  ~LocalResultStore() override;

  LocalResultStore(const LocalResultStore&) = delete;
  LocalResultStore& operator=(const LocalResultStore&) = delete;

  [[nodiscard]] const char* tier_name() const noexcept override {
    return "local";
  }
  [[nodiscard]] std::optional<std::string> fetch(
      const std::string& key) override;
  void put(const std::string& key, std::string_view blob,
           EntryInfo info) override;
  [[nodiscard]] std::optional<EntryInfo> info(const std::string& key) override;
  [[nodiscard]] std::optional<double> lookup_cost(
      const std::string& cost_key) override;
  void record_cost(const std::string& cost_key,
                   double seconds_per_point) override;
  [[nodiscard]] StoreStats stats() override;
  [[nodiscard]] std::vector<std::string> verify() override;
  std::size_t gc() override;
  void flush() override;

  [[nodiscard]] const std::filesystem::path& root() const noexcept {
    return root_;
  }

 private:
  std::filesystem::path entry_path(const std::string& key) const;
  std::filesystem::path info_path(const std::string& key) const;

  std::filesystem::path root_;
  StoreStats session_;  ///< this process's counters, merged on flush()
};

/// The remote tier: registered so `--cache-dir=https://...` resolves and
/// fails with a clear "not implemented" instead of an unknown-spec error
/// — the cross-host half of the sharding roadmap item plugs in here.
/// Construction succeeds (the spec is valid); fetch/put throw StoreError.
class RemoteResultStore final : public ResultStore {
 public:
  explicit RemoteResultStore(std::string url) : url_(std::move(url)) {}

  [[nodiscard]] const char* tier_name() const noexcept override {
    return "remote";
  }
  [[nodiscard]] std::optional<std::string> fetch(
      const std::string& key) override;
  void put(const std::string& key, std::string_view blob,
           EntryInfo info) override;
  [[nodiscard]] std::optional<EntryInfo> info(const std::string& key) override;
  [[nodiscard]] std::optional<double> lookup_cost(
      const std::string& cost_key) override;
  void record_cost(const std::string& cost_key,
                   double seconds_per_point) override;
  [[nodiscard]] StoreStats stats() override;
  [[nodiscard]] std::vector<std::string> verify() override;
  std::size_t gc() override;

  [[nodiscard]] const std::string& url() const noexcept { return url_; }

 private:
  [[noreturn]] void unimplemented(const char* operation) const;

  std::string url_;
};

/// Store factory over the `--cache-dir=` / `cache=` vocabulary:
///   "", "none", "null"          → NullResultStore
///   "http://…", "https://…",
///   "s3://…"                    → RemoteResultStore (stub)
///   anything else, "file://…"   → LocalResultStore at that path
[[nodiscard]] std::unique_ptr<ResultStore> make_store(const std::string& spec);

/// Renders a sidecar / parses one back ("Field: value" lines, unknown
/// fields ignored for forward compatibility). parse throws StoreError on
/// a structurally unusable sidecar (no key line).
[[nodiscard]] std::string format_entry_info(const EntryInfo& info);
[[nodiscard]] EntryInfo parse_entry_info(const std::string& text);

}  // namespace rexspeed::store
