#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace rexspeed::store {

/// 64-bit FNV-1a over a byte range — the store's cheap integrity and
/// cost-table hash. Stable across platforms (pure integer arithmetic,
/// byte-oriented), not cryptographic: entry checksums detect corruption,
/// not adversaries.
[[nodiscard]] std::uint64_t fnv1a64(const void* data,
                                    std::size_t size) noexcept;
[[nodiscard]] std::uint64_t fnv1a64(std::string_view bytes) noexcept;

/// Incremental SHA-256 (FIPS 180-4), dependency-free — the store's
/// content-address hash. Keys are the hex digest of a canonical
/// serialization of everything a solve depends on, so equal inputs
/// collide on purpose and nothing else does in practice.
class Sha256 {
 public:
  using Digest = std::array<std::uint8_t, 32>;

  Sha256();

  void update(const void* data, std::size_t size) noexcept;
  void update(std::string_view bytes) noexcept;

  /// Finishes the hash (the object must not be updated afterwards).
  [[nodiscard]] Digest finish() noexcept;

  /// One-shot convenience.
  [[nodiscard]] static Digest of(std::string_view bytes) noexcept;

 private:
  void process_block(const std::uint8_t* block) noexcept;

  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, 64> buffer_;
  std::size_t buffered_ = 0;
  std::uint64_t total_bytes_ = 0;
};

/// Lower-case hex of a digest (64 characters for SHA-256).
[[nodiscard]] std::string to_hex(const Sha256::Digest& digest);

/// Lower-case 16-character hex of a 64-bit hash.
[[nodiscard]] std::string to_hex(std::uint64_t value);

}  // namespace rexspeed::store
