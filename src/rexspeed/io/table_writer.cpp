#include "rexspeed/io/table_writer.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace rexspeed::io {

TableWriter::TableWriter(Row header) : header_(std::move(header)) {
  if (header_.empty()) {
    throw std::invalid_argument("TableWriter: header must not be empty");
  }
}

void TableWriter::add_row(Row row) {
  if (row.size() != header_.size()) {
    throw std::invalid_argument("TableWriter: row width mismatch");
  }
  rows_.push_back(std::move(row));
}

std::string TableWriter::cell(double value, int precision) {
  if (std::isnan(value)) return "-";
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.*f", precision, value);
  std::string text = buffer;
  if (text.find('.') != std::string::npos) {
    while (!text.empty() && text.back() == '0') text.pop_back();
    if (!text.empty() && text.back() == '.') text.pop_back();
  }
  return text;
}

void TableWriter::write(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const Row& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  const auto emit_row = [&](const Row& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : "  ");
      os << row[c];
      for (std::size_t pad = row[c].size(); pad < widths[c]; ++pad) os << ' ';
    }
    os << '\n';
  };
  emit_row(header_);
  Row underline(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    underline[c] = std::string(widths[c], '-');
  }
  emit_row(underline);
  for (const Row& row : rows_) emit_row(row);
}

std::string TableWriter::str() const {
  std::ostringstream os;
  write(os);
  return os.str();
}

}  // namespace rexspeed::io
