#pragma once

#include <iosfwd>
#include <optional>
#include <string>

#include "rexspeed/sweep/figure_sweeps.hpp"
#include "rexspeed/sweep/interleaved_sweeps.hpp"
#include "rexspeed/sweep/panel_sweep.hpp"
#include "rexspeed/sweep/series.hpp"

namespace rexspeed::io {

/// Writes a sweep::Series as a gnuplot-friendly whitespace-separated data
/// block: a commented header line (`# x col1 col2 ...`) followed by one
/// row per grid point. Infinite/NaN cells are emitted as "?" (gnuplot's
/// missing-data marker) so infeasible sweep points leave gaps in the
/// curves, exactly as the paper's figures do.
void write_gnuplot_dat(std::ostream& os, const sweep::Series& series);

/// Companion helper: a minimal gnuplot script plotting every column of
/// `dat_filename` against its first column (logscale x when requested).
/// The benches emit these next to the .dat files so the paper's figures
/// can be regenerated with a stock gnuplot.
void write_gnuplot_script(std::ostream& os, const sweep::Series& series,
                          const std::string& dat_filename,
                          bool logscale_x = false);

/// "<config>_<param>" with "/" flattened to "_" — the file stem shared by
/// every figure export (gnuplot and CSV), so one panel's artifacts sit
/// next to each other.
[[nodiscard]] std::string figure_file_stem(const sweep::FigureSeries& series);

/// Interleaved-panel stem: "<config>_interleaved_<param>", so segmented
/// panels never collide with the regular panel of the same axis.
[[nodiscard]] std::string figure_file_stem(
    const sweep::InterleavedSeries& series);

/// Generic-panel stem, dispatching on the panel's solution kind so every
/// historical stem (and therefore every golden fixture) is preserved.
[[nodiscard]] std::string figure_file_stem(const sweep::PanelSeries& series);

/// Exports a figure panel as <out_dir>/<config>_<param>.dat plus a
/// matching .gp script ("/" in the configuration name becomes "_"), so
/// the paper's plots can be regenerated with a stock gnuplot. Returns the
/// file stem on success, nullopt when out_dir is not writable. Shared by
/// the CLI and the figure benches.
std::optional<std::string> export_gnuplot_figure(
    const sweep::FigureSeries& series, const std::string& out_dir);

/// Same for an interleaved panel.
std::optional<std::string> export_gnuplot_figure(
    const sweep::InterleavedSeries& series, const std::string& out_dir);

/// Same for a generic backend panel (kind-dispatched: byte-identical to
/// the typed overloads).
std::optional<std::string> export_gnuplot_figure(
    const sweep::PanelSeries& series, const std::string& out_dir);

}  // namespace rexspeed::io
