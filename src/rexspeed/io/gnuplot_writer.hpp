#pragma once

#include <iosfwd>
#include <string>

#include "rexspeed/sweep/series.hpp"

namespace rexspeed::io {

/// Writes a sweep::Series as a gnuplot-friendly whitespace-separated data
/// block: a commented header line (`# x col1 col2 ...`) followed by one
/// row per grid point. Infinite/NaN cells are emitted as "?" (gnuplot's
/// missing-data marker) so infeasible sweep points leave gaps in the
/// curves, exactly as the paper's figures do.
void write_gnuplot_dat(std::ostream& os, const sweep::Series& series);

/// Companion helper: a minimal gnuplot script plotting every column of
/// `dat_filename` against its first column (logscale x when requested).
/// The benches emit these next to the .dat files so the paper's figures
/// can be regenerated with a stock gnuplot.
void write_gnuplot_script(std::ostream& os, const sweep::Series& series,
                          const std::string& dat_filename,
                          bool logscale_x = false);

}  // namespace rexspeed::io
