#include "rexspeed/io/gnuplot_writer.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <ostream>

namespace rexspeed::io {

namespace {

void emit_value(std::ostream& os, double value) {
  if (!std::isfinite(value)) {
    os << '?';
    return;
  }
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.10g", value);
  os << buffer;
}

}  // namespace

void write_gnuplot_dat(std::ostream& os, const sweep::Series& series) {
  os << "# " << series.x_name();
  for (const auto& name : series.column_names()) os << ' ' << name;
  os << '\n';
  for (std::size_t row = 0; row < series.size(); ++row) {
    emit_value(os, series.x()[row]);
    for (std::size_t col = 0; col < series.column_names().size(); ++col) {
      os << ' ';
      emit_value(os, series.column(col)[row]);
    }
    os << '\n';
  }
}

void write_gnuplot_script(std::ostream& os, const sweep::Series& series,
                          const std::string& dat_filename,
                          bool logscale_x) {
  os << "set xlabel '" << series.x_name() << "'\n";
  if (logscale_x) os << "set logscale x\n";
  os << "set key outside\n";
  os << "set datafile missing '?'\n";
  os << "plot";
  for (std::size_t col = 0; col < series.column_names().size(); ++col) {
    if (col != 0) os << ',';
    os << " '" << dat_filename << "' using 1:" << col + 2
       << " with linespoints title '" << series.column_names()[col] << "'";
  }
  os << '\n';
}

namespace {

std::string flatten_configuration(const std::string& configuration) {
  std::string stem = configuration;
  for (auto& ch : stem) {
    if (ch == '/') ch = '_';
  }
  return stem;
}

}  // namespace

std::string figure_file_stem(const sweep::FigureSeries& series) {
  return flatten_configuration(series.configuration) + "_" +
         sweep::to_string(series.parameter);
}

std::string figure_file_stem(const sweep::InterleavedSeries& series) {
  return flatten_configuration(series.configuration) + "_interleaved_" +
         sweep::to_string(series.parameter);
}

namespace {

std::optional<std::string> export_gnuplot_files(const std::string& stem,
                                                const sweep::Series& flat,
                                                const std::string& out_dir,
                                                bool logscale_x) {
  std::ofstream dat(out_dir + "/" + stem + ".dat");
  write_gnuplot_dat(dat, flat);
  std::ofstream script(out_dir + "/" + stem + ".gp");
  write_gnuplot_script(script, flat, stem + ".dat", logscale_x);
  dat.flush();  // surface late write errors (e.g. disk full) in the check
  script.flush();
  if (!dat || !script) return std::nullopt;
  return stem;
}

}  // namespace

std::optional<std::string> export_gnuplot_figure(
    const sweep::FigureSeries& series, const std::string& out_dir) {
  return export_gnuplot_files(
      figure_file_stem(series), to_series(series), out_dir,
      series.parameter == sweep::SweepParameter::kErrorRate);
}

std::optional<std::string> export_gnuplot_figure(
    const sweep::InterleavedSeries& series, const std::string& out_dir) {
  return export_gnuplot_files(figure_file_stem(series), to_series(series),
                              out_dir, /*logscale_x=*/false);
}

std::string figure_file_stem(const sweep::PanelSeries& series) {
  return series.kind == core::SolutionKind::kPair
             ? figure_file_stem(sweep::to_figure_series(series))
             : figure_file_stem(sweep::to_interleaved_series(series));
}

std::optional<std::string> export_gnuplot_figure(
    const sweep::PanelSeries& series, const std::string& out_dir) {
  return series.kind == core::SolutionKind::kPair
             ? export_gnuplot_figure(sweep::to_figure_series(series),
                                     out_dir)
             : export_gnuplot_figure(sweep::to_interleaved_series(series),
                                     out_dir);
}

}  // namespace rexspeed::io
