#include "rexspeed/io/cli.hpp"

#include <algorithm>
#include <stdexcept>
#include <string_view>

namespace rexspeed::io {

ArgParser::ArgParser(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      const std::string_view body = arg.substr(2);
      const std::size_t eq = body.find('=');
      if (eq == std::string_view::npos) {
        options_.emplace(std::string(body), "");
      } else {
        options_.emplace(std::string(body.substr(0, eq)),
                         std::string(body.substr(eq + 1)));
      }
    } else {
      positionals_.emplace_back(arg);
    }
  }
}

bool ArgParser::has_flag(const std::string& name) const {
  return options_.contains(name);
}

std::optional<std::string> ArgParser::get(const std::string& name) const {
  const auto it = options_.find(name);
  if (it == options_.end()) return std::nullopt;
  return it->second;
}

std::string ArgParser::get_or(const std::string& name,
                              std::string fallback) const {
  const auto value = get(name);
  return value.has_value() ? *value : std::move(fallback);
}

double ArgParser::get_double_or(const std::string& name,
                                double fallback) const {
  const auto value = get(name);
  if (!value.has_value() || value->empty()) return fallback;
  try {
    return std::stod(*value);
  } catch (const std::exception&) {
    throw std::invalid_argument("--" + name + ": expected a number, got '" +
                                *value + "'");
  }
}

std::vector<std::string> ArgParser::option_names() const {
  std::vector<std::string> names;
  names.reserve(options_.size());
  for (const auto& [name, value] : options_) names.push_back(name);
  std::sort(names.begin(), names.end());
  return names;
}

long ArgParser::get_long_or(const std::string& name, long fallback) const {
  const auto value = get(name);
  if (!value.has_value() || value->empty()) return fallback;
  try {
    return std::stol(*value);
  } catch (const std::exception&) {
    throw std::invalid_argument("--" + name + ": expected an integer, got '" +
                                *value + "'");
  }
}

}  // namespace rexspeed::io
