#pragma once

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace rexspeed::io {

/// Tiny `--key=value` / `--flag` argument parser for the examples.
/// Unknown arguments are collected as positionals; no abbreviations.
class ArgParser {
 public:
  ArgParser(int argc, const char* const* argv);

  [[nodiscard]] bool has_flag(const std::string& name) const;
  [[nodiscard]] std::optional<std::string> get(const std::string& name) const;
  [[nodiscard]] std::string get_or(const std::string& name,
                                   std::string fallback) const;
  [[nodiscard]] double get_double_or(const std::string& name,
                                     double fallback) const;
  [[nodiscard]] long get_long_or(const std::string& name,
                                 long fallback) const;
  [[nodiscard]] const std::vector<std::string>& positionals() const noexcept {
    return positionals_;
  }
  /// Every `--name[=value]` option seen, sorted — for allowlist-style
  /// unknown-flag rejection (a typoed flag must fail the run, not be
  /// silently ignored while the default value is used).
  [[nodiscard]] std::vector<std::string> option_names() const;

 private:
  std::unordered_map<std::string, std::string> options_;
  std::vector<std::string> positionals_;
};

}  // namespace rexspeed::io
