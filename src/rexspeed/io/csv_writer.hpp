#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

namespace rexspeed::sweep {
class Series;
struct FigureSeries;
struct InterleavedSeries;
struct PanelSeries;
}  // namespace rexspeed::sweep

namespace rexspeed::io {

/// Minimal RFC-4180-style CSV writer (quotes cells containing commas,
/// quotes or newlines; doubles embedded quotes). Used to dump figure data
/// for external plotting.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& os) : os_(os) {}

  void write_row(const std::vector<std::string>& cells);
  void write_row(const std::vector<double>& values);

  [[nodiscard]] static std::string escape(const std::string& cell);

 private:
  std::ostream& os_;
};

/// Writes a flattened figure panel (see sweep::to_series) as a CSV table:
/// a header row (x name + column names) then one row per grid point.
void write_csv_series(std::ostream& os, const sweep::Series& series);

/// Exports a figure panel as <out_dir>/<config>_<param>.csv (same stem as
/// the gnuplot export, see io::figure_file_stem). Returns the stem on
/// success, nullopt when out_dir is not writable.
std::optional<std::string> export_csv_figure(
    const sweep::FigureSeries& series, const std::string& out_dir);

/// Same for an interleaved panel (stem <config>_interleaved_<param>).
std::optional<std::string> export_csv_figure(
    const sweep::InterleavedSeries& series, const std::string& out_dir);

/// Same for a generic backend panel (kind-dispatched: byte-identical to
/// the typed overloads).
std::optional<std::string> export_csv_figure(
    const sweep::PanelSeries& series, const std::string& out_dir);

}  // namespace rexspeed::io
