#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace rexspeed::io {

/// Minimal RFC-4180-style CSV writer (quotes cells containing commas,
/// quotes or newlines; doubles embedded quotes). Used to dump figure data
/// for external plotting.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& os) : os_(os) {}

  void write_row(const std::vector<std::string>& cells);
  void write_row(const std::vector<double>& values);

  [[nodiscard]] static std::string escape(const std::string& cell);

 private:
  std::ostream& os_;
};

}  // namespace rexspeed::io
