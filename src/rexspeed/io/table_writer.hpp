#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace rexspeed::io {

/// Cell of an ASCII table; stored pre-formatted.
using Row = std::vector<std::string>;

/// Aligned plain-text table writer used by the benches to print the
/// paper-style tables (§4.2) and figure data. Columns are sized to their
/// widest cell; headers are underlined.
class TableWriter {
 public:
  explicit TableWriter(Row header);

  void add_row(Row row);

  /// Convenience: formats a double with `precision` significant decimals,
  /// trimming trailing zeros; "-" for NaN (the paper's infeasible marker).
  [[nodiscard]] static std::string cell(double value, int precision = 3);

  /// Renders the table to a stream.
  void write(std::ostream& os) const;

  /// Renders to a string.
  [[nodiscard]] std::string str() const;

 private:
  Row header_;
  std::vector<Row> rows_;
};

}  // namespace rexspeed::io
