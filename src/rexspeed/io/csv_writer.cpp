#include "rexspeed/io/csv_writer.hpp"

#include <cstdio>
#include <fstream>
#include <ostream>

#include "rexspeed/io/gnuplot_writer.hpp"
#include "rexspeed/sweep/figure_sweeps.hpp"
#include "rexspeed/sweep/interleaved_sweeps.hpp"
#include "rexspeed/sweep/panel_sweep.hpp"

namespace rexspeed::io {

std::string CsvWriter::escape(const std::string& cell) {
  const bool needs_quotes =
      cell.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return cell;
  std::string escaped = "\"";
  for (const char ch : cell) {
    if (ch == '"') escaped += '"';
    escaped += ch;
  }
  escaped += '"';
  return escaped;
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i != 0) os_ << ',';
    os_ << escape(cells[i]);
  }
  os_ << '\n';
}

void CsvWriter::write_row(const std::vector<double>& values) {
  char buffer[64];
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i != 0) os_ << ',';
    std::snprintf(buffer, sizeof buffer, "%.10g", values[i]);
    os_ << buffer;
  }
  os_ << '\n';
}

void write_csv_series(std::ostream& os, const sweep::Series& series) {
  CsvWriter csv(os);
  std::vector<std::string> header{series.x_name()};
  header.insert(header.end(), series.column_names().begin(),
                series.column_names().end());
  csv.write_row(header);
  std::vector<double> row(series.column_names().size() + 1);
  for (std::size_t i = 0; i < series.size(); ++i) {
    row[0] = series.x()[i];
    for (std::size_t c = 0; c < series.column_names().size(); ++c) {
      row[c + 1] = series.column(c)[i];
    }
    csv.write_row(row);
  }
}

namespace {

std::optional<std::string> export_csv(const std::string& stem,
                                      const sweep::Series& flat,
                                      const std::string& out_dir) {
  std::ofstream out(out_dir + "/" + stem + ".csv");
  write_csv_series(out, flat);
  out.flush();  // surface late write errors (e.g. disk full) in the check
  if (!out) return std::nullopt;
  return stem;
}

}  // namespace

std::optional<std::string> export_csv_figure(
    const sweep::FigureSeries& series, const std::string& out_dir) {
  return export_csv(figure_file_stem(series), to_series(series), out_dir);
}

std::optional<std::string> export_csv_figure(
    const sweep::InterleavedSeries& series, const std::string& out_dir) {
  return export_csv(figure_file_stem(series), to_series(series), out_dir);
}

std::optional<std::string> export_csv_figure(
    const sweep::PanelSeries& series, const std::string& out_dir) {
  return series.kind == core::SolutionKind::kPair
             ? export_csv_figure(sweep::to_figure_series(series), out_dir)
             : export_csv_figure(sweep::to_interleaved_series(series),
                                 out_dir);
}

}  // namespace rexspeed::io
