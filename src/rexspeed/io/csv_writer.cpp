#include "rexspeed/io/csv_writer.hpp"

#include <cstdio>
#include <ostream>

namespace rexspeed::io {

std::string CsvWriter::escape(const std::string& cell) {
  const bool needs_quotes =
      cell.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return cell;
  std::string escaped = "\"";
  for (const char ch : cell) {
    if (ch == '"') escaped += '"';
    escaped += ch;
  }
  escaped += '"';
  return escaped;
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i != 0) os_ << ',';
    os_ << escape(cells[i]);
  }
  os_ << '\n';
}

void CsvWriter::write_row(const std::vector<double>& values) {
  char buffer[64];
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i != 0) os_ << ',';
    std::snprintf(buffer, sizeof buffer, "%.10g", values[i]);
    os_ << buffer;
  }
  os_ << '\n';
}

}  // namespace rexspeed::io
