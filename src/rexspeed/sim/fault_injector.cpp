#include "rexspeed/sim/fault_injector.hpp"

#include <limits>
#include <stdexcept>

namespace rexspeed::sim {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

FaultInjector::FaultInjector(const core::ModelParams& params)
    : silent_(ArrivalSampler::exponential(params.lambda_silent)),
      failstop_(ArrivalSampler::exponential(params.lambda_failstop)) {}

FaultInjector::FaultInjector(ArrivalSampler silent, ArrivalSampler failstop)
    : silent_(silent), failstop_(failstop) {}

AttemptFaults FaultInjector::sample_attempt(double compute_s, double verify_s,
                                            Xoshiro256& rng) const {
  if (compute_s < 0.0 || verify_s < 0.0) {
    throw std::invalid_argument(
        "FaultInjector: phase durations must be non-negative");
  }
  AttemptFaults faults;
  const double span = compute_s + verify_s;
  const double failstop_at = failstop_.sample(rng);
  faults.failstop_at_s = failstop_at < span ? failstop_at : kInf;
  const double silent_at = silent_.sample(rng);
  faults.silent_at_s = silent_at < compute_s ? silent_at : kInf;
  return faults;
}

}  // namespace rexspeed::sim
