#include "rexspeed/sim/policy.hpp"

#include <stdexcept>

namespace rexspeed::sim {

ExecutionPolicy::ExecutionPolicy(double pattern_work,
                                 std::vector<double> attempt_speeds,
                                 unsigned verification_segments)
    : pattern_work_(pattern_work),
      attempt_speeds_(std::move(attempt_speeds)),
      verification_segments_(verification_segments) {
  if (!(pattern_work_ > 0.0)) {
    throw std::invalid_argument(
        "ExecutionPolicy: pattern work must be positive");
  }
  if (verification_segments_ == 0) {
    throw std::invalid_argument(
        "ExecutionPolicy: need at least one verification segment");
  }
  if (attempt_speeds_.empty()) {
    throw std::invalid_argument(
        "ExecutionPolicy: at least one attempt speed is required");
  }
  for (const double s : attempt_speeds_) {
    if (!(s > 0.0)) {
      throw std::invalid_argument(
          "ExecutionPolicy: attempt speeds must be positive");
    }
  }
}

ExecutionPolicy ExecutionPolicy::two_speed(double pattern_work, double sigma1,
                                           double sigma2) {
  return ExecutionPolicy(pattern_work, {sigma1, sigma2});
}

ExecutionPolicy ExecutionPolicy::single_speed(double pattern_work,
                                              double sigma) {
  return ExecutionPolicy(pattern_work, {sigma});
}

ExecutionPolicy ExecutionPolicy::from_solution(
    const core::PairSolution& solution) {
  if (!solution.feasible) {
    throw std::invalid_argument(
        "ExecutionPolicy: cannot build a policy from an infeasible "
        "solution");
  }
  return two_speed(solution.w_opt, solution.sigma1, solution.sigma2);
}

ExecutionPolicy ExecutionPolicy::segmented(double pattern_work,
                                           unsigned segments, double sigma1,
                                           double sigma2) {
  return ExecutionPolicy(pattern_work, {sigma1, sigma2}, segments);
}

double ExecutionPolicy::speed_for_attempt(std::size_t attempt) const noexcept {
  if (attempt >= attempt_speeds_.size()) return attempt_speeds_.back();
  return attempt_speeds_[attempt];
}

}  // namespace rexspeed::sim
