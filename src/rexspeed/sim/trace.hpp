#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace rexspeed::sim {

/// Kind of a simulated execution segment.
enum class EventType {
  kCompute,        ///< productive (or wasted-by-silent-error) computation
  kVerification,   ///< verification at the end of a pattern
  kCheckpoint,     ///< checkpoint write after a clean verification
  kRecovery,       ///< rollback read after a detected error
  kSilentDetect,   ///< instant: verification flagged a silent error
  kFailStop,       ///< instant: a fail-stop error interrupted execution
  kSilentMissed,   ///< instant: an imperfect verification (recall < 1)
                   ///< let a silent error through — the following
                   ///< checkpoint commits corrupted data
};

[[nodiscard]] const char* to_string(EventType type) noexcept;

/// One segment (or instantaneous marker) of a simulated execution —
/// together these reproduce the timeline drawings of the paper's Figure 1.
struct TraceEvent {
  EventType type = EventType::kCompute;
  double start_s = 0.0;
  double duration_s = 0.0;
  /// Execution speed during the segment (0 for I/O segments and markers).
  double speed = 0.0;
  std::size_t pattern_index = 0;
  std::size_t attempt = 0;
};

/// Bounded event recording. Recording stops silently once the capacity is
/// reached so long simulations cannot exhaust memory; `truncated()` tells
/// whether that happened.
class Trace {
 public:
  explicit Trace(std::size_t capacity = 65536) : capacity_(capacity) {}

  void record(const TraceEvent& event);

  [[nodiscard]] const std::vector<TraceEvent>& events() const noexcept {
    return events_;
  }
  [[nodiscard]] bool truncated() const noexcept { return truncated_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  /// Human-readable rendering of one event ("[t=123.4s] compute 512.0s
  /// @0.40 (pattern 3, attempt 1)").
  [[nodiscard]] static std::string format(const TraceEvent& event);

 private:
  std::size_t capacity_;
  std::vector<TraceEvent> events_;
  bool truncated_ = false;
};

}  // namespace rexspeed::sim
