#pragma once

#include <cstddef>
#include <optional>

#include "rexspeed/core/model_params.hpp"
#include "rexspeed/sim/fault_injector.hpp"
#include "rexspeed/sim/policy.hpp"
#include "rexspeed/sim/rng.hpp"
#include "rexspeed/sim/trace.hpp"

namespace rexspeed::sim {

/// Simulator knobs beyond the analytical model.
struct SimulatorOptions {
  /// Probability that the verification detects a silent error. The paper
  /// assumes guaranteed verifications (recall 1); lowering this models the
  /// *partial* verifications of the paper's related work [Cavelan et al.,
  /// ICPP'15] and lets `bench_ablation_recall` quantify the silent-data-
  /// corruption risk they introduce: a missed error is committed by the
  /// following checkpoint and silently corrupts the final result.
  double verification_recall = 1.0;
  /// The paper assumes fail-stop errors never strike during checkpoint or
  /// recovery (§5.1). Setting this true drops that assumption: a
  /// fail-stop during a checkpoint voids it (recovery + full re-execution
  /// of the attempt) and a fail-stop during recovery restarts the
  /// recovery. `bench_ablation_io_vulnerability` measures how much the
  /// assumption flatters the model's predictions.
  bool io_vulnerable = false;
};

/// Aggregate outcome of one simulated application run.
struct SimResult {
  double makespan_s = 0.0;    ///< total wall-clock time
  double energy_mws = 0.0;    ///< total energy (mW·s)
  double total_work = 0.0;    ///< work units completed
  std::size_t patterns = 0;   ///< patterns committed
  std::size_t attempts = 0;   ///< pattern attempts (≥ patterns)
  std::size_t silent_errors = 0;   ///< silent errors *detected*
  std::size_t failstop_errors = 0;
  std::size_t recoveries = 0;
  std::size_t checkpoints = 0;
  /// Checkpoints that committed undetected silent corruption (only
  /// possible with verification_recall < 1).
  std::size_t corrupted_checkpoints = 0;

  /// True when at least one corrupted checkpoint tainted the run's output.
  [[nodiscard]] bool result_corrupted() const noexcept {
    return corrupted_checkpoints > 0;
  }

  /// Wall-clock seconds per unit of work — the quantity T(W,σ1,σ2)/W
  /// estimates in expectation.
  [[nodiscard]] double time_overhead() const noexcept {
    return makespan_s / total_work;
  }
  /// Energy per unit of work — the quantity E(W,σ1,σ2)/W estimates.
  [[nodiscard]] double energy_overhead() const noexcept {
    return energy_mws / total_work;
  }
};

/// Fault-injection simulator of the paper's execution model (§2.2 and
/// Figure 1): a divisible application is cut into periodic patterns of
/// `W` work followed by a verification and a checkpoint; silent errors are
/// caught by the verification and trigger recovery + re-execution at the
/// policy's re-execution speed; fail-stop errors interrupt immediately.
///
/// Faithfulness notes (matching the analytical model exactly):
///  * silent errors strike during computation; fail-stop errors strike
///    during computation and verification, never during I/O;
///  * the verification is perfect (every silent error is detected);
///  * recovery is also performed before the re-execution of the very first
///    pattern (rollback to initial data has the same cost R);
///  * energy integrates Pidle + κσ³ over compute/verify segments and
///    Pidle + Pio over checkpoint/recovery segments.
class Simulator {
 public:
  explicit Simulator(core::ModelParams params);

  /// Simulator with a custom injector (e.g. Weibull arrivals) and/or
  /// non-default options (e.g. partial verification).
  Simulator(core::ModelParams params, FaultInjector injector,
            SimulatorOptions options = {});

  /// Runs `total_work` units under `policy`. When `trace` is non-null the
  /// segment timeline is recorded into it (bounded by its capacity).
  [[nodiscard]] SimResult run(const ExecutionPolicy& policy,
                              double total_work, Xoshiro256& rng,
                              Trace* trace = nullptr) const;

  [[nodiscard]] const core::ModelParams& params() const noexcept {
    return params_;
  }

  [[nodiscard]] const SimulatorOptions& options() const noexcept {
    return options_;
  }

 private:
  core::ModelParams params_;
  FaultInjector injector_;
  SimulatorOptions options_;
};

}  // namespace rexspeed::sim
