#pragma once

#include <vector>

#include "rexspeed/core/bicrit_solver.hpp"

namespace rexspeed::sim {

/// Checkpointing policy executed by the simulator: a pattern size plus a
/// per-attempt speed schedule. Attempt 0 is the first execution; attempts
/// beyond the schedule reuse its last speed, so {σ1, σ2} realizes the
/// paper's "first at σ1, every re-execution at σ2" model, and longer
/// vectors express the multi-speed retry ladders explored by
/// `bench_ablation_ladder` (the paper's future-work direction).
class ExecutionPolicy {
 public:
  /// `verification_segments` cuts each attempt into that many equal
  /// compute segments, each followed by its own verification (the
  /// interleaved patterns of core/interleaved.hpp); 1 is the paper's
  /// verify-then-checkpoint pattern.
  ExecutionPolicy(double pattern_work, std::vector<double> attempt_speeds,
                  unsigned verification_segments = 1);

  /// Paper model: first execution at σ1, re-executions at σ2.
  [[nodiscard]] static ExecutionPolicy two_speed(double pattern_work,
                                                 double sigma1,
                                                 double sigma2);

  /// Classical baseline: every attempt at σ.
  [[nodiscard]] static ExecutionPolicy single_speed(double pattern_work,
                                                    double sigma);

  /// Policy induced by a solver result (Wopt, σ1, σ2).
  [[nodiscard]] static ExecutionPolicy from_solution(
      const core::PairSolution& solution);

  /// Two-speed policy with interleaved verifications.
  [[nodiscard]] static ExecutionPolicy segmented(double pattern_work,
                                                 unsigned segments,
                                                 double sigma1,
                                                 double sigma2);

  /// Speed of the given (0-based) attempt.
  [[nodiscard]] double speed_for_attempt(std::size_t attempt) const noexcept;

  [[nodiscard]] double pattern_work() const noexcept { return pattern_work_; }
  [[nodiscard]] const std::vector<double>& attempt_speeds() const noexcept {
    return attempt_speeds_;
  }
  [[nodiscard]] unsigned verification_segments() const noexcept {
    return verification_segments_;
  }

 private:
  double pattern_work_;
  std::vector<double> attempt_speeds_;
  unsigned verification_segments_;
};

}  // namespace rexspeed::sim
