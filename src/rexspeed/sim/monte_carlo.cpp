#include "rexspeed/sim/monte_carlo.hpp"

#include <algorithm>
#include <atomic>
#include <stdexcept>
#include <thread>
#include <vector>

namespace rexspeed::sim {

namespace {

/// Per-replication seed: a SplitMix64 hash of (base_seed, index) so that
/// streams are decorrelated regardless of how replications are scheduled.
std::uint64_t replication_seed(std::uint64_t base, std::size_t index) {
  std::uint64_t state = base + 0x9E3779B97F4A7C15ULL * (index + 1);
  return splitmix64(state);
}

struct ThreadAccumulators {
  stats::Welford time_overhead;
  stats::Welford energy_overhead;
  stats::Welford silent_errors;
  stats::Welford failstop_errors;
  stats::Welford attempts_per_pattern;
  stats::Welford corrupted_runs;
  stats::Welford corrupted_checkpoints;
};

}  // namespace

MonteCarloResult run_monte_carlo(const Simulator& simulator,
                                 const ExecutionPolicy& policy,
                                 const MonteCarloOptions& options) {
  if (options.replications == 0) {
    throw std::invalid_argument(
        "run_monte_carlo: need at least one replication");
  }
  unsigned threads = options.threads;
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  threads = static_cast<unsigned>(
      std::min<std::size_t>(threads, options.replications));

  std::vector<ThreadAccumulators> partials(threads);
  std::atomic<std::size_t> next{0};

  const auto worker = [&](unsigned tid) {
    ThreadAccumulators& acc = partials[tid];
    Xoshiro256 rng;
    for (;;) {
      const std::size_t rep = next.fetch_add(1, std::memory_order_relaxed);
      if (rep >= options.replications) break;
      rng.reseed(replication_seed(options.base_seed, rep));
      const SimResult run =
          simulator.run(policy, options.total_work, rng, nullptr);
      acc.time_overhead.add(run.time_overhead());
      acc.energy_overhead.add(run.energy_overhead());
      acc.silent_errors.add(static_cast<double>(run.silent_errors));
      acc.failstop_errors.add(static_cast<double>(run.failstop_errors));
      acc.attempts_per_pattern.add(static_cast<double>(run.attempts) /
                                   static_cast<double>(run.patterns));
      acc.corrupted_runs.add(run.result_corrupted() ? 1.0 : 0.0);
      acc.corrupted_checkpoints.add(
          static_cast<double>(run.corrupted_checkpoints));
    }
  };

  if (threads == 1) {
    worker(0);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (unsigned t = 0; t < threads; ++t) pool.emplace_back(worker, t);
    for (auto& th : pool) th.join();
  }

  MonteCarloResult result;
  for (const auto& acc : partials) {
    result.time_overhead.merge(acc.time_overhead);
    result.energy_overhead.merge(acc.energy_overhead);
    result.silent_errors.merge(acc.silent_errors);
    result.failstop_errors.merge(acc.failstop_errors);
    result.attempts_per_pattern.merge(acc.attempts_per_pattern);
    result.corrupted_runs.merge(acc.corrupted_runs);
    result.corrupted_checkpoints.merge(acc.corrupted_checkpoints);
  }
  result.replications = options.replications;
  result.time_ci =
      stats::mean_confidence_interval(result.time_overhead, options.confidence);
  result.energy_ci = stats::mean_confidence_interval(result.energy_overhead,
                                                     options.confidence);
  return result;
}

}  // namespace rexspeed::sim
