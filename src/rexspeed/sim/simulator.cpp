#include "rexspeed/sim/simulator.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace rexspeed::sim {

namespace {

/// Mutable run state threaded through the pattern loop.
struct RunState {
  double clock_s = 0.0;
  double energy_mws = 0.0;
  SimResult result;
  Trace* trace = nullptr;

  void advance(EventType type, double duration, double power, double speed,
               std::size_t pattern, std::size_t attempt) {
    if (trace != nullptr && (duration > 0.0 ||
                             type == EventType::kSilentDetect ||
                             type == EventType::kFailStop ||
                             type == EventType::kSilentMissed)) {
      trace->record({.type = type,
                     .start_s = clock_s,
                     .duration_s = duration,
                     .speed = speed,
                     .pattern_index = pattern,
                     .attempt = attempt});
    }
    clock_s += duration;
    energy_mws += duration * power;
  }
};

}  // namespace

Simulator::Simulator(core::ModelParams params)
    : params_(std::move(params)), injector_(params_) {
  params_.validate();
}

Simulator::Simulator(core::ModelParams params, FaultInjector injector,
                     SimulatorOptions options)
    : params_(std::move(params)),
      injector_(std::move(injector)),
      options_(options) {
  params_.validate();
  if (!(options_.verification_recall >= 0.0) ||
      options_.verification_recall > 1.0) {
    throw std::invalid_argument(
        "Simulator: verification recall must lie in [0, 1]");
  }
}

SimResult Simulator::run(const ExecutionPolicy& policy, double total_work,
                         Xoshiro256& rng, Trace* trace) const {
  if (!(total_work > 0.0)) {
    throw std::invalid_argument("Simulator: total work must be positive");
  }
  const double io_power = params_.io_total_power();

  RunState state;
  state.trace = trace;

  const unsigned segments = policy.verification_segments();

  // Recovery, possibly interrupted by fail-stop errors when the model's
  // error-free-I/O assumption is dropped: each strike restarts the read.
  const auto perform_recovery = [&](RunState& run, std::size_t pattern,
                                    std::size_t attempt) {
    if (options_.io_vulnerable && params_.lambda_failstop > 0.0) {
      for (;;) {
        const double strike = injector_.failstop().sample(rng);
        if (strike >= params_.recovery_s) break;
        run.advance(EventType::kRecovery, strike, io_power, 0.0, pattern,
                    attempt);
        run.advance(EventType::kFailStop, 0.0, 0.0, 0.0, pattern, attempt);
        ++run.result.failstop_errors;
      }
    }
    run.advance(EventType::kRecovery, params_.recovery_s, io_power, 0.0,
                pattern, attempt);
    ++run.result.recoveries;
  };

  // Checkpoint write; returns false when a fail-stop voided it (only
  // possible with io_vulnerable), in which case a recovery has already
  // been performed and the attempt must be re-executed.
  const auto perform_checkpoint = [&](RunState& run, std::size_t pattern,
                                      std::size_t attempt) {
    if (options_.io_vulnerable && params_.lambda_failstop > 0.0) {
      const double strike = injector_.failstop().sample(rng);
      if (strike < params_.checkpoint_s) {
        run.advance(EventType::kCheckpoint, strike, io_power, 0.0, pattern,
                    attempt);
        run.advance(EventType::kFailStop, 0.0, 0.0, 0.0, pattern, attempt);
        ++run.result.failstop_errors;
        perform_recovery(run, pattern, attempt);
        return false;
      }
    }
    run.advance(EventType::kCheckpoint, params_.checkpoint_s, io_power, 0.0,
                pattern, attempt);
    ++run.result.checkpoints;
    return true;
  };

  double remaining = total_work;
  std::size_t pattern_index = 0;
  while (remaining > 0.0) {
    const double work = std::min(policy.pattern_work(), remaining);
    std::size_t attempt = 0;
    for (;;) {
      const double sigma = policy.speed_for_attempt(attempt);
      const double compute_power = params_.compute_power(sigma);
      const double compute_s = work / sigma;
      const double verify_s = params_.verification_s / sigma;
      // Segment layout: `segments` compute pieces of c seconds, each
      // followed by a v-second verification (the paper's pattern is the
      // m = 1 special case).
      const double c = compute_s / segments;
      const double v = verify_s;
      const AttemptFaults faults = injector_.sample_attempt(
          compute_s, v * static_cast<double>(segments), rng);
      ++state.result.attempts;

      // Which verification (if any) catches the silent error: the first
      // one at or after the struck segment that does not miss. With
      // recall 1 (the paper's guaranteed verifications) that is the
      // struck segment's own verification.
      const bool silent_struck = std::isfinite(faults.silent_at_s);
      unsigned detect_seg = segments;  // `segments` = never detected
      if (silent_struck) {
        const auto struck = std::min(
            static_cast<unsigned>(faults.silent_at_s / c), segments - 1);
        for (unsigned j = struck; j < segments; ++j) {
          if (options_.verification_recall >= 1.0 ||
              rng.uniform() < options_.verification_recall) {
            detect_seg = j;
            break;
          }
        }
      }
      const double detect_wall =
          detect_seg < segments
              ? static_cast<double>(detect_seg + 1) * (c + v)
              : std::numeric_limits<double>::infinity();

      if (faults.failstop_at_s < detect_wall) {
        // Fail-stop interrupts mid-attempt (possibly inside a
        // verification); everything since the last checkpoint is lost.
        double left = faults.failstop_at_s;
        for (unsigned seg = 0; seg < segments && left > 0.0; ++seg) {
          const double ct = std::min(c, left);
          state.advance(EventType::kCompute, ct, compute_power, sigma,
                        pattern_index, attempt);
          left -= ct;
          if (left <= 0.0) break;
          const double vt = std::min(v, left);
          state.advance(EventType::kVerification, vt, compute_power, sigma,
                        pattern_index, attempt);
          left -= vt;
        }
        state.advance(EventType::kFailStop, 0.0, 0.0, 0.0, pattern_index,
                      attempt);
        ++state.result.failstop_errors;
        perform_recovery(state, pattern_index, attempt);
        ++attempt;
        continue;
      }

      if (detect_seg < segments) {
        // Full segments up to and including the detecting verification.
        for (unsigned seg = 0; seg <= detect_seg; ++seg) {
          state.advance(EventType::kCompute, c, compute_power, sigma,
                        pattern_index, attempt);
          state.advance(EventType::kVerification, v, compute_power, sigma,
                        pattern_index, attempt);
        }
        state.advance(EventType::kSilentDetect, 0.0, 0.0, 0.0,
                      pattern_index, attempt);
        ++state.result.silent_errors;
        perform_recovery(state, pattern_index, attempt);
        ++attempt;
        continue;
      }

      // Clean (or silently corrupted) attempt: all segments complete.
      for (unsigned seg = 0; seg < segments; ++seg) {
        state.advance(EventType::kCompute, c, compute_power, sigma,
                      pattern_index, attempt);
        state.advance(EventType::kVerification, v, compute_power, sigma,
                      pattern_index, attempt);
      }
      if (!perform_checkpoint(state, pattern_index, attempt)) {
        ++attempt;  // the write was voided; re-execute the attempt
        continue;
      }
      if (silent_struck) {
        state.advance(EventType::kSilentMissed, 0.0, 0.0, 0.0,
                      pattern_index, attempt);
        ++state.result.corrupted_checkpoints;
      }
      break;
    }
    remaining -= work;
    ++pattern_index;
  }

  state.result.makespan_s = state.clock_s;
  state.result.energy_mws = state.energy_mws;
  state.result.total_work = total_work;
  state.result.patterns = pattern_index;
  return state.result;
}

}  // namespace rexspeed::sim
