#pragma once

#include <cstddef>
#include <cstdint>

#include "rexspeed/sim/simulator.hpp"
#include "rexspeed/stats/summary.hpp"
#include "rexspeed/stats/welford.hpp"

namespace rexspeed::sim {

/// Options for a replicated Monte-Carlo experiment.
struct MonteCarloOptions {
  std::size_t replications = 1000;
  /// Work units per replication; larger values tighten the per-replication
  /// estimate of the overheads (more patterns averaged per run).
  double total_work = 1e6;
  std::uint64_t base_seed = 0x5EED0001;
  /// 0 = use hardware_concurrency().
  unsigned threads = 0;
  double confidence = 0.95;
};

/// Aggregated replication statistics.
struct MonteCarloResult {
  stats::Welford time_overhead;
  stats::Welford energy_overhead;
  stats::Welford silent_errors;
  stats::Welford failstop_errors;
  stats::Welford attempts_per_pattern;
  /// Indicator (0/1) per replication that at least one corrupted
  /// checkpoint was committed — its mean estimates the probability of a
  /// silently corrupted campaign (non-zero only with recall < 1).
  stats::Welford corrupted_runs;
  /// Corrupted checkpoints committed per replication.
  stats::Welford corrupted_checkpoints;
  std::size_t replications = 0;

  stats::ConfidenceInterval time_ci;
  stats::ConfidenceInterval energy_ci;
};

/// Runs `options.replications` independent simulations of `policy` and
/// aggregates the observed time/energy overheads. Replications are
/// distributed over a thread pool; replication `i` always uses the seed
/// derived from (base_seed, i), so results are independent of the thread
/// count — a property the determinism tests assert.
[[nodiscard]] MonteCarloResult run_monte_carlo(
    const Simulator& simulator, const ExecutionPolicy& policy,
    const MonteCarloOptions& options = {});

}  // namespace rexspeed::sim
