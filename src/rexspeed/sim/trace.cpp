#include "rexspeed/sim/trace.hpp"

#include <cstdio>

namespace rexspeed::sim {

const char* to_string(EventType type) noexcept {
  switch (type) {
    case EventType::kCompute:
      return "compute";
    case EventType::kVerification:
      return "verify";
    case EventType::kCheckpoint:
      return "checkpoint";
    case EventType::kRecovery:
      return "recovery";
    case EventType::kSilentDetect:
      return "silent-detected";
    case EventType::kFailStop:
      return "fail-stop";
    case EventType::kSilentMissed:
      return "silent-missed";
  }
  return "unknown";
}

void Trace::record(const TraceEvent& event) {
  if (events_.size() >= capacity_) {
    truncated_ = true;
    return;
  }
  events_.push_back(event);
}

std::string Trace::format(const TraceEvent& event) {
  char buffer[160];
  if (event.speed > 0.0) {
    std::snprintf(buffer, sizeof buffer,
                  "[t=%10.1fs] %-15s %9.1fs @%.2f (pattern %zu, attempt %zu)",
                  event.start_s, to_string(event.type), event.duration_s,
                  event.speed, event.pattern_index, event.attempt);
  } else {
    std::snprintf(buffer, sizeof buffer,
                  "[t=%10.1fs] %-15s %9.1fs       (pattern %zu, attempt %zu)",
                  event.start_s, to_string(event.type), event.duration_s,
                  event.pattern_index, event.attempt);
  }
  return buffer;
}

}  // namespace rexspeed::sim
