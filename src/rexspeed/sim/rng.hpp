#pragma once

#include <array>
#include <cstdint>

namespace rexspeed::sim {

/// xoshiro256++ pseudo-random generator (Blackman & Vigna), seeded through
/// SplitMix64 so that any 64-bit seed — including 0 — yields a well-mixed
/// state. Deterministic across platforms, which the reproduction relies on:
/// every Monte-Carlo experiment in the benches is re-runnable bit-for-bit.
///
/// Satisfies std::uniform_random_bit_generator.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0) { reseed(seed); }

  /// Re-initializes the state from a 64-bit seed via SplitMix64.
  void reseed(std::uint64_t seed);

  /// Next 64 pseudo-random bits.
  result_type operator()() noexcept;

  /// Uniform double in [0, 1) with 53 bits of precision.
  [[nodiscard]] double uniform() noexcept;

  /// Uniform double in (0, 1] — safe as input to -log(u) sampling.
  [[nodiscard]] double uniform_positive() noexcept;

  /// Jumps ahead by 2^128 steps; provides independent parallel streams.
  void jump() noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~result_type{0}; }

  [[nodiscard]] bool operator==(const Xoshiro256&) const = default;

 private:
  std::array<std::uint64_t, 4> state_{};
};

/// SplitMix64 step — also exposed for deriving per-replication seeds.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state) noexcept;

}  // namespace rexspeed::sim
