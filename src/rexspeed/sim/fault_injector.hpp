#pragma once

#include "rexspeed/core/model_params.hpp"
#include "rexspeed/sim/distributions.hpp"
#include "rexspeed/sim/rng.hpp"

namespace rexspeed::sim {

/// Outcome of exposing one pattern attempt to both error sources.
struct AttemptFaults {
  /// Wall-clock arrival of the first fail-stop error within the attempt
  /// (+inf when none strikes before the attempt would finish).
  double failstop_at_s = 0.0;
  /// Wall-clock arrival of the first silent error within the compute phase
  /// (+inf when the computation is clean). Silent errors strike during
  /// computation only (paper §2.2: the verification catches them).
  double silent_at_s = 0.0;
};

/// Samples error arrivals for pattern attempts.
///
/// The paper's model is exponential (memoryless), so sampling fresh
/// arrivals per attempt is exact. For Weibull arrivals this corresponds to
/// the standard renewal-at-restart assumption (the error process restarts
/// after each recovery), which is how checkpoint simulators typically treat
/// non-memoryless failures.
class FaultInjector {
 public:
  /// Exponential injector with the rates from `params` (paper model).
  explicit FaultInjector(const core::ModelParams& params);

  /// Custom arrival samplers (e.g. Weibull ablation).
  FaultInjector(ArrivalSampler silent, ArrivalSampler failstop);

  /// Samples the first silent / fail-stop arrival for an attempt whose
  /// compute phase lasts `compute_s` seconds and whose verify phase lasts
  /// `verify_s` seconds. Arrivals beyond their exposure window are
  /// reported as +inf.
  [[nodiscard]] AttemptFaults sample_attempt(double compute_s,
                                             double verify_s,
                                             Xoshiro256& rng) const;

  [[nodiscard]] const ArrivalSampler& silent() const noexcept {
    return silent_;
  }
  [[nodiscard]] const ArrivalSampler& failstop() const noexcept {
    return failstop_;
  }

 private:
  ArrivalSampler silent_;
  ArrivalSampler failstop_;
};

}  // namespace rexspeed::sim
