#pragma once

#include "rexspeed/sim/rng.hpp"

namespace rexspeed::sim {

/// Inter-arrival distribution of errors. The paper assumes exponential
/// arrivals (§2.1); Weibull with shape < 1 models the infant-mortality
/// clustering observed on real machines and is used by the robustness
/// ablation (`bench_ablation_weibull`).
enum class ArrivalKind {
  kExponential,
  kWeibull,
};

/// Exponential inter-arrival sampler with rate λ (mean 1/λ).
class Exponential {
 public:
  explicit Exponential(double rate);
  /// Next inter-arrival time (s). Returns +inf when the rate is zero.
  [[nodiscard]] double sample(Xoshiro256& rng) const noexcept;
  [[nodiscard]] double rate() const noexcept { return rate_; }
  [[nodiscard]] double mean() const noexcept;

 private:
  double rate_;
};

/// Weibull inter-arrival sampler parameterized by shape k and *mean* —
/// the scale is derived so different shapes stay comparable at equal MTBF.
class Weibull {
 public:
  Weibull(double shape, double mean);
  [[nodiscard]] double sample(Xoshiro256& rng) const noexcept;
  [[nodiscard]] double shape() const noexcept { return shape_; }
  [[nodiscard]] double scale() const noexcept { return scale_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }

 private:
  double shape_;
  double scale_;
  double mean_;
};

/// lgamma-based Γ(1 + 1/k), used to convert a Weibull mean to its scale.
[[nodiscard]] double weibull_mean_to_scale(double shape, double mean);

/// Polymorphic-by-value arrival sampler used by the fault injector.
class ArrivalSampler {
 public:
  /// Exponential with the given rate (the paper's model).
  static ArrivalSampler exponential(double rate);
  /// Weibull with the given shape, matched to mean 1/rate. Falls back to an
  /// infinite arrival when rate is zero.
  static ArrivalSampler weibull(double shape, double rate);

  /// Next inter-arrival time (s); +inf when the source is disabled.
  [[nodiscard]] double sample(Xoshiro256& rng) const noexcept;

  [[nodiscard]] ArrivalKind kind() const noexcept { return kind_; }
  [[nodiscard]] double rate() const noexcept { return rate_; }

 private:
  ArrivalKind kind_ = ArrivalKind::kExponential;
  double rate_ = 0.0;
  double shape_ = 1.0;
  double scale_ = 0.0;
};

}  // namespace rexspeed::sim
