#include "rexspeed/sim/distributions.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace rexspeed::sim {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

Exponential::Exponential(double rate) : rate_(rate) {
  if (rate < 0.0) {
    throw std::invalid_argument("Exponential: rate must be non-negative");
  }
}

double Exponential::sample(Xoshiro256& rng) const noexcept {
  if (rate_ <= 0.0) return kInf;
  return -std::log(rng.uniform_positive()) / rate_;
}

double Exponential::mean() const noexcept {
  return rate_ > 0.0 ? 1.0 / rate_ : kInf;
}

double weibull_mean_to_scale(double shape, double mean) {
  if (!(shape > 0.0) || !(mean > 0.0)) {
    throw std::invalid_argument(
        "weibull_mean_to_scale: shape and mean must be positive");
  }
  // mean = scale · Γ(1 + 1/k)  ⇒  scale = mean / Γ(1 + 1/k).
  return mean / std::exp(std::lgamma(1.0 + 1.0 / shape));
}

Weibull::Weibull(double shape, double mean)
    : shape_(shape), scale_(weibull_mean_to_scale(shape, mean)), mean_(mean) {}

double Weibull::sample(Xoshiro256& rng) const noexcept {
  // Inverse CDF: scale · (−ln u)^{1/k}.
  return scale_ * std::pow(-std::log(rng.uniform_positive()), 1.0 / shape_);
}

ArrivalSampler ArrivalSampler::exponential(double rate) {
  if (rate < 0.0) {
    throw std::invalid_argument(
        "ArrivalSampler: rate must be non-negative");
  }
  ArrivalSampler sampler;
  sampler.kind_ = ArrivalKind::kExponential;
  sampler.rate_ = rate;
  return sampler;
}

ArrivalSampler ArrivalSampler::weibull(double shape, double rate) {
  if (!(shape > 0.0)) {
    throw std::invalid_argument("ArrivalSampler: shape must be positive");
  }
  if (rate < 0.0) {
    throw std::invalid_argument("ArrivalSampler: rate must be non-negative");
  }
  ArrivalSampler sampler;
  sampler.kind_ = ArrivalKind::kWeibull;
  sampler.rate_ = rate;
  sampler.shape_ = shape;
  sampler.scale_ =
      rate > 0.0 ? weibull_mean_to_scale(shape, 1.0 / rate) : 0.0;
  return sampler;
}

double ArrivalSampler::sample(Xoshiro256& rng) const noexcept {
  if (rate_ <= 0.0) return kInf;
  const double u = rng.uniform_positive();
  if (kind_ == ArrivalKind::kExponential) {
    return -std::log(u) / rate_;
  }
  return scale_ * std::pow(-std::log(u), 1.0 / shape_);
}

}  // namespace rexspeed::sim
