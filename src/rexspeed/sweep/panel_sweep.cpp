#include "rexspeed/sweep/panel_sweep.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "rexspeed/sweep/thread_pool.hpp"

namespace rexspeed::sweep {

double PanelSeries::max_energy_saving() const noexcept {
  double best = 0.0;
  for (const auto& point : points) {
    best = std::max(best, point.energy_saving());
  }
  return best;
}

FigureSeries to_figure_series(const PanelSeries& panel) {
  if (panel.kind != core::SolutionKind::kPair) {
    throw std::invalid_argument(
        "to_figure_series: panel carries interleaved solutions (use "
        "to_interleaved_series)");
  }
  FigureSeries out;
  out.parameter = panel.parameter;
  out.configuration = panel.configuration;
  out.rho = panel.rho;
  out.points.reserve(panel.points.size());
  for (const auto& point : panel.points) {
    FigurePoint typed;
    typed.x = point.x;
    typed.two_speed = point.primary.pair;
    typed.single_speed = point.baseline.pair;
    typed.two_speed_fallback = point.primary.used_fallback;
    typed.single_speed_fallback = point.baseline.used_fallback;
    out.points.push_back(std::move(typed));
  }
  return out;
}

InterleavedSeries to_interleaved_series(const PanelSeries& panel) {
  if (panel.kind != core::SolutionKind::kInterleaved) {
    throw std::invalid_argument(
        "to_interleaved_series: panel carries pair solutions (use "
        "to_figure_series)");
  }
  InterleavedSeries out;
  out.parameter = panel.parameter;
  out.configuration = panel.configuration;
  out.rho = panel.rho;
  out.max_segments = panel.max_segments;
  out.points.reserve(panel.points.size());
  for (const auto& point : panel.points) {
    InterleavedPoint typed;
    typed.x = point.x;
    typed.best = point.primary.interleaved;
    typed.single = point.baseline.interleaved;
    out.points.push_back(typed);
  }
  return out;
}

Series to_series(const PanelSeries& panel) {
  return panel.kind == core::SolutionKind::kPair
             ? to_series(to_figure_series(panel))
             : to_series(to_interleaved_series(panel));
}

std::vector<double> panel_grid(SweepParameter parameter, std::size_t points,
                               unsigned max_segments) {
  if (parameter == SweepParameter::kSegments) {
    return default_grid(parameter, max_segments);
  }
  return default_grid(parameter, points);
}

PanelSweep::PanelSweep(std::unique_ptr<core::SolverBackend> backend,
                       std::string configuration, SweepParameter parameter,
                       std::vector<double> grid, SweepOptions options)
    : backend_(std::move(backend)),
      options_(options),
      grid_(std::move(grid)) {
  if (!backend_) {
    throw std::invalid_argument("PanelSweep: null backend");
  }
  const core::BackendCapabilities& caps = backend_->capabilities();
  if (!caps.supports(parameter)) {
    throw std::invalid_argument(
        std::string("PanelSweep: backend '") + backend_->name() +
        "' does not sweep '" + to_string(parameter) +
        (parameter == SweepParameter::kSegments
             ? "' (the segments axis needs the interleaved solver mode — "
               "set segments= or max_segments= on the scenario)"
             : "' (see capabilities().axes)"));
  }
  if (grid_.empty()) {
    throw std::invalid_argument("PanelSweep: empty grid");
  }
  // The pool's workers have no exception barrier (tasks must not throw),
  // so the bounds the backend would reject are rejected here instead: the
  // panel's ρ, and — for ρ panels, where each x IS the bound — the grid.
  if (!(options_.rho > 0.0) || !std::isfinite(options_.rho)) {
    throw std::invalid_argument(
        "PanelSweep: rho must be positive and finite");
  }
  for (const double x : grid_) {
    if (parameter == SweepParameter::kPerformanceBound &&
        (!(x > 0.0) || !std::isfinite(x))) {
      throw std::invalid_argument(
          "PanelSweep: rho-sweep grid values must be positive and finite");
    }
    if (parameter == SweepParameter::kSegments) {
      const double rounded = std::floor(x + 0.5);
      if (!(rounded >= 1.0) ||
          rounded > static_cast<double>(caps.max_segments) ||
          std::abs(x - rounded) > 1e-9) {
        throw std::invalid_argument(
            "PanelSweep: segments-sweep grid values must be integers in "
            "[1, max_segments]");
      }
    }
  }
  shared_ = caps.shares_panel_solver(parameter);
  // Batched: the backend takes the whole ρ grid in one call against its
  // contiguous caches. Chained: a model axis whose per-point rebinds are
  // warm-started from the neighboring point (order IS the point, so the
  // panel schedules as one unit). Both are properties of THIS panel's
  // axis × backend combination, frozen here.
  batched_ = shared_ && parameter == SweepParameter::kPerformanceBound &&
             caps.batched_rho && options_.batch != BatchMode::kOff;
  if (options_.batch == BatchMode::kOn &&
      parameter == SweepParameter::kPerformanceBound && !caps.batched_rho) {
    throw std::invalid_argument(
        std::string("PanelSweep: batch=on but backend '") +
        backend_->name() + "' does not batch rho grids");
  }
  chained_ = !shared_ && caps.warm_start_chain && options_.warm_start_chain;
  series_.parameter = parameter;
  series_.configuration = std::move(configuration);
  series_.rho = options_.rho;
  series_.kind = caps.kind;
  series_.max_segments = caps.max_segments;
  series_.points.resize(grid_.size());
}

void PanelSweep::prepare() {
  if (!needs_prepare()) return;
  backend_->prepare(make_parallel_build(options_.pool));
}

void PanelSweep::solve_point(std::size_t i) {
  const double x = grid_[i];
  if (shared_) {
    series_.points[i] = backend_->solve_panel_point(
        series_.parameter, x, options_.rho, options_.min_rho_fallback);
    return;
  }
  // Model axes rebuild the model per point by necessity; the rebound
  // backend is the cheap per-point path of the panel's mode.
  const std::unique_ptr<core::SolverBackend> point_backend = backend_->rebind(
      apply_parameter(backend_->params(), series_.parameter, x));
  point_backend->prepare();
  series_.points[i] = point_backend->solve_panel_point(
      series_.parameter, x, options_.rho, options_.min_rho_fallback);
}

void PanelSweep::solve_all() {
  if (batched_) {
    // The whole ρ grid in one backend call — the kernel-batched path,
    // bit-identical to the per-point loop by the backend contract.
    backend_->solve_rho_batch(grid_.data(), grid_.size(),
                              options_.min_rho_fallback,
                              series_.points.data());
    return;
  }
  if (chained_) {
    // Walk the grid in order, seeding each point's per-pair bracketing
    // from the optima harvested at its neighbor. The first point has no
    // seeds and runs the cold path bit for bit; later points converge to
    // the same optima within numeric tolerance, only faster.
    core::PairSeedTable seeds;
    core::PairSeedTable harvest;
    for (std::size_t i = first_pending_; i < grid_.size(); ++i) {
      const double x = grid_[i];
      const std::unique_ptr<core::SolverBackend> point_backend =
          backend_->rebind(
              apply_parameter(backend_->params(), series_.parameter, x),
              seeds.empty() ? nullptr : &seeds);
      point_backend->prepare();
      series_.points[i] = point_backend->solve_panel_point_seeded(
          series_.parameter, x, options_.rho, options_.min_rho_fallback,
          &harvest);
      std::swap(seeds, harvest);
    }
    return;
  }
  for (std::size_t i = first_pending_; i < grid_.size(); ++i) {
    solve_point(i);
  }
}

double PanelSweep::measure_cost() {
  using clock = std::chrono::steady_clock;
  const auto start = clock::now();
  if (granularity() == Granularity::kPerPoint) {
    // Probe work that counts: point 0 is solved for real and the stream
    // starts at index 1.
    solve_point(0);
    first_pending_ = 1;
  } else if (batched_) {
    // One point through the same shared backend — the unit the batched
    // call amortizes further, so this over- rather than underestimates.
    (void)backend_->solve_panel_point(series_.parameter, grid_[0],
                                      options_.rho,
                                      options_.min_rho_fallback);
  } else {
    // Chained panel: one cold per-point rebind — exactly the first link
    // of the chain, which solve_all() recomputes identically.
    const std::unique_ptr<core::SolverBackend> point_backend =
        backend_->rebind(apply_parameter(backend_->params(),
                                         series_.parameter, grid_[0]));
    point_backend->prepare();
    (void)point_backend->solve_panel_point(series_.parameter, grid_[0],
                                           options_.rho,
                                           options_.min_rho_fallback);
  }
  const double seconds =
      std::chrono::duration<double>(clock::now() - start).count();
  const auto remaining =
      static_cast<double>(point_count() - first_pending_);
  return seconds * remaining;
}

PanelSeries run_panel_sweep(std::unique_ptr<core::SolverBackend> backend,
                            std::string configuration,
                            SweepParameter parameter,
                            std::vector<double> grid,
                            const SweepOptions& options) {
  PanelSweep panel(std::move(backend), std::move(configuration), parameter,
                   std::move(grid), options);
  panel.prepare();
  if (panel.granularity() == PanelSweep::Granularity::kWholePanel) {
    // Batched and chained panels are one unit by nature; the campaign
    // stream schedules them the same way, so both drivers stay
    // bit-identical.
    panel.solve_all();
  } else {
    parallel_for(options.pool, panel.point_count(),
                 [&panel](std::size_t i) { panel.solve_point(i); });
  }
  return panel.take();
}

FigurePoint solve_figure_point(const core::SolverBackend& backend,
                               double rho, const SweepOptions& options) {
  const core::PanelPoint point = backend.solve_panel_point(
      SweepParameter::kPerformanceBound, rho, rho, options.min_rho_fallback);
  FigurePoint typed;
  typed.x = rho;
  typed.two_speed = point.primary.pair;
  typed.single_speed = point.baseline.pair;
  typed.two_speed_fallback = point.primary.used_fallback;
  typed.single_speed_fallback = point.baseline.used_fallback;
  return typed;
}

}  // namespace rexspeed::sweep
