#include "rexspeed/sweep/grid.hpp"

#include <cmath>
#include <stdexcept>

namespace rexspeed::sweep {

std::vector<double> linspace(double lo, double hi, std::size_t count) {
  if (count < 2) {
    throw std::invalid_argument("linspace: need at least two points");
  }
  if (!(lo <= hi)) {
    throw std::invalid_argument("linspace: lo must not exceed hi");
  }
  std::vector<double> values(count);
  const double step = (hi - lo) / static_cast<double>(count - 1);
  for (std::size_t i = 0; i < count; ++i) {
    values[i] = lo + step * static_cast<double>(i);
  }
  values.back() = hi;  // avoid accumulated rounding on the endpoint
  return values;
}

std::vector<double> logspace(double lo, double hi, std::size_t count) {
  if (count < 2) {
    throw std::invalid_argument("logspace: need at least two points");
  }
  if (!(lo > 0.0) || !(hi > 0.0) || !(lo <= hi)) {
    throw std::invalid_argument(
        "logspace: bounds must be positive with lo <= hi");
  }
  std::vector<double> values(count);
  const double log_lo = std::log(lo);
  const double step = (std::log(hi) - log_lo) / static_cast<double>(count - 1);
  for (std::size_t i = 0; i < count; ++i) {
    values[i] = std::exp(log_lo + step * static_cast<double>(i));
  }
  values.back() = hi;
  return values;
}

}  // namespace rexspeed::sweep
