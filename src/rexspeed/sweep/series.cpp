#include "rexspeed/sweep/series.hpp"

#include <stdexcept>

namespace rexspeed::sweep {

Series::Series(std::string x_name, std::vector<std::string> column_names)
    : x_name_(std::move(x_name)), column_names_(std::move(column_names)) {
  if (column_names_.empty()) {
    throw std::invalid_argument("Series: need at least one column");
  }
  columns_.resize(column_names_.size());
}

void Series::add_row(double x, const std::vector<double>& values) {
  if (values.size() != columns_.size()) {
    throw std::invalid_argument("Series::add_row: column count mismatch");
  }
  x_.push_back(x);
  for (std::size_t i = 0; i < values.size(); ++i) {
    columns_[i].push_back(values[i]);
  }
}

const std::vector<double>& Series::column(std::size_t index) const {
  if (index >= columns_.size()) {
    throw std::out_of_range("Series::column: index out of range");
  }
  return columns_[index];
}

const std::vector<double>& Series::column(const std::string& name) const {
  for (std::size_t i = 0; i < column_names_.size(); ++i) {
    if (column_names_[i] == name) return columns_[i];
  }
  throw std::out_of_range("Series::column: unknown column '" + name + "'");
}

}  // namespace rexspeed::sweep
