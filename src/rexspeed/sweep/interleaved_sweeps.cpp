#include "rexspeed/sweep/interleaved_sweeps.hpp"

#include <algorithm>
#include <limits>
#include <memory>
#include <stdexcept>
#include <utility>

#include "rexspeed/core/solver_backend.hpp"
#include "rexspeed/sweep/panel_sweep.hpp"

namespace rexspeed::sweep {

double InterleavedPoint::energy_saving() const noexcept {
  if (!best.feasible || !single.feasible ||
      !(single.energy_overhead > 0.0)) {
    return 0.0;
  }
  return 1.0 - best.energy_overhead / single.energy_overhead;
}

double InterleavedSeries::max_energy_saving() const noexcept {
  double best = 0.0;
  for (const auto& point : points) {
    best = std::max(best, point.energy_saving());
  }
  return best;
}

std::vector<double> interleaved_grid(SweepParameter parameter,
                                     std::size_t points,
                                     unsigned max_segments) {
  if (parameter != SweepParameter::kPerformanceBound &&
      parameter != SweepParameter::kSegments) {
    throw std::invalid_argument(
        "interleaved_grid: interleaved panels sweep rho or segments, not '" +
        std::string(to_string(parameter)) + "'");
  }
  return panel_grid(parameter, points, max_segments);
}

InterleavedSeries run_interleaved_sweep(const core::ModelParams& base,
                                        std::string configuration,
                                        SweepParameter parameter,
                                        const std::vector<double>& grid,
                                        unsigned max_segments,
                                        unsigned fixed_segments,
                                        const SweepOptions& options) {
  return to_interleaved_series(run_panel_sweep(
      std::make_unique<core::InterleavedBackend>(base, max_segments,
                                                 fixed_segments),
      std::move(configuration), parameter, grid, options));
}

InterleavedSeries run_interleaved_sweep(const core::ModelParams& base,
                                        std::string configuration,
                                        SweepParameter parameter,
                                        unsigned max_segments,
                                        unsigned fixed_segments,
                                        const SweepOptions& options) {
  return run_interleaved_sweep(
      base, std::move(configuration), parameter,
      interleaved_grid(parameter, options.points, max_segments),
      max_segments, fixed_segments, options);
}

Series to_series(const InterleavedSeries& figure) {
  // "best_m", not "segments": the segments-axis panel's x column already
  // carries that name, and a duplicate header breaks key-by-name
  // consumers of the CSV.
  Series series(to_string(figure.parameter),
                {"best_m", "sigma1", "sigma2", "Wopt", "energy", "time",
                 "energy1", "saving"});
  constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
  for (const auto& point : figure.points) {
    const auto& best = point.best;
    const auto& one = point.single;
    series.add_row(
        point.x,
        {best.feasible ? static_cast<double>(best.segments) : kNaN,
         best.feasible ? best.sigma1 : kNaN,
         best.feasible ? best.sigma2 : kNaN,
         best.feasible ? best.w_opt : kNaN,
         best.feasible ? best.energy_overhead : kNaN,
         best.feasible ? best.time_overhead : kNaN,
         one.feasible ? one.energy_overhead : kNaN,
         // A saving only exists where both patterns do; rendering 0 at an
         // infeasible point would plot as "feasible, no gain".
         best.feasible && one.feasible ? point.energy_saving() : kNaN});
  }
  return series;
}

}  // namespace rexspeed::sweep
