#include "rexspeed/sweep/interleaved_sweeps.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <utility>

namespace rexspeed::sweep {

double InterleavedPoint::energy_saving() const noexcept {
  if (!best.feasible || !single.feasible ||
      !(single.energy_overhead > 0.0)) {
    return 0.0;
  }
  return 1.0 - best.energy_overhead / single.energy_overhead;
}

double InterleavedSeries::max_energy_saving() const noexcept {
  double best = 0.0;
  for (const auto& point : points) {
    best = std::max(best, point.energy_saving());
  }
  return best;
}

std::vector<double> interleaved_grid(SweepParameter parameter,
                                     std::size_t points,
                                     unsigned max_segments) {
  if (parameter == SweepParameter::kPerformanceBound) {
    return default_grid(parameter, points);
  }
  if (parameter == SweepParameter::kSegments) {
    return default_grid(parameter, max_segments);
  }
  throw std::invalid_argument(
      "interleaved_grid: interleaved panels sweep rho or segments, not '" +
      std::string(to_string(parameter)) + "'");
}

InterleavedPanelSweep::InterleavedPanelSweep(core::ModelParams base,
                                             std::string configuration,
                                             SweepParameter parameter,
                                             std::vector<double> grid,
                                             unsigned max_segments,
                                             unsigned fixed_segments,
                                             SweepOptions options)
    : base_(std::move(base)),
      max_segments_(max_segments),
      fixed_segments_(fixed_segments),
      options_(options),
      grid_(std::move(grid)) {
  // Everything the deferred prepare() (and the pool's solve_point tasks)
  // would reject is rejected here instead — the InterleavedSolver
  // preconditions included, so prepare() cannot throw later.
  base_.validate();
  if (base_.lambda_failstop > 0.0) {
    throw std::invalid_argument(
        "InterleavedPanelSweep: interleaved panels require "
        "lambda_failstop = 0 (silent errors only)");
  }
  if (max_segments_ == 0) {
    throw std::invalid_argument(
        "InterleavedPanelSweep: need at least one segment");
  }
  if (grid_.empty()) {
    throw std::invalid_argument("InterleavedPanelSweep: empty grid");
  }
  if (fixed_segments_ > max_segments_) {
    throw std::invalid_argument(
        "InterleavedPanelSweep: fixed_segments must be in "
        "[0, max_segments]");
  }
  if (parameter != SweepParameter::kPerformanceBound &&
      parameter != SweepParameter::kSegments) {
    throw std::invalid_argument(
        "InterleavedPanelSweep: interleaved panels sweep rho or segments, "
        "not '" + std::string(to_string(parameter)) + "'");
  }
  // The pool's workers have no exception barrier (tasks must not throw),
  // so everything the solver would reject is rejected here instead.
  if (!(options_.rho > 0.0) || !std::isfinite(options_.rho)) {
    throw std::invalid_argument(
        "InterleavedPanelSweep: rho must be positive and finite");
  }
  for (const double x : grid_) {
    if (parameter == SweepParameter::kPerformanceBound &&
        (!(x > 0.0) || !std::isfinite(x))) {
      throw std::invalid_argument(
          "InterleavedPanelSweep: rho-sweep grid values must be positive "
          "and finite");
    }
    if (parameter == SweepParameter::kSegments) {
      const double rounded = std::floor(x + 0.5);
      if (!(rounded >= 1.0) ||
          rounded > static_cast<double>(max_segments) ||
          std::abs(x - rounded) > 1e-9) {
        throw std::invalid_argument(
            "InterleavedPanelSweep: segments-sweep grid values must be "
            "integers in [1, max_segments]");
      }
    }
  }
  series_.parameter = parameter;
  series_.configuration = std::move(configuration);
  series_.rho = options_.rho;
  series_.max_segments = max_segments_;
  series_.points.resize(grid_.size());
}

void InterleavedPanelSweep::prepare() {
  if (!shared_) shared_.emplace(base_, max_segments_);
}

void InterleavedPanelSweep::solve_point(std::size_t i) {
  const double x = grid_[i];
  InterleavedPoint& point = series_.points[i];
  point.x = x;
  if (series_.parameter == SweepParameter::kPerformanceBound) {
    // A pinned count stays pinned across the bound grid (the `segments=M`
    // semantics of the solve path); 0 searches every count.
    point.best = fixed_segments_ > 0
                     ? shared_->solve_segments(x, fixed_segments_)
                     : shared_->solve(x);
    point.single = shared_->solve_segments(x, 1);
  } else {
    const auto m = static_cast<unsigned>(std::floor(x + 0.5));
    point.best = shared_->solve_segments(options_.rho, m);
    point.single = shared_->solve_segments(options_.rho, 1);
  }
}

InterleavedSeries run_interleaved_sweep(const core::ModelParams& base,
                                        std::string configuration,
                                        SweepParameter parameter,
                                        const std::vector<double>& grid,
                                        unsigned max_segments,
                                        unsigned fixed_segments,
                                        const SweepOptions& options) {
  InterleavedPanelSweep panel(base, std::move(configuration), parameter,
                              grid, max_segments, fixed_segments, options);
  panel.prepare();
  parallel_for(options.pool, panel.point_count(),
               [&panel](std::size_t i) { panel.solve_point(i); });
  return panel.take();
}

InterleavedSeries run_interleaved_sweep(const core::ModelParams& base,
                                        std::string configuration,
                                        SweepParameter parameter,
                                        unsigned max_segments,
                                        unsigned fixed_segments,
                                        const SweepOptions& options) {
  return run_interleaved_sweep(
      base, std::move(configuration), parameter,
      interleaved_grid(parameter, options.points, max_segments),
      max_segments, fixed_segments, options);
}

Series to_series(const InterleavedSeries& figure) {
  // "best_m", not "segments": the segments-axis panel's x column already
  // carries that name, and a duplicate header breaks key-by-name
  // consumers of the CSV.
  Series series(to_string(figure.parameter),
                {"best_m", "sigma1", "sigma2", "Wopt", "energy", "time",
                 "energy1", "saving"});
  constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
  for (const auto& point : figure.points) {
    const auto& best = point.best;
    const auto& one = point.single;
    series.add_row(
        point.x,
        {best.feasible ? static_cast<double>(best.segments) : kNaN,
         best.feasible ? best.sigma1 : kNaN,
         best.feasible ? best.sigma2 : kNaN,
         best.feasible ? best.w_opt : kNaN,
         best.feasible ? best.energy_overhead : kNaN,
         best.feasible ? best.time_overhead : kNaN,
         one.feasible ? one.energy_overhead : kNaN,
         // A saving only exists where both patterns do; rendering 0 at an
         // infeasible point would plot as "feasible, no gain".
         best.feasible && one.feasible ? point.energy_saving() : kNaN});
  }
  return series;
}

}  // namespace rexspeed::sweep
