#include "rexspeed/sweep/section42_tables.hpp"

#include <limits>
#include <memory>

namespace rexspeed::sweep {

namespace {

/// Shared row builder: one row per first speed off a full solve, with the
/// global best marked — identical whichever backend produced the solution.
std::vector<SpeedPairRow> rows_from_solution(
    const core::BiCritSolution& solution, const std::vector<double>& speeds) {
  std::vector<SpeedPairRow> rows;
  rows.reserve(speeds.size());
  double best_energy = std::numeric_limits<double>::infinity();
  std::size_t best_index = 0;
  for (std::size_t i = 0; i < speeds.size(); ++i) {
    const core::PairSolution best = solution.best_for_sigma1_index(i);
    SpeedPairRow row;
    row.sigma1 = speeds[i];
    row.feasible = best.feasible;
    if (best.feasible) {
      row.best_sigma2 = best.sigma2;
      row.w_opt = best.w_opt;
      row.energy_overhead = best.energy_overhead;
      if (best.energy_overhead < best_energy) {
        best_energy = best.energy_overhead;
        best_index = rows.size();
      }
    }
    rows.push_back(row);
  }
  if (best_energy < std::numeric_limits<double>::infinity()) {
    rows[best_index].is_global_best = true;
  }
  return rows;
}

}  // namespace

std::vector<SpeedPairRow> speed_pair_table(
    const core::SolverBackend& backend, double rho) {
  return rows_from_solution(
      backend.solve_report(rho, core::SpeedPolicy::kTwoSpeed),
      backend.params().speeds);
}

std::vector<SpeedPairRow> speed_pair_table(const core::ModelParams& params,
                                           double rho, core::EvalMode mode) {
  const std::unique_ptr<core::SolverBackend> backend =
      core::make_mode_backend(params, mode);
  backend->prepare();
  return speed_pair_table(*backend, rho);
}

const std::vector<double>& section42_bounds() {
  static const std::vector<double> kBounds = {8.0, 3.0, 1.775, 1.4};
  return kBounds;
}

}  // namespace rexspeed::sweep
