#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "rexspeed/core/bicrit_solver.hpp"
#include "rexspeed/core/exact_solver.hpp"
#include "rexspeed/platform/configuration.hpp"
#include "rexspeed/sweep/series.hpp"
#include "rexspeed/sweep/thread_pool.hpp"

namespace rexspeed::sweep {

/// The six parameters the paper sweeps in Figures 2–14, plus the segment
/// count of the interleaved-verification extension.
enum class SweepParameter {
  kCheckpointTime,   ///< C (s)          — Figs. 2, 8–14 row 1
  kVerificationTime, ///< V (s)          — Figs. 3, 8–14 row 2
  kErrorRate,        ///< λ (1/s), log   — Figs. 4, 8–14 row 3
  kPerformanceBound, ///< ρ              — Figs. 5, 8–14 row 4
  kIdlePower,        ///< Pidle (mW)     — Figs. 6, 8–14 row 5
  kIoPower,          ///< Pio (mW)       — Figs. 7, 8–14 row 6
  kSegments,         ///< verifications per pattern m — interleaved panels
                     ///< only (see interleaved_sweeps.hpp); rejected by the
                     ///< regular two-speed PanelSweep kernel
};

[[nodiscard]] const char* to_string(SweepParameter parameter) noexcept;

/// Inverse of to_string: parses a sweep-parameter name ("C", "V",
/// "lambda", "rho", "Pidle", "Pio", "segments"). Returns nullopt for
/// anything else.
[[nodiscard]] std::optional<SweepParameter> parse_sweep_parameter(
    std::string_view name) noexcept;

/// One x position of a figure: the two-speed optimum next to the
/// single-speed baseline (the paper's solid vs dotted curves).
struct FigurePoint {
  double x = 0.0;
  core::PairSolution two_speed;     ///< best (σ1, σ2) solution
  core::PairSolution single_speed;  ///< best σ2 = σ1 solution
  /// True when the bound was unachievable and the min-ρ fallback policy is
  /// reported instead (the paper's figures keep plotting there; see
  /// BiCritSolver::min_rho_solution).
  bool two_speed_fallback = false;
  bool single_speed_fallback = false;

  /// Energy saved by allowing a different re-execution speed, as a
  /// fraction of the single-speed overhead (the paper's "up to 35%").
  [[nodiscard]] double energy_saving() const noexcept;
};

/// A full figure panel: the swept parameter and one point per x value.
struct FigureSeries {
  SweepParameter parameter = SweepParameter::kCheckpointTime;
  std::string configuration;  ///< e.g. "Atlas/Crusoe"
  double rho = 0.0;           ///< performance bound (x value when swept)
  std::vector<FigurePoint> points;

  /// Largest energy_saving() over all points with both solutions feasible.
  [[nodiscard]] double max_energy_saving() const noexcept;
};

/// Sweep options; defaults reproduce the paper's setup (§4.1: ρ = 3, Pio =
/// dynamic power at the lowest speed, default grids matching the figures'
/// axis ranges).
struct SweepOptions {
  double rho = 3.0;
  std::size_t points = 51;
  core::EvalMode mode = core::EvalMode::kFirstOrder;
  /// When the bound is unachievable at some x, report the minimum-ρ
  /// best-effort policy instead of an empty point (matches the paper's
  /// figures, which plot the max-speed solution beyond the feasibility
  /// horizon of the λ and ρ sweeps).
  bool min_rho_fallback = true;
  /// Optional pool; null runs serially.
  ThreadPool* pool = nullptr;
};

/// Default grid for a parameter, matching the paper's axis ranges:
/// C, V, Pidle, Pio ∈ [0, 5000]; ρ ∈ [1, 3.5]; λ ∈ [1e-6, 1e-2]
/// geometrically spaced.
[[nodiscard]] std::vector<double> default_grid(SweepParameter parameter,
                                               std::size_t points);

/// Applies one swept value to a parameter bundle (returns a copy).
/// Sweeping ρ leaves the params untouched (ρ is passed to the solver).
[[nodiscard]] core::ModelParams apply_parameter(
    const core::ModelParams& base, SweepParameter parameter, double value);

/// The six panel parameters of a Figure 8–14 composite, in figure order
/// (C, V, λ, ρ, Pidle, Pio). This is the panel list every composite runner
/// iterates, so batched drivers can flatten it themselves.
[[nodiscard]] const std::vector<SweepParameter>& all_sweep_parameters();

/// One figure point off a cached solver: both speed policies plus their
/// min-ρ fallbacks resolve against the same precomputed expansions. This
/// is the per-grid-point kernel of every sweep.
[[nodiscard]] FigurePoint solve_figure_point(const core::BiCritSolver& solver,
                                             double x, double rho,
                                             const SweepOptions& options);

/// The same kernel off the cached exact backend (options.mode is implied
/// to be kExactOptimize — the solver has no other mode). Infeasible
/// bounds degrade to ExactSolver::min_rho_solution, the exact-model
/// fallback, when options.min_rho_fallback is set.
[[nodiscard]] FigurePoint solve_figure_point(const core::ExactSolver& solver,
                                             double x, double rho,
                                             const SweepOptions& options);

/// One panel prepared for point-by-point execution: base parameters, grid,
/// the ρ-sweep shared-solver fast path, and the preallocated output
/// series. `run_figure_sweep` drives one with parallel_for; the campaign
/// runner flattens many into a single task stream. Both therefore run the
/// exact same setup and per-point kernel — bit-identical results by
/// construction, not by parallel maintenance.
///
/// ρ panels share ONE solver across the whole grid (apply_parameter is
/// the identity there): the cached BiCritSolver for the closed-form
/// modes, and — for EvalMode::kExactOptimize — the cached
/// core::ExactSolver, so exact-mode ρ sweeps are feasibility math on
/// precomputed curve optima instead of a full numeric optimization per
/// point (bench_exact measures the difference).
///
/// Construction is two-phase like InterleavedPanelSweep: the constructor
/// validates everything (cheap, throws), prepare() pays the exact cache's
/// per-pair curve optimization when the panel needs one — the split lets
/// the campaign runner build many panels' caches across its pool.
/// prepare() must complete before the first solve_point and touches only
/// this panel's cache; solve_point(i) writes only points[i], so distinct
/// panels prepare — and distinct indices solve — concurrently without
/// synchronization.
class PanelSweep {
 public:
  /// Throws std::invalid_argument on an empty grid.
  PanelSweep(core::ModelParams base, std::string configuration,
             SweepParameter parameter, std::vector<double> grid,
             SweepOptions options);

  [[nodiscard]] std::size_t point_count() const noexcept {
    return grid_.size();
  }

  /// True until prepare() has built the cache the panel needs (always
  /// false for panels that need none) — lets batched drivers skip the
  /// prepare pass for plans that would no-op.
  [[nodiscard]] bool needs_prepare() const noexcept {
    return wants_exact_cache_ && !shared_exact_;
  }

  /// Builds the exact ρ-panel cache (idempotent; no-op for every other
  /// panel). Uses options.pool, when set, to parallelize the per-pair
  /// curve optimization — the cache is bit-identical either way. Must
  /// complete before the first solve_point; never throws on a
  /// constructed plan.
  void prepare();

  /// Solves grid point `i` into its series slot (prepare() first).
  void solve_point(std::size_t i);

  /// Moves the finished panel out (call once every point is solved).
  [[nodiscard]] FigureSeries take() { return std::move(series_); }

 private:
  core::ModelParams base_;
  std::optional<core::BiCritSolver> shared_;       ///< ρ panels only
  std::optional<core::ExactSolver> shared_exact_;  ///< exact ρ panels only
  bool wants_exact_cache_ = false;
  SweepOptions options_;
  std::vector<double> grid_;
  FigureSeries series_;
};

/// Runs one figure panel over an explicit grid, starting from an explicit
/// parameter bundle (`configuration` is the label recorded in the series).
/// This is the primitive the configuration overloads delegate to; scenario
/// drivers use it so model-parameter overrides reach the sweep.
[[nodiscard]] FigureSeries run_figure_sweep(
    const core::ModelParams& base, std::string configuration,
    SweepParameter parameter, const std::vector<double>& grid,
    const SweepOptions& options = {});

/// Runs one figure panel for a configuration over an explicit grid.
[[nodiscard]] FigureSeries run_figure_sweep(
    const platform::Configuration& config, SweepParameter parameter,
    const std::vector<double>& grid, const SweepOptions& options = {});

/// Same, with the default grid.
[[nodiscard]] FigureSeries run_figure_sweep(
    const platform::Configuration& config, SweepParameter parameter,
    const SweepOptions& options = {});

/// All six panels of a Figure 8–14 style composite off an explicit
/// parameter bundle.
[[nodiscard]] std::vector<FigureSeries> run_all_sweeps(
    const core::ModelParams& base, std::string configuration,
    const SweepOptions& options = {});

/// All six panels of a Figure 8–14 style composite.
[[nodiscard]] std::vector<FigureSeries> run_all_sweeps(
    const platform::Configuration& config, const SweepOptions& options = {});

/// Flattens a figure panel into a plain numeric Series (columns: sigma1,
/// sigma2, Wopt2, energy2, sigma, Wopt1, energy1, saving) for CSV/gnuplot
/// export. Infeasible points become NaN cells (rendered as gaps).
[[nodiscard]] Series to_series(const FigureSeries& figure);

}  // namespace rexspeed::sweep
