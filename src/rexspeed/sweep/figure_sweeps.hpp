#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "rexspeed/core/bicrit_solver.hpp"
#include "rexspeed/core/sweep_axis.hpp"
#include "rexspeed/platform/configuration.hpp"
#include "rexspeed/sweep/series.hpp"
#include "rexspeed/sweep/thread_pool.hpp"

namespace rexspeed::sweep {

/// The sweep layer's historical name for the axis enum, now shared with
/// core so solver backends can advertise the axes they support
/// (core::BackendCapabilities::axes) without depending on this layer.
using SweepParameter = core::SweepAxis;
using core::to_string;

/// Inverse of to_string: parses a sweep-parameter name ("C", "V",
/// "lambda", "rho", "Pidle", "Pio", "segments"). Returns nullopt for
/// anything else.
[[nodiscard]] std::optional<SweepParameter> parse_sweep_parameter(
    std::string_view name) noexcept;

/// One x position of a figure: the two-speed optimum next to the
/// single-speed baseline (the paper's solid vs dotted curves).
struct FigurePoint {
  double x = 0.0;
  core::PairSolution two_speed;     ///< best (σ1, σ2) solution
  core::PairSolution single_speed;  ///< best σ2 = σ1 solution
  /// True when the bound was unachievable and the min-ρ fallback policy is
  /// reported instead (the paper's figures keep plotting there; see
  /// BiCritSolver::min_rho_solution).
  bool two_speed_fallback = false;
  bool single_speed_fallback = false;

  /// Energy saved by allowing a different re-execution speed, as a
  /// fraction of the single-speed overhead (the paper's "up to 35%").
  [[nodiscard]] double energy_saving() const noexcept;
};

/// A full figure panel: the swept parameter and one point per x value.
/// This is the typed pair-backend view of the generic sweep::PanelSeries
/// (see panel_sweep.hpp), kept as the export/analysis currency.
struct FigureSeries {
  SweepParameter parameter = SweepParameter::kCheckpointTime;
  std::string configuration;  ///< e.g. "Atlas/Crusoe"
  double rho = 0.0;           ///< performance bound (x value when swept)
  std::vector<FigurePoint> points;

  /// Largest energy_saving() over all points with both solutions feasible.
  [[nodiscard]] double max_energy_saving() const noexcept;
};

/// Whether a ρ panel hands its whole grid to the backend in one batched
/// call (core::SolverBackend::solve_rho_batch — the SIMD/classify kernel
/// path) instead of solving point by point.
enum class BatchMode {
  kAuto,  ///< batched whenever the backend advertises batched_rho
  kOn,    ///< require it: a ρ panel whose backend cannot batch throws
  kOff,   ///< force the pointwise per-point path
};

/// Sweep options; defaults reproduce the paper's setup (§4.1: ρ = 3, Pio =
/// dynamic power at the lowest speed, default grids matching the figures'
/// axis ranges).
struct SweepOptions {
  double rho = 3.0;
  std::size_t points = 51;
  core::EvalMode mode = core::EvalMode::kFirstOrder;
  /// When the bound is unachievable at some x, report the minimum-ρ
  /// best-effort policy instead of an empty point (matches the paper's
  /// figures, which plot the max-speed solution beyond the feasibility
  /// horizon of the λ and ρ sweeps).
  bool min_rho_fallback = true;
  /// Batched vs pointwise ρ-grid evaluation (both produce the same bits;
  /// kOff exists for benchmarking and bisection).
  BatchMode batch = BatchMode::kAuto;
  /// Chain warm starts along model-axis grids on backends that advertise
  /// warm_start_chain (each point's numeric bracketing seeded from its
  /// neighbor's optimum). Equivalent to cold starts within numeric
  /// tolerance; off reproduces the historical cold path bit for bit.
  bool warm_start_chain = true;
  /// Optional pool; null runs serially.
  ThreadPool* pool = nullptr;
};

/// Default grid for a parameter, matching the paper's axis ranges:
/// C, V, Pidle, Pio ∈ [0, 5000]; ρ ∈ [1, 3.5]; λ ∈ [1e-6, 1e-2]
/// geometrically spaced; segments = the integer grid 1..points.
[[nodiscard]] std::vector<double> default_grid(SweepParameter parameter,
                                               std::size_t points);

/// Applies one swept value to a parameter bundle (returns a copy).
/// Sweeping ρ leaves the params untouched (ρ is passed to the solver).
[[nodiscard]] core::ModelParams apply_parameter(
    const core::ModelParams& base, SweepParameter parameter, double value);

/// The six panel parameters of a Figure 8–14 composite, in figure order
/// (C, V, λ, ρ, Pidle, Pio). This is the panel list every pair backend
/// advertises (capabilities().axes); batched drivers can flatten it
/// themselves.
[[nodiscard]] const std::vector<SweepParameter>& all_sweep_parameters();

/// Runs one figure panel over an explicit grid, starting from an explicit
/// parameter bundle (`configuration` is the label recorded in the series).
/// A convenience wrapper over the generic backend panel (panel_sweep.hpp)
/// for the closed-form modes; scenario drivers use it so model-parameter
/// overrides reach the sweep.
[[nodiscard]] FigureSeries run_figure_sweep(
    const core::ModelParams& base, std::string configuration,
    SweepParameter parameter, const std::vector<double>& grid,
    const SweepOptions& options = {});

/// Runs one figure panel for a configuration over an explicit grid.
[[nodiscard]] FigureSeries run_figure_sweep(
    const platform::Configuration& config, SweepParameter parameter,
    const std::vector<double>& grid, const SweepOptions& options = {});

/// Same, with the default grid.
[[nodiscard]] FigureSeries run_figure_sweep(
    const platform::Configuration& config, SweepParameter parameter,
    const SweepOptions& options = {});

/// All six panels of a Figure 8–14 style composite off an explicit
/// parameter bundle.
[[nodiscard]] std::vector<FigureSeries> run_all_sweeps(
    const core::ModelParams& base, std::string configuration,
    const SweepOptions& options = {});

/// All six panels of a Figure 8–14 style composite.
[[nodiscard]] std::vector<FigureSeries> run_all_sweeps(
    const platform::Configuration& config, const SweepOptions& options = {});

/// Flattens a figure panel into a plain numeric Series (columns: sigma1,
/// sigma2, Wopt2, energy2, sigma, Wopt1, energy1, saving) for CSV/gnuplot
/// export. Infeasible points become NaN cells (rendered as gaps).
[[nodiscard]] Series to_series(const FigureSeries& figure);

}  // namespace rexspeed::sweep
