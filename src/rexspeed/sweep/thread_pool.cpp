#include "rexspeed/sweep/thread_pool.hpp"

#include <algorithm>

namespace rexspeed::sweep {

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lock(mutex_);
    queue_.push(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      work_available_.wait(lock,
                           [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and drained
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
    {
      std::lock_guard lock(mutex_);
      if (--in_flight_ == 0) all_done_.notify_all();
    }
  }
}

void parallel_for(ThreadPool* pool, std::size_t count,
                  const std::function<void(std::size_t)>& fn) {
  if (pool == nullptr || pool->thread_count() <= 1 || count <= 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  for (std::size_t i = 0; i < count; ++i) {
    pool->submit([&fn, i] { fn(i); });
  }
  pool->wait_idle();
}

std::function<void(std::size_t, const std::function<void(std::size_t)>&)>
make_parallel_build(ThreadPool* pool) {
  if (pool == nullptr || pool->thread_count() <= 1) return {};
  return [pool](std::size_t count,
                const std::function<void(std::size_t)>& fn) {
    parallel_for(pool, count, fn);
  };
}

}  // namespace rexspeed::sweep
