#pragma once

#include <vector>

#include "rexspeed/core/bicrit_solver.hpp"
#include "rexspeed/core/exact_solver.hpp"

namespace rexspeed::sweep {

/// One row of the §4.2 tables: for a fixed first speed σ1, the best second
/// speed (if any second speed satisfies the bound) with its Wopt and
/// energy overhead. `is_global_best` marks the row the paper prints bold.
struct SpeedPairRow {
  double sigma1 = 0.0;
  bool feasible = false;
  double best_sigma2 = 0.0;
  double w_opt = 0.0;
  double energy_overhead = 0.0;
  bool is_global_best = false;
};

/// Reproduces one §4.2 table for a given performance bound ρ off a cached
/// solver: one row per available speed σ1 (in speed-set order). Reusing
/// one solver across the four paper bounds computes the O(K²) expansions
/// once (engine::SolverContext::solver() hands one out).
[[nodiscard]] std::vector<SpeedPairRow> speed_pair_table(
    const core::BiCritSolver& solver, double rho,
    core::EvalMode mode = core::EvalMode::kFirstOrder);

/// The same table off the cached exact backend (mode is implied:
/// ExactSolver only answers kExactOptimize). Reusing one solver across
/// the four paper bounds pays the per-pair curve optimization once.
[[nodiscard]] std::vector<SpeedPairRow> speed_pair_table(
    const core::ExactSolver& solver, double rho);

/// Convenience overload building a throwaway solver.
[[nodiscard]] std::vector<SpeedPairRow> speed_pair_table(
    const core::ModelParams& params, double rho,
    core::EvalMode mode = core::EvalMode::kFirstOrder);

/// The four bounds of §4.2, in paper order.
[[nodiscard]] const std::vector<double>& section42_bounds();

}  // namespace rexspeed::sweep
