#pragma once

#include <vector>

#include "rexspeed/core/solver_backend.hpp"

namespace rexspeed::sweep {

/// One row of the §4.2 tables: for a fixed first speed σ1, the best second
/// speed (if any second speed satisfies the bound) with its Wopt and
/// energy overhead. `is_global_best` marks the row the paper prints bold.
struct SpeedPairRow {
  double sigma1 = 0.0;
  bool feasible = false;
  double best_sigma2 = 0.0;
  double w_opt = 0.0;
  double energy_overhead = 0.0;
  bool is_global_best = false;
};

/// Reproduces one §4.2 table for a given performance bound ρ off a
/// prepared solver backend — THE table entry point; every mode routes here
/// (the backend must advertise capabilities().pair_table; the interleaved
/// backend does not and throws std::logic_error). Reusing one backend
/// across the four paper bounds pays its cache exactly once.
[[nodiscard]] std::vector<SpeedPairRow> speed_pair_table(
    const core::SolverBackend& backend, double rho);

/// Convenience overload building (and preparing) a throwaway backend for
/// the mode over the given parameters.
[[nodiscard]] std::vector<SpeedPairRow> speed_pair_table(
    const core::ModelParams& params, double rho,
    core::EvalMode mode = core::EvalMode::kFirstOrder);

/// The four bounds of §4.2, in paper order.
[[nodiscard]] const std::vector<double>& section42_bounds();

}  // namespace rexspeed::sweep
