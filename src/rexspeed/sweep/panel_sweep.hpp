#pragma once

#include <memory>
#include <string>
#include <vector>

#include "rexspeed/core/solver_backend.hpp"
#include "rexspeed/sweep/figure_sweeps.hpp"
#include "rexspeed/sweep/interleaved_sweeps.hpp"

namespace rexspeed::sweep {

/// A full backend-agnostic panel: the swept axis and one PanelPoint per
/// grid value, tagged with the backend's solution kind. This is what the
/// unified sweep/campaign paths produce for every mode; the typed
/// FigureSeries / InterleavedSeries views (to_figure_series /
/// to_interleaved_series) exist for export and analysis compatibility.
struct PanelSeries {
  SweepParameter parameter = SweepParameter::kCheckpointTime;
  std::string configuration;  ///< e.g. "Atlas/Crusoe"
  double rho = 0.0;           ///< performance bound (x value when swept)
  core::SolutionKind kind = core::SolutionKind::kPair;
  unsigned max_segments = 1;  ///< search cap (interleaved panels only)
  std::vector<core::PanelPoint> points;

  /// Largest energy_saving() over all points with both solutions feasible.
  [[nodiscard]] double max_energy_saving() const noexcept;
};

/// Typed views over a generic panel, byte-compatible with the historical
/// series types (every export stem, CSV column and gnuplot artifact is
/// unchanged). Throw std::invalid_argument on a kind mismatch.
[[nodiscard]] FigureSeries to_figure_series(const PanelSeries& panel);
[[nodiscard]] InterleavedSeries to_interleaved_series(
    const PanelSeries& panel);

/// Flattens any panel into a plain numeric Series for CSV/gnuplot export,
/// dispatching on the panel's kind (pair panels keep the figure columns,
/// interleaved panels the interleaved ones).
[[nodiscard]] Series to_series(const PanelSeries& panel);

/// Grid for any panel axis: the paper's default grid for the six figure
/// axes; the integer grid 1..max_segments for the segments axis.
[[nodiscard]] std::vector<double> panel_grid(SweepParameter parameter,
                                             std::size_t points,
                                             unsigned max_segments);

/// THE generic panel sweep: one class for every backend, replacing the
/// historical twin PanelSweep / InterleavedPanelSweep pair. The panel asks
/// the backend which axes it supports (capabilities().axes) and whether
/// one prepared instance serves the whole grid (shared_axes — ρ for every
/// backend, segments for the interleaved one); on other axes each point
/// rebinds a cheap per-point backend over apply_parameter'd params,
/// reproducing the historical per-point path of its mode bit for bit.
///
/// Construction is two-phase: the constructor validates everything (cheap,
/// throws), prepare() pays the backend's deferred cache — the dominant
/// cost of exact and interleaved ρ panels. The split lets the campaign
/// runner build many panels' caches across its pool (prepare() cannot
/// throw on a constructed plan). Both run_panel_sweep and the campaign's
/// flattened task stream drive this same setup and per-point kernel, so
/// their results are bit-identical by construction.
///
/// prepare() touches only this panel's backend and solve_point(i) writes
/// only points[i], so distinct panels prepare — and distinct indices
/// solve — concurrently without synchronization.
class PanelSweep {
 public:
  /// How the panel's points want to be scheduled: independent per-point
  /// tasks, or one whole-panel unit (batched ρ grids, where the backend
  /// takes the entire grid in one call, and warm-start chains, where each
  /// point seeds the next and order is the point).
  enum class Granularity { kPerPoint, kWholePanel };

  /// Takes ownership of the panel's backend. Throws std::invalid_argument
  /// on a null backend, an empty grid, an axis outside
  /// backend->capabilities().axes, a non-positive/non-finite bound or
  /// ρ-grid value, a segments-grid value outside [1, max_segments], or
  /// BatchMode::kOn on a ρ panel whose backend cannot batch — everything
  /// a later prepare() or solve would otherwise trip over.
  PanelSweep(std::unique_ptr<core::SolverBackend> backend,
             std::string configuration, SweepParameter parameter,
             std::vector<double> grid, SweepOptions options);

  [[nodiscard]] std::size_t point_count() const noexcept {
    return grid_.size();
  }

  [[nodiscard]] Granularity granularity() const noexcept {
    return batched_ || chained_ ? Granularity::kWholePanel
                                : Granularity::kPerPoint;
  }

  /// True until prepare() has built the cache the panel needs (always
  /// false for panels that need none) — lets batched drivers skip the
  /// prepare pass for plans that would no-op.
  [[nodiscard]] bool needs_prepare() const noexcept {
    return shared_ && backend_->needs_prepare();
  }

  /// Builds the shared backend's deferred cache (idempotent; no-op for
  /// panels whose backend needs none or is rebuilt per point). Uses
  /// options.pool, when set, to parallelize independent cache entries —
  /// the cache is bit-identical either way. Must complete before the
  /// first solve_point; never throws on a constructed plan.
  void prepare();

  /// Solves grid point `i` into its series slot (prepare() first). Only
  /// valid on kPerPoint panels — whole-panel plans go through
  /// solve_all().
  void solve_point(std::size_t i);

  /// Solves the whole panel into its series slots (prepare() first):
  /// batched ρ panels hand the entire grid to the backend's
  /// solve_rho_batch (bit-identical to the per-point loop); warm-chained
  /// model-axis panels walk the grid in order, seeding each point's
  /// rebind from its neighbor's harvested optima; anything else runs the
  /// plain per-point loop serially.
  void solve_all();

  /// Relative cost of one point of this panel (the backend's
  /// capabilities().cost_weight) — the campaign scheduler's static
  /// ordering prior (see measure_cost for the measured key).
  [[nodiscard]] double cost_weight() const noexcept {
    return backend_->capabilities().cost_weight;
  }

  /// The campaign scheduler's measured ordering key: times one
  /// representative work unit (seconds) and returns the estimated cost of
  /// the REMAINING work. Per-point panels solve point 0 for real — the
  /// stream must then cover indices [first_pending(), point_count()) —
  /// while whole-panel plans time one point-equivalent probe whose result
  /// the later solve_all() recomputes identically. Call after prepare().
  [[nodiscard]] double measure_cost();

  /// First grid index the task stream still owes (1 after a per-point
  /// measure_cost(), else 0).
  [[nodiscard]] std::size_t first_pending() const noexcept {
    return first_pending_;
  }

  [[nodiscard]] const core::SolverBackend& backend() const noexcept {
    return *backend_;
  }

  /// Moves the finished panel out (call once every point is solved).
  [[nodiscard]] PanelSeries take() { return std::move(series_); }

 private:
  std::unique_ptr<core::SolverBackend> backend_;
  bool shared_ = false;
  bool batched_ = false;
  bool chained_ = false;
  std::size_t first_pending_ = 0;
  SweepOptions options_;
  std::vector<double> grid_;
  PanelSeries series_;
};

/// Runs one panel over an explicit grid off the given backend
/// (`configuration` is the label recorded in the series). Parallel when
/// options.pool is set, serial otherwise — bit-identical either way.
[[nodiscard]] PanelSeries run_panel_sweep(
    std::unique_ptr<core::SolverBackend> backend, std::string configuration,
    SweepParameter parameter, std::vector<double> grid,
    const SweepOptions& options = {});

/// One figure point (x = the bound) off any pair backend: both speed
/// policies plus their min-ρ fallbacks resolve against the backend's
/// prepared caches — the thin FigurePoint view over
/// core::SolverBackend::solve_panel_point, which is the per-grid-point
/// kernel of every sweep.
[[nodiscard]] FigurePoint solve_figure_point(
    const core::SolverBackend& backend, double rho,
    const SweepOptions& options);

}  // namespace rexspeed::sweep
