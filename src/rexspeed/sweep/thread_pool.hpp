#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace rexspeed::sweep {

/// Fixed-size worker pool for embarrassingly parallel sweeps.
///
/// Design notes: tasks are type-erased `std::function<void()>`; completion
/// is tracked with a counter + condition variable rather than futures so
/// `wait_idle()` can cheaply fence an arbitrary batch. Exceptions escaping
/// a task are considered programmer error and terminate (tasks in this
/// library validate inputs before submission).
class ThreadPool {
 public:
  /// `threads == 0` uses std::thread::hardware_concurrency().
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task.
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has completed.
  void wait_idle();

  [[nodiscard]] unsigned thread_count() const noexcept {
    return static_cast<unsigned>(workers_.size());
  }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
};

/// Runs `fn(i)` for i in [0, count) across the pool and waits for all.
/// With a null pool the loop runs inline (serial fallback).
void parallel_for(ThreadPool* pool, std::size_t count,
                  const std::function<void(std::size_t)>& fn);

/// Wraps a pool into the construction-parallelizer hook shape the cache
/// builders take (core::ExactSolver::ParallelFor): a null or
/// single-threaded pool yields an empty hook — the builder's serial
/// path — so every call site applies the same guard.
[[nodiscard]] std::function<void(std::size_t,
                                 const std::function<void(std::size_t)>&)>
make_parallel_build(ThreadPool* pool);

}  // namespace rexspeed::sweep
