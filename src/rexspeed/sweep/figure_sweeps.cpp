#include "rexspeed/sweep/figure_sweeps.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <utility>

#include "rexspeed/sweep/grid.hpp"
#include "rexspeed/sweep/panel_sweep.hpp"

namespace rexspeed::sweep {

std::optional<SweepParameter> parse_sweep_parameter(
    std::string_view name) noexcept {
  return core::parse_sweep_axis(name);
}

double FigurePoint::energy_saving() const noexcept {
  if (!two_speed.feasible || !single_speed.feasible ||
      !(single_speed.energy_overhead > 0.0)) {
    return 0.0;
  }
  return 1.0 - two_speed.energy_overhead / single_speed.energy_overhead;
}

double FigureSeries::max_energy_saving() const noexcept {
  double best = 0.0;
  for (const auto& point : points) {
    best = std::max(best, point.energy_saving());
  }
  return best;
}

std::vector<double> default_grid(SweepParameter parameter,
                                 std::size_t points) {
  switch (parameter) {
    case SweepParameter::kCheckpointTime:
    case SweepParameter::kVerificationTime:
    case SweepParameter::kIdlePower:
    case SweepParameter::kIoPower:
      return linspace(0.0, 5000.0, points);
    case SweepParameter::kPerformanceBound:
      return linspace(1.0, 3.5, points);
    case SweepParameter::kErrorRate:
      return logspace(1e-6, 1e-2, points);
    case SweepParameter::kSegments: {
      // Integer segment counts 1..points (interleaved panels pass their
      // max_segments as the point count).
      std::vector<double> grid;
      grid.reserve(points);
      for (std::size_t m = 1; m <= points; ++m) {
        grid.push_back(static_cast<double>(m));
      }
      return grid;
    }
  }
  throw std::invalid_argument("default_grid: unknown parameter");
}

core::ModelParams apply_parameter(const core::ModelParams& base,
                                  SweepParameter parameter, double value) {
  core::ModelParams params = base;
  switch (parameter) {
    case SweepParameter::kCheckpointTime:
      params.checkpoint_s = value;
      // The paper keeps R = C while sweeping the checkpoint cost (§4.1
      // fixes R to the checkpointing time).
      params.recovery_s = value;
      break;
    case SweepParameter::kVerificationTime:
      params.verification_s = value;
      break;
    case SweepParameter::kErrorRate:
      params.lambda_silent = value;
      break;
    case SweepParameter::kPerformanceBound:
      break;  // handled by the solver call
    case SweepParameter::kIdlePower:
      params.idle_power_mw = value;
      break;
    case SweepParameter::kIoPower:
      params.io_power_mw = value;
      break;
    case SweepParameter::kSegments:
      break;  // handled by the interleaved solver call, params untouched
  }
  return params;
}

const std::vector<SweepParameter>& all_sweep_parameters() {
  static const std::vector<SweepParameter> kParameters = {
      SweepParameter::kCheckpointTime, SweepParameter::kVerificationTime,
      SweepParameter::kErrorRate,      SweepParameter::kPerformanceBound,
      SweepParameter::kIdlePower,      SweepParameter::kIoPower};
  return kParameters;
}

FigureSeries run_figure_sweep(const core::ModelParams& base,
                              std::string configuration,
                              SweepParameter parameter,
                              const std::vector<double>& grid,
                              const SweepOptions& options) {
  return to_figure_series(
      run_panel_sweep(core::make_mode_backend(base, options.mode),
                      std::move(configuration), parameter, grid, options));
}

FigureSeries run_figure_sweep(const platform::Configuration& config,
                              SweepParameter parameter,
                              const std::vector<double>& grid,
                              const SweepOptions& options) {
  return run_figure_sweep(core::ModelParams::from_configuration(config),
                          config.name(), parameter, grid, options);
}

FigureSeries run_figure_sweep(const platform::Configuration& config,
                              SweepParameter parameter,
                              const SweepOptions& options) {
  return run_figure_sweep(config, parameter,
                          default_grid(parameter, options.points), options);
}

Series to_series(const FigureSeries& figure) {
  Series series(to_string(figure.parameter),
                {"sigma1", "sigma2", "Wopt2", "energy2", "sigma", "Wopt1",
                 "energy1", "saving"});
  constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
  for (const auto& point : figure.points) {
    const auto& two = point.two_speed;
    const auto& one = point.single_speed;
    series.add_row(
        point.x,
        {two.feasible ? two.sigma1 : kNaN,
         two.feasible ? two.sigma2 : kNaN,
         two.feasible ? two.w_opt : kNaN,
         two.feasible ? two.energy_overhead : kNaN,
         one.feasible ? one.sigma1 : kNaN,
         one.feasible ? one.w_opt : kNaN,
         one.feasible ? one.energy_overhead : kNaN,
         point.energy_saving()});
  }
  return series;
}

std::vector<FigureSeries> run_all_sweeps(const core::ModelParams& base,
                                         std::string configuration,
                                         const SweepOptions& options) {
  std::vector<FigureSeries> all;
  all.reserve(all_sweep_parameters().size());
  for (const SweepParameter parameter : all_sweep_parameters()) {
    all.push_back(run_figure_sweep(base, configuration, parameter,
                                   default_grid(parameter, options.points),
                                   options));
  }
  return all;
}

std::vector<FigureSeries> run_all_sweeps(const platform::Configuration& config,
                                         const SweepOptions& options) {
  return run_all_sweeps(core::ModelParams::from_configuration(config),
                        config.name(), options);
}

}  // namespace rexspeed::sweep
