#include "rexspeed/sweep/figure_sweeps.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>
#include <stdexcept>
#include <utility>

#include "rexspeed/sweep/grid.hpp"

namespace rexspeed::sweep {

const char* to_string(SweepParameter parameter) noexcept {
  switch (parameter) {
    case SweepParameter::kCheckpointTime:
      return "C";
    case SweepParameter::kVerificationTime:
      return "V";
    case SweepParameter::kErrorRate:
      return "lambda";
    case SweepParameter::kPerformanceBound:
      return "rho";
    case SweepParameter::kIdlePower:
      return "Pidle";
    case SweepParameter::kIoPower:
      return "Pio";
    case SweepParameter::kSegments:
      return "segments";
  }
  return "unknown";
}

std::optional<SweepParameter> parse_sweep_parameter(
    std::string_view name) noexcept {
  for (const SweepParameter parameter : all_sweep_parameters()) {
    if (name == to_string(parameter)) return parameter;
  }
  // The segments axis is not one of the six composite panels, so it is not
  // in all_sweep_parameters(); it still parses as a first-class dimension.
  if (name == to_string(SweepParameter::kSegments)) {
    return SweepParameter::kSegments;
  }
  return std::nullopt;
}

double FigurePoint::energy_saving() const noexcept {
  if (!two_speed.feasible || !single_speed.feasible ||
      !(single_speed.energy_overhead > 0.0)) {
    return 0.0;
  }
  return 1.0 - two_speed.energy_overhead / single_speed.energy_overhead;
}

double FigureSeries::max_energy_saving() const noexcept {
  double best = 0.0;
  for (const auto& point : points) {
    best = std::max(best, point.energy_saving());
  }
  return best;
}

std::vector<double> default_grid(SweepParameter parameter,
                                 std::size_t points) {
  switch (parameter) {
    case SweepParameter::kCheckpointTime:
    case SweepParameter::kVerificationTime:
    case SweepParameter::kIdlePower:
    case SweepParameter::kIoPower:
      return linspace(0.0, 5000.0, points);
    case SweepParameter::kPerformanceBound:
      return linspace(1.0, 3.5, points);
    case SweepParameter::kErrorRate:
      return logspace(1e-6, 1e-2, points);
    case SweepParameter::kSegments: {
      // Integer segment counts 1..points (interleaved panels pass their
      // max_segments as the point count).
      std::vector<double> grid;
      grid.reserve(points);
      for (std::size_t m = 1; m <= points; ++m) {
        grid.push_back(static_cast<double>(m));
      }
      return grid;
    }
  }
  throw std::invalid_argument("default_grid: unknown parameter");
}

core::ModelParams apply_parameter(const core::ModelParams& base,
                                  SweepParameter parameter, double value) {
  core::ModelParams params = base;
  switch (parameter) {
    case SweepParameter::kCheckpointTime:
      params.checkpoint_s = value;
      // The paper keeps R = C while sweeping the checkpoint cost (§4.1
      // fixes R to the checkpointing time).
      params.recovery_s = value;
      break;
    case SweepParameter::kVerificationTime:
      params.verification_s = value;
      break;
    case SweepParameter::kErrorRate:
      params.lambda_silent = value;
      break;
    case SweepParameter::kPerformanceBound:
      break;  // handled by the solver call
    case SweepParameter::kIdlePower:
      params.idle_power_mw = value;
      break;
    case SweepParameter::kIoPower:
      params.io_power_mw = value;
      break;
    case SweepParameter::kSegments:
      break;  // handled by the interleaved solver call, params untouched
  }
  return params;
}

const std::vector<SweepParameter>& all_sweep_parameters() {
  static const std::vector<SweepParameter> kParameters = {
      SweepParameter::kCheckpointTime, SweepParameter::kVerificationTime,
      SweepParameter::kErrorRate,      SweepParameter::kPerformanceBound,
      SweepParameter::kIdlePower,      SweepParameter::kIoPower};
  return kParameters;
}

namespace {

// The two overloads below are the only solver-specific lines of the
// figure-point kernel: how a best pair is solved (BiCritSolver needs the
// eval mode; ExactSolver has only one). Everything downstream —
// fallback policy, point assembly — is shared so the first-order and
// exact panel paths cannot diverge.
core::PairSolution solve_best(const core::BiCritSolver& solver, double rho,
                              core::SpeedPolicy policy,
                              const SweepOptions& options) {
  return solver.solve(rho, policy, options.mode).best;
}

core::PairSolution solve_best(const core::ExactSolver& solver, double rho,
                              core::SpeedPolicy policy,
                              const SweepOptions& /*options*/) {
  return solver.solve(rho, policy).best;
}

template <typename Solver>
core::PairSolution best_with_fallback(const Solver& solver, double rho,
                                      core::SpeedPolicy policy,
                                      const SweepOptions& options,
                                      bool& used_fallback) {
  used_fallback = false;
  core::PairSolution best = solve_best(solver, rho, policy, options);
  if (!best.feasible && options.min_rho_fallback) {
    const core::PairSolution fallback = solver.min_rho_solution(policy);
    if (fallback.feasible) {
      best = fallback;
      used_fallback = true;
    }
  }
  return best;
}

template <typename Solver>
FigurePoint solve_figure_point_impl(const Solver& solver, double x,
                                    double rho,
                                    const SweepOptions& options) {
  FigurePoint point;
  point.x = x;
  point.two_speed =
      best_with_fallback(solver, rho, core::SpeedPolicy::kTwoSpeed, options,
                         point.two_speed_fallback);
  point.single_speed =
      best_with_fallback(solver, rho, core::SpeedPolicy::kSingleSpeed,
                         options, point.single_speed_fallback);
  return point;
}

}  // namespace

FigurePoint solve_figure_point(const core::BiCritSolver& solver, double x,
                               double rho, const SweepOptions& options) {
  return solve_figure_point_impl(solver, x, rho, options);
}

FigurePoint solve_figure_point(const core::ExactSolver& solver, double x,
                               double rho, const SweepOptions& options) {
  return solve_figure_point_impl(solver, x, rho, options);
}

PanelSweep::PanelSweep(core::ModelParams base, std::string configuration,
                       SweepParameter parameter, std::vector<double> grid,
                       SweepOptions options)
    : base_(std::move(base)), options_(options), grid_(std::move(grid)) {
  if (grid_.empty()) {
    throw std::invalid_argument("PanelSweep: empty grid");
  }
  if (parameter == SweepParameter::kSegments) {
    // The two-speed kernel has no notion of segments; the interleaved
    // panel family (sweep/interleaved_sweeps.hpp) owns that axis.
    throw std::invalid_argument(
        "PanelSweep: the segments axis needs the interleaved solver mode "
        "(set segments= or max_segments= on the scenario)");
  }
  // The pool's workers have no exception barrier (tasks must not throw),
  // so the bounds the solver would reject are rejected here instead: the
  // panel's ρ, and — for ρ panels, where each x IS the bound — the grid.
  if (!(options_.rho > 0.0) || !std::isfinite(options_.rho)) {
    throw std::invalid_argument("PanelSweep: rho must be positive and "
                                "finite");
  }
  if (parameter == SweepParameter::kPerformanceBound) {
    for (const double x : grid_) {
      if (!(x > 0.0) || !std::isfinite(x)) {
        throw std::invalid_argument(
            "PanelSweep: rho-sweep grid values must be positive and "
            "finite");
      }
    }
  }
  series_.parameter = parameter;
  series_.configuration = std::move(configuration);
  series_.rho = options_.rho;
  series_.points.resize(grid_.size());
  // ρ sweeps leave the model untouched (apply_parameter is the identity),
  // so every grid point shares one solver: the O(K²) expansions are
  // computed once for the whole panel instead of once per point. In
  // exact-optimize mode the shared solver is the cached exact backend —
  // its construction is the panel's dominant cost, so it is deferred to
  // prepare() (the campaign runner builds many across its pool).
  if (parameter == SweepParameter::kPerformanceBound) {
    if (options_.mode == core::EvalMode::kExactOptimize) {
      wants_exact_cache_ = true;
    } else {
      shared_.emplace(base_);
    }
  }
}

void PanelSweep::prepare() {
  if (!wants_exact_cache_ || shared_exact_) return;
  shared_exact_.emplace(base_, make_parallel_build(options_.pool));
}

void PanelSweep::solve_point(std::size_t i) {
  const double x = grid_[i];
  if (shared_exact_) {
    series_.points[i] = solve_figure_point(*shared_exact_, x, x, options_);
  } else if (shared_) {
    series_.points[i] = solve_figure_point(*shared_, x, x, options_);
  } else {
    const core::BiCritSolver solver(
        apply_parameter(base_, series_.parameter, x));
    series_.points[i] = solve_figure_point(solver, x, options_.rho, options_);
  }
}

FigureSeries run_figure_sweep(const core::ModelParams& base,
                              std::string configuration,
                              SweepParameter parameter,
                              const std::vector<double>& grid,
                              const SweepOptions& options) {
  PanelSweep panel(base, std::move(configuration), parameter, grid, options);
  panel.prepare();
  parallel_for(options.pool, panel.point_count(),
               [&panel](std::size_t i) { panel.solve_point(i); });
  return panel.take();
}

FigureSeries run_figure_sweep(const platform::Configuration& config,
                              SweepParameter parameter,
                              const std::vector<double>& grid,
                              const SweepOptions& options) {
  return run_figure_sweep(core::ModelParams::from_configuration(config),
                          config.name(), parameter, grid, options);
}

FigureSeries run_figure_sweep(const platform::Configuration& config,
                              SweepParameter parameter,
                              const SweepOptions& options) {
  return run_figure_sweep(config, parameter,
                          default_grid(parameter, options.points), options);
}

Series to_series(const FigureSeries& figure) {
  Series series(to_string(figure.parameter),
                {"sigma1", "sigma2", "Wopt2", "energy2", "sigma", "Wopt1",
                 "energy1", "saving"});
  constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
  for (const auto& point : figure.points) {
    const auto& two = point.two_speed;
    const auto& one = point.single_speed;
    series.add_row(
        point.x,
        {two.feasible ? two.sigma1 : kNaN,
         two.feasible ? two.sigma2 : kNaN,
         two.feasible ? two.w_opt : kNaN,
         two.feasible ? two.energy_overhead : kNaN,
         one.feasible ? one.sigma1 : kNaN,
         one.feasible ? one.w_opt : kNaN,
         one.feasible ? one.energy_overhead : kNaN,
         point.energy_saving()});
  }
  return series;
}

std::vector<FigureSeries> run_all_sweeps(const core::ModelParams& base,
                                         std::string configuration,
                                         const SweepOptions& options) {
  std::vector<FigureSeries> all;
  all.reserve(all_sweep_parameters().size());
  for (const SweepParameter parameter : all_sweep_parameters()) {
    all.push_back(run_figure_sweep(base, configuration, parameter,
                                   default_grid(parameter, options.points),
                                   options));
  }
  return all;
}

std::vector<FigureSeries> run_all_sweeps(const platform::Configuration& config,
                                         const SweepOptions& options) {
  return run_all_sweeps(core::ModelParams::from_configuration(config),
                        config.name(), options);
}

}  // namespace rexspeed::sweep
