#pragma once

#include <cstddef>
#include <vector>

namespace rexspeed::sweep {

/// `count` evenly spaced values over [lo, hi] (inclusive). count >= 2.
[[nodiscard]] std::vector<double> linspace(double lo, double hi,
                                           std::size_t count);

/// `count` geometrically spaced values over [lo, hi] (inclusive); both
/// bounds must be positive. Matches the log-scale x axes of Figures 4 and
/// 8–14 (λ sweeps).
[[nodiscard]] std::vector<double> logspace(double lo, double hi,
                                           std::size_t count);

}  // namespace rexspeed::sweep
