#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace rexspeed::sweep {

/// Column-oriented numeric table: one x column plus named y columns, all
/// equally long. This is the common shape of every figure the paper plots
/// (an x axis and a handful of curves).
class Series {
 public:
  Series(std::string x_name, std::vector<std::string> column_names);

  /// Appends one row; `values` must match the number of y columns.
  void add_row(double x, const std::vector<double>& values);

  [[nodiscard]] std::size_t size() const noexcept { return x_.size(); }
  [[nodiscard]] const std::string& x_name() const noexcept { return x_name_; }
  [[nodiscard]] const std::vector<std::string>& column_names() const noexcept {
    return column_names_;
  }
  [[nodiscard]] const std::vector<double>& x() const noexcept { return x_; }

  /// Column values by index or name (throws std::out_of_range).
  [[nodiscard]] const std::vector<double>& column(std::size_t index) const;
  [[nodiscard]] const std::vector<double>& column(
      const std::string& name) const;

 private:
  std::string x_name_;
  std::vector<std::string> column_names_;
  std::vector<double> x_;
  std::vector<std::vector<double>> columns_;
};

}  // namespace rexspeed::sweep
