#pragma once

#include <optional>
#include <string>
#include <vector>

#include "rexspeed/core/interleaved.hpp"
#include "rexspeed/sweep/figure_sweeps.hpp"
#include "rexspeed/sweep/series.hpp"

namespace rexspeed::sweep {

/// One x position of an interleaved panel: the best segmented pattern next
/// to the single-verification baseline (m = 1 — the paper's own pattern,
/// playing the role the single-speed curve plays in the regular figures).
struct InterleavedPoint {
  double x = 0.0;
  core::InterleavedSolution best;    ///< best m ∈ [1, max_segments]
  core::InterleavedSolution single;  ///< m = 1 baseline

  /// Energy saved by allowing m > 1 verifications per checkpoint, as a
  /// fraction of the baseline overhead.
  [[nodiscard]] double energy_saving() const noexcept;
};

/// A full interleaved panel: overhead vs ρ (parameter =
/// kPerformanceBound) or overhead vs segment count (kSegments).
struct InterleavedSeries {
  SweepParameter parameter = SweepParameter::kPerformanceBound;
  std::string configuration;  ///< e.g. "Hera/XScale"
  double rho = 0.0;           ///< performance bound (x value when swept)
  unsigned max_segments = 1;  ///< search cap behind `best`
  std::vector<InterleavedPoint> points;

  /// Largest energy_saving() over all points with both solutions feasible.
  [[nodiscard]] double max_energy_saving() const noexcept;
};

/// Grid for an interleaved axis: ρ reuses the paper's default ρ grid;
/// segments is the integer grid 1..max_segments. Throws
/// std::invalid_argument for any other parameter.
[[nodiscard]] std::vector<double> interleaved_grid(SweepParameter parameter,
                                                   std::size_t points,
                                                   unsigned max_segments);

/// One interleaved panel prepared for point-by-point execution — the
/// interleaved counterpart of PanelSweep, and like it the single setup +
/// kernel that both run_interleaved_sweep and the campaign runner's
/// flattened task stream drive, so their results are bit-identical by
/// construction. Both axes leave the model parameters untouched, so ONE
/// cached core::InterleavedSolver serves every grid point of the panel.
///
/// The construction is two-phase: the constructor validates everything
/// (cheap, throws), prepare() pays the per-(σ1,σ2,m) curve optimization —
/// the panel's dominant cost. The split lets the campaign runner build
/// many panels' solvers across its pool (prepare() cannot throw on a
/// validated plan) instead of serially at plan time.
///
/// prepare() touches only this panel's solver and solve_point(i) writes
/// only points[i], so distinct panels prepare — and distinct indices
/// solve — concurrently without synchronization.
class InterleavedPanelSweep {
 public:
  /// `fixed_segments` 0 searches every count in [1, max_segments] at each
  /// ρ point; a positive value pins the count (a `segments=M` scenario),
  /// matching the solve path's semantics. The segments axis ignores it
  /// (there x IS the count). Throws std::invalid_argument on an empty
  /// grid, a parameter outside {kPerformanceBound, kSegments}, a
  /// non-positive bound or grid value, invalid model params, λf ≠ 0,
  /// max_segments == 0, or fixed_segments > max_segments — everything a
  /// later prepare() or solve_point() would otherwise trip over.
  InterleavedPanelSweep(core::ModelParams base, std::string configuration,
                        SweepParameter parameter, std::vector<double> grid,
                        unsigned max_segments, unsigned fixed_segments,
                        SweepOptions options);

  [[nodiscard]] std::size_t point_count() const noexcept {
    return grid_.size();
  }

  /// Builds the cached solver (idempotent). Must complete before the
  /// first solve_point; never throws on a constructed plan.
  void prepare();

  /// Solves grid point `i` into its series slot (prepare() first).
  void solve_point(std::size_t i);

  /// Moves the finished panel out (call once every point is solved).
  [[nodiscard]] InterleavedSeries take() { return std::move(series_); }

 private:
  core::ModelParams base_;
  std::optional<core::InterleavedSolver> shared_;
  unsigned max_segments_;
  unsigned fixed_segments_;
  SweepOptions options_;
  std::vector<double> grid_;
  InterleavedSeries series_;
};

/// Runs one interleaved panel over an explicit grid, starting from an
/// explicit parameter bundle (`configuration` is the label recorded in the
/// series). `fixed_segments` as in InterleavedPanelSweep. Parallel when
/// options.pool is set, serial otherwise — bit-identical either way.
[[nodiscard]] InterleavedSeries run_interleaved_sweep(
    const core::ModelParams& base, std::string configuration,
    SweepParameter parameter, const std::vector<double>& grid,
    unsigned max_segments, unsigned fixed_segments = 0,
    const SweepOptions& options = {});

/// Same, with the default interleaved grid.
[[nodiscard]] InterleavedSeries run_interleaved_sweep(
    const core::ModelParams& base, std::string configuration,
    SweepParameter parameter, unsigned max_segments,
    unsigned fixed_segments = 0, const SweepOptions& options = {});

/// Flattens an interleaved panel into a plain numeric Series (columns:
/// best_m, sigma1, sigma2, Wopt, energy, time, energy1, saving — energy1
/// is the m = 1 baseline) for CSV/gnuplot export. Infeasible points become
/// NaN cells (rendered as gaps).
[[nodiscard]] Series to_series(const InterleavedSeries& figure);

}  // namespace rexspeed::sweep
