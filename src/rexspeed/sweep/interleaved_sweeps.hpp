#pragma once

#include <string>
#include <vector>

#include "rexspeed/core/interleaved.hpp"
#include "rexspeed/sweep/figure_sweeps.hpp"
#include "rexspeed/sweep/series.hpp"

namespace rexspeed::sweep {

/// One x position of an interleaved panel: the best segmented pattern next
/// to the single-verification baseline (m = 1 — the paper's own pattern,
/// playing the role the single-speed curve plays in the regular figures).
struct InterleavedPoint {
  double x = 0.0;
  core::InterleavedSolution best;    ///< best m ∈ [1, max_segments]
  core::InterleavedSolution single;  ///< m = 1 baseline

  /// Energy saved by allowing m > 1 verifications per checkpoint, as a
  /// fraction of the baseline overhead.
  [[nodiscard]] double energy_saving() const noexcept;
};

/// A full interleaved panel: overhead vs ρ (parameter =
/// kPerformanceBound) or overhead vs segment count (kSegments). This is
/// the typed interleaved-backend view of the generic sweep::PanelSeries
/// (see panel_sweep.hpp), kept as the export/analysis currency.
struct InterleavedSeries {
  SweepParameter parameter = SweepParameter::kPerformanceBound;
  std::string configuration;  ///< e.g. "Hera/XScale"
  double rho = 0.0;           ///< performance bound (x value when swept)
  unsigned max_segments = 1;  ///< search cap behind `best`
  std::vector<InterleavedPoint> points;

  /// Largest energy_saving() over all points with both solutions feasible.
  [[nodiscard]] double max_energy_saving() const noexcept;
};

/// Grid for an interleaved axis: ρ reuses the paper's default ρ grid;
/// segments is the integer grid 1..max_segments. Throws
/// std::invalid_argument for any other parameter.
[[nodiscard]] std::vector<double> interleaved_grid(SweepParameter parameter,
                                                   std::size_t points,
                                                   unsigned max_segments);

/// Runs one interleaved panel over an explicit grid, starting from an
/// explicit parameter bundle (`configuration` is the label recorded in the
/// series) — a convenience wrapper building a core::InterleavedBackend and
/// driving the generic panel sweep (panel_sweep.hpp). `fixed_segments` 0
/// searches every count in [1, max_segments] at each ρ point; a positive
/// value pins the count (a `segments=M` scenario). Parallel when
/// options.pool is set, serial otherwise — bit-identical either way.
[[nodiscard]] InterleavedSeries run_interleaved_sweep(
    const core::ModelParams& base, std::string configuration,
    SweepParameter parameter, const std::vector<double>& grid,
    unsigned max_segments, unsigned fixed_segments = 0,
    const SweepOptions& options = {});

/// Same, with the default interleaved grid.
[[nodiscard]] InterleavedSeries run_interleaved_sweep(
    const core::ModelParams& base, std::string configuration,
    SweepParameter parameter, unsigned max_segments,
    unsigned fixed_segments = 0, const SweepOptions& options = {});

/// Flattens an interleaved panel into a plain numeric Series (columns:
/// best_m, sigma1, sigma2, Wopt, energy, time, energy1, saving — energy1
/// is the m = 1 baseline) for CSV/gnuplot export. Infeasible points become
/// NaN cells (rendered as gaps).
[[nodiscard]] Series to_series(const InterleavedSeries& figure);

}  // namespace rexspeed::sweep
