#include "rexspeed/engine/solver_context.hpp"

#include <stdexcept>
#include <utility>

#include "rexspeed/engine/backend_registry.hpp"

namespace rexspeed::engine {

SolverContext::SolverContext(std::unique_ptr<core::SolverBackend> backend,
                             sweep::ThreadPool* pool)
    : backend_(std::move(backend)) {
  if (!backend_) {
    throw std::invalid_argument("SolverContext: null backend");
  }
  backend_->prepare(sweep::make_parallel_build(pool));
}

SolverContext::SolverContext(core::ModelParams params, core::EvalMode mode,
                             sweep::ThreadPool* pool)
    : SolverContext(core::make_mode_backend(std::move(params), mode), pool) {}

SolverContext make_context(const ScenarioSpec& spec,
                           sweep::ThreadPool* pool) {
  return SolverContext(make_backend(spec), pool);
}

}  // namespace rexspeed::engine
