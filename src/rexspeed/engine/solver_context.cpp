#include "rexspeed/engine/solver_context.hpp"

namespace rexspeed::engine {

SolverContext::SolverContext(core::ModelParams params)
    : solver_(std::move(params)),
      min_rho_two_(solver_.min_rho_solution(core::SpeedPolicy::kTwoSpeed)),
      min_rho_single_(
          solver_.min_rho_solution(core::SpeedPolicy::kSingleSpeed)) {}

core::PairSolution SolverContext::best(double rho, core::SpeedPolicy policy,
                                       core::EvalMode mode,
                                       bool min_rho_fallback,
                                       bool* used_fallback) const {
  if (used_fallback != nullptr) *used_fallback = false;
  core::PairSolution best = solver_.solve(rho, policy, mode).best;
  if (!best.feasible && min_rho_fallback) {
    const core::PairSolution& fallback = min_rho(policy);
    if (fallback.feasible) {
      best = fallback;
      if (used_fallback != nullptr) *used_fallback = true;
    }
  }
  return best;
}

}  // namespace rexspeed::engine
