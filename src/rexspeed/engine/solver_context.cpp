#include "rexspeed/engine/solver_context.hpp"

#include <stdexcept>

namespace rexspeed::engine {

SolverContext::SolverContext(core::ModelParams params,
                             const SolverContextOptions& options)
    : solver_(std::move(params)),
      min_rho_two_(solver_.min_rho_solution(core::SpeedPolicy::kTwoSpeed)),
      min_rho_single_(
          solver_.min_rho_solution(core::SpeedPolicy::kSingleSpeed)) {
  if (options.max_segments > 0) {
    interleaved_.emplace(solver_.params(), options.max_segments);
  }
  if (options.exact_cache) {
    exact_.emplace(solver_.params(),
                   sweep::make_parallel_build(options.pool));
  }
}

SolverContext::SolverContext(core::ModelParams params, unsigned max_segments)
    : SolverContext(std::move(params),
                    SolverContextOptions{.max_segments = max_segments}) {}

const core::InterleavedSolver& SolverContext::interleaved() const {
  if (!interleaved_) {
    throw std::logic_error(
        "SolverContext: built without an interleaved cache (pass "
        "max_segments > 0)");
  }
  return *interleaved_;
}

const core::ExactSolver& SolverContext::exact() const {
  if (!exact_) {
    throw std::logic_error(
        "SolverContext: built without the exact-optimization cache (set "
        "SolverContextOptions::exact_cache)");
  }
  return *exact_;
}

core::InterleavedSolution SolverContext::solve_interleaved(
    double rho, unsigned segments) const {
  const core::InterleavedSolver& solver = interleaved();
  return segments == 0 ? solver.solve(rho)
                       : solver.solve_segments(rho, segments);
}

core::PairSolution SolverContext::best(double rho, core::SpeedPolicy policy,
                                       core::EvalMode mode,
                                       bool min_rho_fallback,
                                       bool* used_fallback) const {
  if (used_fallback != nullptr) *used_fallback = false;
  core::PairSolution best = solve(rho, policy, mode).best;
  if (!best.feasible && min_rho_fallback) {
    const core::PairSolution& fallback = min_rho_for(policy, mode);
    if (fallback.feasible) {
      best = fallback;
      if (used_fallback != nullptr) *used_fallback = true;
    }
  }
  return best;
}

}  // namespace rexspeed::engine
