#include "rexspeed/engine/backend_registry.hpp"

#include <sstream>
#include <stdexcept>
#include <utility>

#include "rexspeed/core/recall_solver.hpp"

namespace rexspeed::engine {

namespace {

std::vector<sweep::SweepParameter> interleaved_axes() {
  return {sweep::SweepParameter::kPerformanceBound,
          sweep::SweepParameter::kSegments};
}

}  // namespace

const std::vector<BackendEntry>& backend_registry() {
  static const std::vector<BackendEntry> kRegistry = [] {
    std::vector<BackendEntry> registry;
    registry.push_back(
        {"first-order",
         "Theorem 1 closed forms (the paper's procedure, 5.2 window)",
         sweep::all_sweep_parameters(),
         [](core::ModelParams params, const ScenarioSpec&) {
           return std::make_unique<core::ClosedFormBackend>(
               std::move(params), core::EvalMode::kFirstOrder);
         }});
    registry.push_back(
        {"exact-eval",
         "Theorem 1 pattern size, overheads from the exact expectations",
         sweep::all_sweep_parameters(),
         [](core::ModelParams params, const ScenarioSpec&) {
           return std::make_unique<core::ClosedFormBackend>(
               std::move(params), core::EvalMode::kExactEvaluation);
         }});
    registry.push_back(
        {"exact-opt",
         "cached exact-model optimization (valid for any error rates)",
         sweep::all_sweep_parameters(),
         [](core::ModelParams params, const ScenarioSpec&) {
           return std::make_unique<core::ExactOptBackend>(
               std::move(params));
         }});
    registry.push_back(
        {"interleaved",
         "segmented interleaved-verification patterns (related work, m >= 1)",
         interleaved_axes(),
         [](core::ModelParams params, const ScenarioSpec& spec) {
           return std::make_unique<core::InterleavedBackend>(
               std::move(params), spec.segment_limit(), spec.segments);
         }});
    registry.push_back(
        {"recall",
         "first-order optimization under partial verification recall r",
         sweep::all_sweep_parameters(),
         [](core::ModelParams params, const ScenarioSpec& spec) {
           return std::make_unique<core::RecallBackend>(
               std::move(params), spec.verification_recall);
         }});
    return registry;
  }();
  return kRegistry;
}

const BackendEntry* find_backend(std::string_view mode) {
  for (const BackendEntry& entry : backend_registry()) {
    if (entry.name == mode) return &entry;
  }
  return nullptr;
}

const BackendEntry& backend_by_name(const std::string& mode) {
  if (const BackendEntry* entry = find_backend(mode)) return *entry;
  std::ostringstream known;
  const auto& registry = backend_registry();
  for (std::size_t i = 0; i < registry.size(); ++i) {
    if (i > 0) known << (i + 1 == registry.size() ? " or " : ", ");
    known << registry[i].name;
  }
  throw std::invalid_argument("backend_registry: unknown mode '" + mode +
                              "' (expected " + known.str() + ")");
}

std::string backend_mode_name(const ScenarioSpec& spec) {
  if (spec.interleaved()) return "interleaved";
  if (spec.recall_mode) return "recall";
  return core::to_mode_name(spec.mode);
}

std::unique_ptr<core::SolverBackend> make_backend(const ScenarioSpec& spec,
                                                  core::ModelParams params) {
  spec.validate();
  const std::string mode = backend_mode_name(spec);
  if (spec.verification_recall < 1.0 && mode != "recall") {
    std::ostringstream message;
    message << "scenario '" << spec.name
            << "': verification_recall=" << spec.verification_recall
            << " needs the partial-recall backend, but the '" << mode
            << "' solver backend requires full recall — set mode=recall "
               "(first-order optimization over the recall-scaled rate) or "
               "drop the key; `rexspeed simulate` additionally executes "
               "partial recall under any mode";
    throw std::invalid_argument(message.str());
  }
  return backend_by_name(mode).factory(std::move(params), spec);
}

std::unique_ptr<core::SolverBackend> make_backend(const ScenarioSpec& spec) {
  return make_backend(spec, spec.resolve_params());
}

std::vector<sweep::SweepParameter> scenario_panel_axes(
    const ScenarioSpec& spec) {
  spec.validate();
  switch (spec.kind()) {
    case ScenarioKind::kSweep:
      return {*spec.sweep_parameter};
    case ScenarioKind::kAllSweeps:
      return backend_by_name(backend_mode_name(spec)).panel_axes;
    case ScenarioKind::kSolve:
      break;
  }
  throw std::invalid_argument(
      "scenario_panel_axes: scenario '" + spec.name +
      "' is a solve (param=none) and produces no panels; use "
      "solve_scenario or CampaignRunner::run_one for its solution");
}

}  // namespace rexspeed::engine
