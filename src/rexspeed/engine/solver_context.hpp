#pragma once

#include <memory>

#include "rexspeed/core/solver_backend.hpp"
#include "rexspeed/sweep/thread_pool.hpp"

namespace rexspeed::engine {

struct ScenarioSpec;

/// A thin owner of one PREPARED solver backend — the engine-layer currency
/// that the CLI, benches and examples drive for point solves. Construction
/// runs prepare() (optionally across a pool: the finished caches are
/// identical bit for bit whether built serially or across any schedule),
/// so every solve afterwards is cheap feasibility math; one context can
/// serve an entire ρ sweep, both speed policies of a figure point, and
/// the §4.2 tables.
///
/// The historical mode branches (routes_exact, the separate interleaved
/// dispatch, per-mode cache opt-ins) are gone: which caches exist and how
/// solves route is entirely the backend's business, resolved through
/// engine::backend_registry() — see make_context().
///
/// Thread-safety: immutable after construction (the backend is prepared
/// and never mutated again), so one context is safe to share across
/// ThreadPool workers without synchronization.
class SolverContext {
 public:
  /// Wraps and prepares an externally built backend. Throws
  /// std::invalid_argument on a null backend.
  explicit SolverContext(std::unique_ptr<core::SolverBackend> backend,
                         sweep::ThreadPool* pool = nullptr);

  /// Convenience: a prepared backend for a bare parameter bundle and
  /// EvalMode (core::make_mode_backend) — the shape examples and benches
  /// use when no scenario is involved.
  explicit SolverContext(core::ModelParams params,
                         core::EvalMode mode = core::EvalMode::kFirstOrder,
                         sweep::ThreadPool* pool = nullptr);

  [[nodiscard]] const core::SolverBackend& backend() const noexcept {
    return *backend_;
  }
  [[nodiscard]] const core::ModelParams& params() const noexcept {
    return backend_->params();
  }
  [[nodiscard]] const core::BackendCapabilities& capabilities()
      const noexcept {
    return backend_->capabilities();
  }
  [[nodiscard]] std::size_t speed_count() const noexcept {
    return params().speeds.size();
  }

  /// Best solution at bound `rho` (see SolverBackend::solve). With
  /// `min_rho_fallback`, an unachievable bound degrades to the backend's
  /// min-ρ policy when it has one; Solution::used_fallback reports this.
  [[nodiscard]] core::Solution solve(
      double rho, core::SpeedPolicy policy = core::SpeedPolicy::kTwoSpeed,
      bool min_rho_fallback = false) const {
    return backend_->solve(rho, policy, min_rho_fallback);
  }

  /// Full reporting solve (best + every candidate pair). Requires
  /// capabilities().pair_table.
  [[nodiscard]] core::BiCritSolution solve_report(
      double rho,
      core::SpeedPolicy policy = core::SpeedPolicy::kTwoSpeed) const {
    return backend_->solve_report(rho, policy);
  }

  /// Solves the speed pair at positions (i, j) of the speed set. Requires
  /// capabilities().pair_table.
  [[nodiscard]] core::PairSolution solve_pair(double rho, std::size_t i,
                                              std::size_t j) const {
    return backend_->solve_pair(rho, i, j);
  }

  /// The backend's min-ρ best-effort policy (infeasible when the backend
  /// has none — capabilities().min_rho_fallback).
  [[nodiscard]] core::Solution min_rho(
      core::SpeedPolicy policy = core::SpeedPolicy::kTwoSpeed) const {
    return backend_->min_rho(policy);
  }

 private:
  std::unique_ptr<core::SolverBackend> backend_;
};

/// THE context-from-scenario rule, in one place: resolve the spec's
/// parameters, build its backend through engine::backend_registry(), and
/// prepare it (across `pool` when given — construction parallelism only;
/// the pool is not retained). Every driver building a context for a spec
/// goes through here, so standalone and campaign solves stay bit-identical
/// by construction.
[[nodiscard]] SolverContext make_context(const ScenarioSpec& spec,
                                         sweep::ThreadPool* pool = nullptr);

}  // namespace rexspeed::engine
