#pragma once

#include <optional>

#include "rexspeed/core/bicrit_solver.hpp"
#include "rexspeed/core/exact_solver.hpp"
#include "rexspeed/core/interleaved.hpp"
#include "rexspeed/sweep/thread_pool.hpp"

namespace rexspeed::engine {

/// Construction options for SolverContext: which optional solver caches
/// to build alongside the always-on first-order expansions, and an
/// optional pool for the construction work itself.
struct SolverContextOptions {
  /// `max_segments > 0` additionally precomputes the interleaved
  /// expansions (one per (σ1, σ2, m) up to that segment count — see
  /// core::InterleavedSolver), enabling the solve_interleaved path. The
  /// interleaved cache requires λf = 0 and throws std::invalid_argument
  /// otherwise, at construction — never inside a pool worker.
  unsigned max_segments = 0;
  /// True additionally precomputes the exact-optimization cache (one
  /// pair of exact curve optima per (σ1, σ2) — see core::ExactSolver),
  /// so EvalMode::kExactOptimize solves route through cached feasibility
  /// math instead of re-running the full numeric optimization per bound.
  bool exact_cache = false;
  /// Optional pool for parallelizing cache CONSTRUCTION (the per-pair
  /// curve optimizations of the exact cache). Not retained past the
  /// constructor; the finished context is identical bit for bit whether
  /// built serially or across any pool.
  sweep::ThreadPool* pool = nullptr;
};

/// A reusable, shareable solver context for one ModelParams bundle.
///
/// Construction pays the O(K²) first-order expansion work (time + energy
/// expansions, ρ_min, validity flags — via the cached BiCritSolver) plus
/// the two ρ-independent min-ρ fallback policies, exactly once — and,
/// opted in through SolverContextOptions, the interleaved and/or exact
/// per-pair caches. Every solve afterwards is cheap feasibility math on
/// the cached expansions, so one context can serve an entire ρ sweep
/// (51 grid points share identical expansions), both speed policies of a
/// figure point, and the fallback lookups — the engine-layer currency
/// that SweepEngine, CampaignRunner, the CLI, benches and examples all
/// drive.
///
/// Thread-safety contract (shared by BiCritSolver, InterleavedSolver and
/// ExactSolver): the context is immutable after construction; every
/// member function is const and touches only the caches built by the
/// constructor, so one context is safe to share across ThreadPool
/// workers without synchronization.
class SolverContext {
 public:
  /// Builds the context plus whichever optional caches `options` asks
  /// for. Everything a solve could reject is rejected here — never
  /// inside a pool worker.
  SolverContext(core::ModelParams params,
                const SolverContextOptions& options);

  /// Convenience form of the options constructor: `max_segments > 0`
  /// builds the interleaved cache, nothing else is opted in.
  explicit SolverContext(core::ModelParams params,
                         unsigned max_segments = 0);

  [[nodiscard]] const core::ModelParams& params() const noexcept {
    return solver_.params();
  }
  [[nodiscard]] const core::BiCritSolver& solver() const noexcept {
    return solver_;
  }
  [[nodiscard]] std::size_t speed_count() const noexcept {
    return solver_.params().speeds.size();
  }

  /// Full BiCrit solve at bound `rho`. EvalMode::kExactOptimize routes
  /// through the cached exact backend when the context was built with
  /// one (same optima; rho_min/w_min/w_max report the exact feasibility
  /// floor and active bracket — see ExactSolver::solve), and falls back
  /// to the per-bound numeric optimization otherwise.
  [[nodiscard]] core::BiCritSolution solve(
      double rho, core::SpeedPolicy policy = core::SpeedPolicy::kTwoSpeed,
      core::EvalMode mode = core::EvalMode::kFirstOrder) const {
    if (mode == core::EvalMode::kExactOptimize && exact_) {
      return exact_->solve(rho, policy);
    }
    return solver_.solve(rho, policy, mode);
  }

  /// Solve for the speed pair at positions (i, j) of the speed set
  /// (cached-expansion path; kExactOptimize routes like solve()).
  [[nodiscard]] core::PairSolution solve_pair(
      double rho, std::size_t i, std::size_t j,
      core::EvalMode mode = core::EvalMode::kFirstOrder) const {
    if (mode == core::EvalMode::kExactOptimize && exact_) {
      return exact_->solve_pair_by_index(rho, i, j);
    }
    return solver_.solve_pair_by_index(rho, i, j, mode);
  }

  /// The ρ-independent best-effort fallback policy for a speed policy
  /// (precomputed at construction; see BiCritSolver::min_rho_solution).
  /// Ranked by the FIRST-ORDER tangency — exact-routed solves through
  /// best() use the exact-model fallback of ExactSolver instead.
  [[nodiscard]] const core::PairSolution& min_rho(
      core::SpeedPolicy policy) const noexcept {
    return policy == core::SpeedPolicy::kSingleSpeed ? min_rho_single_
                                                     : min_rho_two_;
  }

  /// Best pair at bound `rho`, optionally degrading to the min-ρ fallback
  /// when nothing satisfies the bound (the paper's figures do this beyond
  /// the feasibility horizon). Exact-routed solves degrade to the
  /// exact-model fallback (ExactSolver::min_rho_solution); everything
  /// else uses the first-order one. `used_fallback`, when non-null,
  /// reports whether the fallback was taken.
  [[nodiscard]] core::PairSolution best(
      double rho, core::SpeedPolicy policy, core::EvalMode mode,
      bool min_rho_fallback, bool* used_fallback = nullptr) const;

  /// True when the context was built with an interleaved cache.
  [[nodiscard]] bool has_interleaved() const noexcept {
    return interleaved_.has_value();
  }

  /// The cached interleaved solver. Throws std::logic_error when the
  /// context was built without one (max_segments == 0).
  [[nodiscard]] const core::InterleavedSolver& interleaved() const;

  /// True when the context was built with the exact-optimization cache.
  [[nodiscard]] bool has_exact() const noexcept {
    return exact_.has_value();
  }

  /// True when solves in `mode` route through the cached exact backend —
  /// THE routing predicate; callers dispatching on the backend (table
  /// builders, fallback reporting) should use this rather than
  /// re-deriving the condition from has_exact().
  [[nodiscard]] bool routes_exact(core::EvalMode mode) const noexcept {
    return mode == core::EvalMode::kExactOptimize && exact_.has_value();
  }

  /// The min-ρ fallback a solve in `mode` would degrade to: the
  /// exact-model floor for exact-routed modes, the first-order tangency
  /// otherwise. The reference stays valid for the context's lifetime.
  [[nodiscard]] const core::PairSolution& min_rho_for(
      core::SpeedPolicy policy, core::EvalMode mode) const noexcept {
    return routes_exact(mode) ? exact_->min_rho_solution(policy)
                              : min_rho(policy);
  }

  /// The cached exact backend. Throws std::logic_error when the context
  /// was built without one (SolverContextOptions::exact_cache false).
  [[nodiscard]] const core::ExactSolver& exact() const;

  /// Best segmented pattern at bound `rho` off the cached expansions:
  /// `segments == 0` searches every count in [1, max_segments], a positive
  /// value pins the count. Throws std::logic_error without an interleaved
  /// cache.
  [[nodiscard]] core::InterleavedSolution solve_interleaved(
      double rho, unsigned segments = 0) const;

 private:
  core::BiCritSolver solver_;
  core::PairSolution min_rho_two_;
  core::PairSolution min_rho_single_;
  std::optional<core::InterleavedSolver> interleaved_;
  std::optional<core::ExactSolver> exact_;
};

}  // namespace rexspeed::engine
