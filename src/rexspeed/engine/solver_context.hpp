#pragma once

#include <optional>

#include "rexspeed/core/bicrit_solver.hpp"
#include "rexspeed/core/interleaved.hpp"

namespace rexspeed::engine {

/// A reusable, shareable solver context for one ModelParams bundle.
///
/// Construction pays the O(K²) first-order expansion work (time + energy
/// expansions, ρ_min, validity flags — via the cached BiCritSolver) plus
/// the two ρ-independent min-ρ fallback policies, exactly once. Every
/// solve afterwards is cheap feasibility math on the cached expansions, so
/// one context can serve an entire ρ sweep (51 grid points share identical
/// expansions), both speed policies of a figure point, and the fallback
/// lookups — the engine-layer currency that SweepEngine, the CLI, benches
/// and examples all drive.
///
/// The context is immutable after construction and therefore safe to share
/// across ThreadPool workers without synchronization.
class SolverContext {
 public:
  /// `max_segments > 0` additionally precomputes the interleaved
  /// expansions (one per (σ1, σ2, m) up to that segment count — see
  /// core::InterleavedSolver), enabling the solve_interleaved path. The
  /// interleaved cache requires λf = 0 and throws std::invalid_argument
  /// otherwise, at construction — never inside a pool worker.
  explicit SolverContext(core::ModelParams params,
                         unsigned max_segments = 0);

  [[nodiscard]] const core::ModelParams& params() const noexcept {
    return solver_.params();
  }
  [[nodiscard]] const core::BiCritSolver& solver() const noexcept {
    return solver_;
  }
  [[nodiscard]] std::size_t speed_count() const noexcept {
    return solver_.params().speeds.size();
  }

  /// Full BiCrit solve at bound `rho` (cached-expansion path).
  [[nodiscard]] core::BiCritSolution solve(
      double rho, core::SpeedPolicy policy = core::SpeedPolicy::kTwoSpeed,
      core::EvalMode mode = core::EvalMode::kFirstOrder) const {
    return solver_.solve(rho, policy, mode);
  }

  /// Solve for the speed pair at positions (i, j) of the speed set.
  [[nodiscard]] core::PairSolution solve_pair(
      double rho, std::size_t i, std::size_t j,
      core::EvalMode mode = core::EvalMode::kFirstOrder) const {
    return solver_.solve_pair_by_index(rho, i, j, mode);
  }

  /// The ρ-independent best-effort fallback policy for a speed policy
  /// (precomputed at construction; see BiCritSolver::min_rho_solution).
  [[nodiscard]] const core::PairSolution& min_rho(
      core::SpeedPolicy policy) const noexcept {
    return policy == core::SpeedPolicy::kSingleSpeed ? min_rho_single_
                                                     : min_rho_two_;
  }

  /// Best pair at bound `rho`, optionally degrading to the min-ρ fallback
  /// when nothing satisfies the bound (the paper's figures do this beyond
  /// the feasibility horizon). `used_fallback`, when non-null, reports
  /// whether the fallback was taken.
  [[nodiscard]] core::PairSolution best(
      double rho, core::SpeedPolicy policy, core::EvalMode mode,
      bool min_rho_fallback, bool* used_fallback = nullptr) const;

  /// True when the context was built with an interleaved cache.
  [[nodiscard]] bool has_interleaved() const noexcept {
    return interleaved_.has_value();
  }

  /// The cached interleaved solver. Throws std::logic_error when the
  /// context was built without one (max_segments == 0).
  [[nodiscard]] const core::InterleavedSolver& interleaved() const;

  /// Best segmented pattern at bound `rho` off the cached expansions:
  /// `segments == 0` searches every count in [1, max_segments], a positive
  /// value pins the count. Throws std::logic_error without an interleaved
  /// cache.
  [[nodiscard]] core::InterleavedSolution solve_interleaved(
      double rho, unsigned segments = 0) const;

 private:
  core::BiCritSolver solver_;
  core::PairSolution min_rho_two_;
  core::PairSolution min_rho_single_;
  std::optional<core::InterleavedSolver> interleaved_;
};

}  // namespace rexspeed::engine
