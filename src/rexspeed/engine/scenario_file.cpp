#include "rexspeed/engine/scenario_file.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <unordered_map>

namespace rexspeed::engine {

namespace {

std::string format_double(double value) {
  // %.17g round-trips every finite double through std::stod.
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.17g", value);
  return buffer;
}

const char* param_token(const ScenarioSpec& spec) {
  if (spec.all_panels) return "all";
  if (spec.sweep_parameter) return sweep::to_string(*spec.sweep_parameter);
  return "none";
}

bool has_whitespace(const std::string& text) {
  return text.find_first_of(" \t\r\n") != std::string::npos;
}

/// The file format has no escaping: '#' starts a comment when read back
/// and a newline ends the entry, so a value containing either cannot
/// survive a round trip.
bool representable(const std::string& text) {
  return text.find_first_of("#\n\r") == std::string::npos;
}

std::string trim(const std::string& text) {
  const std::size_t first = text.find_first_not_of(" \t\r");
  if (first == std::string::npos) return {};
  const std::size_t last = text.find_last_not_of(" \t\r");
  return text.substr(first, last - first + 1);
}

}  // namespace

std::string write_scenario(const ScenarioSpec& spec) {
  // Identifiers that a reload (or a parse_scenario round trip) would
  // truncate or split must be rejected, not corrupted: '#' starts a
  // comment, newlines end the entry, whitespace splits tokens.
  if (!representable(spec.name) || has_whitespace(spec.name) ||
      !representable(spec.configuration) ||
      has_whitespace(spec.configuration)) {
    throw std::invalid_argument(
        "write_scenario: scenario '" + spec.name +
        "': name/config must not contain whitespace or '#'");
  }
  std::ostringstream out;
  if (!spec.name.empty()) out << "name=" << spec.name << '\n';
  if (!spec.description.empty() && !has_whitespace(spec.description) &&
      representable(spec.description)) {
    out << "description=" << spec.description << '\n';
  }
  out << "config=" << spec.configuration << '\n';
  out << "rho=" << format_double(spec.rho) << '\n';
  out << "points=" << spec.points << '\n';
  out << "param=" << param_token(spec) << '\n';
  out << "policy="
      << (spec.policy == core::SpeedPolicy::kSingleSpeed ? "single-speed"
                                                         : "two-speed")
      << '\n';
  const char* mode = "first-order";
  if (spec.mode == core::EvalMode::kExactEvaluation) mode = "exact-eval";
  if (spec.mode == core::EvalMode::kExactOptimize) mode = "exact-opt";
  // mode=recall forces mode back to kFirstOrder on parse, so emitting the
  // recall name loses nothing and round-trips the flag.
  if (spec.recall_mode) mode = "recall";
  out << "mode=" << mode << '\n';
  out << "fallback=" << (spec.min_rho_fallback ? 1 : 0) << '\n';
  // Non-default batch modes only: the default (auto) emits no line, so
  // pre-existing files and their byte-exact fixtures are untouched.
  if (spec.batch == sweep::BatchMode::kOn) out << "batch=on\n";
  if (spec.batch == sweep::BatchMode::kOff) out << "batch=off\n";
  // Interleaved keys only when set: the default (no interleaved mode) has
  // no line, so pre-existing files and their byte-exact fixtures are
  // untouched.
  if (spec.segments > 0) out << "segments=" << spec.segments << '\n';
  if (spec.max_segments > 0) {
    out << "max_segments=" << spec.max_segments << '\n';
  }
  // Cache opt-out only when set: the default (cached) has no line.
  if (!spec.cache) out << "cache=0\n";
  // Likewise simulate-only dimensions: the default (guaranteed
  // verifications) emits no line.
  if (spec.verification_recall != 1.0) {
    out << "verification_recall=" << format_double(spec.verification_recall)
        << '\n';
  }
  for (const ParamOverride& override_ : spec.overrides) {
    out << override_.key << '=' << format_double(override_.value) << '\n';
  }
  return out.str();
}

void save_scenario_file(const ScenarioSpec& spec, const std::string& path) {
  std::ofstream out(path);
  out << "# rexspeed scenario spec (key=value per line, '#' comments)\n";
  // Multi-word descriptions are dropped by write_scenario (its output must
  // stay parse_scenario-compatible); the line-based file format keeps them
  // — unless they contain '#', which a reload would truncate as a comment.
  if (!spec.description.empty() && has_whitespace(spec.description) &&
      representable(spec.description)) {
    out << "description=" << spec.description << '\n';
  }
  out << write_scenario(spec);
  if (!out) {
    throw std::runtime_error("save_scenario_file: cannot write '" + path +
                             "'");
  }
}

ScenarioSpec load_scenario_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::invalid_argument("load_scenario_file: cannot open '" + path +
                                "'");
  }
  ScenarioSpec spec;
  spec.name = std::filesystem::path(path).stem().string();

  std::string line;
  std::size_t line_number = 0;
  std::size_t entries = 0;
  /// key → line it first appeared on. A repeated key would silently keep
  /// only the later value (apply_token overwrites; override keys would
  /// even apply twice), so it is rejected with both lines cited.
  std::unordered_map<std::string, std::size_t> seen;
  while (std::getline(in, line)) {
    ++line_number;
    if (const std::size_t hash = line.find('#'); hash != std::string::npos) {
      line.erase(hash);
    }
    line = trim(line);
    if (line.empty()) continue;
    const std::size_t eq = line.find('=');
    if (eq == std::string::npos || trim(line.substr(0, eq)).empty()) {
      throw std::invalid_argument(path + ":" + std::to_string(line_number) +
                                  ": expected key=value, got '" + line + "'");
    }
    const std::string key = trim(line.substr(0, eq));
    const auto [it, inserted] = seen.emplace(key, line_number);
    if (!inserted) {
      throw std::invalid_argument(
          path + ":" + std::to_string(line_number) + ": duplicate key '" +
          key + "' (first set on line " + std::to_string(it->second) + ")");
    }
    try {
      apply_token(spec, key, trim(line.substr(eq + 1)));
    } catch (const std::exception& error) {
      throw std::invalid_argument(path + ":" + std::to_string(line_number) +
                                  ": " + error.what());
    }
    ++entries;
  }
  if (entries == 0) {
    throw std::invalid_argument("load_scenario_file: '" + path +
                                "' is empty (no key=value entries)");
  }
  try {
    spec.validate();  // cross-field checks have no single line to cite
  } catch (const std::exception& error) {
    throw std::invalid_argument(path + ": " + error.what());
  }
  return spec;
}

std::vector<ScenarioSpec> load_scenario_dir(const std::string& dir) {
  namespace fs = std::filesystem;
  if (!fs::is_directory(dir)) {
    throw std::invalid_argument("load_scenario_dir: '" + dir +
                                "' is not a directory");
  }
  std::vector<fs::path> files;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.is_regular_file() && entry.path().extension() == ".scenario") {
      files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());

  std::vector<ScenarioSpec> specs;
  specs.reserve(files.size());
  std::unordered_map<std::string, std::string> name_to_file;
  for (const fs::path& file : files) {
    ScenarioSpec spec = load_scenario_file(file.string());
    const auto [it, inserted] =
        name_to_file.emplace(spec.name, file.string());
    if (!inserted) {
      throw std::invalid_argument(
          "load_scenario_dir: duplicate scenario name '" + spec.name +
          "' (" + it->second + " and " + file.string() + ")");
    }
    specs.push_back(std::move(spec));
  }
  return specs;
}

std::vector<ScenarioSpec> merge_with_registry(
    const std::vector<ScenarioSpec>& extras) {
  std::vector<ScenarioSpec> merged = scenario_registry();
  for (const ScenarioSpec& extra : extras) {
    const auto it =
        std::find_if(merged.begin(), merged.end(), [&](const auto& spec) {
          return spec.name == extra.name;
        });
    if (it != merged.end()) {
      *it = extra;
    } else {
      merged.push_back(extra);
    }
  }
  return merged;
}

}  // namespace rexspeed::engine
